#!/usr/bin/env bash
# Runs the full benchmark suite (every paper table, the extension
# ablations, and the kernel microbenches) and records the output.
#
# Usage: scripts/run_all_benches.sh [output-file]
# Scale via DHGCN_BENCH_SCALE (smoke|default|full) and
# DHGCN_BENCH_REPEATS (seeds averaged per table cell).
set -u
cd "$(dirname "$0")/.."
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/bench_table*_* build/bench/bench_ablation_extensions; do
  echo "===== $b =====" | tee -a "$out"
  "$b" 2>&1 | tee -a "$out"
done
echo "===== build/bench/bench_kernels =====" | tee -a "$out"
build/bench/bench_kernels 2>&1 | tee -a "$out"
echo "===== thread sweep -> BENCH_threads.json ====="
build/bench/bench_kernels --benchmark_filter='Threads' \
  --benchmark_format=json > BENCH_threads.json
echo "===== gemm/conv lowering ablation -> BENCH_gemm.json ====="
build/bench/bench_kernels \
  --benchmark_filter='Gemm(Naive|Blocked)|Conv2d(Direct|Im2col)' \
  --benchmark_format=json > BENCH_gemm.json
echo "wrote $out, BENCH_threads.json and BENCH_gemm.json"
