#!/usr/bin/env bash
# Runs the full benchmark suite (every paper table, the extension
# ablations, and the kernel microbenches) and records the output.
#
# Usage: scripts/run_all_benches.sh [output-file]
# Scale via DHGCN_BENCH_SCALE (smoke|default|full) and
# DHGCN_BENCH_REPEATS (seeds averaged per table cell).
set -u
cd "$(dirname "$0")/.."
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/bench_table*_* build/bench/bench_ablation_extensions; do
  echo "===== $b =====" | tee -a "$out"
  "$b" 2>&1 | tee -a "$out"
done
echo "===== build/bench/bench_kernels =====" | tee -a "$out"
build/bench/bench_kernels 2>&1 | tee -a "$out"
echo "===== thread sweep -> BENCH_threads.json ====="
build/bench/bench_kernels --benchmark_filter='Threads' \
  --benchmark_format=json > BENCH_threads.json
echo "===== gemm/conv lowering ablation -> BENCH_gemm.json ====="
build/bench/bench_kernels \
  --benchmark_filter='Gemm(Naive|Blocked)|Conv2d(Direct|Im2col)' \
  --benchmark_format=json > BENCH_gemm.json
echo "===== serving load test -> BENCH_serving.json ====="
# Baseline / 4x-overload-with-faults / recovery phases; --strict makes
# the overload contract (explicit sheds, bounded p99, ladder recovery)
# a hard failure rather than a number to eyeball.
build/tools/dhgcn_serve --config tiny --classes 5 --frames 16 \
  --workers 2 --queue_capacity 32 --max_batch 8 \
  --qps 150 --deadline_ms 50 --overload_factor 6 --duration_ms 1500 \
  --fault_inject worker-stall:5:40 --poison_every 97 \
  --bench_json BENCH_serving.json --strict \
  2>&1 | tee -a "$out"
echo "===== execution-plan vs layerwise -> BENCH_plan.json ====="
# Layerwise / unfused-plan / fused-plan inference, the one-time
# capture+resolve cost, and the residual-tail pair that isolates the
# three-sweep -> one-sweep fusion win from the GEMM-dominated total.
build/bench/bench_plan --benchmark_format=json > BENCH_plan.json
echo "===== sparse routing sweep -> BENCH_sparse.json ====="
# SpMM-vs-blocked-GEMM density crossover (calibrates the SparseRouter
# default threshold), the routed VertexMix, and pruned end-to-end steps.
build/bench/bench_sparse --benchmark_format=json > BENCH_sparse.json
echo "===== int8 quantized inference -> BENCH_int8.json ====="
# Int8-vs-fp32 GEMM kernels head to head (GMAC/s; the >=2x gate of
# DESIGN.md §15) and end-to-end fused-fp32 vs int8 plan-replay eval
# throughput on the Small serving model.
build/bench/bench_int8 --benchmark_format=json > BENCH_int8.json
echo "===== serving soak with compiled plans (--plan on) ====="
# Same soak, replaying compiled per-batch-size plans inside the workers;
# exercises the plan fallback + micro-batching contract end to end.
build/tools/dhgcn_serve --config tiny --classes 5 --frames 16 \
  --workers 2 --queue_capacity 32 --max_batch 8 \
  --qps 150 --deadline_ms 50 --overload_factor 6 --duration_ms 1500 \
  --fault_inject worker-stall:5:40 --poison_every 97 \
  --plan on --strict \
  2>&1 | tee -a "$out"
echo "wrote $out, BENCH_threads.json, BENCH_gemm.json, BENCH_serving.json, BENCH_plan.json, BENCH_sparse.json and BENCH_int8.json"
