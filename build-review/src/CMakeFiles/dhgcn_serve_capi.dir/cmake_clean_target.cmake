file(REMOVE_RECURSE
  "libdhgcn_serve.a"
)
