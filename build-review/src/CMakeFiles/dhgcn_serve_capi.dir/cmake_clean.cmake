file(REMOVE_RECURSE
  "CMakeFiles/dhgcn_serve_capi.dir/serve/serve_c_api.cc.o"
  "CMakeFiles/dhgcn_serve_capi.dir/serve/serve_c_api.cc.o.d"
  "libdhgcn_serve.a"
  "libdhgcn_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhgcn_serve_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
