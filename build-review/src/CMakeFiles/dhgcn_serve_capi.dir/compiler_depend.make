# Empty compiler generated dependencies file for dhgcn_serve_capi.
# This may be replaced when dependencies are built.
