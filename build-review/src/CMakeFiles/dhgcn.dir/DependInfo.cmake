
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/alloc_stats.cc" "src/CMakeFiles/dhgcn.dir/base/alloc_stats.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/alloc_stats.cc.o.d"
  "/root/repo/src/base/crc32.cc" "src/CMakeFiles/dhgcn.dir/base/crc32.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/crc32.cc.o.d"
  "/root/repo/src/base/fault_injection.cc" "src/CMakeFiles/dhgcn.dir/base/fault_injection.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/fault_injection.cc.o.d"
  "/root/repo/src/base/flags.cc" "src/CMakeFiles/dhgcn.dir/base/flags.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/flags.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/dhgcn.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/logging.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/CMakeFiles/dhgcn.dir/base/rng.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/rng.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/dhgcn.dir/base/status.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/dhgcn.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/string_util.cc.o.d"
  "/root/repo/src/base/thread_pool.cc" "src/CMakeFiles/dhgcn.dir/base/thread_pool.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/base/thread_pool.cc.o.d"
  "/root/repo/src/core/dhgcn_model.cc" "src/CMakeFiles/dhgcn.dir/core/dhgcn_model.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/core/dhgcn_model.cc.o.d"
  "/root/repo/src/core/dhst_block.cc" "src/CMakeFiles/dhgcn.dir/core/dhst_block.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/core/dhst_block.cc.o.d"
  "/root/repo/src/core/dynamic_joint_weight.cc" "src/CMakeFiles/dhgcn.dir/core/dynamic_joint_weight.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/core/dynamic_joint_weight.cc.o.d"
  "/root/repo/src/core/dynamic_topology.cc" "src/CMakeFiles/dhgcn.dir/core/dynamic_topology.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/core/dynamic_topology.cc.o.d"
  "/root/repo/src/core/static_hypergraph.cc" "src/CMakeFiles/dhgcn.dir/core/static_hypergraph.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/core/static_hypergraph.cc.o.d"
  "/root/repo/src/core/two_stream.cc" "src/CMakeFiles/dhgcn.dir/core/two_stream.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/core/two_stream.cc.o.d"
  "/root/repo/src/data/augmentations.cc" "src/CMakeFiles/dhgcn.dir/data/augmentations.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/data/augmentations.cc.o.d"
  "/root/repo/src/data/csv_io.cc" "src/CMakeFiles/dhgcn.dir/data/csv_io.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/data/csv_io.cc.o.d"
  "/root/repo/src/data/dataloader.cc" "src/CMakeFiles/dhgcn.dir/data/dataloader.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/data/dataloader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/dhgcn.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/skeleton.cc" "src/CMakeFiles/dhgcn.dir/data/skeleton.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/data/skeleton.cc.o.d"
  "/root/repo/src/data/synthetic_generator.cc" "src/CMakeFiles/dhgcn.dir/data/synthetic_generator.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/data/synthetic_generator.cc.o.d"
  "/root/repo/src/data/transforms.cc" "src/CMakeFiles/dhgcn.dir/data/transforms.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/data/transforms.cc.o.d"
  "/root/repo/src/data/validation.cc" "src/CMakeFiles/dhgcn.dir/data/validation.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/data/validation.cc.o.d"
  "/root/repo/src/hypergraph/graph.cc" "src/CMakeFiles/dhgcn.dir/hypergraph/graph.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/hypergraph/graph.cc.o.d"
  "/root/repo/src/hypergraph/hypergraph.cc" "src/CMakeFiles/dhgcn.dir/hypergraph/hypergraph.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/hypergraph/hypergraph.cc.o.d"
  "/root/repo/src/hypergraph/hypergraph_conv.cc" "src/CMakeFiles/dhgcn.dir/hypergraph/hypergraph_conv.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/hypergraph/hypergraph_conv.cc.o.d"
  "/root/repo/src/hypergraph/kmeans.cc" "src/CMakeFiles/dhgcn.dir/hypergraph/kmeans.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/hypergraph/kmeans.cc.o.d"
  "/root/repo/src/hypergraph/knn.cc" "src/CMakeFiles/dhgcn.dir/hypergraph/knn.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/hypergraph/knn.cc.o.d"
  "/root/repo/src/io/serialization.cc" "src/CMakeFiles/dhgcn.dir/io/serialization.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/io/serialization.cc.o.d"
  "/root/repo/src/models/agcn.cc" "src/CMakeFiles/dhgcn.dir/models/agcn.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/models/agcn.cc.o.d"
  "/root/repo/src/models/ahgcn.cc" "src/CMakeFiles/dhgcn.dir/models/ahgcn.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/models/ahgcn.cc.o.d"
  "/root/repo/src/models/model_zoo.cc" "src/CMakeFiles/dhgcn.dir/models/model_zoo.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/models/model_zoo.cc.o.d"
  "/root/repo/src/models/pbgcn.cc" "src/CMakeFiles/dhgcn.dir/models/pbgcn.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/models/pbgcn.cc.o.d"
  "/root/repo/src/models/st_common.cc" "src/CMakeFiles/dhgcn.dir/models/st_common.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/models/st_common.cc.o.d"
  "/root/repo/src/models/stgcn.cc" "src/CMakeFiles/dhgcn.dir/models/stgcn.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/models/stgcn.cc.o.d"
  "/root/repo/src/models/tcn_model.cc" "src/CMakeFiles/dhgcn.dir/models/tcn_model.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/models/tcn_model.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/CMakeFiles/dhgcn.dir/nn/batchnorm.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/batchnorm.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/CMakeFiles/dhgcn.dir/nn/conv2d.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/conv2d.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/dhgcn.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/initializer.cc" "src/CMakeFiles/dhgcn.dir/nn/initializer.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/initializer.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/dhgcn.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/dhgcn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/dhgcn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/dhgcn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/CMakeFiles/dhgcn.dir/nn/pooling.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/pooling.cc.o.d"
  "/root/repo/src/nn/relu.cc" "src/CMakeFiles/dhgcn.dir/nn/relu.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/relu.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/CMakeFiles/dhgcn.dir/nn/sequential.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/nn/sequential.cc.o.d"
  "/root/repo/src/plan/fused_kernels.cc" "src/CMakeFiles/dhgcn.dir/plan/fused_kernels.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/plan/fused_kernels.cc.o.d"
  "/root/repo/src/plan/fusion.cc" "src/CMakeFiles/dhgcn.dir/plan/fusion.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/plan/fusion.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/dhgcn.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/plan/plan.cc.o.d"
  "/root/repo/src/plan/plan_builder.cc" "src/CMakeFiles/dhgcn.dir/plan/plan_builder.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/plan/plan_builder.cc.o.d"
  "/root/repo/src/plan/plan_runner.cc" "src/CMakeFiles/dhgcn.dir/plan/plan_runner.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/plan/plan_runner.cc.o.d"
  "/root/repo/src/serve/clock.cc" "src/CMakeFiles/dhgcn.dir/serve/clock.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/serve/clock.cc.o.d"
  "/root/repo/src/serve/frozen_model.cc" "src/CMakeFiles/dhgcn.dir/serve/frozen_model.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/serve/frozen_model.cc.o.d"
  "/root/repo/src/serve/load_generator.cc" "src/CMakeFiles/dhgcn.dir/serve/load_generator.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/serve/load_generator.cc.o.d"
  "/root/repo/src/serve/micro_batcher.cc" "src/CMakeFiles/dhgcn.dir/serve/micro_batcher.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/serve/micro_batcher.cc.o.d"
  "/root/repo/src/serve/server.cc" "src/CMakeFiles/dhgcn.dir/serve/server.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/serve/server.cc.o.d"
  "/root/repo/src/tensor/gemm_kernel.cc" "src/CMakeFiles/dhgcn.dir/tensor/gemm_kernel.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/tensor/gemm_kernel.cc.o.d"
  "/root/repo/src/tensor/linalg.cc" "src/CMakeFiles/dhgcn.dir/tensor/linalg.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/tensor/linalg.cc.o.d"
  "/root/repo/src/tensor/sparse.cc" "src/CMakeFiles/dhgcn.dir/tensor/sparse.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/tensor/sparse.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/dhgcn.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_ops.cc" "src/CMakeFiles/dhgcn.dir/tensor/tensor_ops.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/tensor/tensor_ops.cc.o.d"
  "/root/repo/src/tensor/workspace.cc" "src/CMakeFiles/dhgcn.dir/tensor/workspace.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/tensor/workspace.cc.o.d"
  "/root/repo/src/train/evaluator.cc" "src/CMakeFiles/dhgcn.dir/train/evaluator.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/train/evaluator.cc.o.d"
  "/root/repo/src/train/experiment.cc" "src/CMakeFiles/dhgcn.dir/train/experiment.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/train/experiment.cc.o.d"
  "/root/repo/src/train/guardrails.cc" "src/CMakeFiles/dhgcn.dir/train/guardrails.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/train/guardrails.cc.o.d"
  "/root/repo/src/train/metrics.cc" "src/CMakeFiles/dhgcn.dir/train/metrics.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/train/metrics.cc.o.d"
  "/root/repo/src/train/summary.cc" "src/CMakeFiles/dhgcn.dir/train/summary.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/train/summary.cc.o.d"
  "/root/repo/src/train/table.cc" "src/CMakeFiles/dhgcn.dir/train/table.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/train/table.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/dhgcn.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/dhgcn.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
