# Empty dependencies file for dhgcn.
# This may be replaced when dependencies are built.
