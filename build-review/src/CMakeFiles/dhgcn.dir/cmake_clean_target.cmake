file(REMOVE_RECURSE
  "libdhgcn.a"
)
