# Empty dependencies file for dhgcn_train.
# This may be replaced when dependencies are built.
