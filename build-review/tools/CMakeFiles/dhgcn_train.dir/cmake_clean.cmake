file(REMOVE_RECURSE
  "CMakeFiles/dhgcn_train.dir/dhgcn_train.cc.o"
  "CMakeFiles/dhgcn_train.dir/dhgcn_train.cc.o.d"
  "dhgcn_train"
  "dhgcn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhgcn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
