# Empty custom commands generated dependencies file for repo_lint_check.
# This may be replaced when dependencies are built.
