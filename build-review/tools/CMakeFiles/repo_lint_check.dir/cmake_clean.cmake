file(REMOVE_RECURSE
  "CMakeFiles/repo_lint_check"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/repo_lint_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
