# Empty compiler generated dependencies file for dhgcn_dataset.
# This may be replaced when dependencies are built.
