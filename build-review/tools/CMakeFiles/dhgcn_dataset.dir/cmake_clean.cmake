file(REMOVE_RECURSE
  "CMakeFiles/dhgcn_dataset.dir/dhgcn_dataset.cc.o"
  "CMakeFiles/dhgcn_dataset.dir/dhgcn_dataset.cc.o.d"
  "dhgcn_dataset"
  "dhgcn_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhgcn_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
