file(REMOVE_RECURSE
  "CMakeFiles/dhgcn_serve.dir/dhgcn_serve.cc.o"
  "CMakeFiles/dhgcn_serve.dir/dhgcn_serve.cc.o.d"
  "dhgcn_serve"
  "dhgcn_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhgcn_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
