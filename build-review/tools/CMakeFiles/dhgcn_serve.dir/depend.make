# Empty dependencies file for dhgcn_serve.
# This may be replaced when dependencies are built.
