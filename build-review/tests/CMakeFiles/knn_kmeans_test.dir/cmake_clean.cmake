file(REMOVE_RECURSE
  "CMakeFiles/knn_kmeans_test.dir/knn_kmeans_test.cc.o"
  "CMakeFiles/knn_kmeans_test.dir/knn_kmeans_test.cc.o.d"
  "knn_kmeans_test"
  "knn_kmeans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
