file(REMOVE_RECURSE
  "CMakeFiles/graph_hypergraph_test.dir/graph_hypergraph_test.cc.o"
  "CMakeFiles/graph_hypergraph_test.dir/graph_hypergraph_test.cc.o.d"
  "graph_hypergraph_test"
  "graph_hypergraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_hypergraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
