# Empty dependencies file for graph_hypergraph_test.
# This may be replaced when dependencies are built.
