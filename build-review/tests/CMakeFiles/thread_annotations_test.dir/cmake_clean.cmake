file(REMOVE_RECURSE
  "CMakeFiles/thread_annotations_test.dir/thread_annotations_test.cc.o"
  "CMakeFiles/thread_annotations_test.dir/thread_annotations_test.cc.o.d"
  "thread_annotations_test"
  "thread_annotations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_annotations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
