file(REMOVE_RECURSE
  "CMakeFiles/guardrails_test.dir/guardrails_test.cc.o"
  "CMakeFiles/guardrails_test.dir/guardrails_test.cc.o.d"
  "guardrails_test"
  "guardrails_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardrails_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
