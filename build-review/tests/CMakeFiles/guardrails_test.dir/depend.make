# Empty dependencies file for guardrails_test.
# This may be replaced when dependencies are built.
