# Empty dependencies file for alloc_budget_test.
# This may be replaced when dependencies are built.
