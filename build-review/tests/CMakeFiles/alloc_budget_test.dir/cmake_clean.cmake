file(REMOVE_RECURSE
  "CMakeFiles/alloc_budget_test.dir/alloc_budget_test.cc.o"
  "CMakeFiles/alloc_budget_test.dir/alloc_budget_test.cc.o.d"
  "alloc_budget_test"
  "alloc_budget_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
