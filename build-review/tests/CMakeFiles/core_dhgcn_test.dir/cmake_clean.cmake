file(REMOVE_RECURSE
  "CMakeFiles/core_dhgcn_test.dir/core_dhgcn_test.cc.o"
  "CMakeFiles/core_dhgcn_test.dir/core_dhgcn_test.cc.o.d"
  "core_dhgcn_test"
  "core_dhgcn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dhgcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
