# Empty dependencies file for core_dhgcn_test.
# This may be replaced when dependencies are built.
