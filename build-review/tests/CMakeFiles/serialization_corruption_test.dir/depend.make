# Empty dependencies file for serialization_corruption_test.
# This may be replaced when dependencies are built.
