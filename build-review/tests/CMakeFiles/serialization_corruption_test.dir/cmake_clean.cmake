file(REMOVE_RECURSE
  "CMakeFiles/serialization_corruption_test.dir/serialization_corruption_test.cc.o"
  "CMakeFiles/serialization_corruption_test.dir/serialization_corruption_test.cc.o.d"
  "serialization_corruption_test"
  "serialization_corruption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialization_corruption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
