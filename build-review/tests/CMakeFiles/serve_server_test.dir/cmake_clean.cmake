file(REMOVE_RECURSE
  "CMakeFiles/serve_server_test.dir/serve_server_test.cc.o"
  "CMakeFiles/serve_server_test.dir/serve_server_test.cc.o.d"
  "serve_server_test"
  "serve_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
