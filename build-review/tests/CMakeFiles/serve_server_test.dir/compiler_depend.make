# Empty compiler generated dependencies file for serve_server_test.
# This may be replaced when dependencies are built.
