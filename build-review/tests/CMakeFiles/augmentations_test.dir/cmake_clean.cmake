file(REMOVE_RECURSE
  "CMakeFiles/augmentations_test.dir/augmentations_test.cc.o"
  "CMakeFiles/augmentations_test.dir/augmentations_test.cc.o.d"
  "augmentations_test"
  "augmentations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augmentations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
