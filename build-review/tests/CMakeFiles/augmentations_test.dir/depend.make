# Empty dependencies file for augmentations_test.
# This may be replaced when dependencies are built.
