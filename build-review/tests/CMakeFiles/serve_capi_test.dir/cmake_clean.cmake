file(REMOVE_RECURSE
  "CMakeFiles/serve_capi_test.dir/serve_capi_test.cc.o"
  "CMakeFiles/serve_capi_test.dir/serve_capi_test.cc.o.d"
  "serve_capi_test"
  "serve_capi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_capi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
