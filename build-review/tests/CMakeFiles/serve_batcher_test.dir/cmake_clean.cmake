file(REMOVE_RECURSE
  "CMakeFiles/serve_batcher_test.dir/serve_batcher_test.cc.o"
  "CMakeFiles/serve_batcher_test.dir/serve_batcher_test.cc.o.d"
  "serve_batcher_test"
  "serve_batcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_batcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
