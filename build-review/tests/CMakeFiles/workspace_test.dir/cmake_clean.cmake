file(REMOVE_RECURSE
  "CMakeFiles/workspace_test.dir/workspace_test.cc.o"
  "CMakeFiles/workspace_test.dir/workspace_test.cc.o.d"
  "workspace_test"
  "workspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
