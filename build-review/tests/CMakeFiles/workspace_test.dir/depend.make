# Empty dependencies file for workspace_test.
# This may be replaced when dependencies are built.
