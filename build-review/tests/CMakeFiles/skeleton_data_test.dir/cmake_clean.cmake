file(REMOVE_RECURSE
  "CMakeFiles/skeleton_data_test.dir/skeleton_data_test.cc.o"
  "CMakeFiles/skeleton_data_test.dir/skeleton_data_test.cc.o.d"
  "skeleton_data_test"
  "skeleton_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
