# Empty compiler generated dependencies file for skeleton_data_test.
# This may be replaced when dependencies are built.
