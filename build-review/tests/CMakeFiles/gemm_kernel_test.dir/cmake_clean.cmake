file(REMOVE_RECURSE
  "CMakeFiles/gemm_kernel_test.dir/gemm_kernel_test.cc.o"
  "CMakeFiles/gemm_kernel_test.dir/gemm_kernel_test.cc.o.d"
  "gemm_kernel_test"
  "gemm_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
