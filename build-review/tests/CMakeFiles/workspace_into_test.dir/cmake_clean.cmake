file(REMOVE_RECURSE
  "CMakeFiles/workspace_into_test.dir/workspace_into_test.cc.o"
  "CMakeFiles/workspace_into_test.dir/workspace_into_test.cc.o.d"
  "workspace_into_test"
  "workspace_into_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workspace_into_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
