# Empty compiler generated dependencies file for workspace_into_test.
# This may be replaced when dependencies are built.
