// Command-line training tool: train any model in the zoo on a synthetic
// (or CSV-loaded) skeleton dataset, with checkpointing and per-class
// evaluation reports.
//
// Examples:
//   dhgcn_train --model dhgcn --dataset ntu --split xsub --epochs 20
//       ... --save /tmp/dhgcn.ckpt
//   dhgcn_train --model stgcn --dataset kinetics --report
//   dhgcn_train --data_csv exported.csv --model agcn --stream bone
//   dhgcn_train --model dhgcn --load /tmp/dhgcn.ckpt --eval_only
//   dhgcn_train --model dhgcn --checkpoint /tmp/run.ckpt --resume
//       ... --checkpoint_every 5 --guardrails skip

#include <cstdio>
#include <string>

#include "base/fault_injection.h"
#include "base/flags.h"
#include "base/runtime_flags.h"
#include "base/string_util.h"
#include "data/csv_io.h"
#include "io/serialization.h"
#include "models/model_zoo.h"
#include "train/evaluator.h"
#include "train/experiment.h"
#include "train/summary.h"

namespace dhgcn {
namespace {

Result<SplitProtocol> ParseSplit(const std::string& text) {
  if (text == "xsub") return SplitProtocol::kCrossSubject;
  if (text == "xview") return SplitProtocol::kCrossView;
  if (text == "xset") return SplitProtocol::kCrossSetup;
  if (text == "random") return SplitProtocol::kRandom;
  return Status::InvalidArgument(
      StrCat("unknown split '", text, "' (xsub|xview|xset|random)"));
}

Result<InputStream> ParseStream(const std::string& text) {
  if (text == "joint") return InputStream::kJoint;
  if (text == "bone") return InputStream::kBone;
  if (text == "joint-motion") return InputStream::kJointMotion;
  if (text == "bone-motion") return InputStream::kBoneMotion;
  return Status::InvalidArgument(
      StrCat("unknown stream '", text,
             "' (joint|bone|joint-motion|bone-motion)"));
}

Status RunMain(int argc, const char* const* argv) {
  std::string model_name = "dhgcn";
  std::string dataset_name = "ntu";
  std::string data_csv;
  std::string split_name = "xsub";
  std::string stream_name = "joint";
  std::string save_path;
  std::string load_path;
  std::string checkpoint_path;
  std::string guardrails_name = "off";
  std::string fault_spec;
  int64_t checkpoint_every = 1;
  int64_t max_anomalies = 0;
  double loss_spike_factor = 0.0;
  bool resume = true;
  int64_t classes = 5;
  int64_t samples_per_class = 20;
  int64_t frames = 16;
  int64_t epochs = 20;
  int64_t batch_size = 8;
  int64_t kn = 3;
  int64_t km = 4;
  int64_t seed = 17;
  double lr = 0.05;
  bool eval_only = false;
  bool report = false;
  bool summary = false;
  bool augment = false;
  bool workspace = true;
  std::string plan_name = "off";
  RuntimeFlags rt;
  bool prune = false;
  double prune_sparsity = 0.8;
  int64_t prune_start = 1;
  int64_t prune_end = -1;
  bool help = false;

  FlagSet flags("dhgcn_train");
  flags.AddString("model", &model_name,
                  "tcn|stgcn|agcn|ahgcn|pbgcn{2,4,6}|pbhgcn{2,4,6}|dhgcn");
  flags.AddString("dataset", &dataset_name,
                  "synthetic dataset: ntu|ntu120|kinetics");
  flags.AddString("data_csv", &data_csv,
                  "load dataset from CSV instead of generating");
  flags.AddString("split", &split_name, "xsub|xview|xset|random");
  flags.AddString("stream", &stream_name,
                  "joint|bone|joint-motion|bone-motion");
  flags.AddString("save", &save_path, "weights path to write after training");
  flags.AddString("load", &load_path, "weights path to read before training");
  flags.AddString("checkpoint", &checkpoint_path,
                  "resumable training checkpoint path (atomic v2 format)");
  flags.AddInt64("checkpoint_every", &checkpoint_every,
                 "epochs between checkpoint writes");
  flags.AddBool("resume", &resume,
                "continue from --checkpoint when it exists");
  flags.AddString("guardrails", &guardrails_name,
                  "anomaly policy: off|skip|halve-lr|rollback|abort");
  flags.AddDouble("loss_spike_factor", &loss_spike_factor,
                  "flag loss > factor * running mean as anomaly (0 = off)");
  flags.AddInt64("max_anomalies", &max_anomalies,
                 "abort after this many anomalies (0 = unlimited)");
  flags.AddString("fault_inject", &fault_spec,
                  "arm deterministic faults, e.g. grad-nan:3,write-fail:1");
  flags.AddInt64("classes", &classes, "synthetic classes");
  flags.AddInt64("samples_per_class", &samples_per_class,
                 "synthetic samples per class");
  flags.AddInt64("frames", &frames, "frames per sequence");
  flags.AddInt64("epochs", &epochs, "training epochs");
  flags.AddInt64("batch_size", &batch_size, "minibatch size");
  flags.AddInt64("kn", &kn, "DHGCN k_n (joints per K-NN hyperedge)");
  flags.AddInt64("km", &km, "DHGCN k_m (K-means hyperedges)");
  flags.AddInt64("seed", &seed, "random seed");
  flags.AddDouble("lr", &lr, "initial learning rate");
  flags.AddBool("eval_only", &eval_only, "skip training");
  flags.AddBool("report", &report, "print per-class report");
  flags.AddBool("summary", &summary, "print the parameter summary");
  flags.AddBool("augment", &augment, "enable training augmentation");
  flags.AddBool("workspace", &workspace,
                "arena-backed (near-)zero-allocation training steps "
                "(bit-identical results; disable for debugging)");
  flags.AddString("plan", &plan_name,
                  "evaluation execution plan: off|on|fused (on = compiled "
                  "replay, bit-identical; fused = Conv+BN folding, "
                  "rtol-equivalent). Training is always layer-by-layer.");
  rt.Register(&flags);
  flags.AddBool("prune", &prune,
                "magnitude-prune weights on a cubic schedule, then "
                "fine-tune (masks re-applied every step)");
  flags.AddDouble("prune_sparsity", &prune_sparsity,
                  "target fraction of prunable weights zeroed");
  flags.AddInt64("prune_start", &prune_start,
                 "first epoch that prunes (0-based)");
  flags.AddInt64("prune_end", &prune_end,
                 "epoch the target sparsity is reached (-1 = one-shot "
                 "at --prune_start)");
  flags.AddBool("help", &help, "show usage");
  DHGCN_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (help) {
    std::printf("%s", flags.Usage().c_str());
    return Status::OK();
  }
  if (!fault_spec.empty()) {
    DHGCN_RETURN_IF_ERROR(FaultInjection::Get().ArmFromSpec(fault_spec));
    std::printf("fault injection armed: %s\n", fault_spec.c_str());
  }
  DHGCN_RETURN_IF_ERROR(rt.Apply());
  DHGCN_ASSIGN_OR_RETURN(PlanMode plan_mode, ParsePlanMode(plan_name));

  // --- Dataset -----------------------------------------------------------
  Result<SkeletonDataset> dataset_result = [&]() -> Result<SkeletonDataset> {
    if (!data_csv.empty()) return LoadDatasetCsv(data_csv);
    if (dataset_name == "ntu") {
      return SkeletonDataset::Generate(NtuLikeConfig(
          classes, samples_per_class, frames,
          static_cast<uint64_t>(seed)));
    }
    if (dataset_name == "ntu120") {
      SyntheticDataConfig config = NtuLikeConfig(
          classes, samples_per_class, frames, static_cast<uint64_t>(seed));
      config.num_subjects = 12;
      config.num_setups = 8;
      return SkeletonDataset::Generate(config);
    }
    if (dataset_name == "kinetics") {
      return SkeletonDataset::Generate(KineticsLikeConfig(
          classes, samples_per_class, frames,
          static_cast<uint64_t>(seed)));
    }
    return Status::InvalidArgument(
        StrCat("unknown dataset '", dataset_name,
               "' (ntu|ntu120|kinetics)"));
  }();
  DHGCN_RETURN_IF_ERROR(dataset_result.status());
  SkeletonDataset& dataset = *dataset_result;

  DHGCN_ASSIGN_OR_RETURN(SplitProtocol protocol, ParseSplit(split_name));
  DHGCN_ASSIGN_OR_RETURN(InputStream stream, ParseStream(stream_name));
  DatasetSplit split =
      MakeSplit(dataset, protocol, static_cast<uint64_t>(seed));
  std::printf("dataset: %lld samples (%lld classes), %s: %lld train / "
              "%lld test, stream=%s\n",
              static_cast<long long>(dataset.size()),
              static_cast<long long>(dataset.num_classes()),
              SplitProtocolName(protocol).c_str(),
              static_cast<long long>(split.train.size()),
              static_cast<long long>(split.test.size()),
              InputStreamName(stream).c_str());

  // --- Model -------------------------------------------------------------
  DHGCN_ASSIGN_OR_RETURN(ModelKind kind, ParseModelKind(model_name));
  ModelZooOptions zoo;
  zoo.scale.channels = {16, 32, 64};
  zoo.scale.strides = {1, 2, 2};
  zoo.scale.dropout = 0.0f;
  zoo.kn = kn;
  zoo.km = km;
  zoo.seed = static_cast<uint64_t>(seed);
  LayerPtr model =
      CreateModel(kind, dataset.layout_type(), dataset.num_classes(), zoo);
  std::printf("model: %s, %lld parameters\n", model->name().c_str(),
              static_cast<long long>(model->ParameterCount()));
  if (summary) std::printf("%s", ParameterSummary(*model).c_str());
  if (!load_path.empty()) {
    DHGCN_RETURN_IF_ERROR(LoadParameters(load_path, *model));
    std::printf("loaded checkpoint %s\n", load_path.c_str());
  }

  // --- Train -------------------------------------------------------------
  if (!eval_only) {
    DataLoader train_loader(&dataset, split.train, batch_size, stream,
                            /*shuffle=*/true,
                            Rng(static_cast<uint64_t>(seed) + 1));
    if (augment) {
      train_loader.SetAugmentation(AugmentationPipeline::Standard(frames));
    }
    TrainOptions train_options;
    train_options.epochs = epochs;
    train_options.initial_lr = static_cast<float>(lr);
    train_options.lr_milestones = {epochs * 3 / 5, epochs * 4 / 5};
    train_options.verbose = true;
    train_options.use_workspace = workspace;
    if (prune) {
      if (prune_sparsity < 0.0 || prune_sparsity >= 1.0) {
        return Status::InvalidArgument(StrCat(
            "--prune_sparsity must be in [0,1), got ", prune_sparsity));
      }
      train_options.prune.enabled = true;
      train_options.prune.target_sparsity = prune_sparsity;
      train_options.prune.start_epoch = prune_start;
      train_options.prune.end_epoch = prune_end;
    }
    if (guardrails_name != "off") {
      train_options.guardrails.enabled = true;
      DHGCN_ASSIGN_OR_RETURN(train_options.guardrails.policy,
                             ParseGuardrailPolicy(guardrails_name));
      train_options.guardrails.spike_factor =
          static_cast<float>(loss_spike_factor);
      train_options.guardrails.max_anomalies = max_anomalies;
    }
    Trainer trainer(model.get(), train_options);
    if (!checkpoint_path.empty()) {
      ResumeOptions resume_options;
      resume_options.checkpoint_path = checkpoint_path;
      resume_options.checkpoint_every = checkpoint_every;
      resume_options.resume = resume;
      DHGCN_ASSIGN_OR_RETURN(ResumedTraining resumed,
                             trainer.TrainWithResume(train_loader,
                                                     resume_options));
      if (resumed.resumed) {
        std::printf("resumed at epoch %lld from %s\n",
                    static_cast<long long>(resumed.start_epoch),
                    checkpoint_path.c_str());
      }
      std::printf("checkpoint: %s (%lld/%lld epochs complete)\n",
                  checkpoint_path.c_str(),
                  static_cast<long long>(resumed.completed_epochs),
                  static_cast<long long>(epochs));
    } else {
      DHGCN_RETURN_IF_ERROR(trainer.Train(train_loader).status());
    }
    const GuardrailCounters& guard = trainer.guardrail_counters();
    if (guard.anomalies > 0) {
      std::printf("guardrails: %lld anomalies, %lld skipped batches, "
                  "%lld LR halvings, %lld rollbacks\n",
                  static_cast<long long>(guard.anomalies),
                  static_cast<long long>(guard.skipped_batches),
                  static_cast<long long>(guard.lr_halvings),
                  static_cast<long long>(guard.rollbacks));
    }
  }

  // --- Evaluate / save ----------------------------------------------------
  DataLoader test_loader(&dataset, split.test, batch_size, stream,
                         /*shuffle=*/false);
  EvalOptions eval_options;
  eval_options.plan = plan_mode;
  eval_options.log_peak_bytes = plan_mode != PlanMode::kOff;
  eval_options.precision = rt.resolved_precision;
  // Int8 activation scales calibrate on training data (never the test
  // split: the eval must not see its own statistics).
  DataLoader calibration_loader(&dataset, split.train, batch_size, stream,
                                /*shuffle=*/false);
  eval_options.calibration_loader = &calibration_loader;
  EvalMetrics metrics = Evaluate(*model, test_loader, eval_options);
  std::printf("test[%s]: top-1 %.1f%%  top-5 %.1f%%  loss %.3f  (%lld "
              "samples)\n",
              PrecisionName(rt.resolved_precision), 100.0 * metrics.top1,
              100.0 * metrics.top5, metrics.loss,
              static_cast<long long>(metrics.count));
  if (report) {
    DataLoader report_loader(&dataset, split.test, batch_size, stream,
                             /*shuffle=*/false);
    ClassificationReport class_report =
        EvaluatePerClass(*model, report_loader, dataset.num_classes());
    std::printf("%s", class_report.ToString().c_str());
  }
  if (!save_path.empty()) {
    DHGCN_RETURN_IF_ERROR(SaveParameters(save_path, *model));
    std::printf("saved checkpoint %s\n", save_path.c_str());
  }
  return Status::OK();
}

}  // namespace
}  // namespace dhgcn

int main(int argc, char** argv) {
  dhgcn::Status status = dhgcn::RunMain(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
