// Serving driver + open-loop load benchmark for the fault-tolerant
// inference core (src/serve). Runs three phases against one server:
//
//   1. baseline   — the configured --qps for --duration_ms
//   2. overload   — qps * --overload_factor, optionally with faults
//                   armed (--fault_inject) and every Nth clip poisoned
//                   (--poison_every): overload must surface as explicit
//                   kOverloaded sheds and bounded p99, never a crash
//   3. recovery   — baseline qps again after a quiet gap; with --strict
//                   the run fails unless the degradation ladder stepped
//                   back to level 0 (full batch size)
//
// Examples:
//   dhgcn_serve --config tiny --qps 200 --duration_ms 1000
//   dhgcn_serve --qps 300 --overload_factor 4 --poison_every 97
//       --fault_inject worker-stall:5:40,queue-full:50
//       --bench_json BENCH_serving.json --strict

#include <cstdio>
#include <fstream>
#include <string>

// lint: allow-wallclock-file — the inter-phase quiet gap is a real
// sleep; everything else reads time through ServeClock.
#include <chrono>  // NOLINT(build/include_order)
#include <thread>

#include "base/fault_injection.h"
#include "base/flags.h"
#include "base/runtime_flags.h"
#include "base/string_util.h"
#include "serve/load_generator.h"
#include "serve/server.h"

namespace dhgcn {
namespace {

Result<SkeletonLayoutType> ParseLayout(const std::string& text) {
  if (text == "ntu") return SkeletonLayoutType::kNtu25;
  if (text == "kinetics") return SkeletonLayoutType::kKinetics18;
  return Status::InvalidArgument(
      StrCat("unknown layout '", text, "' (ntu|kinetics)"));
}

Result<DhgcnConfig> ParseConfig(const std::string& text,
                                SkeletonLayoutType layout,
                                int64_t classes, int64_t kn, int64_t km,
                                int64_t seed) {
  if (text == "tiny") return DhgcnConfig::Tiny(layout, classes);
  if (text == "small") return DhgcnConfig::Small(layout, classes);
  if (text == "paper") return DhgcnConfig::Paper(layout, classes);
  if (text == "zoo") {
    // Mirrors the model the dhgcn_train CLI builds (ModelKind::kDhgcn
    // with its fixed {16,32,64} scale), so `dhgcn_train --save` output
    // loads here with strict name/shape matching.
    DhgcnConfig config = DhgcnConfig::Small(layout, classes);
    config.blocks = {{16, 1, 1}, {32, 2, 1}, {64, 2, 1}};
    config.dropout = 0.0f;
    config.topology.kn = kn;
    config.topology.km = km;
    config.seed = static_cast<uint64_t>(seed);
    return config;
  }
  return Status::InvalidArgument(
      StrCat("unknown config '", text, "' (tiny|small|paper|zoo)"));
}

void PrintPhase(const std::string& label, const LoadGenReport& report,
                const HealthReport& health) {
  std::printf(
      "%-9s offered %5lld  ok %5lld  shed %4lld  expired %4lld  "
      "invalid %3lld | p50 %.2f ms  p99 %.2f ms  %.0f qps | "
      "health %s (level %lld, batch %lld)\n",
      label.c_str(), static_cast<long long>(report.offered),
      static_cast<long long>(report.ok),
      static_cast<long long>(report.shed),
      static_cast<long long>(report.expired),
      static_cast<long long>(report.invalid), report.p50_ms,
      report.p99_ms, report.throughput_qps,
      ServeHealthName(health.state).c_str(),
      static_cast<long long>(health.degrade_level),
      static_cast<long long>(health.target_batch_size));
}

Status RunMain(int argc, const char* const* argv) {
  std::string config_name = "tiny";
  std::string layout_name = "ntu";
  std::string checkpoint_path;
  std::string fault_spec;
  std::string bench_json;
  int64_t classes = 5;
  int64_t frames = 16;
  int64_t kn = 3;
  int64_t km = 4;
  int64_t workers = 2;
  int64_t queue_capacity = 64;
  int64_t max_batch = 8;
  int64_t deadline_ms = 50;
  double qps = 200.0;
  double overload_factor = 4.0;
  int64_t duration_ms = 1000;
  int64_t poison_every = 0;
  int64_t seed = 42;
  std::string plan_name = "off";
  RuntimeFlags rt;
  // Serving default: one intra-op thread per worker — parallelism
  // comes from --workers, not the compute pool.
  rt.threads = 1;
  bool strict = false;
  bool help = false;

  FlagSet flags("dhgcn_serve");
  flags.AddString("config", &config_name,
                  "model size: tiny|small|paper, or zoo = the exact "
                  "model dhgcn_train builds (serves its --save output)");
  flags.AddString("layout", &layout_name, "skeleton layout: ntu|kinetics");
  flags.AddInt64("classes", &classes, "output classes");
  flags.AddInt64("frames", &frames, "frames per clip");
  flags.AddInt64("kn", &kn, "zoo config: k_n (joints per K-NN hyperedge)");
  flags.AddInt64("km", &km, "zoo config: k_m (K-means hyperedges)");
  flags.AddString("checkpoint", &checkpoint_path,
                  "v2 weights to serve (empty = fresh weights)");
  flags.AddInt64("workers", &workers, "serving worker threads");
  flags.AddInt64("queue_capacity", &queue_capacity,
                 "bounded admission queue size");
  flags.AddInt64("max_batch", &max_batch, "micro-batch flush size");
  flags.AddInt64("deadline_ms", &deadline_ms, "per-request deadline");
  flags.AddDouble("qps", &qps, "baseline open-loop arrival rate");
  flags.AddDouble("overload_factor", &overload_factor,
                  "overload phase rate = qps * factor");
  flags.AddInt64("duration_ms", &duration_ms, "length of each phase");
  flags.AddString("fault_inject", &fault_spec,
                  "faults armed before the overload phase, e.g. "
                  "worker-stall:5:40,queue-full:50");
  flags.AddInt64("poison_every", &poison_every,
                 "overload phase: NaN-poison every Nth clip (0 = off)");
  flags.AddInt64("seed", &seed, "synthetic clip seed");
  flags.AddString("bench_json", &bench_json,
                  "write per-phase results to this JSON file");
  flags.AddString("plan", &plan_name,
                  "worker inference path: off|on|fused (on = compiled "
                  "execution plans per batch size, bit-identical; fused "
                  "= Conv+BN folding, rtol-equivalent)");
  rt.Register(&flags);
  flags.AddBool("strict", &strict,
                "fail unless overload shed explicitly and recovery "
                "returned to degrade level 0");
  flags.AddBool("help", &help, "show usage");
  DHGCN_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (help) {
    std::printf("%s", flags.Usage().c_str());
    return Status::OK();
  }
  DHGCN_RETURN_IF_ERROR(rt.Apply());
  if (overload_factor < 1.0) {
    return Status::InvalidArgument("--overload_factor must be >= 1");
  }

  DHGCN_ASSIGN_OR_RETURN(SkeletonLayoutType layout,
                         ParseLayout(layout_name));
  DHGCN_ASSIGN_OR_RETURN(
      DhgcnConfig config,
      ParseConfig(config_name, layout, classes, kn, km, seed));

  ServerOptions options;
  options.worker_count = workers;
  DHGCN_ASSIGN_OR_RETURN(options.plan_mode, ParsePlanMode(plan_name));
  options.precision = rt.resolved_precision;
  options.batcher.queue_capacity = queue_capacity;
  options.batcher.max_batch_size = max_batch;
  options.default_deadline_ns = deadline_ms * 1'000'000;
  DHGCN_ASSIGN_OR_RETURN(
      std::unique_ptr<InferenceServer> server,
      InferenceServer::Create(checkpoint_path, config, frames, options));
  std::printf(
      "serving %s/%s: %lld classes, %lld frames, %lld workers, queue "
      "%lld, batch %lld, deadline %lld ms, plan %s, precision %s\n",
      config_name.c_str(), layout_name.c_str(),
      static_cast<long long>(classes), static_cast<long long>(frames),
      static_cast<long long>(workers),
      static_cast<long long>(queue_capacity),
      static_cast<long long>(max_batch),
      static_cast<long long>(deadline_ms), PlanModeName(options.plan_mode),
      PrecisionName(options.precision));

  LoadGenOptions load;
  load.qps = qps;
  load.duration_ms = duration_ms;
  load.deadline_ms = deadline_ms;
  load.seed = static_cast<uint64_t>(seed);

  // Phase 1: baseline.
  LoadGenReport baseline = RunLoad(*server, load);
  HealthReport baseline_health = server->Health();
  ServeStats baseline_stats = server->Stats();
  PrintPhase("baseline", baseline, baseline_health);

  // Phase 2: overload, with faults armed and inputs poisoned.
  if (!fault_spec.empty()) {
    DHGCN_RETURN_IF_ERROR(FaultInjection::Get().ArmFromSpec(fault_spec));
    std::printf("fault injection armed: %s\n", fault_spec.c_str());
  }
  LoadGenOptions overload = load;
  overload.qps = qps * overload_factor;
  overload.poison_every_n = poison_every;
  overload.seed += 1;
  LoadGenReport overload_report = RunLoad(*server, overload);
  HealthReport overload_health = server->Health();
  ServeStats overload_stats = server->Stats();
  PrintPhase("overload", overload_report, overload_health);

  // Phase 3: recovery at baseline rate after a quiet gap long enough
  // for the ladder to step back up: one quiet period per degrade
  // level, plus one for slack (workers poll MaybeRecover while idle).
  int64_t gap_periods = overload_health.degrade_level + 1;
  std::this_thread::sleep_for(std::chrono::nanoseconds(
      gap_periods * server->options().batcher.recover_quiet_ns));
  LoadGenOptions recovery = load;
  recovery.seed += 2;
  LoadGenReport recovery_report = RunLoad(*server, recovery);
  HealthReport recovery_health = server->Health();
  PrintPhase("recovery", recovery_report, recovery_health);

  ServeStats stats = server->Stats();
  std::printf(
      "totals: %lld submitted, %lld batches (mean %.2f), %lld shed, "
      "%lld expired, %lld invalid, %lld degrade / %lld recover "
      "events, max depth %lld\n",
      static_cast<long long>(stats.submitted),
      static_cast<long long>(stats.batches),
      stats.batches > 0 ? static_cast<double>(stats.batched_requests) /
                              static_cast<double>(stats.batches)
                        : 0.0,
      static_cast<long long>(stats.shed_overloaded),
      static_cast<long long>(stats.expired),
      static_cast<long long>(stats.invalid_input),
      static_cast<long long>(stats.degrade_events),
      static_cast<long long>(stats.recover_events),
      static_cast<long long>(stats.max_queue_depth));

  if (!bench_json.empty()) {
    std::ofstream os(bench_json);
    if (!os) {
      return Status::IOError(StrCat("cannot write ", bench_json));
    }
    os << "{\n  \"benchmark\": \"dhgcn_serve\",\n"
       << "  \"config\": \"" << config_name << "\",\n"
       << "  \"workers\": " << workers << ",\n"
       << "  \"queue_capacity\": " << queue_capacity << ",\n"
       << "  \"max_batch\": " << max_batch << ",\n"
       << "  \"deadline_ms\": " << deadline_ms << ",\n"
       << "  \"overload_factor\": " << overload_factor << ",\n"
       << "  \"phases\": [\n"
       << LoadGenReportJson("baseline", baseline, baseline_stats,
                            baseline_health)
       << ",\n"
       << LoadGenReportJson("overload", overload_report, overload_stats,
                            overload_health)
       << ",\n"
       << LoadGenReportJson("recovery", recovery_report, stats,
                            recovery_health)
       << "\n  ]\n}\n";
    std::printf("wrote %s\n", bench_json.c_str());
  }

  if (strict) {
    // The robustness contract the soak job enforces: overload must shed
    // explicitly (or expire) rather than crash or stall, the deadline
    // must bound OK latency, and the ladder must fully recover.
    if (overload_report.shed + overload_report.expired == 0) {
      return Status::Internal(
          "strict: overload phase neither shed nor expired — the "
          "open-loop rate was not an overload");
    }
    double bound_ms =
        static_cast<double>(deadline_ms) + 100.0;  // scheduling slack
    if (overload_report.p99_ms > bound_ms) {
      return Status::Internal(
          StrCat("strict: overload p99 ", overload_report.p99_ms,
                 " ms exceeds deadline bound ", bound_ms, " ms"));
    }
    if (recovery_health.degrade_level != 0) {
      return Status::Internal(
          StrCat("strict: degrade level still ",
                 recovery_health.degrade_level, " after recovery"));
    }
    if (poison_every > 0 && overload_report.invalid == 0) {
      return Status::Internal(
          "strict: poisoned clips were not quarantined");
    }
    std::printf("strict checks passed\n");
  }
  server->Shutdown();
  return Status::OK();
}

}  // namespace
}  // namespace dhgcn

int main(int argc, char** argv) {
  dhgcn::Status status = dhgcn::RunMain(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
