// Dataset utility: generate synthetic skeleton datasets and export them
// to CSV, or inspect an existing CSV export.
//
// Examples:
//   dhgcn_dataset --generate --dataset ntu --classes 6 --out data.csv
//   dhgcn_dataset --inspect data.csv

#include <cstdio>
#include <map>
#include <string>

#include "base/flags.h"
#include "base/string_util.h"
#include "data/csv_io.h"
#include "train/experiment.h"

namespace dhgcn {
namespace {

Status RunMain(int argc, const char* const* argv) {
  bool generate = false;
  bool inspect = false;
  bool help = false;
  std::string dataset_name = "ntu";
  std::string out_path;
  int64_t classes = 5;
  int64_t samples_per_class = 20;
  int64_t frames = 16;
  int64_t seed = 17;

  FlagSet flags("dhgcn_dataset");
  flags.AddBool("generate", &generate, "generate a synthetic dataset");
  flags.AddBool("inspect", &inspect, "inspect a CSV dataset (positional)");
  flags.AddString("dataset", &dataset_name, "ntu|ntu120|kinetics");
  flags.AddString("out", &out_path, "output CSV path for --generate");
  flags.AddInt64("classes", &classes, "number of action classes");
  flags.AddInt64("samples_per_class", &samples_per_class,
                 "samples per class");
  flags.AddInt64("frames", &frames, "frames per sequence");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddBool("help", &help, "show usage");
  DHGCN_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (help || (!generate && !inspect)) {
    std::printf("%s", flags.Usage().c_str());
    return Status::OK();
  }

  if (generate) {
    if (out_path.empty()) {
      return Status::InvalidArgument("--generate requires --out");
    }
    SyntheticDataConfig config;
    if (dataset_name == "ntu") {
      config = NtuLikeConfig(classes, samples_per_class, frames,
                             static_cast<uint64_t>(seed));
    } else if (dataset_name == "ntu120") {
      config = NtuLikeConfig(classes, samples_per_class, frames,
                             static_cast<uint64_t>(seed));
      config.num_subjects = 12;
      config.num_setups = 8;
    } else if (dataset_name == "kinetics") {
      config = KineticsLikeConfig(classes, samples_per_class, frames,
                                  static_cast<uint64_t>(seed));
    } else {
      return Status::InvalidArgument(
          StrCat("unknown dataset '", dataset_name, "'"));
    }
    DHGCN_ASSIGN_OR_RETURN(SkeletonDataset dataset,
                           SkeletonDataset::Generate(config));
    DHGCN_RETURN_IF_ERROR(SaveDatasetCsv(out_path, dataset));
    std::printf("wrote %lld samples to %s\n",
                static_cast<long long>(dataset.size()), out_path.c_str());
    return Status::OK();
  }

  // --inspect <file>
  if (flags.positional().empty()) {
    return Status::InvalidArgument("--inspect requires a CSV path");
  }
  DHGCN_ASSIGN_OR_RETURN(SkeletonDataset dataset,
                         LoadDatasetCsv(flags.positional()[0]));
  std::printf("dataset: %lld samples, %lld classes, layout %s\n",
              static_cast<long long>(dataset.size()),
              static_cast<long long>(dataset.num_classes()),
              dataset.layout().name.c_str());
  std::map<int64_t, int64_t> per_class, per_subject, per_camera, per_setup;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const SkeletonSample& sample = dataset.sample(i);
    ++per_class[sample.label];
    ++per_subject[sample.subject];
    ++per_camera[sample.camera];
    ++per_setup[sample.setup];
  }
  auto print_histogram = [](const char* name,
                            const std::map<int64_t, int64_t>& hist) {
    std::printf("%s:", name);
    for (const auto& [key, count] : hist) {
      std::printf(" %lld:%lld", static_cast<long long>(key),
                  static_cast<long long>(count));
    }
    std::printf("\n");
  };
  print_histogram("classes ", per_class);
  print_histogram("subjects", per_subject);
  print_histogram("cameras ", per_camera);
  print_histogram("setups  ", per_setup);
  return Status::OK();
}

}  // namespace
}  // namespace dhgcn

int main(int argc, char** argv) {
  dhgcn::Status status = dhgcn::RunMain(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
