// Fixture: discarded call result without justification (rule discard).
namespace dhgcn {

int SideEffect();

void Run() {
  (void)SideEffect();
}

}  // namespace dhgcn
