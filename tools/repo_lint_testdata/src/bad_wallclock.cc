// Fixture: hidden entropy in library code (rule no-wallclock).
#include <cstdlib>

namespace dhgcn {

int Entropy() {
  return rand();
}

}  // namespace dhgcn
