// Fixture: ctor-time slot pre-building is the sanctioned exception —
// every violating line carries the line-level escape hatch.
namespace dhgcn {

void PlanRunnerAllowedSetup() {
  slots_.reserve(16);  // lint: allow-plan-alloc (ctor setup)
  // lint: allow-plan-alloc (ctor setup); lint: allow-ws-lifetime (pinned)
  slots_.push_back(arena_.BorrowAt(0, {4, 4}));
}

}  // namespace dhgcn
