// Fixture: allocation in the plan-replay hot path must be flagged.
namespace dhgcn {

void PlanRunnerBadRun(int* count) {
  // A runner that grows a container per replayed op defeats the whole
  // zero-steady-state-allocation contract.
  results_.push_back(*count);
}

}  // namespace dhgcn
