// Fixture: SIMD intrinsic outside the GEMM kernel TU (rule simd).
namespace dhgcn {

float FirstLane(const float* x) {
  return _mm_cvtss_f32(_mm_loadu_ps(x));
}

}  // namespace dhgcn
