// Fixture: SIMD intrinsics outside the GEMM kernel TU (rule simd) —
// one fp32 intrinsic call, one int8 vector-register declaration (the
// type alone trips the rule, no intrinsic call needed).
namespace dhgcn {

float FirstLane(const float* x) {
  return _mm_cvtss_f32(_mm_loadu_ps(x));
}

int WidePopcount(const void* p) {
  __m256i v = *static_cast<const __m256i*>(p);
  return static_cast<int>(reinterpret_cast<const char*>(&v)[0]);
}

}  // namespace dhgcn
