// Fixture: unbounded condition wait in serving code (rule serve-wait).
namespace dhgcn {

struct FixtureCv {
  void wait(int& lock);
  void wait_for(int& lock, long timeout_ns);
};

void ServeLoop(FixtureCv& cv, int& lock) {
  cv.wait_for(lock, 50);  // bounded: allowed
  cv.wait(lock);          // unbounded: the finding
}

}  // namespace dhgcn
