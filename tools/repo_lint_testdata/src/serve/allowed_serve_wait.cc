// Fixture: serve-wait violation justified by the adjacent escape hatch —
// the self-test asserts this file produces zero findings.
namespace dhgcn {

struct FixtureEscapeCv {
  void wait(int& lock);
};

void DrainForever(FixtureEscapeCv& cv, int& lock) {
  // lint: allow-serve-wait — fixture exercising the escape hatch.
  cv.wait(lock);
}

}  // namespace dhgcn
