// Fixture: exceptions are banned in library code (rule no-throw).
#include <stdexcept>

namespace dhgcn {

int Parse(int x) {
  if (x < 0) throw std::runtime_error("negative");
  return x;
}

}  // namespace dhgcn
