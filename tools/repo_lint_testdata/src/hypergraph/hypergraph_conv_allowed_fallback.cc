// Fixture: the router's reviewed dense fallback is the sanctioned
// exception — every dense call carries the line-level escape hatch.
namespace dhgcn {

void RoutedVertexMix(const Tensor& op, const Tensor& x, Tensor* y) {
  if (SparseRouter::Get().ShouldRoute(OperandDensity(op))) {
    SpMMTransposedBInto(x, CachedCsr(op), y);
    return;
  }
  // lint: allow-sparse-route (router dense fallback)
  MatMulTransposedBInto(x, op, y);
}

}  // namespace dhgcn
