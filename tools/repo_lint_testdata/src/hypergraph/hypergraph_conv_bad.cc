// Fixture: dense GEMM on an incidence operand bypassing the router
// (rule sparse-route).
namespace dhgcn {

void UnroutedVertexMix(const Tensor& op, const Tensor& x, Tensor* y) {
  // Contracting against the (V, V) aggregation operator without asking
  // SparseRouter defeats density-adaptive execution.
  MatMulTransposedBInto(x, op, y);
}

}  // namespace dhgcn
