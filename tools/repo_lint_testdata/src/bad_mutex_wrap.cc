// Fixture: raw std:: lock type outside base/thread_annotations.h
// (rule mutex-wrap). std::lock_guard carries no capability attributes,
// so Clang's thread-safety analysis cannot see what it guards.
#include "base/thread_annotations.h"

namespace dhgcn {

void LockWithRawGuard(Mutex& mu) {
  std::lock_guard<Mutex> lock(mu);
}

}  // namespace dhgcn
