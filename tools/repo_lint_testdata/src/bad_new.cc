// Fixture: naked allocation in library code (rule no-naked-new).
namespace dhgcn {

float* Allocate(int n) {
  return new float[n];
}

}  // namespace dhgcn
