// Fixture: every rule violated once, every violation justified — the
// self-test asserts this file produces zero findings.
// lint: allow-throw-file — exercising the file-level escape hatch.
#include <chrono>
#include <mutex>
#include <stdexcept>

namespace dhgcn {

int SideEffect();

void Run() {
  if (SideEffect() < 0) throw std::runtime_error("file-level allow");
  // lint: allow-discard — called for its side effect only.
  (void)SideEffect();
  // lint: allow-naked-new — fixture for the adjacent-line escape hatch.
  float* buffer = new float[4];
  delete[] buffer;
  // lint: allow-wallclock — wall-clock time never reaches training state.
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  // lint: allow-thread — fixture exercising the thread-rule escape hatch.
  // lint: allow-mutex-wrap — same line also trips the raw-lock-type rule.
  static std::mutex escape_mu;
  escape_mu.lock();
  escape_mu.unlock();
  // lint: allow-simd — fixture exercising the simd-rule escape hatch.
  int supports_avx = __builtin_cpu_supports("avx");
  // lint: allow-simd — int8 vector-register token behind the same hatch.
  __m256i wide = {};
  if (supports_avx < 0 || sizeof(wide) == 0) SideEffect();
}

class Tensor;
class Workspace;
void Consume(const Tensor& t);

// Never compiled, only linted: both ws-lifetime shapes, each escaped.
struct PinnedSlots {
  void Rebuild(Workspace& arena) {
    // lint: allow-ws-lifetime — pinned arena, offsets stable across Reset.
    slot_ = arena.BorrowAt(0, {4, 4});
  }
  Tensor slot_;
};

void WsLifetimeEscape(Workspace& ws) {
  auto tile = ws.Acquire({8});
  ws.Reset();
  // lint: allow-ws-lifetime — fixture: stale use, explicitly escaped.
  Consume(tile);
}

// lint: allow-fwd-bwd-pair-file — inference-only layer, no backward.
class InferenceOnlyLayer {
 public:
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out);
};

}  // namespace dhgcn
