// Fixture: raw threading primitive outside the pool (rule thread).
#include <mutex>

namespace dhgcn {

std::mutex ad_hoc_mu;

}  // namespace dhgcn
