// Fixture: raw threading primitive outside the pool (rule thread).
// Uses std::thread (not std::mutex) so the finding stays distinct from
// the mutex-wrap rule's fixture.
#include <thread>

namespace dhgcn {

void SpawnAdHocThread() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace dhgcn
