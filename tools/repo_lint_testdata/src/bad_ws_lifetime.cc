// Fixture: both shapes of the workspace-lifetime bug (rule ws-lifetime).
#include "tensor/workspace.h"

namespace dhgcn {

struct LogitsCache {
  Tensor cached_;

  void Fill(Workspace& ws) {
    // Finding 1: the acquired tensor outlives the acquiring scope, so
    // the member dangles at the arena's next Reset().
    cached_ = ws.Acquire({4, 4});
  }
};

float UseAfterReset(Workspace& ws) {
  Tensor scratch_tile = ws.Acquire({8});
  ws.Reset();
  // Finding 2: Reset() above recycled scratch_tile's storage.
  return scratch_tile.flat(0);
}

}  // namespace dhgcn
