// Fixture: ForwardInto without a shared-impl BackwardInto (rule
// fwd-bwd-pair).
namespace dhgcn {

class Tensor;
class Workspace;

class HalfLayer {
 public:
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out);
};

}  // namespace dhgcn
