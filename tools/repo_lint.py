#!/usr/bin/env python3
"""repo_lint: in-tree static checks for repo invariants clang cannot see.

Rules (see DESIGN.md §7 for the rationale):

  throw          `throw` / `try` blocks are banned outside tests/. The
                 library reports recoverable failures through Status /
                 Result<T> and programming errors through DHGCN_CHECK.
  naked-new      `new` / `malloc`-family calls are banned in src/ and
                 tools/. Owning allocations go through std::make_unique /
                 containers; arena memory goes through Workspace.
  wallclock      `rand()` / `srand()` / `std::random_device` /
                 `std::chrono` are banned in src/ (library code): hidden
                 entropy or wall-clock reads break deterministic resume.
                 Seeded dhgcn::Rng and base/timer.h are the blessed paths.
  fwd-bwd-pair   Every file in src/ that mentions `ForwardInto` must also
                 implement `BackwardInto` (the shared-impl contract from
                 the workspace-planned execution design).
  discard        `(void)expr(...)` / `static_cast<void>(expr(...))` casts
                 that swallow a call result need an adjacent
                 `// lint: allow-discard` justification.
  thread         Raw threading primitives (std::thread / std::async /
                 std::mutex / std::condition_variable and friends) are
                 banned everywhere except src/base/thread_pool.{h,cc}.
                 All intra-op parallelism goes through ThreadPool so the
                 static-partitioning determinism contract holds; ad-hoc
                 threads would race it. (The serving core carries
                 file-level allows: its inter-request concurrency is the
                 reviewed exception, see DESIGN.md §11.)
  serve-wait     In src/serve/, unbounded blocking is banned: condition
                 waits must be `wait_for`/`wait_until` (or the wrapper's
                 `WaitForNanos`; a bare `.wait(` / `CondVar::Wait` can
                 deadlock the serving loop forever) and queues must be
                 bounded preallocated vectors, never std::queue /
                 std::deque / std::list.
  mutex-wrap     Raw std:: lock types (std::mutex / std::lock_guard /
                 std::unique_lock and friends) are banned in src/ and
                 tools/ outside base/thread_annotations.h. Locking goes
                 through dhgcn::Mutex / MutexLock / CondVar so every
                 guarded invariant is visible to Clang's thread-safety
                 analysis (-Wthread-safety); a raw std::mutex is a blind
                 spot the analysis silently skips.
  ws-lifetime    A tensor acquired from a Workspace arena
                 (`Acquire` / `AcquireZeroed` / `BorrowAt`) is valid only
                 until the arena's next `Reset()` and only within the
                 acquiring scope: storing one into a member / static, or
                 using it after a `Reset()` of its arena in the same
                 function, is a use-after-invalidation bug the type
                 system cannot see. (PlanRunner's pinned-arena slots are
                 the reviewed exception, escaped line-by-line.)
  sparse-route   In src/hypergraph/hypergraph_conv.*, direct dense GEMM
                 calls (MatMul / MatMulInto / MatMulTransposedB*) on the
                 incidence-shaped operands are banned: the mix operators
                 must ask SparseRouter and take the CSR SpMM path when
                 the operand is sparse enough. The router's own dense
                 fallback branches are the reviewed exception, escaped
                 line-by-line with `lint: allow-sparse-route`.
  plan-alloc     In src/plan/plan_runner.*, allocation and dynamic
                 dispatch are banned: PlanRunner::Run is the compiled
                 replay hot loop whose contract is zero steady-state
                 allocations and zero virtual calls. No make_unique /
                 new / push_back / reserve / resize / NewTensor /
                 Acquire / Clone / BorrowAt, and no `->Forward(` /
                 `LayerForward(` virtual-dispatch re-entry — slots are
                 pre-built in the constructor (which carries line-level
                 allows) and kernels are called non-virtually.

Escape hatches: a finding on line N is suppressed when line N, N-1 or N-2
contains `lint: allow-<rule>` (e.g. `// lint: allow-naked-new — arena`).
A file-level `// lint: allow-<rule>-file` anywhere in the file suppresses
the rule for the whole file.

Usage:
  repo_lint.py [--root DIR] [paths...]   lint the tree (or just `paths`)
  repo_lint.py --self-test               run against the bundled fixtures

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import os
import re
import sys

# (rule id, path prefixes the rule applies to, compiled pattern)
TESTS = ("tests/",)
LIBRARY = ("src/",)
LIBRARY_AND_TOOLS = ("src/", "tools/")
NON_TEST = ("src/", "tools/", "bench/", "examples/")
SERVING = ("src/serve/",)
PLAN_RUNNER = ("src/plan/plan_runner",)
HYPERGRAPH_CONV = ("src/hypergraph/hypergraph_conv",)

RULES = [
    (
        "throw",
        NON_TEST,
        re.compile(r"\bthrow\b|\btry\s*\{|\bcatch\s*\("),
        "exceptions are banned outside tests/ (use Status/Result or DHGCN_CHECK)",
    ),
    (
        "naked-new",
        LIBRARY_AND_TOOLS,
        re.compile(r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("),
        "naked allocation (use make_unique/containers or Workspace)",
    ),
    (
        "wallclock",
        LIBRARY,
        re.compile(r"std::chrono\b|\brand\s*\(|\bsrand\s*\(|std::random_device\b"),
        "hidden entropy / wall clock in library code breaks deterministic resume",
    ),
    (
        "discard",
        NON_TEST + TESTS,
        re.compile(r"(\(void\)|static_cast<\s*void\s*>\s*\()\s*[A-Za-z_:][\w:.\->]*\s*\("),
        "discarded call result needs a `// lint: allow-discard` justification",
    ),
    (
        "thread",
        NON_TEST + TESTS,
        re.compile(
            r"std::(thread|jthread|async|mutex|recursive_mutex|timed_mutex"
            r"|shared_mutex|condition_variable|condition_variable_any)\b"
        ),
        "raw threading primitive (route parallelism through "
        "base/thread_pool.h so determinism holds)",
    ),
    (
        "serve-wait",
        SERVING,
        re.compile(r"\.wait\s*\(|\.Wait\s*\(|std::(queue|deque|list)\b"),
        "unbounded blocking in serving code: use wait_for/wait_until/"
        "WaitForNanos with a deadline and bounded vector-backed queues",
    ),
    (
        "mutex-wrap",
        LIBRARY_AND_TOOLS,
        re.compile(
            r"std::(lock_guard|unique_lock|scoped_lock|shared_lock"
            r"|mutex|recursive_mutex|timed_mutex|shared_mutex"
            r"|shared_timed_mutex|condition_variable"
            r"|condition_variable_any)\b"
        ),
        "raw std:: lock type (use dhgcn::Mutex/MutexLock/CondVar from "
        "base/thread_annotations.h so -Wthread-safety sees the lock)",
    ),
    (
        "sparse-route",
        HYPERGRAPH_CONV,
        re.compile(r"\bMatMul(?:TransposedB)?(?:Into)?\s*\("),
        "direct dense GEMM on an incidence operand (route through "
        "SparseRouter + SpMM*; the dense fallback branch carries a "
        "`lint: allow-sparse-route` escape)",
    ),
    (
        "plan-alloc",
        PLAN_RUNNER,
        re.compile(
            r"\bmake_unique\b|\bmake_shared\b|\bnew\b"
            r"|\.push_back\s*\(|\.emplace_back\s*\("
            r"|\.reserve\s*\(|\.resize\s*\("
            r"|\bNewTensor\s*\(|\bNewZeroedTensor\s*\("
            r"|\.Acquire\s*\(|\bAcquireZeroed\s*\(|\.Clone\s*\("
            r"|\bBorrowAt\s*\("
            r"|->Forward\s*\(|\.Forward\s*\(|\bLayerForward\s*\("
        ),
        "allocation / virtual dispatch in the plan-replay hot path "
        "(pre-build slots in the ctor; call kernels non-virtually)",
    ),
    (
        "simd",
        NON_TEST + TESTS,
        re.compile(
            r"#\s*include\s*<\w*intrin\.h>"
            r"|\b_mm\d*_\w+\s*\("
            # Vector register types (__m128/__m256/__m512 and the int8/
            # integer i and double d variants) — catches ISA-specific
            # code that only declares registers without calling an
            # intrinsic on the same line.
            r"|\b__m\d{3}[id]?\b"
            r"|__builtin_cpu_supports\b"
            r"|__attribute__\s*\(\(\s*target\b"
            r"|\bvector_size\s*\("
            r"|#\s*pragma\s+(GCC\s+(ivdep|unroll|target)|omp\s+simd"
            r"|clang\s+loop)"
        ),
        "SIMD intrinsics / ISA-specific codegen are confined to the "
        "blocked GEMM kernel TU (src/tensor/gemm_kernel.*)",
    ),
]

# The one place threading primitives are allowed: the pool that wraps them.
THREAD_RULE_EXEMPT = {
    "src/base/thread_pool.h",
    "src/base/thread_pool.cc",
}

# The one place raw std:: lock types are allowed: the annotated wrapper
# that hides them behind capability attributes.
MUTEX_WRAP_RULE_EXEMPT = {
    "src/base/thread_annotations.h",
}

# The arena implementation itself hands out the borrows the ws-lifetime
# rule polices, so its own internals are exempt.
WS_LIFETIME_RULE = "ws-lifetime"
WS_LIFETIME_RULE_EXEMPT = {
    "src/tensor/workspace.h",
    "src/tensor/workspace.cc",
}

# The one place ISA-specific codegen is allowed: the micro-kernel TU
# family (fp32 and int8 blocked GEMM), where the runtime-dispatch and
# register-tile idioms live. Everything else must stay portable C++ and
# inherit vectorization through it.
SIMD_RULE_EXEMPT = {
    "src/tensor/gemm_kernel.h",
    "src/tensor/gemm_kernel.cc",
    "src/tensor/gemm_kernel_int8.h",
    "src/tensor/gemm_kernel_int8.cc",
}

PAIR_RULE = "fwd-bwd-pair"
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")
SKIP_DIRS = {"build", "build-asan", ".git", "repo_lint_testdata", "third_party"}

# `new` legitimately appears in includes of <new> and in nothrow/new-expression
# machinery we do not want to flag.
NEW_FALSE_POSITIVES = re.compile(r"#include\s*<new>|std::nothrow")

STRING_OR_CHAR = re.compile(r'"(\\.|[^"\\])*"|' + r"'(\\.|[^'\\])*'")
LINE_COMMENT = re.compile(r"//.*$")


def strip_code_line(line, in_block_comment):
    """Returns (code-only text, still-in-block-comment) for one line."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        start = line.find("/*", i)
        if start < 0:
            out.append(line[i:])
            break
        out.append(line[i:start])
        in_block_comment = True
        i = start + 2
    code = "".join(out)
    code = STRING_OR_CHAR.sub('""', code)
    code = LINE_COMMENT.sub("", code)
    return code, in_block_comment


# --- ws-lifetime pass ------------------------------------------------------
#
# Works on assembled statements (lines joined until parentheses balance
# and a `;`/`{`/`}` appears) so multi-line acquires are seen whole. Two
# violation shapes:
#
#   1. storing an acquired tensor into a member (`foo_ = ws.Acquire(...)`,
#      `foo_.push_back(ws.BorrowAt(...))`) or a static — the pointer then
#      outlives the acquiring scope and dangles at the next Reset();
#   2. using a locally-acquired tensor after its arena's Reset() in the
#      same function body.
#
# Deliberately conservative: only local declarations of the form
# `Tensor x = ws.Acquire(...)` / `auto x = ...` are lifetime-tracked, and
# tracking expires with the enclosing brace scope.

WS_ACQUIRE = r"(?:Acquire|AcquireZeroed|BorrowAt)\s*\("
WS_DECL = re.compile(
    r"\b(?:Tensor|auto)\s+(\w+)\s*=\s*(\w+)\s*(?:\.|->)\s*" + WS_ACQUIRE
)
WS_MEMBER_STORE = re.compile(
    r"\b(?:this\s*->\s*)?\w+_\s*(?:\[[^\]]*\]\s*)?=(?!=)[^;=]*\b" + WS_ACQUIRE
)
WS_MEMBER_PUSH = re.compile(
    r"\b(?:this\s*->\s*)?\w+_\s*\.\s*"
    r"(?:push_back|emplace_back|insert|assign|push|append)\s*\("
    r"[^;]*\b" + WS_ACQUIRE
)
WS_STATIC_STORE = re.compile(r"\bstatic\b[^;=()]*=[^;=]*\b" + WS_ACQUIRE)
WS_RESET = re.compile(r"\b(\w+)\s*(?:\.|->)\s*Reset\s*\(\s*\)")


def assemble_statements(code_lines):
    """Yields (start_idx, text, open_braces, close_braces) statements."""
    buf = []
    start = None
    paren_depth = 0
    for idx, code in enumerate(code_lines):
        if start is None:
            if not code.strip():
                continue
            start = idx
        buf.append(code)
        paren_depth += code.count("(") - code.count(")")
        if paren_depth <= 0 and re.search(r"[;{}]", code):
            text = " ".join(buf)
            yield start, text, text.count("{"), text.count("}")
            buf = []
            start = None
            paren_depth = 0
    if buf:
        text = " ".join(buf)
        yield start, text, text.count("{"), text.count("}")


def lint_ws_lifetime(rel_path, code_lines, allowed):
    findings = []
    alive = {}  # var -> (arena var, brace depth at declaration)
    dead = {}  # var -> (arena var, brace depth, reset line)
    depth = 0
    for start, text, opens, closes in assemble_statements(code_lines):
        stored = (
            WS_MEMBER_STORE.search(text)
            or WS_MEMBER_PUSH.search(text)
            or WS_STATIC_STORE.search(text)
        )
        if stored and not allowed(WS_LIFETIME_RULE, start):
            findings.append(
                Finding(
                    rel_path,
                    start + 1,
                    WS_LIFETIME_RULE,
                    "workspace-acquired tensor stored beyond the acquiring "
                    "scope (dangles at the arena's next Reset)",
                )
            )
        decl = WS_DECL.search(text)
        for var, (arena, var_depth, reset_line) in list(dead.items()):
            if decl is not None and decl.group(1) == var:
                continue  # redeclared below; not a stale use
            if re.search(rf"\b{re.escape(var)}\b", text) and not allowed(
                WS_LIFETIME_RULE, start
            ):
                findings.append(
                    Finding(
                        rel_path,
                        start + 1,
                        WS_LIFETIME_RULE,
                        f"`{var}` used after its arena's Reset() on line "
                        f"{reset_line} invalidated it",
                    )
                )
                del dead[var]
        if decl is not None:
            var = decl.group(1)
            dead.pop(var, None)
            alive[var] = (decl.group(2), depth)
        reset = WS_RESET.search(text)
        if reset is not None:
            arena = reset.group(1)
            for var, (var_arena, var_depth) in list(alive.items()):
                if var_arena == arena:
                    dead[var] = (var_arena, var_depth, start + 1)
                    del alive[var]
        depth += opens - closes
        if closes > opens:
            alive = {v: t for v, t in alive.items() if t[1] <= depth}
            dead = {v: t for v, t in dead.items() if t[1] <= depth}
    return findings


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rule_applies(prefixes, rel_path):
    return any(rel_path.startswith(p) for p in prefixes)


def lint_file(root, rel_path):
    findings = []
    abs_path = os.path.join(root, rel_path)
    try:
        with open(abs_path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [Finding(rel_path, 0, "io", f"cannot read file: {e}")]

    file_allows = set()
    for line in raw_lines:
        for m in re.finditer(r"lint:\s*allow-([\w-]+)-file", line):
            file_allows.add(m.group(1))

    code_lines = []
    in_block = False
    for line in raw_lines:
        code, in_block = strip_code_line(line, in_block)
        code_lines.append(code)

    def allowed(rule, idx):
        if rule in file_allows:
            return True
        lo = max(0, idx - 2)
        return any(
            f"lint: allow-{rule}" in raw_lines[j] for j in range(lo, idx + 1)
        )

    for rule, prefixes, pattern, message in RULES:
        if not rule_applies(prefixes, rel_path):
            continue
        if rule == "thread" and rel_path in THREAD_RULE_EXEMPT:
            continue
        if rule == "simd" and rel_path in SIMD_RULE_EXEMPT:
            continue
        if rule == "mutex-wrap" and rel_path in MUTEX_WRAP_RULE_EXEMPT:
            continue
        for idx, code in enumerate(code_lines):
            if not pattern.search(code):
                continue
            if rule == "naked-new" and NEW_FALSE_POSITIVES.search(
                raw_lines[idx]
            ):
                continue
            if allowed(rule, idx):
                continue
            findings.append(Finding(rel_path, idx + 1, rule, message))

    if (
        rule_applies(LIBRARY, rel_path)
        and rel_path not in WS_LIFETIME_RULE_EXEMPT
        and WS_LIFETIME_RULE not in file_allows
    ):
        findings.extend(lint_ws_lifetime(rel_path, code_lines, allowed))

    if rule_applies(LIBRARY, rel_path) and PAIR_RULE not in file_allows:
        joined = "\n".join(code_lines)
        if "ForwardInto" in joined and "BackwardInto" not in joined:
            line_no = next(
                i + 1 for i, c in enumerate(code_lines) if "ForwardInto" in c
            )
            findings.append(
                Finding(
                    rel_path,
                    line_no,
                    PAIR_RULE,
                    "file uses ForwardInto but implements no BackwardInto "
                    "(shared-impl contract)",
                )
            )
    return findings


def collect_files(root):
    out = []
    for scope in ("src", "tools", "bench", "examples", "tests"):
        scope_dir = os.path.join(root, scope)
        if not os.path.isdir(scope_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(scope_dir):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    out.append(
                        os.path.relpath(os.path.join(dirpath, name), root)
                    )
    return sorted(out)


def run_lint(root, paths=None):
    rel_paths = paths if paths else collect_files(root)
    findings = []
    for rel in rel_paths:
        findings.extend(lint_file(root, rel))
    return findings


def self_test():
    """Lints the bundled fixture tree and checks each rule fires once."""
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_root = os.path.join(here, "repo_lint_testdata")
    if not os.path.isdir(fixture_root):
        print(f"repo_lint self-test: missing fixtures at {fixture_root}")
        return 2

    findings = run_lint(fixture_root)
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)

    # rule -> (fixture path, expected finding count in that file)
    expected = {
        "throw": ("src/bad_throw.cc", 1),
        "naked-new": ("src/bad_new.cc", 1),
        "wallclock": ("src/bad_wallclock.cc", 1),
        "discard": ("src/bad_discard.cc", 1),
        "thread": ("src/bad_thread.cc", 1),
        "serve-wait": ("src/serve/bad_serve_wait.cc", 1),
        "plan-alloc": ("src/plan/plan_runner_bad.cc", 1),
        "sparse-route": ("src/hypergraph/hypergraph_conv_bad.cc", 1),
        "simd": ("src/bad_simd.cc", 2),
        "mutex-wrap": ("src/bad_mutex_wrap.cc", 1),
        # Two shapes of the lifetime bug: a member store and a
        # use-after-Reset, both in the one fixture.
        WS_LIFETIME_RULE: ("src/bad_ws_lifetime.cc", 2),
        PAIR_RULE: ("src/bad_unpaired_forward.cc", 1),
    }
    failures = []
    for rule, (path, count) in expected.items():
        hits = by_rule.get(rule, [])
        if len(hits) != count:
            failures.append(
                f"rule {rule}: expected exactly {count} finding(s), got "
                f"{len(hits)}: {[str(h) for h in hits]}"
            )
        elif any(h.path != path for h in hits):
            failures.append(
                f"rule {rule}: expected finding(s) in {path}, got "
                f"{[h.path for h in hits]}"
            )
    unexpected = [f for f in findings if f.rule not in expected]
    if unexpected:
        failures.append(f"unexpected findings: {[str(f) for f in unexpected]}")

    # The escape-hatch fixture must produce no findings at all: it commits
    # every violation, each with an adjacent or file-level allow comment.
    allowed_hits = [f for f in findings if "allowed_" in f.path]
    if allowed_hits:
        failures.append(
            "escape hatches ignored: " + ", ".join(str(f) for f in allowed_hits)
        )

    if failures:
        print("repo_lint self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"repo_lint self-test OK ({len(findings)} expected findings)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root to lint")
    parser.add_argument(
        "--self-test", action="store_true", help="run the fixture self-test"
    )
    parser.add_argument(
        "paths", nargs="*", help="root-relative files to lint (default: all)"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    findings = run_lint(root, args.paths or None)
    for f in findings:
        print(f)
    if findings:
        print(f"repo_lint: {len(findings)} finding(s)")
        return 1
    print("repo_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
