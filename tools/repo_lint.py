#!/usr/bin/env python3
"""repo_lint: in-tree static checks for repo invariants clang cannot see.

Rules (see DESIGN.md §7 for the rationale):

  throw          `throw` / `try` blocks are banned outside tests/. The
                 library reports recoverable failures through Status /
                 Result<T> and programming errors through DHGCN_CHECK.
  naked-new      `new` / `malloc`-family calls are banned in src/ and
                 tools/. Owning allocations go through std::make_unique /
                 containers; arena memory goes through Workspace.
  wallclock      `rand()` / `srand()` / `std::random_device` /
                 `std::chrono` are banned in src/ (library code): hidden
                 entropy or wall-clock reads break deterministic resume.
                 Seeded dhgcn::Rng and base/timer.h are the blessed paths.
  fwd-bwd-pair   Every file in src/ that mentions `ForwardInto` must also
                 implement `BackwardInto` (the shared-impl contract from
                 the workspace-planned execution design).
  discard        `(void)expr(...)` / `static_cast<void>(expr(...))` casts
                 that swallow a call result need an adjacent
                 `// lint: allow-discard` justification.
  thread         Raw threading primitives (std::thread / std::async /
                 std::mutex / std::condition_variable and friends) are
                 banned everywhere except src/base/thread_pool.{h,cc}.
                 All intra-op parallelism goes through ThreadPool so the
                 static-partitioning determinism contract holds; ad-hoc
                 threads would race it. (The serving core carries
                 file-level allows: its inter-request concurrency is the
                 reviewed exception, see DESIGN.md §11.)
  serve-wait     In src/serve/, unbounded blocking is banned: condition
                 waits must be `wait_for`/`wait_until` (a bare `.wait(`
                 can deadlock the serving loop forever) and queues must
                 be bounded preallocated vectors, never std::queue /
                 std::deque / std::list.
  plan-alloc     In src/plan/plan_runner.*, allocation and dynamic
                 dispatch are banned: PlanRunner::Run is the compiled
                 replay hot loop whose contract is zero steady-state
                 allocations and zero virtual calls. No make_unique /
                 new / push_back / reserve / resize / NewTensor /
                 Acquire / Clone / BorrowAt, and no `->Forward(` /
                 `LayerForward(` virtual-dispatch re-entry — slots are
                 pre-built in the constructor (which carries line-level
                 allows) and kernels are called non-virtually.

Escape hatches: a finding on line N is suppressed when line N, N-1 or N-2
contains `lint: allow-<rule>` (e.g. `// lint: allow-naked-new — arena`).
A file-level `// lint: allow-<rule>-file` anywhere in the file suppresses
the rule for the whole file.

Usage:
  repo_lint.py [--root DIR] [paths...]   lint the tree (or just `paths`)
  repo_lint.py --self-test               run against the bundled fixtures

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import os
import re
import sys

# (rule id, path prefixes the rule applies to, compiled pattern)
TESTS = ("tests/",)
LIBRARY = ("src/",)
LIBRARY_AND_TOOLS = ("src/", "tools/")
NON_TEST = ("src/", "tools/", "bench/", "examples/")
SERVING = ("src/serve/",)
PLAN_RUNNER = ("src/plan/plan_runner",)

RULES = [
    (
        "throw",
        NON_TEST,
        re.compile(r"\bthrow\b|\btry\s*\{|\bcatch\s*\("),
        "exceptions are banned outside tests/ (use Status/Result or DHGCN_CHECK)",
    ),
    (
        "naked-new",
        LIBRARY_AND_TOOLS,
        re.compile(r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("),
        "naked allocation (use make_unique/containers or Workspace)",
    ),
    (
        "wallclock",
        LIBRARY,
        re.compile(r"std::chrono\b|\brand\s*\(|\bsrand\s*\(|std::random_device\b"),
        "hidden entropy / wall clock in library code breaks deterministic resume",
    ),
    (
        "discard",
        NON_TEST + TESTS,
        re.compile(r"(\(void\)|static_cast<\s*void\s*>\s*\()\s*[A-Za-z_:][\w:.\->]*\s*\("),
        "discarded call result needs a `// lint: allow-discard` justification",
    ),
    (
        "thread",
        NON_TEST + TESTS,
        re.compile(
            r"std::(thread|jthread|async|mutex|recursive_mutex|timed_mutex"
            r"|shared_mutex|condition_variable|condition_variable_any)\b"
        ),
        "raw threading primitive (route parallelism through "
        "base/thread_pool.h so determinism holds)",
    ),
    (
        "serve-wait",
        SERVING,
        re.compile(r"\.wait\s*\(|std::(queue|deque|list)\b"),
        "unbounded blocking in serving code: use wait_for/wait_until "
        "with a deadline and bounded vector-backed queues",
    ),
    (
        "plan-alloc",
        PLAN_RUNNER,
        re.compile(
            r"\bmake_unique\b|\bmake_shared\b|\bnew\b"
            r"|\.push_back\s*\(|\.emplace_back\s*\("
            r"|\.reserve\s*\(|\.resize\s*\("
            r"|\bNewTensor\s*\(|\bNewZeroedTensor\s*\("
            r"|\.Acquire\s*\(|\bAcquireZeroed\s*\(|\.Clone\s*\("
            r"|\bBorrowAt\s*\("
            r"|->Forward\s*\(|\.Forward\s*\(|\bLayerForward\s*\("
        ),
        "allocation / virtual dispatch in the plan-replay hot path "
        "(pre-build slots in the ctor; call kernels non-virtually)",
    ),
    (
        "simd",
        NON_TEST + TESTS,
        re.compile(
            r"#\s*include\s*<\w*intrin\.h>"
            r"|\b_mm\d*_\w+\s*\("
            r"|__builtin_cpu_supports\b"
            r"|__attribute__\s*\(\(\s*target\b"
            r"|\bvector_size\s*\("
            r"|#\s*pragma\s+(GCC\s+(ivdep|unroll|target)|omp\s+simd"
            r"|clang\s+loop)"
        ),
        "SIMD intrinsics / ISA-specific codegen are confined to the "
        "blocked GEMM kernel TU (src/tensor/gemm_kernel.*)",
    ),
]

# The one place threading primitives are allowed: the pool that wraps them.
THREAD_RULE_EXEMPT = {
    "src/base/thread_pool.h",
    "src/base/thread_pool.cc",
}

# The one place ISA-specific codegen is allowed: the micro-kernel TU,
# where the runtime-dispatch and register-tile idioms live. Everything
# else must stay portable C++ and inherit vectorization through it.
SIMD_RULE_EXEMPT = {
    "src/tensor/gemm_kernel.h",
    "src/tensor/gemm_kernel.cc",
}

PAIR_RULE = "fwd-bwd-pair"
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")
SKIP_DIRS = {"build", "build-asan", ".git", "repo_lint_testdata", "third_party"}

# `new` legitimately appears in includes of <new> and in nothrow/new-expression
# machinery we do not want to flag.
NEW_FALSE_POSITIVES = re.compile(r"#include\s*<new>|std::nothrow")

STRING_OR_CHAR = re.compile(r'"(\\.|[^"\\])*"|' + r"'(\\.|[^'\\])*'")
LINE_COMMENT = re.compile(r"//.*$")


def strip_code_line(line, in_block_comment):
    """Returns (code-only text, still-in-block-comment) for one line."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        start = line.find("/*", i)
        if start < 0:
            out.append(line[i:])
            break
        out.append(line[i:start])
        in_block_comment = True
        i = start + 2
    code = "".join(out)
    code = STRING_OR_CHAR.sub('""', code)
    code = LINE_COMMENT.sub("", code)
    return code, in_block_comment


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rule_applies(prefixes, rel_path):
    return any(rel_path.startswith(p) for p in prefixes)


def lint_file(root, rel_path):
    findings = []
    abs_path = os.path.join(root, rel_path)
    try:
        with open(abs_path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [Finding(rel_path, 0, "io", f"cannot read file: {e}")]

    file_allows = set()
    for line in raw_lines:
        for m in re.finditer(r"lint:\s*allow-([\w-]+)-file", line):
            file_allows.add(m.group(1))

    code_lines = []
    in_block = False
    for line in raw_lines:
        code, in_block = strip_code_line(line, in_block)
        code_lines.append(code)

    def allowed(rule, idx):
        if rule in file_allows:
            return True
        lo = max(0, idx - 2)
        return any(
            f"lint: allow-{rule}" in raw_lines[j] for j in range(lo, idx + 1)
        )

    for rule, prefixes, pattern, message in RULES:
        if not rule_applies(prefixes, rel_path):
            continue
        if rule == "thread" and rel_path in THREAD_RULE_EXEMPT:
            continue
        if rule == "simd" and rel_path in SIMD_RULE_EXEMPT:
            continue
        for idx, code in enumerate(code_lines):
            if not pattern.search(code):
                continue
            if rule == "naked-new" and NEW_FALSE_POSITIVES.search(
                raw_lines[idx]
            ):
                continue
            if allowed(rule, idx):
                continue
            findings.append(Finding(rel_path, idx + 1, rule, message))

    if rule_applies(LIBRARY, rel_path) and PAIR_RULE not in file_allows:
        joined = "\n".join(code_lines)
        if "ForwardInto" in joined and "BackwardInto" not in joined:
            line_no = next(
                i + 1 for i, c in enumerate(code_lines) if "ForwardInto" in c
            )
            findings.append(
                Finding(
                    rel_path,
                    line_no,
                    PAIR_RULE,
                    "file uses ForwardInto but implements no BackwardInto "
                    "(shared-impl contract)",
                )
            )
    return findings


def collect_files(root):
    out = []
    for scope in ("src", "tools", "bench", "examples", "tests"):
        scope_dir = os.path.join(root, scope)
        if not os.path.isdir(scope_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(scope_dir):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    out.append(
                        os.path.relpath(os.path.join(dirpath, name), root)
                    )
    return sorted(out)


def run_lint(root, paths=None):
    rel_paths = paths if paths else collect_files(root)
    findings = []
    for rel in rel_paths:
        findings.extend(lint_file(root, rel))
    return findings


def self_test():
    """Lints the bundled fixture tree and checks each rule fires once."""
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_root = os.path.join(here, "repo_lint_testdata")
    if not os.path.isdir(fixture_root):
        print(f"repo_lint self-test: missing fixtures at {fixture_root}")
        return 2

    findings = run_lint(fixture_root)
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)

    expected = {
        "throw": "src/bad_throw.cc",
        "naked-new": "src/bad_new.cc",
        "wallclock": "src/bad_wallclock.cc",
        "discard": "src/bad_discard.cc",
        "thread": "src/bad_thread.cc",
        "serve-wait": "src/serve/bad_serve_wait.cc",
        "plan-alloc": "src/plan/plan_runner_bad.cc",
        "simd": "src/bad_simd.cc",
        PAIR_RULE: "src/bad_unpaired_forward.cc",
    }
    failures = []
    for rule, path in expected.items():
        hits = by_rule.get(rule, [])
        if len(hits) != 1:
            failures.append(
                f"rule {rule}: expected exactly 1 finding, got "
                f"{len(hits)}: {[str(h) for h in hits]}"
            )
        elif hits[0].path != path:
            failures.append(
                f"rule {rule}: expected finding in {path}, got {hits[0].path}"
            )
    unexpected = [f for f in findings if f.rule not in expected]
    if unexpected:
        failures.append(f"unexpected findings: {[str(f) for f in unexpected]}")

    # The escape-hatch fixture must produce no findings at all: it commits
    # every violation, each with an adjacent or file-level allow comment.
    allowed_hits = [f for f in findings if "allowed_" in f.path]
    if allowed_hits:
        failures.append(
            "escape hatches ignored: " + ", ".join(str(f) for f in allowed_hits)
        )

    if failures:
        print("repo_lint self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"repo_lint self-test OK ({len(findings)} expected findings)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root to lint")
    parser.add_argument(
        "--self-test", action="store_true", help="run the fixture self-test"
    )
    parser.add_argument(
        "paths", nargs="*", help="root-relative files to lint (default: all)"
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    findings = run_lint(root, args.paths or None)
    for f in findings:
        print(f)
    if findings:
        print(f"repo_lint: {len(findings)} finding(s)")
        return 1
    print("repo_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
