#ifndef DHGCN_NN_LAYER_H_
#define DHGCN_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dhgcn {

class PlanBuilder;
class Workspace;

/// \brief A named parameter with its gradient accumulator.
///
/// `value` and `grad` point into the owning layer; they stay valid for the
/// lifetime of that layer. Optimizers mutate `value` and read/clear `grad`
/// for trainable entries. Non-trainable entries (`trainable == false`,
/// e.g. batch-norm running statistics) carry persistent state that must be
/// serialized with the model but never optimized; their `grad` may be
/// null.
struct ParamRef {
  std::string name;
  Tensor* value;
  Tensor* grad;
  bool trainable = true;
};

/// \brief Base class for differentiable network modules.
///
/// This library uses explicit reverse-mode layers (Caffe-style) rather than
/// a taped autograd: `Forward` caches whatever the layer needs, `Backward`
/// consumes the gradient w.r.t. the layer output, *accumulates* gradients
/// into its parameters' `grad` tensors, and returns the gradient w.r.t. the
/// layer input. Call order within a training step must therefore be
/// Forward -> Backward on each layer, innermost activations first.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output, caching state needed by Backward.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Propagates `grad_output` (d loss / d output) through the layer;
  /// returns d loss / d input and accumulates parameter gradients.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Workspace-planned forward: assigns the output (typically a tensor
  /// borrowed from `ws`, valid until the next `ws.Reset()`) to `*out`.
  /// Migrated layers run the same kernels as `Forward` on arena storage
  /// (bit-identical outputs, no heap allocation); the default delegates
  /// to `Forward`, so unmigrated layers keep working on the workspace
  /// path — they just still allocate.
  virtual void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out);

  /// Workspace-planned backward; mirrors ForwardInto. Parameter
  /// gradients are always accumulated into owning storage — only the
  /// returned activation gradient may live in `ws`.
  virtual void BackwardInto(const Tensor& grad_output, Workspace& ws,
                            Tensor* grad_input);

  /// Records this layer's inference computation into an execution plan
  /// (see src/plan/). `in` is the plan slot holding the layer input;
  /// the return value is the slot holding the layer output (which may
  /// equal `in` for identity passes such as eval-mode Dropout). Shapes
  /// are propagated at record time — no sample batch is run. Returns -1
  /// when the layer does not support plan capture, in which case the
  /// caller falls back to the layer-by-layer path. Capture is
  /// inference-only: implementations record their eval behaviour and
  /// must be invoked with `training() == false`.
  virtual int64_t Record(PlanBuilder& builder, int64_t in);

  /// All persistent state: learnable parameters plus non-trainable
  /// buffers (see ParamRef::trainable). References remain valid while
  /// the layer is alive. Optimizers must filter on `trainable`;
  /// serialization saves everything.
  virtual std::vector<ParamRef> Params() { return {}; }

  /// Switches between training and inference behaviour (dropout,
  /// batch-norm statistics).
  virtual void SetTraining(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Diagnostic name, e.g. "Conv2d(16->32, 3x1)".
  virtual std::string name() const = 0;

  /// Clears all parameter gradients to zero.
  void ZeroGrad();

  /// Total number of *trainable* scalars.
  int64_t ParameterCount();

 protected:
  Layer() = default;

 private:
  bool training_ = true;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Runs `layer` forward through the Into path when `ws` is non-null,
/// the legacy allocating path otherwise. Composite blocks use these so
/// one control flow serves both execution modes.
Tensor LayerForward(Layer& layer, const Tensor& input, Workspace* ws);
Tensor LayerBackward(Layer& layer, const Tensor& grad_output, Workspace* ws);

}  // namespace dhgcn

#endif  // DHGCN_NN_LAYER_H_
