#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace dhgcn {

namespace {

// Optimizers act on trainable parameters only; non-trainable entries
// (batch-norm running statistics) are persistent state, not weights.
std::vector<ParamRef> TrainableOnly(std::vector<ParamRef> params) {
  std::vector<ParamRef> filtered;
  filtered.reserve(params.size());
  for (ParamRef& p : params) {
    if (p.trainable) filtered.push_back(p);
  }
  return filtered;
}

}  // namespace

SgdOptimizer::SgdOptimizer(std::vector<ParamRef> params,
                           const Options& options)
    : params_(TrainableOnly(std::move(params))), options_(options) {
  velocity_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    DHGCN_CHECK(p.value != nullptr);
    DHGCN_CHECK(p.grad != nullptr);
    DHGCN_CHECK(ShapesEqual(p.value->shape(), p.grad->shape()));
    velocity_.emplace_back(p.value->shape());
  }
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i].value;
    const Tensor& g = *params_[i].grad;
    Tensor& v = velocity_[i];
    float* pw = w.data();
    const float* pg = g.data();
    float* pv = v.data();
    for (int64_t j = 0; j < w.numel(); ++j) {
      float grad = pg[j] + options_.weight_decay * pw[j];
      pv[j] = options_.momentum * pv[j] + grad;
      pw[j] -= options_.lr * pv[j];
    }
  }
}

void SgdOptimizer::ZeroGrad() {
  for (ParamRef& p : params_) p.grad->Fill(0.0f);
}

AdamOptimizer::AdamOptimizer(std::vector<ParamRef> params,
                             const Options& options)
    : params_(TrainableOnly(std::move(params))), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    DHGCN_CHECK(p.value != nullptr);
    DHGCN_CHECK(p.grad != nullptr);
    DHGCN_CHECK(ShapesEqual(p.value->shape(), p.grad->shape()));
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void AdamOptimizer::Step() {
  ++step_count_;
  // Bias correction folded into the step size.
  float bc1 = 1.0f - std::pow(options_.beta1,
                              static_cast<float>(step_count_));
  float bc2 = 1.0f - std::pow(options_.beta2,
                              static_cast<float>(step_count_));
  float step_size = options_.lr * std::sqrt(bc2) / bc1;
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i].value;
    const Tensor& g = *params_[i].grad;
    float* pw = w.data();
    const float* pg = g.data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    for (int64_t j = 0; j < w.numel(); ++j) {
      float grad = pg[j] + options_.weight_decay * pw[j];
      pm[j] = options_.beta1 * pm[j] + (1.0f - options_.beta1) * grad;
      pv[j] = options_.beta2 * pv[j] +
              (1.0f - options_.beta2) * grad * grad;
      pw[j] -= step_size * pm[j] / (std::sqrt(pv[j]) + options_.eps);
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (ParamRef& p : params_) p.grad->Fill(0.0f);
}

StepLrSchedule::StepLrSchedule(float initial_lr,
                               std::vector<int64_t> milestones, float factor)
    : initial_lr_(initial_lr),
      milestones_(std::move(milestones)),
      factor_(factor) {
  DHGCN_CHECK_GT(factor_, 0.0f);
  DHGCN_CHECK(std::is_sorted(milestones_.begin(), milestones_.end()));
}

float StepLrSchedule::LrForEpoch(int64_t epoch) const {
  float lr = initial_lr_;
  for (int64_t m : milestones_) {
    if (epoch >= m) lr /= factor_;
  }
  return lr;
}

CosineLrSchedule::CosineLrSchedule(float max_lr, int64_t total_epochs,
                                   float min_lr)
    : max_lr_(max_lr), min_lr_(min_lr), total_epochs_(total_epochs) {
  DHGCN_CHECK_GT(total_epochs_, 0);
  DHGCN_CHECK_LE(min_lr_, max_lr_);
}

float CosineLrSchedule::LrForEpoch(int64_t epoch) const {
  constexpr float kPi = 3.14159265358979323846f;
  if (epoch >= total_epochs_) return min_lr_;
  if (epoch < 0) epoch = 0;
  float progress =
      static_cast<float>(epoch) / static_cast<float>(total_epochs_);
  return min_lr_ +
         0.5f * (max_lr_ - min_lr_) * (1.0f + std::cos(kPi * progress));
}

}  // namespace dhgcn
