#ifndef DHGCN_NN_POOLING_H_
#define DHGCN_NN_POOLING_H_

#include <string>

#include "nn/layer.h"

namespace dhgcn {

/// \brief Global average pooling over the spatial axes of (N, C, H, W),
/// producing (N, C). Used as the model head before the classifier FC.
class GlobalAvgPool2d : public Layer {
 public:
  GlobalAvgPool2d() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::string name() const override { return "GlobalAvgPool2d"; }
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  /// Plan-replay entry: mean over the spatial axes into the pre-shaped
  /// (N, C) `out`. Same serial double-accumulation loop as the layer
  /// path (bit-identical values); the autograd shape cache is untouched.
  void EvalPlan(const Tensor& input, Tensor* out) const;

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  Shape cached_input_shape_;
};

/// \brief Average pooling over the time axis only: (N, C, T, V) ->
/// (N, C, T/stride, V) with a (k,1) window. Used by down-sampling variants.
class TemporalAvgPool : public Layer {
 public:
  TemporalAvgPool(int64_t kernel, int64_t stride);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::string name() const override;

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  int64_t kernel_;
  int64_t stride_;
  Shape cached_input_shape_;
};

}  // namespace dhgcn

#endif  // DHGCN_NN_POOLING_H_
