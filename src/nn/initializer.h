#ifndef DHGCN_NN_INITIALIZER_H_
#define DHGCN_NN_INITIALIZER_H_

#include "base/rng.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// Weight initialization schemes used by layers.
///
/// `fan_in` / `fan_out` follow the PyTorch conventions: for a Linear(I,O)
/// weight, fan_in = I; for a Conv2d weight (O,I,kh,kw), fan_in = I*kh*kw.

/// He/Kaiming uniform: U(-b, b) with b = sqrt(6 / fan_in). Default for
/// layers followed by ReLU.
void KaimingUniform(Tensor& weight, int64_t fan_in, Rng& rng);

/// He/Kaiming normal: N(0, 2 / fan_in).
void KaimingNormal(Tensor& weight, int64_t fan_in, Rng& rng);

/// Glorot/Xavier uniform: U(-b, b) with b = sqrt(6 / (fan_in + fan_out)).
void XavierUniform(Tensor& weight, int64_t fan_in, int64_t fan_out, Rng& rng);

/// Uniform bias init U(-b, b) with b = 1/sqrt(fan_in) (PyTorch default).
void BiasUniform(Tensor& bias, int64_t fan_in, Rng& rng);

}  // namespace dhgcn

#endif  // DHGCN_NN_INITIALIZER_H_
