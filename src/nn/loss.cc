#include "nn/loss.h"

#include <cmath>

#include "base/check.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {

SoftmaxCrossEntropy::SoftmaxCrossEntropy(float label_smoothing)
    : label_smoothing_(label_smoothing) {
  DHGCN_CHECK(label_smoothing >= 0.0f && label_smoothing < 1.0f);
}

Result<float> SoftmaxCrossEntropy::TryForwardImpl(
    const Tensor& logits, const std::vector<int64_t>& labels, Workspace* ws) {
  if (logits.ndim() != 2) {
    return Status::InvalidArgument(
        StrCat("cross-entropy expects (N, K) logits, got rank ",
               logits.ndim()));
  }
  int64_t n = logits.dim(0), k = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != n) {
    return Status::InvalidArgument(
        StrCat("batch has ", n, " logit rows but ", labels.size(),
               " labels"));
  }
  // Validate every label against the class count before touching the
  // cache: a corrupt label must not index out of bounds, and a failed
  // call must not clobber the state of the previous clean one.
  for (int64_t i = 0; i < n; ++i) {
    int64_t y = labels[static_cast<size_t>(i)];
    if (y < 0 || y >= k) {
      return Status::InvalidArgument(
          StrCat("label ", y, " at batch index ", i, " outside [0, ", k,
                 "): corrupt sample?"));
    }
  }
  cached_labels_ = labels;

  Tensor log_probs = NewTensor(ws, logits.shape());
  LogSoftmaxInto(logits, /*axis=*/1, &log_probs);
  cached_probs_ = NewTensor(ws, logits.shape());
  ExpInto(log_probs, &cached_probs_);
  float off_weight = label_smoothing_ / static_cast<float>(k);
  float on_weight = 1.0f - label_smoothing_ + off_weight;
  const float* plp = log_probs.data();
  const int64_t* plab = labels.data();
  // Deterministic chunked reduction over the batch: per-chunk double
  // partials combined in ascending chunk order (grain 8, so batches of
  // up to 8 rows reduce in a single chunk exactly like the serial loop).
  double total = ThreadPool::Get().ParallelReduceSum(
      0, n, /*grain=*/8, [&](int64_t i0, int64_t i1) {
        double t = 0.0;
        for (int64_t i = i0; i < i1; ++i) {
          int64_t y = plab[i];
          if (label_smoothing_ == 0.0f) {
            t -= plp[i * k + y];
          } else {
            // Cross-entropy against the smoothed target distribution.
            for (int64_t c = 0; c < k; ++c) {
              float weight = c == y ? on_weight : off_weight;
              t -= static_cast<double>(weight) * plp[i * k + c];
            }
          }
        }
        return t;
      });
  return static_cast<float>(total / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::BackwardImpl(Workspace* ws) const {
  DHGCN_CHECK_GT(cached_probs_.numel(), 0);
  int64_t n = cached_probs_.dim(0), k = cached_probs_.dim(1);
  Tensor grad = NewTensor(ws, cached_probs_.shape());
  grad.CopyFrom(cached_probs_);
  float inv = 1.0f / static_cast<float>(n);
  float off_weight = label_smoothing_ / static_cast<float>(k);
  float on_weight = 1.0f - label_smoothing_ + off_weight;
  float* pgrad = grad.data();
  const int64_t* plab = cached_labels_.data();
  // Row chunks write disjoint rows of the gradient.
  ThreadPool::Get().ParallelFor(
      0, n, GrainForFlops(k), [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          int64_t y = plab[i];
          if (label_smoothing_ == 0.0f) {
            pgrad[i * k + y] -= 1.0f;
          } else {
            for (int64_t c = 0; c < k; ++c) {
              pgrad[i * k + c] -= c == y ? on_weight : off_weight;
            }
          }
        }
      });
  MulScalarInPlace(grad, inv);
  return grad;
}

}  // namespace dhgcn
