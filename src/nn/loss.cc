#include "nn/loss.h"

#include <cmath>

#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

SoftmaxCrossEntropy::SoftmaxCrossEntropy(float label_smoothing)
    : label_smoothing_(label_smoothing) {
  DHGCN_CHECK(label_smoothing >= 0.0f && label_smoothing < 1.0f);
}

float SoftmaxCrossEntropy::Forward(const Tensor& logits,
                                   const std::vector<int64_t>& labels) {
  DHGCN_CHECK_EQ(logits.ndim(), 2);
  int64_t n = logits.dim(0), k = logits.dim(1);
  DHGCN_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  cached_labels_ = labels;

  Tensor log_probs = LogSoftmax(logits, /*axis=*/1);
  cached_probs_ = Exp(log_probs);
  double total = 0.0;
  float off_weight = label_smoothing_ / static_cast<float>(k);
  float on_weight = 1.0f - label_smoothing_ + off_weight;
  for (int64_t i = 0; i < n; ++i) {
    int64_t y = labels[static_cast<size_t>(i)];
    DHGCN_CHECK(y >= 0 && y < k);
    if (label_smoothing_ == 0.0f) {
      total -= log_probs.at(i, y);
    } else {
      // Cross-entropy against the smoothed target distribution.
      for (int64_t c = 0; c < k; ++c) {
        float weight = c == y ? on_weight : off_weight;
        total -= static_cast<double>(weight) * log_probs.at(i, c);
      }
    }
  }
  return static_cast<float>(total / n);
}

Tensor SoftmaxCrossEntropy::Backward() const {
  DHGCN_CHECK_GT(cached_probs_.numel(), 0);
  int64_t n = cached_probs_.dim(0), k = cached_probs_.dim(1);
  Tensor grad = cached_probs_.Clone();
  float inv = 1.0f / static_cast<float>(n);
  float off_weight = label_smoothing_ / static_cast<float>(k);
  float on_weight = 1.0f - label_smoothing_ + off_weight;
  for (int64_t i = 0; i < n; ++i) {
    int64_t y = cached_labels_[static_cast<size_t>(i)];
    if (label_smoothing_ == 0.0f) {
      grad.at(i, y) -= 1.0f;
    } else {
      for (int64_t c = 0; c < k; ++c) {
        grad.at(i, c) -= c == y ? on_weight : off_weight;
      }
    }
  }
  MulScalarInPlace(grad, inv);
  return grad;
}

}  // namespace dhgcn
