#ifndef DHGCN_NN_OPTIMIZER_H_
#define DHGCN_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layer.h"

namespace dhgcn {

/// \brief SGD with momentum and L2 weight decay — the optimizer used by the
/// paper (momentum 0.9, initial LR 0.1, step decay by 10x).
///
/// Update: v <- momentum * v + (grad + weight_decay * w); w <- w - lr * v.
class SgdOptimizer {
 public:
  struct Options {
    float lr = 0.1f;
    float momentum = 0.9f;
    float weight_decay = 0.0f;
  };

  SgdOptimizer(std::vector<ParamRef> params, const Options& options);

  /// Applies one update using the accumulated gradients.
  void Step();

  /// Clears all parameter gradients.
  void ZeroGrad();

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }

  const std::vector<ParamRef>& params() const { return params_; }

  /// Momentum buffers, one per trainable parameter (same order as
  /// `params()`); exposed mutably so checkpoints can capture/restore the
  /// full optimizer state for bit-exact resume.
  std::vector<Tensor>& velocity() { return velocity_; }

 private:
  std::vector<ParamRef> params_;
  Options options_;
  std::vector<Tensor> velocity_;
};

/// \brief Adam optimizer (Kingma & Ba) — provided as an alternative to
/// the paper's SGD for users fine-tuning on other data; not used by the
/// reproduction experiments.
class AdamOptimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  AdamOptimizer(std::vector<ParamRef> params, const Options& options);

  void Step();
  void ZeroGrad();

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }
  int64_t step_count() const { return step_count_; }

  const std::vector<ParamRef>& params() const { return params_; }

  /// Moment estimates and the step counter are part of the checkpointed
  /// trainer state: restoring them (plus parameters) makes a resumed run
  /// bit-exact with an uninterrupted one.
  std::vector<Tensor>& moment1() { return m_; }
  std::vector<Tensor>& moment2() { return v_; }
  void set_step_count(int64_t step_count) { step_count_ = step_count; }

 private:
  std::vector<ParamRef> params_;
  Options options_;
  std::vector<Tensor> m_;  // first-moment estimates
  std::vector<Tensor> v_;  // second-moment estimates
  int64_t step_count_ = 0;
};

/// \brief Step LR schedule: divides the LR by `factor` at each milestone
/// epoch, mirroring the paper's "divide by 10 at epoch 30/40" recipe.
class StepLrSchedule {
 public:
  StepLrSchedule(float initial_lr, std::vector<int64_t> milestones,
                 float factor = 10.0f);

  /// LR to use for `epoch` (0-based).
  float LrForEpoch(int64_t epoch) const;

 private:
  float initial_lr_;
  std::vector<int64_t> milestones_;
  float factor_;
};

/// \brief Cosine-annealing LR: lr(e) = min + 0.5 (max - min)
/// (1 + cos(pi e / total)). Common modern alternative to step decay.
class CosineLrSchedule {
 public:
  CosineLrSchedule(float max_lr, int64_t total_epochs, float min_lr = 0.0f);

  float LrForEpoch(int64_t epoch) const;

 private:
  float max_lr_;
  float min_lr_;
  int64_t total_epochs_;
};

}  // namespace dhgcn

#endif  // DHGCN_NN_OPTIMIZER_H_
