#include "nn/sequential.h"

#include "base/string_util.h"
#include "tensor/workspace.h"

namespace dhgcn {

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::ForwardInto(const Tensor& input, Workspace& ws,
                             Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  Tensor x = input;
  for (auto& layer : layers_) {
    Tensor y;
    layer->ForwardInto(x, ws, &y);
    x = std::move(y);
  }
  *out = std::move(x);
}

void Sequential::BackwardInto(const Tensor& grad_output, Workspace& ws,
                              Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    Tensor next;
    (*it)->BackwardInto(g, ws, &next);
    g = std::move(next);
  }
  *grad_input = std::move(g);
}

std::vector<ParamRef> Sequential::Params() {
  std::vector<ParamRef> params;
  for (size_t i = 0; i < layers_.size(); ++i) {
    for (ParamRef p : layers_[i]->Params()) {
      p.name = StrCat(i, ".", layers_[i]->name(), ".", p.name);
      params.push_back(p);
    }
  }
  return params;
}

void Sequential::SetTraining(bool training) {
  Layer::SetTraining(training);
  for (auto& layer : layers_) layer->SetTraining(training);
}

std::string Sequential::name() const {
  return StrCat("Sequential[", layers_.size(), "]");
}

int64_t Sequential::Record(PlanBuilder& builder, int64_t in) {
  int64_t x = in;
  for (auto& layer : layers_) {
    x = layer->Record(builder, x);
    if (x < 0) return -1;
  }
  return x;
}

}  // namespace dhgcn
