#ifndef DHGCN_NN_CONV2D_H_
#define DHGCN_NN_CONV2D_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/layer.h"

namespace dhgcn {

/// \brief Configuration of a 2-D convolution.
///
/// The skeleton models convolve over (T, V) planes: temporal convolutions
/// use kernels of shape (k, 1) with dilation on the time axis, and 1x1
/// convolutions implement per-joint channel mixing.
struct Conv2dOptions {
  int64_t kernel_h = 1;
  int64_t kernel_w = 1;
  int64_t stride_h = 1;
  int64_t stride_w = 1;
  int64_t pad_h = 0;
  int64_t pad_w = 0;
  int64_t dilation_h = 1;
  int64_t dilation_w = 1;
  bool has_bias = true;
};

/// \brief 2-D convolution over (N, C, H, W) inputs.
///
/// Direct (loop-based) implementation; output spatial size follows the
/// usual formula out = (in + 2*pad - dilation*(k-1) - 1)/stride + 1.
class Conv2d : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels,
         const Conv2dOptions& options, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::vector<ParamRef> Params() override;
  std::string name() const override;
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  /// Plan-replay entry: convolves `input` into the pre-shaped `out`
  /// through the exact same kernels as the layer path (bit-identical
  /// results). `weight`/`bias` override the layer parameters when
  /// non-null (BN-folded plans); a null `bias` falls back to the layer
  /// bias, or no bias when the layer has none. Does not touch the
  /// autograd cache.
  void ForwardPlan(const Tensor& input, const Tensor* weight,
                   const Tensor* bias, Tensor* out) const;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  const Conv2dOptions& options() const { return options_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

  /// Output length along one spatial axis for the given input length.
  static int64_t OutputDim(int64_t in, int64_t kernel, int64_t stride,
                           int64_t pad, int64_t dilation);

  /// Process-wide toggle between the im2col+GEMM lowering (default) and
  /// the direct loop nest for the general (non-pointwise) path. The
  /// direct path is retained as the equivalence/benchmark baseline; the
  /// two differ numerically only within float-rounding tolerance.
  static void SetUseIm2col(bool use);
  static bool use_im2col();

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);
  /// Shared forward kernels: both the layer path and plan replay land
  /// here, parameterized by raw weight/bias pointers and a pre-allocated
  /// destination (every element of `out` is written). Im2col lowers each
  /// batch onto the blocked GEMM (scratch columns from
  /// detail::KernelOpScratch), direct is the original seven-deep loop
  /// nest.
  void RunForward(const Tensor& input, const float* pw, const float* pb,
                  int64_t oh, int64_t ow, Tensor* out) const;
  void RunPointwise(const Tensor& input, const float* pw, const float* pb,
                    Tensor* out) const;
  void RunIm2col(const Tensor& input, const float* pw, const float* pb,
                 int64_t oh, int64_t ow, Tensor* out) const;
  void RunDirect(const Tensor& input, const float* pw, const float* pb,
                 int64_t oh, int64_t ow, Tensor* out) const;
  Tensor BackwardIm2col(const Tensor& grad_output, Workspace* ws);
  Tensor BackwardDirect(const Tensor& grad_output, Workspace* ws);

  /// 1x1/stride-1/unpadded convolutions (the channel mixers, which
  /// dominate the skeleton models) reduce to per-batch GEMMs.
  bool IsPointwise() const;

  int64_t in_channels_;
  int64_t out_channels_;
  Conv2dOptions options_;

  Tensor weight_;       // (out, in, kh, kw)
  Tensor weight_grad_;
  Tensor bias_;         // (out)
  Tensor bias_grad_;

  Tensor cached_input_;  // (N, C, H, W)

  static bool use_im2col_;
};

}  // namespace dhgcn

#endif  // DHGCN_NN_CONV2D_H_
