#ifndef DHGCN_NN_RELU_H_
#define DHGCN_NN_RELU_H_

#include <string>

#include "nn/layer.h"

namespace dhgcn {

/// \brief Rectified linear unit, y = max(x, 0), applied elementwise.
class ReLU : public Layer {
 public:
  ReLU() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::string name() const override { return "ReLU"; }
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  /// Plan-replay entry: y = max(x, 0) into the pre-shaped `out`. Same
  /// serial elementwise loop as the layer path (bit-identical values),
  /// but no autograd mask is built or cached.
  static void EvalPlan(const Tensor& input, Tensor* out);

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  Tensor cached_mask_;  // 1 where input > 0
};

}  // namespace dhgcn

#endif  // DHGCN_NN_RELU_H_
