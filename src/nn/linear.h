#ifndef DHGCN_NN_LINEAR_H_
#define DHGCN_NN_LINEAR_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/layer.h"

namespace dhgcn {

/// \brief Fully-connected layer: y = x W^T + b.
///
/// Input (N, in_features) -> output (N, out_features). Inputs with more
/// than two dimensions are treated as (prod(leading dims), in_features)
/// and the leading dims are restored on output, matching torch.nn.Linear.
class Linear : public Layer {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool has_bias = true);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::vector<ParamRef> Params() override;
  std::string name() const override;

  /// Plan capture; restricted to 2-D slots (the classifier position in
  /// the model — higher-rank inputs need the reshape dance of the layer
  /// path, which a static plan does not model).
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  /// Plan-replay entry: y = x W^T + b for 2-D `input` into the
  /// pre-shaped `out`, through the exact same kernel as the layer path
  /// (bit-identical results). `weight`/`bias` override the layer
  /// parameters when non-null (BN-folded plans); a null `bias` falls
  /// back to the layer bias, or no bias when the layer has none. Does
  /// not touch the autograd cache.
  void ForwardPlan(const Tensor& input, const Tensor* weight,
                   const Tensor* bias, Tensor* out) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  bool has_bias() const { return has_bias_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  // Shared kernels behind both execution modes: `ws == nullptr` runs on
  // fresh owning tensors (legacy), otherwise on arena storage. One code
  // path keeps the two modes bit-identical.
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);
  /// y = x2d w^T (+ bias row-broadcast) into the pre-shaped 2-D `y`;
  /// both forward paths land here.
  void RunLinear(const Tensor& x2d, const Tensor& w, const float* pb,
                 Tensor* y) const;

  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;

  Tensor weight_;       // (out, in)
  Tensor weight_grad_;  // (out, in)
  Tensor bias_;         // (out)
  Tensor bias_grad_;    // (out)

  Tensor cached_input_2d_;  // (rows, in)
  Shape cached_input_shape_;
};

}  // namespace dhgcn

#endif  // DHGCN_NN_LINEAR_H_
