#include "nn/initializer.h"

#include <cmath>

#include "base/check.h"

namespace dhgcn {

void KaimingUniform(Tensor& weight, int64_t fan_in, Rng& rng) {
  DHGCN_CHECK_GT(fan_in, 0);
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (int64_t i = 0; i < weight.numel(); ++i) {
    weight.flat(i) = rng.Uniform(-bound, bound);
  }
}

void KaimingNormal(Tensor& weight, int64_t fan_in, Rng& rng) {
  DHGCN_CHECK_GT(fan_in, 0);
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (int64_t i = 0; i < weight.numel(); ++i) {
    weight.flat(i) = rng.Normal(0.0f, stddev);
  }
}

void XavierUniform(Tensor& weight, int64_t fan_in, int64_t fan_out,
                   Rng& rng) {
  DHGCN_CHECK_GT(fan_in + fan_out, 0);
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (int64_t i = 0; i < weight.numel(); ++i) {
    weight.flat(i) = rng.Uniform(-bound, bound);
  }
}

void BiasUniform(Tensor& bias, int64_t fan_in, Rng& rng) {
  DHGCN_CHECK_GT(fan_in, 0);
  float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  for (int64_t i = 0; i < bias.numel(); ++i) {
    bias.flat(i) = rng.Uniform(-bound, bound);
  }
}

}  // namespace dhgcn
