#include "nn/conv2d.h"

#include "base/string_util.h"
#include "base/thread_pool.h"
#include "nn/initializer.h"
#include "tensor/linalg.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels,
               const Conv2dOptions& options, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      options_(options),
      weight_({out_channels, in_channels, options.kernel_h, options.kernel_w}),
      weight_grad_(weight_.shape()),
      bias_({out_channels}),
      bias_grad_({out_channels}) {
  DHGCN_CHECK_GT(in_channels, 0);
  DHGCN_CHECK_GT(out_channels, 0);
  DHGCN_CHECK_GT(options.kernel_h, 0);
  DHGCN_CHECK_GT(options.kernel_w, 0);
  DHGCN_CHECK_GT(options.stride_h, 0);
  DHGCN_CHECK_GT(options.stride_w, 0);
  DHGCN_CHECK_GT(options.dilation_h, 0);
  DHGCN_CHECK_GT(options.dilation_w, 0);
  int64_t fan_in = in_channels * options.kernel_h * options.kernel_w;
  KaimingUniform(weight_, fan_in, rng);
  if (options.has_bias) BiasUniform(bias_, fan_in, rng);
}

int64_t Conv2d::OutputDim(int64_t in, int64_t kernel, int64_t stride,
                          int64_t pad, int64_t dilation) {
  int64_t effective = dilation * (kernel - 1) + 1;
  int64_t out = (in + 2 * pad - effective) / stride + 1;
  DHGCN_CHECK_GT(out, 0);
  return out;
}

bool Conv2d::IsPointwise() const {
  const Conv2dOptions& o = options_;
  return o.kernel_h == 1 && o.kernel_w == 1 && o.stride_h == 1 &&
         o.stride_w == 1 && o.pad_h == 0 && o.pad_w == 0;
}

Tensor Conv2d::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(1), in_channels_);
  cached_input_ = input;
  const Conv2dOptions& o = options_;
  int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  int64_t oh = OutputDim(h, o.kernel_h, o.stride_h, o.pad_h, o.dilation_h);
  int64_t ow = OutputDim(w, o.kernel_w, o.stride_w, o.pad_w, o.dilation_w);

  if (IsPointwise()) {
    // out_b (C_out, HW) = W (C_out, C_in) x_b (C_in, HW), per batch.
    // Parallel over the n * C_out output rows: each row is one serial
    // Gemm row (ascending ic) plus its bias add, so the per-element
    // accumulation order matches the serial per-batch Gemm.
    Tensor out = NewZeroedTensor(ws, {n, out_channels_, oh, ow});
    const float* px = input.data();
    const float* pw = weight_.data();
    const float* pb = o.has_bias ? bias_.data() : nullptr;
    float* po = out.data();
    int64_t plane = h * w;
    ThreadPool::Get().ParallelFor(
        0, n * out_channels_, GrainForFlops(in_channels_ * plane),
        [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            int64_t b = r / out_channels_;
            int64_t oc = r % out_channels_;
            float* orow = po + r * plane;
            detail::GemmAccumulate(pw + oc * in_channels_,
                                   px + b * in_channels_ * plane, orow, 1,
                                   in_channels_, plane);
            if (pb != nullptr) {
              float bias_v = pb[oc];
              for (int64_t i = 0; i < plane; ++i) orow[i] += bias_v;
            }
          }
        });
    return out;
  }

  Tensor out = NewTensor(ws, {n, out_channels_, oh, ow});
  const float* px = input.data();
  const float* pw = weight_.data();
  const float* pbias = o.has_bias ? bias_.data() : nullptr;
  float* po = out.data();
  int64_t in_plane = h * w;
  int64_t out_plane = oh * ow;
  int64_t kernel_plane = o.kernel_h * o.kernel_w;

  // Direct convolution, parallel over the n * C_out output planes; each
  // output element is an independent double accumulation.
  ThreadPool::Get().ParallelFor(
      0, n * out_channels_,
      GrainForFlops(out_plane * in_channels_ * kernel_plane),
      [&](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          int64_t b = p / out_channels_;
          int64_t oc = p % out_channels_;
          const float* xb = px + b * in_channels_ * in_plane;
          const float* wc = pw + oc * in_channels_ * kernel_plane;
          float* oplane = po + p * out_plane;
          float bias_v = pbias != nullptr ? pbias[oc] : 0.0f;
          for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
              double acc = bias_v;
              int64_t iy0 = oy * o.stride_h - o.pad_h;
              int64_t ix0 = ox * o.stride_w - o.pad_w;
              for (int64_t ic = 0; ic < in_channels_; ++ic) {
                const float* xplane = xb + ic * in_plane;
                const float* wplane = wc + ic * kernel_plane;
                for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
                  int64_t iy = iy0 + ky * o.dilation_h;
                  if (iy < 0 || iy >= h) continue;
                  for (int64_t kx = 0; kx < o.kernel_w; ++kx) {
                    int64_t ix = ix0 + kx * o.dilation_w;
                    if (ix < 0 || ix >= w) continue;
                    acc += static_cast<double>(xplane[iy * w + ix]) *
                           wplane[ky * o.kernel_w + kx];
                  }
                }
              }
              oplane[oy * ow + ox] = static_cast<float>(acc);
            }
          }
        }
      });
  return out;
}

Tensor Conv2d::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  const Conv2dOptions& o = options_;
  const Tensor& input = cached_input_;
  int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  DHGCN_CHECK_EQ(grad_output.dim(0), n);
  DHGCN_CHECK_EQ(grad_output.dim(1), out_channels_);

  if (IsPointwise()) {
    // dX_b = W^T g_b; dW += g_b x_b^T (per batch, transposed GEMMs — no
    // scratch product tensors). Two parallel phases so each phase's
    // chunks write disjoint outputs: grad_input is batch-parallel,
    // weight/bias grads are out-channel-parallel with an ascending batch
    // loop inside (the same per-element accumulation order as the old
    // single interleaved batch loop).
    Tensor grad_input = NewZeroedTensor(ws, input.shape());
    const float* px = input.data();
    const float* pg = grad_output.data();
    float* pgi = grad_input.data();
    int64_t plane = h * w;
    Tensor weight_2d = weight_.Reshape({out_channels_, in_channels_});
    Tensor weight_grad_2d =
        weight_grad_.Reshape({out_channels_, in_channels_});
    const float* pw2 = weight_2d.data();
    float* pwg2 = weight_grad_2d.data();
    ThreadPool::Get().ParallelFor(
        0, n, GrainForFlops(out_channels_ * in_channels_ * plane),
        [&](int64_t b0, int64_t b1) {
          for (int64_t b = b0; b < b1; ++b) {
            detail::GemmTransposedAAccumulate(
                pw2, pg + b * out_channels_ * plane,
                pgi + b * in_channels_ * plane, out_channels_, in_channels_,
                plane);
          }
        });
    ThreadPool::Get().ParallelFor(
        0, out_channels_, GrainForFlops(n * in_channels_ * plane),
        [&](int64_t o0, int64_t o1) {
          for (int64_t b = 0; b < n; ++b) {
            detail::GemmTransposedB(pg + (b * out_channels_ + o0) * plane,
                                    px + b * in_channels_ * plane,
                                    pwg2 + o0 * in_channels_, o1 - o0, plane,
                                    in_channels_, /*accumulate=*/true);
          }
        });
    if (o.has_bias) {
      float* pbg = bias_grad_.data();
      ThreadPool::Get().ParallelFor(
          0, out_channels_, GrainForFlops(n * plane),
          [&](int64_t o0, int64_t o1) {
            for (int64_t oc = o0; oc < o1; ++oc) {
              double acc = 0.0;
              for (int64_t b = 0; b < n; ++b) {
                const float* gplane = pg + (b * out_channels_ + oc) * plane;
                for (int64_t i = 0; i < plane; ++i) acc += gplane[i];
              }
              pbg[oc] += static_cast<float>(acc);
            }
          });
    }
    return grad_input;
  }

  Tensor grad_input = NewZeroedTensor(ws, input.shape());
  const float* px = input.data();
  const float* pw = weight_.data();
  const float* pg = grad_output.data();
  float* pgi = grad_input.data();
  float* pgw = weight_grad_.data();
  float* pbg = o.has_bias ? bias_grad_.data() : nullptr;
  int64_t in_plane = h * w;
  int64_t out_plane = oh * ow;
  int64_t kernel_plane = o.kernel_h * o.kernel_w;
  int64_t flops_per_pair =
      out_plane * in_channels_ * kernel_plane;  // one (b, oc) sweep

  // Two passes over the same (b, oc, oy, ox, ic, ky, kx) traversal, so
  // each parallel phase writes disjoint outputs while every gradient
  // element still receives its contributions in the serial order:
  // grad_input[b,...] accumulates over ascending oc (batch-parallel),
  // weight/bias grads [oc,...] accumulate over ascending b
  // (out-channel-parallel).
  ThreadPool::Get().ParallelFor(
      0, n, GrainForFlops(out_channels_ * flops_per_pair),
      [&](int64_t b0, int64_t b1) {
        for (int64_t b = b0; b < b1; ++b) {
          float* gib = pgi + b * in_channels_ * in_plane;
          const float* gb = pg + b * out_channels_ * out_plane;
          for (int64_t oc = 0; oc < out_channels_; ++oc) {
            const float* wc = pw + oc * in_channels_ * kernel_plane;
            const float* gplane = gb + oc * out_plane;
            for (int64_t oy = 0; oy < oh; ++oy) {
              for (int64_t ox = 0; ox < ow; ++ox) {
                float g = gplane[oy * ow + ox];
                if (g == 0.0f) continue;
                int64_t iy0 = oy * o.stride_h - o.pad_h;
                int64_t ix0 = ox * o.stride_w - o.pad_w;
                for (int64_t ic = 0; ic < in_channels_; ++ic) {
                  float* giplane = gib + ic * in_plane;
                  const float* wplane = wc + ic * kernel_plane;
                  for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
                    int64_t iy = iy0 + ky * o.dilation_h;
                    if (iy < 0 || iy >= h) continue;
                    for (int64_t kx = 0; kx < o.kernel_w; ++kx) {
                      int64_t ix = ix0 + kx * o.dilation_w;
                      if (ix < 0 || ix >= w) continue;
                      giplane[iy * w + ix] +=
                          g * wplane[ky * o.kernel_w + kx];
                    }
                  }
                }
              }
            }
          }
        }
      });
  ThreadPool::Get().ParallelFor(
      0, out_channels_, GrainForFlops(n * flops_per_pair),
      [&](int64_t o0, int64_t o1) {
        for (int64_t oc = o0; oc < o1; ++oc) {
          float* gwc = pgw + oc * in_channels_ * kernel_plane;
          for (int64_t b = 0; b < n; ++b) {
            const float* xb = px + b * in_channels_ * in_plane;
            const float* gplane =
                pg + (b * out_channels_ + oc) * out_plane;
            double bias_acc = 0.0;
            for (int64_t oy = 0; oy < oh; ++oy) {
              for (int64_t ox = 0; ox < ow; ++ox) {
                float g = gplane[oy * ow + ox];
                if (g == 0.0f) continue;
                bias_acc += g;
                int64_t iy0 = oy * o.stride_h - o.pad_h;
                int64_t ix0 = ox * o.stride_w - o.pad_w;
                for (int64_t ic = 0; ic < in_channels_; ++ic) {
                  const float* xplane = xb + ic * in_plane;
                  float* gwplane = gwc + ic * kernel_plane;
                  for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
                    int64_t iy = iy0 + ky * o.dilation_h;
                    if (iy < 0 || iy >= h) continue;
                    for (int64_t kx = 0; kx < o.kernel_w; ++kx) {
                      int64_t ix = ix0 + kx * o.dilation_w;
                      if (ix < 0 || ix >= w) continue;
                      gwplane[ky * o.kernel_w + kx] +=
                          g * xplane[iy * w + ix];
                    }
                  }
                }
              }
            }
            if (pbg != nullptr) pbg[oc] += static_cast<float>(bias_acc);
          }
        }
      });
  return grad_input;
}

Tensor Conv2d::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void Conv2d::ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void Conv2d::BackwardInto(const Tensor& grad_output, Workspace& ws,
                          Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> Conv2d::Params() {
  std::vector<ParamRef> params = {{"weight", &weight_, &weight_grad_}};
  if (options_.has_bias) params.push_back({"bias", &bias_, &bias_grad_});
  return params;
}

std::string Conv2d::name() const {
  return StrCat("Conv2d(", in_channels_, "->", out_channels_, ", ",
                options_.kernel_h, "x", options_.kernel_w, ")");
}

}  // namespace dhgcn
