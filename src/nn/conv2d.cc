#include "nn/conv2d.h"

#include <algorithm>

#include "base/string_util.h"
#include "base/thread_pool.h"
#include "nn/initializer.h"
#include "plan/plan_builder.h"
#include "tensor/gemm_kernel.h"
#include "tensor/linalg.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {

namespace {

using detail::kGemmMR;

/// Lowers one batch's (C, H, W) input into the (C*KH*KW, OH*OW) column
/// matrix: row r = (ic, ky, kx) holds that tap's value for every output
/// position, with out-of-bounds (padding) taps written as zero. Rows are
/// independent, so the parallel split is trivially deterministic.
void Im2Col(const float* x, int64_t h, int64_t w, const Conv2dOptions& o,
            int64_t in_channels, int64_t oh, int64_t ow, float* col) {
  const int64_t kk = o.kernel_h * o.kernel_w;
  const int64_t out_plane = oh * ow;
  ThreadPool::Get().ParallelFor(
      0, in_channels * kk, GrainForFlops(out_plane),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t ic = r / kk;
          const int64_t ky = (r % kk) / o.kernel_w;
          const int64_t kx = r % o.kernel_w;
          const float* xplane = x + ic * h * w;
          float* crow = col + r * out_plane;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * o.stride_h - o.pad_h + ky * o.dilation_h;
            float* cout = crow + oy * ow;
            if (iy < 0 || iy >= h) {
              for (int64_t ox = 0; ox < ow; ++ox) cout[ox] = 0.0f;
              continue;
            }
            const float* xrow = xplane + iy * w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * o.stride_w - o.pad_w + kx * o.dilation_w;
              cout[ox] = (ix < 0 || ix >= w) ? 0.0f : xrow[ix];
            }
          }
        }
      });
}

/// Adjoint of Im2Col: scatters the (C*KH*KW, OH*OW) column gradient back
/// into the (C, H, W) input gradient with `+=`. Parallel over input
/// channels — each channel's kk rows and (h, w) plane belong to exactly
/// one chunk, and taps are applied in ascending (ky, kx, oy, ox) order,
/// so the result is bit-identical for every thread count.
void Col2Im(const float* col, int64_t h, int64_t w, const Conv2dOptions& o,
            int64_t in_channels, int64_t oh, int64_t ow, float* gx) {
  const int64_t kk = o.kernel_h * o.kernel_w;
  const int64_t out_plane = oh * ow;
  ThreadPool::Get().ParallelFor(
      0, in_channels, GrainForFlops(kk * out_plane),
      [&](int64_t c0, int64_t c1) {
        for (int64_t ic = c0; ic < c1; ++ic) {
          float* gplane = gx + ic * h * w;
          for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
            for (int64_t kx = 0; kx < o.kernel_w; ++kx) {
              const float* crow =
                  col + ((ic * o.kernel_h + ky) * o.kernel_w + kx) * out_plane;
              for (int64_t oy = 0; oy < oh; ++oy) {
                const int64_t iy =
                    oy * o.stride_h - o.pad_h + ky * o.dilation_h;
                if (iy < 0 || iy >= h) continue;
                float* grow = gplane + iy * w;
                const float* cin = crow + oy * ow;
                for (int64_t ox = 0; ox < ow; ++ox) {
                  const int64_t ix =
                      ox * o.stride_w - o.pad_w + kx * o.dilation_w;
                  if (ix < 0 || ix >= w) continue;
                  grow[ix] += cin[ox];
                }
              }
            }
          }
        }
      });
}

/// out_rows (rows m0..m1 of an (m, n) product) = bias ⊕ A B for packed
/// B: initializes each owned row to its bias (or zero) and lets the
/// blocked kernel accumulate on top. Used inside a ParallelFor over
/// kGemmMR-aligned row blocks.
void BiasedBlockedRows(const float* a, const float* bp, const float* bias,
                       float* c, int64_t m0, int64_t m1, int64_t k,
                       int64_t n) {
  for (int64_t r = m0; r < m1; ++r) {
    const float bias_v = bias != nullptr ? bias[r] : 0.0f;
    float* crow = c + r * n;
    for (int64_t j = 0; j < n; ++j) crow[j] = bias_v;
  }
  detail::GemmBlockedPackedB(a + m0 * k, bp, c + m0 * n, m1 - m0, k, n);
}

}  // namespace

bool Conv2d::use_im2col_ = true;

void Conv2d::SetUseIm2col(bool use) { use_im2col_ = use; }

bool Conv2d::use_im2col() { return use_im2col_; }

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels,
               const Conv2dOptions& options, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      options_(options),
      weight_({out_channels, in_channels, options.kernel_h, options.kernel_w}),
      weight_grad_(weight_.shape()),
      bias_({out_channels}),
      bias_grad_({out_channels}) {
  DHGCN_CHECK_GT(in_channels, 0);
  DHGCN_CHECK_GT(out_channels, 0);
  DHGCN_CHECK_GT(options.kernel_h, 0);
  DHGCN_CHECK_GT(options.kernel_w, 0);
  DHGCN_CHECK_GT(options.stride_h, 0);
  DHGCN_CHECK_GT(options.stride_w, 0);
  DHGCN_CHECK_GT(options.dilation_h, 0);
  DHGCN_CHECK_GT(options.dilation_w, 0);
  int64_t fan_in = in_channels * options.kernel_h * options.kernel_w;
  KaimingUniform(weight_, fan_in, rng);
  if (options.has_bias) BiasUniform(bias_, fan_in, rng);
}

int64_t Conv2d::OutputDim(int64_t in, int64_t kernel, int64_t stride,
                          int64_t pad, int64_t dilation) {
  int64_t effective = dilation * (kernel - 1) + 1;
  int64_t out = (in + 2 * pad - effective) / stride + 1;
  DHGCN_CHECK_GT(out, 0);
  return out;
}

bool Conv2d::IsPointwise() const {
  const Conv2dOptions& o = options_;
  return o.kernel_h == 1 && o.kernel_w == 1 && o.stride_h == 1 &&
         o.stride_w == 1 && o.pad_h == 0 && o.pad_w == 0;
}

Tensor Conv2d::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(1), in_channels_);
  cached_input_ = input;
  const Conv2dOptions& o = options_;
  int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  int64_t oh = OutputDim(h, o.kernel_h, o.stride_h, o.pad_h, o.dilation_h);
  int64_t ow = OutputDim(w, o.kernel_w, o.stride_w, o.pad_w, o.dilation_w);
  Tensor out = NewTensor(ws, {n, out_channels_, oh, ow});
  RunForward(input, weight_.data(), o.has_bias ? bias_.data() : nullptr, oh,
             ow, &out);
  return out;
}

void Conv2d::ForwardPlan(const Tensor& input, const Tensor* weight,
                         const Tensor* bias, Tensor* out) const {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(1), in_channels_);
  const Conv2dOptions& o = options_;
  int64_t oh = OutputDim(input.dim(2), o.kernel_h, o.stride_h, o.pad_h,
                         o.dilation_h);
  int64_t ow = OutputDim(input.dim(3), o.kernel_w, o.stride_w, o.pad_w,
                         o.dilation_w);
  DHGCN_CHECK(ShapesEqual(out->shape(),
                          Shape{input.dim(0), out_channels_, oh, ow}));
  const float* pw = weight != nullptr ? weight->data() : weight_.data();
  const float* pb = nullptr;
  if (bias != nullptr) {
    pb = bias->data();
  } else if (o.has_bias) {
    pb = bias_.data();
  }
  RunForward(input, pw, pb, oh, ow, out);
}

void Conv2d::RunForward(const Tensor& input, const float* pw,
                        const float* pb, int64_t oh, int64_t ow,
                        Tensor* out) const {
  if (IsPointwise()) {
    RunPointwise(input, pw, pb, out);
    return;
  }
  if (use_im2col_) {
    RunIm2col(input, pw, pb, oh, ow, out);
    return;
  }
  RunDirect(input, pw, pb, oh, ow, out);
}

void Conv2d::RunPointwise(const Tensor& input, const float* pw,
                          const float* pb, Tensor* out) const {
  const float* px = input.data();
  int64_t n = input.dim(0);
  int64_t plane = input.dim(2) * input.dim(3);
  float* po = out->data();
  if (detail::GemmUseBlocked(out_channels_, in_channels_, plane)) {
    // out_b = bias ⊕ W x_b through the blocked kernel: pack each
    // batch's (C_in, HW) activation once, then hand out kGemmMR
    // out-channel tiles. Batches run serially (ascending), so chunk
    // boundaries stay a pure function of shape.
    Workspace& scratch = detail::KernelOpScratch();
    Tensor xp =
        scratch.Acquire({detail::GemmPackedBCount(in_channels_, plane)});
    float* pxp = xp.data();
    const int64_t row_blocks = (out_channels_ + kGemmMR - 1) / kGemmMR;
    for (int64_t b = 0; b < n; ++b) {
      detail::GemmPackB(px + b * in_channels_ * plane, in_channels_, plane,
                        pxp);
      float* pob = po + b * out_channels_ * plane;
      ThreadPool::Get().ParallelFor(
          0, row_blocks,
          GrainForFlopsTarget(kGemmMR * in_channels_ * plane,
                              detail::kGemmChunkFlops),
          [&](int64_t t0, int64_t t1) {
            const int64_t r0 = t0 * kGemmMR;
            const int64_t r1 = std::min(out_channels_, t1 * kGemmMR);
            BiasedBlockedRows(pw, pxp, pb, pob, r0, r1, in_channels_,
                              plane);
          });
    }
    scratch.Reset();
    return;
  }
  // out_b (C_out, HW) = W (C_out, C_in) x_b (C_in, HW), per batch.
  // Parallel over the n * C_out output rows: each row is zeroed, then
  // one serial Gemm row (ascending ic) plus its bias add, so the
  // per-element accumulation order matches the serial per-batch Gemm.
  ThreadPool::Get().ParallelFor(
      0, n * out_channels_, GrainForFlops(in_channels_ * plane),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          int64_t b = r / out_channels_;
          int64_t oc = r % out_channels_;
          float* orow = po + r * plane;
          for (int64_t i = 0; i < plane; ++i) orow[i] = 0.0f;
          detail::GemmAccumulate(pw + oc * in_channels_,
                                 px + b * in_channels_ * plane, orow, 1,
                                 in_channels_, plane);
          if (pb != nullptr) {
            float bias_v = pb[oc];
            for (int64_t i = 0; i < plane; ++i) orow[i] += bias_v;
          }
        }
      });
}

void Conv2d::RunIm2col(const Tensor& input, const float* pw, const float* pb,
                       int64_t oh, int64_t ow, Tensor* out) const {
  const Conv2dOptions& o = options_;
  int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int64_t out_plane = oh * ow;
  const int64_t ckk = in_channels_ * o.kernel_h * o.kernel_w;
  const float* px = input.data();
  float* po = out->data();
  Workspace& scratch = detail::KernelOpScratch();
  Tensor col = scratch.Acquire({ckk, out_plane});
  Tensor colp = scratch.Acquire({detail::GemmPackedBCount(ckk, out_plane)});
  float* pcol = col.data();
  float* pcolp = colp.data();
  const int64_t row_blocks = (out_channels_ + kGemmMR - 1) / kGemmMR;
  for (int64_t b = 0; b < n; ++b) {
    Im2Col(px + b * in_channels_ * h * w, h, w, o, in_channels_, oh, ow,
           pcol);
    detail::GemmPackB(pcol, ckk, out_plane, pcolp);
    float* pob = po + b * out_channels_ * out_plane;
    ThreadPool::Get().ParallelFor(
        0, row_blocks,
        GrainForFlopsTarget(kGemmMR * ckk * out_plane,
                            detail::kGemmChunkFlops),
        [&](int64_t t0, int64_t t1) {
          const int64_t r0 = t0 * kGemmMR;
          const int64_t r1 = std::min(out_channels_, t1 * kGemmMR);
          BiasedBlockedRows(pw, pcolp, pb, pob, r0, r1, ckk, out_plane);
        });
  }
  scratch.Reset();
}

void Conv2d::RunDirect(const Tensor& input, const float* pw,
                       const float* pb, int64_t oh, int64_t ow,
                       Tensor* out) const {
  const Conv2dOptions& o = options_;
  int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const float* px = input.data();
  const float* pbias = pb;
  float* po = out->data();
  int64_t in_plane = h * w;
  int64_t out_plane = oh * ow;
  int64_t kernel_plane = o.kernel_h * o.kernel_w;

  // Direct convolution, parallel over the n * C_out output planes; each
  // output element is an independent double accumulation.
  ThreadPool::Get().ParallelFor(
      0, n * out_channels_,
      GrainForFlops(out_plane * in_channels_ * kernel_plane),
      [&](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          int64_t b = p / out_channels_;
          int64_t oc = p % out_channels_;
          const float* xb = px + b * in_channels_ * in_plane;
          const float* wc = pw + oc * in_channels_ * kernel_plane;
          float* oplane = po + p * out_plane;
          float bias_v = pbias != nullptr ? pbias[oc] : 0.0f;
          for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
              double acc = bias_v;
              int64_t iy0 = oy * o.stride_h - o.pad_h;
              int64_t ix0 = ox * o.stride_w - o.pad_w;
              for (int64_t ic = 0; ic < in_channels_; ++ic) {
                const float* xplane = xb + ic * in_plane;
                const float* wplane = wc + ic * kernel_plane;
                for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
                  int64_t iy = iy0 + ky * o.dilation_h;
                  if (iy < 0 || iy >= h) continue;
                  for (int64_t kx = 0; kx < o.kernel_w; ++kx) {
                    int64_t ix = ix0 + kx * o.dilation_w;
                    if (ix < 0 || ix >= w) continue;
                    acc += static_cast<double>(xplane[iy * w + ix]) *
                           wplane[ky * o.kernel_w + kx];
                  }
                }
              }
              oplane[oy * ow + ox] = static_cast<float>(acc);
            }
          }
        }
      });
}

Tensor Conv2d::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  const Conv2dOptions& o = options_;
  const Tensor& input = cached_input_;
  int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  DHGCN_CHECK_EQ(grad_output.dim(0), n);
  DHGCN_CHECK_EQ(grad_output.dim(1), out_channels_);

  if (IsPointwise()) {
    // dX_b = W^T g_b; dW += g_b x_b^T (per batch, transposed GEMMs — no
    // scratch product tensors). Two parallel phases so each phase's
    // chunks write disjoint outputs: grad_input is batch-parallel,
    // weight/bias grads are out-channel-parallel with an ascending batch
    // loop inside (the same per-element accumulation order as the old
    // single interleaved batch loop).
    Tensor grad_input = NewZeroedTensor(ws, input.shape());
    const float* px = input.data();
    const float* pg = grad_output.data();
    float* pgi = grad_input.data();
    int64_t plane = h * w;
    Tensor weight_2d = weight_.Reshape({out_channels_, in_channels_});
    Tensor weight_grad_2d =
        weight_grad_.Reshape({out_channels_, in_channels_});
    const float* pw2 = weight_2d.data();
    float* pwg2 = weight_grad_2d.data();
    if (detail::GemmUseBlocked(in_channels_, out_channels_, plane)) {
      // dX_b = W^T g_b through the blocked kernel: transpose-pack W once,
      // pack each batch's gradient, tile over in-channels. grad_input is
      // zero-initialized, so the accumulate-only kernel lands the result
      // directly.
      Workspace& scratch = detail::KernelOpScratch();
      Tensor wt = scratch.Acquire({in_channels_, out_channels_});
      Tensor gp =
          scratch.Acquire({detail::GemmPackedBCount(out_channels_, plane)});
      float* pwt = wt.data();
      float* pgp = gp.data();
      detail::GemmPackTransposed(pw2, out_channels_, in_channels_, pwt);
      const int64_t row_blocks = (in_channels_ + kGemmMR - 1) / kGemmMR;
      for (int64_t b = 0; b < n; ++b) {
        detail::GemmPackB(pg + b * out_channels_ * plane, out_channels_,
                          plane, pgp);
        float* pgib = pgi + b * in_channels_ * plane;
        ThreadPool::Get().ParallelFor(
            0, row_blocks,
            GrainForFlopsTarget(kGemmMR * out_channels_ * plane,
                                detail::kGemmChunkFlops),
            [&](int64_t t0, int64_t t1) {
              const int64_t r0 = t0 * kGemmMR;
              const int64_t r1 = std::min(in_channels_, t1 * kGemmMR);
              detail::GemmBlockedPackedB(pwt + r0 * out_channels_, pgp,
                                         pgib + r0 * plane, r1 - r0,
                                         out_channels_, plane);
            });
      }
      scratch.Reset();
    } else {
      ThreadPool::Get().ParallelFor(
          0, n, GrainForFlops(out_channels_ * in_channels_ * plane),
          [&](int64_t b0, int64_t b1) {
            for (int64_t b = b0; b < b1; ++b) {
              detail::GemmTransposedAAccumulate(
                  pw2, pg + b * out_channels_ * plane,
                  pgi + b * in_channels_ * plane, out_channels_, in_channels_,
                  plane);
            }
          });
    }
    ThreadPool::Get().ParallelFor(
        0, out_channels_, GrainForFlops(n * in_channels_ * plane),
        [&](int64_t o0, int64_t o1) {
          for (int64_t b = 0; b < n; ++b) {
            detail::GemmTransposedB(pg + (b * out_channels_ + o0) * plane,
                                    px + b * in_channels_ * plane,
                                    pwg2 + o0 * in_channels_, o1 - o0, plane,
                                    in_channels_, /*accumulate=*/true);
          }
        });
    if (o.has_bias) {
      float* pbg = bias_grad_.data();
      ThreadPool::Get().ParallelFor(
          0, out_channels_, GrainForFlops(n * plane),
          [&](int64_t o0, int64_t o1) {
            for (int64_t oc = o0; oc < o1; ++oc) {
              double acc = 0.0;
              for (int64_t b = 0; b < n; ++b) {
                const float* gplane = pg + (b * out_channels_ + oc) * plane;
                for (int64_t i = 0; i < plane; ++i) acc += gplane[i];
              }
              pbg[oc] += static_cast<float>(acc);
            }
          });
    }
    return grad_input;
  }

  if (use_im2col_) return BackwardIm2col(grad_output, ws);
  return BackwardDirect(grad_output, ws);
}

Tensor Conv2d::BackwardIm2col(const Tensor& grad_output, Workspace* ws) {
  const Conv2dOptions& o = options_;
  const Tensor& input = cached_input_;
  int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const int64_t out_plane = oh * ow;
  const int64_t ckk = in_channels_ * o.kernel_h * o.kernel_w;
  Tensor grad_input = NewZeroedTensor(ws, input.shape());
  const float* px = input.data();
  const float* pw = weight_.data();  // (C_out, ckk) row-major
  const float* pg = grad_output.data();
  float* pgi = grad_input.data();
  float* pgw = weight_grad_.data();

  Workspace& scratch = detail::KernelOpScratch();
  Tensor col = scratch.Acquire({ckk, out_plane});
  Tensor dcol = scratch.Acquire({ckk, out_plane});
  Tensor wt = scratch.Acquire({ckk, out_channels_});
  Tensor gp =
      scratch.Acquire({detail::GemmPackedBCount(out_channels_, out_plane)});
  float* pcol = col.data();
  float* pdcol = dcol.data();
  float* pwt = wt.data();
  float* pgp = gp.data();
  detail::GemmPackTransposed(pw, out_channels_, ckk, pwt);

  const int64_t row_blocks = (ckk + kGemmMR - 1) / kGemmMR;
  for (int64_t b = 0; b < n; ++b) {
    const float* pgb = pg + b * out_channels_ * out_plane;
    // dW += g_b col_b^T: recompute the column matrix (cheaper than
    // caching n of them) and take double-accumulated contiguous dots,
    // out-channel-parallel with the batch loop serial ascending — the
    // same per-element order at every thread count.
    Im2Col(px + b * in_channels_ * h * w, h, w, o, in_channels_, oh, ow,
           pcol);
    ThreadPool::Get().ParallelFor(
        0, out_channels_, GrainForFlops(ckk * out_plane),
        [&](int64_t o0, int64_t o1) {
          detail::GemmTransposedB(pgb + o0 * out_plane, pcol,
                                  pgw + o0 * ckk, o1 - o0, out_plane, ckk,
                                  /*accumulate=*/true);
        });
    // dcol = W^T g_b via the blocked kernel, then scatter back to the
    // input gradient.
    detail::GemmPackB(pgb, out_channels_, out_plane, pgp);
    ThreadPool::Get().ParallelFor(
        0, row_blocks,
        GrainForFlopsTarget(kGemmMR * out_channels_ * out_plane,
                            detail::kGemmChunkFlops),
        [&](int64_t t0, int64_t t1) {
          const int64_t r0 = t0 * kGemmMR;
          const int64_t r1 = std::min(ckk, t1 * kGemmMR);
          float* rows = pdcol + r0 * out_plane;
          for (int64_t i = 0; i < (r1 - r0) * out_plane; ++i) rows[i] = 0.0f;
          detail::GemmBlockedPackedB(pwt + r0 * out_channels_, pgp, rows,
                                     r1 - r0, out_channels_, out_plane);
        });
    Col2Im(pdcol, h, w, o, in_channels_, oh, ow,
           pgi + b * in_channels_ * h * w);
  }
  if (o.has_bias) {
    float* pbg = bias_grad_.data();
    ThreadPool::Get().ParallelFor(
        0, out_channels_, GrainForFlops(n * out_plane),
        [&](int64_t o0, int64_t o1) {
          for (int64_t oc = o0; oc < o1; ++oc) {
            double acc = 0.0;
            for (int64_t b = 0; b < n; ++b) {
              const float* gplane =
                  pg + (b * out_channels_ + oc) * out_plane;
              for (int64_t i = 0; i < out_plane; ++i) acc += gplane[i];
            }
            pbg[oc] += static_cast<float>(acc);
          }
        });
  }
  scratch.Reset();
  return grad_input;
}

Tensor Conv2d::BackwardDirect(const Tensor& grad_output, Workspace* ws) {
  const Conv2dOptions& o = options_;
  const Tensor& input = cached_input_;
  int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input = NewZeroedTensor(ws, input.shape());
  const float* px = input.data();
  const float* pw = weight_.data();
  const float* pg = grad_output.data();
  float* pgi = grad_input.data();
  float* pgw = weight_grad_.data();
  float* pbg = o.has_bias ? bias_grad_.data() : nullptr;
  int64_t in_plane = h * w;
  int64_t out_plane = oh * ow;
  int64_t kernel_plane = o.kernel_h * o.kernel_w;
  int64_t flops_per_pair =
      out_plane * in_channels_ * kernel_plane;  // one (b, oc) sweep

  // Two passes over the same (b, oc, oy, ox, ic, ky, kx) traversal, so
  // each parallel phase writes disjoint outputs while every gradient
  // element still receives its contributions in the serial order:
  // grad_input[b,...] accumulates over ascending oc (batch-parallel),
  // weight/bias grads [oc,...] accumulate over ascending b
  // (out-channel-parallel).
  ThreadPool::Get().ParallelFor(
      0, n, GrainForFlops(out_channels_ * flops_per_pair),
      [&](int64_t b0, int64_t b1) {
        for (int64_t b = b0; b < b1; ++b) {
          float* gib = pgi + b * in_channels_ * in_plane;
          const float* gb = pg + b * out_channels_ * out_plane;
          for (int64_t oc = 0; oc < out_channels_; ++oc) {
            const float* wc = pw + oc * in_channels_ * kernel_plane;
            const float* gplane = gb + oc * out_plane;
            for (int64_t oy = 0; oy < oh; ++oy) {
              for (int64_t ox = 0; ox < ow; ++ox) {
                float g = gplane[oy * ow + ox];
                if (g == 0.0f) continue;
                int64_t iy0 = oy * o.stride_h - o.pad_h;
                int64_t ix0 = ox * o.stride_w - o.pad_w;
                for (int64_t ic = 0; ic < in_channels_; ++ic) {
                  float* giplane = gib + ic * in_plane;
                  const float* wplane = wc + ic * kernel_plane;
                  for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
                    int64_t iy = iy0 + ky * o.dilation_h;
                    if (iy < 0 || iy >= h) continue;
                    for (int64_t kx = 0; kx < o.kernel_w; ++kx) {
                      int64_t ix = ix0 + kx * o.dilation_w;
                      if (ix < 0 || ix >= w) continue;
                      giplane[iy * w + ix] +=
                          g * wplane[ky * o.kernel_w + kx];
                    }
                  }
                }
              }
            }
          }
        }
      });
  ThreadPool::Get().ParallelFor(
      0, out_channels_, GrainForFlops(n * flops_per_pair),
      [&](int64_t o0, int64_t o1) {
        for (int64_t oc = o0; oc < o1; ++oc) {
          float* gwc = pgw + oc * in_channels_ * kernel_plane;
          for (int64_t b = 0; b < n; ++b) {
            const float* xb = px + b * in_channels_ * in_plane;
            const float* gplane =
                pg + (b * out_channels_ + oc) * out_plane;
            double bias_acc = 0.0;
            for (int64_t oy = 0; oy < oh; ++oy) {
              for (int64_t ox = 0; ox < ow; ++ox) {
                float g = gplane[oy * ow + ox];
                if (g == 0.0f) continue;
                bias_acc += g;
                int64_t iy0 = oy * o.stride_h - o.pad_h;
                int64_t ix0 = ox * o.stride_w - o.pad_w;
                for (int64_t ic = 0; ic < in_channels_; ++ic) {
                  const float* xplane = xb + ic * in_plane;
                  float* gwplane = gwc + ic * kernel_plane;
                  for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
                    int64_t iy = iy0 + ky * o.dilation_h;
                    if (iy < 0 || iy >= h) continue;
                    for (int64_t kx = 0; kx < o.kernel_w; ++kx) {
                      int64_t ix = ix0 + kx * o.dilation_w;
                      if (ix < 0 || ix >= w) continue;
                      gwplane[ky * o.kernel_w + kx] +=
                          g * xplane[iy * w + ix];
                    }
                  }
                }
              }
            }
            if (pbg != nullptr) pbg[oc] += static_cast<float>(bias_acc);
          }
        }
      });
  return grad_input;
}

Tensor Conv2d::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void Conv2d::ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void Conv2d::BackwardInto(const Tensor& grad_output, Workspace& ws,
                          Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> Conv2d::Params() {
  std::vector<ParamRef> params = {{"weight", &weight_, &weight_grad_}};
  if (options_.has_bias) params.push_back({"bias", &bias_, &bias_grad_});
  return params;
}

std::string Conv2d::name() const {
  return StrCat("Conv2d(", in_channels_, "->", out_channels_, ", ",
                options_.kernel_h, "x", options_.kernel_w, ")");
}

int64_t Conv2d::Record(PlanBuilder& builder, int64_t in) {
  const Shape& s = builder.slot_shape(in);
  if (s.size() != 4 || s[1] != in_channels_) return -1;
  const Conv2dOptions& o = options_;
  int64_t oh = OutputDim(s[2], o.kernel_h, o.stride_h, o.pad_h, o.dilation_h);
  int64_t ow = OutputDim(s[3], o.kernel_w, o.stride_w, o.pad_w, o.dilation_w);
  PlanOp op;
  op.kind = PlanOpKind::kConv2d;
  op.in0 = in;
  op.out = builder.AddSlot({s[0], out_channels_, oh, ow});
  op.conv = this;
  int64_t out = op.out;
  builder.AddOp(std::move(op));
  return out;
}

}  // namespace dhgcn
