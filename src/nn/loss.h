#ifndef DHGCN_NN_LOSS_H_
#define DHGCN_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "base/result.h"
#include "tensor/tensor.h"

namespace dhgcn {

class Workspace;

/// \brief Softmax cross-entropy over logits, averaged across the batch,
/// with optional label smoothing.
///
/// `Forward(logits, labels)` takes (N, K) logits and N integer labels in
/// [0, K); `Backward()` returns d loss / d logits of shape (N, K). Uses a
/// numerically stable log-sum-exp formulation. With smoothing epsilon,
/// the target distribution is (1 - eps) * onehot + eps / K, and the
/// gradient is (softmax(logits) - target) / N.
///
/// The workspace-aware overloads place the softmax probabilities and the
/// gradient in the given arena; they are valid until the next
/// `Workspace::Reset()`, which must not happen between Forward and
/// Backward of the same step.
class SoftmaxCrossEntropy {
 public:
  explicit SoftmaxCrossEntropy(float label_smoothing = 0.0f);

  /// Validating entry point: labels are checked against the logit class
  /// count and batch size, returning a descriptive InvalidArgument for
  /// corrupt labels instead of indexing out of bounds. The Trainer uses
  /// this so one bad label surfaces as a Status, not a crash.
  Result<float> TryForward(const Tensor& logits,
                           const std::vector<int64_t>& labels) {
    return TryForwardImpl(logits, labels, nullptr);
  }

  /// Workspace-planned variant: intermediate buffers live in `ws`.
  Result<float> TryForward(const Tensor& logits,
                           const std::vector<int64_t>& labels,
                           Workspace& ws) {
    return TryForwardImpl(logits, labels, &ws);
  }

  /// Convenience wrapper for tests/examples: aborts on invalid labels.
  float Forward(const Tensor& logits, const std::vector<int64_t>& labels) {
    return TryForward(logits, labels).ValueOrDie();
  }

  Tensor Backward() const { return BackwardImpl(nullptr); }
  Tensor Backward(Workspace& ws) const { return BackwardImpl(&ws); }

  /// Softmax probabilities from the most recent Forward call.
  const Tensor& probabilities() const { return cached_probs_; }
  float label_smoothing() const { return label_smoothing_; }

 private:
  Result<float> TryForwardImpl(const Tensor& logits,
                               const std::vector<int64_t>& labels,
                               Workspace* ws);
  Tensor BackwardImpl(Workspace* ws) const;

  float label_smoothing_;
  Tensor cached_probs_;  // (N, K)
  std::vector<int64_t> cached_labels_;
};

}  // namespace dhgcn

#endif  // DHGCN_NN_LOSS_H_
