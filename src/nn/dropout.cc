#include "nn/dropout.h"

#include "base/check.h"
#include "base/string_util.h"
#include "tensor/workspace.h"

namespace dhgcn {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.Split()) {
  DHGCN_CHECK(p >= 0.0f && p < 1.0f);
}

Tensor Dropout::ForwardImpl(const Tensor& input, Workspace* ws) {
  cached_was_training_ = training();
  if (!training() || p_ == 0.0f) return input;
  float scale = 1.0f / (1.0f - p_);
  cached_mask_ = NewTensor(ws, input.shape());
  Tensor out = NewTensor(ws, input.shape());
  const float* px = input.data();
  float* po = out.data();
  float* pm = cached_mask_.data();
  for (int64_t i = 0; i < input.numel(); ++i) {
    float keep = rng_.Bernoulli(p_) ? 0.0f : scale;
    pm[i] = keep;
    po[i] = px[i] * keep;
  }
  return out;
}

Tensor Dropout::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  if (!cached_was_training_ || p_ == 0.0f) return grad_output;
  DHGCN_CHECK(ShapesEqual(grad_output.shape(), cached_mask_.shape()));
  Tensor grad_input = NewTensor(ws, grad_output.shape());
  const float* pg = grad_output.data();
  const float* pm = cached_mask_.data();
  float* po = grad_input.data();
  for (int64_t i = 0; i < grad_output.numel(); ++i) po[i] = pg[i] * pm[i];
  return grad_input;
}

Tensor Dropout::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void Dropout::ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void Dropout::BackwardInto(const Tensor& grad_output, Workspace& ws,
                           Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::string Dropout::name() const { return StrCat("Dropout(", p_, ")"); }

int64_t Dropout::Record(PlanBuilder& builder, int64_t in) {
  // Inference dropout is the identity: pass the producer slot through
  // without emitting an op, so the plan carries no trace of dropout (and
  // replay cannot touch the RNG).
  (void)builder;
  return in;
}

}  // namespace dhgcn
