#ifndef DHGCN_NN_SEQUENTIAL_H_
#define DHGCN_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace dhgcn {

/// \brief Runs child layers in order; Backward runs them in reverse.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a raw pointer for further configuration.
  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void Append(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::vector<ParamRef> Params() override;
  void SetTraining(bool training) override;
  std::string name() const override;

  /// Chains child recordings; fails (-1) as soon as any child cannot
  /// record.
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  size_t size() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_.at(i).get(); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace dhgcn

#endif  // DHGCN_NN_SEQUENTIAL_H_
