#include "nn/layer.h"

#include "tensor/workspace.h"

namespace dhgcn {

void Layer::ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) {
  (void)ws;
  DHGCN_CHECK(out != nullptr);
  *out = Forward(input);
}

void Layer::BackwardInto(const Tensor& grad_output, Workspace& ws,
                         Tensor* grad_input) {
  (void)ws;
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = Backward(grad_output);
}

int64_t Layer::Record(PlanBuilder& builder, int64_t in) {
  (void)builder;
  (void)in;
  return -1;  // Not capturable; callers fall back to layer-by-layer.
}

void Layer::ZeroGrad() {
  for (ParamRef& p : Params()) {
    if (p.grad != nullptr) p.grad->Fill(0.0f);
  }
}

int64_t Layer::ParameterCount() {
  int64_t count = 0;
  for (ParamRef& p : Params()) {
    if (p.trainable) count += p.value->numel();
  }
  return count;
}

Tensor LayerForward(Layer& layer, const Tensor& input, Workspace* ws) {
  if (ws == nullptr) return layer.Forward(input);
  Tensor out;
  layer.ForwardInto(input, *ws, &out);
  return out;
}

Tensor LayerBackward(Layer& layer, const Tensor& grad_output, Workspace* ws) {
  if (ws == nullptr) return layer.Backward(grad_output);
  Tensor grad_input;
  layer.BackwardInto(grad_output, *ws, &grad_input);
  return grad_input;
}

}  // namespace dhgcn
