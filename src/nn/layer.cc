#include "nn/layer.h"

namespace dhgcn {

void Layer::ZeroGrad() {
  for (ParamRef& p : Params()) {
    if (p.grad != nullptr) p.grad->Fill(0.0f);
  }
}

int64_t Layer::ParameterCount() {
  int64_t count = 0;
  for (ParamRef& p : Params()) {
    if (p.trainable) count += p.value->numel();
  }
  return count;
}

}  // namespace dhgcn
