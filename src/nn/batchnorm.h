#ifndef DHGCN_NN_BATCHNORM_H_
#define DHGCN_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace dhgcn {

/// \brief Batch normalization over the channel axis of (N, C, H, W) inputs.
///
/// Training mode normalizes with batch statistics over (N, H, W) and
/// updates exponential running averages; inference mode uses the running
/// statistics. 2-D inputs (N, C) are supported as a degenerate H=W=1 case
/// (BatchNorm1d semantics).
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::vector<ParamRef> Params() override;
  std::string name() const override;
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  /// Plan-replay entry: the eval-mode normalization (running statistics)
  /// written into the pre-shaped `out` — the exact same kernel as the
  /// layer's eval forward, bit-identical results. Does not touch the
  /// autograd cache.
  void EvalPlan(const Tensor& input, Tensor* out) const;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  float eps() const { return eps_; }
  int64_t channels() const { return channels_; }

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  int64_t channels_;
  float eps_;
  float momentum_;

  Tensor gamma_;  // scale, (C)
  Tensor gamma_grad_;
  Tensor beta_;   // shift, (C)
  Tensor beta_grad_;

  Tensor running_mean_;  // (C)
  Tensor running_var_;   // (C)

  // Cached forward state (training mode).
  Tensor cached_xhat_;      // normalized input, input shape
  Tensor cached_inv_std_;   // (C)
  Shape cached_shape_;
  bool cached_was_training_ = false;
};

}  // namespace dhgcn

#endif  // DHGCN_NN_BATCHNORM_H_
