#include "nn/linear.h"

#include "base/string_util.h"
#include "nn/initializer.h"
#include "tensor/linalg.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool has_bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(has_bias),
      weight_({out_features, in_features}),
      weight_grad_({out_features, in_features}),
      bias_({out_features}),
      bias_grad_({out_features}) {
  KaimingUniform(weight_, in_features, rng);
  if (has_bias_) BiasUniform(bias_, in_features, rng);
}

Tensor Linear::Forward(const Tensor& input) {
  DHGCN_CHECK_GE(input.ndim(), 2);
  DHGCN_CHECK_EQ(input.dim(-1), in_features_);
  cached_input_shape_ = input.shape();
  Tensor x2d = input.Reshape({-1, in_features_});
  cached_input_2d_ = x2d;
  // y = x W^T: (rows,in) x (out,in)^T -> (rows,out)
  Tensor y = MatMulTransposedB(x2d, weight_);
  if (has_bias_) {
    float* py = y.data();
    const float* pb = bias_.data();
    int64_t rows = y.dim(0);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < out_features_; ++c) {
        py[r * out_features_ + c] += pb[c];
      }
    }
  }
  Shape out_shape = cached_input_shape_;
  out_shape.back() = out_features_;
  return y.Reshape(std::move(out_shape));
}

Tensor Linear::Backward(const Tensor& grad_output) {
  DHGCN_CHECK_EQ(grad_output.dim(-1), out_features_);
  Tensor g2d = grad_output.Reshape({-1, out_features_});
  DHGCN_CHECK_EQ(g2d.dim(0), cached_input_2d_.dim(0));
  // dW = g^T x : (out, rows) x (rows, in) -> (out, in)
  Tensor dw = MatMulTransposedA(g2d, cached_input_2d_);
  AddInPlace(weight_grad_, dw);
  if (has_bias_) {
    Tensor db = ReduceSum(g2d, 0);
    AddInPlace(bias_grad_, db);
  }
  // dx = g W : (rows, out) x (out, in) -> (rows, in)
  Tensor dx = MatMul(g2d, weight_);
  return dx.Reshape(cached_input_shape_);
}

std::vector<ParamRef> Linear::Params() {
  std::vector<ParamRef> params = {{"weight", &weight_, &weight_grad_}};
  if (has_bias_) params.push_back({"bias", &bias_, &bias_grad_});
  return params;
}

std::string Linear::name() const {
  return StrCat("Linear(", in_features_, "->", out_features_, ")");
}

}  // namespace dhgcn
