#include "nn/linear.h"

#include "base/string_util.h"
#include "nn/initializer.h"
#include "plan/plan_builder.h"
#include "tensor/linalg.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool has_bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(has_bias),
      weight_({out_features, in_features}),
      weight_grad_({out_features, in_features}),
      bias_({out_features}),
      bias_grad_({out_features}) {
  KaimingUniform(weight_, in_features, rng);
  if (has_bias_) BiasUniform(bias_, in_features, rng);
}

Tensor Linear::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_GE(input.ndim(), 2);
  DHGCN_CHECK_EQ(input.dim(-1), in_features_);
  cached_input_shape_ = input.shape();
  Tensor x2d = input.Reshape({-1, in_features_});
  cached_input_2d_ = x2d;
  Tensor y = NewTensor(ws, {x2d.dim(0), out_features_});
  RunLinear(x2d, weight_, has_bias_ ? bias_.data() : nullptr, &y);
  Shape out_shape = cached_input_shape_;
  out_shape.back() = out_features_;
  return y.Reshape(std::move(out_shape));
}

void Linear::RunLinear(const Tensor& x2d, const Tensor& w, const float* pb,
                       Tensor* y) const {
  // y = x W^T: (rows,in) x (out,in)^T -> (rows,out)
  MatMulTransposedBInto(x2d, w, y);
  if (pb != nullptr) {
    float* py = y->data();
    int64_t rows = y->dim(0);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < out_features_; ++c) {
        py[r * out_features_ + c] += pb[c];
      }
    }
  }
}

void Linear::ForwardPlan(const Tensor& input, const Tensor* weight,
                         const Tensor* bias, Tensor* out) const {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(input.ndim(), 2);
  DHGCN_CHECK_EQ(input.dim(1), in_features_);
  DHGCN_CHECK(ShapesEqual(out->shape(), Shape{input.dim(0), out_features_}));
  const Tensor& w = weight != nullptr ? *weight : weight_;
  const float* pb = nullptr;
  if (bias != nullptr) {
    pb = bias->data();
  } else if (has_bias_) {
    pb = bias_.data();
  }
  RunLinear(input, w, pb, out);
}

int64_t Linear::Record(PlanBuilder& builder, int64_t in) {
  const Shape& s = builder.slot_shape(in);
  if (s.size() != 2 || s[1] != in_features_) return -1;
  PlanOp op;
  op.kind = PlanOpKind::kLinear;
  op.in0 = in;
  op.out = builder.AddSlot({s[0], out_features_});
  op.linear = this;
  int64_t out = op.out;
  builder.AddOp(std::move(op));
  return out;
}

Tensor Linear::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  DHGCN_CHECK_EQ(grad_output.dim(-1), out_features_);
  Tensor g2d = grad_output.Reshape({-1, out_features_});
  DHGCN_CHECK_EQ(g2d.dim(0), cached_input_2d_.dim(0));
  // dW = g^T x : (out, rows) x (rows, in) -> (out, in), accumulated
  // directly into the gradient without a scratch product.
  MatMulTransposedAInto(g2d, cached_input_2d_, &weight_grad_,
                        /*accumulate=*/true);
  if (has_bias_) {
    Tensor db = NewTensor(ws, {out_features_});
    ReduceSumInto(g2d, 0, /*keepdim=*/false, &db);
    AddInPlace(bias_grad_, db);
  }
  // dx = g W : (rows, out) x (out, in) -> (rows, in)
  Tensor dx = NewTensor(ws, {g2d.dim(0), in_features_});
  MatMulInto(g2d, weight_, &dx);
  return dx.Reshape(cached_input_shape_);
}

Tensor Linear::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor Linear::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void Linear::ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void Linear::BackwardInto(const Tensor& grad_output, Workspace& ws,
                          Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> Linear::Params() {
  std::vector<ParamRef> params = {{"weight", &weight_, &weight_grad_}};
  if (has_bias_) params.push_back({"bias", &bias_, &bias_grad_});
  return params;
}

std::string Linear::name() const {
  return StrCat("Linear(", in_features_, "->", out_features_, ")");
}

}  // namespace dhgcn
