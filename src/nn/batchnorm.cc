#include "nn/batchnorm.h"

#include <cmath>

#include "base/check.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "plan/plan_builder.h"
#include "tensor/workspace.h"

namespace dhgcn {

namespace {

// Interprets (N,C), (N,C,L) or (N,C,H,W) uniformly as (N, C, spatial).
struct NormView {
  int64_t n;
  int64_t c;
  int64_t spatial;
};

NormView MakeView(const Shape& shape) {
  DHGCN_CHECK_GE(shape.size(), 2u);
  NormView v{shape[0], shape[1], 1};
  for (size_t i = 2; i < shape.size(); ++i) v.spatial *= shape[i];
  return v;
}

}  // namespace

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::Ones({channels})),
      gamma_grad_({channels}),
      beta_({channels}),
      beta_grad_({channels}),
      running_mean_({channels}),
      running_var_(Tensor::Ones({channels})) {
  DHGCN_CHECK_GT(channels, 0);
}

Tensor BatchNorm2d::ForwardImpl(const Tensor& input, Workspace* ws) {
  NormView v = MakeView(input.shape());
  DHGCN_CHECK_EQ(v.c, channels_);
  cached_shape_ = input.shape();
  cached_was_training_ = training();
  Tensor out = NewTensor(ws, input.shape());
  const float* px = input.data();
  float* po = out.data();

  // Channels are independent: each channel's chunk writes only its own
  // slices of out/xhat and its own [c] statistics, and the per-channel
  // moment reduction stays a single serial double accumulation — so the
  // result is bit-identical for every thread count.
  if (training()) {
    int64_t count = v.n * v.spatial;
    DHGCN_CHECK_GT(count, 0);
    const double count_d = static_cast<double>(count);
    cached_xhat_ = NewTensor(ws, input.shape());
    cached_inv_std_ = NewTensor(ws, {channels_});
    float* pxhat = cached_xhat_.data();
    float* pinv_std = cached_inv_std_.data();
    const float* pgamma = gamma_.data();
    const float* pbeta = beta_.data();
    float* prmean = running_mean_.data();
    float* prvar = running_var_.data();
    ThreadPool::Get().ParallelFor(
        0, channels_, GrainForFlops(count), [&](int64_t c0, int64_t c1) {
          for (int64_t c = c0; c < c1; ++c) {
            double sum = 0.0, sum_sq = 0.0;
            for (int64_t b = 0; b < v.n; ++b) {
              const float* base = px + (b * v.c + c) * v.spatial;
              for (int64_t s = 0; s < v.spatial; ++s) {
                sum += base[s];
                sum_sq += static_cast<double>(base[s]) * base[s];
              }
            }
            double mean = sum / count_d;
            double var = sum_sq / count_d - mean * mean;
            var = std::max(var, 0.0);
            float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
            pinv_std[c] = inv_std;
            float g = pgamma[c], bta = pbeta[c];
            for (int64_t b = 0; b < v.n; ++b) {
              const float* base = px + (b * v.c + c) * v.spatial;
              float* xhat_base = pxhat + (b * v.c + c) * v.spatial;
              float* obase = po + (b * v.c + c) * v.spatial;
              for (int64_t s = 0; s < v.spatial; ++s) {
                float xhat = (base[s] - static_cast<float>(mean)) * inv_std;
                xhat_base[s] = xhat;
                obase[s] = g * xhat + bta;
              }
            }
            // Unbiased variance for the running estimate, as in PyTorch.
            double unbiased =
                count > 1 ? var * count_d / static_cast<double>(count - 1)
                          : var;
            prmean[c] = (1.0f - momentum_) * prmean[c] +
                        momentum_ * static_cast<float>(mean);
            prvar[c] = (1.0f - momentum_) * prvar[c] +
                       momentum_ * static_cast<float>(unbiased);
          }
        });
  } else {
    EvalPlan(input, &out);
  }
  return out;
}

void BatchNorm2d::EvalPlan(const Tensor& input, Tensor* out) const {
  NormView v = MakeView(input.shape());
  DHGCN_CHECK_EQ(v.c, channels_);
  DHGCN_CHECK(ShapesEqual(out->shape(), input.shape()));
  const float* px = input.data();
  float* po = out->data();
  const float* pgamma = gamma_.data();
  const float* pbeta = beta_.data();
  const float* prmean = running_mean_.data();
  const float* prvar = running_var_.data();
  ThreadPool::Get().ParallelFor(
      0, channels_, GrainForFlops(v.n * v.spatial),
      [&](int64_t c0, int64_t c1) {
        for (int64_t c = c0; c < c1; ++c) {
          float mean = prmean[c];
          float inv_std = 1.0f / std::sqrt(prvar[c] + eps_);
          float g = pgamma[c], bta = pbeta[c];
          for (int64_t b = 0; b < v.n; ++b) {
            const float* base = px + (b * v.c + c) * v.spatial;
            float* obase = po + (b * v.c + c) * v.spatial;
            for (int64_t s = 0; s < v.spatial; ++s) {
              obase[s] = g * (base[s] - mean) * inv_std + bta;
            }
          }
        }
      });
}

int64_t BatchNorm2d::Record(PlanBuilder& builder, int64_t in) {
  const Shape& s = builder.slot_shape(in);
  if (s.size() < 2 || s[1] != channels_) return -1;
  PlanOp op;
  op.kind = PlanOpKind::kBatchNormEval;
  op.in0 = in;
  op.out = builder.AddSlot(s);
  op.bn = this;
  int64_t out = op.out;
  builder.AddOp(std::move(op));
  return out;
}

Tensor BatchNorm2d::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  DHGCN_CHECK(ShapesEqual(grad_output.shape(), cached_shape_));
  DHGCN_CHECK(cached_was_training_);  // backward only defined for training
  NormView v = MakeView(cached_shape_);
  const double count_d = static_cast<double>(v.n * v.spatial);
  Tensor grad_input = NewTensor(ws, cached_shape_);
  const float* pg = grad_output.data();
  const float* pxhat = cached_xhat_.data();
  float* pgi = grad_input.data();

  float* pgg = gamma_grad_.data();
  float* pbg = beta_grad_.data();
  const float* pgamma = gamma_.data();
  const float* pinv_std = cached_inv_std_.data();
  // Channel-parallel like the forward pass: per-channel reductions and
  // writes touch only index [c] and that channel's slices.
  ThreadPool::Get().ParallelFor(
      0, channels_, GrainForFlops(v.n * v.spatial),
      [&](int64_t c0, int64_t c1) {
        for (int64_t c = c0; c < c1; ++c) {
          // Accumulate dL/dgamma, dL/dbeta and the two reduction terms of
          // the standard batch-norm backward formula.
          double sum_g = 0.0, sum_g_xhat = 0.0;
          for (int64_t b = 0; b < v.n; ++b) {
            const float* gbase = pg + (b * v.c + c) * v.spatial;
            const float* xbase = pxhat + (b * v.c + c) * v.spatial;
            for (int64_t s = 0; s < v.spatial; ++s) {
              sum_g += gbase[s];
              sum_g_xhat += static_cast<double>(gbase[s]) * xbase[s];
            }
          }
          pgg[c] += static_cast<float>(sum_g_xhat);
          pbg[c] += static_cast<float>(sum_g);
          float g = pgamma[c];
          float inv_std = pinv_std[c];
          float mean_g = static_cast<float>(sum_g / count_d);
          float mean_g_xhat = static_cast<float>(sum_g_xhat / count_d);
          for (int64_t b = 0; b < v.n; ++b) {
            const float* gbase = pg + (b * v.c + c) * v.spatial;
            const float* xbase = pxhat + (b * v.c + c) * v.spatial;
            float* gibase = pgi + (b * v.c + c) * v.spatial;
            for (int64_t s = 0; s < v.spatial; ++s) {
              gibase[s] =
                  g * inv_std * (gbase[s] - mean_g - xbase[s] * mean_g_xhat);
            }
          }
        }
      });
  return grad_input;
}

Tensor BatchNorm2d::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor BatchNorm2d::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void BatchNorm2d::ForwardInto(const Tensor& input, Workspace& ws,
                              Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void BatchNorm2d::BackwardInto(const Tensor& grad_output, Workspace& ws,
                               Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> BatchNorm2d::Params() {
  return {{"gamma", &gamma_, &gamma_grad_, /*trainable=*/true},
          {"beta", &beta_, &beta_grad_, /*trainable=*/true},
          // Running statistics: persistent but not optimized. They must
          // be serialized or a reloaded model evaluates with fresh
          // (wrong) statistics.
          {"running_mean", &running_mean_, nullptr, /*trainable=*/false},
          {"running_var", &running_var_, nullptr, /*trainable=*/false}};
}

std::string BatchNorm2d::name() const {
  return StrCat("BatchNorm2d(", channels_, ")");
}

}  // namespace dhgcn
