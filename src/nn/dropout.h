#ifndef DHGCN_NN_DROPOUT_H_
#define DHGCN_NN_DROPOUT_H_

#include <string>

#include "base/rng.h"
#include "nn/layer.h"

namespace dhgcn {

/// \brief Inverted dropout: zeroes activations with probability `p` during
/// training and rescales survivors by 1/(1-p); identity during inference.
class Dropout : public Layer {
 public:
  Dropout(float p, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::string name() const override;

  /// Eval-mode dropout is a true identity fast path: the forward returns
  /// the input unchanged — no mask tensor, no allocation, and the RNG
  /// stream is never advanced. Plan capture therefore records dropout as
  /// a no-op (the input slot passes straight through), so inference
  /// plans never touch the RNG.
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  float p() const { return p_; }

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  float p_;
  Rng rng_;
  Tensor cached_mask_;  // already scaled by 1/(1-p)
  bool cached_was_training_ = false;
};

}  // namespace dhgcn

#endif  // DHGCN_NN_DROPOUT_H_
