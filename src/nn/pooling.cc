#include "nn/pooling.h"

#include "base/check.h"
#include "base/string_util.h"
#include "plan/plan_builder.h"
#include "tensor/workspace.h"

namespace dhgcn {

Tensor GlobalAvgPool2d::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  cached_input_shape_ = input.shape();
  Tensor out = NewTensor(ws, {input.dim(0), input.dim(1)});
  EvalPlan(input, &out);
  return out;
}

void GlobalAvgPool2d::EvalPlan(const Tensor& input, Tensor* out) const {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  int64_t n = input.dim(0), c = input.dim(1);
  int64_t spatial = input.dim(2) * input.dim(3);
  DHGCN_CHECK(ShapesEqual(out->shape(), Shape{n, c}));
  const float* px = input.data();
  float* po = out->data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* base = px + (b * c + ch) * spatial;
      double sum = 0.0;
      for (int64_t s = 0; s < spatial; ++s) sum += base[s];
      po[b * c + ch] = static_cast<float>(sum / static_cast<double>(spatial));
    }
  }
}

int64_t GlobalAvgPool2d::Record(PlanBuilder& builder, int64_t in) {
  const Shape& s = builder.slot_shape(in);
  if (s.size() != 4) return -1;
  PlanOp op;
  op.kind = PlanOpKind::kGlobalAvgPool;
  op.in0 = in;
  op.out = builder.AddSlot({s[0], s[1]});
  op.pool = this;
  int64_t out = op.out;
  builder.AddOp(std::move(op));
  return out;
}

Tensor GlobalAvgPool2d::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  DHGCN_CHECK_EQ(grad_output.ndim(), 2);
  int64_t n = cached_input_shape_[0], c = cached_input_shape_[1];
  int64_t spatial = cached_input_shape_[2] * cached_input_shape_[3];
  DHGCN_CHECK_EQ(grad_output.dim(0), n);
  DHGCN_CHECK_EQ(grad_output.dim(1), c);
  Tensor grad_input = NewTensor(ws, cached_input_shape_);
  const float* pg = grad_output.data();
  float* po = grad_input.data();
  float inv = 1.0f / static_cast<float>(spatial);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float g = pg[b * c + ch] * inv;
      float* base = po + (b * c + ch) * spatial;
      for (int64_t s = 0; s < spatial; ++s) base[s] = g;
    }
  }
  return grad_input;
}

TemporalAvgPool::TemporalAvgPool(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride) {
  DHGCN_CHECK_GT(kernel, 0);
  DHGCN_CHECK_GT(stride, 0);
}

Tensor TemporalAvgPool::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  cached_input_shape_ = input.shape();
  int64_t n = input.dim(0), c = input.dim(1), t = input.dim(2),
          v = input.dim(3);
  int64_t ot = (t - kernel_) / stride_ + 1;
  DHGCN_CHECK_GT(ot, 0);
  Tensor out = NewTensor(ws, {n, c, ot, v});
  const float* px = input.data();
  float* po = out.data();
  float inv = 1.0f / static_cast<float>(kernel_);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (b * c + ch) * t * v;
      float* oplane = po + (b * c + ch) * ot * v;
      for (int64_t oy = 0; oy < ot; ++oy) {
        for (int64_t x = 0; x < v; ++x) {
          double sum = 0.0;
          for (int64_t k = 0; k < kernel_; ++k) {
            sum += plane[(oy * stride_ + k) * v + x];
          }
          oplane[oy * v + x] = static_cast<float>(sum) * inv;
        }
      }
    }
  }
  return out;
}

Tensor TemporalAvgPool::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  int64_t n = cached_input_shape_[0], c = cached_input_shape_[1],
          t = cached_input_shape_[2], v = cached_input_shape_[3];
  int64_t ot = grad_output.dim(2);
  Tensor grad_input = NewZeroedTensor(ws, cached_input_shape_);
  const float* pg = grad_output.data();
  float* po = grad_input.data();
  float inv = 1.0f / static_cast<float>(kernel_);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* gplane = pg + (b * c + ch) * ot * v;
      float* iplane = po + (b * c + ch) * t * v;
      for (int64_t oy = 0; oy < ot; ++oy) {
        for (int64_t x = 0; x < v; ++x) {
          float g = gplane[oy * v + x] * inv;
          for (int64_t k = 0; k < kernel_; ++k) {
            iplane[(oy * stride_ + k) * v + x] += g;
          }
        }
      }
    }
  }
  return grad_input;
}


Tensor GlobalAvgPool2d::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor GlobalAvgPool2d::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void GlobalAvgPool2d::ForwardInto(const Tensor& input, Workspace& ws,
                                  Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void GlobalAvgPool2d::BackwardInto(const Tensor& grad_output, Workspace& ws,
                                   Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

Tensor TemporalAvgPool::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor TemporalAvgPool::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void TemporalAvgPool::ForwardInto(const Tensor& input, Workspace& ws,
                                  Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void TemporalAvgPool::BackwardInto(const Tensor& grad_output, Workspace& ws,
                                   Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::string TemporalAvgPool::name() const {
  return StrCat("TemporalAvgPool(k=", kernel_, ", s=", stride_, ")");
}

}  // namespace dhgcn
