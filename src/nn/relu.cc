#include "nn/relu.h"

#include "base/check.h"
#include "plan/plan_builder.h"
#include "tensor/workspace.h"

namespace dhgcn {

void ReLU::EvalPlan(const Tensor& input, Tensor* out) {
  DHGCN_CHECK(ShapesEqual(out->shape(), input.shape()));
  const float* px = input.data();
  float* po = out->data();
  for (int64_t i = 0; i < input.numel(); ++i) {
    po[i] = px[i] > 0.0f ? px[i] : 0.0f;
  }
}

int64_t ReLU::Record(PlanBuilder& builder, int64_t in) {
  PlanOp op;
  op.kind = PlanOpKind::kRelu;
  op.in0 = in;
  op.out = builder.AddSlot(builder.slot_shape(in));
  int64_t out = op.out;
  builder.AddOp(std::move(op));
  return out;
}

Tensor ReLU::ForwardImpl(const Tensor& input, Workspace* ws) {
  Tensor out = NewTensor(ws, input.shape());
  // The mask only lives until Backward, well before the next Reset, so
  // it can ride the arena too.
  cached_mask_ = NewTensor(ws, input.shape());
  const float* px = input.data();
  float* po = out.data();
  float* pm = cached_mask_.data();
  for (int64_t i = 0; i < input.numel(); ++i) {
    bool positive = px[i] > 0.0f;
    po[i] = positive ? px[i] : 0.0f;
    pm[i] = positive ? 1.0f : 0.0f;
  }
  return out;
}

Tensor ReLU::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  DHGCN_CHECK(ShapesEqual(grad_output.shape(), cached_mask_.shape()));
  Tensor grad_input = NewTensor(ws, grad_output.shape());
  const float* pg = grad_output.data();
  const float* pm = cached_mask_.data();
  float* po = grad_input.data();
  for (int64_t i = 0; i < grad_output.numel(); ++i) po[i] = pg[i] * pm[i];
  return grad_input;
}

Tensor ReLU::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void ReLU::ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void ReLU::BackwardInto(const Tensor& grad_output, Workspace& ws,
                        Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

}  // namespace dhgcn
