#include "nn/relu.h"

#include "base/check.h"

namespace dhgcn {

Tensor ReLU::Forward(const Tensor& input) {
  Tensor out(input.shape());
  cached_mask_ = Tensor(input.shape());
  const float* px = input.data();
  float* po = out.data();
  float* pm = cached_mask_.data();
  for (int64_t i = 0; i < input.numel(); ++i) {
    bool positive = px[i] > 0.0f;
    po[i] = positive ? px[i] : 0.0f;
    pm[i] = positive ? 1.0f : 0.0f;
  }
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  DHGCN_CHECK(ShapesEqual(grad_output.shape(), cached_mask_.shape()));
  Tensor grad_input(grad_output.shape());
  const float* pg = grad_output.data();
  const float* pm = cached_mask_.data();
  float* po = grad_input.data();
  for (int64_t i = 0; i < grad_output.numel(); ++i) po[i] = pg[i] * pm[i];
  return grad_input;
}

}  // namespace dhgcn
