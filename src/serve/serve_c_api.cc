#include "serve/serve_c_api.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string>

#include "base/thread_annotations.h"
#include "serve/server.h"

using dhgcn::DhgcnConfig;
using dhgcn::InferenceServer;
using dhgcn::Mutex;
using dhgcn::MutexLock;
using dhgcn::ServeResponse;
using dhgcn::ServerOptions;
using dhgcn::SkeletonLayoutType;
using dhgcn::Status;
using dhgcn::SubmitOptions;
using dhgcn::Tensor;

/// The opaque handle: the server plus a guarded last-error slot. The
/// slot is a fixed in-handle buffer, not a std::string: the ABI hands
/// out a pointer into it from dhgcn_serve_last_error, and a string's
/// c_str() would dangle the moment a concurrent SetLastError reassigned
/// it. Fixed storage keeps the returned pointer valid for the handle's
/// whole lifetime (a racing writer can at worst be observed mid-message,
/// never as a use-after-free).
struct dhgcn_serve_server {
  static constexpr size_t kErrBufLen = 256;
  std::unique_ptr<InferenceServer> server;
  mutable Mutex err_mu;
  char last_error[kErrBufLen] DHGCN_GUARDED_BY(err_mu) = "";
};

namespace {

int StatusToCode(const Status& status) {
  if (status.ok()) return DHGCN_SERVE_OK;
  if (status.IsInvalidArgument()) return DHGCN_SERVE_INVALID_ARGUMENT;
  if (status.IsDeadlineExceeded()) return DHGCN_SERVE_DEADLINE_EXCEEDED;
  if (status.IsOverloaded()) return DHGCN_SERVE_OVERLOADED;
  if (status.IsFailedPrecondition()) return DHGCN_SERVE_UNAVAILABLE;
  return DHGCN_SERVE_INTERNAL;
}

void SetLastError(dhgcn_serve_server* server, const std::string& message) {
  MutexLock lock(&server->err_mu);
  size_t n =
      std::min(message.size(), dhgcn_serve_server::kErrBufLen - 1);
  std::memcpy(server->last_error, message.data(), n);
  server->last_error[n] = '\0';
}

void FillErrBuf(char* err_buf, int64_t err_buf_len,
                const std::string& message) {
  if (err_buf == nullptr || err_buf_len <= 0) return;
  size_t n = std::min(message.size(),
                      static_cast<size_t>(err_buf_len - 1));
  std::memcpy(err_buf, message.data(), n);
  err_buf[n] = '\0';
}

}  // namespace

extern "C" {

dhgcn_serve_server* dhgcn_serve_open(const char* checkpoint_path,
                                     const char* config_name,
                                     const char* layout,
                                     int64_t num_classes, int64_t frames,
                                     int64_t workers,
                                     int64_t queue_capacity,
                                     int64_t max_batch, char* err_buf,
                                     int64_t err_buf_len) {
  std::string config_str = config_name != nullptr ? config_name : "tiny";
  std::string layout_str = layout != nullptr ? layout : "ntu";

  SkeletonLayoutType layout_type;
  if (layout_str == "ntu") {
    layout_type = SkeletonLayoutType::kNtu25;
  } else if (layout_str == "kinetics") {
    layout_type = SkeletonLayoutType::kKinetics18;
  } else {
    FillErrBuf(err_buf, err_buf_len,
               "unknown layout \"" + layout_str +
                   "\" (want ntu | kinetics)");
    return nullptr;
  }

  DhgcnConfig config;
  if (config_str == "tiny") {
    config = DhgcnConfig::Tiny(layout_type, num_classes);
  } else if (config_str == "small") {
    config = DhgcnConfig::Small(layout_type, num_classes);
  } else if (config_str == "paper") {
    config = DhgcnConfig::Paper(layout_type, num_classes);
  } else {
    FillErrBuf(err_buf, err_buf_len,
               "unknown config \"" + config_str +
                   "\" (want tiny | small | paper)");
    return nullptr;
  }

  ServerOptions options;
  if (workers > 0) options.worker_count = workers;
  if (queue_capacity > 0) options.batcher.queue_capacity = queue_capacity;
  if (max_batch > 0) options.batcher.max_batch_size = max_batch;

  std::string path =
      checkpoint_path != nullptr ? checkpoint_path : "";
  auto created = InferenceServer::Create(path, config, frames, options);
  if (!created.ok()) {
    FillErrBuf(err_buf, err_buf_len, created.status().ToString());
    return nullptr;
  }
  // lint: allow-naked-new — C ABI boundary; ownership passes to the
  // caller, reclaimed by dhgcn_serve_close.
  dhgcn_serve_server* handle = new dhgcn_serve_server();
  handle->server = created.MoveValue();
  return handle;
}

int64_t dhgcn_serve_clip_len(const dhgcn_serve_server* server) {
  if (server == nullptr) return 0;
  return server->server->model().clip_numel();
}

int64_t dhgcn_serve_num_classes(const dhgcn_serve_server* server) {
  if (server == nullptr) return 0;
  return server->server->model().num_classes();
}

int dhgcn_serve_infer(dhgcn_serve_server* server, const float* clip,
                      int64_t clip_len, int64_t deadline_ms,
                      float* logits_out, int64_t logits_len) {
  if (server == nullptr) return DHGCN_SERVE_INVALID_ARGUMENT;
  const dhgcn::FrozenModel& model = server->server->model();
  if (clip == nullptr || clip_len != model.clip_numel()) {
    SetLastError(server, "clip_len does not match the served model");
    return DHGCN_SERVE_INVALID_ARGUMENT;
  }
  if (logits_out == nullptr || logits_len < model.num_classes()) {
    SetLastError(server, "logits buffer too small");
    return DHGCN_SERVE_INVALID_ARGUMENT;
  }
  Tensor input({model.config().in_channels, model.frames(),
                model.num_joints()});
  std::memcpy(input.data(), clip,
              static_cast<size_t>(clip_len) * sizeof(float));
  SubmitOptions options;
  options.deadline_ns = deadline_ms > 0 ? deadline_ms * 1'000'000 : 0;
  ServeResponse response = server->server->Infer(input, options);
  if (!response.status.ok()) {
    SetLastError(server, response.status.ToString());
    return StatusToCode(response.status);
  }
  std::memcpy(logits_out, response.logits.data(),
              static_cast<size_t>(model.num_classes()) * sizeof(float));
  return DHGCN_SERVE_OK;
}

int dhgcn_serve_health_state(const dhgcn_serve_server* server) {
  if (server == nullptr) return DHGCN_SERVE_HEALTH_UNHEALTHY;
  return static_cast<int>(server->server->Health().state);
}

const char* dhgcn_serve_last_error(const dhgcn_serve_server* server) {
  if (server == nullptr) return "null server handle";
  // The lock orders this read against in-flight SetLastError writes;
  // the returned pointer stays valid after release because the buffer
  // is in-handle fixed storage (see the handle comment).
  MutexLock lock(&server->err_mu);
  return server->last_error;
}

void dhgcn_serve_close(dhgcn_serve_server* server) {
  if (server == nullptr) return;
  server->server->Shutdown();
  delete server;
}

}  // extern "C"
