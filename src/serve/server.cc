#include "serve/server.h"

// lint: allow-thread-file — see server.h: the serving core is where
// inter-request concurrency lives; compute still routes through
// base/thread_pool.h under the compute lease.
// lint: allow-wallclock-file — condition-wait timeouts and the
// fault-injected worker stall are wall-clock by nature (serving-path
// only; nothing here feeds training state or checkpoints).

#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

#include "base/check.h"
#include "base/fault_injection.h"
#include "base/string_util.h"
#include "data/validation.h"

namespace dhgcn {

namespace {

/// Stack-resident completion latch for the blocking Infer wrapper.
struct SyncWaiter {
  Mutex mu;
  CondVar cv;
  bool done DHGCN_GUARDED_BY(mu) = false;
  ServeResponse response DHGCN_GUARDED_BY(mu);
};

void SyncWaiterDone(void* ctx, const ServeResponse& response) {
  SyncWaiter* waiter = static_cast<SyncWaiter*>(ctx);
  // Notify while still holding the mutex: the waiter destroys this
  // stack-resident latch as soon as it observes done, and it can only
  // observe done after we release the lock — which is only after
  // NotifyAll has returned. Notifying outside the lock races the
  // condvar's destruction (caught by TSan).
  MutexLock lock(&waiter->mu);
  waiter->response = response;
  waiter->done = true;
  waiter->cv.NotifyAll();
}

}  // namespace

std::string ServeHealthName(ServeHealth health) {
  switch (health) {
    case ServeHealth::kStarting:
      return "starting";
    case ServeHealth::kReady:
      return "ready";
    case ServeHealth::kDegraded:
      return "degraded";
    case ServeHealth::kUnhealthy:
      return "unhealthy";
    case ServeHealth::kShuttingDown:
      return "shutting-down";
  }
  return "?";
}

Status ServerOptions::Validate() const {
  if (worker_count < 1) {
    return Status::InvalidArgument(
        StrCat("worker_count must be >= 1, got ", worker_count));
  }
  if (default_deadline_ns < 1 || stall_threshold_ns < 1 ||
      idle_tick_ns < 1) {
    return Status::InvalidArgument("server durations must be >= 1 ns");
  }
  return batcher.Validate();
}

InferenceServer::InferenceServer(
    std::vector<std::unique_ptr<FrozenModel>> models,
    const ServerOptions& options, ServeClock* clock)
    : models_(std::move(models)),
      options_(options),
      clock_(clock),
      batcher_(options.batcher) {
  // Value-initialized (`[]()`) so every heartbeat slot starts at 0/idle.
  worker_busy_since_ = std::make_unique<std::atomic<int64_t>[]>(
      static_cast<size_t>(options_.worker_count));
  for (int64_t w = 0; w < options_.worker_count; ++w) {
    workspaces_.push_back(std::make_unique<Workspace>());
  }
}

Result<std::unique_ptr<InferenceServer>> InferenceServer::Create(
    const std::string& checkpoint_path, const DhgcnConfig& config,
    int64_t frames, const ServerOptions& options, ServeClock* clock) {
  DHGCN_RETURN_IF_ERROR(options.Validate());
  std::vector<std::unique_ptr<FrozenModel>> models;
  for (int64_t w = 0; w < options.worker_count; ++w) {
    // One replica per worker: layer forwards cache member state, so a
    // shared instance would race.
    DHGCN_ASSIGN_OR_RETURN(
        std::unique_ptr<FrozenModel> model,
        FrozenModel::Load(checkpoint_path, config, frames,
                          options.plan_mode, options.precision));
    models.push_back(std::move(model));
  }
  std::unique_ptr<InferenceServer> server(
      // lint: allow-naked-new — private ctor is unreachable by
      // make_unique; the pointer lands in unique_ptr immediately.
      new InferenceServer(std::move(models), options,
                          clock != nullptr ? clock : ServeClock::Real()));
  {
    MutexLock lock(&server->mu_);
    server->started_ = true;
  }
  for (int64_t w = 0; w < options.worker_count; ++w) {
    server->workers_.emplace_back(
        [raw = server.get(), w] { raw->WorkerLoop(w); });
  }
  return server;
}

InferenceServer::~InferenceServer() { Shutdown(); }

Status InferenceServer::Submit(const Tensor& clip,
                               const SubmitOptions& options,
                               ServeCompletionFn done_fn, void* done_ctx) {
  DHGCN_CHECK(done_fn != nullptr);
  DHGCN_RETURN_IF_ERROR(models_[0]->ValidateClipShape(clip));
  int64_t relative_deadline = options.deadline_ns > 0
                                  ? options.deadline_ns
                                  : options_.default_deadline_ns;
  PendingRequest request;
  request.clip = clip.Clone();
  if (FaultInjection::Get().ShouldFire(FaultSite::kServePoisonInput)) {
    request.clip.flat(0) = std::numeric_limits<float>::quiet_NaN();
  }
  request.done_fn = done_fn;
  request.done_ctx = done_ctx;
  {
    MutexLock lock(&mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("server is shutting down");
    }
    int64_t now = clock_->NowNanos();
    request.id = next_request_id_++;
    request.submit_ns = now;
    request.deadline_ns = now + relative_deadline;
    ++stats_.submitted;
    Status admitted = batcher_.Admit(&request, now);
    if (!admitted.ok()) {
      if (admitted.IsOverloaded()) {
        ++stats_.shed_overloaded;
      } else if (admitted.IsDeadlineExceeded()) {
        ++stats_.expired;
      }
      return admitted;
    }
    ++stats_.admitted;
    if (batcher_.size() > stats_.max_queue_depth) {
      stats_.max_queue_depth = batcher_.size();
    }
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

ServeResponse InferenceServer::Infer(const Tensor& clip,
                                     const SubmitOptions& options) {
  SyncWaiter waiter;
  Status submitted = Submit(clip, options, &SyncWaiterDone, &waiter);
  if (!submitted.ok()) {
    ServeResponse response;
    response.status = submitted;
    return response;
  }
  MutexLock lock(&waiter.mu);
  while (!waiter.done) {
    // Bounded waits only; the server's exactly-once completion
    // guarantee (including through Shutdown) bounds the loop itself.
    waiter.cv.WaitForNanos(&waiter.mu, 50'000'000);
  }
  return waiter.response;
}

void InferenceServer::Complete(PendingRequest* request, Status status,
                               Tensor logits, int64_t taken_ns,
                               int64_t batch_size) {
  ServeResponse response;
  int64_t now = clock_->NowNanos();
  response.request_id = request->id;
  response.queue_ns = taken_ns > 0 ? taken_ns - request->submit_ns
                                   : now - request->submit_ns;
  response.total_ns = now - request->submit_ns;
  response.batch_size = batch_size;
  response.logits = std::move(logits);
  {
    MutexLock lock(&mu_);
    if (status.ok()) {
      ++stats_.completed_ok;
    } else if (status.IsDeadlineExceeded()) {
      ++stats_.expired;
    } else if (status.IsInvalidArgument()) {
      ++stats_.invalid_input;
    }
  }
  response.status = std::move(status);
  request->done_fn(request->done_ctx, response);
}

void InferenceServer::WorkerLoop(int64_t worker_index) {
  std::vector<PendingRequest> expired;
  std::vector<PendingRequest> batch;
  expired.reserve(static_cast<size_t>(options_.batcher.queue_capacity));
  batch.reserve(static_cast<size_t>(options_.batcher.max_batch_size));
  for (;;) {
    expired.clear();
    batch.clear();
    bool forced_miss = false;
    {
      MutexLock lock(&mu_);
      for (;;) {
        int64_t now = clock_->NowNanos();
        batcher_.MaybeRecover(now);
        batcher_.TakeExpired(now, &expired);
        if (!expired.empty()) break;
        if (batcher_.BatchReady(now) ||
            (shutting_down_ && !batcher_.empty())) {
          forced_miss = FaultInjection::Get().ShouldFire(
              FaultSite::kServeDeadlineMiss);
          batcher_.TakeBatch(&batch);
          break;
        }
        if (shutting_down_ && batcher_.empty()) return;
        int64_t wait_ns =
            batcher_.NanosUntilNextEvent(now, options_.idle_tick_ns);
        if (wait_ns < 100'000) wait_ns = 100'000;
        work_cv_.WaitForNanos(&mu_, wait_ns);
      }
    }
    for (PendingRequest& request : expired) {
      Complete(&request,
               Status::DeadlineExceeded(
                   "deadline expired while queued (no compute spent)"),
               Tensor(), /*taken_ns=*/0, /*batch_size=*/0);
    }
    if (batch.empty()) continue;
    if (forced_miss) {
      for (PendingRequest& request : batch) {
        Complete(&request,
                 Status::DeadlineExceeded(
                     "fault injection: micro-batch deadline miss"),
                 Tensor(), /*taken_ns=*/0, /*batch_size=*/0);
      }
      continue;
    }
    ExecuteBatch(worker_index, &batch);
  }
}

void InferenceServer::ExecuteBatch(int64_t worker_index,
                                   std::vector<PendingRequest>* batch) {
  FrozenModel& model = *models_[static_cast<size_t>(worker_index)];
  Workspace& ws = *workspaces_[static_cast<size_t>(worker_index)];
  std::atomic<int64_t>& busy =
      worker_busy_since_[static_cast<size_t>(worker_index)];
  int64_t taken_ns = clock_->NowNanos();
  busy.store(taken_ns, std::memory_order_release);

  FaultInjection& faults = FaultInjection::Get();
  if (faults.ShouldFire(FaultSite::kServeWorkerStall)) {
    int64_t stall_ms = faults.payload(FaultSite::kServeWorkerStall);
    if (stall_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    }
  }

  // Per-request quarantine: a poisoned clip fails alone, its batchmates
  // still run. Then re-check deadlines so a stall (or a long validation)
  // never leads to compute on requests that can no longer be answered.
  std::vector<PendingRequest> runnable;
  runnable.reserve(batch->size());
  int64_t batch_size = static_cast<int64_t>(batch->size());
  for (PendingRequest& request : *batch) {
    if (!TensorHasFiniteValues(request.clip)) {
      Complete(&request,
               Status::InvalidArgument(
                   "clip rejected by ingest quarantine (non-finite "
                   "values)"),
               Tensor(), taken_ns, batch_size);
      continue;
    }
    if (request.deadline_ns <= clock_->NowNanos()) {
      Complete(&request,
               Status::DeadlineExceeded(
                   "deadline expired before compute started"),
               Tensor(), taken_ns, batch_size);
      continue;
    }
    runnable.push_back(std::move(request));
  }
  if (runnable.empty()) {
    busy.store(0, std::memory_order_release);
    return;
  }

  int64_t b = static_cast<int64_t>(runnable.size());
  int64_t clip_numel = model.clip_numel();
  ws.Reset();
  Tensor stacked = ws.Acquire({b, model.config().in_channels,
                               model.frames(), model.num_joints()});
  float* dst = stacked.data();
  for (int64_t i = 0; i < b; ++i) {
    std::memcpy(dst + i * clip_numel,
                runnable[static_cast<size_t>(i)].clip.data(),
                static_cast<size_t>(clip_numel) * sizeof(float));
  }

  Tensor logits;
  {
    // Compute lease: the intra-op pool admits one concurrent entrant,
    // and the kernel scratch arenas (detail::KernelOpScratch /
    // GemmPackScratch) are process-global — two workers forwarding
    // concurrently would race on them at any thread count. Workers
    // still overlap validation, stacking, and completion; only the
    // forward itself is serialized.
    MutexLock lease(&compute_mu_);
    logits = model.Forward(stacked, ws);
  }
  DHGCN_CHECK_EQ(logits.dim(0), b);
  int64_t classes = logits.dim(1);

  int64_t done_ns = clock_->NowNanos();
  const float* src = logits.data();
  for (int64_t i = 0; i < b; ++i) {
    PendingRequest& request = runnable[static_cast<size_t>(i)];
    if (request.deadline_ns <= done_ns) {
      Complete(&request,
               Status::DeadlineExceeded("inference finished after the "
                                        "request deadline"),
               Tensor(), taken_ns, b);
      continue;
    }
    Tensor row({classes});
    std::memcpy(row.data(), src + i * classes,
                static_cast<size_t>(classes) * sizeof(float));
    Complete(&request, Status::OK(), std::move(row), taken_ns, b);
  }

  {
    MutexLock lock(&mu_);
    ++stats_.batches;
    stats_.batched_requests += b;
  }
  busy.store(0, std::memory_order_release);
}

HealthReport InferenceServer::Health() const {
  HealthReport report;
  int64_t now = clock_->NowNanos();
  int64_t stalled = 0;
  for (int64_t w = 0; w < options_.worker_count; ++w) {
    int64_t since = worker_busy_since_[static_cast<size_t>(w)].load(
        std::memory_order_acquire);
    if (since > 0 && now - since > options_.stall_threshold_ns) ++stalled;
  }
  MutexLock lock(&mu_);
  report.stalled_workers = stalled;
  report.queue_depth = batcher_.size();
  report.degrade_level = batcher_.degrade_level();
  report.target_batch_size = batcher_.target_batch_size();
  if (!started_) {
    report.state = ServeHealth::kStarting;
  } else if (shutting_down_) {
    report.state = ServeHealth::kShuttingDown;
  } else if (stalled >= options_.worker_count) {
    report.state = ServeHealth::kUnhealthy;
  } else if (stalled > 0 || batcher_.degrade_level() > 0) {
    report.state = ServeHealth::kDegraded;
  } else {
    report.state = ServeHealth::kReady;
  }
  return report;
}

ServeStats InferenceServer::Stats() const {
  MutexLock lock(&mu_);
  ServeStats stats = stats_;
  stats.degrade_events = batcher_.degrade_events();
  stats.recover_events = batcher_.recover_events();
  return stats;
}

void InferenceServer::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace dhgcn
