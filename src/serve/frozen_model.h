#ifndef DHGCN_SERVE_FROZEN_MODEL_H_
#define DHGCN_SERVE_FROZEN_MODEL_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "base/result.h"
#include "core/dhgcn_model.h"
#include "plan/plan.h"
#include "plan/plan_runner.h"
#include "quant/calibration.h"
#include "quant/precision.h"
#include "tensor/workspace.h"

namespace dhgcn {

/// \brief An eval-mode DhgcnModel instance frozen for serving.
///
/// Loading goes through the checkpoint-v2 reader, so truncated or
/// bit-flipped weight files are rejected with a descriptive `Status`
/// (CRC / framing validation) instead of crashing or serving garbage.
///
/// A FrozenModel is **not** re-entrant — layer forward passes cache
/// activations in member state — so the server gives each worker thread
/// its own replica loaded from the same checkpoint.
class FrozenModel {
 public:
  /// Builds the model from `config` and, when `checkpoint_path` is
  /// non-empty, loads v2 weights into it (CRC-validated; corrupt files
  /// produce an error, never a crash). An empty path serves the freshly
  /// initialized weights — useful for load benchmarks.
  /// `frames` fixes the temporal length every request must carry, so
  /// micro-batches stack into one (B, C, T, V) tensor.
  /// `plan` selects the inference path: kOff runs layer-by-layer;
  /// kUnfused / kFused compile an execution plan per micro-batch size
  /// (lazily, cached for the model's lifetime) and replay it with zero
  /// steady-state allocations. If capture ever fails the model falls
  /// back to the layer path permanently (one warning, no error).
  /// `precision` = kInt8 compiles post-training-quantized plans
  /// instead: activation scales come from a deterministic synthetic
  /// calibration batch run at load time (fixed-seed normal clips, the
  /// load-generator distribution — a checkpoint carries no calibration
  /// data). Calibration failure logs one warning and serves fp32 at
  /// the requested plan mode.
  static Result<std::unique_ptr<FrozenModel>> Load(
      const std::string& checkpoint_path, const DhgcnConfig& config,
      int64_t frames, PlanMode plan = PlanMode::kOff,
      Precision precision = Precision::kFp32);

  /// Checks shape only (cheap, on the submit path): (C, T, V) with the
  /// configured channel count, frame count and joint count.
  [[nodiscard]] Status ValidateClipShape(const Tensor& clip) const;

  /// Runs eval-mode inference on a stacked (B, C, T, V) batch, staging
  /// activations in `ws`. Returns (B, num_classes) logits **borrowed
  /// from `ws`** — copy rows out before the next Reset().
  Tensor Forward(const Tensor& batch, Workspace& ws);

  const DhgcnConfig& config() const { return config_; }
  PlanMode plan_mode() const { return plan_mode_; }
  /// The precision actually being served (kFp32 after an int8
  /// calibration failure downgraded the model).
  Precision precision() const { return precision_; }
  /// Compiled plan runners currently cached (one per batch size seen).
  int64_t compiled_plan_count() const {
    return static_cast<int64_t>(runners_.size());
  }
  int64_t frames() const { return frames_; }
  int64_t num_joints() const { return num_joints_; }
  int64_t num_classes() const { return config_.num_classes; }
  /// Elements of one clip: in_channels * frames * num_joints.
  int64_t clip_numel() const {
    return config_.in_channels * frames_ * num_joints_;
  }

 private:
  FrozenModel(std::unique_ptr<DhgcnModel> model, const DhgcnConfig& config,
              int64_t frames, int64_t num_joints, PlanMode plan,
              Precision precision, QuantCalibration calib);

  /// Returns the cached runner for this batch size, compiling one on
  /// first sight; null when plans are off or capture has failed.
  PlanRunner* RunnerForBatch(int64_t batch_size, const Shape& input_shape);

  std::unique_ptr<DhgcnModel> model_;
  DhgcnConfig config_;
  int64_t frames_;
  int64_t num_joints_;
  PlanMode plan_mode_;
  Precision precision_;
  /// Load-time activation statistics (int8 only; empty for fp32).
  QuantCalibration calib_;
  /// Permanent layer-path fallback after a failed capture.
  bool plan_failed_ = false;
  /// Batch size -> compiled runner (worker-local, like the model).
  std::unordered_map<int64_t, std::unique_ptr<PlanRunner>> runners_;
};

}  // namespace dhgcn

#endif  // DHGCN_SERVE_FROZEN_MODEL_H_
