#ifndef DHGCN_SERVE_SERVE_C_API_H_
#define DHGCN_SERVE_SERVE_C_API_H_

/// \file Stable flat-C ABI for the dhgcn inference server, so non-C++
/// hosts (Python ctypes, Go cgo, a sidecar process) can embed serving
/// without seeing any C++ type. All functions are thread-safe once the
/// handle is open; every call returns immediately except
/// `dhgcn_serve_infer`, which blocks until its request completes or is
/// rejected. No exceptions cross this boundary.

#include <stdint.h>  // NOLINT(modernize-deprecated-headers): C ABI

#ifdef __cplusplus
extern "C" {
#endif

/// Opaque server handle.
typedef struct dhgcn_serve_server dhgcn_serve_server;

/// Status codes mirrored from the C++ Status taxonomy.
enum dhgcn_serve_status {
  DHGCN_SERVE_OK = 0,
  DHGCN_SERVE_INVALID_ARGUMENT = 1,  /* bad args or quarantined input */
  DHGCN_SERVE_DEADLINE_EXCEEDED = 2, /* expired before or after compute */
  DHGCN_SERVE_OVERLOADED = 3,        /* shed by admission control */
  DHGCN_SERVE_UNAVAILABLE = 4,       /* server shutting down */
  DHGCN_SERVE_INTERNAL = 5,          /* anything else; see last_error */
};

/// Health states mirrored from ServeHealth.
enum dhgcn_serve_health {
  DHGCN_SERVE_HEALTH_STARTING = 0,
  DHGCN_SERVE_HEALTH_READY = 1,
  DHGCN_SERVE_HEALTH_DEGRADED = 2,
  DHGCN_SERVE_HEALTH_UNHEALTHY = 3,
  DHGCN_SERVE_HEALTH_SHUTTING_DOWN = 4,
};

/// Opens a server. `checkpoint_path` may be NULL or "" to serve fresh
/// weights. `config_name` is "tiny" | "small" | "paper"; `layout` is
/// "ntu" | "kinetics". `workers`, `queue_capacity` and `max_batch`
/// accept 0 for the built-in defaults. On failure returns NULL and, when
/// `err_buf` is non-NULL, writes a NUL-terminated reason into it
/// (truncated to `err_buf_len`).
dhgcn_serve_server* dhgcn_serve_open(const char* checkpoint_path,
                                     const char* config_name,
                                     const char* layout,
                                     int64_t num_classes, int64_t frames,
                                     int64_t workers,
                                     int64_t queue_capacity,
                                     int64_t max_batch, char* err_buf,
                                     int64_t err_buf_len);

/// Elements of one input clip (channels * frames * joints).
int64_t dhgcn_serve_clip_len(const dhgcn_serve_server* server);

/// Number of output classes (= required `logits_len`).
int64_t dhgcn_serve_num_classes(const dhgcn_serve_server* server);

/// Blocking single-clip inference. `clip` holds `clip_len` floats in
/// (C, T, V) order; `logits_out` receives `num_classes` floats on
/// DHGCN_SERVE_OK. `deadline_ms <= 0` uses the server default. Rejections
/// (overload, deadline, quarantine) come back as their status code with
/// `logits_out` untouched.
int dhgcn_serve_infer(dhgcn_serve_server* server, const float* clip,
                      int64_t clip_len, int64_t deadline_ms,
                      float* logits_out, int64_t logits_len);

/// Current health state (dhgcn_serve_health).
int dhgcn_serve_health_state(const dhgcn_serve_server* server);

/// Human-readable detail for the most recent non-OK call on this handle.
/// Valid until the next call on the handle from any thread; never NULL.
const char* dhgcn_serve_last_error(const dhgcn_serve_server* server);

/// Drains, stops the workers and frees the handle. NULL is a no-op.
void dhgcn_serve_close(dhgcn_serve_server* server);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  // DHGCN_SERVE_SERVE_C_API_H_
