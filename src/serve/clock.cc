#include "serve/clock.h"

namespace dhgcn {

ServeClock* ServeClock::Real() {
  // lint: allow-naked-new — leaky singleton, lives for the process lifetime.
  static RealServeClock* clock = new RealServeClock();
  return clock;
}

}  // namespace dhgcn
