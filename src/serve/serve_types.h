#ifndef DHGCN_SERVE_SERVE_TYPES_H_
#define DHGCN_SERVE_SERVE_TYPES_H_

#include <cstdint>
#include <string>

#include "base/status.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Outcome of one serving request, delivered exactly once per
/// admitted request (rejected requests get a synchronous Status instead).
struct ServeResponse {
  Status status;
  int64_t request_id = 0;
  /// (num_classes,) logits; empty unless `status.ok()`. Owning storage —
  /// valid after the worker's arena has been recycled.
  Tensor logits;
  /// Nanoseconds spent queued before the micro-batch was taken.
  int64_t queue_ns = 0;
  /// Submit-to-completion nanoseconds.
  int64_t total_ns = 0;
  /// Size of the micro-batch this request was executed in (0 when it
  /// never reached execution).
  int64_t batch_size = 0;
};

/// Completion callback invoked by a server worker thread. Must not
/// throw, must not block for long (it runs on the serving hot path), and
/// must not call back into the server.
using ServeCompletionFn = void (*)(void* ctx, const ServeResponse& response);

/// \brief Per-request submission options.
struct SubmitOptions {
  /// Relative deadline for this request; 0 picks the server default.
  /// Requests still queued when the deadline passes are expired with
  /// kDeadlineExceeded *before* any compute is spent on them.
  int64_t deadline_ns = 0;
};

/// \brief Readiness ladder exposed by InferenceServer::Health().
enum class ServeHealth : int {
  kStarting = 0,     ///< workers not yet running
  kReady = 1,        ///< serving at full batch size
  kDegraded = 2,     ///< shedding triggered the degradation ladder, or a
                     ///< worker is stalled: still serving, reduced quality
  kUnhealthy = 3,    ///< every worker is stalled; requests only expire
  kShuttingDown = 4, ///< draining; new submissions are rejected
};

std::string ServeHealthName(ServeHealth health);

/// \brief Point-in-time health snapshot.
struct HealthReport {
  ServeHealth state = ServeHealth::kStarting;
  int64_t degrade_level = 0;   ///< 0 = full batch size
  int64_t target_batch_size = 0;
  int64_t stalled_workers = 0;
  int64_t queue_depth = 0;
};

/// \brief Monotonic serving counters (snapshot under the server lock).
struct ServeStats {
  int64_t submitted = 0;        ///< Submit() calls that passed validation
  int64_t admitted = 0;         ///< entered the queue
  int64_t completed_ok = 0;     ///< OK responses delivered
  int64_t shed_overloaded = 0;  ///< rejected with kOverloaded
  int64_t expired = 0;          ///< kDeadlineExceeded (queued or late)
  int64_t invalid_input = 0;    ///< kInvalidArgument at validation
  int64_t batches = 0;          ///< micro-batches executed
  int64_t batched_requests = 0; ///< requests summed over those batches
  int64_t degrade_events = 0;   ///< ladder steps down (smaller batches)
  int64_t recover_events = 0;   ///< ladder steps back up
  int64_t max_queue_depth = 0;
};

}  // namespace dhgcn

#endif  // DHGCN_SERVE_SERVE_TYPES_H_
