#include "serve/micro_batcher.h"

#include <algorithm>

#include "base/check.h"
#include "base/fault_injection.h"
#include "base/string_util.h"

namespace dhgcn {

Status MicroBatcherOptions::Validate() const {
  if (queue_capacity < 1) {
    return Status::InvalidArgument(
        StrCat("queue_capacity must be >= 1, got ", queue_capacity));
  }
  if (max_batch_size < 1 || max_batch_size > queue_capacity) {
    return Status::InvalidArgument(
        StrCat("max_batch_size must be in [1, queue_capacity], got ",
               max_batch_size));
  }
  if (batch_delay_ns < 0 || flush_margin_ns < 0 ||
      degrade_cooldown_ns < 0 || recover_quiet_ns < 0) {
    return Status::InvalidArgument("batcher durations must be >= 0");
  }
  return Status::OK();
}

MicroBatcher::MicroBatcher(const MicroBatcherOptions& options)
    : options_(options) {
  options_.Validate().AbortIfNotOk();
  pending_.reserve(static_cast<size_t>(options_.queue_capacity));
  while ((options_.max_batch_size >> (max_degrade_level_ + 1)) >= 1) {
    ++max_degrade_level_;
  }
}

int64_t MicroBatcher::target_batch_size() const {
  return std::max<int64_t>(1, options_.max_batch_size >> degrade_level_);
}

int64_t MicroBatcher::effective_delay_ns() const {
  return options_.batch_delay_ns >> degrade_level_;
}

int64_t MicroBatcher::FlushAtNs(const PendingRequest& request) const {
  return std::min(request.submit_ns + effective_delay_ns(),
                  request.deadline_ns - options_.flush_margin_ns);
}

Status MicroBatcher::Admit(PendingRequest* request, int64_t now_ns) {
  DHGCN_CHECK(request != nullptr && request->done_fn != nullptr);
  MaybeRecover(now_ns);
  if (request->deadline_ns <= now_ns) {
    return Status::DeadlineExceeded(
        "request deadline passed before admission");
  }
  bool forced_full =
      FaultInjection::Get().ShouldFire(FaultSite::kServeQueueFull);
  if (forced_full || count_ >= options_.queue_capacity) {
    NoteShed(now_ns);
    return Status::Overloaded(
        forced_full
            ? "fault injection: admission queue treated as full"
            : StrCat("admission queue full (", count_, " pending)"));
  }
  pending_.push_back(std::move(*request));
  ++count_;
  return Status::OK();
}

void MicroBatcher::TakeExpired(int64_t now_ns,
                               std::vector<PendingRequest>* expired) {
  if (count_ == 0) return;
  auto first_dead = std::stable_partition(
      pending_.begin(), pending_.end(),
      [now_ns](const PendingRequest& r) { return r.deadline_ns > now_ns; });
  for (auto it = first_dead; it != pending_.end(); ++it) {
    expired->push_back(std::move(*it));
  }
  pending_.erase(first_dead, pending_.end());
  count_ = static_cast<int64_t>(pending_.size());
}

bool MicroBatcher::BatchReady(int64_t now_ns) const {
  if (count_ == 0) return false;
  if (count_ >= target_batch_size()) return true;
  for (const PendingRequest& request : pending_) {
    if (now_ns >= FlushAtNs(request)) return true;
  }
  return false;
}

void MicroBatcher::TakeBatch(std::vector<PendingRequest>* batch) {
  int64_t take = std::min(count_, target_batch_size());
  for (int64_t i = 0; i < take; ++i) {
    batch->push_back(std::move(pending_[static_cast<size_t>(i)]));
  }
  pending_.erase(pending_.begin(), pending_.begin() + take);
  count_ = static_cast<int64_t>(pending_.size());
}

int64_t MicroBatcher::NanosUntilNextEvent(int64_t now_ns,
                                          int64_t horizon_ns) const {
  int64_t next = horizon_ns;
  for (const PendingRequest& request : pending_) {
    int64_t event = std::min(FlushAtNs(request), request.deadline_ns);
    next = std::min(next, event - now_ns);
  }
  return std::max<int64_t>(next, 0);
}

void MicroBatcher::NoteShed(int64_t now_ns) {
  ++shed_count_;
  last_shed_ns_ = now_ns;
  shed_seen_ = true;
  if (degrade_level_ < max_degrade_level_ &&
      (degrade_events_ == 0 ||
       now_ns - last_degrade_ns_ >= options_.degrade_cooldown_ns)) {
    ++degrade_level_;
    ++degrade_events_;
    last_degrade_ns_ = now_ns;
  }
}

void MicroBatcher::MaybeRecover(int64_t now_ns) {
  if (degrade_level_ == 0 || !shed_seen_) return;
  if (now_ns - last_shed_ns_ >= options_.recover_quiet_ns) {
    --degrade_level_;
    ++recover_events_;
    // Each further step up requires its own quiet period.
    last_shed_ns_ = now_ns;
  }
}

}  // namespace dhgcn
