#include "serve/load_generator.h"

// lint: allow-thread-file — the generator aggregates completions from
// server worker threads (mutex + bounded waits) and paces arrivals with
// sleeps; serving-side only, no compute parallelism.
// lint: allow-wallclock-file — open-loop pacing is wall-clock by
// definition.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "base/check.h"
#include "base/rng.h"
#include "base/thread_annotations.h"
#include "serve/clock.h"

namespace dhgcn {

namespace {

/// Shared sink for completions arriving from worker threads.
struct Collector {
  Mutex mu;
  CondVar cv;
  int64_t outstanding DHGCN_GUARDED_BY(mu) = 0;
  int64_t ok DHGCN_GUARDED_BY(mu) = 0;
  int64_t expired DHGCN_GUARDED_BY(mu) = 0;
  int64_t invalid DHGCN_GUARDED_BY(mu) = 0;
  int64_t other_errors DHGCN_GUARDED_BY(mu) = 0;
  int64_t batched_sum DHGCN_GUARDED_BY(mu) = 0;
  std::vector<double> ok_latency_ms DHGCN_GUARDED_BY(mu);
};

void CollectorDone(void* ctx, const ServeResponse& response) {
  Collector* collector = static_cast<Collector*>(ctx);
  MutexLock lock(&collector->mu);
  if (response.status.ok()) {
    ++collector->ok;
    collector->ok_latency_ms.push_back(
        static_cast<double>(response.total_ns) / 1e6);
    collector->batched_sum += response.batch_size;
  } else if (response.status.IsDeadlineExceeded()) {
    ++collector->expired;
  } else if (response.status.IsInvalidArgument()) {
    ++collector->invalid;
  } else {
    ++collector->other_errors;
  }
  --collector->outstanding;
  if (collector->outstanding == 0) collector->cv.NotifyAll();
}

double Percentile(std::vector<double>* values, double pct) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  double rank = pct / 100.0 * static_cast<double>(values->size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values->size() - 1);
  double frac = rank - static_cast<double>(lo);
  return (*values)[lo] * (1.0 - frac) + (*values)[hi] * frac;
}

}  // namespace

LoadGenReport RunLoad(InferenceServer& server,
                      const LoadGenOptions& options) {
  DHGCN_CHECK(options.qps > 0.0 && options.duration_ms > 0);
  const FrozenModel& model = server.model();
  Rng rng(options.seed);
  Tensor clip({model.config().in_channels, model.frames(),
               model.num_joints()});
  for (int64_t i = 0; i < clip.numel(); ++i) {
    clip.flat(i) = rng.Normal();
  }

  SubmitOptions submit;
  submit.deadline_ns = options.deadline_ms * 1'000'000;

  LoadGenReport report;
  Collector collector;
  ServeClock& clock = *ServeClock::Real();
  const int64_t gap_ns =
      static_cast<int64_t>(std::llround(1e9 / options.qps));
  const int64_t start_ns = clock.NowNanos();
  const int64_t end_ns = start_ns + options.duration_ms * 1'000'000;

  int64_t sent = 0;
  int64_t shed = 0;
  for (int64_t next_ns = start_ns; next_ns < end_ns;
       next_ns += gap_ns) {
    // Open loop: sleep to the grid point, never to "when the last
    // request finished".
    int64_t now = clock.NowNanos();
    if (next_ns > now) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(next_ns - now));
    }
    ++report.offered;
    ++sent;
    bool poison = options.poison_every_n > 0 &&
                  sent % options.poison_every_n == 0;
    if (poison) {
      clip.flat(0) = std::numeric_limits<float>::quiet_NaN();
    }
    {
      MutexLock lock(&collector.mu);
      ++collector.outstanding;
    }
    Status submitted = server.Submit(clip, submit, &CollectorDone,
                                     &collector);
    if (poison) clip.flat(0) = 0.0f;
    if (!submitted.ok()) {
      {
        MutexLock lock(&collector.mu);
        --collector.outstanding;
      }
      if (submitted.IsOverloaded()) {
        ++shed;
      } else if (submitted.IsDeadlineExceeded()) {
        ++report.expired;
      } else if (submitted.IsInvalidArgument()) {
        ++report.invalid;
      } else {
        ++report.other_errors;
      }
    }
  }

  {
    MutexLock lock(&collector.mu);
    while (collector.outstanding > 0) {
      // Bounded wait (serve-wait rule); admitted requests always
      // complete, so this drains.
      collector.cv.WaitForNanos(&collector.mu, 50'000'000);
    }
    report.accepted = report.offered - shed - report.expired -
                      report.invalid - report.other_errors;
    report.ok = collector.ok;
    report.shed = shed;
    report.expired += collector.expired;
    report.invalid += collector.invalid;
    report.other_errors += collector.other_errors;
    report.wall_seconds =
        static_cast<double>(clock.NowNanos() - start_ns) / 1e9;
    if (report.wall_seconds > 0.0) {
      report.throughput_qps =
          static_cast<double>(report.ok) / report.wall_seconds;
    }
    report.p50_ms = Percentile(&collector.ok_latency_ms, 50.0);
    report.p99_ms = Percentile(&collector.ok_latency_ms, 99.0);
    if (!collector.ok_latency_ms.empty()) {
      report.max_ms = collector.ok_latency_ms.back();
      report.mean_batch = static_cast<double>(collector.batched_sum) /
                          static_cast<double>(collector.ok);
    }
  }
  return report;
}

std::string LoadGenReportJson(const std::string& label,
                              const LoadGenReport& report,
                              const ServeStats& stats,
                              const HealthReport& health) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "    {\n"
     << "      \"phase\": \"" << label << "\",\n"
     << "      \"offered\": " << report.offered << ",\n"
     << "      \"accepted\": " << report.accepted << ",\n"
     << "      \"ok\": " << report.ok << ",\n"
     << "      \"shed_overloaded\": " << report.shed << ",\n"
     << "      \"deadline_expired\": " << report.expired << ",\n"
     << "      \"invalid_input\": " << report.invalid << ",\n"
     << "      \"other_errors\": " << report.other_errors << ",\n"
     << "      \"wall_seconds\": " << report.wall_seconds << ",\n"
     << "      \"throughput_qps\": " << report.throughput_qps << ",\n"
     << "      \"p50_ms\": " << report.p50_ms << ",\n"
     << "      \"p99_ms\": " << report.p99_ms << ",\n"
     << "      \"max_ms\": " << report.max_ms << ",\n"
     << "      \"mean_batch\": " << report.mean_batch << ",\n"
     << "      \"server\": {\n"
     << "        \"health\": \"" << ServeHealthName(health.state)
     << "\",\n"
     << "        \"degrade_level\": " << health.degrade_level << ",\n"
     << "        \"target_batch_size\": " << health.target_batch_size
     << ",\n"
     << "        \"batches\": " << stats.batches << ",\n"
     << "        \"degrade_events\": " << stats.degrade_events << ",\n"
     << "        \"recover_events\": " << stats.recover_events << ",\n"
     << "        \"max_queue_depth\": " << stats.max_queue_depth << "\n"
     << "      }\n"
     << "    }";
  return os.str();
}

}  // namespace dhgcn
