#include "serve/frozen_model.h"

#include <utility>

#include "base/string_util.h"
#include "data/skeleton.h"
#include "io/serialization.h"
#include "nn/layer.h"

namespace dhgcn {

FrozenModel::FrozenModel(std::unique_ptr<DhgcnModel> model,
                         const DhgcnConfig& config, int64_t frames,
                         int64_t num_joints)
    : model_(std::move(model)),
      config_(config),
      frames_(frames),
      num_joints_(num_joints) {}

Result<std::unique_ptr<FrozenModel>> FrozenModel::Load(
    const std::string& checkpoint_path, const DhgcnConfig& config,
    int64_t frames) {
  if (frames < 2) {
    return Status::InvalidArgument(
        StrCat("serving frames must be >= 2, got ", frames));
  }
  DHGCN_ASSIGN_OR_RETURN(std::unique_ptr<DhgcnModel> model,
                         DhgcnModel::Make(config));
  if (!checkpoint_path.empty()) {
    DHGCN_RETURN_IF_ERROR(LoadParameters(checkpoint_path, *model));
  }
  model->SetTraining(false);
  int64_t num_joints = GetSkeletonLayout(config.layout).num_joints;
  return std::unique_ptr<FrozenModel>(
      // lint: allow-naked-new — private ctor is unreachable by
      // make_unique; the pointer lands in unique_ptr immediately.
      new FrozenModel(std::move(model), config, frames, num_joints));
}

Status FrozenModel::ValidateClipShape(const Tensor& clip) const {
  if (clip.ndim() != 3 || clip.dim(0) != config_.in_channels ||
      clip.dim(1) != frames_ || clip.dim(2) != num_joints_) {
    return Status::InvalidArgument(
        StrCat("clip shape ", ShapeToString(clip.shape()),
               " does not match the served model's (C, T, V) = (",
               config_.in_channels, ", ", frames_, ", ", num_joints_,
               ")"));
  }
  return Status::OK();
}

Tensor FrozenModel::Forward(const Tensor& batch, Workspace& ws) {
  return LayerForward(*model_, batch, &ws);
}

}  // namespace dhgcn
