#include "serve/frozen_model.h"

#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "base/string_util.h"
#include "data/skeleton.h"
#include "io/serialization.h"
#include "nn/layer.h"
#include "plan/plan_builder.h"
#include "quant/quantize_pass.h"
#include "tensor/workspace.h"

namespace dhgcn {

FrozenModel::FrozenModel(std::unique_ptr<DhgcnModel> model,
                         const DhgcnConfig& config, int64_t frames,
                         int64_t num_joints, PlanMode plan,
                         Precision precision, QuantCalibration calib)
    : model_(std::move(model)),
      config_(config),
      frames_(frames),
      num_joints_(num_joints),
      plan_mode_(plan),
      precision_(precision),
      calib_(std::move(calib)) {}

Result<std::unique_ptr<FrozenModel>> FrozenModel::Load(
    const std::string& checkpoint_path, const DhgcnConfig& config,
    int64_t frames, PlanMode plan, Precision precision) {
  if (frames < 2) {
    return Status::InvalidArgument(
        StrCat("serving frames must be >= 2, got ", frames));
  }
  DHGCN_ASSIGN_OR_RETURN(std::unique_ptr<DhgcnModel> model,
                         DhgcnModel::Make(config));
  if (!checkpoint_path.empty()) {
    DHGCN_RETURN_IF_ERROR(LoadParameters(checkpoint_path, *model));
  }
  model->SetTraining(false);
  int64_t num_joints = GetSkeletonLayout(config.layout).num_joints;
  QuantCalibration calib;
  if (precision == Precision::kInt8) {
    // Checkpoints carry no calibration data, so calibrate on a
    // deterministic synthetic batch drawn from the load-generator
    // distribution (standard-normal clips, fixed seed): every worker
    // replica computes the identical scales.
    Rng rng(0x5eed);
    Tensor batch({8, config.in_channels, frames, num_joints});
    for (int64_t i = 0; i < batch.numel(); ++i) {
      batch.flat(i) = rng.Normal();
    }
    std::vector<Tensor> inputs;
    inputs.push_back(std::move(batch));
    Result<QuantCalibration> c = CalibrateOnInputs(*model, inputs);
    if (c.ok()) {
      calib = c.MoveValue();
    } else {
      DHGCN_LOG(kWarning) << "int8 calibration failed ("
                          << c.status().ToString() << "); serving fp32";
      precision = Precision::kFp32;
    }
  }
  return std::unique_ptr<FrozenModel>(
      // lint: allow-naked-new — private ctor is unreachable by
      // make_unique; the pointer lands in unique_ptr immediately.
      new FrozenModel(std::move(model), config, frames, num_joints, plan,
                      precision, std::move(calib)));
}

Status FrozenModel::ValidateClipShape(const Tensor& clip) const {
  if (clip.ndim() != 3 || clip.dim(0) != config_.in_channels ||
      clip.dim(1) != frames_ || clip.dim(2) != num_joints_) {
    return Status::InvalidArgument(
        StrCat("clip shape ", ShapeToString(clip.shape()),
               " does not match the served model's (C, T, V) = (",
               config_.in_channels, ", ", frames_, ", ", num_joints_,
               ")"));
  }
  return Status::OK();
}

PlanRunner* FrozenModel::RunnerForBatch(int64_t batch_size,
                                        const Shape& input_shape) {
  const bool int8 = precision_ == Precision::kInt8;
  if ((plan_mode_ == PlanMode::kOff && !int8) || plan_failed_) {
    return nullptr;
  }
  auto it = runners_.find(batch_size);
  if (it != runners_.end()) return it->second.get();
  Result<ExecutionPlan> plan =
      int8 ? BuildInt8InferencePlan(*model_, input_shape, calib_)
           : BuildInferencePlan(*model_, input_shape, plan_mode_);
  if (!plan.ok()) {
    if (int8) {
      // Downgrade this replica to fp32 permanently; existing int8
      // runners for other batch sizes can't exist yet (first compile
      // failure is the only path here) or stay valid regardless.
      DHGCN_LOG(kWarning) << "int8 plan compile failed ("
                          << plan.status().ToString() << "); serving fp32";
      precision_ = Precision::kFp32;
      return RunnerForBatch(batch_size, input_shape);
    }
    DHGCN_LOG(kWarning) << "serving plan capture failed ("
                        << plan.status().ToString()
                        << "); falling back to layer-by-layer inference";
    plan_failed_ = true;
    return nullptr;
  }
  it = runners_
           .emplace(batch_size,
                    std::make_unique<PlanRunner>(std::move(plan).ValueOrDie()))
           .first;
  return it->second.get();
}

Tensor FrozenModel::Forward(const Tensor& batch, Workspace& ws) {
  PlanRunner* runner = RunnerForBatch(batch.dim(0), batch.shape());
  if (runner == nullptr) return LayerForward(*model_, batch, &ws);
  // The runner's output borrows its pinned arena and is overwritten by
  // the next Run; copy the (B, classes) logits into the caller's
  // workspace to keep Forward's borrowed-from-`ws` contract.
  const Tensor& logits = runner->Run(batch);
  Tensor out = NewTensor(&ws, logits.shape());
  out.CopyFrom(logits);
  return out;
}

}  // namespace dhgcn
