#ifndef DHGCN_SERVE_CLOCK_H_
#define DHGCN_SERVE_CLOCK_H_

// lint: allow-wallclock-file — serving deadlines and latency accounting
// are wall-clock by definition. The clock never feeds training state or
// checkpoints, and every policy decision takes `now` as an argument so
// tests drive the FakeServeClock deterministically.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace dhgcn {

/// \brief Monotonic nanosecond clock behind the serving stack.
///
/// All deadline, flush and watchdog decisions read time through this
/// interface, so tests substitute `FakeServeClock` and replay overload /
/// expiry / recovery scenarios without sleeping.
class ServeClock {
 public:
  virtual ~ServeClock() = default;
  virtual int64_t NowNanos() const = 0;

  /// Process-wide steady-clock instance.
  static ServeClock* Real();
};

/// \brief Manually advanced clock for deterministic policy tests.
/// Safe to advance from one thread while server threads read it.
class FakeServeClock : public ServeClock {
 public:
  explicit FakeServeClock(int64_t start_ns = 0) : now_ns_(start_ns) {}

  int64_t NowNanos() const override {
    return now_ns_.load(std::memory_order_acquire);
  }
  void AdvanceNanos(int64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_acq_rel);
  }
  void AdvanceMillis(int64_t delta_ms) { AdvanceNanos(delta_ms * 1000000); }
  void SetNanos(int64_t now_ns) {
    now_ns_.store(now_ns, std::memory_order_release);
  }

 private:
  std::atomic<int64_t> now_ns_;
};

class RealServeClock : public ServeClock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace dhgcn

#endif  // DHGCN_SERVE_CLOCK_H_
