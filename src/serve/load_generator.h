#ifndef DHGCN_SERVE_LOAD_GENERATOR_H_
#define DHGCN_SERVE_LOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "serve/server.h"

namespace dhgcn {

/// \brief Open-loop synthetic load for InferenceServer.
///
/// Arrivals are scheduled on a fixed wall-clock grid derived from `qps`
/// and submitted regardless of how the server is keeping up — the
/// open-loop property that makes overload visible as shed/expired
/// counts instead of silently slowing the generator down.
struct LoadGenOptions {
  double qps = 200.0;
  int64_t duration_ms = 1000;
  /// Per-request relative deadline; 0 uses the server default.
  int64_t deadline_ms = 0;
  /// Poison every Nth clip with NaN (0 = never): exercises the
  /// per-request quarantine under sustained load.
  int64_t poison_every_n = 0;
  /// Seed for the synthetic clips.
  uint64_t seed = 42;
};

/// \brief Outcome of one load run.
struct LoadGenReport {
  int64_t offered = 0;        ///< requests the schedule called for
  int64_t accepted = 0;       ///< Submit() returned OK
  int64_t ok = 0;             ///< completed with OK
  int64_t shed = 0;           ///< kOverloaded (at admission)
  int64_t expired = 0;        ///< kDeadlineExceeded (any stage)
  int64_t invalid = 0;        ///< kInvalidArgument (quarantined)
  int64_t other_errors = 0;
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;  ///< OK completions per wall second
  double p50_ms = 0.0;          ///< over OK total latencies
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_batch = 0.0;      ///< mean executed micro-batch size
};

/// Runs `options` against `server` and blocks until every in-flight
/// request has completed. Thread-safe with other clients of the server.
LoadGenReport RunLoad(InferenceServer& server, const LoadGenOptions& options);

/// Renders `report` (plus a label and the server's post-run stats) as a
/// JSON object string — one phase entry for BENCH_serving.json.
std::string LoadGenReportJson(const std::string& label,
                              const LoadGenReport& report,
                              const ServeStats& stats,
                              const HealthReport& health);

}  // namespace dhgcn

#endif  // DHGCN_SERVE_LOAD_GENERATOR_H_
