#ifndef DHGCN_SERVE_MICRO_BATCHER_H_
#define DHGCN_SERVE_MICRO_BATCHER_H_

#include <cstdint>
#include <vector>

#include "base/result.h"
#include "serve/serve_types.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Tuning for the micro-batching admission queue.
///
/// Times are nanoseconds. The defaults target a small CPU model: coalesce
/// for up to 2 ms, never queue more than 128 requests, and start
/// shrinking batches as soon as admission has to shed.
struct MicroBatcherOptions {
  /// Hard bound on queued requests; admission beyond it sheds with
  /// kOverloaded. The backing storage is preallocated — the queue never
  /// allocates after construction.
  int64_t queue_capacity = 128;
  /// Flush when this many requests are waiting (at degrade level 0).
  int64_t max_batch_size = 8;
  /// Flush the oldest request after coalescing this long (level 0).
  int64_t batch_delay_ns = 2'000'000;
  /// Start executing a request at least this long before its deadline,
  /// so compute has a chance to finish inside it.
  int64_t flush_margin_ns = 2'000'000;
  /// Minimum spacing between degradation steps, so one burst of sheds
  /// drops at most one level at a time.
  int64_t degrade_cooldown_ns = 20'000'000;
  /// Shed-free time required before stepping one level back up.
  int64_t recover_quiet_ns = 200'000'000;

  [[nodiscard]] Status Validate() const;
};

/// \brief One queued inference request.
struct PendingRequest {
  int64_t id = 0;
  Tensor clip;            ///< owning copy of the caller's input
  int64_t submit_ns = 0;
  int64_t deadline_ns = 0;  ///< absolute; expired before compute is spent
  ServeCompletionFn done_fn = nullptr;
  void* done_ctx = nullptr;
};

/// \brief Bounded FIFO micro-batching queue with deadlines, load
/// shedding and a batch-size degradation ladder.
///
/// Pure policy object: every method takes `now_ns` explicitly and the
/// class does no locking, no clock reads and no allocation after
/// construction, so unit tests replay arbitrary schedules with a fake
/// clock.
///
/// Call contract under concurrency: the caller serializes every method
/// call on one instance. `InferenceServer` expresses that statically by
/// declaring its member `batcher_ DHGCN_GUARDED_BY(mu_)` — the
/// annotation lives at the *owning member*, not as `REQUIRES` on these
/// methods, because Clang's thread-safety analysis cannot prove
/// cross-object mutex identity (it has no way to know which caller
/// mutex guards `this`). Single-threaded users (unit tests) need no
/// lock at all.
///
/// Policy:
///  - **Admission**: reject with kOverloaded when `size == capacity`
///    (after noting the shed for the degradation ladder) or when the
///    request's deadline has already passed.
///  - **Flush**: a batch is ready when `size >= target_batch_size()`, or
///    when `now` reaches the earliest per-request flush point
///    `min(submit + delay, deadline - flush_margin)`.
///  - **Expiry**: requests whose deadline has passed are handed back via
///    `TakeExpired` so callers fail them *without* spending compute.
///  - **Degradation ladder**: each shed (rate-limited by
///    `degrade_cooldown_ns`) halves the target batch size and the
///    coalescing delay — smaller batches start sooner and drain the
///    queue faster instead of collapsing it. After `recover_quiet_ns`
///    without sheds, one level is restored at a time.
class MicroBatcher {
 public:
  explicit MicroBatcher(const MicroBatcherOptions& options);

  /// Admits or sheds. On error the request is handed back untouched in
  /// `*request` so the caller still owns its completion.
  [[nodiscard]] Status Admit(PendingRequest* request, int64_t now_ns);

  /// Moves every queued request whose deadline has passed into
  /// `*expired` (FIFO order preserved).
  void TakeExpired(int64_t now_ns, std::vector<PendingRequest>* expired);

  /// True when a batch should be taken now (see the flush policy above).
  [[nodiscard]] bool BatchReady(int64_t now_ns) const;

  /// Moves up to `target_batch_size()` oldest requests into `*batch`.
  void TakeBatch(std::vector<PendingRequest>* batch);

  /// Nanoseconds until the next time-triggered event (flush point or
  /// expiry) — a bounded wait hint for the worker's condition wait.
  /// Returns `horizon_ns` when the queue is empty.
  [[nodiscard]] int64_t NanosUntilNextEvent(int64_t now_ns,
                                            int64_t horizon_ns) const;

  /// Steps the ladder one level up when the shed-free quiet period has
  /// elapsed. Call on any convenient event edge (admissions, flushes).
  void MaybeRecover(int64_t now_ns);

  int64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  int64_t degrade_level() const { return degrade_level_; }
  int64_t max_degrade_level() const { return max_degrade_level_; }
  /// Current flush threshold: `max_batch_size >> degrade_level`, >= 1.
  int64_t target_batch_size() const;
  /// Current coalescing delay: `batch_delay_ns >> degrade_level`.
  int64_t effective_delay_ns() const;

  int64_t shed_count() const { return shed_count_; }
  int64_t degrade_events() const { return degrade_events_; }
  int64_t recover_events() const { return recover_events_; }

 private:
  int64_t FlushAtNs(const PendingRequest& request) const;
  void NoteShed(int64_t now_ns);

  MicroBatcherOptions options_;
  int64_t max_degrade_level_ = 0;

  /// FIFO storage, bounded by `queue_capacity` (capacity reserved up
  /// front; erase-from-front moves are cheap shared-pointer shuffles).
  std::vector<PendingRequest> pending_;
  int64_t count_ = 0;

  int64_t degrade_level_ = 0;
  int64_t last_shed_ns_ = 0;
  int64_t last_degrade_ns_ = 0;
  bool shed_seen_ = false;

  int64_t shed_count_ = 0;
  int64_t degrade_events_ = 0;
  int64_t recover_events_ = 0;
};

}  // namespace dhgcn

#endif  // DHGCN_SERVE_MICRO_BATCHER_H_
