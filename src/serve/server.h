#ifndef DHGCN_SERVE_SERVER_H_
#define DHGCN_SERVE_SERVER_H_

// lint: allow-thread-file — the serving core *is* the one place
// inter-request concurrency lives: worker threads, a request mutex and
// bounded condition waits. Intra-op parallelism still goes through
// base/thread_pool.h (forwards take a compute lease when the pool is
// multi-threaded), so the determinism contract is untouched. All
// condition waits are bounded (`WaitForNanos`), enforced by the
// repo_lint `serve-wait` rule, and every locking invariant is
// annotated for Clang's thread-safety analysis (DESIGN.md §13).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/result.h"
#include "base/thread_annotations.h"
#include "serve/clock.h"
#include "serve/frozen_model.h"
#include "serve/micro_batcher.h"
#include "serve/serve_types.h"
#include "tensor/workspace.h"

namespace dhgcn {

/// \brief Server tuning knobs. Times are nanoseconds.
struct ServerOptions {
  /// Worker threads, each owning a model replica and a workspace arena.
  int64_t worker_count = 1;
  /// Inference path of each replica: kOff = layer-by-layer; kUnfused /
  /// kFused = compiled execution plans cached per micro-batch size
  /// (capture failure falls back to the layer path, never an error).
  PlanMode plan_mode = PlanMode::kOff;
  /// Inference numerics of each replica: kInt8 loads post-training-
  /// quantized models (synthetic-batch calibration at load time; a
  /// calibration failure downgrades that replica to fp32 with one
  /// warning — see FrozenModel::Load).
  Precision precision = Precision::kFp32;
  MicroBatcherOptions batcher;
  /// Deadline applied when SubmitOptions.deadline_ns == 0.
  int64_t default_deadline_ns = 50'000'000;
  /// A worker busy on one batch longer than this counts as stalled for
  /// health reporting.
  int64_t stall_threshold_ns = 1'000'000'000;
  /// Upper bound on one idle condition wait (workers re-check state at
  /// least this often; also the watchdog's reporting granularity).
  int64_t idle_tick_ns = 5'000'000;

  [[nodiscard]] Status Validate() const;
};

/// \brief Fault-tolerant micro-batching inference server.
///
/// Concurrent single-clip submissions are coalesced into micro-batches
/// under a latency-deadline + max-batch-size policy (see MicroBatcher)
/// and executed by worker threads on per-worker model replicas with
/// per-worker Workspace arenas. Robustness contract:
///
///  - **Backpressure**: admission beyond the bounded queue rejects
///    synchronously with kOverloaded — callers see the shed explicitly,
///    nothing blocks unboundedly.
///  - **Deadlines**: queued requests whose deadline passes are expired
///    with kDeadlineExceeded before any compute is spent; requests that
///    finish late get kDeadlineExceeded instead of a stale answer.
///  - **Graceful degradation**: sustained shedding shrinks the target
///    batch size / coalescing delay (MicroBatcher ladder) and recovers
///    automatically once load drops.
///  - **Poison isolation**: each request is finite-validated (the PR 1
///    ingest-quarantine rule) at batch assembly, so one NaN-poisoned
///    clip fails alone with kInvalidArgument while its batchmates run.
///  - **Watchdog**: per-worker heartbeats surface stalls through
///    Health() (kDegraded / kUnhealthy) without stopping admission
///    control.
///  - **Exactly-once completion**: every admitted request's callback
///    fires exactly once, including through Shutdown() (drain).
///
/// Fault-injection sites (`queue-full`, `worker-stall`,
/// `deadline-miss`, `poison-input`) make each failure mode testable on
/// demand.
class InferenceServer {
 public:
  /// Loads `worker_count` model replicas from `checkpoint_path` (empty =
  /// fresh weights) and starts the workers. `clock` defaults to the
  /// process steady clock; tests may inject a FakeServeClock (non-owning,
  /// must outlive the server).
  static Result<std::unique_ptr<InferenceServer>> Create(
      const std::string& checkpoint_path, const DhgcnConfig& config,
      int64_t frames, const ServerOptions& options,
      ServeClock* clock = nullptr);

  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Non-blocking admission. OK means the request was admitted and
  /// `done_fn(done_ctx, response)` will fire exactly once from a worker
  /// thread; any error means the request was rejected *now* and the
  /// callback will never fire. The clip is copied on admission, so the
  /// caller may reuse its buffer immediately.
  [[nodiscard]] Status Submit(const Tensor& clip,
                              const SubmitOptions& options,
                              ServeCompletionFn done_fn, void* done_ctx);

  /// Blocking convenience wrapper around Submit for synchronous callers
  /// (and the C ABI). The returned response's `status` carries
  /// kOverloaded / kDeadlineExceeded / kInvalidArgument rejections.
  ServeResponse Infer(const Tensor& clip, const SubmitOptions& options);

  HealthReport Health() const;
  ServeStats Stats() const;

  /// Stops admission, drains the queue (still honoring deadlines), and
  /// joins the workers. Idempotent; also runs from the destructor.
  void Shutdown();

  const FrozenModel& model() const { return *models_[0]; }
  const ServerOptions& options() const { return options_; }

 private:
  InferenceServer(std::vector<std::unique_ptr<FrozenModel>> models,
                  const ServerOptions& options, ServeClock* clock);

  void WorkerLoop(int64_t worker_index);
  /// Executes one taken micro-batch outside the lock: validates inputs,
  /// stacks, forwards, splits and completes.
  void ExecuteBatch(int64_t worker_index,
                    std::vector<PendingRequest>* batch);
  void Complete(PendingRequest* request, Status status, Tensor logits,
                int64_t taken_ns, int64_t batch_size);

  /// models_/options_/clock_ are immutable after Create() returns, so
  /// they carry no guard.
  std::vector<std::unique_ptr<FrozenModel>> models_;
  ServerOptions options_;
  ServeClock* clock_;

  /// Guards the admission queue and every piece of server state the
  /// submitter, workers and health probes share. Declared
  /// ACQUIRED_BEFORE the compute lease: whenever both are held, mu_ is
  /// taken first — with -Wthread-safety-beta an inverted acquisition
  /// anywhere in the tree is a compile error, which statically rules
  /// out the mu_/compute_mu_ deadlock class.
  mutable Mutex mu_ DHGCN_ACQUIRED_BEFORE(compute_mu_);
  CondVar work_cv_;
  MicroBatcher batcher_ DHGCN_GUARDED_BY(mu_);
  bool shutting_down_ DHGCN_GUARDED_BY(mu_) = false;
  bool started_ DHGCN_GUARDED_BY(mu_) = false;
  int64_t next_request_id_ DHGCN_GUARDED_BY(mu_) = 1;
  ServeStats stats_ DHGCN_GUARDED_BY(mu_);

  /// Worker heartbeats: 0 = idle, else NowNanos() when the current
  /// batch started. Written by the owning worker, read by Health() —
  /// atomics, not mu_, so the watchdog never contends with admission.
  /// One flat fixed-size array (worker_count entries, sized at
  /// construction): the watchdog scan walks contiguous memory instead
  /// of chasing one heap pointer per worker.
  std::unique_ptr<std::atomic<int64_t>[]> worker_busy_since_;
  /// One arena per worker, reset per batch. The vector itself is built
  /// before the workers start and never resized; each arena is touched
  /// only by its owning worker.
  std::vector<std::unique_ptr<Workspace>> workspaces_;
  /// Mutated only in Create() (before any worker runs) and Shutdown()
  /// (after the shutting_down_ handshake stops every loop), so joins
  /// happen outside any lock.
  std::vector<std::thread> workers_;
  /// Compute lease: serializes model forwards when the intra-op
  /// ThreadPool has more than one thread (its job slot admits one
  /// concurrent entrant). Never taken while holding mu_ today — the
  /// ACQUIRED_BEFORE ordering above keeps any future nesting one-way.
  Mutex compute_mu_;
};

}  // namespace dhgcn

#endif  // DHGCN_SERVE_SERVER_H_
