#ifndef DHGCN_SERVE_SERVER_H_
#define DHGCN_SERVE_SERVER_H_

// lint: allow-thread-file — the serving core *is* the one place
// inter-request concurrency lives: worker threads, a request mutex and
// bounded condition waits. Intra-op parallelism still goes through
// base/thread_pool.h (forwards take a compute lease when the pool is
// multi-threaded), so the determinism contract is untouched. All
// condition waits are bounded (`wait_for`), enforced by the repo_lint
// `serve-wait` rule.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/result.h"
#include "serve/clock.h"
#include "serve/frozen_model.h"
#include "serve/micro_batcher.h"
#include "serve/serve_types.h"
#include "tensor/workspace.h"

namespace dhgcn {

/// \brief Server tuning knobs. Times are nanoseconds.
struct ServerOptions {
  /// Worker threads, each owning a model replica and a workspace arena.
  int64_t worker_count = 1;
  /// Inference path of each replica: kOff = layer-by-layer; kUnfused /
  /// kFused = compiled execution plans cached per micro-batch size
  /// (capture failure falls back to the layer path, never an error).
  PlanMode plan_mode = PlanMode::kOff;
  MicroBatcherOptions batcher;
  /// Deadline applied when SubmitOptions.deadline_ns == 0.
  int64_t default_deadline_ns = 50'000'000;
  /// A worker busy on one batch longer than this counts as stalled for
  /// health reporting.
  int64_t stall_threshold_ns = 1'000'000'000;
  /// Upper bound on one idle condition wait (workers re-check state at
  /// least this often; also the watchdog's reporting granularity).
  int64_t idle_tick_ns = 5'000'000;

  [[nodiscard]] Status Validate() const;
};

/// \brief Fault-tolerant micro-batching inference server.
///
/// Concurrent single-clip submissions are coalesced into micro-batches
/// under a latency-deadline + max-batch-size policy (see MicroBatcher)
/// and executed by worker threads on per-worker model replicas with
/// per-worker Workspace arenas. Robustness contract:
///
///  - **Backpressure**: admission beyond the bounded queue rejects
///    synchronously with kOverloaded — callers see the shed explicitly,
///    nothing blocks unboundedly.
///  - **Deadlines**: queued requests whose deadline passes are expired
///    with kDeadlineExceeded before any compute is spent; requests that
///    finish late get kDeadlineExceeded instead of a stale answer.
///  - **Graceful degradation**: sustained shedding shrinks the target
///    batch size / coalescing delay (MicroBatcher ladder) and recovers
///    automatically once load drops.
///  - **Poison isolation**: each request is finite-validated (the PR 1
///    ingest-quarantine rule) at batch assembly, so one NaN-poisoned
///    clip fails alone with kInvalidArgument while its batchmates run.
///  - **Watchdog**: per-worker heartbeats surface stalls through
///    Health() (kDegraded / kUnhealthy) without stopping admission
///    control.
///  - **Exactly-once completion**: every admitted request's callback
///    fires exactly once, including through Shutdown() (drain).
///
/// Fault-injection sites (`queue-full`, `worker-stall`,
/// `deadline-miss`, `poison-input`) make each failure mode testable on
/// demand.
class InferenceServer {
 public:
  /// Loads `worker_count` model replicas from `checkpoint_path` (empty =
  /// fresh weights) and starts the workers. `clock` defaults to the
  /// process steady clock; tests may inject a FakeServeClock (non-owning,
  /// must outlive the server).
  static Result<std::unique_ptr<InferenceServer>> Create(
      const std::string& checkpoint_path, const DhgcnConfig& config,
      int64_t frames, const ServerOptions& options,
      ServeClock* clock = nullptr);

  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Non-blocking admission. OK means the request was admitted and
  /// `done_fn(done_ctx, response)` will fire exactly once from a worker
  /// thread; any error means the request was rejected *now* and the
  /// callback will never fire. The clip is copied on admission, so the
  /// caller may reuse its buffer immediately.
  [[nodiscard]] Status Submit(const Tensor& clip,
                              const SubmitOptions& options,
                              ServeCompletionFn done_fn, void* done_ctx);

  /// Blocking convenience wrapper around Submit for synchronous callers
  /// (and the C ABI). The returned response's `status` carries
  /// kOverloaded / kDeadlineExceeded / kInvalidArgument rejections.
  ServeResponse Infer(const Tensor& clip, const SubmitOptions& options);

  HealthReport Health() const;
  ServeStats Stats() const;

  /// Stops admission, drains the queue (still honoring deadlines), and
  /// joins the workers. Idempotent; also runs from the destructor.
  void Shutdown();

  const FrozenModel& model() const { return *models_[0]; }
  const ServerOptions& options() const { return options_; }

 private:
  InferenceServer(std::vector<std::unique_ptr<FrozenModel>> models,
                  const ServerOptions& options, ServeClock* clock);

  void WorkerLoop(int64_t worker_index);
  /// Executes one taken micro-batch outside the lock: validates inputs,
  /// stacks, forwards, splits and completes.
  void ExecuteBatch(int64_t worker_index,
                    std::vector<PendingRequest>* batch);
  void Complete(PendingRequest* request, Status status, Tensor logits,
                int64_t taken_ns, int64_t batch_size);

  std::vector<std::unique_ptr<FrozenModel>> models_;
  ServerOptions options_;
  ServeClock* clock_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  MicroBatcher batcher_;
  bool shutting_down_ = false;
  bool started_ = false;
  int64_t next_request_id_ = 1;
  ServeStats stats_;

  /// Worker heartbeat: 0 = idle, else NowNanos() when the current batch
  /// started. Written by the owning worker, read by Health().
  std::vector<std::unique_ptr<std::atomic<int64_t>>> worker_busy_since_;
  /// One arena per worker, reset per batch.
  std::vector<std::unique_ptr<Workspace>> workspaces_;
  std::vector<std::thread> workers_;
  /// Serializes model forwards when the intra-op ThreadPool has more
  /// than one thread (its job slot admits one concurrent entrant).
  std::mutex compute_mu_;
};

}  // namespace dhgcn

#endif  // DHGCN_SERVE_SERVER_H_
