#include "core/dhgcn_model.h"

#include "base/string_util.h"
#include "core/dynamic_joint_weight.h"
#include "core/static_hypergraph.h"
#include "plan/plan_builder.h"
#include "tensor/workspace.h"

namespace dhgcn {

DhgcnConfig DhgcnConfig::Paper(SkeletonLayoutType layout,
                               int64_t num_classes) {
  DhgcnConfig config;
  config.layout = layout;
  config.num_classes = num_classes;
  config.blocks = {
      {64, 1, 1},  {64, 1, 1},  {64, 1, 1},  {64, 1, 1},
      {128, 2, 1}, {128, 1, 1}, {128, 1, 2},
      {256, 2, 1}, {256, 1, 1}, {256, 1, 2},
  };
  config.dropout = 0.5f;
  return config;
}

DhgcnConfig DhgcnConfig::Small(SkeletonLayoutType layout,
                               int64_t num_classes) {
  DhgcnConfig config;
  config.layout = layout;
  config.num_classes = num_classes;
  config.blocks = {
      {16, 1, 1},
      {32, 2, 1},
      {32, 1, 2},
      {64, 2, 1},
  };
  config.dropout = 0.1f;
  return config;
}

DhgcnConfig DhgcnConfig::Tiny(SkeletonLayoutType layout,
                              int64_t num_classes) {
  DhgcnConfig config;
  config.layout = layout;
  config.num_classes = num_classes;
  config.blocks = {
      {8, 1, 1},
      {16, 2, 1},
  };
  return config;
}

Result<std::unique_ptr<DhgcnModel>> DhgcnModel::Make(
    const DhgcnConfig& config) {
  if (config.num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (config.in_channels <= 0) {
    return Status::InvalidArgument("in_channels must be positive");
  }
  if (config.blocks.empty()) {
    return Status::InvalidArgument("at least one DHST block is required");
  }
  if (!config.enable_static && !config.enable_joint_weight &&
      !config.enable_topology) {
    return Status::InvalidArgument(
        "at least one spatial branch must be enabled");
  }
  for (const DhgcnBlockSpec& spec : config.blocks) {
    if (spec.channels <= 0 || spec.temporal_stride <= 0 ||
        spec.temporal_dilation <= 0) {
      return Status::InvalidArgument(
          "block channels/stride/dilation must be positive");
    }
  }
  if (config.dropout < 0.0f || config.dropout >= 1.0f) {
    return Status::InvalidArgument("dropout must be in [0, 1)");
  }
  const SkeletonLayout& layout = GetSkeletonLayout(config.layout);
  if (config.topology.kn < 1 || config.topology.kn > layout.num_joints ||
      config.topology.km < 1 || config.topology.km > layout.num_joints) {
    return Status::InvalidArgument(
        StrCat("k_n/k_m must be in [1, ", layout.num_joints, "]"));
  }
  return std::make_unique<DhgcnModel>(config);
}

DhgcnModel::DhgcnModel(const DhgcnConfig& config)
    : config_(config),
      static_hypergraph_(
          StaticSkeletonHypergraph(GetSkeletonLayout(config.layout))) {
  Rng rng(config.seed);
  input_bn_ = std::make_unique<BatchNorm2d>(config.in_channels);
  int64_t in_channels = config.in_channels;
  for (const DhgcnBlockSpec& spec : config.blocks) {
    DhstBlockOptions options;
    options.in_channels = in_channels;
    options.out_channels = spec.channels;
    options.temporal_stride = spec.temporal_stride;
    options.temporal_dilation = spec.temporal_dilation;
    options.topology = config.topology;
    options.enable_static = config.enable_static;
    options.enable_joint_weight = config.enable_joint_weight;
    options.enable_topology = config.enable_topology;
    blocks_.push_back(
        std::make_unique<DhstBlock>(options, static_hypergraph_, rng));
    in_channels = spec.channels;
  }
  if (config.dropout > 0.0f) {
    dropout_ = std::make_unique<Dropout>(config.dropout, rng);
  }
  classifier_ = std::make_unique<Linear>(in_channels, config.num_classes,
                                         rng);
}

Tensor DhgcnModel::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(1), config_.in_channels);
  DHGCN_CHECK_EQ(input.dim(3),
                 GetSkeletonLayout(config_.layout).num_joints);

  // Dynamic joint-weight operators from the raw input coordinates
  // (Eqs. 6-9), re-strided as blocks shrink the time axis.
  Tensor joint_ops;
  if (config_.enable_joint_weight) {
    joint_ops = DynamicJointWeightOperators(input, static_hypergraph_, ws);
  }

  Tensor x = LayerForward(*input_bn_, input, ws);
  for (auto& block : blocks_) {
    if (ws != nullptr) {
      Tensor y;
      block->ForwardInto(x, joint_ops, *ws, &y);
      x = std::move(y);
    } else {
      x = block->Forward(x, joint_ops);
    }
    if (config_.enable_joint_weight &&
        block->options().temporal_stride != 1) {
      joint_ops = StrideOperatorsInTime(joint_ops,
                                        block->options().temporal_stride,
                                        ws);
    }
  }
  Tensor pooled = LayerForward(pool_, x, ws);
  if (dropout_ != nullptr) pooled = LayerForward(*dropout_, pooled, ws);
  return LayerForward(*classifier_, pooled, ws);
}

Tensor DhgcnModel::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  Tensor g = LayerBackward(*classifier_, grad_output, ws);
  if (dropout_ != nullptr) g = LayerBackward(*dropout_, g, ws);
  g = LayerBackward(pool_, g, ws);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    if (ws != nullptr) {
      Tensor next;
      (*it)->BackwardInto(g, *ws, &next);
      g = std::move(next);
    } else {
      g = (*it)->Backward(g);
    }
  }
  return LayerBackward(*input_bn_, g, ws);
}

Tensor DhgcnModel::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor DhgcnModel::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void DhgcnModel::ForwardInto(const Tensor& input, Workspace& ws,
                             Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void DhgcnModel::BackwardInto(const Tensor& grad_output, Workspace& ws,
                              Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> DhgcnModel::Params() {
  std::vector<ParamRef> params;
  auto append = [&params](const std::string& prefix,
                          std::vector<ParamRef> child) {
    for (ParamRef& p : child) {
      p.name = prefix + "." + p.name;
      params.push_back(p);
    }
  };
  append("input_bn", input_bn_->Params());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    append(StrCat("block", i), blocks_[i]->Params());
  }
  append("classifier", classifier_->Params());
  return params;
}

void DhgcnModel::SetTraining(bool training) {
  Layer::SetTraining(training);
  input_bn_->SetTraining(training);
  for (auto& block : blocks_) block->SetTraining(training);
  pool_.SetTraining(training);
  if (dropout_ != nullptr) dropout_->SetTraining(training);
  classifier_->SetTraining(training);
}

std::string DhgcnModel::name() const {
  return StrCat("DHGCN(blocks=", blocks_.size(),
                ", kn=", config_.topology.kn, ", km=", config_.topology.km,
                ")");
}

int64_t DhgcnModel::Record(PlanBuilder& builder, int64_t in) {
  if (training()) return -1;
  const Shape xs = builder.slot_shape(in);
  if (xs.size() != 4 || xs[1] != config_.in_channels ||
      xs[3] != GetSkeletonLayout(config_.layout).num_joints) {
    return -1;
  }

  // Joint-weight operators from the raw input slot, re-strided as the
  // blocks shrink the time axis — mirrors ForwardImpl exactly.
  int64_t joint_ops = -1;
  if (config_.enable_joint_weight) {
    PlanOp op;
    op.kind = PlanOpKind::kJointWeightOps;
    op.in0 = in;
    op.out = builder.AddSlot({xs[0], xs[2], xs[3], xs[3]});
    op.hypergraph = &static_hypergraph_;
    joint_ops = op.out;
    builder.AddOp(std::move(op));
  }

  int64_t x = input_bn_->Record(builder, in);
  if (x < 0) return -1;
  for (auto& block : blocks_) {
    x = block->Record(builder, x, joint_ops);
    if (x < 0) return -1;
    const int64_t stride = block->options().temporal_stride;
    if (config_.enable_joint_weight && stride != 1) {
      const Shape os = builder.slot_shape(joint_ops);
      PlanOp op;
      op.kind = PlanOpKind::kStrideOps;
      op.in0 = joint_ops;
      op.out = builder.AddSlot(
          {os[0], (os[1] - 1) / stride + 1, os[2], os[3]});
      op.stride = stride;
      joint_ops = op.out;
      builder.AddOp(std::move(op));
    }
  }
  int64_t pooled = pool_.Record(builder, x);
  if (pooled < 0) return -1;
  if (dropout_ != nullptr) pooled = dropout_->Record(builder, pooled);
  return classifier_->Record(builder, pooled);
}

}  // namespace dhgcn
