#ifndef DHGCN_CORE_DYNAMIC_TOPOLOGY_H_
#define DHGCN_CORE_DYNAMIC_TOPOLOGY_H_

#include "hypergraph/hypergraph.h"
#include "tensor/tensor.h"

namespace dhgcn {

class Workspace;

/// Parameters of the dynamic-topology construction (Sec. 3.4).
struct DynamicTopologyOptions {
  /// k_n: joints per common-information (K-NN) hyperedge. Paper best: 3.
  int64_t kn = 3;
  /// k_m: number of global-information (K-means) hyperedges. Paper best: 4.
  int64_t km = 4;
  /// Iteration cap for the medoid K-means.
  int64_t kmeans_max_iters = 20;
  /// Base seed for the (deterministic) K-means initialization; combined
  /// with the frame index so results are reproducible across runs.
  uint64_t seed = 977;
};

/// \brief Builds the dynamic-topology hypergraph for one frame's vertex
/// features (V, F): the union of the K-NN "common information" hyperedges
/// and the K-means "global information" hyperedges.
Hypergraph DynamicTopologyHypergraph(const Tensor& features,
                                     const DynamicTopologyOptions& options,
                                     uint64_t frame_seed = 0,
                                     Workspace* ws = nullptr);

/// \brief Dynamic-topology operators for a feature map (N, C, T, V):
/// per sample and frame, vertices are embedded with their C-dim feature
/// columns, the hypergraph is constructed, and the normalized hypergraph
/// operator (Eq. 5) of shape (V, V) is emitted -> (N, T, V, V).
///
/// The construction (K-NN selection / K-means assignment) is
/// non-differentiable; gradients flow through the returned operators'
/// *application* to features, not through the topology itself.
Tensor DynamicTopologyOperators(const Tensor& features,
                                const DynamicTopologyOptions& options,
                                Workspace* ws = nullptr);

}  // namespace dhgcn

#endif  // DHGCN_CORE_DYNAMIC_TOPOLOGY_H_
