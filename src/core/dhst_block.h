#ifndef DHGCN_CORE_DHST_BLOCK_H_
#define DHGCN_CORE_DHST_BLOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/dynamic_topology.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/hypergraph_conv.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "nn/relu.h"

namespace dhgcn {

/// Configuration of one DHST (Dynamic Hypergraph Spatial-Temporal) block.
struct DhstBlockOptions {
  int64_t in_channels = 3;
  int64_t out_channels = 64;
  /// Temporal stride of the TCN half (down-samples T).
  int64_t temporal_stride = 1;
  /// TCN kernel is (temporal_kernel x 1), paper: 3x1.
  int64_t temporal_kernel = 3;
  /// Dilation of the TCN kernel ("a larger receptive field can be
  /// obtained by using different dilation rates").
  int64_t temporal_dilation = 1;
  /// Dynamic-topology parameters (k_n, k_m).
  DynamicTopologyOptions topology;
  /// Branch toggles for the Tab. 4 ablation.
  bool enable_static = true;
  bool enable_joint_weight = true;
  bool enable_topology = true;
};

/// \brief One DHST block (Fig. 5): a three-branch spatial hypergraph
/// convolution followed by a dilated temporal convolution, both with
/// residual connections and batch-norm.
///
/// Spatial half: the static-hypergraph branch (fixed operator, Eq. 5),
/// the dynamic joint-weight branch (per-frame Imp Imp^T operators,
/// Eq. 9, supplied by the caller since they derive from the *model
/// input* coordinates), and the dynamic-topology branch (K-NN + K-means
/// hypergraph built from the branch's own mapped features, Sec. 3.4).
/// Each branch is a 1x1 convolution (the Theta of Eqs. 5/9) followed by a
/// vertex aggregation; branch outputs are summed, batch-normed, joined
/// with a (possibly projected) residual, and passed through ReLU.
///
/// Not a `Layer`: Forward needs the per-frame joint-weight operators in
/// addition to the activations.
class DhstBlock {
 public:
  DhstBlock(const DhstBlockOptions& options, const Hypergraph& static_graph,
            Rng& rng);

  DhstBlock(const DhstBlock&) = delete;
  DhstBlock& operator=(const DhstBlock&) = delete;

  /// `x` is (N, C_in, T, V); `joint_ops` is (N, T, V, V) — the Eq. 9
  /// operators at this block's temporal resolution (ignored when the
  /// joint-weight branch is disabled; pass an empty tensor then).
  Tensor Forward(const Tensor& x, const Tensor& joint_ops);

  /// Returns d loss / d x for the previous block.
  Tensor Backward(const Tensor& grad_output);

  /// Workspace-planned variants: activations (and the dynamic-topology
  /// operators) are arena-backed; same kernels as the allocating path.
  void ForwardInto(const Tensor& x, const Tensor& joint_ops, Workspace& ws,
                   Tensor* out);
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input);

  std::vector<ParamRef> Params();
  void SetTraining(bool training);
  void ZeroGrad();
  int64_t ParameterCount();

  const DhstBlockOptions& options() const { return options_; }

  /// Output temporal length for an input length (tracks the TCN stride).
  int64_t OutputFrames(int64_t in_frames) const;

  /// Records the block's inference computation; `x` is the activation
  /// slot, `joint_ops` the (N, T, V, V) joint-weight operator slot at
  /// this block's temporal resolution (-1 when the branch is disabled).
  /// Returns the output slot or -1 when the block cannot record (e.g.
  /// still in training mode). Residual convolutions are recorded before
  /// the batch-norm so the [BN, Accumulate, ReLU] tail stays adjacent
  /// for the elementwise fuser; every op is pure, so this reordering of
  /// independent ops cannot change any computed value.
  int64_t Record(PlanBuilder& builder, int64_t x, int64_t joint_ops);

 private:
  Tensor ForwardImpl(const Tensor& x, const Tensor& joint_ops, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  DhstBlockOptions options_;

  // Spatial branches (each: 1x1 conv Theta, then vertex aggregation).
  std::unique_ptr<Conv2d> static_theta_;
  std::unique_ptr<VertexMix> static_mix_;
  std::unique_ptr<Conv2d> weight_theta_;
  std::unique_ptr<DynamicVertexMix> weight_mix_;
  std::unique_ptr<Conv2d> topology_map_;  // W_map of Eq. 10
  std::unique_ptr<DynamicVertexMix> topology_mix_;

  std::unique_ptr<BatchNorm2d> spatial_bn_;
  std::unique_ptr<Conv2d> spatial_residual_;  // null => identity
  ReLU spatial_relu_;

  // Temporal half.
  std::unique_ptr<Conv2d> temporal_conv_;
  std::unique_ptr<BatchNorm2d> temporal_bn_;
  std::unique_ptr<Conv2d> temporal_residual_;  // null => identity
  ReLU temporal_relu_;

  int64_t enabled_branches_ = 0;
  bool training_ = true;
};

}  // namespace dhgcn

#endif  // DHGCN_CORE_DHST_BLOCK_H_
