#include "core/two_stream.h"

#include "base/check.h"
#include "base/string_util.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

TwoStream::TwoStream(LayerPtr joint_model, LayerPtr bone_model)
    : joint_model_(std::move(joint_model)),
      bone_model_(std::move(bone_model)) {
  DHGCN_CHECK(joint_model_ != nullptr);
  DHGCN_CHECK(bone_model_ != nullptr);
}

Tensor TwoStream::FusedLogits(const Tensor& joint_x, const Tensor& bone_x) {
  Tensor joint_logits = joint_model_->Forward(joint_x);
  Tensor bone_logits = bone_model_->Forward(bone_x);
  DHGCN_CHECK(ShapesEqual(joint_logits.shape(), bone_logits.shape()));
  return Add(joint_logits, bone_logits);
}

void TwoStream::SetTraining(bool training) {
  joint_model_->SetTraining(training);
  bone_model_->SetTraining(training);
}

std::string TwoStream::name() const {
  return StrCat("TwoStream(", joint_model_->name(), " + ",
                bone_model_->name(), ")");
}

}  // namespace dhgcn
