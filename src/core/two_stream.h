#ifndef DHGCN_CORE_TWO_STREAM_H_
#define DHGCN_CORE_TWO_STREAM_H_

#include <memory>
#include <string>

#include "nn/layer.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Joint-bone two-stream framework (Sec. 3.5, after 2s-AGCN).
///
/// Holds two independently trained classifier models. The joint model
/// consumes joint coordinates, the bone model consumes bone vectors
/// (JointToBone of the same samples); the fused prediction is the sum of
/// the two models' scores. Training is per-stream — use the Trainer on
/// `joint()` and `bone()` with the matching DataLoaders — and fusion only
/// happens at evaluation.
class TwoStream {
 public:
  TwoStream(LayerPtr joint_model, LayerPtr bone_model);

  Layer& joint() { return *joint_model_; }
  Layer& bone() { return *bone_model_; }

  /// Summed logits of the two streams for matching batches (same samples,
  /// joint-preprocessed and bone-preprocessed respectively).
  Tensor FusedLogits(const Tensor& joint_x, const Tensor& bone_x);

  void SetTraining(bool training);
  std::string name() const;

 private:
  LayerPtr joint_model_;
  LayerPtr bone_model_;
};

}  // namespace dhgcn

#endif  // DHGCN_CORE_TWO_STREAM_H_
