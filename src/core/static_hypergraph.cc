#include "core/static_hypergraph.h"

#include "base/check.h"

namespace dhgcn {

Hypergraph StaticSkeletonHypergraph(const SkeletonLayout& layout) {
  if (layout.name == "ntu25") {
    std::vector<Hyperedge> edges = {
        // Torso and head.
        {0, 1, 2, 3, 20},
        // Left arm chain (shoulder to finger tips).
        {20, 4, 5, 6, 7, 21, 22},
        // Right arm chain.
        {20, 8, 9, 10, 11, 23, 24},
        // Left leg chain.
        {0, 12, 13, 14, 15},
        // Right leg chain.
        {0, 16, 17, 18, 19},
        // Cross-limb extremities: hands and feet coordinate in most
        // actions even though no bone connects them.
        {7, 11, 15, 19, 21, 23},
    };
    Hypergraph hypergraph(layout.num_joints, std::move(edges));
    DHGCN_CHECK(hypergraph.CoversAllVertices());
    return hypergraph;
  }
  DHGCN_CHECK(layout.name == "kinetics18");
  std::vector<Hyperedge> edges = {
      // Head: nose, neck, eyes, ears.
      {0, 1, 14, 15, 16, 17},
      // Left arm.
      {1, 5, 6, 7},
      // Right arm.
      {1, 2, 3, 4},
      // Left leg.
      {1, 11, 12, 13},
      // Right leg.
      {1, 8, 9, 10},
      // Cross-limb extremities: wrists and ankles.
      {4, 7, 10, 13},
  };
  Hypergraph hypergraph(layout.num_joints, std::move(edges));
  DHGCN_CHECK(hypergraph.CoversAllVertices());
  return hypergraph;
}

Hypergraph PartBasedHypergraph(const SkeletonLayout& layout,
                               int64_t num_parts) {
  std::vector<std::vector<int64_t>> parts = PartPartition(layout, num_parts);
  std::vector<Hyperedge> edges(parts.begin(), parts.end());
  Hypergraph hypergraph(layout.num_joints, std::move(edges));
  DHGCN_CHECK(hypergraph.CoversAllVertices());
  return hypergraph;
}

}  // namespace dhgcn
