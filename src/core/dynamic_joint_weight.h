#ifndef DHGCN_CORE_DYNAMIC_JOINT_WEIGHT_H_
#define DHGCN_CORE_DYNAMIC_JOINT_WEIGHT_H_

#include "hypergraph/hypergraph.h"
#include "tensor/tensor.h"

namespace dhgcn {

class Workspace;

/// \brief Per-joint moving distance (Eq. 6):
///   dis[n,t,v] = || x[n,:,t,v] - x[n,:,t-1,v] ||_2
/// for t >= 1; frame 0 copies frame 1's distance so every frame carries a
/// meaningful weight. Input is (N, C, T, V) with the first
/// min(C, 3) channels treated as coordinates.
Tensor MovingDistances(const Tensor& coords, Workspace* ws = nullptr);

/// \brief The weighted incidence matrix Imp = W_all ⊙ H (Eqs. 7–8) for one
/// frame: entry (v, e) is dis_v / sum_{u in e} dis_u when v in e, else 0.
///
/// Eq. 7 is the paper's "softmax": a share of the hyperedge's total
/// moving distance, which already sums to 1 over each hyperedge — we
/// implement exactly that normalization. Hyperedges whose joints all have
/// (near-)zero motion fall back to uniform weights 1/|e| so the operator
/// never degenerates.
Tensor JointWeightIncidence(const Tensor& frame_distances,
                            const Hypergraph& hypergraph,
                            Workspace* ws = nullptr);

/// \brief The dynamic joint-weight operators Imp Imp^T (Eq. 9) for every
/// sample and frame: coords (N, C, T, V) -> operators (N, T, V, V).
Tensor DynamicJointWeightOperators(const Tensor& coords,
                                   const Hypergraph& hypergraph,
                                   Workspace* ws = nullptr);

/// \brief Strides operator tensors (N, T, V, V) along T (keeping frames
/// 0, s, 2s, ...) so they track temporal down-sampling inside the model.
Tensor StrideOperatorsInTime(const Tensor& ops, int64_t stride,
                             Workspace* ws = nullptr);

}  // namespace dhgcn

#endif  // DHGCN_CORE_DYNAMIC_JOINT_WEIGHT_H_
