#ifndef DHGCN_CORE_DHGCN_MODEL_H_
#define DHGCN_CORE_DHGCN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/rng.h"
#include "core/dhst_block.h"
#include "data/skeleton.h"
#include "nn/batchnorm.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace dhgcn {

/// Channel/stride/dilation specification of one DHST block.
struct DhgcnBlockSpec {
  int64_t channels = 64;
  int64_t temporal_stride = 1;
  int64_t temporal_dilation = 1;
};

/// \brief Full DHGCN model configuration.
struct DhgcnConfig {
  SkeletonLayoutType layout = SkeletonLayoutType::kNtu25;
  int64_t num_classes = 10;
  int64_t in_channels = 3;
  std::vector<DhgcnBlockSpec> blocks;
  DynamicTopologyOptions topology;  // k_n, k_m
  bool enable_static = true;
  bool enable_joint_weight = true;
  bool enable_topology = true;
  float dropout = 0.0f;
  uint64_t seed = 7;

  /// The paper's 10-block backbone (Fig. 5): channels 64 (x4),
  /// 128 (x3, first strided), 256 (x3, first strided).
  static DhgcnConfig Paper(SkeletonLayoutType layout, int64_t num_classes);

  /// CPU-scale configuration used by the experiments in this repo:
  /// 4 blocks, channels 16/32/32/64 with two temporal strides.
  static DhgcnConfig Small(SkeletonLayoutType layout, int64_t num_classes);

  /// Minimal 2-block configuration for fast tests.
  static DhgcnConfig Tiny(SkeletonLayoutType layout, int64_t num_classes);
};

/// \brief The DHGCN classifier (Sec. 3.5): input batch-norm, a stack of
/// DHST blocks, global average pooling, dropout and the classifier FC.
///
/// Implements `Layer`: Forward maps (N, C, T, V) skeleton input to
/// (N, num_classes) logits. The dynamic joint-weight operators (Eq. 9)
/// are computed once from the raw model input (moving distances of the
/// input coordinates) and re-strided to each block's temporal resolution.
class DhgcnModel : public Layer {
 public:
  DhgcnModel(const DhgcnConfig& config);  // NOLINT(runtime/explicit)

  /// Validates the configuration before construction.
  static Result<std::unique_ptr<DhgcnModel>> Make(const DhgcnConfig& config);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::vector<ParamRef> Params() override;
  void SetTraining(bool training) override;
  std::string name() const override;

  /// Records the full inference forward (joint-weight operator
  /// construction, input BN, block stack with operator re-striding,
  /// pooling, identity dropout, classifier) into a plan. See
  /// `CaptureInferencePlan` for the entry point.
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  const DhgcnConfig& config() const { return config_; }
  const Hypergraph& static_hypergraph() const { return static_hypergraph_; }

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  DhgcnConfig config_;
  Hypergraph static_hypergraph_;

  std::unique_ptr<BatchNorm2d> input_bn_;
  std::vector<std::unique_ptr<DhstBlock>> blocks_;
  GlobalAvgPool2d pool_;
  std::unique_ptr<Dropout> dropout_;  // null when dropout == 0
  std::unique_ptr<Linear> classifier_;
};

}  // namespace dhgcn

#endif  // DHGCN_CORE_DHGCN_MODEL_H_
