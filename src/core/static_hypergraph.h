#ifndef DHGCN_CORE_STATIC_HYPERGRAPH_H_
#define DHGCN_CORE_STATIC_HYPERGRAPH_H_

#include "data/skeleton.h"
#include "hypergraph/hypergraph.h"

namespace dhgcn {

/// \brief The static skeleton hypergraph of DHGCN (Fig. 1(c) / Fig. 3):
/// six hyperedges representing the basic body topology — torso, the four
/// limb chains, and one cross-limb hyperedge connecting the extremities
/// ("unnatural connections such as hands and legs" that plain skeleton
/// graphs miss). Every joint is covered by at least one hyperedge.
Hypergraph StaticSkeletonHypergraph(const SkeletonLayout& layout);

/// \brief Hypergraph whose hyperedges are the PB-GCN body parts
/// (2, 4 or 6 parts) — the PB-HGCN construction of the Tab. 2 ablation.
Hypergraph PartBasedHypergraph(const SkeletonLayout& layout,
                               int64_t num_parts);

}  // namespace dhgcn

#endif  // DHGCN_CORE_STATIC_HYPERGRAPH_H_
