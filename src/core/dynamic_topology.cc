#include "core/dynamic_topology.h"

#include <algorithm>

#include "base/check.h"
#include "base/rng.h"
#include "hypergraph/hypergraph_conv.h"
#include "hypergraph/kmeans.h"
#include "hypergraph/knn.h"
#include "tensor/workspace.h"

namespace dhgcn {

Hypergraph DynamicTopologyHypergraph(const Tensor& features,
                                     const DynamicTopologyOptions& options,
                                     uint64_t frame_seed, Workspace* ws) {
  DHGCN_CHECK_EQ(features.ndim(), 2);
  int64_t v = features.dim(0);
  DHGCN_CHECK(options.kn >= 1 && options.kn <= v);
  DHGCN_CHECK(options.km >= 1 && options.km <= v);

  std::vector<Hyperedge> common = KnnHyperedges(features, options.kn, ws);
  Rng kmeans_rng(options.seed * 1000003ULL + frame_seed);
  std::vector<Hyperedge> global = KMeansHyperedges(
      features, options.km, kmeans_rng, options.kmeans_max_iters, ws);

  Hypergraph common_graph(v, std::move(common));
  Hypergraph global_graph(v, std::move(global));
  return common_graph.UnionWith(global_graph);
}

Tensor DynamicTopologyOperators(const Tensor& features,
                                const DynamicTopologyOptions& options,
                                Workspace* ws) {
  DHGCN_CHECK_EQ(features.ndim(), 4);
  int64_t n = features.dim(0), c = features.dim(1), t = features.dim(2),
          v = features.dim(3);
  Tensor ops = NewTensor(ws, {n, t, v, v});
  const float* px = features.data();
  float* po = ops.data();
  int64_t plane = t * v;
  Tensor frame_features = NewTensor(ws, {v, c});
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t tt = 0; tt < t; ++tt) {
      // Gather the frame's vertex features (V, C) from (C, T, V) layout.
      for (int64_t j = 0; j < v; ++j) {
        for (int64_t ch = 0; ch < c; ++ch) {
          frame_features.at(j, ch) =
              px[(b * c + ch) * plane + tt * v + j];
        }
      }
      Hypergraph hypergraph = DynamicTopologyHypergraph(
          frame_features, options, static_cast<uint64_t>(tt), ws);
      Tensor op = NormalizedHypergraphOperator(hypergraph, ws);
      std::copy(op.data(), op.data() + v * v, po + (b * t + tt) * v * v);
    }
  }
  return ops;
}

}  // namespace dhgcn
