#include "core/dhst_block.h"

#include <utility>

#include "base/check.h"
#include "plan/plan_builder.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {

namespace {

/// Records one DynamicVertexMix application with an explicit operator
/// slot (plans bypass SetOperators).
int64_t RecordDynamicMix(PlanBuilder& builder, const DynamicVertexMix* mix,
                         int64_t in, int64_t ops) {
  const Shape s = builder.slot_shape(in);
  PlanOp op;
  op.kind = PlanOpKind::kDynamicVertexMix;
  op.in0 = in;
  op.in1 = ops;
  op.out = builder.AddSlot(s);
  op.dyn_mix = mix;
  int64_t out = op.out;
  builder.AddOp(std::move(op));
  return out;
}

/// Appends `slot` into the running branch sum (`*sum += slot`), or
/// starts the sum when it is the first branch.
void MergeBranch(PlanBuilder& builder, int64_t slot, int64_t* sum) {
  if (*sum < 0) {
    *sum = slot;
    return;
  }
  PlanOp add;
  add.kind = PlanOpKind::kAccumulate;
  add.in0 = slot;
  add.out = *sum;
  builder.AddOp(std::move(add));
}

}  // namespace

DhstBlock::DhstBlock(const DhstBlockOptions& options,
                     const Hypergraph& static_graph, Rng& rng)
    : options_(options) {
  DHGCN_CHECK(options.enable_static || options.enable_joint_weight ||
              options.enable_topology);
  DHGCN_CHECK_GT(options.in_channels, 0);
  DHGCN_CHECK_GT(options.out_channels, 0);
  DHGCN_CHECK_GT(options.temporal_stride, 0);
  DHGCN_CHECK_EQ(options.temporal_kernel % 2, 1);  // same-padding needs odd

  Conv2dOptions one_by_one;  // defaults: 1x1, stride 1, no padding
  if (options.enable_static) {
    static_theta_ = std::make_unique<Conv2d>(options.in_channels,
                                             options.out_channels,
                                             one_by_one, rng);
    static_mix_ = std::make_unique<VertexMix>(
        NormalizedHypergraphOperator(static_graph), /*learnable=*/false);
    ++enabled_branches_;
  }
  if (options.enable_joint_weight) {
    weight_theta_ = std::make_unique<Conv2d>(options.in_channels,
                                             options.out_channels,
                                             one_by_one, rng);
    weight_mix_ = std::make_unique<DynamicVertexMix>();
    ++enabled_branches_;
  }
  if (options.enable_topology) {
    topology_map_ = std::make_unique<Conv2d>(options.in_channels,
                                             options.out_channels,
                                             one_by_one, rng);
    topology_mix_ = std::make_unique<DynamicVertexMix>();
    ++enabled_branches_;
  }

  spatial_bn_ = std::make_unique<BatchNorm2d>(options.out_channels);
  if (options.in_channels != options.out_channels) {
    Conv2dOptions residual_options;
    residual_options.has_bias = false;
    spatial_residual_ = std::make_unique<Conv2d>(
        options.in_channels, options.out_channels, residual_options, rng);
  }

  Conv2dOptions temporal_options;
  temporal_options.kernel_h = options.temporal_kernel;
  temporal_options.kernel_w = 1;
  temporal_options.stride_h = options.temporal_stride;
  temporal_options.pad_h =
      options.temporal_dilation * (options.temporal_kernel - 1) / 2;
  temporal_options.dilation_h = options.temporal_dilation;
  temporal_conv_ = std::make_unique<Conv2d>(
      options.out_channels, options.out_channels, temporal_options, rng);
  temporal_bn_ = std::make_unique<BatchNorm2d>(options.out_channels);
  if (options.temporal_stride != 1) {
    Conv2dOptions residual_options;
    residual_options.stride_h = options.temporal_stride;
    residual_options.has_bias = false;
    temporal_residual_ = std::make_unique<Conv2d>(
        options.out_channels, options.out_channels, residual_options, rng);
  }
}

int64_t DhstBlock::OutputFrames(int64_t in_frames) const {
  return (in_frames - 1) / options_.temporal_stride + 1;
}

int64_t DhstBlock::Record(PlanBuilder& builder, int64_t x,
                          int64_t joint_ops) {
  if (training_) return -1;
  const Shape xs = builder.slot_shape(x);
  if (xs.size() != 4 || xs[1] != options_.in_channels) return -1;

  // --- Spatial half: sum of the enabled branches. ---
  int64_t branch_sum = -1;
  if (options_.enable_static) {
    int64_t t = static_theta_->Record(builder, x);
    if (t < 0) return -1;
    int64_t m = static_mix_->Record(builder, t);
    if (m < 0) return -1;
    MergeBranch(builder, m, &branch_sum);
  }
  if (options_.enable_joint_weight) {
    if (joint_ops < 0) return -1;
    const Shape os = builder.slot_shape(joint_ops);
    if (os.size() != 4 || os[0] != xs[0] || os[1] != xs[2] ||
        os[2] != xs[3] || os[3] != xs[3]) {
      return -1;
    }
    int64_t t = weight_theta_->Record(builder, x);
    if (t < 0) return -1;
    MergeBranch(builder,
                RecordDynamicMix(builder, weight_mix_.get(), t, joint_ops),
                &branch_sum);
  }
  if (options_.enable_topology) {
    int64_t mapped = topology_map_->Record(builder, x);
    if (mapped < 0) return -1;
    const Shape ms = builder.slot_shape(mapped);
    PlanOp top;
    top.kind = PlanOpKind::kTopologyOps;
    top.in0 = mapped;
    top.out = builder.AddSlot({ms[0], ms[2], ms[3], ms[3]});
    top.topology = &options_.topology;
    int64_t top_ops = top.out;
    builder.AddOp(std::move(top));
    MergeBranch(
        builder,
        RecordDynamicMix(builder, topology_mix_.get(), mapped, top_ops),
        &branch_sum);
  }
  if (branch_sum < 0) return -1;

  // Residual before BN (see header comment) so [BN, Accumulate, ReLU]
  // stay adjacent for the fuser.
  int64_t s_res = x;
  if (spatial_residual_ != nullptr) {
    s_res = spatial_residual_->Record(builder, x);
    if (s_res < 0) return -1;
  }
  int64_t s_pre = spatial_bn_->Record(builder, branch_sum);
  if (s_pre < 0) return -1;
  PlanOp s_add;
  s_add.kind = PlanOpKind::kAccumulate;
  s_add.in0 = s_res;
  s_add.out = s_pre;
  builder.AddOp(std::move(s_add));
  int64_t s = spatial_relu_.Record(builder, s_pre);
  if (s < 0) return -1;

  // --- Temporal half. ---
  int64_t t_conv = temporal_conv_->Record(builder, s);
  if (t_conv < 0) return -1;
  int64_t t_res = s;
  if (temporal_residual_ != nullptr) {
    t_res = temporal_residual_->Record(builder, s);
    if (t_res < 0) return -1;
  }
  int64_t t_pre = temporal_bn_->Record(builder, t_conv);
  if (t_pre < 0) return -1;
  PlanOp t_add;
  t_add.kind = PlanOpKind::kAccumulate;
  t_add.in0 = t_res;
  t_add.out = t_pre;
  builder.AddOp(std::move(t_add));
  return temporal_relu_.Record(builder, t_pre);
}

Tensor DhstBlock::ForwardImpl(const Tensor& x, const Tensor& joint_ops,
                              Workspace* ws) {
  DHGCN_CHECK_EQ(x.ndim(), 4);
  DHGCN_CHECK_EQ(x.dim(1), options_.in_channels);

  // --- Spatial half: sum of the enabled branches. ---
  Tensor branch_sum;
  bool first = true;
  if (options_.enable_static) {
    Tensor b =
        LayerForward(*static_mix_, LayerForward(*static_theta_, x, ws), ws);
    branch_sum = std::move(b);
    first = false;
  }
  if (options_.enable_joint_weight) {
    DHGCN_CHECK_EQ(joint_ops.ndim(), 4);
    DHGCN_CHECK_EQ(joint_ops.dim(1), x.dim(2));
    weight_mix_->SetOperators(joint_ops);
    Tensor b =
        LayerForward(*weight_mix_, LayerForward(*weight_theta_, x, ws), ws);
    if (first) {
      branch_sum = std::move(b);
      first = false;
    } else {
      AddInPlace(branch_sum, b);
    }
  }
  if (options_.enable_topology) {
    Tensor mapped = LayerForward(*topology_map_, x, ws);
    topology_mix_->SetOperators(
        DynamicTopologyOperators(mapped, options_.topology, ws));
    Tensor b = LayerForward(*topology_mix_, mapped, ws);
    if (first) {
      branch_sum = std::move(b);
      first = false;
    } else {
      AddInPlace(branch_sum, b);
    }
  }

  Tensor s_pre = LayerForward(*spatial_bn_, branch_sum, ws);
  if (spatial_residual_ != nullptr) {
    AddInPlace(s_pre, LayerForward(*spatial_residual_, x, ws));
  } else {
    AddInPlace(s_pre, x);
  }
  Tensor s = LayerForward(spatial_relu_, s_pre, ws);

  // --- Temporal half. ---
  Tensor t_pre =
      LayerForward(*temporal_bn_, LayerForward(*temporal_conv_, s, ws), ws);
  if (temporal_residual_ != nullptr) {
    AddInPlace(t_pre, LayerForward(*temporal_residual_, s, ws));
  } else {
    AddInPlace(t_pre, s);
  }
  return LayerForward(temporal_relu_, t_pre, ws);
}

Tensor DhstBlock::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  Tensor g_tpre = LayerBackward(temporal_relu_, grad_output, ws);
  Tensor g_s = LayerBackward(*temporal_conv_,
                             LayerBackward(*temporal_bn_, g_tpre, ws), ws);
  if (temporal_residual_ != nullptr) {
    AddInPlace(g_s, LayerBackward(*temporal_residual_, g_tpre, ws));
  } else {
    AddInPlace(g_s, g_tpre);
  }

  Tensor g_spre = LayerBackward(spatial_relu_, g_s, ws);
  Tensor g_sum = LayerBackward(*spatial_bn_, g_spre, ws);
  Tensor g_x;
  if (spatial_residual_ != nullptr) {
    g_x = LayerBackward(*spatial_residual_, g_spre, ws);
  } else {
    g_x = NewTensor(ws, g_spre.shape());
    g_x.CopyFrom(g_spre);
  }
  if (options_.enable_static) {
    AddInPlace(g_x, LayerBackward(*static_theta_,
                                  LayerBackward(*static_mix_, g_sum, ws),
                                  ws));
  }
  if (options_.enable_joint_weight) {
    AddInPlace(g_x, LayerBackward(*weight_theta_,
                                  LayerBackward(*weight_mix_, g_sum, ws),
                                  ws));
  }
  if (options_.enable_topology) {
    AddInPlace(g_x, LayerBackward(*topology_map_,
                                  LayerBackward(*topology_mix_, g_sum, ws),
                                  ws));
  }
  return g_x;
}

Tensor DhstBlock::Forward(const Tensor& x, const Tensor& joint_ops) {
  return ForwardImpl(x, joint_ops, nullptr);
}

Tensor DhstBlock::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void DhstBlock::ForwardInto(const Tensor& x, const Tensor& joint_ops,
                            Workspace& ws, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(x, joint_ops, &ws);
}

void DhstBlock::BackwardInto(const Tensor& grad_output, Workspace& ws,
                             Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> DhstBlock::Params() {
  std::vector<ParamRef> params;
  auto append = [&params](const char* prefix, Layer* layer) {
    if (layer == nullptr) return;
    for (ParamRef p : layer->Params()) {
      p.name = std::string(prefix) + "." + p.name;
      params.push_back(p);
    }
  };
  append("static_theta", static_theta_.get());
  append("static_mix", static_mix_.get());
  append("weight_theta", weight_theta_.get());
  append("topology_map", topology_map_.get());
  append("spatial_bn", spatial_bn_.get());
  append("spatial_residual", spatial_residual_.get());
  append("temporal_conv", temporal_conv_.get());
  append("temporal_bn", temporal_bn_.get());
  append("temporal_residual", temporal_residual_.get());
  return params;
}

void DhstBlock::SetTraining(bool training) {
  training_ = training;
  auto set = [training](Layer* layer) {
    if (layer != nullptr) layer->SetTraining(training);
  };
  set(static_theta_.get());
  set(static_mix_.get());
  set(weight_theta_.get());
  set(weight_mix_.get());
  set(topology_map_.get());
  set(topology_mix_.get());
  set(spatial_bn_.get());
  set(spatial_residual_.get());
  set(temporal_conv_.get());
  set(temporal_bn_.get());
  set(temporal_residual_.get());
  spatial_relu_.SetTraining(training);
  temporal_relu_.SetTraining(training);
}

void DhstBlock::ZeroGrad() {
  for (ParamRef& p : Params()) {
    if (p.grad != nullptr) p.grad->Fill(0.0f);
  }
}

int64_t DhstBlock::ParameterCount() {
  int64_t count = 0;
  for (ParamRef& p : Params()) {
    if (p.trainable) count += p.value->numel();
  }
  return count;
}

}  // namespace dhgcn
