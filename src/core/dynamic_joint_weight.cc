#include "core/dynamic_joint_weight.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "hypergraph/hypergraph_conv.h"
#include "tensor/workspace.h"

namespace dhgcn {

Tensor MovingDistances(const Tensor& coords, Workspace* ws) {
  DHGCN_CHECK_EQ(coords.ndim(), 4);
  int64_t n = coords.dim(0), c = coords.dim(1), t = coords.dim(2),
          v = coords.dim(3);
  DHGCN_CHECK_GE(t, 2);
  int64_t coord_channels = std::min<int64_t>(c, 3);
  Tensor dist = NewTensor(ws, {n, t, v});
  const float* px = coords.data();
  float* pd = dist.data();
  int64_t plane = t * v;
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t tt = 1; tt < t; ++tt) {
      for (int64_t j = 0; j < v; ++j) {
        double acc = 0.0;
        for (int64_t ch = 0; ch < coord_channels; ++ch) {
          const float* xplane = px + (b * c + ch) * plane;
          double diff = static_cast<double>(xplane[tt * v + j]) -
                        xplane[(tt - 1) * v + j];
          acc += diff * diff;
        }
        pd[(b * t + tt) * v + j] = static_cast<float>(std::sqrt(acc));
      }
    }
    // Frame 0 copies frame 1 so the first frame is weighted too.
    for (int64_t j = 0; j < v; ++j) {
      pd[(b * t + 0) * v + j] = pd[(b * t + 1) * v + j];
    }
  }
  return dist;
}

Tensor JointWeightIncidence(const Tensor& frame_distances,
                            const Hypergraph& hypergraph, Workspace* ws) {
  DHGCN_CHECK_EQ(frame_distances.ndim(), 1);
  DHGCN_CHECK_EQ(frame_distances.dim(0), hypergraph.num_vertices());
  int64_t num_edges = hypergraph.num_edges();
  Tensor imp = NewZeroedTensor(ws, {hypergraph.num_vertices(), num_edges});
  constexpr float kEps = 1e-6f;
  for (int64_t e = 0; e < num_edges; ++e) {
    const Hyperedge& edge = hypergraph.edges()[static_cast<size_t>(e)];
    double total = 0.0;
    for (int64_t vtx : edge) total += frame_distances.flat(vtx);
    if (total < kEps) {
      // No motion on this hyperedge: uniform share.
      float uniform = 1.0f / static_cast<float>(edge.size());
      for (int64_t vtx : edge) imp.at(vtx, e) = uniform;
    } else {
      for (int64_t vtx : edge) {
        imp.at(vtx, e) =
            static_cast<float>(frame_distances.flat(vtx) / total);
      }
    }
  }
  return imp;
}

Tensor DynamicJointWeightOperators(const Tensor& coords,
                                   const Hypergraph& hypergraph,
                                   Workspace* ws) {
  DHGCN_CHECK_EQ(coords.ndim(), 4);
  int64_t n = coords.dim(0), t = coords.dim(2), v = coords.dim(3);
  DHGCN_CHECK_EQ(v, hypergraph.num_vertices());
  Tensor distances = MovingDistances(coords, ws);  // (N, T, V)
  Tensor ops = NewTensor(ws, {n, t, v, v});
  float* po = ops.data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t tt = 0; tt < t; ++tt) {
      Tensor frame = NewTensor(ws, {v});
      const float* pd = distances.data() + (b * t + tt) * v;
      std::copy(pd, pd + v, frame.data());
      Tensor imp = JointWeightIncidence(frame, hypergraph, ws);
      Tensor op = WeightedIncidenceOperator(imp, ws);  // (V, V)
      std::copy(op.data(), op.data() + v * v, po + (b * t + tt) * v * v);
    }
  }
  return ops;
}

Tensor StrideOperatorsInTime(const Tensor& ops, int64_t stride,
                             Workspace* ws) {
  DHGCN_CHECK_EQ(ops.ndim(), 4);
  DHGCN_CHECK_GT(stride, 0);
  if (stride == 1) return ops;
  int64_t n = ops.dim(0), t = ops.dim(1), v = ops.dim(2);
  int64_t out_t = (t - 1) / stride + 1;
  Tensor out = NewTensor(ws, {n, out_t, v, v});
  const float* pi = ops.data();
  float* po = out.data();
  int64_t mat = v * v;
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t tt = 0; tt < out_t; ++tt) {
      const float* src = pi + (b * t + tt * stride) * mat;
      std::copy(src, src + mat, po + (b * out_t + tt) * mat);
    }
  }
  return out;
}

}  // namespace dhgcn
