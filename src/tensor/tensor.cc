#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "base/string_util.h"

namespace dhgcn {

std::string ShapeToString(const Shape& shape) {
  return StrCat("(", StrJoin(shape, ", "), ")");
}

int64_t ShapeNumel(const Shape& shape) {
  int64_t numel = 1;
  for (int64_t d : shape) {
    DHGCN_CHECK_GE(d, 0);
    numel *= d;
  }
  return numel;
}

bool ShapesEqual(const Shape& a, const Shape& b) { return a == b; }

namespace {

// Backing storage shared by all default-constructed tensors. Immutable:
// Tensor::Detach() swaps in a private copy before any write.
const std::shared_ptr<std::vector<float>>& DefaultScalarBuffer() {
  static const std::shared_ptr<std::vector<float>> buffer =
      std::make_shared<std::vector<float>>(1, 0.0f);
  return buffer;
}

}  // namespace

Tensor::Tensor() : shape_(), numel_(1), data_(DefaultScalarBuffer()) {
  shared_default_ = true;
}

void Tensor::Detach() {
  data_ = std::make_shared<std::vector<float>>(*data_);
  shared_default_ = false;
  ::dhgcn::AllocStats::Record(static_cast<uint64_t>(numel_) * sizeof(float));
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(ShapeNumel(shape_)),
      data_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(numel_), 0.0f)) {
  ::dhgcn::AllocStats::Record(static_cast<uint64_t>(numel_) * sizeof(float));
}

Tensor::Tensor(BorrowTag, Shape shape)
    : shape_(std::move(shape)), numel_(ShapeNumel(shape_)) {}

Tensor Tensor::Borrowed(Shape shape, float* data,
                        std::shared_ptr<const uint64_t> live_epoch,
                        uint64_t borrow_epoch) {
  DHGCN_CHECK(data != nullptr);
  Tensor t(BorrowTag{}, std::move(shape));
  t.borrowed_ = data;
  t.live_epoch_ = std::move(live_epoch);
  t.borrow_epoch_ = borrow_epoch;
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  DHGCN_CHECK_EQ(ShapeNumel(shape), static_cast<int64_t>(values.size()));
  Tensor t(BorrowTag{}, std::move(shape));
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  ::dhgcn::AllocStats::Record(static_cast<uint64_t>(t.numel_) * sizeof(float));
  return t;
}

Tensor Tensor::FromList(std::initializer_list<float> values) {
  return FromVector({static_cast<int64_t>(values.size())},
                    std::vector<float>(values));
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape{}};
  t.flat(0) = value;
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t.flat(i) = rng.Normal(mean, stddev);
  return t;
}

Tensor Tensor::RandomUniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t.flat(i) = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t({n, n});
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::Arange(int64_t count, float start, float step) {
  Tensor t({count});
  float v = start;
  for (int64_t i = 0; i < count; ++i, v += step) t.flat(i) = v;
  return t;
}

int64_t Tensor::dim(int64_t axis) const {
  if (axis < 0) axis += ndim();
  DHGCN_CHECK(axis >= 0 && axis < ndim());
  return shape_[static_cast<size_t>(axis)];
}

int64_t Tensor::Offset(const std::vector<int64_t>& indices) const {
  DHGCN_DCHECK_EQ(static_cast<int64_t>(indices.size()), ndim());
  int64_t offset = 0;
  for (size_t axis = 0; axis < indices.size(); ++axis) {
    DHGCN_DCHECK(indices[axis] >= 0 && indices[axis] < shape_[axis]);
    offset = offset * shape_[axis] + indices[axis];
  }
  return offset;
}

Tensor Tensor::Reshape(Shape new_shape) const {
  int64_t known = 1;
  int64_t infer_axis = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      DHGCN_CHECK_EQ(infer_axis, -1);  // at most one inferred dim
      infer_axis = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    DHGCN_CHECK_GT(known, 0);
    DHGCN_CHECK_EQ(numel_ % known, 0);
    new_shape[static_cast<size_t>(infer_axis)] = numel_ / known;
  }
  DHGCN_CHECK_EQ(ShapeNumel(new_shape), numel_);
  Tensor view = *this;
  view.shape_ = std::move(new_shape);
  return view;
}

Tensor Tensor::Clone() const {
  Tensor copy(BorrowTag{}, shape_);
  const float* src = data();
  copy.data_ = std::make_shared<std::vector<float>>(src, src + numel_);
  ::dhgcn::AllocStats::Record(static_cast<uint64_t>(numel_) * sizeof(float));
  return copy;
}

void Tensor::CopyFrom(const Tensor& src) {
  DHGCN_CHECK(ShapesEqual(shape_, src.shape_));
  const float* from = src.data();
  std::copy(from, from + numel_, data());
}

void Tensor::Fill(float value) {
  float* p = data();
  std::fill(p, p + numel_, value);
}

std::vector<float> Tensor::ToVector() const {
  const float* p = data();
  return std::vector<float>(p, p + numel_);
}

std::string Tensor::ToString(int64_t max_items) const {
  std::ostringstream oss;
  oss << "Tensor" << ShapeToString(shape_) << " [";
  int64_t n = std::min<int64_t>(numel_, max_items);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) oss << ", ";
    oss << flat(i);
  }
  if (n < numel_) oss << ", ...";
  oss << "]";
  return oss.str();
}

AllocStatsSnapshot Tensor::AllocStats() {
  return ::dhgcn::AllocStats::Snapshot();
}

}  // namespace dhgcn
