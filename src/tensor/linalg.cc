#include "tensor/linalg.h"

#include "base/check.h"

namespace dhgcn {

namespace detail {

// Inner kernel: C (M,N) += A (M,K) * B (K,N), all row-major raw pointers.
// i-k-j loop order keeps the innermost scan contiguous in both B and C.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float av = arow[p];
      if (av == 0.0f) continue;  // sparse-ish operands (incidence matrices)
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C (M,N) += A^T (for A (K,M)) * B (K,N); p-i-j order scans A and B rows
// contiguously.
void GemmTransposedAAccumulate(const float* a, const float* b, float* c,
                               int64_t k, int64_t m, int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C (M,N) = or += A (M,K) * B^T (for B (N,K)); each output element is a
// contiguous dot product, accumulated in double.
void GemmTransposedB(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(arow[p]) * brow[p];
      }
      if (accumulate) {
        crow[j] += static_cast<float>(acc);
      } else {
        crow[j] = static_cast<float>(acc);
      }
    }
  }
}

}  // namespace detail

namespace {

using detail::GemmAccumulate;
using detail::GemmTransposedAAccumulate;
using detail::GemmTransposedB;

void ZeroFill(Tensor* out) {
  float* p = out->data();
  for (int64_t i = 0; i < out->numel(); ++i) p[i] = 0.0f;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(0));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  GemmAccumulate(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(0));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(0));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(1));
  if (!accumulate) ZeroFill(out);
  GemmAccumulate(a.data(), b.data(), out->data(), a.dim(0), a.dim(1),
                 b.dim(1));
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 3);
  int64_t n = b.ndim() == 2 ? b.dim(1) : b.dim(2);
  Tensor out({a.dim(0), a.dim(1), n});
  BatchedMatMulInto(a, b, &out, /*accumulate=*/true);  // out is zeroed
  return out;
}

void BatchedMatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                       bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 3);
  int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2);
  const bool shared_b = b.ndim() == 2;
  if (shared_b) {
    DHGCN_CHECK_EQ(b.dim(0), k);
  } else {
    DHGCN_CHECK_EQ(b.ndim(), 3);
    DHGCN_CHECK_EQ(b.dim(0), batch);
    DHGCN_CHECK_EQ(b.dim(1), k);
  }
  int64_t n = shared_b ? b.dim(1) : b.dim(2);
  DHGCN_CHECK_EQ(out->ndim(), 3);
  DHGCN_CHECK_EQ(out->dim(0), batch);
  DHGCN_CHECK_EQ(out->dim(1), m);
  DHGCN_CHECK_EQ(out->dim(2), n);
  if (!accumulate) ZeroFill(out);
  for (int64_t i = 0; i < batch; ++i) {
    const float* bi = shared_b ? b.data() : b.data() + i * k * n;
    GemmAccumulate(a.data() + i * m * k, bi, out->data() + i * m * n, m, k,
                   n);
  }
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(0), b.dim(0));
  Tensor out({a.dim(1), b.dim(1)});
  GemmTransposedAAccumulate(a.data(), b.data(), out.data(), a.dim(0),
                            a.dim(1), b.dim(1));
  return out;
}

void MatMulTransposedAInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(0), b.dim(0));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(1));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(1));
  if (!accumulate) ZeroFill(out);
  GemmTransposedAAccumulate(a.data(), b.data(), out->data(), a.dim(0),
                            a.dim(1), b.dim(1));
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(1));
  Tensor out({a.dim(0), b.dim(0)});
  GemmTransposedB(a.data(), b.data(), out.data(), a.dim(0), a.dim(1),
                  b.dim(0), /*accumulate=*/false);
  return out;
}

void MatMulTransposedBInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(1));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(0));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(0));
  GemmTransposedB(a.data(), b.data(), out->data(), a.dim(0), a.dim(1),
                  b.dim(0), accumulate);
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  MatMulInto(a, b, &out, /*accumulate=*/true);
}

}  // namespace dhgcn
