#include "tensor/linalg.h"

#include <algorithm>

#include "base/check.h"
#include "base/thread_pool.h"

namespace dhgcn {

namespace detail {

// Inner kernel: C (M,N) += A (M,K) * B (K,N), all row-major raw pointers.
// i-k-j loop order keeps the innermost scan contiguous in both B and C.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float av = arow[p];
      if (av == 0.0f) continue;  // sparse-ish operands (incidence matrices)
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Column-range slice of the A^T * B kernel: updates only columns
// [j0, j1) of C. The per-element accumulation order (ascending p) is
// identical to the full kernel, so splitting the column range across
// chunks is bit-exact.
void GemmTransposedAAccumulateCols(const float* a, const float* b, float* c,
                                   int64_t k, int64_t m, int64_t n,
                                   int64_t j0, int64_t j1) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

// C (M,N) += A^T (for A (K,M)) * B (K,N); p-i-j order scans A and B rows
// contiguously.
void GemmTransposedAAccumulate(const float* a, const float* b, float* c,
                               int64_t k, int64_t m, int64_t n) {
  GemmTransposedAAccumulateCols(a, b, c, k, m, n, 0, n);
}

// C (M,N) = or += A (M,K) * B^T (for B (N,K)); each output element is a
// contiguous dot product, accumulated in double.
void GemmTransposedB(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(arow[p]) * brow[p];
      }
      if (accumulate) {
        crow[j] += static_cast<float>(acc);
      } else {
        crow[j] = static_cast<float>(acc);
      }
    }
  }
}

}  // namespace detail

namespace {

using detail::GemmAccumulate;
using detail::GemmTransposedAAccumulateCols;
using detail::GemmTransposedB;

void ZeroFill(Tensor* out) {
  float* p = out->data();
  for (int64_t i = 0; i < out->numel(); ++i) p[i] = 0.0f;
}

// Shared core of MatMul/MatMulInto: row chunks of the output are
// disjoint, each computed by the exact serial kernel.
void ParallelGemm(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  ThreadPool::Get().ParallelFor(
      0, m, GrainForFlops(k * n), [&](int64_t r0, int64_t r1) {
        GemmAccumulate(a + r0 * k, b, c + r0 * n, r1 - r0, k, n);
      });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(0));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  ParallelGemm(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(0));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(0));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(1));
  if (!accumulate) ZeroFill(out);
  ParallelGemm(a.data(), b.data(), out->data(), a.dim(0), a.dim(1),
               b.dim(1));
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 3);
  int64_t n = b.ndim() == 2 ? b.dim(1) : b.dim(2);
  Tensor out({a.dim(0), a.dim(1), n});
  BatchedMatMulInto(a, b, &out, /*accumulate=*/true);  // out is zeroed
  return out;
}

void BatchedMatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                       bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 3);
  int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2);
  const bool shared_b = b.ndim() == 2;
  if (shared_b) {
    DHGCN_CHECK_EQ(b.dim(0), k);
  } else {
    DHGCN_CHECK_EQ(b.ndim(), 3);
    DHGCN_CHECK_EQ(b.dim(0), batch);
    DHGCN_CHECK_EQ(b.dim(1), k);
  }
  int64_t n = shared_b ? b.dim(1) : b.dim(2);
  DHGCN_CHECK_EQ(out->ndim(), 3);
  DHGCN_CHECK_EQ(out->dim(0), batch);
  DHGCN_CHECK_EQ(out->dim(1), m);
  DHGCN_CHECK_EQ(out->dim(2), n);
  if (!accumulate) ZeroFill(out);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  // Flattened (batch * m) output rows; row r of the flat view is row
  // r % m of batch r / m, so chunks never straddle operand layout.
  ThreadPool::Get().ParallelFor(
      0, batch * m, GrainForFlops(k * n), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* bi =
              shared_b ? pb : pb + (r / m) * k * n;
          GemmAccumulate(pa + r * k, bi, pc + r * n, 1, k, n);
        }
      });
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(0), b.dim(0));
  Tensor out({a.dim(1), b.dim(1)});
  MatMulTransposedAInto(a, b, &out, /*accumulate=*/true);  // out is zeroed
  return out;
}

void MatMulTransposedAInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(0), b.dim(0));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(1));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(1));
  if (!accumulate) ZeroFill(out);
  int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  // Column chunks of the output are disjoint; every chunk scans all of
  // A, so grain targets the per-column work (k * m accumulations).
  ThreadPool::Get().ParallelFor(
      0, n, GrainForFlops(k * m), [&](int64_t j0, int64_t j1) {
        GemmTransposedAAccumulateCols(pa, pb, pc, k, m, n, j0, j1);
      });
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(1));
  Tensor out({a.dim(0), b.dim(0)});
  MatMulTransposedBInto(a, b, &out, /*accumulate=*/false);
  return out;
}

void MatMulTransposedBInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(1));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(0));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(0));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  ThreadPool::Get().ParallelFor(
      0, m, GrainForFlops(k * n), [&](int64_t r0, int64_t r1) {
        GemmTransposedB(pa + r0 * k, pb, pc + r0 * n, r1 - r0, k, n,
                        accumulate);
      });
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  MatMulInto(a, b, &out, /*accumulate=*/true);
}

}  // namespace dhgcn
