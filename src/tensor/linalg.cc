#include "tensor/linalg.h"

#include <algorithm>

#include "base/check.h"
#include "base/thread_pool.h"
#include "tensor/gemm_kernel.h"
#include "tensor/workspace.h"

namespace dhgcn {

namespace detail {

// Dense row kernel: C (M,N) += A (M,K) * B (K,N), all row-major raw
// pointers. i-k-j loop order keeps the innermost scan contiguous in both
// B and C, and the body is branch-free so it vectorizes cleanly. Used
// for shapes below the blocked-kernel threshold and for single rows.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// The original kernel, zero-skip included: the GemmHint::kSparse path
// for incidence-style operands, and the reference the equivalence tests
// measure the blocked kernel against. Per-element accumulation order is
// identical to GemmAccumulate (the skip only elides exact-zero terms).
void GemmReferenceAccumulate(const float* a, const float* b, float* c,
                             int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float av = arow[p];
      if (av == 0.0f) continue;  // sparse-ish operands (incidence matrices)
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Column-range slice of the A^T * B kernel: updates only columns
// [j0, j1) of C. The per-element accumulation order (ascending p) is
// identical to the full kernel, so splitting the column range across
// chunks is bit-exact.
void GemmTransposedAAccumulateCols(const float* a, const float* b, float* c,
                                   int64_t k, int64_t m, int64_t n,
                                   int64_t j0, int64_t j1) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

// C (M,N) += A^T (for A (K,M)) * B (K,N); p-i-j order scans A and B rows
// contiguously.
void GemmTransposedAAccumulate(const float* a, const float* b, float* c,
                               int64_t k, int64_t m, int64_t n) {
  GemmTransposedAAccumulateCols(a, b, c, k, m, n, 0, n);
}

// C (M,N) = or += A (M,K) * B^T (for B (N,K)); each output element is a
// contiguous dot product, accumulated in double. Deliberately not
// routed through the blocked kernel: weight gradients and loss-path
// reductions lean on the extra precision.
void GemmTransposedB(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(arow[p]) * brow[p];
      }
      if (accumulate) {
        crow[j] += static_cast<float>(acc);
      } else {
        crow[j] = static_cast<float>(acc);
      }
    }
  }
}

}  // namespace detail

namespace {

using detail::GemmAccumulate;
using detail::GemmTransposedAAccumulateCols;
using detail::GemmTransposedB;
using detail::kGemmMR;

void ZeroFill(Tensor* out) {
  float* p = out->data();
  for (int64_t i = 0; i < out->numel(); ++i) p[i] = 0.0f;
}

// Blocked core: packs B into panels staged in the process-wide scratch
// arena (zero owning allocations in steady state), then hands kGemmMR-row
// blocks of C to the pool. Chunk boundaries fall on row-tile multiples —
// a pure function of shape — and each C element's accumulation order is
// fixed by (k, n) alone, so results are bit-identical for every thread
// count. Must run on the driving thread (the pack scratch is not
// task-safe), which ParallelFor's no-nesting rule already guarantees.
void ParallelGemmBlocked(const float* a, const float* b, float* c, int64_t m,
                         int64_t k, int64_t n) {
  Workspace& scratch = detail::GemmPackScratch();
  Tensor bp = scratch.Acquire({detail::GemmPackedBCount(k, n)});
  float* pbp = bp.data();
  detail::GemmPackB(b, k, n, pbp);
  const int64_t row_blocks = (m + kGemmMR - 1) / kGemmMR;
  ThreadPool::Get().ParallelFor(
      0, row_blocks,
      GrainForFlopsTarget(kGemmMR * k * n, detail::kGemmChunkFlops),
      [&](int64_t b0, int64_t b1) {
        const int64_t r0 = b0 * kGemmMR;
        const int64_t r1 = std::min(m, b1 * kGemmMR);
        detail::GemmBlockedPackedB(a + r0 * k, pbp, c + r0 * n, r1 - r0, k,
                                   n);
      });
  scratch.Reset();
}

// Shared core of MatMul/MatMulInto: row chunks of the output are
// disjoint, each computed by the exact serial kernel.
void ParallelGemm(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, GemmHint hint) {
  if (hint == GemmHint::kSparse) {
    // Zero-skipping row kernel; packing would densify the operand.
    ThreadPool::Get().ParallelFor(
        0, m, GrainForFlops(k * n), [&](int64_t r0, int64_t r1) {
          detail::GemmReferenceAccumulate(a + r0 * k, b, c + r0 * n, r1 - r0,
                                          k, n);
        });
    return;
  }
  if (detail::GemmUseBlocked(m, k, n)) {
    ParallelGemmBlocked(a, b, c, m, k, n);
    return;
  }
  ThreadPool::Get().ParallelFor(
      0, m, GrainForFlops(k * n), [&](int64_t r0, int64_t r1) {
        GemmAccumulate(a + r0 * k, b, c + r0 * n, r1 - r0, k, n);
      });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(0));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  ParallelGemm(a.data(), b.data(), out.data(), m, k, n, GemmHint::kDense);
  return out;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                bool accumulate, GemmHint hint) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(0));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(0));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(1));
  if (!accumulate) ZeroFill(out);
  ParallelGemm(a.data(), b.data(), out->data(), a.dim(0), a.dim(1), b.dim(1),
               hint);
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 3);
  int64_t n = b.ndim() == 2 ? b.dim(1) : b.dim(2);
  Tensor out({a.dim(0), a.dim(1), n});
  BatchedMatMulInto(a, b, &out, /*accumulate=*/true);  // out is zeroed
  return out;
}

void BatchedMatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                       bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 3);
  int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2);
  const bool shared_b = b.ndim() == 2;
  if (shared_b) {
    DHGCN_CHECK_EQ(b.dim(0), k);
  } else {
    DHGCN_CHECK_EQ(b.ndim(), 3);
    DHGCN_CHECK_EQ(b.dim(0), batch);
    DHGCN_CHECK_EQ(b.dim(1), k);
  }
  int64_t n = shared_b ? b.dim(1) : b.dim(2);
  DHGCN_CHECK_EQ(out->ndim(), 3);
  DHGCN_CHECK_EQ(out->dim(0), batch);
  DHGCN_CHECK_EQ(out->dim(1), m);
  DHGCN_CHECK_EQ(out->dim(2), n);
  if (!accumulate) ZeroFill(out);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  if (shared_b && detail::GemmUseBlocked(m, k, n)) {
    // One packed copy of the broadcast B serves every batch. Work items
    // are kGemmMR-row tiles of the flattened (batch * m) output; tiles
    // never straddle a batch, so each maps to one plain blocked GEMM.
    Workspace& scratch = detail::GemmPackScratch();
    Tensor bpacked = scratch.Acquire({detail::GemmPackedBCount(k, n)});
    float* pbp = bpacked.data();
    detail::GemmPackB(pb, k, n, pbp);
    const int64_t blocks_per_batch = (m + kGemmMR - 1) / kGemmMR;
    ThreadPool::Get().ParallelFor(
        0, batch * blocks_per_batch,
        GrainForFlopsTarget(kGemmMR * k * n, detail::kGemmChunkFlops),
        [&](int64_t t0, int64_t t1) {
          for (int64_t t = t0; t < t1; ++t) {
            const int64_t bi = t / blocks_per_batch;
            const int64_t r0 = (t % blocks_per_batch) * kGemmMR;
            const int64_t r1 = std::min(m, r0 + kGemmMR);
            detail::GemmBlockedPackedB(pa + (bi * m + r0) * k, pbp,
                                       pc + (bi * m + r0) * n, r1 - r0, k,
                                       n);
          }
        });
    scratch.Reset();
    return;
  }
  // Flattened (batch * m) output rows; row r of the flat view is row
  // r % m of batch r / m, so chunks never straddle operand layout.
  ThreadPool::Get().ParallelFor(
      0, batch * m, GrainForFlops(k * n), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* bi =
              shared_b ? pb : pb + (r / m) * k * n;
          GemmAccumulate(pa + r * k, bi, pc + r * n, 1, k, n);
        }
      });
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(0), b.dim(0));
  Tensor out({a.dim(1), b.dim(1)});
  MatMulTransposedAInto(a, b, &out, /*accumulate=*/true);  // out is zeroed
  return out;
}

void MatMulTransposedAInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(0), b.dim(0));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(1));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(1));
  if (!accumulate) ZeroFill(out);
  int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  if (detail::GemmUseBlocked(m, k, n)) {
    // Transpose-pack A so the blocked kernel reads it with unit stride,
    // then run the same row-tile split as the plain product.
    Workspace& scratch = detail::GemmPackScratch();
    Tensor at = scratch.Acquire({m, k});
    Tensor bp = scratch.Acquire({detail::GemmPackedBCount(k, n)});
    float* pat = at.data();
    float* pbp = bp.data();
    detail::GemmPackTransposed(pa, k, m, pat);
    detail::GemmPackB(pb, k, n, pbp);
    const int64_t row_blocks = (m + kGemmMR - 1) / kGemmMR;
    ThreadPool::Get().ParallelFor(
        0, row_blocks,
        GrainForFlopsTarget(kGemmMR * k * n, detail::kGemmChunkFlops),
        [&](int64_t b0, int64_t b1) {
          const int64_t r0 = b0 * kGemmMR;
          const int64_t r1 = std::min(m, b1 * kGemmMR);
          detail::GemmBlockedPackedB(pat + r0 * k, pbp, pc + r0 * n, r1 - r0,
                                     k, n);
        });
    scratch.Reset();
    return;
  }
  // Column chunks of the output are disjoint; every chunk scans all of
  // A, so grain targets the per-column work (k * m accumulations).
  ThreadPool::Get().ParallelFor(
      0, n, GrainForFlops(k * m), [&](int64_t j0, int64_t j1) {
        GemmTransposedAAccumulateCols(pa, pb, pc, k, m, n, j0, j1);
      });
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(1));
  Tensor out({a.dim(0), b.dim(0)});
  MatMulTransposedBInto(a, b, &out, /*accumulate=*/false);
  return out;
}

void MatMulTransposedBInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(1));
  DHGCN_CHECK_EQ(out->ndim(), 2);
  DHGCN_CHECK_EQ(out->dim(0), a.dim(0));
  DHGCN_CHECK_EQ(out->dim(1), b.dim(0));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  ThreadPool::Get().ParallelFor(
      0, m, GrainForFlops(k * n), [&](int64_t r0, int64_t r1) {
        GemmTransposedB(pa + r0 * k, pb, pc + r0 * n, r1 - r0, k, n,
                        accumulate);
      });
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  MatMulInto(a, b, &out, /*accumulate=*/true);
}

}  // namespace dhgcn
