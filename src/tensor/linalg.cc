#include "tensor/linalg.h"

#include "base/check.h"

namespace dhgcn {

namespace {

// Inner kernel: C (M,N) += A (M,K) * B (K,N), all row-major raw pointers.
// i-k-j loop order keeps the innermost scan contiguous in both B and C.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float av = arow[p];
      if (av == 0.0f) continue;  // sparse-ish operands (incidence matrices)
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(0));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  GemmAccumulate(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 3);
  int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2);
  if (b.ndim() == 2) {
    DHGCN_CHECK_EQ(b.dim(0), k);
    int64_t n = b.dim(1);
    Tensor out({batch, m, n});
    for (int64_t i = 0; i < batch; ++i) {
      GemmAccumulate(a.data() + i * m * k, b.data(),
                     out.data() + i * m * n, m, k, n);
    }
    return out;
  }
  DHGCN_CHECK_EQ(b.ndim(), 3);
  DHGCN_CHECK_EQ(b.dim(0), batch);
  DHGCN_CHECK_EQ(b.dim(1), k);
  int64_t n = b.dim(2);
  Tensor out({batch, m, n});
  for (int64_t i = 0; i < batch; ++i) {
    GemmAccumulate(a.data() + i * m * k, b.data() + i * k * n,
                   out.data() + i * m * n, m, k, n);
  }
  return out;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(0), b.dim(0));
  int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  float* c = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (int64_t i = 0; i < m; ++i) {
      float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(1));
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  float* c = out.data();
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(arow[p]) * brow[p];
      }
      crow[j] = static_cast<float>(acc);
    }
  }
  return out;
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(out.ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.dim(0));
  DHGCN_CHECK_EQ(out.dim(0), a.dim(0));
  DHGCN_CHECK_EQ(out.dim(1), b.dim(1));
  GemmAccumulate(a.data(), b.data(), out.data(), a.dim(0), a.dim(1),
                 b.dim(1));
}

}  // namespace dhgcn
