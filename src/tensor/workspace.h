#ifndef DHGCN_TENSOR_WORKSPACE_H_
#define DHGCN_TENSOR_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Bump-allocator arena backing transient (activation) tensors.
///
/// `Acquire` hands out 64-byte-aligned slices of large heap blocks as
/// borrowed `Tensor`s; `Reset()` rewinds the whole arena in O(1) at a
/// step boundary so the next step reuses the same memory. The arena
/// grows by appending blocks (each at least doubling total capacity);
/// `Reset()` coalesces multiple blocks into one, so after a warmup step
/// or two the steady state is a single block and zero heap traffic.
///
/// Lifetime rule: a borrowed tensor must not outlive the `Reset()` (or
/// destruction) of its arena. This is enforced, not just documented —
/// every `Reset()` advances an epoch counter that borrowed tensors
/// validate on access, so use-after-reset aborts deterministically
/// instead of silently reading recycled memory.
///
/// Not thread-safe: one Workspace per trainer/evaluator thread.
class Workspace {
 public:
  /// Alignment of every handed-out buffer, in bytes.
  static constexpr size_t kAlignment = 64;

  /// `initial_bytes` pre-reserves capacity (0 = grow on demand).
  explicit Workspace(size_t initial_bytes = 0);
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Borrows an **uninitialized** tensor from the arena. The caller
  /// must overwrite every element before reading. Discarding the
  /// returned borrow leaks arena bytes until the next Reset().
  [[nodiscard]] Tensor Acquire(Shape shape);

  /// Borrows a zero-filled tensor (for accumulation kernels).
  [[nodiscard]] Tensor AcquireZeroed(Shape shape);

  /// Pre-reserves a single contiguous block of at least `bytes` so
  /// fixed-offset borrows (`BorrowAt`) stay stable for the arena's
  /// lifetime. Must be called while nothing is handed out
  /// (`bytes_in_use() == 0`); existing borrows are invalidated (the
  /// epoch advances) when the backing storage is replaced.
  void ReservePinned(size_t bytes);

  /// Borrows a tensor of `shape` at fixed byte `offset` into the single
  /// backing block (offset must be kAlignment-aligned and in range).
  /// Unlike `Acquire` this does not advance the bump pointer — callers
  /// own the offset map (execution plans resolve offsets at build
  /// time). The borrow stays valid until the next Reset()/destruction.
  [[nodiscard]] Tensor BorrowAt(size_t offset, Shape shape);

  /// Invalidates all outstanding borrows, rewinds the bump pointer and
  /// coalesces multi-block arenas into a single block of the combined
  /// capacity. Steady state (capacity sufficient): no heap activity.
  void Reset();

  /// Bytes currently handed out (aligned) since the last Reset.
  size_t bytes_in_use() const { return bytes_in_use_; }
  /// High-water mark of bytes_in_use() over the arena's lifetime
  /// (never rewound by Reset). Lets callers compare dynamic-path
  /// working sets against static plan offset packing.
  size_t PeakBytes() const { return peak_bytes_; }
  /// Total bytes owned by the arena across all blocks.
  size_t capacity_bytes() const;
  /// Number of backing blocks (1 in steady state).
  size_t block_count() const { return blocks_.size(); }
  /// Current borrow epoch (advances on every Reset).
  uint64_t epoch() const { return *live_epoch_; }

 private:
  struct Block {
    float* data = nullptr;
    size_t capacity_bytes = 0;
    size_t used_bytes = 0;
  };

  static float* AllocateBlock(size_t bytes);
  static void FreeBlock(float* data);

  /// Returns an aligned slice of `bytes` bytes, growing the arena when
  /// the current block cannot fit it.
  float* AllocateBytes(size_t bytes);

  std::vector<Block> blocks_;
  size_t bytes_in_use_ = 0;
  size_t peak_bytes_ = 0;
  std::shared_ptr<uint64_t> live_epoch_;
};

/// \brief Borrows an uninitialized tensor from `ws`, or allocates a
/// fresh owning (zeroed) tensor when `ws` is null. The shared-impl
/// layers use this so one kernel serves both the legacy and the
/// workspace path; callers must fully overwrite the buffer.
[[nodiscard]] Tensor NewTensor(Workspace* ws, Shape shape);

/// \brief Like NewTensor but zero-filled in both modes — for kernels
/// that accumulate with `+=`.
[[nodiscard]] Tensor NewZeroedTensor(Workspace* ws, Shape shape);

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_WORKSPACE_H_
