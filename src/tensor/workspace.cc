#include "tensor/workspace.h"

#include <algorithm>
#include <new>

#include "base/check.h"

namespace dhgcn {
namespace {

constexpr size_t kMinBlockBytes = size_t{1} << 16;  // 64 KiB

size_t AlignUp(size_t bytes) {
  return (bytes + Workspace::kAlignment - 1) & ~(Workspace::kAlignment - 1);
}

}  // namespace

Workspace::Workspace(size_t initial_bytes)
    : live_epoch_(std::make_shared<uint64_t>(1)) {
  if (initial_bytes > 0) {
    size_t bytes = AlignUp(std::max(initial_bytes, kMinBlockBytes));
    blocks_.push_back(Block{AllocateBlock(bytes), bytes, 0});
  }
}

Workspace::~Workspace() {
  // Invalidate any borrows that (incorrectly) outlive the arena: the
  // epoch cell itself stays alive through the tensors' shared_ptr, so
  // their next access trips the liveness check instead of reading
  // freed memory.
  ++*live_epoch_;
  for (Block& block : blocks_) FreeBlock(block.data);
}

float* Workspace::AllocateBlock(size_t bytes) {
  // lint: allow-naked-new — the arena IS the owner; raw aligned storage.
  return static_cast<float*>(
      ::operator new(bytes, std::align_val_t(kAlignment)));
}

void Workspace::FreeBlock(float* data) {
  ::operator delete(data, std::align_val_t(kAlignment));
}

float* Workspace::AllocateBytes(size_t bytes) {
  bytes = AlignUp(std::max<size_t>(bytes, 1));
  if (blocks_.empty() ||
      blocks_.back().used_bytes + bytes > blocks_.back().capacity_bytes) {
    // Grow: the new block at least doubles total capacity so the number
    // of growth events is logarithmic in the peak working set.
    size_t grow = std::max({bytes, capacity_bytes(), kMinBlockBytes});
    blocks_.push_back(Block{AllocateBlock(grow), grow, 0});
  }
  Block& block = blocks_.back();
  float* out = reinterpret_cast<float*>(
      reinterpret_cast<char*>(block.data) + block.used_bytes);
  block.used_bytes += bytes;
  bytes_in_use_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, bytes_in_use_);
  return out;
}

void Workspace::ReservePinned(size_t bytes) {
  DHGCN_CHECK(bytes_in_use_ == 0);
  bytes = AlignUp(std::max(bytes, size_t{1}));
  if (blocks_.size() == 1 && blocks_[0].capacity_bytes >= bytes) return;
  ++*live_epoch_;
  for (Block& block : blocks_) FreeBlock(block.data);
  blocks_.clear();
  blocks_.push_back(Block{AllocateBlock(bytes), bytes, 0});
}

Tensor Workspace::BorrowAt(size_t offset, Shape shape) {
  DHGCN_CHECK(blocks_.size() == 1);
  DHGCN_CHECK(offset % kAlignment == 0);
  size_t bytes = static_cast<size_t>(ShapeNumel(shape)) * sizeof(float);
  DHGCN_CHECK(offset + bytes <= blocks_[0].capacity_bytes);
  float* data = reinterpret_cast<float*>(
      reinterpret_cast<char*>(blocks_[0].data) + offset);
  return Tensor::Borrowed(std::move(shape), data, live_epoch_, *live_epoch_);
}

Tensor Workspace::Acquire(Shape shape) {
  int64_t numel = ShapeNumel(shape);
  float* data =
      AllocateBytes(static_cast<size_t>(numel) * sizeof(float));
  return Tensor::Borrowed(std::move(shape), data, live_epoch_, *live_epoch_);
}

Tensor Workspace::AcquireZeroed(Shape shape) {
  Tensor t = Acquire(std::move(shape));
  std::fill(t.data(), t.data() + t.numel(), 0.0f);
  return t;
}

void Workspace::Reset() {
  ++*live_epoch_;
  bytes_in_use_ = 0;
  if (blocks_.size() > 1) {
    // Coalesce into one block of the combined capacity so steady state
    // is a single allocation-free bump region.
    size_t total = capacity_bytes();
    for (Block& block : blocks_) FreeBlock(block.data);
    blocks_.clear();
    blocks_.push_back(Block{AllocateBlock(total), total, 0});
  } else if (!blocks_.empty()) {
    blocks_.back().used_bytes = 0;
  }
}

size_t Workspace::capacity_bytes() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity_bytes;
  return total;
}

Tensor NewTensor(Workspace* ws, Shape shape) {
  if (ws != nullptr) return ws->Acquire(std::move(shape));
  return Tensor(std::move(shape));
}

Tensor NewZeroedTensor(Workspace* ws, Shape shape) {
  if (ws != nullptr) return ws->AcquireZeroed(std::move(shape));
  return Tensor(std::move(shape));
}

}  // namespace dhgcn
