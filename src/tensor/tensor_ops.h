#ifndef DHGCN_TENSOR_TENSOR_OPS_H_
#define DHGCN_TENSOR_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace dhgcn {

// ---------------------------------------------------------------------------
// Elementwise binary operations (NumPy-style broadcasting).
//
// Two shapes broadcast if, aligning from the trailing axis, each pair of
// dimensions is equal or one of them is 1. Shape mismatches are programming
// errors and abort via DHGCN_CHECK; model entry points validate user input
// with Status before reaching these kernels.
//
// Each op comes in three flavors:
//  - allocating (`Add(a, b)`) — returns a fresh owning tensor;
//  - out-parameter (`AddInto(a, b, &out)`) — writes into caller storage
//    (typically workspace-borrowed), allocation-free;
//  - templated (`BinaryOpT(a, b, functor)` / `BinaryOpInto(...)`) — the
//    underlying kernels, statically dispatched so the per-element call
//    inlines. The `std::function` overloads below are thin wrappers kept
//    for API compatibility.
//
// Into-variant contract (all ops): `out` must be non-null and already
// have the exact result shape, and must not alias an input unless every
// shape involved matches exactly (pure elementwise pass).
// ---------------------------------------------------------------------------

/// Returns the broadcasted result shape; aborts when not broadcastable.
Shape BroadcastShapes(const Shape& a, const Shape& b);
/// True when the two shapes are broadcast-compatible.
bool CanBroadcast(const Shape& a, const Shape& b);

namespace detail {
/// Row-major strides for a shape, with stride 0 on broadcasted (size-1)
/// axes relative to an output rank; `shape` is right-aligned in `out_rank`.
std::vector<int64_t> BroadcastStrides(const Shape& shape, size_t out_rank,
                                      const Shape& out_shape);
}  // namespace detail

/// Broadcasted elementwise combine into `*out` (statically dispatched).
template <typename Op>
void BinaryOpInto(const Tensor& a, const Tensor& b, Op op, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  // Fast path: identical shapes.
  if (ShapesEqual(a.shape(), b.shape())) {
    DHGCN_CHECK(ShapesEqual(out->shape(), a.shape()));
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out->data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = op(pa[i], pb[i]);
    return;
  }
  Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  DHGCN_CHECK(ShapesEqual(out->shape(), out_shape));
  size_t rank = out_shape.size();
  std::vector<int64_t> sa = detail::BroadcastStrides(a.shape(), rank,
                                                     out_shape);
  std::vector<int64_t> sb = detail::BroadcastStrides(b.shape(), rank,
                                                     out_shape);
  std::vector<int64_t> index(rank, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  int64_t oa = 0, ob = 0;
  const int64_t n = out->numel();
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = op(pa[oa], pb[ob]);
    // Odometer increment from the last axis.
    for (size_t axis = rank; axis-- > 0;) {
      ++index[axis];
      oa += sa[axis];
      ob += sb[axis];
      if (index[axis] < out_shape[axis]) break;
      oa -= sa[axis] * out_shape[axis];
      ob -= sb[axis] * out_shape[axis];
      index[axis] = 0;
    }
  }
}

/// Broadcasted elementwise combine returning a fresh tensor.
template <typename Op>
Tensor BinaryOpT(const Tensor& a, const Tensor& b, Op op) {
  Tensor out(BroadcastShapes(a.shape(), b.shape()));
  BinaryOpInto(a, b, op, &out);
  return out;
}

/// Elementwise map into `*out` (statically dispatched).
template <typename Op>
void UnaryOpInto(const Tensor& a, Op op, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK(ShapesEqual(out->shape(), a.shape()));
  const float* pa = a.data();
  float* po = out->data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = op(pa[i]);
}

/// Elementwise map returning a fresh tensor.
template <typename Op>
Tensor UnaryOpT(const Tensor& a, Op op) {
  Tensor out(a.shape());
  UnaryOpInto(a, op, &out);
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

// Out-parameter variants (see contract above).
void AddInto(const Tensor& a, const Tensor& b, Tensor* out);
void SubInto(const Tensor& a, const Tensor& b, Tensor* out);
void MulInto(const Tensor& a, const Tensor& b, Tensor* out);
void DivInto(const Tensor& a, const Tensor& b, Tensor* out);

/// Generic broadcasted elementwise combine (type-erased wrapper around
/// BinaryOpT; prefer the templated form in hot code).
Tensor BinaryOp(const Tensor& a, const Tensor& b,
                const std::function<float(float, float)>& op);

// In-place (no broadcasting; shapes must match exactly).
void AddInPlace(Tensor& a, const Tensor& b);
void SubInPlace(Tensor& a, const Tensor& b);
void MulInPlace(Tensor& a, const Tensor& b);
/// a += alpha * b (shapes must match).
void Axpy(float alpha, const Tensor& b, Tensor& a);

// Scalar variants.
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
void MulScalarInPlace(Tensor& a, float s);
void MulScalarInto(const Tensor& a, float s, Tensor* out);

// ---------------------------------------------------------------------------
// Elementwise unary operations.
// ---------------------------------------------------------------------------

/// Type-erased wrapper around UnaryOpT; prefer the templated form in hot
/// code.
Tensor UnaryOp(const Tensor& a, const std::function<float(float)>& op);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);

void ExpInto(const Tensor& a, Tensor* out);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

/// Sum over `axis`; `keepdim` keeps a size-1 axis in the output shape.
Tensor ReduceSum(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor ReduceMean(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor ReduceMax(const Tensor& a, int64_t axis, bool keepdim = false);

/// Sum over `axis` into `*out`, which must have the reduced shape.
void ReduceSumInto(const Tensor& a, int64_t axis, bool keepdim, Tensor* out);

/// Index of the maximum along `axis` (ties -> lowest index), returned as
/// float values in a tensor whose shape drops `axis`.
Tensor ArgMax(const Tensor& a, int64_t axis);

// ---------------------------------------------------------------------------
// Normalization-style ops.
// ---------------------------------------------------------------------------

/// Numerically-stable softmax along `axis`.
Tensor Softmax(const Tensor& a, int64_t axis);
/// Numerically-stable log-softmax along `axis`.
Tensor LogSoftmax(const Tensor& a, int64_t axis);
void SoftmaxInto(const Tensor& a, int64_t axis, Tensor* out);
void LogSoftmaxInto(const Tensor& a, int64_t axis, Tensor* out);

// ---------------------------------------------------------------------------
// Shape/layout ops.
// ---------------------------------------------------------------------------

/// Permutes axes; `perm` is a permutation of {0, ..., ndim-1}.
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);
/// Permute into `*out` (shape must equal the permuted shape; no aliasing).
void PermuteInto(const Tensor& a, const std::vector<int64_t>& perm,
                 Tensor* out);
/// 2-D transpose.
Tensor Transpose2D(const Tensor& a);
/// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
/// Slices [start, start+length) along `axis`.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t length);
/// Slice into `*out` (shape must equal the sliced shape).
void SliceInto(const Tensor& a, int64_t axis, int64_t start, int64_t length,
               Tensor* out);
/// Stacks equal-shaped tensors along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);

/// Broadcasts `a` to `target` shape (copying).
Tensor BroadcastTo(const Tensor& a, const Shape& target);

/// Sums a gradient tensor of broadcasted shape back down to `target` shape.
/// This is the adjoint of BroadcastTo and is used by layer backward passes.
Tensor ReduceToShape(const Tensor& grad, const Shape& target);

// ---------------------------------------------------------------------------
// Comparisons and scalar queries.
// ---------------------------------------------------------------------------

/// True when all elements differ by at most `atol + rtol * |b|`.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);
/// True when any element is NaN or infinite.
bool HasNonFinite(const Tensor& a);
/// L2 norm over all elements.
float Norm2(const Tensor& a);
/// Dot product of the flattened tensors (shapes must have equal numel).
float Dot(const Tensor& a, const Tensor& b);

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_TENSOR_OPS_H_
