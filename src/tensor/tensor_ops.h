#ifndef DHGCN_TENSOR_TENSOR_OPS_H_
#define DHGCN_TENSOR_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace dhgcn {

// ---------------------------------------------------------------------------
// Elementwise binary operations (NumPy-style broadcasting).
//
// Two shapes broadcast if, aligning from the trailing axis, each pair of
// dimensions is equal or one of them is 1. Shape mismatches are programming
// errors and abort via DHGCN_CHECK; model entry points validate user input
// with Status before reaching these kernels.
// ---------------------------------------------------------------------------

/// Returns the broadcasted result shape; aborts when not broadcastable.
Shape BroadcastShapes(const Shape& a, const Shape& b);
/// True when the two shapes are broadcast-compatible.
bool CanBroadcast(const Shape& a, const Shape& b);

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

/// Generic broadcasted elementwise combine.
Tensor BinaryOp(const Tensor& a, const Tensor& b,
                const std::function<float(float, float)>& op);

// In-place (no broadcasting; shapes must match exactly).
void AddInPlace(Tensor& a, const Tensor& b);
void SubInPlace(Tensor& a, const Tensor& b);
void MulInPlace(Tensor& a, const Tensor& b);
/// a += alpha * b (shapes must match).
void Axpy(float alpha, const Tensor& b, Tensor& a);

// Scalar variants.
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
void MulScalarInPlace(Tensor& a, float s);

// ---------------------------------------------------------------------------
// Elementwise unary operations.
// ---------------------------------------------------------------------------

Tensor UnaryOp(const Tensor& a, const std::function<float(float)>& op);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

/// Sum over `axis`; `keepdim` keeps a size-1 axis in the output shape.
Tensor ReduceSum(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor ReduceMean(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor ReduceMax(const Tensor& a, int64_t axis, bool keepdim = false);

/// Index of the maximum along `axis` (ties -> lowest index), returned as
/// float values in a tensor whose shape drops `axis`.
Tensor ArgMax(const Tensor& a, int64_t axis);

// ---------------------------------------------------------------------------
// Normalization-style ops.
// ---------------------------------------------------------------------------

/// Numerically-stable softmax along `axis`.
Tensor Softmax(const Tensor& a, int64_t axis);
/// Numerically-stable log-softmax along `axis`.
Tensor LogSoftmax(const Tensor& a, int64_t axis);

// ---------------------------------------------------------------------------
// Shape/layout ops.
// ---------------------------------------------------------------------------

/// Permutes axes; `perm` is a permutation of {0, ..., ndim-1}.
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);
/// 2-D transpose.
Tensor Transpose2D(const Tensor& a);
/// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
/// Slices [start, start+length) along `axis`.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t length);
/// Stacks equal-shaped tensors along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);

/// Broadcasts `a` to `target` shape (copying).
Tensor BroadcastTo(const Tensor& a, const Shape& target);

/// Sums a gradient tensor of broadcasted shape back down to `target` shape.
/// This is the adjoint of BroadcastTo and is used by layer backward passes.
Tensor ReduceToShape(const Tensor& grad, const Shape& target);

// ---------------------------------------------------------------------------
// Comparisons and scalar queries.
// ---------------------------------------------------------------------------

/// True when all elements differ by at most `atol + rtol * |b|`.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);
/// True when any element is NaN or infinite.
bool HasNonFinite(const Tensor& a);
/// L2 norm over all elements.
float Norm2(const Tensor& a);
/// Dot product of the flattened tensors (shapes must have equal numel).
float Dot(const Tensor& a, const Tensor& b);

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_TENSOR_OPS_H_
