#include "tensor/sparse_router.h"

#include <cstdlib>
#include <cstring>

#include "base/check.h"
#include "base/logging.h"
#include "base/string_util.h"

namespace dhgcn {

Result<SparseMode> ParseSparseMode(const std::string& text) {
  if (text == "off") return SparseMode::kOff;
  if (text == "auto") return SparseMode::kAuto;
  if (text == "on") return SparseMode::kOn;
  return Status::InvalidArgument(
      StrCat("unknown sparse mode '", text, "' (expected off|auto|on)"));
}

const char* SparseModeName(SparseMode mode) {
  switch (mode) {
    case SparseMode::kOff: return "off";
    case SparseMode::kAuto: return "auto";
    case SparseMode::kOn: return "on";
  }
  return "?";
}

SparseRouter& SparseRouter::Get() {
  static SparseRouter router;
  return router;
}

SparseRouter::SparseRouter() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once, while the lazily
  // constructed singleton is still private to the first caller.
  const char* env = std::getenv("DHGCN_SPARSE");
  if (env == nullptr || *env == '\0') return;
  if (Result<SparseMode> parsed = ParseSparseMode(env); parsed.ok()) {
    mode_ = parsed.ValueOrDie();
    return;
  }
  char* end = nullptr;
  double threshold = std::strtod(env, &end);
  if (end != env && *end == '\0' && threshold > 0.0 && threshold <= 1.0) {
    mode_ = SparseMode::kAuto;
    threshold_ = threshold;
    return;
  }
  DHGCN_LOG(kWarning) << "ignoring DHGCN_SPARSE='" << env
                      << "' (expected off|auto|on or a density in (0,1])";
}

void SparseRouter::set_density_threshold(double threshold) {
  DHGCN_CHECK(threshold > 0.0 && threshold <= 1.0);
  threshold_ = threshold;
}

bool SparseRouter::ShouldRoute(double density) const {
  switch (mode_) {
    case SparseMode::kOff: return false;
    case SparseMode::kOn: return true;
    case SparseMode::kAuto: return density <= threshold_;
  }
  return false;
}

double SparseRouter::MeasureDensity(const float* data, int64_t numel) {
  if (numel <= 0) return 0.0;
  int64_t nonzero = 0;
  for (int64_t i = 0; i < numel; ++i) {
    if (data[i] != 0.0f) ++nonzero;
  }
  return static_cast<double>(nonzero) / static_cast<double>(numel);
}

double SparseRouter::MeasureDensity(const Tensor& t) {
  return MeasureDensity(t.data(), t.numel());
}

}  // namespace dhgcn
