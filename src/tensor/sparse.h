#ifndef DHGCN_TENSOR_SPARSE_H_
#define DHGCN_TENSOR_SPARSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Compressed-sparse-row matrix.
///
/// The structural operators of graph/hypergraph convolution (normalized
/// adjacency, incidence products, K-NN operators) are sparse; this class
/// provides the storage plus the SpMM kernels to exploit that. Values
/// are float32, indices are int64, rows are stored in ascending column
/// order.
class CsrMatrix {
 public:
  /// Empty rows x cols matrix (all zero).
  CsrMatrix(int64_t rows, int64_t cols);

  /// Compresses a dense (rows, cols) tensor, dropping entries with
  /// |value| <= tolerance.
  static CsrMatrix FromDense(const Tensor& dense, float tolerance = 0.0f);

  /// In-place rebuild from a dense row-major buffer, reusing the index
  /// and value capacity of the previous build — the steady-state path
  /// for data-dependent operators (dynamic topology, learnable mixes)
  /// that re-compress every step without heap growth once warm.
  void AssignFromDense(const float* data, int64_t rows, int64_t cols,
                       float tolerance = 0.0f);
  void AssignFromDense(const Tensor& dense, float tolerance = 0.0f);

  /// Builds from coordinate triplets (duplicates are summed).
  static CsrMatrix FromTriplets(
      int64_t rows, int64_t cols,
      std::vector<std::tuple<int64_t, int64_t, float>> triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  /// Fraction of nonzero entries.
  double Density() const;

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  Tensor ToDense() const;
  CsrMatrix Transposed() const;

  /// y = A x for a dense vector x (cols) -> (rows).
  Tensor MatVec(const Tensor& x) const;

  std::string ToString() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;  // rows + 1 entries
  std::vector<int64_t> col_idx_;  // nnz entries
  std::vector<float> values_;     // nnz entries
};

/// Dense C (M,N) = sparse A (M,K) * dense B (K,N).
Tensor SpMM(const CsrMatrix& a, const Tensor& b);

/// C += A * B (shapes as SpMM).
void SpMMAccumulate(const CsrMatrix& a, const Tensor& b, Tensor& c);

/// \brief Workspace-aware SpMM: C (M,N) = sparse A (M,K) * dense B
/// (K,N) into a caller-provided (typically arena-backed) tensor — zero
/// owning allocations. ThreadPool-parallel over the rows of A with
/// static contiguous partitioning; each chunk writes a disjoint block
/// of C rows and accumulates in fixed ascending-k order, so the result
/// is memcmp-identical at any thread count and bit-identical to the
/// `GemmHint::kSparse` dense reference kernel on A's dense image
/// (skipped zero products are exact float no-ops).
void SpMMInto(const CsrMatrix& a, const Tensor& b, Tensor* c,
              bool accumulate = false);

/// C += A * B into a caller-provided tensor (shapes as SpMMInto).
void SpMMAccumulateInto(const CsrMatrix& a, const Tensor& b, Tensor* c);

/// \brief Dense-times-sparse: C (M,N) (+)= dense A (M,K) * sparse B
/// (K,N). Parallel over the rows of A (disjoint C rows); per row the
/// scatter runs in ascending-k order, skipping a[i,k] == 0 — the exact
/// operation sequence of the `GemmHint::kSparse` reference kernel, so
/// the result is bit-identical to that dense path and thread-count
/// independent.
void DenseSpMMInto(const Tensor& a, const CsrMatrix& b, Tensor* c,
                   bool accumulate = false);

/// \brief Sparse row dots: C (R,M) = dense A (R,K) * Bᵀ for CSR B
/// (M,K), each output element a double-precision dot of a CSR row of B
/// with a dense row of A (ascending column order). This is the sparse
/// twin of `MatMulTransposedBInto` / the VertexMix aggregation loop and
/// is bit-identical to them: the skipped zero-operand products are
/// exact no-ops in the double accumulator. Parallel over the rows of A.
void SpMMTransposedBInto(const Tensor& a, const CsrMatrix& b, Tensor* c);

/// \brief Vertex-axis gather for the mix layers: for every leading row
/// of `x` (..., V), y[..., vi] = double-dot(op row vi, x row). `x` and
/// `y` may have any rank with a trailing vertex axis == op.cols();
/// delegates to the SpMMTransposedBInto loop on the flattened view.
void SparseMixInto(const CsrMatrix& op, const Tensor& x, Tensor* y);

/// \brief Vertex-axis scatter for the mix backward passes: for every
/// leading row, gi[..., u] += g[..., vi] * op[vi, u] with vi ascending
/// and g == 0 rows skipped — the exact float operation sequence of the
/// dense VertexMix backward, so results are bit-identical to it.
/// `gi` must be zero-initialized (or hold a prior gradient to
/// accumulate into). Parallel over leading rows (disjoint gi rows).
void SparseMixBackwardInto(const CsrMatrix& op, const Tensor& g, Tensor* gi);

/// \brief Vertex aggregation with a fixed *sparse* (V, V) operator —
/// the sparse counterpart of `VertexMix` for structural operators:
/// Y[n,c,t,v] = sum_u A[v,u] X[n,c,t,u]. Exact same semantics, different
/// kernel; the bench_kernels binary compares the two.
class SparseVertexMix : public Layer {
 public:
  explicit SparseVertexMix(CsrMatrix op);
  /// Convenience: compress a dense operator.
  explicit SparseVertexMix(const Tensor& dense_op, float tolerance = 0.0f);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override;

  const CsrMatrix& op() const { return op_; }

 private:
  CsrMatrix op_;
  CsrMatrix op_transposed_;  // for the backward pass
};

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_SPARSE_H_
