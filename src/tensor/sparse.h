#ifndef DHGCN_TENSOR_SPARSE_H_
#define DHGCN_TENSOR_SPARSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Compressed-sparse-row matrix.
///
/// The structural operators of graph/hypergraph convolution (normalized
/// adjacency, incidence products, K-NN operators) are sparse; this class
/// provides the storage plus the SpMM kernels to exploit that. Values
/// are float32, indices are int64, rows are stored in ascending column
/// order.
class CsrMatrix {
 public:
  /// Empty rows x cols matrix (all zero).
  CsrMatrix(int64_t rows, int64_t cols);

  /// Compresses a dense (rows, cols) tensor, dropping entries with
  /// |value| <= tolerance.
  static CsrMatrix FromDense(const Tensor& dense, float tolerance = 0.0f);

  /// Builds from coordinate triplets (duplicates are summed).
  static CsrMatrix FromTriplets(
      int64_t rows, int64_t cols,
      std::vector<std::tuple<int64_t, int64_t, float>> triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  /// Fraction of nonzero entries.
  double Density() const;

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  Tensor ToDense() const;
  CsrMatrix Transposed() const;

  /// y = A x for a dense vector x (cols) -> (rows).
  Tensor MatVec(const Tensor& x) const;

  std::string ToString() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;  // rows + 1 entries
  std::vector<int64_t> col_idx_;  // nnz entries
  std::vector<float> values_;     // nnz entries
};

/// Dense C (M,N) = sparse A (M,K) * dense B (K,N).
Tensor SpMM(const CsrMatrix& a, const Tensor& b);

/// C += A * B (shapes as SpMM).
void SpMMAccumulate(const CsrMatrix& a, const Tensor& b, Tensor& c);

/// \brief Vertex aggregation with a fixed *sparse* (V, V) operator —
/// the sparse counterpart of `VertexMix` for structural operators:
/// Y[n,c,t,v] = sum_u A[v,u] X[n,c,t,u]. Exact same semantics, different
/// kernel; the bench_kernels binary compares the two.
class SparseVertexMix : public Layer {
 public:
  explicit SparseVertexMix(CsrMatrix op);
  /// Convenience: compress a dense operator.
  explicit SparseVertexMix(const Tensor& dense_op, float tolerance = 0.0f);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override;

  const CsrMatrix& op() const { return op_; }

 private:
  CsrMatrix op_;
  CsrMatrix op_transposed_;  // for the backward pass
};

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_SPARSE_H_
