#include "tensor/gemm_kernel.h"

#include <algorithm>

namespace dhgcn {
namespace detail {
namespace {

// The blocked loop nest below is compiled twice on x86 — once with the
// build's baseline ISA and once (via the `target` attribute) with
// AVX+FMA codegen, selected at runtime. `always_inline` forces the whole
// nest, micro-kernel included, into each wrapper so it is re-vectorized
// under that wrapper's target options; an out-of-line copy would silently
// keep baseline codegen.
#if defined(__GNUC__)
#define DHGCN_GEMM_INLINE inline __attribute__((always_inline))
#else
#define DHGCN_GEMM_INLINE inline
#endif

// GNU vector extension for the accumulator tile. This is deliberate: the
// auto-vectorizer alone refuses to register-allocate a kGemmMR x kGemmNR
// float array (it spills the tile to the stack and the kernel runs at
// scalar speed), while vector-typed values are register candidates like
// any other scalar. The types lower to whatever the active target
// provides — SSE pairs in baseline builds, ymm registers in the AVX+FMA
// clone — so no ISA is hard-coded.
#if defined(__GNUC__)
#define DHGCN_GEMM_VECTOR_EXT 1
// Vectors never cross a (non-inlined) function boundary — passing or
// returning one from baseline-ISA code would change ABI (-Wpsabi).
typedef float V8f __attribute__((vector_size(32), aligned(4), may_alias));
#else
#define DHGCN_GEMM_VECTOR_EXT 0
#endif

static_assert(kGemmNR == 16, "micro-kernels assume two 8-wide columns");

#if DHGCN_GEMM_VECTOR_EXT
// Full-panel register tile: kRows x kGemmNR accumulators held in vector
// registers across the kc-deep reduction slice. `a` is unpacked
// row-major with leading dimension `lda`; `bp` points at the packed
// panel slice for this k block (kGemmNR floats per k step, 64-byte
// aligned rows); `c` is row-major with leading dimension `ldc`. Each C
// row's arithmetic is independent of the other rows in the tile, so the
// per-element rounding sequence depends only on (k, n) — never on how
// callers group rows into tiles or tasks.
// The accumulators are NAMED variables, not an array: GCC's
// scalar-replacement pass runs before loop unrolling, so a
// variable-indexed acc[r][j] tile stays addressable and every FMA gets
// bracketed by a stack spill/reload. Named vectors guarded by
// `if constexpr` are plain register candidates.
template <int kRows>
DHGCN_GEMM_INLINE void MicroKernelTileFull(const float* a, int64_t lda,
                                           const float* bp, int64_t kc,
                                           float* c, int64_t ldc) {
  V8f c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
  V8f c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (int64_t p = 0; p < kc; ++p) {
    const V8f* brow = reinterpret_cast<const V8f*>(bp + p * kGemmNR);
    const V8f b0 = brow[0];
    const V8f b1 = brow[1];
    const float a0 = a[p];  // broadcast by scalar-vector mul
    c00 += b0 * a0;
    c01 += b1 * a0;
    if constexpr (kRows > 1) {
      const float a1 = a[lda + p];
      c10 += b0 * a1;
      c11 += b1 * a1;
    }
    if constexpr (kRows > 2) {
      const float a2 = a[2 * lda + p];
      c20 += b0 * a2;
      c21 += b1 * a2;
    }
    if constexpr (kRows > 3) {
      const float a3 = a[3 * lda + p];
      c30 += b0 * a3;
      c31 += b1 * a3;
    }
    if constexpr (kRows > 4) {
      const float a4 = a[4 * lda + p];
      c40 += b0 * a4;
      c41 += b1 * a4;
    }
    if constexpr (kRows > 5) {
      const float a5 = a[5 * lda + p];
      c50 += b0 * a5;
      c51 += b1 * a5;
    }
  }
  // Explicit stores (a helper taking V8f parameters would re-raise the
  // vector-ABI warning in baseline-ISA code).
  V8f* crow = reinterpret_cast<V8f*>(c);
  crow[0] += c00;
  crow[1] += c01;
  if constexpr (kRows > 1) {
    crow = reinterpret_cast<V8f*>(c + ldc);
    crow[0] += c10;
    crow[1] += c11;
  }
  if constexpr (kRows > 2) {
    crow = reinterpret_cast<V8f*>(c + 2 * ldc);
    crow[0] += c20;
    crow[1] += c21;
  }
  if constexpr (kRows > 3) {
    crow = reinterpret_cast<V8f*>(c + 3 * ldc);
    crow[0] += c30;
    crow[1] += c31;
  }
  if constexpr (kRows > 4) {
    crow = reinterpret_cast<V8f*>(c + 4 * ldc);
    crow[0] += c40;
    crow[1] += c41;
  }
  if constexpr (kRows > 5) {
    crow = reinterpret_cast<V8f*>(c + 5 * ldc);
    crow[0] += c50;
    crow[1] += c51;
  }
}
#endif

// Partial-panel (and non-GNU fallback) tile: same loop structure with a
// column guard on the stores. Only the final, zero-padded panel of a
// product ever takes this path, so its (shape-pure) different rounding
// costs nothing in throughput.
template <int kRows>
DHGCN_GEMM_INLINE void MicroKernelTileEdge(const float* a, int64_t lda,
                                           const float* bp, int64_t kc,
                                           float* c, int64_t ldc,
                                           int64_t cols) {
  float acc[kRows][kGemmNR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * kGemmNR;
    for (int r = 0; r < kRows; ++r) {
      const float av = a[r * lda + p];
      for (int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < kRows; ++r) {
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < cols; ++j) crow[j] += acc[r][j];
  }
}

template <int kRows>
DHGCN_GEMM_INLINE void MicroKernelTile(const float* a, int64_t lda,
                                       const float* bp, int64_t kc, float* c,
                                       int64_t ldc, int64_t cols) {
#if DHGCN_GEMM_VECTOR_EXT
  if (cols == kGemmNR) {
    MicroKernelTileFull<kRows>(a, lda, bp, kc, c, ldc);
    return;
  }
#endif
  MicroKernelTileEdge<kRows>(a, lda, bp, kc, c, ldc, cols);
}

// Full blocked nest: k blocks outermost (one packed panel k-slice stays
// L1-resident across the whole row sweep), then panels, then kGemmMR row
// tiles. Every C element receives its k-block partials in ascending-k
// order regardless of the panel/row iteration, so splitting m across
// ParallelFor tasks cannot change any element's accumulation order.
DHGCN_GEMM_INLINE void GemmBlockedImpl(const float* a, const float* bp,
                                       float* c, int64_t m, int64_t k,
                                       int64_t n) {
  const int64_t panels = (n + kGemmNR - 1) / kGemmNR;
  for (int64_t k0 = 0; k0 < k; k0 += kGemmKC) {
    const int64_t kc = std::min(kGemmKC, k - k0);
    for (int64_t panel = 0; panel < panels; ++panel) {
      const int64_t j0 = panel * kGemmNR;
      const int64_t cols = std::min(kGemmNR, n - j0);
      const float* bpk = bp + (panel * k + k0) * kGemmNR;
      for (int64_t i = 0; i < m; i += kGemmMR) {
        const int64_t rows = std::min(kGemmMR, m - i);
        const float* ai = a + i * k + k0;
        float* ci = c + i * n + j0;
        switch (rows) {
          case 6:
            MicroKernelTile<6>(ai, k, bpk, kc, ci, n, cols);
            break;
          case 5:
            MicroKernelTile<5>(ai, k, bpk, kc, ci, n, cols);
            break;
          case 4:
            MicroKernelTile<4>(ai, k, bpk, kc, ci, n, cols);
            break;
          case 3:
            MicroKernelTile<3>(ai, k, bpk, kc, ci, n, cols);
            break;
          case 2:
            MicroKernelTile<2>(ai, k, bpk, kc, ci, n, cols);
            break;
          default:
            MicroKernelTile<1>(ai, k, bpk, kc, ci, n, cols);
            break;
        }
      }
    }
  }
}

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__) && \
    !(defined(__AVX__) && defined(__FMA__))
#define DHGCN_GEMM_DISPATCH 1
#else
#define DHGCN_GEMM_DISPATCH 0
#endif

#if DHGCN_GEMM_DISPATCH
// Second compilation of the nest with AVX+FMA codegen for baseline-ISA
// builds running on capable CPUs. Which clone runs is fixed per process
// (and both are pure functions of shape), so the determinism contract —
// bit-identical results across thread counts — is unaffected; only
// cross-machine bit-compat varies, which was never promised (the
// baseline build already lets the compiler contract a*b+c per ISA).
__attribute__((target("avx,fma"))) void GemmBlockedAvxFma(const float* a,
                                                          const float* bp,
                                                          float* c, int64_t m,
                                                          int64_t k,
                                                          int64_t n) {
  GemmBlockedImpl(a, bp, c, m, k, n);
}

// Resolved during static initialization (single-threaded), so tasks
// calling the kernel never touch a function-local init guard.
const bool kHaveAvxFma =
    __builtin_cpu_supports("avx") && __builtin_cpu_supports("fma");
#endif

}  // namespace

bool GemmUseBlocked(int64_t m, int64_t k, int64_t n) {
  return m >= kGemmMR && n >= kGemmNR / 2 &&
         m * k * n >= kGemmBlockedMinFlops;
}

int64_t GemmPackedBCount(int64_t k, int64_t n) {
  return (n + kGemmNR - 1) / kGemmNR * kGemmNR * k;
}

void GemmPackB(const float* b, int64_t k, int64_t n, float* bp) {
  const int64_t panels = (n + kGemmNR - 1) / kGemmNR;
  for (int64_t panel = 0; panel < panels; ++panel) {
    const int64_t j0 = panel * kGemmNR;
    const int64_t cols = std::min(kGemmNR, n - j0);
    float* dst = bp + panel * k * kGemmNR;
    for (int64_t p = 0; p < k; ++p) {
      const float* src = b + p * n + j0;
      float* out = dst + p * kGemmNR;
      for (int64_t j = 0; j < cols; ++j) out[j] = src[j];
      for (int64_t j = cols; j < kGemmNR; ++j) out[j] = 0.0f;
    }
  }
}

void GemmPackTransposed(const float* a, int64_t k, int64_t m, float* at) {
  // Square tiles keep both the strided reads and the contiguous writes
  // cache-resident; the write side (at) is the one the kernel streams.
  constexpr int64_t kBlock = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const int64_t i1 = std::min(m, i0 + kBlock);
    for (int64_t p0 = 0; p0 < k; p0 += kBlock) {
      const int64_t p1 = std::min(k, p0 + kBlock);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t p = p0; p < p1; ++p) at[i * k + p] = a[p * m + i];
      }
    }
  }
}

void GemmBlockedPackedB(const float* a, const float* bp, float* c, int64_t m,
                        int64_t k, int64_t n) {
#if DHGCN_GEMM_DISPATCH
  if (kHaveAvxFma) {
    GemmBlockedAvxFma(a, bp, c, m, k, n);
    return;
  }
#endif
  GemmBlockedImpl(a, bp, c, m, k, n);
}

Workspace& GemmPackScratch() {
  static Workspace scratch;
  return scratch;
}

Workspace& KernelOpScratch() {
  static Workspace scratch;
  return scratch;
}

}  // namespace detail
}  // namespace dhgcn
