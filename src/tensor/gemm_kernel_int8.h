#ifndef DHGCN_TENSOR_GEMM_KERNEL_INT8_H_
#define DHGCN_TENSOR_GEMM_KERNEL_INT8_H_

#include <cstdint>

namespace dhgcn {
namespace detail {

// ---------------------------------------------------------------------------
// Int8 cache-blocked GEMM micro-kernel (see DESIGN.md §15).
//
// Computes C (m,n) = A (m,k_pad) * B for unsigned-int8 activations A,
// signed-int8 weights B (pre-packed by Int8PackB), accumulating in
// int32. The kernel is the integer twin of the fp32 blocked kernel in
// gemm_kernel.h: kInt8NR-wide packed column panels, a kInt8MR-row
// register tile, and KC-deep reduction blocks, dispatched at runtime to
// an AVX2 clone when the CPU has it.
//
// Operand contract:
//  - A holds per-tensor-quantized activations: u8 with zero point 128
//    (q = round(x / s) + 128). Rows are (m, k_pad) with leading
//    dimension `lda`; the k dimension is padded to a multiple of
//    kInt8KStep and pad bytes should be 128 (the quantized 0.0f) —
//    any value works arithmetically because the matching packed-B pad
//    weights are zero.
//  - B holds per-output-channel symmetric weights: s8 restricted to
//    [-kInt8WeightMax, kInt8WeightMax]. The restriction is what makes
//    the AVX2 path exact: one vpmaddubsw lane sums two u8*s8 products
//    (<= 255*32*2 = 16320) and one vpaddsw sums two lanes
//    (<= 32640 < 32767), so the saturating int16 ops never saturate
//    and the SIMD clone is bit-identical to the scalar reference.
//  - C receives the RAW u8 x s8 products. Callers undo the +128 zero
//    point with the packed column sums: true[i,j] = c[i,j] - 128 *
//    colsum_w[j] (see Int8PackColumnSums), normally fused into the
//    dequantize epilogue.
//
// Integer accumulation is exact, so results are bit-identical across
// thread counts, across scalar/AVX2 dispatch, and across any KC/tile
// blocking — a strictly stronger determinism contract than fp32.
// ---------------------------------------------------------------------------

/// Register-tile rows per micro-kernel invocation.
inline constexpr int64_t kInt8MR = 4;
/// Register-tile columns (one packed B panel width).
inline constexpr int64_t kInt8NR = 16;
/// k-steps consumed per packed group (two vpmaddubsw halves of 4).
inline constexpr int64_t kInt8KStep = 8;
/// Reduction block depth in k-steps; one packed panel slice is
/// kInt8KC * kInt8NR bytes = 16 KiB, the same L1 footprint as the fp32
/// kernel's 256-float-deep panel slice.
inline constexpr int64_t kInt8KC = 1024;
/// Weight quantization ceiling: |q_w| <= 32 keeps every int16
/// intermediate in the AVX2 reduction saturation-free (see above).
inline constexpr int32_t kInt8WeightMax = 32;

/// k rounded up to a multiple of kInt8KStep.
inline int64_t Int8KPad(int64_t k) {
  return (k + kInt8KStep - 1) / kInt8KStep * kInt8KStep;
}

/// Bytes a packed copy of B (k,n) occupies: ceil(n / kInt8NR) panels of
/// Int8KPad(k) * kInt8NR bytes (column and k padding zeroed).
int64_t Int8PackedBCount(int64_t k, int64_t n);

/// Packs row-major s8 B (k,n) into panel-major int8 layout. Each
/// kInt8NR-wide column panel is a run of kInt8KStep-deep groups; one
/// group is 2 * kInt8NR * 4 bytes: the 4 low-k bytes of every column,
/// then the 4 high-k bytes of every column (column j's bytes at offset
/// j * 4 within each half). Pad columns and pad k rows are zero.
/// `bp` must hold Int8PackedBCount(k, n) bytes.
void Int8PackB(const int8_t* b, int64_t k, int64_t n, int8_t* bp);

/// Per-column weight sums of row-major s8 B (k,n), for the zero-point
/// compensation term: comp[j] = 128 * sums[j]. `sums` holds n int32s.
void Int8PackColumnSums(const int8_t* b, int64_t k, int64_t n,
                        int32_t* sums);

/// C (m,n) = A * B for B pre-packed by Int8PackB; zeroes C, then
/// accumulates raw u8 x s8 products in int32. `k_pad` must equal
/// Int8KPad(k) used at pack time; `lda` >= k_pad. Safe to call from
/// inside a ParallelFor task on disjoint row ranges of C; split m on
/// kInt8MR multiples to match the serial tile boundaries (any split is
/// bit-identical regardless — integer accumulation is exact).
void Int8GemmPackedB(const uint8_t* a, int64_t lda, const int8_t* bp,
                     int32_t* c, int64_t m, int64_t k_pad, int64_t n);

/// True when the runtime dispatch selected the AVX2 clone (for benches
/// and the scalar-vs-SIMD equivalence test).
bool Int8GemmHasAvx2();

/// Quantizes one contiguous run of fp32 activations to the kernel's u8
/// operand format: q[i] = clamp(round_ne(x[i] * inv_scale), ±127) +
/// 128. Rounding is to-nearest-even via the 2^23 + 2^22 magic-add
/// trick; NaN fails the low clamp's compare and encodes as 1 (the same
/// contract as QuantizeActivations, which delegates here). Lives in
/// the kernel TU because it is the per-replay feeder of the int8 GEMM:
/// the AVX2 clone (mul / max / min / magic-add / pack, dispatched at
/// runtime like the GEMM nest) is bit-identical to the scalar path —
/// every step is an exact elementwise IEEE op with matched NaN
/// semantics.
void Int8QuantizeRow(const float* x, int64_t n, float inv_scale,
                     uint8_t* q);

/// Blocked byte transpose: dst[j * dst_stride + i] = src[i *
/// src_stride + j] for i < rows, j < cols. This is the im2col of a
/// width-1 conv kernel tap — one (ky, oy) pair scatters a contiguous
/// C-channel strip of the quantized input into C adjacent colq columns
/// — so it lives with the GEMM nest and uses SSE2 16x16 unpack tiles
/// (baseline on x86-64; no runtime dispatch needed) with scalar edges.
/// Ranges must not alias.
void Int8TransposeU8(const uint8_t* src, int64_t src_stride, int64_t rows,
                     int64_t cols, uint8_t* dst, int64_t dst_stride);

}  // namespace detail
}  // namespace dhgcn

#endif  // DHGCN_TENSOR_GEMM_KERNEL_INT8_H_
