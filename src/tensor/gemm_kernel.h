#ifndef DHGCN_TENSOR_GEMM_KERNEL_H_
#define DHGCN_TENSOR_GEMM_KERNEL_H_

#include <cstdint>

#include "tensor/workspace.h"

namespace dhgcn {
namespace detail {

// ---------------------------------------------------------------------------
// Cache-blocked, register-tiled GEMM micro-kernel (see DESIGN.md §10).
//
// The kernel computes C (m,n) += A (m,k) * B (k,n) for row-major operands,
// with B repacked into kGemmNR-wide column panels so the innermost loops
// stream contiguous, FMA-friendly tiles. The register tile is kGemmMR x
// kGemmNR accumulators held in registers across a kGemmKC-deep reduction
// slice; tile and panel boundaries are a pure function of (m, k, n), so a
// result is bit-identical for every thread count (chunks handed out by
// ParallelFor are whole row blocks).
//
// Numerics: accumulation order differs from the reference i-k-j kernel
// (per-k-block register accumulation, then one += into C per block), so
// results match the reference to rounding, not bit-for-bit. The retained
// GemmReferenceAccumulate is the equivalence baseline.
// ---------------------------------------------------------------------------

/// Register-tile rows per micro-kernel invocation.
inline constexpr int64_t kGemmMR = 4;
/// Register-tile columns (one packed B panel width).
inline constexpr int64_t kGemmNR = 16;
/// Reduction block depth: one k-slice of a packed panel stays L1-resident.
inline constexpr int64_t kGemmKC = 256;
/// Multiply-accumulates one blocked ParallelFor chunk should amortize
/// (larger than the generic 16k target: every chunk re-streams packed B).
inline constexpr int64_t kGemmChunkFlops = int64_t{1} << 18;
/// Problems below this many multiply-accumulates (or with fewer than
/// kGemmMR rows) stay on the row-kernel path: packing would dominate.
inline constexpr int64_t kGemmBlockedMinFlops = int64_t{1} << 14;

/// True when (m,k,n) should take the blocked path. Pure function of the
/// shape — never of thread count or data — per the determinism contract.
bool GemmUseBlocked(int64_t m, int64_t k, int64_t n);

/// Number of floats a packed copy of B (k,n) occupies: k rows of
/// ceil(n / kGemmNR) zero-padded panels.
int64_t GemmPackedBCount(int64_t k, int64_t n);

/// Packs row-major B (k,n) into panel-major layout: for each kGemmNR-wide
/// column panel, all k rows of that panel contiguously (the last panel is
/// zero-padded to kGemmNR). `bp` must hold GemmPackedBCount(k, n) floats.
void GemmPackB(const float* b, int64_t k, int64_t n, float* bp);

/// Transpose-pack: writes at (m,k) row-major with at[i,p] = a[p,i] for
/// row-major a (k,m). Lets A^T * B products reuse the dense blocked
/// kernel without strided panel reads.
void GemmPackTransposed(const float* a, int64_t k, int64_t m, float* at);

/// C (m,n) += A (m,k) * B for B pre-packed by GemmPackB. A is read in
/// place (rows are already contiguous in k). Safe to call from inside a
/// ParallelFor task on disjoint row ranges of C; when parallelizing,
/// split m on kGemmMR multiples so tile boundaries match the serial run.
void GemmBlockedPackedB(const float* a, const float* bp, float* c,
                        int64_t m, int64_t k, int64_t n);

/// Process-wide scratch arena for packed GEMM panels. Only the linalg
/// drivers touch it (acquire on the calling thread before dispatching a
/// ParallelFor, Reset() when the product is done), so steady state is a
/// single warm block and zero heap traffic. Not for use inside tasks.
Workspace& GemmPackScratch();

/// Process-wide scratch arena for op-level lowering buffers (im2col
/// columns, pairwise-distance Gram matrices). Same discipline as
/// GemmPackScratch: acquire on the driving thread, Reset() at the end of
/// the op, never let a borrow escape the op that acquired it.
Workspace& KernelOpScratch();

}  // namespace detail
}  // namespace dhgcn

#endif  // DHGCN_TENSOR_GEMM_KERNEL_H_
