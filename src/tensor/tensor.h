#ifndef DHGCN_TENSOR_TENSOR_H_
#define DHGCN_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "base/alloc_stats.h"
#include "base/check.h"
#include "base/rng.h"

namespace dhgcn {

/// Shape of a tensor; an empty shape denotes a scalar.
using Shape = std::vector<int64_t>;

std::string ShapeToString(const Shape& shape);
int64_t ShapeNumel(const Shape& shape);
bool ShapesEqual(const Shape& a, const Shape& b);

/// \brief Dense row-major float32 tensor.
///
/// Storage comes in two modes:
///  - **owning** (the default): a shared heap buffer, kept alive by
///    reference counting. Every owning allocation advances
///    `Tensor::AllocStats()`.
///  - **workspace-borrowed**: a raw pointer into a `Workspace` arena,
///    created via `Tensor::Borrowed()` (normally through
///    `NewTensor(Workspace*, ...)`). Borrowed tensors are only valid
///    until the arena's next `Reset()`; touching one afterwards aborts
///    with a check failure (the borrow epoch is validated on access).
///
/// Storage is shared between tensors produced by `Reshape` (which
/// aliases); all other operations write fresh storage. The class is
/// cheap to copy (shared or borrowed storage); use `Clone()` for a deep
/// owning copy before in-place mutation of a tensor that may be aliased.
///
/// Dimension-order convention used by the model code: activations are
/// (N, C, T, V) = (batch, channels, frames, joints).
class Tensor {
 public:
  /// An empty (0-d, 1-element) tensor holding 0.0f. Allocation-free:
  /// all default-constructed tensors share one immutable zero buffer
  /// and detach (copy-on-write) on first mutable access, so declaring
  /// `Tensor out;` slots on the workspace path costs nothing.
  Tensor();

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  // -- Factories -----------------------------------------------------------

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0f); }
  static Tensor Full(Shape shape, float value);
  /// Wraps `values` (copied) into the given shape; sizes must match.
  static Tensor FromVector(Shape shape, std::vector<float> values);
  /// 1-D tensor from an initializer list.
  static Tensor FromList(std::initializer_list<float> values);
  /// Scalar tensor.
  static Tensor Scalar(float value);
  /// I.i.d. N(mean, stddev^2) entries.
  static Tensor RandomNormal(Shape shape, Rng& rng, float mean = 0.0f,
                             float stddev = 1.0f);
  /// I.i.d. Uniform[lo, hi) entries.
  static Tensor RandomUniform(Shape shape, Rng& rng, float lo = 0.0f,
                              float hi = 1.0f);
  /// Identity matrix of size n x n.
  static Tensor Eye(int64_t n);
  /// 1-D tensor [start, start+step, ...) of `count` entries.
  static Tensor Arange(int64_t count, float start = 0.0f, float step = 1.0f);

  /// Wraps externally managed storage (a `Workspace` slice) without
  /// allocating. `live_epoch` is the arena's epoch cell and
  /// `borrow_epoch` its value at borrow time: any access after the
  /// arena has been Reset (epoch advanced) aborts. The buffer is NOT
  /// zero-initialized — callers must fully overwrite it (use
  /// `Workspace::AcquireZeroed` / `NewZeroedTensor` for accumulators).
  static Tensor Borrowed(Shape shape, float* data,
                         std::shared_ptr<const uint64_t> live_epoch,
                         uint64_t borrow_epoch);

  // -- Introspection -------------------------------------------------------

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t axis) const;
  int64_t numel() const { return numel_; }

  /// True for owning storage, false for workspace-borrowed storage.
  bool owns_storage() const { return borrowed_ == nullptr; }

  float* data() {
    CheckLive();
    if (borrowed_ != nullptr) return borrowed_;
    if (shared_default_) Detach();
    return data_->data();
  }
  const float* data() const {
    CheckLive();
    return borrowed_ != nullptr ? borrowed_ : data_->data();
  }

  /// Element access by flat row-major index.
  float& flat(int64_t index) {
    DHGCN_DCHECK(index >= 0 && index < numel_);
    return data()[static_cast<size_t>(index)];
  }
  float flat(int64_t index) const {
    DHGCN_DCHECK(index >= 0 && index < numel_);
    return data()[static_cast<size_t>(index)];
  }

  /// Multi-index element access; the number of indices must equal ndim().
  template <typename... Ix>
  float& at(Ix... indices) {
    return flat(Offset({static_cast<int64_t>(indices)...}));
  }
  template <typename... Ix>
  float at(Ix... indices) const {
    return flat(Offset({static_cast<int64_t>(indices)...}));
  }

  /// Row-major flat offset of a multi-index.
  int64_t Offset(const std::vector<int64_t>& indices) const;

  /// True when both tensors view the same storage.
  bool SharesStorageWith(const Tensor& other) const {
    return raw_data() == other.raw_data();
  }

  // -- Shape manipulation / copies -----------------------------------------

  /// Returns a tensor viewing the same storage with a new shape
  /// (numel must match). At most one dimension may be -1 (inferred).
  Tensor Reshape(Shape new_shape) const;

  /// Deep copy; the result always owns its storage.
  Tensor Clone() const;

  /// Copies the contents of `src` into this tensor (shapes must match).
  void CopyFrom(const Tensor& src);

  /// Sets every element to `value`.
  void Fill(float value);

  /// Copies the elements into a std::vector.
  std::vector<float> ToVector() const;

  /// Human-readable rendering (shape plus up to `max_items` leading values).
  std::string ToString(int64_t max_items = 16) const;

  // -- Instrumentation -----------------------------------------------------

  /// Cumulative owning-buffer allocation totals since process start;
  /// borrowed (workspace) tensors never advance these. Use
  /// `AllocStatsGuard` for a scoped delta.
  static AllocStatsSnapshot AllocStats();

 private:
  struct BorrowTag {};
  /// Non-allocating constructor used by Borrowed().
  Tensor(BorrowTag, Shape shape);

  /// Effective storage pointer without the liveness check (identity
  /// comparisons only — never dereferenced through this path).
  const float* raw_data() const {
    return borrowed_ != nullptr ? borrowed_ : data_->data();
  }

  /// Aborts when a borrowed buffer is accessed after its arena was
  /// Reset. Always on (also in release builds): a stale borrow reads
  /// recycled memory, which is silent corruption otherwise.
  void CheckLive() const {
    if (borrowed_ != nullptr) {
      DHGCN_CHECK(live_epoch_ != nullptr && *live_epoch_ == borrow_epoch_);
    }
  }

  /// Replaces the shared default-scalar buffer with a private owning
  /// copy before the first mutation (copy-on-write).
  void Detach();

  Shape shape_;
  int64_t numel_ = 1;
  /// Owning mode: shared heap buffer (null in borrowed mode).
  std::shared_ptr<std::vector<float>> data_;
  /// True while aliasing the process-wide default-scalar buffer.
  bool shared_default_ = false;
  /// Borrowed mode: raw arena pointer (null in owning mode).
  float* borrowed_ = nullptr;
  /// Borrowed mode: arena epoch cell + the epoch at borrow time.
  std::shared_ptr<const uint64_t> live_epoch_;
  uint64_t borrow_epoch_ = 0;
};

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_TENSOR_H_
