#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "base/check.h"

namespace dhgcn {

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols),
      row_ptr_(static_cast<size_t>(rows) + 1, 0) {
  DHGCN_CHECK_GT(rows, 0);
  DHGCN_CHECK_GT(cols, 0);
}

CsrMatrix CsrMatrix::FromDense(const Tensor& dense, float tolerance) {
  DHGCN_CHECK_EQ(dense.ndim(), 2);
  CsrMatrix csr(dense.dim(0), dense.dim(1));
  const float* data = dense.data();
  for (int64_t r = 0; r < csr.rows_; ++r) {
    for (int64_t c = 0; c < csr.cols_; ++c) {
      float v = data[r * csr.cols_ + c];
      if (std::fabs(v) > tolerance) {
        csr.col_idx_.push_back(c);
        csr.values_.push_back(v);
      }
    }
    csr.row_ptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(csr.values_.size());
  }
  return csr;
}

CsrMatrix CsrMatrix::FromTriplets(
    int64_t rows, int64_t cols,
    std::vector<std::tuple<int64_t, int64_t, float>> triplets) {
  CsrMatrix csr(rows, cols);
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              if (std::get<0>(a) != std::get<0>(b)) {
                return std::get<0>(a) < std::get<0>(b);
              }
              return std::get<1>(a) < std::get<1>(b);
            });
  int64_t previous_row = -1, previous_col = -1;
  for (const auto& [r, c, v] : triplets) {
    DHGCN_CHECK(r >= 0 && r < rows);
    DHGCN_CHECK(c >= 0 && c < cols);
    if (r == previous_row && c == previous_col) {
      csr.values_.back() += v;  // sum duplicates
      continue;
    }
    while (previous_row < r) {
      ++previous_row;
      csr.row_ptr_[static_cast<size_t>(previous_row)] =
          static_cast<int64_t>(csr.values_.size());
    }
    csr.col_idx_.push_back(c);
    csr.values_.push_back(v);
    previous_col = c;
  }
  while (previous_row < rows - 1) {
    ++previous_row;
    csr.row_ptr_[static_cast<size_t>(previous_row)] =
        static_cast<int64_t>(csr.values_.size());
  }
  // row_ptr_[0] must be 0; fix the off-by-one of the fill loop above.
  // The loop sets row_ptr_[r] to the count *before* row r's entries,
  // which is exactly the CSR convention given sorted input; the final
  // sentinel holds the total.
  csr.row_ptr_[static_cast<size_t>(rows)] =
      static_cast<int64_t>(csr.values_.size());
  return csr;
}

double CsrMatrix::Density() const {
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

Tensor CsrMatrix::ToDense() const {
  Tensor dense({rows_, cols_});
  float* data = dense.data();
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      data[r * cols_ + col_idx_[static_cast<size_t>(k)]] +=
          values_[static_cast<size_t>(k)];
    }
  }
  return dense;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<std::tuple<int64_t, int64_t, float>> triplets;
  triplets.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      triplets.emplace_back(col_idx_[static_cast<size_t>(k)], r,
                            values_[static_cast<size_t>(k)]);
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

Tensor CsrMatrix::MatVec(const Tensor& x) const {
  DHGCN_CHECK_EQ(x.numel(), cols_);
  Tensor y({rows_});
  const float* px = x.data();
  float* py = y.data();
  for (int64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      acc += static_cast<double>(values_[static_cast<size_t>(k)]) *
             px[col_idx_[static_cast<size_t>(k)]];
    }
    py[r] = static_cast<float>(acc);
  }
  return y;
}

std::string CsrMatrix::ToString() const {
  std::ostringstream oss;
  oss << "CsrMatrix(" << rows_ << "x" << cols_ << ", nnz=" << nnz()
      << ", density=" << Density() << ")";
  return oss.str();
}

Tensor SpMM(const CsrMatrix& a, const Tensor& b) {
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(b.dim(0), a.cols());
  Tensor c({a.rows(), b.dim(1)});
  SpMMAccumulate(a, b, c);
  return c;
}

void SpMMAccumulate(const CsrMatrix& a, const Tensor& b, Tensor& c) {
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(c.ndim(), 2);
  DHGCN_CHECK_EQ(b.dim(0), a.cols());
  DHGCN_CHECK_EQ(c.dim(0), a.rows());
  DHGCN_CHECK_EQ(c.dim(1), b.dim(1));
  int64_t n = b.dim(1);
  const float* pb = b.data();
  float* pc = c.data();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* crow = pc + r * n;
    for (int64_t k = row_ptr[static_cast<size_t>(r)];
         k < row_ptr[static_cast<size_t>(r) + 1]; ++k) {
      float v = values[static_cast<size_t>(k)];
      const float* brow = pb + col_idx[static_cast<size_t>(k)] * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
}

SparseVertexMix::SparseVertexMix(CsrMatrix op)
    : op_(std::move(op)), op_transposed_(op_.Transposed()) {
  DHGCN_CHECK_EQ(op_.rows(), op_.cols());
}

SparseVertexMix::SparseVertexMix(const Tensor& dense_op, float tolerance)
    : SparseVertexMix(CsrMatrix::FromDense(dense_op, tolerance)) {}

namespace {

// Y[row, v] = sum_u A[v, u] X[row, u] for every leading row: equivalent
// to X * A^T, computed as row-wise sparse dots over the CSR of A.
Tensor ApplyOnVertexAxis(const CsrMatrix& op, const Tensor& x) {
  int64_t v = x.dim(3);
  DHGCN_CHECK_EQ(v, op.cols());
  int64_t rows = x.numel() / v;
  Tensor y(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const auto& row_ptr = op.row_ptr();
  const auto& col_idx = op.col_idx();
  const auto& values = op.values();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xrow = px + r * v;
    float* yrow = py + r * v;
    for (int64_t vi = 0; vi < op.rows(); ++vi) {
      double acc = 0.0;
      for (int64_t k = row_ptr[static_cast<size_t>(vi)];
           k < row_ptr[static_cast<size_t>(vi) + 1]; ++k) {
        acc += static_cast<double>(values[static_cast<size_t>(k)]) *
               xrow[col_idx[static_cast<size_t>(k)]];
      }
      yrow[vi] = static_cast<float>(acc);
    }
  }
  return y;
}

}  // namespace

Tensor SparseVertexMix::Forward(const Tensor& input) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  return ApplyOnVertexAxis(op_, input);
}

Tensor SparseVertexMix::Backward(const Tensor& grad_output) {
  DHGCN_CHECK_EQ(grad_output.ndim(), 4);
  // dX[..., u] = sum_v A[v, u] dY[..., v]  ==  apply A^T.
  return ApplyOnVertexAxis(op_transposed_, grad_output);
}

std::string SparseVertexMix::name() const {
  return "SparseVertexMix(" + op_.ToString() + ")";
}

}  // namespace dhgcn
