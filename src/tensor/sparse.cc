#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "base/check.h"
#include "base/thread_pool.h"

namespace dhgcn {

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols),
      row_ptr_(static_cast<size_t>(rows) + 1, 0) {
  DHGCN_CHECK_GT(rows, 0);
  DHGCN_CHECK_GT(cols, 0);
}

CsrMatrix CsrMatrix::FromDense(const Tensor& dense, float tolerance) {
  DHGCN_CHECK_EQ(dense.ndim(), 2);
  CsrMatrix csr(dense.dim(0), dense.dim(1));
  const float* data = dense.data();
  for (int64_t r = 0; r < csr.rows_; ++r) {
    for (int64_t c = 0; c < csr.cols_; ++c) {
      float v = data[r * csr.cols_ + c];
      if (std::fabs(v) > tolerance) {
        csr.col_idx_.push_back(c);
        csr.values_.push_back(v);
      }
    }
    csr.row_ptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(csr.values_.size());
  }
  return csr;
}

void CsrMatrix::AssignFromDense(const float* data, int64_t rows,
                                int64_t cols, float tolerance) {
  DHGCN_CHECK_GT(rows, 0);
  DHGCN_CHECK_GT(cols, 0);
  rows_ = rows;
  cols_ = cols;
  row_ptr_.resize(static_cast<size_t>(rows) + 1);
  col_idx_.clear();   // keeps capacity: no heap traffic once warm
  values_.clear();
  row_ptr_[0] = 0;
  for (int64_t r = 0; r < rows_; ++r) {
    const float* row = data + r * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      float v = row[c];
      if (std::fabs(v) > tolerance) {
        col_idx_.push_back(c);
        values_.push_back(v);
      }
    }
    row_ptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(values_.size());
  }
}

void CsrMatrix::AssignFromDense(const Tensor& dense, float tolerance) {
  DHGCN_CHECK_EQ(dense.ndim(), 2);
  AssignFromDense(dense.data(), dense.dim(0), dense.dim(1), tolerance);
}

CsrMatrix CsrMatrix::FromTriplets(
    int64_t rows, int64_t cols,
    std::vector<std::tuple<int64_t, int64_t, float>> triplets) {
  CsrMatrix csr(rows, cols);
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              if (std::get<0>(a) != std::get<0>(b)) {
                return std::get<0>(a) < std::get<0>(b);
              }
              return std::get<1>(a) < std::get<1>(b);
            });
  int64_t previous_row = -1, previous_col = -1;
  for (const auto& [r, c, v] : triplets) {
    DHGCN_CHECK(r >= 0 && r < rows);
    DHGCN_CHECK(c >= 0 && c < cols);
    if (r == previous_row && c == previous_col) {
      csr.values_.back() += v;  // sum duplicates
      continue;
    }
    while (previous_row < r) {
      ++previous_row;
      csr.row_ptr_[static_cast<size_t>(previous_row)] =
          static_cast<int64_t>(csr.values_.size());
    }
    csr.col_idx_.push_back(c);
    csr.values_.push_back(v);
    previous_col = c;
  }
  while (previous_row < rows - 1) {
    ++previous_row;
    csr.row_ptr_[static_cast<size_t>(previous_row)] =
        static_cast<int64_t>(csr.values_.size());
  }
  // row_ptr_[0] must be 0; fix the off-by-one of the fill loop above.
  // The loop sets row_ptr_[r] to the count *before* row r's entries,
  // which is exactly the CSR convention given sorted input; the final
  // sentinel holds the total.
  csr.row_ptr_[static_cast<size_t>(rows)] =
      static_cast<int64_t>(csr.values_.size());
  return csr;
}

double CsrMatrix::Density() const {
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

Tensor CsrMatrix::ToDense() const {
  Tensor dense({rows_, cols_});
  float* data = dense.data();
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      data[r * cols_ + col_idx_[static_cast<size_t>(k)]] +=
          values_[static_cast<size_t>(k)];
    }
  }
  return dense;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<std::tuple<int64_t, int64_t, float>> triplets;
  triplets.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      triplets.emplace_back(col_idx_[static_cast<size_t>(k)], r,
                            values_[static_cast<size_t>(k)]);
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

Tensor CsrMatrix::MatVec(const Tensor& x) const {
  DHGCN_CHECK_EQ(x.numel(), cols_);
  Tensor y({rows_});
  const float* px = x.data();
  float* py = y.data();
  for (int64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      acc += static_cast<double>(values_[static_cast<size_t>(k)]) *
             px[col_idx_[static_cast<size_t>(k)]];
    }
    py[r] = static_cast<float>(acc);
  }
  return y;
}

std::string CsrMatrix::ToString() const {
  std::ostringstream oss;
  oss << "CsrMatrix(" << rows_ << "x" << cols_ << ", nnz=" << nnz()
      << ", density=" << Density() << ")";
  return oss.str();
}

Tensor SpMM(const CsrMatrix& a, const Tensor& b) {
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(b.dim(0), a.cols());
  Tensor c({a.rows(), b.dim(1)});
  SpMMInto(a, b, &c, /*accumulate=*/true);  // c is freshly zeroed
  return c;
}

void SpMMAccumulate(const CsrMatrix& a, const Tensor& b, Tensor& c) {
  SpMMInto(a, b, &c, /*accumulate=*/true);
}

void SpMMInto(const CsrMatrix& a, const Tensor& b, Tensor* c,
              bool accumulate) {
  DHGCN_CHECK(c != nullptr);
  DHGCN_CHECK_EQ(b.ndim(), 2);
  DHGCN_CHECK_EQ(c->ndim(), 2);
  DHGCN_CHECK_EQ(b.dim(0), a.cols());
  DHGCN_CHECK_EQ(c->dim(0), a.rows());
  DHGCN_CHECK_EQ(c->dim(1), b.dim(1));
  const int64_t n = b.dim(1);
  const int64_t rows = a.rows();
  const float* pb = b.data();
  float* pc = c->data();
  const int64_t* row_ptr = a.row_ptr().data();
  const int64_t* col_idx = a.col_idx().data();
  const float* values = a.values().data();
  // Cost per output row ≈ nnz(row) * n MACs; use the mean so the grain
  // stays a pure function of the matrix shape (determinism contract).
  const int64_t flops_per_row = (a.nnz() * n) / (rows > 0 ? rows : 1) + 1;
  ThreadPool::Get().ParallelFor(
      0, rows, GrainForFlops(flops_per_row),
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t r = row_begin; r < row_end; ++r) {
          float* crow = pc + r * n;
          if (!accumulate) std::fill(crow, crow + n, 0.0f);
          // Four nonzeros per pass over the output row: the per-element
          // adds stay in ascending-k order (t += v0*..; t += v1*..; ...)
          // so results are bit-identical to the single-k loop — the
          // unroll only cuts the C-row read/write traffic 4x.
          int64_t k = row_ptr[r];
          const int64_t k_end = row_ptr[r + 1];
          for (; k + 3 < k_end; k += 4) {
            const float v0 = values[k];
            const float v1 = values[k + 1];
            const float v2 = values[k + 2];
            const float v3 = values[k + 3];
            const float* b0 = pb + col_idx[k] * n;
            const float* b1 = pb + col_idx[k + 1] * n;
            const float* b2 = pb + col_idx[k + 2] * n;
            const float* b3 = pb + col_idx[k + 3] * n;
            for (int64_t j = 0; j < n; ++j) {
              float t = crow[j];
              t += v0 * b0[j];
              t += v1 * b1[j];
              t += v2 * b2[j];
              t += v3 * b3[j];
              crow[j] = t;
            }
          }
          for (; k < k_end; ++k) {
            const float v = values[k];
            const float* brow = pb + col_idx[k] * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
          }
        }
      });
}

void SpMMAccumulateInto(const CsrMatrix& a, const Tensor& b, Tensor* c) {
  SpMMInto(a, b, c, /*accumulate=*/true);
}

void DenseSpMMInto(const Tensor& a, const CsrMatrix& b, Tensor* c,
                   bool accumulate) {
  DHGCN_CHECK(c != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(c->ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.rows());
  DHGCN_CHECK_EQ(c->dim(0), a.dim(0));
  DHGCN_CHECK_EQ(c->dim(1), b.cols());
  const int64_t m = a.dim(0);
  const int64_t kk = a.dim(1);
  const int64_t n = b.cols();
  const float* pa = a.data();
  float* pc = c->data();
  const int64_t* row_ptr = b.row_ptr().data();
  const int64_t* col_idx = b.col_idx().data();
  const float* values = b.values().data();
  ThreadPool::Get().ParallelFor(
      0, m, GrainForFlops(b.nnz() + kk),
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const float* arow = pa + i * kk;
          float* crow = pc + i * n;
          if (!accumulate) std::fill(crow, crow + n, 0.0f);
          for (int64_t k = 0; k < kk; ++k) {
            const float av = arow[k];
            if (av == 0.0f) continue;  // same skip as the dense kSparse path
            for (int64_t idx = row_ptr[k]; idx < row_ptr[k + 1]; ++idx) {
              crow[col_idx[idx]] += av * values[idx];
            }
          }
        }
      });
}

namespace {

// Shared core of SpMMTransposedBInto / SparseMixInto: for `rows` dense
// rows of width k_dim, out[r, j] = double-dot(CSR row j of b, row r).
// Chunks write disjoint output rows; the per-element double accumulator
// visits columns in ascending order, matching the dense
// GemmTransposedB / VertexMix loops term-for-term (zero products are
// exact no-ops in the double sum), hence bit-identical to them.
void SparseRowDots(const CsrMatrix& b, const float* pa, float* pc,
                   int64_t rows, int64_t k_dim) {
  DHGCN_CHECK_EQ(k_dim, b.cols());
  const int64_t m = b.rows();
  const int64_t* row_ptr = b.row_ptr().data();
  const int64_t* col_idx = b.col_idx().data();
  const float* values = b.values().data();
  const int64_t flops_per_row = b.nnz() + 1;
  ThreadPool::Get().ParallelFor(
      0, rows, GrainForFlops(flops_per_row),
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t r = row_begin; r < row_end; ++r) {
          const float* arow = pa + r * k_dim;
          float* crow = pc + r * m;
          for (int64_t j = 0; j < m; ++j) {
            double acc = 0.0;
            for (int64_t k = row_ptr[j]; k < row_ptr[j + 1]; ++k) {
              acc += static_cast<double>(values[k]) * arow[col_idx[k]];
            }
            crow[j] = static_cast<float>(acc);
          }
        }
      });
}

}  // namespace

void SpMMTransposedBInto(const Tensor& a, const CsrMatrix& b, Tensor* c) {
  DHGCN_CHECK(c != nullptr);
  DHGCN_CHECK_EQ(a.ndim(), 2);
  DHGCN_CHECK_EQ(c->ndim(), 2);
  DHGCN_CHECK_EQ(a.dim(1), b.cols());
  DHGCN_CHECK_EQ(c->dim(0), a.dim(0));
  DHGCN_CHECK_EQ(c->dim(1), b.rows());
  SparseRowDots(b, a.data(), c->data(), a.dim(0), a.dim(1));
}

void SparseMixInto(const CsrMatrix& op, const Tensor& x, Tensor* y) {
  DHGCN_CHECK(y != nullptr);
  DHGCN_CHECK_GE(x.ndim(), 1);
  DHGCN_CHECK_EQ(x.dim(x.ndim() - 1), op.cols());
  DHGCN_CHECK_EQ(op.rows(), op.cols());
  DHGCN_CHECK_EQ(y->numel(), x.numel());
  const int64_t v = op.cols();
  SparseRowDots(op, x.data(), y->data(), x.numel() / v, v);
}

void SparseMixBackwardInto(const CsrMatrix& op, const Tensor& g,
                           Tensor* gi) {
  DHGCN_CHECK(gi != nullptr);
  DHGCN_CHECK_GE(g.ndim(), 1);
  const int64_t v = op.rows();
  DHGCN_CHECK_EQ(op.cols(), v);
  DHGCN_CHECK_EQ(g.dim(g.ndim() - 1), v);
  DHGCN_CHECK_EQ(gi->numel(), g.numel());
  const int64_t rows = g.numel() / v;
  const float* pg = g.data();
  float* pgi = gi->data();
  const int64_t* row_ptr = op.row_ptr().data();
  const int64_t* col_idx = op.col_idx().data();
  const float* values = op.values().data();
  const int64_t flops_per_row = op.nnz() + 1;
  ThreadPool::Get().ParallelFor(
      0, rows, GrainForFlops(flops_per_row),
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t r = row_begin; r < row_end; ++r) {
          const float* grow = pg + r * v;
          float* girow = pgi + r * v;
          for (int64_t vi = 0; vi < v; ++vi) {
            const float gval = grow[vi];
            if (gval == 0.0f) continue;  // same skip as the dense backward
            for (int64_t k = row_ptr[vi]; k < row_ptr[vi + 1]; ++k) {
              girow[col_idx[k]] += gval * values[k];
            }
          }
        }
      });
}

SparseVertexMix::SparseVertexMix(CsrMatrix op)
    : op_(std::move(op)), op_transposed_(op_.Transposed()) {
  DHGCN_CHECK_EQ(op_.rows(), op_.cols());
}

SparseVertexMix::SparseVertexMix(const Tensor& dense_op, float tolerance)
    : SparseVertexMix(CsrMatrix::FromDense(dense_op, tolerance)) {}

namespace {

// Y[row, v] = sum_u A[v, u] X[row, u] for every leading row: equivalent
// to X * A^T, computed as row-wise sparse dots over the CSR of A.
Tensor ApplyOnVertexAxis(const CsrMatrix& op, const Tensor& x) {
  int64_t v = x.dim(3);
  DHGCN_CHECK_EQ(v, op.cols());
  int64_t rows = x.numel() / v;
  Tensor y(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const auto& row_ptr = op.row_ptr();
  const auto& col_idx = op.col_idx();
  const auto& values = op.values();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xrow = px + r * v;
    float* yrow = py + r * v;
    for (int64_t vi = 0; vi < op.rows(); ++vi) {
      double acc = 0.0;
      for (int64_t k = row_ptr[static_cast<size_t>(vi)];
           k < row_ptr[static_cast<size_t>(vi) + 1]; ++k) {
        acc += static_cast<double>(values[static_cast<size_t>(k)]) *
               xrow[col_idx[static_cast<size_t>(k)]];
      }
      yrow[vi] = static_cast<float>(acc);
    }
  }
  return y;
}

}  // namespace

Tensor SparseVertexMix::Forward(const Tensor& input) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  return ApplyOnVertexAxis(op_, input);
}

Tensor SparseVertexMix::Backward(const Tensor& grad_output) {
  DHGCN_CHECK_EQ(grad_output.ndim(), 4);
  // dX[..., u] = sum_v A[v, u] dY[..., v]  ==  apply A^T.
  return ApplyOnVertexAxis(op_transposed_, grad_output);
}

std::string SparseVertexMix::name() const {
  return "SparseVertexMix(" + op_.ToString() + ")";
}

}  // namespace dhgcn
