#include "tensor/gemm_kernel_int8.h"

#include <algorithm>
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define DHGCN_INT8_X86 1
#include <immintrin.h>
#else
#define DHGCN_INT8_X86 0
#endif

namespace dhgcn {
namespace detail {
namespace {

// Mirrors the fp32 kernel's inlining discipline (gemm_kernel.cc): the
// AVX2 helpers are always_inline so the whole nest is code-generated
// under the one target-attributed entry point.
#if defined(__GNUC__)
#define DHGCN_INT8_INLINE inline __attribute__((always_inline))
#else
#define DHGCN_INT8_INLINE inline
#endif

static_assert(kInt8NR == 16, "micro-kernels assume two 8-column vectors");
static_assert(kInt8KStep == 8, "packed groups hold two 4-deep halves");
static_assert(kInt8KC % kInt8KStep == 0, "KC must be whole groups");

/// Bytes in one packed kInt8KStep-deep group of a kInt8NR-wide panel.
constexpr int64_t kGroupBytes = 2 * kInt8NR * 4;

// ---------------------------------------------------------------------------
// Scalar reference nest. Integer arithmetic is exact, so this is
// bit-identical to the AVX2 clone by construction (the clone's
// saturating int16 ops never saturate for |w| <= kInt8WeightMax; see
// the header contract). Reads the same packed layout so zero padding
// is handled identically.
// ---------------------------------------------------------------------------

template <int kRows>
DHGCN_INT8_INLINE void Int8TileScalar(const uint8_t* a, int64_t lda,
                                      const int8_t* bp, int64_t groups,
                                      int32_t* c, int64_t ldc,
                                      int64_t cols) {
  int32_t acc[kRows][kInt8NR] = {};
  for (int64_t g = 0; g < groups; ++g) {
    const int8_t* grp = bp + g * kGroupBytes;
    for (int r = 0; r < kRows; ++r) {
      const uint8_t* ar = a + r * lda + g * kInt8KStep;
      for (int64_t j = 0; j < kInt8NR; ++j) {
        const int8_t* lo = grp + j * 4;
        const int8_t* hi = grp + kInt8NR * 4 + j * 4;
        int32_t sum = 0;
        for (int t = 0; t < 4; ++t) {
          sum += static_cast<int32_t>(ar[t]) * static_cast<int32_t>(lo[t]);
          sum += static_cast<int32_t>(ar[4 + t]) * static_cast<int32_t>(hi[t]);
        }
        acc[r][j] += sum;
      }
    }
  }
  for (int r = 0; r < kRows; ++r) {
    int32_t* crow = c + r * ldc;
    for (int64_t j = 0; j < cols; ++j) crow[j] += acc[r][j];
  }
}

DHGCN_INT8_INLINE void Int8BlockedScalar(const uint8_t* a, int64_t lda,
                                         const int8_t* bp, int32_t* c,
                                         int64_t m, int64_t k_pad,
                                         int64_t n) {
  const int64_t groups_total = k_pad / kInt8KStep;
  const int64_t groups_kc = kInt8KC / kInt8KStep;
  const int64_t panels = (n + kInt8NR - 1) / kInt8NR;
  const int64_t panel_stride = groups_total * kGroupBytes;
  for (int64_t g0 = 0; g0 < groups_total; g0 += groups_kc) {
    const int64_t gc = std::min(groups_kc, groups_total - g0);
    for (int64_t panel = 0; panel < panels; ++panel) {
      const int64_t j0 = panel * kInt8NR;
      const int64_t cols = std::min(kInt8NR, n - j0);
      const int8_t* bpk = bp + panel * panel_stride + g0 * kGroupBytes;
      for (int64_t i = 0; i < m; i += kInt8MR) {
        const int64_t rows = std::min(kInt8MR, m - i);
        const uint8_t* ai = a + i * lda + g0 * kInt8KStep;
        int32_t* ci = c + i * n + j0;
        switch (rows) {
          case 4:
            Int8TileScalar<4>(ai, lda, bpk, gc, ci, n, cols);
            break;
          case 3:
            Int8TileScalar<3>(ai, lda, bpk, gc, ci, n, cols);
            break;
          case 2:
            Int8TileScalar<2>(ai, lda, bpk, gc, ci, n, cols);
            break;
          default:
            Int8TileScalar<1>(ai, lda, bpk, gc, ci, n, cols);
            break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 nest. Compiled only on x86/GNU toolchains; when AVX2 is not the
// build baseline every function carries target("avx2") and is selected
// at runtime (the gemm_kernel.cc dispatch pattern). Per packed group g
// and 8-column vector: two vpmaddubsw (u8 activations x s8 weights, 2
// k-steps per int16 lane), one vpaddsw joining the low/high halves (4
// k-steps per lane, <= 32640 so never saturating), one vpmaddwd against
// ones collapsing to int32 per column, one vpaddd into the accumulator.
// ---------------------------------------------------------------------------

#if DHGCN_INT8_X86
#if defined(__AVX2__)
#define DHGCN_INT8_TARGET
#define DHGCN_INT8_DISPATCH 0
#else
#define DHGCN_INT8_TARGET __attribute__((target("avx2")))
#define DHGCN_INT8_DISPATCH 1
#endif

/// Broadcast 4 consecutive activation bytes into every 32-bit lane
/// (each lane of packed B holds the matching 4 weight bytes of one
/// column).
DHGCN_INT8_TARGET DHGCN_INT8_INLINE __m256i Int8Broadcast4(
    const uint8_t* p) {
  int32_t bits;
  std::memcpy(&bits, p, sizeof(bits));
  return _mm256_set1_epi32(bits);
}

/// One row's contribution for one 8-column vector of the group.
DHGCN_INT8_TARGET DHGCN_INT8_INLINE __m256i Int8DotGroup(
    __m256i a_lo, __m256i a_hi, __m256i b_lo, __m256i b_hi,
    __m256i ones, __m256i acc) {
  const __m256i t = _mm256_maddubs_epi16(a_lo, b_lo);
  const __m256i u = _mm256_maddubs_epi16(a_hi, b_hi);
  const __m256i s = _mm256_adds_epi16(t, u);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(s, ones));
}

// Register tile: kRows x kInt8NR int32 accumulators as NAMED __m256i
// variables (same rationale as the fp32 kernel: an indexed array spills
// to the stack). Budget at kRows = 4: 8 accumulators + 4 B vectors +
// ones + 2 transient A broadcasts = 15 of 16 ymm.
template <int kRows>
DHGCN_INT8_TARGET DHGCN_INT8_INLINE void Int8TileAvx2(
    const uint8_t* a, int64_t lda, const int8_t* bp, int64_t groups,
    int32_t* c, int64_t ldc, int64_t cols) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i c00 = _mm256_setzero_si256();
  __m256i c01 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256();
  __m256i c11 = _mm256_setzero_si256();
  __m256i c20 = _mm256_setzero_si256();
  __m256i c21 = _mm256_setzero_si256();
  __m256i c30 = _mm256_setzero_si256();
  __m256i c31 = _mm256_setzero_si256();
  for (int64_t g = 0; g < groups; ++g) {
    const int8_t* grp = bp + g * kGroupBytes;
    const __m256i b0_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(grp));
    const __m256i b1_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(grp + 32));
    const __m256i b0_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(grp + 64));
    const __m256i b1_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(grp + 96));
    {
      const uint8_t* ar = a + g * kInt8KStep;
      const __m256i a_lo = Int8Broadcast4(ar);
      const __m256i a_hi = Int8Broadcast4(ar + 4);
      c00 = Int8DotGroup(a_lo, a_hi, b0_lo, b0_hi, ones, c00);
      c01 = Int8DotGroup(a_lo, a_hi, b1_lo, b1_hi, ones, c01);
    }
    if constexpr (kRows > 1) {
      const uint8_t* ar = a + lda + g * kInt8KStep;
      const __m256i a_lo = Int8Broadcast4(ar);
      const __m256i a_hi = Int8Broadcast4(ar + 4);
      c10 = Int8DotGroup(a_lo, a_hi, b0_lo, b0_hi, ones, c10);
      c11 = Int8DotGroup(a_lo, a_hi, b1_lo, b1_hi, ones, c11);
    }
    if constexpr (kRows > 2) {
      const uint8_t* ar = a + 2 * lda + g * kInt8KStep;
      const __m256i a_lo = Int8Broadcast4(ar);
      const __m256i a_hi = Int8Broadcast4(ar + 4);
      c20 = Int8DotGroup(a_lo, a_hi, b0_lo, b0_hi, ones, c20);
      c21 = Int8DotGroup(a_lo, a_hi, b1_lo, b1_hi, ones, c21);
    }
    if constexpr (kRows > 3) {
      const uint8_t* ar = a + 3 * lda + g * kInt8KStep;
      const __m256i a_lo = Int8Broadcast4(ar);
      const __m256i a_hi = Int8Broadcast4(ar + 4);
      c30 = Int8DotGroup(a_lo, a_hi, b0_lo, b0_hi, ones, c30);
      c31 = Int8DotGroup(a_lo, a_hi, b1_lo, b1_hi, ones, c31);
    }
  }
  if (cols == kInt8NR) {
    // Full panel: read-modify-write C directly.
    __m256i* crow = reinterpret_cast<__m256i*>(c);
    _mm256_storeu_si256(
        crow, _mm256_add_epi32(_mm256_loadu_si256(crow), c00));
    _mm256_storeu_si256(
        crow + 1, _mm256_add_epi32(_mm256_loadu_si256(crow + 1), c01));
    if constexpr (kRows > 1) {
      crow = reinterpret_cast<__m256i*>(c + ldc);
      _mm256_storeu_si256(
          crow, _mm256_add_epi32(_mm256_loadu_si256(crow), c10));
      _mm256_storeu_si256(
          crow + 1, _mm256_add_epi32(_mm256_loadu_si256(crow + 1), c11));
    }
    if constexpr (kRows > 2) {
      crow = reinterpret_cast<__m256i*>(c + 2 * ldc);
      _mm256_storeu_si256(
          crow, _mm256_add_epi32(_mm256_loadu_si256(crow), c20));
      _mm256_storeu_si256(
          crow + 1, _mm256_add_epi32(_mm256_loadu_si256(crow + 1), c21));
    }
    if constexpr (kRows > 3) {
      crow = reinterpret_cast<__m256i*>(c + 3 * ldc);
      _mm256_storeu_si256(
          crow, _mm256_add_epi32(_mm256_loadu_si256(crow), c30));
      _mm256_storeu_si256(
          crow + 1, _mm256_add_epi32(_mm256_loadu_si256(crow + 1), c31));
    }
    return;
  }
  // Edge panel (B columns are zero-padded, so the full-width compute
  // above is exact): bounce through a stack tile to avoid writing past
  // the live columns of C.
  alignas(32) int32_t tmp[kRows][kInt8NR];
  _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[0][0]), c00);
  _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[0][8]), c01);
  if constexpr (kRows > 1) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[1][0]), c10);
    _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[1][8]), c11);
  }
  if constexpr (kRows > 2) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[2][0]), c20);
    _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[2][8]), c21);
  }
  if constexpr (kRows > 3) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[3][0]), c30);
    _mm256_store_si256(reinterpret_cast<__m256i*>(&tmp[3][8]), c31);
  }
  for (int r = 0; r < kRows; ++r) {
    int32_t* crow = c + r * ldc;
    for (int64_t j = 0; j < cols; ++j) crow[j] += tmp[r][j];
  }
}

DHGCN_INT8_TARGET void Int8BlockedAvx2(const uint8_t* a, int64_t lda,
                                       const int8_t* bp, int32_t* c,
                                       int64_t m, int64_t k_pad,
                                       int64_t n) {
  const int64_t groups_total = k_pad / kInt8KStep;
  const int64_t groups_kc = kInt8KC / kInt8KStep;
  const int64_t panels = (n + kInt8NR - 1) / kInt8NR;
  const int64_t panel_stride = groups_total * kGroupBytes;
  for (int64_t g0 = 0; g0 < groups_total; g0 += groups_kc) {
    const int64_t gc = std::min(groups_kc, groups_total - g0);
    for (int64_t panel = 0; panel < panels; ++panel) {
      const int64_t j0 = panel * kInt8NR;
      const int64_t cols = std::min(kInt8NR, n - j0);
      const int8_t* bpk = bp + panel * panel_stride + g0 * kGroupBytes;
      for (int64_t i = 0; i < m; i += kInt8MR) {
        const int64_t rows = std::min(kInt8MR, m - i);
        const uint8_t* ai = a + i * lda + g0 * kInt8KStep;
        int32_t* ci = c + i * n + j0;
        switch (rows) {
          case 4:
            Int8TileAvx2<4>(ai, lda, bpk, gc, ci, n, cols);
            break;
          case 3:
            Int8TileAvx2<3>(ai, lda, bpk, gc, ci, n, cols);
            break;
          case 2:
            Int8TileAvx2<2>(ai, lda, bpk, gc, ci, n, cols);
            break;
          default:
            Int8TileAvx2<1>(ai, lda, bpk, gc, ci, n, cols);
            break;
        }
      }
    }
  }
}

#if DHGCN_INT8_DISPATCH
// Resolved during static initialization (single-threaded), so tasks
// calling the kernel never touch a function-local init guard.
const bool kHaveAvx2 = __builtin_cpu_supports("avx2");
#else
constexpr bool kHaveAvx2 = true;
#endif
#endif  // DHGCN_INT8_X86

// ---------------------------------------------------------------------------
// Activation quantization (the u8 feeder of the GEMM). Adding 2^23 +
// 2^22 to a float in clamp range forces the significand to integer
// granularity with the FPU's round-to-nearest-even, and the rounded
// integer sits in the low significand bits; subtracting the magic
// constant's bit pattern (pre-biased by -128 so the zero point comes
// for free) recovers q directly. Both paths run the identical
// elementwise op sequence, so scalar and AVX2 agree bit for bit.
// ---------------------------------------------------------------------------

constexpr float kRoundMagic = 12582912.0f;  // 2^23 + 2^22
// bit_cast(r + magic) == bit_cast(magic) + round(r) for |r| < 2^21, so
// subtracting (bit_cast(magic) - 128) yields round(r) + 128 in one op.
const int32_t kQuantBias = [] {
  int32_t bits;
  std::memcpy(&bits, &kRoundMagic, sizeof(bits));
  return bits - 128;
}();

void Int8QuantizeRowScalar(const float* x, int64_t n, float inv,
                           uint8_t* q) {
  for (int64_t i = 0; i < n; ++i) {
    float r = x[i] * inv;
    // Clamps in exact vmaxps/vminps operand order: NaN fails the first
    // compare and clamps low, matching the AVX2 clone.
    r = (r > -127.0f) ? r : -127.0f;
    r = (r < 127.0f) ? r : 127.0f;
    const float biased = r + kRoundMagic;
    int32_t bits;
    std::memcpy(&bits, &biased, sizeof(bits));
    q[i] = static_cast<uint8_t>(bits - kQuantBias);
  }
}

#if DHGCN_INT8_X86
DHGCN_INT8_TARGET void Int8QuantizeRowAvx2(const float* x, int64_t n,
                                           float inv, uint8_t* q) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vlo = _mm256_set1_ps(-127.0f);
  const __m256 vhi = _mm256_set1_ps(127.0f);
  const __m256 vmagic = _mm256_set1_ps(kRoundMagic);
  const __m256i vbias = _mm256_set1_epi32(kQuantBias);
  // Undo the lane-crossing of the two pack steps below.
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i w[4];
    for (int t = 0; t < 4; ++t) {
      __m256 r = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * t), vinv);
      r = _mm256_max_ps(r, vlo);  // NaN -> -127 (vmaxps returns src2)
      r = _mm256_min_ps(r, vhi);
      r = _mm256_add_ps(r, vmagic);
      w[t] = _mm256_sub_epi32(_mm256_castps_si256(r), vbias);
    }
    // q values are in [1, 255]: two unsigned-saturating packs narrow
    // int32 -> u8 without clipping, then one permute fixes dword order.
    const __m256i p01 = _mm256_packus_epi32(w[0], w[1]);
    const __m256i p23 = _mm256_packus_epi32(w[2], w[3]);
    __m256i p = _mm256_packus_epi16(p01, p23);
    p = _mm256_permutevar8x32_epi32(p, order);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), p);
  }
  if (i < n) Int8QuantizeRowScalar(x + i, n - i, inv, q + i);
}
#endif  // DHGCN_INT8_X86

// ---------------------------------------------------------------------------
// Blocked u8 transpose (the im2col feeder of width-1 conv kernels).
// SSE2 is x86-64 baseline, so the 16x16 tile needs no runtime dispatch:
// four perfect-shuffle stages (epi8/16/32/64 unpacks with doubling pair
// distance) leave the transposed rows in bit-reversed order, undone by
// the store index table.
// ---------------------------------------------------------------------------

void Int8TransposeScalarBlock(const uint8_t* src, int64_t src_stride,
                              uint8_t* dst, int64_t dst_stride,
                              int64_t rows, int64_t cols) {
  for (int64_t i = 0; i < rows; ++i) {
    const uint8_t* srow = src + i * src_stride;
    for (int64_t j = 0; j < cols; ++j) {
      dst[j * dst_stride + i] = srow[j];
    }
  }
}

#if DHGCN_INT8_X86
DHGCN_INT8_INLINE void Int8TransposeTile16(const uint8_t* src, int64_t ss,
                                           uint8_t* dst, int64_t ds) {
  __m128i v[16], t[16];
  for (int i = 0; i < 16; ++i) {
    v[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i * ss));
  }
  for (int g = 0; g < 16; g += 2) {  // d=1, bytes
    t[g] = _mm_unpacklo_epi8(v[g], v[g + 1]);
    t[g + 1] = _mm_unpackhi_epi8(v[g], v[g + 1]);
  }
  for (int g = 0; g < 16; g += 4) {  // d=2, words
    for (int j = 0; j < 2; ++j) {
      v[g + j] = _mm_unpacklo_epi16(t[g + j], t[g + j + 2]);
      v[g + j + 2] = _mm_unpackhi_epi16(t[g + j], t[g + j + 2]);
    }
  }
  for (int g = 0; g < 16; g += 8) {  // d=4, dwords
    for (int j = 0; j < 4; ++j) {
      t[g + j] = _mm_unpacklo_epi32(v[g + j], v[g + j + 4]);
      t[g + j + 4] = _mm_unpackhi_epi32(v[g + j], v[g + j + 4]);
    }
  }
  for (int j = 0; j < 8; ++j) {  // d=8, qwords
    v[j] = _mm_unpacklo_epi64(t[j], t[j + 8]);
    v[j + 8] = _mm_unpackhi_epi64(t[j], t[j + 8]);
  }
  static constexpr int kRev[16] = {0, 8, 4, 12, 2, 10, 6, 14,
                                   1, 9, 5, 13, 3, 11, 7, 15};
  for (int i = 0; i < 16; ++i) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + kRev[i] * ds), v[i]);
  }
}
#endif  // DHGCN_INT8_X86

}  // namespace

int64_t Int8PackedBCount(int64_t k, int64_t n) {
  return (n + kInt8NR - 1) / kInt8NR * kInt8NR * Int8KPad(k);
}

void Int8PackB(const int8_t* b, int64_t k, int64_t n, int8_t* bp) {
  const int64_t k_pad = Int8KPad(k);
  const int64_t groups = k_pad / kInt8KStep;
  const int64_t panels = (n + kInt8NR - 1) / kInt8NR;
  for (int64_t panel = 0; panel < panels; ++panel) {
    const int64_t j0 = panel * kInt8NR;
    const int64_t cols = std::min(kInt8NR, n - j0);
    int8_t* dst = bp + panel * groups * kGroupBytes;
    for (int64_t g = 0; g < groups; ++g) {
      int8_t* grp = dst + g * kGroupBytes;
      for (int half = 0; half < 2; ++half) {
        for (int64_t j = 0; j < kInt8NR; ++j) {
          for (int64_t t = 0; t < 4; ++t) {
            const int64_t kk = g * kInt8KStep + half * 4 + t;
            grp[half * kInt8NR * 4 + j * 4 + t] =
                (j < cols && kk < k) ? b[kk * n + j0 + j] : int8_t{0};
          }
        }
      }
    }
  }
}

void Int8PackColumnSums(const int8_t* b, int64_t k, int64_t n,
                        int32_t* sums) {
  for (int64_t j = 0; j < n; ++j) sums[j] = 0;
  for (int64_t p = 0; p < k; ++p) {
    const int8_t* row = b + p * n;
    for (int64_t j = 0; j < n; ++j) sums[j] += row[j];
  }
}

void Int8GemmPackedB(const uint8_t* a, int64_t lda, const int8_t* bp,
                     int32_t* c, int64_t m, int64_t k_pad, int64_t n) {
  std::fill(c, c + m * n, 0);
#if DHGCN_INT8_X86
  if (kHaveAvx2) {
    Int8BlockedAvx2(a, lda, bp, c, m, k_pad, n);
    return;
  }
#endif
  Int8BlockedScalar(a, lda, bp, c, m, k_pad, n);
}

bool Int8GemmHasAvx2() {
#if DHGCN_INT8_X86
  return kHaveAvx2;
#else
  return false;
#endif
}

void Int8QuantizeRow(const float* x, int64_t n, float inv_scale,
                     uint8_t* q) {
#if DHGCN_INT8_X86
  if (kHaveAvx2) {
    Int8QuantizeRowAvx2(x, n, inv_scale, q);
    return;
  }
#endif
  Int8QuantizeRowScalar(x, n, inv_scale, q);
}

void Int8TransposeU8(const uint8_t* src, int64_t src_stride, int64_t rows,
                     int64_t cols, uint8_t* dst, int64_t dst_stride) {
#if DHGCN_INT8_X86
  int64_t i = 0;
  for (; i + 16 <= rows; i += 16) {
    const uint8_t* sblk = src + i * src_stride;
    int64_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      Int8TransposeTile16(sblk + j, src_stride, dst + j * dst_stride + i,
                          dst_stride);
    }
    if (j < cols) {
      Int8TransposeScalarBlock(sblk + j, src_stride, dst + j * dst_stride + i,
                               dst_stride, 16, cols - j);
    }
  }
  if (i < rows) {
    Int8TransposeScalarBlock(src + i * src_stride, src_stride, dst + i,
                             dst_stride, rows - i, cols);
  }
#else
  Int8TransposeScalarBlock(src, src_stride, dst, dst_stride, rows, cols);
#endif
}

}  // namespace detail
}  // namespace dhgcn
