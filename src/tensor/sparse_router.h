#ifndef DHGCN_TENSOR_SPARSE_ROUTER_H_
#define DHGCN_TENSOR_SPARSE_ROUTER_H_

#include <cstdint>
#include <string>

#include "base/result.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// Sparse-execution mode, selected via `--sparse off|auto|on` or the
/// `DHGCN_SPARSE` environment variable:
///  - kOff:  always run the dense kernels (legacy path).
///  - kAuto: route an operator through CSR SpMM when its measured
///           density is at or below the crossover threshold.
///  - kOn:   always route through the sparse kernels.
enum class SparseMode { kOff, kAuto, kOn };

Result<SparseMode> ParseSparseMode(const std::string& text);
const char* SparseModeName(SparseMode mode);

/// \brief Process-wide density policy deciding dense vs. CSR execution
/// for the hypergraph operators.
///
/// The routed kernels (`SpMMInto` family, sparse mix loops) are
/// bit-identical to their dense counterparts — skipped zero products
/// are exact float/double no-ops and the accumulation order is
/// preserved — so the router is purely a *performance* policy: any
/// mode produces the same bits, and the threshold only picks where the
/// sparse kernels stop being faster.
///
/// The default threshold is the crossover measured by `bench_sparse`
/// on the reference 1-core container (see BENCH_sparse.json): below it
/// the CSR kernels beat the blocked GEMM, above it the dense path wins.
/// Override order: `DHGCN_SPARSE` env (read once at first use; a mode
/// name sets the mode, a number in (0, 1] sets the threshold and
/// implies kAuto), then the `--sparse` / `Configure` calls from the
/// CLI tools.
///
/// Layers cache their per-operand density probe (and the compressed
/// CSR image) for operands that are fixed after construction; only
/// data-dependent operators re-probe per step, an O(numel) scan that is
/// a factor `channels` cheaper than the mix it guards.
///
/// Thread contract: configuration happens at startup (flag parsing)
/// before compute; `ShouldRoute`/accessors are lock-free reads driven
/// by the externally-single-threaded compute path (same contract as
/// `ThreadPool`).
class SparseRouter {
 public:
  /// Crossover measured by bench_sparse (256x256 operand, 1-core
  /// container): CSR SpMM beats the blocked GEMM up to ~35% density
  /// and is >=2x faster at <=10%.
  static constexpr double kDefaultDensityThreshold = 0.35;

  static SparseRouter& Get();

  SparseRouter(const SparseRouter&) = delete;
  SparseRouter& operator=(const SparseRouter&) = delete;

  void set_mode(SparseMode mode) { mode_ = mode; }
  SparseMode mode() const { return mode_; }

  /// `threshold` must lie in (0, 1].
  void set_density_threshold(double threshold);
  double density_threshold() const { return threshold_; }

  /// The routing decision for an operand of the given density.
  bool ShouldRoute(double density) const;

  /// Fraction of nonzero entries in `[data, data + numel)`.
  static double MeasureDensity(const float* data, int64_t numel);
  static double MeasureDensity(const Tensor& t);

 private:
  SparseRouter();  // applies DHGCN_SPARSE, if set

  SparseMode mode_ = SparseMode::kAuto;
  double threshold_ = kDefaultDensityThreshold;
};

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_SPARSE_ROUTER_H_
