#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dhgcn {

namespace detail {

std::vector<int64_t> BroadcastStrides(const Shape& shape, size_t out_rank,
                                      const Shape& out_shape) {
  std::vector<int64_t> strides(out_rank, 0);
  int64_t running = 1;
  // Compute contiguous strides of `shape` from the right.
  std::vector<int64_t> own(shape.size(), 0);
  for (size_t i = shape.size(); i-- > 0;) {
    own[i] = running;
    running *= shape[i];
  }
  size_t offset = out_rank - shape.size();
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == 1 && out_shape[offset + i] != 1) {
      strides[offset + i] = 0;  // broadcast axis
    } else {
      strides[offset + i] = own[i];
    }
  }
  return strides;
}

}  // namespace detail

bool CanBroadcast(const Shape& a, const Shape& b) {
  size_t rank = std::max(a.size(), b.size());
  for (size_t i = 0; i < rank; ++i) {
    int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  DHGCN_CHECK(CanBroadcast(a, b));
  size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

struct AddOp {
  float operator()(float x, float y) const { return x + y; }
};
struct SubOp {
  float operator()(float x, float y) const { return x - y; }
};
struct MulOp {
  float operator()(float x, float y) const { return x * y; }
};
struct DivOp {
  float operator()(float x, float y) const { return x / y; }
};
struct MaxOp {
  float operator()(float x, float y) const { return std::max(x, y); }
};
struct MinOp {
  float operator()(float x, float y) const { return std::min(x, y); }
};

}  // namespace

Tensor BinaryOp(const Tensor& a, const Tensor& b,
                const std::function<float(float, float)>& op) {
  return BinaryOpT(a, b, op);
}

Tensor Add(const Tensor& a, const Tensor& b) { return BinaryOpT(a, b, AddOp{}); }
Tensor Sub(const Tensor& a, const Tensor& b) { return BinaryOpT(a, b, SubOp{}); }
Tensor Mul(const Tensor& a, const Tensor& b) { return BinaryOpT(a, b, MulOp{}); }
Tensor Div(const Tensor& a, const Tensor& b) { return BinaryOpT(a, b, DivOp{}); }
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, MaxOp{});
}
Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, MinOp{});
}

void AddInto(const Tensor& a, const Tensor& b, Tensor* out) {
  BinaryOpInto(a, b, AddOp{}, out);
}
void SubInto(const Tensor& a, const Tensor& b, Tensor* out) {
  BinaryOpInto(a, b, SubOp{}, out);
}
void MulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  BinaryOpInto(a, b, MulOp{}, out);
}
void DivInto(const Tensor& a, const Tensor& b, Tensor* out) {
  BinaryOpInto(a, b, DivOp{}, out);
}

void AddInPlace(Tensor& a, const Tensor& b) {
  DHGCN_CHECK(ShapesEqual(a.shape(), b.shape()));
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void SubInPlace(Tensor& a, const Tensor& b) {
  DHGCN_CHECK(ShapesEqual(a.shape(), b.shape()));
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] -= pb[i];
}

void MulInPlace(Tensor& a, const Tensor& b) {
  DHGCN_CHECK(ShapesEqual(a.shape(), b.shape()));
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] *= pb[i];
}

void Axpy(float alpha, const Tensor& b, Tensor& a) {
  DHGCN_CHECK(ShapesEqual(a.shape(), b.shape()));
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] += alpha * pb[i];
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOpT(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOpT(a, [s](float x) { return x * s; });
}
void MulScalarInPlace(Tensor& a, float s) {
  float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] *= s;
}
void MulScalarInto(const Tensor& a, float s, Tensor* out) {
  UnaryOpInto(a, [s](float x) { return x * s; }, out);
}

Tensor UnaryOp(const Tensor& a, const std::function<float(float)>& op) {
  return UnaryOpT(a, op);
}

Tensor Neg(const Tensor& a) {
  return UnaryOpT(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return UnaryOpT(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOpT(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOpT(a, [](float x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOpT(a, [](float x) { return std::fabs(x); });
}
Tensor Square(const Tensor& a) {
  return UnaryOpT(a, [](float x) { return x * x; });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return UnaryOpT(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

void ExpInto(const Tensor& a, Tensor* out) {
  UnaryOpInto(a, [](float x) { return std::exp(x); }, out);
}

float SumAll(const Tensor& a) {
  double total = 0.0;  // accumulate in double for stability
  const float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) total += pa[i];
  return static_cast<float>(total);
}

float MeanAll(const Tensor& a) {
  DHGCN_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

float MaxAll(const Tensor& a) {
  DHGCN_CHECK_GT(a.numel(), 0);
  float best = a.flat(0);
  for (int64_t i = 1; i < a.numel(); ++i) best = std::max(best, a.flat(i));
  return best;
}

float MinAll(const Tensor& a) {
  DHGCN_CHECK_GT(a.numel(), 0);
  float best = a.flat(0);
  for (int64_t i = 1; i < a.numel(); ++i) best = std::min(best, a.flat(i));
  return best;
}

namespace {

int64_t NormalizeAxis(int64_t axis, int64_t ndim) {
  if (axis < 0) axis += ndim;
  DHGCN_CHECK(axis >= 0 && axis < ndim);
  return axis;
}

// Splits a shape into (outer, axis_size, inner) around `axis` so the
// reduction loops are simple strided scans.
struct AxisSplit {
  int64_t outer;
  int64_t size;
  int64_t inner;
};

AxisSplit SplitAtAxis(const Shape& shape, int64_t axis) {
  AxisSplit s{1, shape[static_cast<size_t>(axis)], 1};
  for (int64_t i = 0; i < axis; ++i) s.outer *= shape[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(axis) + 1; i < shape.size(); ++i) {
    s.inner *= shape[i];
  }
  return s;
}

Shape DropOrKeepAxis(const Shape& shape, int64_t axis, bool keepdim) {
  Shape out = shape;
  if (keepdim) {
    out[static_cast<size_t>(axis)] = 1;
  } else {
    out.erase(out.begin() + axis);
  }
  return out;
}

// Statically-dispatched reduction core writing into `*out`.
template <typename Init, typename Fold, typename Finish>
void ReduceAxisInto(const Tensor& a, int64_t axis, bool keepdim, Init init,
                    Fold fold, Finish finish, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  axis = NormalizeAxis(axis, a.ndim());
  AxisSplit s = SplitAtAxis(a.shape(), axis);
  DHGCN_CHECK(
      ShapesEqual(out->shape(), DropOrKeepAxis(a.shape(), axis, keepdim)));
  const float* pa = a.data();
  float* po = out->data();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t in = 0; in < s.inner; ++in) {
      auto acc = init();
      const float* base = pa + (o * s.size) * s.inner + in;
      for (int64_t k = 0; k < s.size; ++k) acc = fold(acc, base[k * s.inner]);
      po[o * s.inner + in] = finish(acc, s.size);
    }
  }
}

template <typename Init, typename Fold, typename Finish>
Tensor ReduceAxis(const Tensor& a, int64_t axis, bool keepdim, Init init,
                  Fold fold, Finish finish) {
  int64_t norm = NormalizeAxis(axis, a.ndim());
  Tensor out(DropOrKeepAxis(a.shape(), norm, keepdim));
  ReduceAxisInto(a, norm, keepdim, init, fold, finish, &out);
  return out;
}

struct SumInit {
  double operator()() const { return 0.0; }
};
struct SumFold {
  double operator()(double acc, float x) const { return acc + x; }
};
struct SumFinish {
  float operator()(double acc, int64_t) const {
    return static_cast<float>(acc);
  }
};

}  // namespace

Tensor ReduceSum(const Tensor& a, int64_t axis, bool keepdim) {
  return ReduceAxis(a, axis, keepdim, SumInit{}, SumFold{}, SumFinish{});
}

void ReduceSumInto(const Tensor& a, int64_t axis, bool keepdim, Tensor* out) {
  ReduceAxisInto(a, axis, keepdim, SumInit{}, SumFold{}, SumFinish{}, out);
}

Tensor ReduceMean(const Tensor& a, int64_t axis, bool keepdim) {
  return ReduceAxis(
      a, axis, keepdim, SumInit{}, SumFold{},
      [](double acc, int64_t n) {
        return static_cast<float>(acc / static_cast<double>(n));
      });
}

Tensor ReduceMax(const Tensor& a, int64_t axis, bool keepdim) {
  return ReduceAxis(
      a, axis, keepdim,
      [] { return -std::numeric_limits<float>::infinity(); },
      [](float acc, float x) { return std::max(acc, x); },
      [](float acc, int64_t) { return acc; });
}

Tensor ArgMax(const Tensor& a, int64_t axis) {
  axis = NormalizeAxis(axis, a.ndim());
  AxisSplit s = SplitAtAxis(a.shape(), axis);
  Tensor out(DropOrKeepAxis(a.shape(), axis, /*keepdim=*/false));
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t in = 0; in < s.inner; ++in) {
      const float* base = pa + (o * s.size) * s.inner + in;
      int64_t best_idx = 0;
      float best = base[0];
      for (int64_t k = 1; k < s.size; ++k) {
        float v = base[k * s.inner];
        if (v > best) {
          best = v;
          best_idx = k;
        }
      }
      po[o * s.inner + in] = static_cast<float>(best_idx);
    }
  }
  return out;
}

void SoftmaxInto(const Tensor& a, int64_t axis, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK(ShapesEqual(out->shape(), a.shape()));
  axis = NormalizeAxis(axis, a.ndim());
  AxisSplit s = SplitAtAxis(a.shape(), axis);
  const float* pa = a.data();
  float* po = out->data();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t in = 0; in < s.inner; ++in) {
      const float* base = pa + (o * s.size) * s.inner + in;
      float* obase = po + (o * s.size) * s.inner + in;
      float max_v = base[0];
      for (int64_t k = 1; k < s.size; ++k) {
        max_v = std::max(max_v, base[k * s.inner]);
      }
      double denom = 0.0;
      for (int64_t k = 0; k < s.size; ++k) {
        float e = std::exp(base[k * s.inner] - max_v);
        obase[k * s.inner] = e;
        denom += e;
      }
      float inv = static_cast<float>(1.0 / denom);
      for (int64_t k = 0; k < s.size; ++k) obase[k * s.inner] *= inv;
    }
  }
}

Tensor Softmax(const Tensor& a, int64_t axis) {
  Tensor out(a.shape());
  SoftmaxInto(a, axis, &out);
  return out;
}

void LogSoftmaxInto(const Tensor& a, int64_t axis, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK(ShapesEqual(out->shape(), a.shape()));
  axis = NormalizeAxis(axis, a.ndim());
  AxisSplit s = SplitAtAxis(a.shape(), axis);
  const float* pa = a.data();
  float* po = out->data();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t in = 0; in < s.inner; ++in) {
      const float* base = pa + (o * s.size) * s.inner + in;
      float* obase = po + (o * s.size) * s.inner + in;
      float max_v = base[0];
      for (int64_t k = 1; k < s.size; ++k) {
        max_v = std::max(max_v, base[k * s.inner]);
      }
      double denom = 0.0;
      for (int64_t k = 0; k < s.size; ++k) {
        denom += std::exp(base[k * s.inner] - max_v);
      }
      float log_denom = max_v + static_cast<float>(std::log(denom));
      for (int64_t k = 0; k < s.size; ++k) {
        obase[k * s.inner] = base[k * s.inner] - log_denom;
      }
    }
  }
}

Tensor LogSoftmax(const Tensor& a, int64_t axis) {
  Tensor out(a.shape());
  LogSoftmaxInto(a, axis, &out);
  return out;
}

void PermuteInto(const Tensor& a, const std::vector<int64_t>& perm,
                 Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  DHGCN_CHECK_EQ(static_cast<int64_t>(perm.size()), a.ndim());
  size_t rank = perm.size();
  std::vector<bool> seen(rank, false);
  Shape out_shape(rank);
  for (size_t i = 0; i < rank; ++i) {
    int64_t p = perm[i];
    DHGCN_CHECK(p >= 0 && p < a.ndim());
    DHGCN_CHECK(!seen[static_cast<size_t>(p)]);
    seen[static_cast<size_t>(p)] = true;
    out_shape[i] = a.shape()[static_cast<size_t>(p)];
  }
  DHGCN_CHECK(ShapesEqual(out->shape(), out_shape));
  DHGCN_CHECK(!out->SharesStorageWith(a));  // gather pattern cannot alias
  // Source strides.
  std::vector<int64_t> src_strides(rank, 1);
  for (size_t i = rank - 1; i-- > 0;) {
    src_strides[i] = src_strides[i + 1] * a.shape()[i + 1];
  }
  // For each output flat index, walk an odometer over output shape and
  // accumulate the permuted source offset.
  std::vector<int64_t> step(rank);
  for (size_t i = 0; i < rank; ++i) {
    step[i] = src_strides[static_cast<size_t>(perm[i])];
  }
  std::vector<int64_t> index(rank, 0);
  const float* pa = a.data();
  float* po = out->data();
  int64_t src = 0;
  for (int64_t flat = 0; flat < out->numel(); ++flat) {
    po[flat] = pa[src];
    for (size_t axis = rank; axis-- > 0;) {
      ++index[axis];
      src += step[axis];
      if (index[axis] < out_shape[axis]) break;
      src -= step[axis] * out_shape[axis];
      index[axis] = 0;
    }
  }
}

Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm) {
  DHGCN_CHECK_EQ(static_cast<int64_t>(perm.size()), a.ndim());
  Shape out_shape(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    out_shape[i] = a.dim(perm[i]);
  }
  Tensor out(out_shape);
  PermuteInto(a, perm, &out);
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  DHGCN_CHECK_EQ(a.ndim(), 2);
  return Permute(a, {1, 0});
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  DHGCN_CHECK(!parts.empty());
  int64_t ndim = parts[0].ndim();
  axis = NormalizeAxis(axis, ndim);
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const Tensor& p : parts) {
    DHGCN_CHECK_EQ(p.ndim(), ndim);
    for (int64_t d = 0; d < ndim; ++d) {
      if (d != axis) DHGCN_CHECK_EQ(p.dim(d), parts[0].dim(d));
    }
    total += p.dim(axis);
  }
  out_shape[static_cast<size_t>(axis)] = total;
  Tensor out(out_shape);
  AxisSplit so = SplitAtAxis(out_shape, axis);
  float* po = out.data();
  int64_t written = 0;
  for (const Tensor& p : parts) {
    AxisSplit sp = SplitAtAxis(p.shape(), axis);
    const float* pp = p.data();
    for (int64_t o = 0; o < sp.outer; ++o) {
      const float* src = pp + o * sp.size * sp.inner;
      float* dst = po + (o * so.size + written) * so.inner;
      std::copy(src, src + sp.size * sp.inner, dst);
    }
    written += p.dim(axis);
  }
  return out;
}

void SliceInto(const Tensor& a, int64_t axis, int64_t start, int64_t length,
               Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  axis = NormalizeAxis(axis, a.ndim());
  DHGCN_CHECK_GE(start, 0);
  DHGCN_CHECK_GE(length, 0);
  DHGCN_CHECK_LE(start + length, a.dim(axis));
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  DHGCN_CHECK(ShapesEqual(out->shape(), out_shape));
  AxisSplit sa = SplitAtAxis(a.shape(), axis);
  const float* pa = a.data();
  float* po = out->data();
  for (int64_t o = 0; o < sa.outer; ++o) {
    const float* src = pa + (o * sa.size + start) * sa.inner;
    float* dst = po + o * length * sa.inner;
    std::copy(src, src + length * sa.inner, dst);
  }
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t length) {
  int64_t norm = NormalizeAxis(axis, a.ndim());
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(norm)] = length;
  Tensor out(out_shape);
  SliceInto(a, norm, start, length, &out);
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  DHGCN_CHECK(!parts.empty());
  Shape out_shape = parts[0].shape();
  out_shape.insert(out_shape.begin(), static_cast<int64_t>(parts.size()));
  Tensor out(out_shape);
  float* po = out.data();
  int64_t item = parts[0].numel();
  for (size_t i = 0; i < parts.size(); ++i) {
    DHGCN_CHECK(ShapesEqual(parts[i].shape(), parts[0].shape()));
    std::copy(parts[i].data(), parts[i].data() + item,
              po + static_cast<int64_t>(i) * item);
  }
  return out;
}

Tensor BroadcastTo(const Tensor& a, const Shape& target) {
  return BinaryOpT(a, Tensor::Zeros(target),
                   [](float x, float) { return x; });
}

Tensor ReduceToShape(const Tensor& grad, const Shape& target) {
  DHGCN_CHECK(CanBroadcast(grad.shape(), target));
  Tensor cur = grad;
  // Drop leading axes not present in target.
  while (cur.ndim() > static_cast<int64_t>(target.size())) {
    cur = ReduceSum(cur, 0, /*keepdim=*/false);
  }
  // Sum broadcasted (size-1) axes.
  for (int64_t axis = 0; axis < cur.ndim(); ++axis) {
    if (target[static_cast<size_t>(axis)] == 1 && cur.dim(axis) != 1) {
      cur = ReduceSum(cur, axis, /*keepdim=*/true);
    }
  }
  DHGCN_CHECK(ShapesEqual(cur.shape(), target));
  return cur;
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!ShapesEqual(a.shape(), b.shape())) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    float x = a.flat(i);
    float y = b.flat(i);
    if (std::isnan(x) || std::isnan(y)) return false;
    if (std::fabs(x - y) > atol + rtol * std::fabs(y)) return false;
  }
  return true;
}

bool HasNonFinite(const Tensor& a) {
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (!std::isfinite(a.flat(i))) return true;
  }
  return false;
}

float Norm2(const Tensor& a) {
  double total = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    total += static_cast<double>(a.flat(i)) * a.flat(i);
  }
  return static_cast<float>(std::sqrt(total));
}

float Dot(const Tensor& a, const Tensor& b) {
  DHGCN_CHECK_EQ(a.numel(), b.numel());
  double total = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    total += static_cast<double>(pa[i]) * pb[i];
  }
  return static_cast<float>(total);
}

}  // namespace dhgcn
