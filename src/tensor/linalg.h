#ifndef DHGCN_TENSOR_LINALG_H_
#define DHGCN_TENSOR_LINALG_H_

#include "tensor/tensor.h"

namespace dhgcn {

/// Matrix product of a (M,K) and b (K,N) -> (M,N).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Batched matrix product.
///
/// a is (B,M,K). b is either (B,K,N) (per-batch matrices) or (K,N)
/// (one matrix broadcast across the batch). Result is (B,M,N).
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);

/// a^T * b for 2-D a (K,M), b (K,N) -> (M,N), without materializing a^T.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// a * b^T for 2-D a (M,K), b (N,K) -> (M,N), without materializing b^T.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// out += a * b for 2-D operands (shapes as MatMul).
void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_LINALG_H_
