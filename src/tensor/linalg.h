#ifndef DHGCN_TENSOR_LINALG_H_
#define DHGCN_TENSOR_LINALG_H_

#include "tensor/tensor.h"

namespace dhgcn {

/// Matrix product of a (M,K) and b (K,N) -> (M,N).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Batched matrix product.
///
/// a is (B,M,K). b is either (B,K,N) (per-batch matrices) or (K,N)
/// (one matrix broadcast across the batch). Result is (B,M,N).
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);

/// a^T * b for 2-D a (K,M), b (K,N) -> (M,N), without materializing a^T.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// a * b^T for 2-D a (M,K), b (N,K) -> (M,N), without materializing b^T.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// out += a * b for 2-D operands (shapes as MatMul).
void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

// ---------------------------------------------------------------------------
// Out-parameter variants. `out` must be non-null with the exact result
// shape and must not alias an input. With `accumulate` the product is
// added to the existing contents of `out`; otherwise `out` is fully
// (re)written — callers may pass uninitialized workspace buffers.
// All variants use the same kernels (and accumulation order) as the
// allocating functions above, so results are bit-identical.
// ---------------------------------------------------------------------------

namespace detail {
// Raw-pointer GEMM kernels shared by every entry point above/below (one
// accumulation order everywhere => bit-identical results across APIs).
// All operands row-major; Gemm and GemmTransposedA accumulate into c.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);
void GemmTransposedAAccumulate(const float* a, const float* b, float* c,
                               int64_t k, int64_t m, int64_t n);
// Column-range slice of GemmTransposedAAccumulate: touches only columns
// [j0, j1) of c, with the same per-element accumulation order.
void GemmTransposedAAccumulateCols(const float* a, const float* b, float* c,
                                   int64_t k, int64_t m, int64_t n,
                                   int64_t j0, int64_t j1);
void GemmTransposedB(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate);
}  // namespace detail

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                bool accumulate = false);
void BatchedMatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                       bool accumulate = false);
void MatMulTransposedAInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate = false);
void MatMulTransposedBInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate = false);

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_LINALG_H_
