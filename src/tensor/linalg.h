#ifndef DHGCN_TENSOR_LINALG_H_
#define DHGCN_TENSOR_LINALG_H_

#include "tensor/tensor.h"

namespace dhgcn {

/// Matrix product of a (M,K) and b (K,N) -> (M,N).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Batched matrix product.
///
/// a is (B,M,K). b is either (B,K,N) (per-batch matrices) or (K,N)
/// (one matrix broadcast across the batch). Result is (B,M,N).
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);

/// a^T * b for 2-D a (K,M), b (K,N) -> (M,N), without materializing a^T.
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// a * b^T for 2-D a (M,K), b (N,K) -> (M,N), without materializing b^T.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// out += a * b for 2-D operands (shapes as MatMul).
void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

// ---------------------------------------------------------------------------
// Out-parameter variants. `out` must be non-null with the exact result
// shape and must not alias an input. With `accumulate` the product is
// added to the existing contents of `out`; otherwise `out` is fully
// (re)written — callers may pass uninitialized workspace buffers.
// All variants use the same kernels (and accumulation order) as the
// allocating functions above, so results are bit-identical.
// ---------------------------------------------------------------------------

/// Caller-supplied knowledge about operand density. The default dense
/// path runs branch-free (cache-blocked when the shape warrants, see
/// tensor/gemm_kernel.h); kSparse routes the product through the
/// retained zero-skipping row kernel, which wins when an operand is an
/// incidence-style matrix that is mostly zeros.
enum class GemmHint {
  kDense,
  kSparse,
};

namespace detail {
// Raw-pointer GEMM kernels shared by every entry point above/below (one
// accumulation order per kernel family => bit-identical results across
// APIs; the blocked kernel in tensor/gemm_kernel.h uses a different —
// still shape-pure — accumulation order and is equivalence-tested
// against GemmReferenceAccumulate rather than bit-compared).
// All operands row-major; Gemm and GemmTransposedA accumulate into c.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);
// The original i-k-j row kernel with the `av == 0.0f` skip. Serves two
// roles: the GemmHint::kSparse fast path, and the reference
// implementation the kernel-equivalence tests compare the blocked
// kernel against.
void GemmReferenceAccumulate(const float* a, const float* b, float* c,
                             int64_t m, int64_t k, int64_t n);
void GemmTransposedAAccumulate(const float* a, const float* b, float* c,
                               int64_t k, int64_t m, int64_t n);
// Column-range slice of GemmTransposedAAccumulate: touches only columns
// [j0, j1) of c, with the same per-element accumulation order.
void GemmTransposedAAccumulateCols(const float* a, const float* b, float* c,
                                   int64_t k, int64_t m, int64_t n,
                                   int64_t j0, int64_t j1);
void GemmTransposedB(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n, bool accumulate);
}  // namespace detail

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                bool accumulate = false, GemmHint hint = GemmHint::kDense);
void BatchedMatMulInto(const Tensor& a, const Tensor& b, Tensor* out,
                       bool accumulate = false);
void MatMulTransposedAInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate = false);
void MatMulTransposedBInto(const Tensor& a, const Tensor& b, Tensor* out,
                           bool accumulate = false);

}  // namespace dhgcn

#endif  // DHGCN_TENSOR_LINALG_H_
