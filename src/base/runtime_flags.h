#ifndef DHGCN_BASE_RUNTIME_FLAGS_H_
#define DHGCN_BASE_RUNTIME_FLAGS_H_

#include <cstdint>
#include <string>

#include "base/flags.h"
#include "base/result.h"
#include "quant/precision.h"
#include "tensor/sparse_router.h"

namespace dhgcn {

/// \brief The runtime knobs every CLI tool shares, parsed and applied
/// in one place.
///
/// `dhgcn_train` and `dhgcn_serve` expose the same process-wide
/// execution controls — `--threads`/`DHGCN_THREADS`,
/// `--sparse`/`DHGCN_SPARSE` (+ `--sparse_threshold`), and
/// `--precision`/`DHGCN_PRECISION` — and used to duplicate the
/// registration, validation, and singleton plumbing. Usage:
///
///   RuntimeFlags rt;
///   rt.threads = 1;            // tool-specific default, before Register
///   rt.Register(&flags);
///   DHGCN_RETURN_IF_ERROR(flags.Parse(argc, argv));
///   DHGCN_RETURN_IF_ERROR(rt.Apply());
///   ... use rt.resolved_precision ...
///
/// `Apply` validates the values, configures the ThreadPool and
/// SparseRouter singletons, and resolves the effective precision
/// (flag text beats the environment variable, default fp32).
struct RuntimeFlags {
  // Flag storage; set a field before Register to change the default.
  int64_t threads = 0;
  std::string sparse = "auto";
  double sparse_threshold = 0.0;
  std::string precision;  // "" = DHGCN_PRECISION env, else fp32

  // Outputs of Apply().
  SparseMode sparse_mode = SparseMode::kAuto;
  Precision resolved_precision = Precision::kFp32;

  void Register(FlagSet* flags);
  Status Apply();
};

}  // namespace dhgcn

#endif  // DHGCN_BASE_RUNTIME_FLAGS_H_
