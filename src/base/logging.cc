#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dhgcn {

namespace {

LogLevel InitialLevel() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at static init of
  // the log level, before any thread the library spawns exists.
  const char* env = std::getenv("DHGCN_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      LevelStore().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  (void)level_;
}

}  // namespace internal
}  // namespace dhgcn
