#include "base/string_util.h"

#include <cstdio>

namespace dhgcn {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction) {
  return FormatFixed(fraction * 100.0, 1);
}

}  // namespace dhgcn
