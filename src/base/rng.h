#ifndef DHGCN_BASE_RNG_H_
#define DHGCN_BASE_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "base/status.h"

namespace dhgcn {

/// \brief Deterministic pseudo-random source used everywhere in the library.
///
/// Wraps std::mt19937_64 with the distributions the codebase needs.
/// Every consumer takes an `Rng&` (or a seed) explicitly — no hidden global
/// state — so experiments are reproducible bit-for-bit given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) : engine_(seed) {}

  /// Derives an independent child generator; use to give each subsystem
  /// its own stream without coupling their consumption order.
  Rng Split() { return Rng(engine_()); }

  /// Uniform in [0, 1).
  float Uniform() {
    return std::uniform_real_distribution<float>(0.0f, 1.0f)(engine_);
  }

  /// Uniform in [lo, hi).
  float Uniform(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled to N(mean, stddev^2).
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Bernoulli with probability p of true.
  bool Bernoulli(float p) {
    return std::bernoulli_distribution(static_cast<double>(p))(engine_);
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int64_t> Permutation(int64_t n);

  /// Samples k distinct indices from {0, ..., n-1} (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Serializes the full engine state as text (space-separated, no
  /// newlines); checkpointing uses this so a resumed run consumes the
  /// exact same random stream as an uninterrupted one.
  std::string SerializeState() const;
  /// Restores a state produced by SerializeState.
  Status DeserializeState(const std::string& text);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dhgcn

#endif  // DHGCN_BASE_RNG_H_
