#include "base/fault_injection.h"

#include <cstdlib>

#include "base/logging.h"
#include "base/string_util.h"

namespace dhgcn {

namespace {

size_t Index(FaultSite site) { return static_cast<size_t>(site); }

Result<FaultSite> ParseSiteName(const std::string& name) {
  if (name == "grad-nan") return FaultSite::kGradientNaN;
  if (name == "grad-inf") return FaultSite::kGradientInf;
  if (name == "write-fail") return FaultSite::kFileWrite;
  if (name == "truncate") return FaultSite::kCheckpointTruncate;
  if (name == "batch-nan") return FaultSite::kBatchNaN;
  if (name == "queue-full") return FaultSite::kServeQueueFull;
  if (name == "worker-stall") return FaultSite::kServeWorkerStall;
  if (name == "deadline-miss") return FaultSite::kServeDeadlineMiss;
  if (name == "poison-input") return FaultSite::kServePoisonInput;
  return Status::InvalidArgument(
      StrCat("unknown fault site '", name,
             "' (grad-nan|grad-inf|write-fail|truncate|batch-nan|"
             "queue-full|worker-stall|deadline-miss|poison-input)"));
}

}  // namespace

std::string FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kGradientNaN:
      return "grad-nan";
    case FaultSite::kGradientInf:
      return "grad-inf";
    case FaultSite::kFileWrite:
      return "write-fail";
    case FaultSite::kCheckpointTruncate:
      return "truncate";
    case FaultSite::kBatchNaN:
      return "batch-nan";
    case FaultSite::kServeQueueFull:
      return "queue-full";
    case FaultSite::kServeWorkerStall:
      return "worker-stall";
    case FaultSite::kServeDeadlineMiss:
      return "deadline-miss";
    case FaultSite::kServePoisonInput:
      return "poison-input";
    case FaultSite::kSiteCount:
      break;
  }
  return "?";
}

FaultInjection& FaultInjection::Get() {
  // lint: allow-naked-new — leaky singleton, lives for the process lifetime.
  static FaultInjection* instance = new FaultInjection();
  return *instance;
}

void FaultInjection::Arm(FaultSite site, int64_t nth, int64_t payload) {
  MutexLock lock(&mu_);
  Site& s = sites_[Index(site)];
  if (!s.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.fire_at = nth < 1 ? 1 : nth;
  s.passes = 0;
  s.payload = payload;
}

void FaultInjection::Disarm(FaultSite site) {
  MutexLock lock(&mu_);
  Site& s = sites_[Index(site)];
  if (s.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  s.armed = false;
}

void FaultInjection::Reset() {
  MutexLock lock(&mu_);
  sites_ = {};
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjection::ShouldFire(FaultSite site) {
  // Fast path: nothing armed anywhere, skip the lock entirely.
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  MutexLock lock(&mu_);
  Site& s = sites_[Index(site)];
  if (!s.armed) return false;
  if (++s.passes < s.fire_at) return false;
  s.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  ++s.fires;
  DHGCN_LOG(kWarning) << "fault injection: firing '" << FaultSiteName(site)
                      << "' at pass " << s.passes;
  return true;
}

int64_t FaultInjection::payload(FaultSite site) const {
  MutexLock lock(&mu_);
  return sites_[Index(site)].payload;
}

int64_t FaultInjection::fire_count(FaultSite site) const {
  MutexLock lock(&mu_);
  return sites_[Index(site)].fires;
}

Status FaultInjection::ArmFromSpec(const std::string& spec) {
  for (const std::string& item : StrSplit(spec, ',')) {
    if (item.empty()) continue;
    std::vector<std::string> parts = StrSplit(item, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument(
          StrCat("bad fault spec '", item, "' (want site:nth[:payload])"));
    }
    DHGCN_ASSIGN_OR_RETURN(FaultSite site, ParseSiteName(parts[0]));
    int64_t nth = std::atoll(parts[1].c_str());
    if (nth < 1) {
      return Status::InvalidArgument(
          StrCat("fault spec '", item, "': nth must be >= 1"));
    }
    int64_t payload =
        parts.size() == 3 ? std::atoll(parts[2].c_str()) : 0;
    Arm(site, nth, payload);
  }
  return Status::OK();
}

}  // namespace dhgcn
