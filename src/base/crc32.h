#ifndef DHGCN_BASE_CRC32_H_
#define DHGCN_BASE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dhgcn {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// Used by the v2 checkpoint format to detect torn writes and bit flips
/// before corrupt bytes reach the model. Incremental use:
///
///   uint32_t crc = 0;
///   crc = Crc32Update(crc, a, a_bytes);
///   crc = Crc32Update(crc, b, b_bytes);
uint32_t Crc32Update(uint32_t crc, const void* data, size_t bytes);

/// One-shot checksum of a buffer.
uint32_t Crc32(const void* data, size_t bytes);
inline uint32_t Crc32(std::string_view text) {
  return Crc32(text.data(), text.size());
}

}  // namespace dhgcn

#endif  // DHGCN_BASE_CRC32_H_
