#ifndef DHGCN_BASE_THREAD_ANNOTATIONS_H_
#define DHGCN_BASE_THREAD_ANNOTATIONS_H_

// Compile-time concurrency contracts (see DESIGN.md §13).
//
// Two things live here, deliberately in one header so the lint
// exemption surface stays minimal:
//
//  1. Abseil-style macros over Clang's thread-safety attributes
//     (DHGCN_GUARDED_BY, DHGCN_REQUIRES, DHGCN_ACQUIRED_BEFORE, ...).
//     Under clang, `-Wthread-safety -Wthread-safety-beta -Werror`
//     turns every annotated locking invariant into a build break the
//     moment a call path violates it — the static complement to the
//     dynamic TSan CI job, which only catches the interleavings the
//     tests happen to exercise. On GCC every macro expands to nothing,
//     so the annotations are behavior- and ABI-neutral.
//
//  2. The annotatable primitives the analysis needs to see:
//     dhgcn::Mutex / MutexLock / CondVar. `std::mutex` and
//     `std::lock_guard` carry no capability attributes, so Clang
//     cannot track their acquisitions; the repo_lint `mutex-wrap`
//     rule therefore bans the raw std primitives everywhere in src/
//     and tools/ except this header and the ThreadPool internals.
//
// Intra-op *compute* parallelism still goes exclusively through
// base/thread_pool.h (the determinism contract, DESIGN.md §9); this
// header is about making the locking that already exists provable.

// lint: allow-thread-file — this is the wrapper the `thread` and
// `mutex-wrap` rules funnel everyone else toward; it is the one place
// (besides the ThreadPool internals) that touches the raw primitives.

#include <chrono>  // lint: allow-wallclock — bounded-wait plumbing only: the duration is caller-supplied and never observed as a timestamp, so no wall-clock value can leak into training state.
#include <condition_variable>
#include <cstdint>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only; GCC (and any compiler without the
// attributes) gets empty expansions.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define DHGCN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DHGCN_THREAD_ANNOTATION_(x)
#endif

/// Declares a data member readable/writable only while the given
/// capability (mutex) is held.
#define DHGCN_GUARDED_BY(x) DHGCN_THREAD_ANNOTATION_(guarded_by(x))

/// Like GUARDED_BY, but guards the pointed-to data rather than the
/// pointer itself.
#define DHGCN_PT_GUARDED_BY(x) DHGCN_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function contract: the caller must hold the listed capabilities
/// exclusively on entry (and still holds them on exit).
#define DHGCN_REQUIRES(...) \
  DHGCN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function contract: the caller must hold the listed capabilities at
/// least shared on entry.
#define DHGCN_REQUIRES_SHARED(...) \
  DHGCN_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function contract: the caller must NOT hold the listed capabilities
/// (the function acquires them itself; calling with them held would
/// self-deadlock).
#define DHGCN_EXCLUDES(...) \
  DHGCN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares a global lock order: this mutex is always acquired before
/// the listed ones. Checked by -Wthread-safety-beta, which turns the
/// lock-order-inversion deadlock class into a compile error.
#define DHGCN_ACQUIRED_BEFORE(...) \
  DHGCN_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Dual of ACQUIRED_BEFORE.
#define DHGCN_ACQUIRED_AFTER(...) \
  DHGCN_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Marks a type as a capability (something that can be held).
#define DHGCN_CAPABILITY(x) DHGCN_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define DHGCN_SCOPED_CAPABILITY DHGCN_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated function acquires the capability (a lock function).
#define DHGCN_ACQUIRE(...) \
  DHGCN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The annotated function releases the capability (an unlock function).
#define DHGCN_RELEASE(...) \
  DHGCN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The annotated function tries to acquire the capability and reports
/// success with the given boolean return value.
#define DHGCN_TRY_ACQUIRE(...) \
  DHGCN_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Asserts (for the analysis only) that the capability is already held.
#define DHGCN_ASSERT_CAPABILITY(x) \
  DHGCN_THREAD_ANNOTATION_(assert_capability(x))

/// The annotated function returns a reference to the named capability.
#define DHGCN_RETURN_CAPABILITY(x) DHGCN_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining which out-of-band protocol makes the
/// unchecked accesses safe (see DESIGN.md §13 for the policy).
#define DHGCN_NO_THREAD_SAFETY_ANALYSIS \
  DHGCN_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dhgcn {

class CondVar;

/// \brief Annotatable mutex: std::mutex plus the capability attributes
/// Clang's thread-safety analysis tracks acquisitions through.
///
/// Same blocking semantics and cost as std::mutex (one non-recursive
/// kernel futex word); the only addition is static checkability, so
/// swapping a raw mutex for this wrapper is behavior-neutral by
/// construction. Prefer MutexLock for scoped sections; Lock()/Unlock()
/// exist for protocols RAII cannot express.
class DHGCN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DHGCN_ACQUIRE() { mu_.lock(); }
  void Unlock() DHGCN_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() DHGCN_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;  // WaitForNanos needs the native handle
  std::mutex mu_;
};

/// \brief Scoped lock over Mutex (the std::lock_guard replacement the
/// `mutex-wrap` lint rule points at). Acquires in the constructor,
/// releases in the destructor; the SCOPED_CAPABILITY attribute lets the
/// analysis track the held region across early returns.
class DHGCN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DHGCN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DHGCN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable paired with dhgcn::Mutex.
///
/// Waits take the Mutex explicitly and carry DHGCN_REQUIRES, so a wait
/// without the lock held is a compile error under the analysis.
/// Predicate waits are deliberately absent: a lambda body is analyzed
/// as a separate function that cannot see the caller's held locks, so
/// guarded reads inside it would (rightly) fail the analysis — write
/// the standard `while (!condition) cv.Wait*(&mu);` loop instead, where
/// the guarded reads sit in the frame that provably holds the mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Unbounded wait; spurious wakeups possible, loop on the condition.
  /// Banned in src/serve/ (the repo_lint `serve-wait` rule) — serving
  /// code must use WaitForNanos so no loop can block forever.
  void Wait(Mutex* mu) DHGCN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Bounded wait: returns after a notification, a spurious wakeup, or
  /// `timeout_ns` nanoseconds, whichever comes first. Loop on the
  /// condition either way.
  void WaitForNanos(Mutex* mu, int64_t timeout_ns) DHGCN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    // lint: allow-wallclock — caller-supplied bounded-wait duration;
    // no timestamp is read, nothing can leak into training state.
    cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dhgcn

#endif  // DHGCN_BASE_THREAD_ANNOTATIONS_H_
