#ifndef DHGCN_BASE_FAULT_INJECTION_H_
#define DHGCN_BASE_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "base/result.h"
#include "base/thread_annotations.h"

namespace dhgcn {

/// Deterministic fault sites instrumented across the library. Each armed
/// site counts the passes over it and fires exactly once, at the armed
/// (1-based) Nth pass. Tests — and `dhgcn_train --fault_inject` /
/// `dhgcn_serve --fault_inject` — use these to prove that every recovery
/// path actually executes.
enum class FaultSite : int {
  kGradientNaN = 0,       ///< trainer: overwrite a gradient value with NaN
  kGradientInf,           ///< trainer: overwrite a gradient value with +Inf
  kFileWrite,             ///< serialization: fail the Nth atomic file write
  kCheckpointTruncate,    ///< serialization: drop `payload` trailing bytes
  kBatchNaN,              ///< dataloader: poison a batch tensor with NaN
  kServeQueueFull,        ///< serving: admission behaves as if the queue
                          ///< were full (explicit kOverloaded shed)
  kServeWorkerStall,      ///< serving: worker sleeps `payload` ms before
                          ///< executing its batch (watchdog / backpressure)
  kServeDeadlineMiss,     ///< serving: the dequeued micro-batch is treated
                          ///< as having missed its deadline
  kServePoisonInput,      ///< serving: poison one admitted clip with NaN
                          ///< (per-request validation must fail it alone)
  kSiteCount,             // sentinel, keep last
};

std::string FaultSiteName(FaultSite site);

/// \brief Global registry of armed faults.
///
/// The training stack drives it from a single thread; the serving stack
/// (src/serve) passes over sites from concurrent submitter and worker
/// threads, so pass counting is internally synchronized. A disarmed
/// registry costs one relaxed atomic load per pass. Pass counting starts
/// when a site is armed, so arming `nth = 1` always fires on the next
/// pass.
class FaultInjection {
 public:
  static FaultInjection& Get();

  /// Arms `site` to fire at the `nth` (1-based) pass from now.
  /// `payload` is site-specific (kCheckpointTruncate: bytes to drop,
  /// kServeWorkerStall: milliseconds to stall).
  void Arm(FaultSite site, int64_t nth, int64_t payload = 0);
  void Disarm(FaultSite site);
  /// Disarms every site and clears all pass/fire counters.
  void Reset();

  /// Counts one pass over `site`; returns true when the armed pass is
  /// reached. One-shot: the site disarms after firing until re-armed.
  /// Discarding the result consumes a pass without handling the fault,
  /// so callers must consume it.
  [[nodiscard]] bool ShouldFire(FaultSite site);

  int64_t payload(FaultSite site) const;
  /// Times `site` has fired since construction / Reset().
  int64_t fire_count(FaultSite site) const;
  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms sites from a comma-separated spec, e.g.
  /// "grad-nan:3,write-fail:1,truncate:1:7". Each item is
  /// `site:nth[:payload]` with site one of grad-nan | grad-inf |
  /// write-fail | truncate | batch-nan | queue-full | worker-stall |
  /// deadline-miss | poison-input.
  Status ArmFromSpec(const std::string& spec);

 private:
  struct Site {
    bool armed = false;
    int64_t fire_at = 0;  // 1-based pass index counted from Arm()
    int64_t passes = 0;
    int64_t payload = 0;
    int64_t fires = 0;
  };

  FaultInjection() = default;

  // The registry is queried from serving worker and client threads
  // concurrently; a plain mutex (no parallel compute) keeps pass
  // counting exact without routing through the ThreadPool.
  mutable Mutex mu_;
  std::array<Site, static_cast<size_t>(FaultSite::kSiteCount)> sites_
      DHGCN_GUARDED_BY(mu_);
  /// Fast-path disarmed check; relaxed is fine, any thread that races an
  /// Arm() simply sees the site on its next pass.
  std::atomic<int64_t> armed_count_{0};
};

}  // namespace dhgcn

#endif  // DHGCN_BASE_FAULT_INJECTION_H_
