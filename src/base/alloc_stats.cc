#include "base/alloc_stats.h"

namespace dhgcn {

AllocStats::Counters& AllocStats::counters() {
  static Counters instance;
  return instance;
}

}  // namespace dhgcn
