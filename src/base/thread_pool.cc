#include "base/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace dhgcn {

namespace {

// Set while the thread (worker or caller) is executing task chunks;
// ParallelFor checks it to reject nested parallel regions.
thread_local bool tls_in_parallel = false;

int64_t DefaultThreadCount() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once, while the lazily
  // constructed singleton pool is being built, before any worker exists.
  if (const char* env = std::getenv("DHGCN_THREADS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<int64_t>(parsed);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int64_t>(hw) : 1;
}

}  // namespace

ThreadPool& ThreadPool::Get() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel; }

ThreadPool::ThreadPool() { SetThreads(DefaultThreadCount()); }

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::SetThreads(int64_t n) {
  DHGCN_CHECK_GE(n, 1);
  DHGCN_CHECK(!tls_in_parallel);  // reconfiguring inside a task deadlocks
  if (n == threads_ && static_cast<int64_t>(workers_.size()) == n - 1) {
    return;
  }
  StopWorkers();
  threads_ = n;
  StartWorkers(n - 1);
}

void ThreadPool::StopWorkers() {
  {
    MutexLock lock(&mu_);
    // Condition loops are written out (not lambda predicates) so the
    // guarded reads sit in this frame, which provably holds mu_.
    while (active_workers_ != 0) done_cv_.Wait(&mu_);
    shutdown_ = true;
  }
  worker_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    MutexLock lock(&mu_);
    shutdown_ = false;
  }
}

void ThreadPool::StartWorkers(int64_t worker_count) {
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int64_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Run(TaskFn fn, void* ctx, int64_t begin, int64_t end,
                     int64_t grain) {
  DHGCN_CHECK_GT(grain, 0);
  DHGCN_CHECK(!tls_in_parallel);  // nested ParallelFor is rejected
  if (end <= begin) return;

  const int64_t chunks = (end - begin + grain - 1) / grain;
  if (workers_.empty() || chunks == 1) {
    // Serial fallback: same chunks, ascending order, calling thread.
    tls_in_parallel = true;
    for (int64_t c = 0; c < chunks; ++c) {
      int64_t chunk_begin = begin + c * grain;
      fn(ctx, chunk_begin, std::min(end, chunk_begin + grain));
    }
    tls_in_parallel = false;
    return;
  }

  {
    MutexLock lock(&mu_);
    // Let stragglers from the previous job leave the claim loop before
    // the job fields they read are overwritten.
    while (active_workers_ != 0) done_cv_.Wait(&mu_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    job_chunks_ = chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    remaining_chunks_.store(chunks, std::memory_order_relaxed);
    ++job_id_;
  }
  worker_cv_.NotifyAll();

  RunChunks();  // the calling thread is one of the compute threads

  MutexLock lock(&mu_);
  while (remaining_chunks_.load(std::memory_order_acquire) != 0) {
    done_cv_.Wait(&mu_);
  }
}

void ThreadPool::RunChunks() {
  tls_in_parallel = true;
  for (;;) {
    int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job_chunks_) break;
    int64_t chunk_begin = job_begin_ + chunk * job_grain_;
    int64_t chunk_end = std::min(job_end_, chunk_begin + job_grain_);
    job_fn_(job_ctx_, chunk_begin, chunk_end);
    if (remaining_chunks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(&mu_);
      done_cv_.NotifyAll();
    }
  }
  tls_in_parallel = false;
}

void ThreadPool::WorkerLoop() {
  uint64_t last_job = 0;
  for (;;) {
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && job_id_ == last_job) worker_cv_.Wait(&mu_);
      if (shutdown_) return;
      last_job = job_id_;
      ++active_workers_;
    }
    RunChunks();
    {
      MutexLock lock(&mu_);
      --active_workers_;
    }
    done_cv_.NotifyAll();
  }
}

}  // namespace dhgcn
