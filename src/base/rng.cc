#include "base/rng.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "base/check.h"

namespace dhgcn {

std::vector<int64_t> Rng::Permutation(int64_t n) {
  DHGCN_CHECK_GE(n, 0);
  std::vector<int64_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  DHGCN_CHECK_GE(k, 0);
  DHGCN_CHECK_LE(k, n);
  // Partial Fisher-Yates: O(n) setup, but n here is joint counts (tens),
  // so simplicity wins over reservoir sampling.
  std::vector<int64_t> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = UniformInt(i, n - 1);
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
  }
  pool.resize(static_cast<size_t>(k));
  return pool;
}

std::string Rng::SerializeState() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

Status Rng::DeserializeState(const std::string& text) {
  std::istringstream is(text);
  std::mt19937_64 engine;
  is >> engine;
  if (is.fail()) {
    return Status::InvalidArgument("malformed RNG state string");
  }
  engine_ = engine;
  return Status::OK();
}

}  // namespace dhgcn
