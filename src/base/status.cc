#include "base/status.h"

#include <cstdio>
#include <cstdlib>

namespace dhgcn {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

[[noreturn]] void Status::Abort() const {
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace dhgcn
