#ifndef DHGCN_BASE_ALLOC_STATS_H_
#define DHGCN_BASE_ALLOC_STATS_H_

#include <atomic>
#include <cstdint>

namespace dhgcn {

/// \brief Process-wide counters of owning tensor-buffer allocations.
///
/// Every time a Tensor allocates a fresh owning buffer (construction,
/// FromVector, Clone, ...) the counters advance; workspace-borrowed
/// tensors do not touch them, so the delta across a training step
/// measures exactly the heap traffic the workspace path is meant to
/// eliminate. Counters are monotonic and thread-safe (relaxed atomics);
/// read them via Snapshot() and subtract two snapshots for a delta.
struct AllocStatsSnapshot {
  uint64_t allocations = 0;
  uint64_t bytes = 0;

  AllocStatsSnapshot operator-(const AllocStatsSnapshot& other) const {
    return {allocations - other.allocations, bytes - other.bytes};
  }
};

class AllocStats {
 public:
  /// Records one owning buffer allocation of `bytes` bytes.
  static void Record(uint64_t bytes) {
    counters().allocations.fetch_add(1, std::memory_order_relaxed);
    counters().bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Current cumulative totals since process start.
  static AllocStatsSnapshot Snapshot() {
    return {counters().allocations.load(std::memory_order_relaxed),
            counters().bytes.load(std::memory_order_relaxed)};
  }

 private:
  struct Counters {
    std::atomic<uint64_t> allocations{0};
    std::atomic<uint64_t> bytes{0};
  };
  static Counters& counters();
};

/// \brief Scoped allocation meter: captures the totals at construction,
/// `Delta()` reports how many owning tensor allocations (and bytes)
/// happened since. Used by the allocation-budget tests.
class AllocStatsGuard {
 public:
  AllocStatsGuard() : start_(AllocStats::Snapshot()) {}

  AllocStatsSnapshot Delta() const { return AllocStats::Snapshot() - start_; }
  uint64_t allocations() const { return Delta().allocations; }
  uint64_t bytes() const { return Delta().bytes; }

  /// Re-arms the guard at the current totals.
  void Reset() { start_ = AllocStats::Snapshot(); }

 private:
  AllocStatsSnapshot start_;
};

}  // namespace dhgcn

#endif  // DHGCN_BASE_ALLOC_STATS_H_
