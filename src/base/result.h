#ifndef DHGCN_BASE_RESULT_H_
#define DHGCN_BASE_RESULT_H_

#include <utility>
#include <variant>

#include "base/status.h"

namespace dhgcn {

/// \brief Holds either a value of type `T` or an error `Status`.
///
/// Mirrors `arrow::Result`. Construct implicitly from a `T` or a non-OK
/// `Status`. Access the value with `ValueOrDie()` (aborts on error, for
/// tests/examples) or `MoveValue()` after checking `ok()`, or use the
/// DHGCN_ASSIGN_OR_RETURN macro in Status-returning code.
///
/// `[[nodiscard]]` like `Status`: callers must consume the returned value or
/// error; see tools/repo_lint for the discard policy.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit on purpose, like arrow::Result).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Must not be OK.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::holds_alternative<Status>(rep_) &&
        std::get<Status>(rep_).ok()) {
      Status::Internal("Result constructed from OK status").Abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Returns the value; aborts the process when holding an error.
  [[nodiscard]] const T& ValueOrDie() const& {
    if (!ok()) std::get<Status>(rep_).Abort();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& ValueOrDie() & {
    if (!ok()) std::get<Status>(rep_).Abort();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T ValueOrDie() && {
    if (!ok()) std::get<Status>(rep_).Abort();
    return std::move(std::get<T>(rep_));
  }

  /// Moves the value out. Requires ok().
  [[nodiscard]] T MoveValue() {
    if (!ok()) std::get<Status>(rep_).Abort();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status from an expression returning Status.
#define DHGCN_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::dhgcn::Status _dhgcn_status = (expr);         \
    if (!_dhgcn_status.ok()) return _dhgcn_status;  \
  } while (false)

#define DHGCN_CONCAT_IMPL(x, y) x##y
#define DHGCN_CONCAT(x, y) DHGCN_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, on failure returns the error from the enclosing function.
#define DHGCN_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  DHGCN_ASSIGN_OR_RETURN_IMPL(                                  \
      DHGCN_CONCAT(_dhgcn_result_, __LINE__), lhs, rexpr)

#define DHGCN_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueOrDie()

}  // namespace dhgcn

#endif  // DHGCN_BASE_RESULT_H_
