#ifndef DHGCN_BASE_THREAD_POOL_H_
#define DHGCN_BASE_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "base/check.h"
#include "base/thread_annotations.h"

namespace dhgcn {

/// \brief Process-wide fixed-size worker pool for intra-op parallelism.
///
/// The pool exists to make the hot kernels (GEMM family, Conv2d,
/// BatchNorm, the loss batch loop, pairwise distances) use every core
/// **without giving up bit-exact determinism**. The contract that makes
/// that possible:
///
/// *Static contiguous partitioning.* `ParallelFor(begin, end, grain,
/// fn)` splits `[begin, end)` into `ceil(range / grain)` contiguous
/// chunks of `grain` elements (last chunk possibly shorter). The chunk
/// boundaries depend only on `(begin, end, grain)` — never on the
/// worker count — so the same chunks run whether the pool has 1 or 64
/// threads; only *which thread* runs a chunk varies. A kernel whose
/// chunks write disjoint output regions is therefore bit-identical for
/// every thread count, including the fully serial `threads=1` fallback.
///
/// *Fixed-order reduction.* Cross-chunk reductions must not combine
/// partials in completion order. `ParallelReduceSum` stores one partial
/// accumulator per chunk (per-chunk slots, capped at
/// `kMaxReduceChunks`, so the chunking — and thus the float summation
/// tree — is still thread-count-independent) and adds them in ascending
/// chunk order on the calling thread.
///
/// *Task contract.* Tasks must not throw (exceptions are banned in
/// library code; the dispatch path is `noexcept`, so a throwing task
/// terminates), must not call back into `ParallelFor` (nested parallel
/// regions are rejected with a `DHGCN_CHECK`), and must only write
/// state that no other chunk writes.
///
/// *No allocation on the task path.* Dispatch passes a raw function
/// pointer plus a pointer to the caller's stack-resident callable — no
/// `std::function`, no heap traffic — so parallelized `*Into` workspace
/// kernels keep the steady-state allocation budget at zero.
///
/// Thread count: `ThreadPool::Get()` lazily builds the pool with the
/// `DHGCN_THREADS` environment variable if set (>= 1), otherwise
/// `std::thread::hardware_concurrency()`. `SetThreads(n)` reconfigures
/// at any quiescent point (joins and respawns workers); `--threads`
/// plumbs it through the CLI tools. `threads == 1` spawns no workers at
/// all and runs every chunk inline, in order, on the calling thread.
///
/// `ParallelFor` may only be entered from one thread at a time (the
/// library is externally single-threaded: one trainer/evaluator drives
/// the pool).
class ThreadPool {
 public:
  /// Upper bound on per-call reduction chunks (fixed-size slot array on
  /// the caller's stack keeps the reduce path allocation-free).
  static constexpr int64_t kMaxReduceChunks = 64;

  /// The process-wide pool, created on first use.
  static ThreadPool& Get();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Reconfigures the pool to `n` total compute threads (the calling
  /// thread plus `n - 1` workers). `n >= 1`; `n == 1` is the fully
  /// serial fallback. Must not be called from inside a task.
  void SetThreads(int64_t n);

  /// Total compute threads (calling thread included).
  int64_t thread_count() const { return threads_; }

  /// True while the calling thread is executing a ParallelFor task.
  static bool InParallelRegion();

  /// Runs `fn(chunk_begin, chunk_end)` over static contiguous chunks of
  /// `[begin, end)`; see the class comment for the determinism
  /// contract. Blocks until every chunk has finished. Empty ranges
  /// return immediately without invoking `fn`; `grain` must be >= 1.
  template <typename Fn>
  void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
    using Callable = std::remove_reference_t<Fn>;
    Run(
        +[](void* ctx, int64_t chunk_begin, int64_t chunk_end) noexcept {
          (*static_cast<Callable*>(ctx))(chunk_begin, chunk_end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
        begin, end, grain);
  }

  /// Deterministic chunked sum: `fn(chunk_begin, chunk_end)` returns a
  /// `double` partial for its chunk; partials are combined in ascending
  /// chunk order regardless of which thread produced them. The chunk
  /// count is capped at `kMaxReduceChunks` by widening `grain` — still
  /// a pure function of `(begin, end, grain)`, so the summation order
  /// is identical for every thread count.
  template <typename Fn>
  double ParallelReduceSum(int64_t begin, int64_t end, int64_t grain,
                           Fn&& fn) {
    DHGCN_CHECK_GT(grain, 0);
    if (end <= begin) return 0.0;
    int64_t range = end - begin;
    int64_t effective_grain = grain;
    if ((range + effective_grain - 1) / effective_grain > kMaxReduceChunks) {
      effective_grain = (range + kMaxReduceChunks - 1) / kMaxReduceChunks;
    }
    int64_t chunks = (range + effective_grain - 1) / effective_grain;
    double partials[kMaxReduceChunks];
    ParallelFor(begin, end, effective_grain,
                [&](int64_t chunk_begin, int64_t chunk_end) {
                  int64_t slot = (chunk_begin - begin) / effective_grain;
                  partials[slot] = fn(chunk_begin, chunk_end);
                });
    double total = 0.0;
    for (int64_t c = 0; c < chunks; ++c) total += partials[c];
    return total;
  }

 private:
  /// Raw task entry: `noexcept` enforces the exception-free contract at
  /// the dispatch boundary.
  using TaskFn = void (*)(void* ctx, int64_t chunk_begin,
                          int64_t chunk_end) noexcept;

  ThreadPool();
  ~ThreadPool();

  void Run(TaskFn fn, void* ctx, int64_t begin, int64_t end, int64_t grain);
  /// Claims and executes chunks of the current job until none remain.
  /// Runs lock-free by design (see the job_* field comment), so it is
  /// excluded from the static analysis — the active_workers_/job_id_
  /// handshake, not mu_, is what makes its reads race-free (validated
  /// dynamically by the TSan CI job).
  void RunChunks() DHGCN_NO_THREAD_SAFETY_ANALYSIS;
  void WorkerLoop();
  void StopWorkers();
  void StartWorkers(int64_t worker_count);

  /// threads_ and workers_ are reconfigured only at quiescent points
  /// (SetThreads joins every worker first) and read by the configuring
  /// thread, so they carry no guard.
  int64_t threads_ = 1;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar worker_cv_;
  CondVar done_cv_;
  /// Incremented per job; workers wake when it changes.
  uint64_t job_id_ DHGCN_GUARDED_BY(mu_) = 0;
  /// Workers currently inside RunChunks. Publication of the next job
  /// waits for this to reach zero, so job fields are never written
  /// while a straggler may still read them.
  int64_t active_workers_ DHGCN_GUARDED_BY(mu_) = 0;
  bool shutdown_ DHGCN_GUARDED_BY(mu_) = false;

  // Current job. Written under mu_ while active_workers_ == 0; read by
  // workers inside RunChunks *without* the lock, made safe by the
  // job_id_ handshake above (each worker observes the new job_id_ under
  // mu_ before touching these, and no write happens while any worker is
  // active). RunChunks is the one DHGCN_NO_THREAD_SAFETY_ANALYSIS
  // function in the tree for exactly this reason.
  TaskFn job_fn_ DHGCN_GUARDED_BY(mu_) = nullptr;
  void* job_ctx_ DHGCN_GUARDED_BY(mu_) = nullptr;
  int64_t job_begin_ DHGCN_GUARDED_BY(mu_) = 0;
  int64_t job_end_ DHGCN_GUARDED_BY(mu_) = 0;
  int64_t job_grain_ DHGCN_GUARDED_BY(mu_) = 1;
  int64_t job_chunks_ DHGCN_GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> next_chunk_{0};
  std::atomic<int64_t> remaining_chunks_{0};
};

/// Grain (units per chunk) targeting `target_flops` multiply-accumulates
/// per ParallelFor chunk, given the per-unit cost. Depends only on the
/// workload shape — never on the pool size — so chunk boundaries stay
/// thread-count-independent. Kernels with per-chunk setup cost (e.g. the
/// blocked GEMM re-streaming its packed panels) pass a larger target
/// than the 16k default below.
inline int64_t GrainForFlopsTarget(int64_t flops_per_unit,
                                   int64_t target_flops) {
  if (flops_per_unit < 1) flops_per_unit = 1;
  int64_t grain = target_flops / flops_per_unit;
  return grain < 1 ? 1 : grain;
}

/// Default grain policy: roughly 16k multiply-accumulates per chunk.
inline int64_t GrainForFlops(int64_t flops_per_unit) {
  return GrainForFlopsTarget(flops_per_unit, 16384);
}

}  // namespace dhgcn

#endif  // DHGCN_BASE_THREAD_POOL_H_
