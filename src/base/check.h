#ifndef DHGCN_BASE_CHECK_H_
#define DHGCN_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dhgcn::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& detail) {
  std::fprintf(stderr, "%s:%d: DHGCN_CHECK failed: %s %s\n", file, line, expr,
               detail.c_str());
  std::abort();
}

template <typename A, typename B>
std::string FormatBinary(const A& a, const B& b) {
  std::ostringstream oss;
  oss << "(" << a << " vs. " << b << ")";
  return oss.str();
}

}  // namespace dhgcn::internal

/// Aborts with a diagnostic when `condition` is false. For programming
/// errors / internal invariants, never for user-input validation (use
/// Status for that).
#define DHGCN_CHECK(condition)                                       \
  do {                                                               \
    if (!(condition)) {                                              \
      ::dhgcn::internal::CheckFailed(__FILE__, __LINE__, #condition, \
                                     "");                            \
    }                                                                \
  } while (false)

#define DHGCN_CHECK_OP(a, b, op)                                       \
  do {                                                                 \
    auto&& _dhgcn_a = (a);                                             \
    auto&& _dhgcn_b = (b);                                             \
    if (!(_dhgcn_a op _dhgcn_b)) {                                     \
      ::dhgcn::internal::CheckFailed(                                  \
          __FILE__, __LINE__, #a " " #op " " #b,                       \
          ::dhgcn::internal::FormatBinary(_dhgcn_a, _dhgcn_b));        \
    }                                                                  \
  } while (false)

#define DHGCN_CHECK_EQ(a, b) DHGCN_CHECK_OP(a, b, ==)
#define DHGCN_CHECK_NE(a, b) DHGCN_CHECK_OP(a, b, !=)
#define DHGCN_CHECK_LT(a, b) DHGCN_CHECK_OP(a, b, <)
#define DHGCN_CHECK_LE(a, b) DHGCN_CHECK_OP(a, b, <=)
#define DHGCN_CHECK_GT(a, b) DHGCN_CHECK_OP(a, b, >)
#define DHGCN_CHECK_GE(a, b) DHGCN_CHECK_OP(a, b, >=)

/// Checks that a Status-returning expression is OK; aborts otherwise.
#define DHGCN_CHECK_OK(expr)                                           \
  do {                                                                 \
    ::dhgcn::Status _dhgcn_st = (expr);                                \
    if (!_dhgcn_st.ok()) {                                             \
      ::dhgcn::internal::CheckFailed(__FILE__, __LINE__, #expr,        \
                                     _dhgcn_st.ToString());            \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
#define DHGCN_DCHECK(condition) \
  do {                          \
  } while (false)
#define DHGCN_DCHECK_EQ(a, b) DHGCN_DCHECK((a) == (b))
#define DHGCN_DCHECK_LT(a, b) DHGCN_DCHECK((a) < (b))
#define DHGCN_DCHECK_LE(a, b) DHGCN_DCHECK((a) <= (b))
#else
#define DHGCN_DCHECK(condition) DHGCN_CHECK(condition)
#define DHGCN_DCHECK_EQ(a, b) DHGCN_CHECK_EQ(a, b)
#define DHGCN_DCHECK_LT(a, b) DHGCN_CHECK_LT(a, b)
#define DHGCN_DCHECK_LE(a, b) DHGCN_CHECK_LE(a, b)
#endif

#endif  // DHGCN_BASE_CHECK_H_
