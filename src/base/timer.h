#ifndef DHGCN_BASE_TIMER_H_
#define DHGCN_BASE_TIMER_H_

// lint: allow-wallclock-file — wall-clock timing is reporting-only here;
// it never feeds training state or checkpoints.

#include <chrono>

namespace dhgcn {

/// \brief Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dhgcn

#endif  // DHGCN_BASE_TIMER_H_
