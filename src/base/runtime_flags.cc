#include "base/runtime_flags.h"

#include "base/string_util.h"
#include "base/thread_pool.h"

namespace dhgcn {

void RuntimeFlags::Register(FlagSet* flags) {
  flags->AddInt64("threads", &threads,
                  "intra-op compute threads; results are bit-identical "
                  "for any value (0 = DHGCN_THREADS env or hardware "
                  "default)");
  flags->AddString("sparse", &sparse,
                   "CSR routing for the hypergraph operators: off|auto|on "
                   "(auto = below the measured density crossover; any "
                   "choice is bit-identical, this is a speed knob)");
  flags->AddDouble("sparse_threshold", &sparse_threshold,
                   "density crossover override in (0,1] for --sparse auto "
                   "(0 = bench-measured default)");
  flags->AddString("precision", &precision,
                   "inference numerics: fp32|int8 (int8 = post-training "
                   "quantized GEMMs with a calibration pass, ~0.5% top-1 "
                   "budget; empty = DHGCN_PRECISION env or fp32). "
                   "Training always runs fp32.");
}

Status RuntimeFlags::Apply() {
  if (threads < 0) {
    return Status::InvalidArgument(
        StrCat("--threads must be >= 0, got ", threads));
  }
  if (threads > 0) ThreadPool::Get().SetThreads(threads);
  DHGCN_ASSIGN_OR_RETURN(sparse_mode, ParseSparseMode(sparse));
  SparseRouter::Get().set_mode(sparse_mode);
  if (sparse_threshold != 0.0) {
    if (sparse_threshold <= 0.0 || sparse_threshold > 1.0) {
      return Status::InvalidArgument(StrCat(
          "--sparse_threshold must be in (0,1], got ", sparse_threshold));
    }
    SparseRouter::Get().set_density_threshold(sparse_threshold);
  }
  DHGCN_ASSIGN_OR_RETURN(resolved_precision, ResolvePrecision(precision));
  return Status::OK();
}

}  // namespace dhgcn
