#include "base/crc32.h"

#include <array>

namespace dhgcn {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t bytes) {
  static const std::array<uint32_t, 256> table = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < bytes; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t bytes) {
  return Crc32Update(0, data, bytes);
}

}  // namespace dhgcn
