#include "base/flags.h"

#include <cstdlib>
#include <sstream>

#include "base/check.h"
#include "base/string_util.h"

namespace dhgcn {

FlagSet::FlagSet(std::string program_name)
    : program_name_(std::move(program_name)) {}

void FlagSet::AddInt64(const std::string& name, int64_t* value,
                       const std::string& help) {
  DHGCN_CHECK(value != nullptr);
  DHGCN_CHECK(flags_.find(name) == flags_.end());
  flags_[name] = {Type::kInt64, value, help, StrCat(*value)};
}

void FlagSet::AddDouble(const std::string& name, double* value,
                        const std::string& help) {
  DHGCN_CHECK(value != nullptr);
  DHGCN_CHECK(flags_.find(name) == flags_.end());
  flags_[name] = {Type::kDouble, value, help, StrCat(*value)};
}

void FlagSet::AddString(const std::string& name, std::string* value,
                        const std::string& help) {
  DHGCN_CHECK(value != nullptr);
  DHGCN_CHECK(flags_.find(name) == flags_.end());
  flags_[name] = {Type::kString, value, help, *value};
}

void FlagSet::AddBool(const std::string& name, bool* value,
                      const std::string& help) {
  DHGCN_CHECK(value != nullptr);
  DHGCN_CHECK(flags_.find(name) == flags_.end());
  flags_[name] = {Type::kBool, value, help, *value ? "true" : "false"};
}

Status FlagSet::SetValue(const std::string& name, const std::string& value,
                         bool value_present) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument(StrCat("unknown flag --", name));
  }
  FlagInfo& info = it->second;
  switch (info.type) {
    case Type::kBool: {
      if (!value_present || value == "true" || value == "1") {
        *static_cast<bool*>(info.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(info.target) = false;
      } else {
        return Status::InvalidArgument(
            StrCat("bad boolean for --", name, ": ", value));
      }
      return Status::OK();
    }
    case Type::kInt64: {
      if (!value_present) {
        return Status::InvalidArgument(StrCat("--", name, " needs a value"));
      }
      char* end = nullptr;
      long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrCat("bad integer for --", name, ": ", value));
      }
      *static_cast<int64_t*>(info.target) = parsed;
      return Status::OK();
    }
    case Type::kDouble: {
      if (!value_present) {
        return Status::InvalidArgument(StrCat("--", name, " needs a value"));
      }
      char* end = nullptr;
      double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrCat("bad number for --", name, ": ", value));
      }
      *static_cast<double*>(info.target) = parsed;
      return Status::OK();
    }
    case Type::kString: {
      if (!value_present) {
        return Status::InvalidArgument(StrCat("--", name, " needs a value"));
      }
      *static_cast<std::string*>(info.target) = value;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      DHGCN_RETURN_IF_ERROR(
          SetValue(body.substr(0, eq), body.substr(eq + 1), true));
      continue;
    }
    // `--name value` form — but bools may stand alone.
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument(StrCat("unknown flag --", body));
    }
    if (it->second.type == Type::kBool) {
      DHGCN_RETURN_IF_ERROR(SetValue(body, "", false));
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument(StrCat("--", body, " needs a value"));
    }
    DHGCN_RETURN_IF_ERROR(SetValue(body, argv[++i], true));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::ostringstream oss;
  oss << "usage: " << program_name_ << " [flags]\n";
  for (const auto& [name, info] : flags_) {
    oss << "  --" << name << "  " << info.help << " (default: "
        << info.default_text << ")\n";
  }
  return oss.str();
}

}  // namespace dhgcn
