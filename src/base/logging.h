#ifndef DHGCN_BASE_LOGGING_H_
#define DHGCN_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace dhgcn {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets/gets the global minimum level that will be emitted.
/// The initial level is kInfo, or the value of the DHGCN_LOG_LEVEL
/// environment variable (debug|info|warning|error|off) when set.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log emitter; writes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace dhgcn

#define DHGCN_LOG_ENABLED(level) \
  (::dhgcn::LogLevel::level >= ::dhgcn::GetLogLevel())

#define DHGCN_LOG(level)                                                \
  if (!DHGCN_LOG_ENABLED(level)) {                                      \
  } else                                                                \
    ::dhgcn::internal::LogMessage(::dhgcn::LogLevel::level, __FILE__,   \
                                  __LINE__)                             \
        .stream()

#endif  // DHGCN_BASE_LOGGING_H_
