#ifndef DHGCN_BASE_STRING_UTIL_H_
#define DHGCN_BASE_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dhgcn {

namespace internal {

inline void StrAppendImpl(std::ostringstream&) {}

template <typename T, typename... Rest>
void StrAppendImpl(std::ostringstream& oss, const T& value,
                   const Rest&... rest) {
  oss << value;
  StrAppendImpl(oss, rest...);
}

}  // namespace internal

/// Concatenates the streamed representation of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  internal::StrAppendImpl(oss, args...);
  return oss.str();
}

/// Joins elements with `sep`, streaming each element.
template <typename Container>
std::string StrJoin(const Container& items, std::string_view sep) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& item : items) {
    if (!first) oss << sep;
    oss << item;
    first = false;
  }
  return oss.str();
}

/// Splits on a single character, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Formats a double with fixed `digits` decimal places ("12.34").
std::string FormatFixed(double value, int digits);

/// Formats a fraction as a percentage with one decimal ("87.5").
std::string FormatPercent(double fraction);

}  // namespace dhgcn

#endif  // DHGCN_BASE_STRING_UTIL_H_
