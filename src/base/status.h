#ifndef DHGCN_BASE_STATUS_H_
#define DHGCN_BASE_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dhgcn {

/// \brief Error categories used across the library.
///
/// Modeled after the Arrow/Abseil status taxonomy: library entry points that
/// can fail on user input return `Status` (or `Result<T>`); programming
/// errors use the DHGCN_CHECK macros instead.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  /// A per-request deadline expired before (or while) serving it.
  kDeadlineExceeded = 9,
  /// Load shedding: the admission queue rejected the request. Retry
  /// later or against another replica; the request did no work.
  kOverloaded = 10,
};

/// \brief Returns a human-readable name for a status code ("InvalidArgument").
[[nodiscard]] std::string_view StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome carried by value.
///
/// An OK status stores no heap state; error statuses carry a code plus a
/// message. `Status` is cheap to move and to copy in the OK case.
///
/// The class is `[[nodiscard]]`: every function returning `Status` must have
/// its return value consumed. Intentional discards require a
/// `(void)` cast plus an adjacent `// lint: allow-discard` justification
/// (enforced by tools/repo_lint).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return rep_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return rep_ ? rep_->code : StatusCode::kOk;
  }
  [[nodiscard]] const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  /// "OK" or "<Code>: <message>".
  [[nodiscard]] std::string ToString() const;

  /// Aborts the process with the status message.
  [[noreturn]] void Abort() const;
  void AbortIfNotOk() const {
    if (!ok()) Abort();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace dhgcn

#endif  // DHGCN_BASE_STATUS_H_
