#ifndef DHGCN_BASE_FLAGS_H_
#define DHGCN_BASE_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/result.h"

namespace dhgcn {

/// \brief Minimal command-line flag parser for the example/tool binaries.
///
/// Supports `--name=value`, `--name value`, and bare `--name` for bools.
/// Unknown flags are an error; positional arguments are collected in
/// order. Registration:
///
///   FlagSet flags("trainer");
///   int64_t epochs = 10;
///   flags.AddInt64("epochs", &epochs, "number of training epochs");
///   DHGCN_RETURN_IF_ERROR(flags.Parse(argc, argv));
class FlagSet {
 public:
  explicit FlagSet(std::string program_name);

  void AddInt64(const std::string& name, int64_t* value,
                const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value,
               const std::string& help);

  /// Parses argv (skipping argv[0]). On success the registered values
  /// are updated and positional args are available via `positional()`.
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable flag summary.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool };
  struct FlagInfo {
    Type type;
    void* target;
    std::string help;
    std::string default_text;
  };

  Status SetValue(const std::string& name, const std::string& value,
                  bool value_present);

  std::string program_name_;
  std::map<std::string, FlagInfo> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dhgcn

#endif  // DHGCN_BASE_FLAGS_H_
