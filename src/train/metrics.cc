#include "train/metrics.h"

#include <algorithm>

#include "base/check.h"

namespace dhgcn {

namespace {

// True when the label's score ranks within the top k (lower class index
// wins ties, so equal scores before the label count against it).
bool InTopK(const float* row, int64_t num_classes, int64_t label,
            int64_t k) {
  float label_score = row[label];
  int64_t better = 0;
  for (int64_t c = 0; c < num_classes; ++c) {
    if (row[c] > label_score || (row[c] == label_score && c < label)) {
      ++better;
    }
  }
  return better < k;
}

}  // namespace

double TopKAccuracy(const Tensor& logits, const std::vector<int64_t>& labels,
                    int64_t k) {
  DHGCN_CHECK_EQ(logits.ndim(), 2);
  int64_t n = logits.dim(0), num_classes = logits.dim(1);
  DHGCN_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  DHGCN_CHECK_GE(k, 1);
  if (n == 0) return 0.0;
  int64_t hits = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (InTopK(logits.data() + i * num_classes, num_classes,
               labels[static_cast<size_t>(i)], k)) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

void MetricsAccumulator::Add(const Tensor& logits,
                             const std::vector<int64_t>& labels,
                             double loss) {
  DHGCN_CHECK_EQ(logits.ndim(), 2);
  int64_t n = logits.dim(0), num_classes = logits.dim(1);
  DHGCN_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * num_classes;
    int64_t label = labels[static_cast<size_t>(i)];
    if (InTopK(row, num_classes, label, 1)) ++top1_hits_;
    if (InTopK(row, num_classes, label, std::min<int64_t>(5, num_classes))) {
      ++top5_hits_;
    }
  }
  count_ += n;
  loss_sum_ += loss;
  ++loss_batches_;
}

EvalMetrics MetricsAccumulator::Finalize() const {
  EvalMetrics metrics;
  metrics.count = count_;
  if (count_ > 0) {
    metrics.top1 =
        static_cast<double>(top1_hits_) / static_cast<double>(count_);
    metrics.top5 =
        static_cast<double>(top5_hits_) / static_cast<double>(count_);
  }
  if (loss_batches_ > 0) {
    metrics.loss = loss_sum_ / static_cast<double>(loss_batches_);
  }
  return metrics;
}

Tensor ConfusionMatrix(const Tensor& logits,
                       const std::vector<int64_t>& labels,
                       int64_t num_classes) {
  DHGCN_CHECK_EQ(logits.ndim(), 2);
  DHGCN_CHECK_EQ(logits.dim(1), num_classes);
  Tensor confusion({num_classes, num_classes});
  int64_t n = logits.dim(0);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * num_classes;
    int64_t pred = 0;
    for (int64_t c = 1; c < num_classes; ++c) {
      if (row[c] > row[pred]) pred = c;
    }
    confusion.at(labels[static_cast<size_t>(i)], pred) += 1.0f;
  }
  return confusion;
}

}  // namespace dhgcn
