#ifndef DHGCN_TRAIN_EVALUATOR_H_
#define DHGCN_TRAIN_EVALUATOR_H_

#include <string>
#include <vector>

#include "data/dataloader.h"
#include "nn/layer.h"
#include "plan/plan.h"
#include "quant/precision.h"
#include "train/metrics.h"

namespace dhgcn {

/// Evaluation knobs (see `Evaluate` below).
struct EvalOptions {
  /// Stage activations in a per-call Workspace arena (reset per batch,
  /// bit-identical outputs); false = legacy allocating path.
  bool use_workspace = true;
  /// Run inference through a compiled execution plan (kUnfused is
  /// bit-identical to the layer path, kFused folds BatchNorm and fuses
  /// elementwise tails). Runners are cached per batch size; if the
  /// model cannot be captured (e.g. it does not implement `Record`),
  /// evaluation falls back to the layer-by-layer path for the whole
  /// call and logs one warning.
  PlanMode plan = PlanMode::kOff;
  /// Log peak workspace / plan-arena bytes at INFO after the pass.
  bool log_peak_bytes = false;
  /// Inference numerics. kInt8 compiles post-training-quantized plans
  /// (the plan path is implied; `plan` only matters as the fp32
  /// fallback mode): weights freeze to int8 panels after a calibration
  /// pass of up to `calibration_batches` batches over
  /// `calibration_loader` — pass a loader over *training* data; null
  /// falls back to the eval loader itself (calibrating on the eval set
  /// is methodologically impure but numerically harmless here: only
  /// |x| maxima are read). Calibration or capture failure logs one
  /// warning and evaluates fp32.
  Precision precision = Precision::kFp32;
  DataLoader* calibration_loader = nullptr;
  int64_t calibration_batches = 4;
};

/// Evaluates a classifier over a loader (inference mode; loader should be
/// non-shuffling). Reports Top-1/Top-5 accuracy and mean cross-entropy.
EvalMetrics Evaluate(Layer& model, DataLoader& loader,
                     const EvalOptions& options);

/// Back-compat overload: default options with `use_workspace` overridden.
EvalMetrics Evaluate(Layer& model, DataLoader& loader,
                     bool use_workspace = true);

/// \brief Two-stream fused evaluation (Sec. 3.5): sums the joint model's
/// and bone model's logits per sample. The two loaders must iterate the
/// same sample indices in the same order (both non-shuffling over the
/// same split).
EvalMetrics EvaluateFused(Layer& joint_model, Layer& bone_model,
                          DataLoader& joint_loader,
                          DataLoader& bone_loader);

/// \brief N-stream fused evaluation: sums the logits of `models[i]` fed
/// from `loaders[i]`. Generalizes EvaluateFused to the 4-stream
/// (joint / bone / joint-motion / bone-motion) extension. All loaders
/// must iterate the same samples in the same order.
EvalMetrics EvaluateFusedN(const std::vector<Layer*>& models,
                           const std::vector<DataLoader*>& loaders);

/// \brief Per-class evaluation report.
struct ClassReport {
  int64_t label = 0;
  int64_t support = 0;      // true samples of this class
  double precision = 0.0;   // TP / predicted-as-class
  double recall = 0.0;      // TP / support
  double f1 = 0.0;
};

struct ClassificationReport {
  std::vector<ClassReport> classes;
  double accuracy = 0.0;
  double macro_f1 = 0.0;
  int64_t total = 0;

  std::string ToString() const;
};

/// Runs inference over the loader and builds the per-class report.
ClassificationReport EvaluatePerClass(Layer& model, DataLoader& loader,
                                      int64_t num_classes);

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_EVALUATOR_H_
