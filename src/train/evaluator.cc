#include "train/evaluator.h"

#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "base/check.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "nn/loss.h"
#include "plan/plan_builder.h"
#include "plan/plan_runner.h"
#include "quant/calibration.h"
#include "quant/quantize_pass.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"
#include "train/table.h"

namespace dhgcn {

EvalMetrics Evaluate(Layer& model, DataLoader& loader,
                     const EvalOptions& options) {
  model.SetTraining(false);
  SoftmaxCrossEntropy loss;
  MetricsAccumulator accumulator;
  Workspace workspace;
  Workspace* ws = options.use_workspace ? &workspace : nullptr;
  // One compiled runner per batch size (the tail batch is usually
  // smaller); capture failure disables the plan path for this call.
  std::unordered_map<int64_t, std::unique_ptr<PlanRunner>> runners;
  bool int8_ok = options.precision == Precision::kInt8;
  bool plan_ok = int8_ok || options.plan != PlanMode::kOff;
  QuantCalibration calib;
  bool have_calib = false;
  // Int8 first (calibrating lazily, once), fp32 plan fallback; any
  // int8 failure downgrades the whole call with one warning.
  auto compile = [&](const Shape& shape) -> Result<ExecutionPlan> {
    if (int8_ok && !have_calib) {
      DataLoader& cal = options.calibration_loader != nullptr
                            ? *options.calibration_loader
                            : loader;
      Result<QuantCalibration> c =
          CalibrateOnBatches(model, cal, options.calibration_batches);
      if (c.ok()) {
        calib = c.MoveValue();
        have_calib = true;
      } else {
        DHGCN_LOG(kWarning) << "int8 calibration failed ("
                            << c.status().ToString()
                            << "); evaluating fp32";
        int8_ok = false;
      }
    }
    if (int8_ok) {
      Result<ExecutionPlan> plan = BuildInt8InferencePlan(model, shape, calib);
      if (plan.ok()) return plan;
      DHGCN_LOG(kWarning) << "int8 plan compile failed ("
                          << plan.status().ToString() << "); evaluating fp32";
      int8_ok = false;
    }
    if (options.plan == PlanMode::kOff) {
      return Status::FailedPrecondition("fp32 plan path not requested");
    }
    return BuildInferencePlan(model, shape, options.plan);
  };
  size_t plan_arena_bytes = 0;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    if (ws != nullptr) ws->Reset();
    PlanRunner* runner = nullptr;
    if (plan_ok) {
      auto it = runners.find(batch.x.dim(0));
      if (it == runners.end()) {
        Result<ExecutionPlan> plan = compile(batch.x.shape());
        if (!plan.ok()) {
          DHGCN_LOG(kWarning)
              << "plan capture failed (" << plan.status().ToString()
              << "); evaluating layer-by-layer";
          plan_ok = false;
        } else {
          it = runners
                   .emplace(batch.x.dim(0), std::make_unique<PlanRunner>(
                                                std::move(plan).ValueOrDie()))
                   .first;
          plan_arena_bytes += it->second->arena_bytes();
        }
      }
      if (it != runners.end()) runner = it->second.get();
    }
    float batch_loss = 0.0f;
    if (runner != nullptr) {
      const Tensor& logits = runner->Run(batch.x);
      batch_loss =
          ws != nullptr
              ? loss.TryForward(logits, batch.labels, *ws).ValueOrDie()
              : loss.Forward(logits, batch.labels);
      accumulator.Add(logits, batch.labels, batch_loss);
    } else {
      Tensor logits = LayerForward(model, batch.x, ws);
      batch_loss =
          ws != nullptr
              ? loss.TryForward(logits, batch.labels, *ws).ValueOrDie()
              : loss.Forward(logits, batch.labels);
      accumulator.Add(logits, batch.labels, batch_loss);
    }
  }
  if (options.log_peak_bytes) {
    DHGCN_LOG(kInfo) << "eval ws_peak=" << (workspace.PeakBytes() >> 10)
                     << " KiB plan_arenas=" << (plan_arena_bytes >> 10)
                     << " KiB (" << runners.size() << " compiled plans, mode="
                     << PlanModeName(options.plan)
                     << ", precision=" << PrecisionName(options.precision)
                     << ")";
  }
  model.SetTraining(true);
  return accumulator.Finalize();
}

EvalMetrics Evaluate(Layer& model, DataLoader& loader,
                     bool use_workspace) {
  EvalOptions options;
  options.use_workspace = use_workspace;
  return Evaluate(model, loader, options);
}

EvalMetrics EvaluateFused(Layer& joint_model, Layer& bone_model,
                          DataLoader& joint_loader,
                          DataLoader& bone_loader) {
  return EvaluateFusedN({&joint_model, &bone_model},
                        {&joint_loader, &bone_loader});
}

EvalMetrics EvaluateFusedN(const std::vector<Layer*>& models,
                           const std::vector<DataLoader*>& loaders) {
  DHGCN_CHECK(!models.empty());
  DHGCN_CHECK_EQ(models.size(), loaders.size());
  for (size_t s = 1; s < loaders.size(); ++s) {
    DHGCN_CHECK_EQ(loaders[s]->NumBatches(), loaders[0]->NumBatches());
  }
  for (Layer* model : models) model->SetTraining(false);
  SoftmaxCrossEntropy loss;
  MetricsAccumulator accumulator;
  for (int64_t b = 0; b < loaders[0]->NumBatches(); ++b) {
    Batch first = loaders[0]->GetBatch(b);
    Tensor logits = models[0]->Forward(first.x);
    for (size_t s = 1; s < models.size(); ++s) {
      Batch batch = loaders[s]->GetBatch(b);
      DHGCN_CHECK(batch.sample_indices == first.sample_indices);
      AddInPlace(logits, models[s]->Forward(batch.x));
    }
    float batch_loss = loss.Forward(logits, first.labels);
    accumulator.Add(logits, first.labels, batch_loss);
  }
  for (Layer* model : models) model->SetTraining(true);
  return accumulator.Finalize();
}

std::string ClassificationReport::ToString() const {
  TextTable table({"Class", "Support", "Precision", "Recall", "F1"});
  for (const ClassReport& c : classes) {
    table.AddRow({StrCat(c.label), StrCat(c.support),
                  FormatFixed(c.precision, 3), FormatFixed(c.recall, 3),
                  FormatFixed(c.f1, 3)});
  }
  table.AddSeparator();
  table.AddRow({"overall", StrCat(total),
                StrCat("acc=", FormatFixed(accuracy, 3)), "",
                StrCat("macro=", FormatFixed(macro_f1, 3))});
  return table.ToString();
}

ClassificationReport EvaluatePerClass(Layer& model, DataLoader& loader,
                                      int64_t num_classes) {
  DHGCN_CHECK_GT(num_classes, 0);
  model.SetTraining(false);
  Tensor confusion({num_classes, num_classes});
  int64_t total = 0;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    Tensor logits = model.Forward(batch.x);
    AddInPlace(confusion,
               ConfusionMatrix(logits, batch.labels, num_classes));
    total += static_cast<int64_t>(batch.labels.size());
  }
  model.SetTraining(true);

  ClassificationReport report;
  report.total = total;
  double correct = 0.0;
  double f1_sum = 0.0;
  for (int64_t c = 0; c < num_classes; ++c) {
    ClassReport entry;
    entry.label = c;
    double tp = confusion.at(c, c);
    double support = 0.0, predicted = 0.0;
    for (int64_t j = 0; j < num_classes; ++j) {
      support += confusion.at(c, j);
      predicted += confusion.at(j, c);
    }
    entry.support = static_cast<int64_t>(support);
    entry.precision = predicted > 0.0 ? tp / predicted : 0.0;
    entry.recall = support > 0.0 ? tp / support : 0.0;
    entry.f1 = entry.precision + entry.recall > 0.0
                   ? 2.0 * entry.precision * entry.recall /
                         (entry.precision + entry.recall)
                   : 0.0;
    correct += tp;
    f1_sum += entry.f1;
    report.classes.push_back(entry);
  }
  report.accuracy =
      total > 0 ? static_cast<double>(correct) / static_cast<double>(total)
                : 0.0;
  report.macro_f1 = f1_sum / static_cast<double>(num_classes);
  return report;
}

}  // namespace dhgcn
