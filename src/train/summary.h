#ifndef DHGCN_TRAIN_SUMMARY_H_
#define DHGCN_TRAIN_SUMMARY_H_

#include <string>

#include "nn/layer.h"

namespace dhgcn {

/// \brief Per-parameter model summary: name, shape, element count, plus
/// totals — the `model.summary()` of this library.
std::string ParameterSummary(Layer& layer);

/// Total learnable scalars (same as Layer::ParameterCount, exposed as a
/// free function for symmetry with ParameterSummary).
int64_t TotalParameters(Layer& layer);

/// L2 norm of all parameters / all gradients — handy training
/// diagnostics (exploding/vanishing gradient checks).
float ParameterNorm(Layer& layer);
float GradientNorm(Layer& layer);

/// Rescales gradients so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm. Standard gradient clipping.
float ClipGradientNorm(Layer& layer, float max_norm);

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_SUMMARY_H_
