#ifndef DHGCN_TRAIN_PRUNER_H_
#define DHGCN_TRAIN_PRUNER_H_

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace dhgcn {

/// \brief Magnitude-pruning configuration (`--prune*` on dhgcn_train).
struct PruneOptions {
  bool enabled = false;
  /// Fraction of each prunable tensor's weights zeroed once the
  /// schedule completes, in [0, 1).
  double target_sparsity = 0.8;
  /// First epoch (0-based) whose begin-of-epoch event prunes.
  int64_t start_epoch = 1;
  /// Epoch at which the target sparsity is reached (cubic ramp in
  /// between, à la Zhu & Gupta AGP); -1 means one-shot at start_epoch.
  int64_t end_epoch = -1;
  /// Tensors smaller than this are never pruned (biases and BN scales
  /// are already excluded by the >= 2-D rule).
  int64_t min_numel = 32;
};

/// \brief Magnitude-based weight pruning with fine-tuning.
///
/// At each scheduled epoch boundary the pruner recomputes, per
/// prunable tensor (trainable, >= 2 dimensions, >= min_numel
/// elements), a mask zeroing the `s` smallest-magnitude weights; the
/// epochs after a pruning event fine-tune the surviving weights. The
/// mask is re-applied after *every* optimizer step so momentum and
/// weight decay cannot resurrect pruned weights — which also keeps the
/// weights genuinely sparse, so density-routed operators
/// (`SparseRouter`) see the pruned density, not a cloud of tiny values.
///
/// Determinism: selection orders by (|w|, flat index) — a strict total
/// order — and prunes exactly floor(s * numel) entries, so the mask is
/// a pure function of the weights and the schedule, independent of
/// thread count. Steady-state steps are allocation-free: masks and the
/// selection scratch are sized at construction / first event and
/// re-applying a mask is a plain loop.
class Pruner {
 public:
  Pruner(Layer* model, const PruneOptions& options);

  /// Scheduled sparsity for `epoch` (0 before start_epoch, the target
  /// from end_epoch on, cubic ramp in between).
  double SparsityForEpoch(int64_t epoch) const;

  /// Recomputes masks to the scheduled sparsity and applies them.
  /// Call at the top of each training epoch.
  void OnEpochBegin(int64_t epoch);

  /// Re-zeroes masked weights; call after every optimizer step.
  void Apply();

  /// Fraction of prunable weights currently masked off.
  double MaskedFraction() const;
  /// Fraction of prunable weights that are exactly zero right now.
  double MeasuredSparsity() const;
  int64_t prunable_tensors() const {
    return static_cast<int64_t>(targets_.size());
  }

 private:
  struct Target {
    Tensor* value = nullptr;
    std::vector<uint8_t> mask;  // 0 = pruned
  };

  PruneOptions options_;
  std::vector<Target> targets_;
  std::vector<int64_t> scratch_;  // selection index buffer, reused
  double current_sparsity_ = 0.0;
};

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_PRUNER_H_
