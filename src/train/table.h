#ifndef DHGCN_TRAIN_TABLE_H_
#define DHGCN_TRAIN_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace dhgcn {

/// \brief Minimal fixed-width text table used by the benchmark harness to
/// print paper-style result tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// A horizontal separator line before the next row.
  void AddSeparator();

  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // A row is either cells, or empty => separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_TABLE_H_
