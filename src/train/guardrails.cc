#include "train/guardrails.h"

#include <cmath>

#include "base/check.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "tensor/tensor_ops.h"  // HasNonFinite

namespace dhgcn {

std::string GuardrailPolicyName(GuardrailPolicy policy) {
  switch (policy) {
    case GuardrailPolicy::kSkipBatch:
      return "skip";
    case GuardrailPolicy::kHalveLr:
      return "halve-lr";
    case GuardrailPolicy::kRollback:
      return "rollback";
    case GuardrailPolicy::kAbort:
      return "abort";
  }
  return "?";
}

Result<GuardrailPolicy> ParseGuardrailPolicy(const std::string& name) {
  if (name == "skip") return GuardrailPolicy::kSkipBatch;
  if (name == "halve-lr") return GuardrailPolicy::kHalveLr;
  if (name == "rollback") return GuardrailPolicy::kRollback;
  if (name == "abort") return GuardrailPolicy::kAbort;
  return Status::InvalidArgument(
      StrCat("unknown guardrail policy '", name,
             "' (skip|halve-lr|rollback|abort)"));
}

std::optional<std::string> FindNonFiniteGradient(Layer& layer) {
  for (ParamRef& param : layer.Params()) {
    if (!param.trainable || param.grad == nullptr) continue;
    if (HasNonFinite(*param.grad)) return param.name;
  }
  return std::nullopt;
}

Guardrails::Guardrails(Layer* model, const GuardrailOptions& options)
    : model_(model), options_(options) {
  DHGCN_CHECK(model != nullptr);
  // The rollback policy must always have a restore point, even when the
  // very first batch is poisoned.
  if (options_.policy == GuardrailPolicy::kRollback) TakeSnapshot();
  TakeBufferSnapshot();
}

std::optional<std::string> Guardrails::CheckForward(const Tensor& logits,
                                                    float loss) {
  if (!std::isfinite(loss)) {
    return StrCat("non-finite loss (", loss, ")");
  }
  if (HasNonFinite(logits)) {
    return std::string("non-finite logits");
  }
  if (options_.spike_factor > 0.0f &&
      static_cast<int64_t>(recent_losses_.size()) >=
          options_.spike_min_history) {
    double mean = recent_sum_ / static_cast<double>(recent_losses_.size());
    if (static_cast<double>(loss) >
        static_cast<double>(options_.spike_factor) * mean) {
      return StrCat("loss spike (", loss, " vs running mean ", mean, ")");
    }
  }
  return std::nullopt;
}

std::optional<std::string> Guardrails::CheckBackward() {
  std::optional<std::string> param = FindNonFiniteGradient(*model_);
  if (param.has_value()) {
    return StrCat("non-finite gradient in parameter '", *param, "'");
  }
  return std::nullopt;
}

Result<Guardrails::Action> Guardrails::OnAnomaly(const std::string& what) {
  ++counters_.anomalies;
  if (options_.policy == GuardrailPolicy::kAbort) {
    return Status::FailedPrecondition(
        StrCat("guardrail abort: ", what));
  }
  if (options_.max_anomalies > 0 &&
      counters_.anomalies >= options_.max_anomalies) {
    return Status::FailedPrecondition(
        StrCat("guardrail anomaly budget exhausted (", counters_.anomalies,
               " anomalies, limit ", options_.max_anomalies, "); last: ",
               what));
  }
  switch (options_.policy) {
    case GuardrailPolicy::kSkipBatch:
      break;
    case GuardrailPolicy::kHalveLr:
      ++counters_.lr_halvings;
      lr_halve_requested_ = true;
      break;
    case GuardrailPolicy::kRollback:
      if (RestoreSnapshot()) ++counters_.rollbacks;
      break;
    case GuardrailPolicy::kAbort:
      break;  // unreachable, handled above
  }
  // The poisoned forward pass already updated batch-norm running
  // statistics; put the last clean values back for every policy.
  RestoreBufferSnapshot();
  ++counters_.skipped_batches;
  DHGCN_LOG(kWarning) << "guardrail [" << GuardrailPolicyName(options_.policy)
                      << "] " << what;
  return Action::kSkipBatch;
}

void Guardrails::OnCleanStep(float loss) {
  TakeBufferSnapshot();
  recent_losses_.push_back(loss);
  recent_sum_ += static_cast<double>(loss);
  while (static_cast<int64_t>(recent_losses_.size()) >
         options_.spike_window) {
    recent_sum_ -= static_cast<double>(recent_losses_.front());
    recent_losses_.pop_front();
  }
  if (options_.policy == GuardrailPolicy::kRollback &&
      options_.snapshot_every > 0 &&
      ++steps_since_snapshot_ >= options_.snapshot_every) {
    TakeSnapshot();
    steps_since_snapshot_ = 0;
  }
}

bool Guardrails::ConsumeLrHalveRequest() {
  bool requested = lr_halve_requested_;
  lr_halve_requested_ = false;
  return requested;
}

void Guardrails::TakeSnapshot() {
  snapshot_.clear();
  for (ParamRef& param : model_->Params()) {
    snapshot_.push_back(param.value->Clone());
  }
}

bool Guardrails::RestoreSnapshot() {
  if (snapshot_.empty()) return false;
  std::vector<ParamRef> params = model_->Params();
  DHGCN_CHECK_EQ(params.size(), snapshot_.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].value->CopyFrom(snapshot_[i]);
  }
  return true;
}

void Guardrails::TakeBufferSnapshot() {
  buffer_snapshot_.clear();
  for (ParamRef& param : model_->Params()) {
    if (!param.trainable) buffer_snapshot_.push_back(param.value->Clone());
  }
}

void Guardrails::RestoreBufferSnapshot() {
  size_t i = 0;
  for (ParamRef& param : model_->Params()) {
    if (param.trainable) continue;
    DHGCN_CHECK(i < buffer_snapshot_.size());
    param.value->CopyFrom(buffer_snapshot_[i++]);
  }
}

}  // namespace dhgcn
