#include "train/summary.h"

#include <cmath>
#include <sstream>

#include "base/check.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "train/table.h"

namespace dhgcn {

std::string ParameterSummary(Layer& layer) {
  TextTable table({"Parameter", "Shape", "Count"});
  int64_t total = 0;
  for (ParamRef& p : layer.Params()) {
    table.AddRow({p.trainable ? p.name : p.name + " (buffer)",
                  ShapeToString(p.value->shape()),
                  StrCat(p.value->numel())});
    if (p.trainable) total += p.value->numel();
  }
  table.AddSeparator();
  table.AddRow({layer.name(), "trainable total", StrCat(total)});
  return table.ToString();
}

int64_t TotalParameters(Layer& layer) { return layer.ParameterCount(); }

namespace {

double SumSquares(const Tensor& t) {
  double total = 0.0;
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    total += static_cast<double>(p[i]) * p[i];
  }
  return total;
}

}  // namespace

float ParameterNorm(Layer& layer) {
  double total = 0.0;
  for (ParamRef& p : layer.Params()) {
    if (p.trainable) total += SumSquares(*p.value);
  }
  return static_cast<float>(std::sqrt(total));
}

float GradientNorm(Layer& layer) {
  double total = 0.0;
  for (ParamRef& p : layer.Params()) {
    if (p.trainable) total += SumSquares(*p.grad);
  }
  return static_cast<float>(std::sqrt(total));
}

float ClipGradientNorm(Layer& layer, float max_norm) {
  DHGCN_CHECK_GT(max_norm, 0.0f);
  float norm = GradientNorm(layer);
  // A NaN/Inf global norm would make `max_norm / norm` non-finite and
  // spread NaN into *every* parameter gradient; leave the gradients
  // untouched and let the caller's guardrails decide what to do.
  if (!std::isfinite(norm)) {
    DHGCN_LOG(kWarning) << "gradient norm is non-finite (" << norm
                        << "); skipping gradient clip";
    return norm;
  }
  if (norm <= max_norm || norm == 0.0f) return norm;
  float scale = max_norm / norm;
  for (ParamRef& p : layer.Params()) {
    if (!p.trainable) continue;
    float* g = p.grad->data();
    for (int64_t i = 0; i < p.grad->numel(); ++i) g[i] *= scale;
  }
  return norm;
}

}  // namespace dhgcn
