#ifndef DHGCN_TRAIN_GUARDRAILS_H_
#define DHGCN_TRAIN_GUARDRAILS_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "nn/layer.h"

namespace dhgcn {

/// What the trainer does when a step anomaly (non-finite loss / logits /
/// gradients, or a loss spike) is detected.
enum class GuardrailPolicy {
  kSkipBatch,  ///< drop the poisoned update, keep training
  kHalveLr,    ///< drop the update and halve the LR until the next epoch
  kRollback,   ///< restore the last-good parameter snapshot, then skip
  kAbort,      ///< stop training with a descriptive Status
};

std::string GuardrailPolicyName(GuardrailPolicy policy);
Result<GuardrailPolicy> ParseGuardrailPolicy(const std::string& name);

/// \brief Guardrail configuration, carried inside TrainOptions.
struct GuardrailOptions {
  /// Master switch; when false the trainer runs unguarded (seed behaviour).
  bool enabled = false;
  GuardrailPolicy policy = GuardrailPolicy::kSkipBatch;
  /// Loss-spike detector: anomaly when loss > spike_factor * running mean
  /// of the last `spike_window` clean losses. 0 disables the detector;
  /// it needs at least `spike_min_history` clean steps before it arms.
  float spike_factor = 0.0f;
  int64_t spike_window = 32;
  int64_t spike_min_history = 4;
  /// Clean steps between last-good snapshots kept for kRollback (an
  /// initial snapshot is always taken when the policy is kRollback).
  int64_t snapshot_every = 1;
  /// Abort with a descriptive Status after this many anomalies in one
  /// run regardless of policy; 0 = unlimited.
  int64_t max_anomalies = 0;
};

/// Anomaly counters, reported per epoch in EpochStats.
struct GuardrailCounters {
  int64_t anomalies = 0;
  int64_t skipped_batches = 0;
  int64_t lr_halvings = 0;
  int64_t rollbacks = 0;
};

/// Name of the first trainable parameter with a non-finite gradient
/// (uses `HasNonFinite` from tensor_ops.h for the element scan).
std::optional<std::string> FindNonFiniteGradient(Layer& layer);

/// \brief Per-step sentinels plus the anomaly policy engine.
///
/// Owned by the Trainer (one instance per training run). The trainer
/// calls CheckForward / CheckBackward around each step; on an anomaly it
/// calls OnAnomaly and either skips the batch or propagates the error
/// Status. LR mechanics stay in the trainer (it owns the optimizer), so
/// kHalveLr is surfaced through ConsumeLrHalveRequest.
class Guardrails {
 public:
  Guardrails(Layer* model, const GuardrailOptions& options);

  /// Checks logits and loss for non-finite values and loss spikes;
  /// returns a description of the anomaly, if any.
  std::optional<std::string> CheckForward(const Tensor& logits, float loss);

  /// Checks parameter gradients after the backward pass.
  std::optional<std::string> CheckBackward();

  enum class Action { kSkipBatch };
  /// Applies the policy for one detected anomaly. kRollback restores the
  /// last-good snapshot here; kAbort (and the max_anomalies cap) return a
  /// descriptive error Status instead of an action. All recoverable
  /// policies also restore non-trainable buffers (batch-norm running
  /// statistics) to their last clean values — the forward pass mutates
  /// them before the anomaly is detectable, so skipping the optimizer
  /// step alone would leave poisoned statistics behind.
  Result<Action> OnAnomaly(const std::string& what);

  /// Records a clean step: feeds the spike window and refreshes the
  /// rollback snapshot on its cadence.
  void OnCleanStep(float loss);

  /// True once after each kHalveLr anomaly; the trainer applies the
  /// actual LR change.
  bool ConsumeLrHalveRequest();

  const GuardrailCounters& counters() const { return counters_; }

 private:
  void TakeSnapshot();
  bool RestoreSnapshot();
  void TakeBufferSnapshot();
  void RestoreBufferSnapshot();

  Layer* model_;
  GuardrailOptions options_;
  GuardrailCounters counters_;
  std::deque<float> recent_losses_;
  double recent_sum_ = 0.0;
  std::vector<Tensor> snapshot_;
  // Last-clean copies of the non-trainable buffers, kept for every
  // policy (buffers are tiny next to the weights).
  std::vector<Tensor> buffer_snapshot_;
  int64_t steps_since_snapshot_ = 0;
  bool lr_halve_requested_ = false;
};

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_GUARDRAILS_H_
