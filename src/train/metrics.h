#ifndef DHGCN_TRAIN_METRICS_H_
#define DHGCN_TRAIN_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Classification quality over an evaluation pass.
struct EvalMetrics {
  double top1 = 0.0;
  double top5 = 0.0;
  double loss = 0.0;
  int64_t count = 0;
};

/// Fraction of rows whose true label is within the top-k scores.
/// `logits` is (N, K); ties are broken toward lower class index.
double TopKAccuracy(const Tensor& logits, const std::vector<int64_t>& labels,
                    int64_t k);

/// \brief Streaming accumulator for Top-1/Top-5 accuracy and mean loss.
class MetricsAccumulator {
 public:
  /// Adds one batch; `loss` is the batch-mean loss (optional, pass 0).
  void Add(const Tensor& logits, const std::vector<int64_t>& labels,
           double loss);

  EvalMetrics Finalize() const;
  int64_t count() const { return count_; }

 private:
  int64_t count_ = 0;
  int64_t top1_hits_ = 0;
  int64_t top5_hits_ = 0;
  double loss_sum_ = 0.0;
  int64_t loss_batches_ = 0;
};

/// Per-class confusion matrix (K, K): rows = true class, cols = predicted.
Tensor ConfusionMatrix(const Tensor& logits,
                       const std::vector<int64_t>& labels,
                       int64_t num_classes);

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_METRICS_H_
