#include "train/trainer.h"

#include "base/check.h"
#include "base/logging.h"
#include "base/timer.h"
#include "train/evaluator.h"
#include "train/summary.h"

namespace dhgcn {

Trainer::Trainer(Layer* model, const TrainOptions& options)
    : model_(model),
      options_(options),
      loss_(options.label_smoothing),
      schedule_(options.initial_lr, options.lr_milestones,
                options.lr_decay_factor) {
  DHGCN_CHECK(model != nullptr);
  DHGCN_CHECK_GT(options.epochs, 0);
  switch (options_.optimizer) {
    case OptimizerKind::kSgd: {
      SgdOptimizer::Options sgd_options;
      sgd_options.lr = options.initial_lr;
      sgd_options.momentum = options.momentum;
      sgd_options.weight_decay = options.weight_decay;
      sgd_ = std::make_unique<SgdOptimizer>(model->Params(), sgd_options);
      break;
    }
    case OptimizerKind::kAdam: {
      AdamOptimizer::Options adam_options;
      adam_options.lr = options.initial_lr;
      adam_options.weight_decay = options.weight_decay;
      adam_ =
          std::make_unique<AdamOptimizer>(model->Params(), adam_options);
      break;
    }
  }
}

void Trainer::ApplyLr(int64_t epoch) {
  float lr = schedule_.LrForEpoch(epoch);
  if (sgd_ != nullptr) sgd_->set_lr(lr);
  if (adam_ != nullptr) adam_->set_lr(lr);
}

void Trainer::OptimizerZeroGrad() {
  if (sgd_ != nullptr) sgd_->ZeroGrad();
  if (adam_ != nullptr) adam_->ZeroGrad();
}

void Trainer::OptimizerStep() {
  if (sgd_ != nullptr) sgd_->Step();
  if (adam_ != nullptr) adam_->Step();
}

double Trainer::CurrentLr() const {
  if (sgd_ != nullptr) return sgd_->lr();
  return adam_->lr();
}

EpochStats Trainer::TrainEpoch(DataLoader& loader, int64_t epoch) {
  WallTimer timer;
  model_->SetTraining(true);
  loader.StartEpoch();
  ApplyLr(epoch);

  MetricsAccumulator accumulator;
  double loss_sum = 0.0;
  int64_t batches = loader.NumBatches();
  for (int64_t b = 0; b < batches; ++b) {
    Batch batch = loader.GetBatch(b);
    OptimizerZeroGrad();
    Tensor logits = model_->Forward(batch.x);
    float loss = loss_.Forward(logits, batch.labels);
    accumulator.Add(logits, batch.labels, loss);
    loss_sum += loss;
    model_->Backward(loss_.Backward());
    if (options_.clip_grad_norm > 0.0f) {
      ClipGradientNorm(*model_, options_.clip_grad_norm);
    }
    OptimizerStep();
  }

  EpochStats stats;
  stats.epoch = epoch;
  stats.mean_loss = batches > 0 ? loss_sum / batches : 0.0;
  stats.train_top1 = accumulator.Finalize().top1;
  stats.lr = CurrentLr();
  stats.seconds = timer.ElapsedSeconds();
  if (options_.verbose) {
    DHGCN_LOG(kInfo) << model_->name() << " epoch " << epoch
                     << " loss=" << stats.mean_loss
                     << " top1=" << stats.train_top1 << " lr=" << stats.lr
                     << " (" << stats.seconds << "s)";
  }
  return stats;
}

std::vector<EpochStats> Trainer::Train(DataLoader& loader) {
  std::vector<EpochStats> history;
  history.reserve(static_cast<size_t>(options_.epochs));
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    history.push_back(TrainEpoch(loader, epoch));
  }
  return history;
}

ValidatedTraining Trainer::TrainWithValidation(DataLoader& train_loader,
                                               DataLoader& val_loader,
                                               int64_t patience) {
  ValidatedTraining result;
  std::vector<Tensor> best_params;
  int64_t epochs_since_best = 0;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    result.history.push_back(TrainEpoch(train_loader, epoch));
    EvalMetrics val = Evaluate(*model_, val_loader);
    if (val.top1 > result.best_val_top1 || result.best_epoch < 0) {
      result.best_val_top1 = val.top1;
      result.best_epoch = epoch;
      epochs_since_best = 0;
      best_params.clear();
      for (ParamRef& p : model_->Params()) {
        best_params.push_back(p.value->Clone());
      }
    } else {
      ++epochs_since_best;
      if (patience > 0 && epochs_since_best >= patience) {
        result.early_stopped = true;
        break;
      }
    }
  }
  // Restore the best snapshot.
  if (!best_params.empty()) {
    std::vector<ParamRef> params = model_->Params();
    DHGCN_CHECK_EQ(params.size(), best_params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].value->CopyFrom(best_params[i]);
    }
  }
  return result;
}

}  // namespace dhgcn
