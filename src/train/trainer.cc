#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <utility>

#include "base/alloc_stats.h"
#include "base/check.h"
#include "base/fault_injection.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "base/timer.h"
#include "train/evaluator.h"
#include "train/summary.h"

namespace dhgcn {

namespace {

// Deterministic gradient-corruption hook: when an injection site is armed
// (tests, --fault_inject), poisons the first element of the first trainable
// gradient after the backward pass — exactly what a bad kernel or an
// overflowing activation would produce.
void MaybeInjectGradientFault(Layer& model) {
  FaultInjection& faults = FaultInjection::Get();
  if (!faults.any_armed()) return;
  float poison = 0.0f;
  bool fire = false;
  if (faults.ShouldFire(FaultSite::kGradientNaN)) {
    poison = std::numeric_limits<float>::quiet_NaN();
    fire = true;
  }
  if (faults.ShouldFire(FaultSite::kGradientInf)) {
    poison = std::numeric_limits<float>::infinity();
    fire = true;
  }
  if (!fire) return;
  for (ParamRef& p : model.Params()) {
    if (!p.trainable || p.grad == nullptr || p.grad->numel() == 0) continue;
    p.grad->data()[0] = poison;
    return;
  }
}

}  // namespace

Trainer::Trainer(Layer* model, const TrainOptions& options)
    : model_(model),
      options_(options),
      loss_(options.label_smoothing),
      schedule_(options.initial_lr, options.lr_milestones,
                options.lr_decay_factor) {
  DHGCN_CHECK(model != nullptr);
  DHGCN_CHECK_GT(options.epochs, 0);
  switch (options_.optimizer) {
    case OptimizerKind::kSgd: {
      SgdOptimizer::Options sgd_options;
      sgd_options.lr = options.initial_lr;
      sgd_options.momentum = options.momentum;
      sgd_options.weight_decay = options.weight_decay;
      sgd_ = std::make_unique<SgdOptimizer>(model->Params(), sgd_options);
      break;
    }
    case OptimizerKind::kAdam: {
      AdamOptimizer::Options adam_options;
      adam_options.lr = options.initial_lr;
      adam_options.weight_decay = options.weight_decay;
      adam_ =
          std::make_unique<AdamOptimizer>(model->Params(), adam_options);
      break;
    }
  }
  if (options_.guardrails.enabled) {
    guardrails_ = std::make_unique<Guardrails>(model_, options_.guardrails);
  }
  if (options_.prune.enabled) {
    pruner_ = std::make_unique<Pruner>(model_, options_.prune);
  }
}

void Trainer::ApplyLr(int64_t epoch) {
  SetLr(schedule_.LrForEpoch(epoch));
}

void Trainer::SetLr(float lr) {
  if (sgd_ != nullptr) sgd_->set_lr(lr);
  if (adam_ != nullptr) adam_->set_lr(lr);
}

void Trainer::OptimizerZeroGrad() {
  if (sgd_ != nullptr) sgd_->ZeroGrad();
  if (adam_ != nullptr) adam_->ZeroGrad();
}

void Trainer::OptimizerStep() {
  if (sgd_ != nullptr) sgd_->Step();
  if (adam_ != nullptr) adam_->Step();
}

double Trainer::CurrentLr() const {
  if (sgd_ != nullptr) return sgd_->lr();
  return adam_->lr();
}

const GuardrailCounters& Trainer::guardrail_counters() const {
  static const GuardrailCounters kEmpty;
  return guardrails_ != nullptr ? guardrails_->counters() : kEmpty;
}

Result<EpochStats> Trainer::TrainEpoch(DataLoader& loader, int64_t epoch) {
  WallTimer timer;
  model_->SetTraining(true);
  loader.StartEpoch();
  ApplyLr(epoch);
  if (pruner_ != nullptr) pruner_->OnEpochBegin(epoch);

  GuardrailCounters at_start;
  if (guardrails_ != nullptr) at_start = guardrails_->counters();

  MetricsAccumulator accumulator;
  AllocStatsGuard alloc_guard;
  double loss_sum = 0.0;
  int64_t clean_batches = 0;
  int64_t batches = loader.NumBatches();
  const bool planned = options_.use_workspace;
  for (int64_t b = 0; b < batches; ++b) {
    Batch batch = loader.GetBatch(b);
    OptimizerZeroGrad();
    Tensor logits;
    if (planned) {
      // Step boundary: recycle every activation of the previous step.
      workspace_.Reset();
      model_->ForwardInto(batch.x, workspace_, &logits);
    } else {
      logits = model_->Forward(batch.x);
    }
    DHGCN_ASSIGN_OR_RETURN(
        float loss, planned ? loss_.TryForward(logits, batch.labels,
                                               workspace_)
                            : loss_.TryForward(logits, batch.labels));
    if (guardrails_ != nullptr) {
      if (std::optional<std::string> anomaly =
              guardrails_->CheckForward(logits, loss)) {
        DHGCN_ASSIGN_OR_RETURN(Guardrails::Action action,
                               guardrails_->OnAnomaly(*anomaly));
        (void)action;  // the only recoverable action is skipping the batch
        if (guardrails_->ConsumeLrHalveRequest()) {
          SetLr(static_cast<float>(CurrentLr()) * 0.5f);
        }
        continue;
      }
    }
    if (planned) {
      Tensor grad_input;
      model_->BackwardInto(loss_.Backward(workspace_), workspace_,
                           &grad_input);
    } else {
      model_->Backward(loss_.Backward());
    }
    MaybeInjectGradientFault(*model_);
    if (guardrails_ != nullptr) {
      if (std::optional<std::string> anomaly = guardrails_->CheckBackward()) {
        DHGCN_ASSIGN_OR_RETURN(Guardrails::Action action,
                               guardrails_->OnAnomaly(*anomaly));
        (void)action;
        if (guardrails_->ConsumeLrHalveRequest()) {
          SetLr(static_cast<float>(CurrentLr()) * 0.5f);
        }
        continue;
      }
    }
    if (options_.clip_grad_norm > 0.0f) {
      ClipGradientNorm(*model_, options_.clip_grad_norm);
    }
    OptimizerStep();
    // Masks re-applied every step: momentum/weight-decay updates must
    // not resurrect pruned weights (and the density routing should see
    // true zeros, not near-zeros).
    if (pruner_ != nullptr) pruner_->Apply();
    accumulator.Add(logits, batch.labels, loss);
    loss_sum += loss;
    ++clean_batches;
    if (guardrails_ != nullptr) guardrails_->OnCleanStep(loss);
  }

  EpochStats stats;
  stats.epoch = epoch;
  stats.mean_loss =
      clean_batches > 0 ? loss_sum / static_cast<double>(clean_batches) : 0.0;
  stats.train_top1 =
      clean_batches > 0 ? accumulator.Finalize().top1 : 0.0;
  stats.lr = CurrentLr();
  stats.seconds = timer.ElapsedSeconds();
  AllocStatsSnapshot allocs = alloc_guard.Delta();
  stats.tensor_allocations = allocs.allocations;
  stats.tensor_alloc_bytes = allocs.bytes;
  if (guardrails_ != nullptr) {
    const GuardrailCounters& now = guardrails_->counters();
    stats.guardrails.anomalies = now.anomalies - at_start.anomalies;
    stats.guardrails.skipped_batches =
        now.skipped_batches - at_start.skipped_batches;
    stats.guardrails.lr_halvings = now.lr_halvings - at_start.lr_halvings;
    stats.guardrails.rollbacks = now.rollbacks - at_start.rollbacks;
  }
  if (options_.verbose) {
    DHGCN_LOG(kInfo) << model_->name() << " epoch " << epoch
                     << " loss=" << stats.mean_loss
                     << " top1=" << stats.train_top1 << " lr=" << stats.lr
                     << (pruner_ != nullptr
                             ? StrCat(" sparsity=",
                                      pruner_->MeasuredSparsity())
                             : std::string())
                     << " allocs=" << stats.tensor_allocations << " ("
                     << (stats.tensor_alloc_bytes >> 10) << " KiB)"
                     << " ws_peak=" << (workspace_.PeakBytes() >> 10)
                     << " KiB"
                     << " threads=" << ThreadPool::Get().thread_count()
                     << " (" << stats.seconds << "s)";
  }
  return stats;
}

Result<std::vector<EpochStats>> Trainer::Train(DataLoader& loader) {
  std::vector<EpochStats> history;
  history.reserve(static_cast<size_t>(options_.epochs));
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    DHGCN_ASSIGN_OR_RETURN(EpochStats stats, TrainEpoch(loader, epoch));
    history.push_back(std::move(stats));
  }
  return history;
}

Result<ValidatedTraining> Trainer::TrainWithValidation(
    DataLoader& train_loader, DataLoader& val_loader, int64_t patience) {
  ValidatedTraining result;
  std::vector<Tensor> best_params;
  int64_t epochs_since_best = 0;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    DHGCN_ASSIGN_OR_RETURN(EpochStats stats,
                           TrainEpoch(train_loader, epoch));
    result.history.push_back(std::move(stats));
    EvalMetrics val = Evaluate(*model_, val_loader);
    if (val.top1 > result.best_val_top1 || result.best_epoch < 0) {
      result.best_val_top1 = val.top1;
      result.best_epoch = epoch;
      epochs_since_best = 0;
      best_params.clear();
      for (ParamRef& p : model_->Params()) {
        best_params.push_back(p.value->Clone());
      }
    } else {
      ++epochs_since_best;
      if (patience > 0 && epochs_since_best >= patience) {
        result.early_stopped = true;
        break;
      }
    }
  }
  // Restore the best snapshot.
  if (!best_params.empty()) {
    std::vector<ParamRef> params = model_->Params();
    DHGCN_CHECK_EQ(params.size(), best_params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].value->CopyFrom(best_params[i]);
    }
  }
  return result;
}

Checkpoint Trainer::CaptureCheckpoint(int64_t completed_epochs,
                                      DataLoader& loader) {
  Checkpoint checkpoint;
  checkpoint.epoch = completed_epochs;
  TrainerState& state = checkpoint.trainer;
  if (sgd_ != nullptr) {
    state.optimizer = "sgd";
    const std::vector<ParamRef>& params = sgd_->params();
    std::vector<Tensor>& velocity = sgd_->velocity();
    for (size_t i = 0; i < params.size(); ++i) {
      state.slots.push_back(
          {StrCat("sgd_velocity/", params[i].name), velocity[i].Clone()});
    }
  } else {
    state.optimizer = "adam";
    state.adam_step_count = adam_->step_count();
    const std::vector<ParamRef>& params = adam_->params();
    std::vector<Tensor>& m = adam_->moment1();
    std::vector<Tensor>& v = adam_->moment2();
    for (size_t i = 0; i < params.size(); ++i) {
      state.slots.push_back(
          {StrCat("adam_m/", params[i].name), m[i].Clone()});
      state.slots.push_back(
          {StrCat("adam_v/", params[i].name), v[i].Clone()});
    }
  }
  state.loader_rng = loader.SerializeRngState();
  return checkpoint;
}

namespace {

// Finds a named optimizer slot and checks its shape against the live
// buffer; a mismatch means the checkpoint was written by a different
// model/optimizer configuration.
Result<const OptimizerSlot*> FindSlot(const TrainerState& state,
                                      const std::string& name,
                                      const Tensor& like) {
  for (const OptimizerSlot& slot : state.slots) {
    if (slot.name != name) continue;
    if (!ShapesEqual(slot.value.shape(), like.shape())) {
      return Status::InvalidArgument(
          StrCat("optimizer slot '", name, "' has shape ",
                 ShapeToString(slot.value.shape()), " but the model expects ",
                 ShapeToString(like.shape())));
    }
    return &slot;
  }
  return Status::InvalidArgument(
      StrCat("checkpoint is missing optimizer slot '", name, "'"));
}

}  // namespace

Status Trainer::RestoreTrainerState(const Checkpoint& checkpoint,
                                    DataLoader& loader) {
  const TrainerState& state = checkpoint.trainer;
  if (state.optimizer.empty()) {
    // v1 checkpoints carry parameters only; resuming from one restarts the
    // optimizer and data order, so the run is not bit-exact.
    DHGCN_LOG(kWarning)
        << "checkpoint has no trainer state (v1 file?); resuming with "
           "fresh optimizer and data order";
    return Status::OK();
  }
  const std::string expected = sgd_ != nullptr ? "sgd" : "adam";
  if (state.optimizer != expected) {
    return Status::InvalidArgument(
        StrCat("checkpoint was written with optimizer '", state.optimizer,
               "' but this trainer uses '", expected, "'"));
  }
  if (sgd_ != nullptr) {
    const std::vector<ParamRef>& params = sgd_->params();
    std::vector<Tensor>& velocity = sgd_->velocity();
    for (size_t i = 0; i < params.size(); ++i) {
      DHGCN_ASSIGN_OR_RETURN(
          const OptimizerSlot* slot,
          FindSlot(state, StrCat("sgd_velocity/", params[i].name),
                   velocity[i]));
      velocity[i].CopyFrom(slot->value);
    }
  } else {
    const std::vector<ParamRef>& params = adam_->params();
    std::vector<Tensor>& m = adam_->moment1();
    std::vector<Tensor>& v = adam_->moment2();
    for (size_t i = 0; i < params.size(); ++i) {
      DHGCN_ASSIGN_OR_RETURN(
          const OptimizerSlot* m_slot,
          FindSlot(state, StrCat("adam_m/", params[i].name), m[i]));
      DHGCN_ASSIGN_OR_RETURN(
          const OptimizerSlot* v_slot,
          FindSlot(state, StrCat("adam_v/", params[i].name), v[i]));
      m[i].CopyFrom(m_slot->value);
      v[i].CopyFrom(v_slot->value);
    }
    adam_->set_step_count(state.adam_step_count);
  }
  if (!state.loader_rng.empty()) {
    DHGCN_RETURN_IF_ERROR(loader.DeserializeRngState(state.loader_rng));
  }
  return Status::OK();
}

Result<ResumedTraining> Trainer::TrainWithResume(DataLoader& loader,
                                                 const ResumeOptions& resume) {
  if (resume.checkpoint_path.empty()) {
    return Status::InvalidArgument("ResumeOptions.checkpoint_path is empty");
  }
  if (resume.checkpoint_every <= 0) {
    return Status::InvalidArgument(
        StrCat("checkpoint_every must be positive, got ",
               resume.checkpoint_every));
  }

  ResumedTraining result;
  if (resume.resume && std::filesystem::exists(resume.checkpoint_path)) {
    DHGCN_ASSIGN_OR_RETURN(Checkpoint checkpoint,
                           LoadCheckpoint(resume.checkpoint_path, *model_));
    DHGCN_RETURN_IF_ERROR(RestoreTrainerState(checkpoint, loader));
    result.start_epoch = checkpoint.epoch;
    result.resumed = true;
    DHGCN_LOG(kInfo) << "resumed from " << resume.checkpoint_path
                     << " at epoch " << checkpoint.epoch;
  }
  result.completed_epochs = result.start_epoch;

  int64_t end_epoch = options_.epochs;
  if (resume.stop_after_epochs > 0) {
    end_epoch =
        std::min(end_epoch, result.start_epoch + resume.stop_after_epochs);
  }
  for (int64_t epoch = result.start_epoch; epoch < end_epoch; ++epoch) {
    DHGCN_ASSIGN_OR_RETURN(EpochStats stats, TrainEpoch(loader, epoch));
    result.history.push_back(std::move(stats));
    result.completed_epochs = epoch + 1;
    // Cadence is aligned to absolute epochs so interrupted and
    // uninterrupted runs write checkpoints at the same points.
    bool last = epoch + 1 == end_epoch;
    if ((epoch + 1) % resume.checkpoint_every == 0 || last) {
      Checkpoint checkpoint = CaptureCheckpoint(epoch + 1, loader);
      DHGCN_RETURN_IF_ERROR(
          SaveCheckpoint(resume.checkpoint_path, *model_, checkpoint));
    }
  }
  return result;
}

}  // namespace dhgcn
