#include "train/experiment.h"

#include <memory>

#include <cstdlib>
#include <cstring>

#include "base/check.h"
#include "base/logging.h"
#include "train/evaluator.h"

namespace dhgcn {

std::string SplitProtocolName(SplitProtocol protocol) {
  switch (protocol) {
    case SplitProtocol::kCrossSubject:
      return "X-Sub";
    case SplitProtocol::kCrossView:
      return "X-View";
    case SplitProtocol::kCrossSetup:
      return "X-Set";
    case SplitProtocol::kRandom:
      return "holdout";
  }
  return "?";
}

DatasetSplit MakeSplit(const SkeletonDataset& dataset,
                       SplitProtocol protocol, uint64_t seed) {
  switch (protocol) {
    case SplitProtocol::kCrossSubject:
      return dataset.CrossSubjectSplit();
    case SplitProtocol::kCrossView:
      return dataset.CrossViewSplit(/*test_camera=*/0);
    case SplitProtocol::kCrossSetup:
      return dataset.CrossSetupSplit();
    case SplitProtocol::kRandom:
      return dataset.RandomSplit(/*test_fraction=*/0.25f, seed);
  }
  DHGCN_CHECK(false);
  return {};
}

EvalMetrics TrainAndEvaluateStream(Layer& model,
                                   const SkeletonDataset& dataset,
                                   const DatasetSplit& split,
                                   InputStream stream,
                                   const TrainOptions& train_options,
                                   int64_t batch_size, uint64_t seed) {
  DHGCN_CHECK(!split.train.empty());
  DHGCN_CHECK(!split.test.empty());
  DataLoader train_loader(&dataset, split.train, batch_size, stream,
                          /*shuffle=*/true, Rng(seed));
  DataLoader test_loader(&dataset, split.test, batch_size, stream,
                         /*shuffle=*/false);
  Trainer trainer(&model, train_options);
  trainer.Train(train_loader).status().AbortIfNotOk();
  return Evaluate(model, test_loader);
}

TwoStreamEval RunTwoStreamExperiment(const ModelFactory& factory,
                                     const SkeletonDataset& dataset,
                                     const DatasetSplit& split,
                                     const TrainOptions& train_options,
                                     int64_t batch_size, uint64_t seed) {
  TwoStreamEval result;
  LayerPtr joint_model = factory();
  LayerPtr bone_model = factory();
  result.joint = TrainAndEvaluateStream(*joint_model, dataset, split,
                                        InputStream::kJoint, train_options,
                                        batch_size, seed);
  result.bone = TrainAndEvaluateStream(*bone_model, dataset, split,
                                       InputStream::kBone, train_options,
                                       batch_size, seed + 1);
  DataLoader joint_test(&dataset, split.test, batch_size,
                        InputStream::kJoint, /*shuffle=*/false);
  DataLoader bone_test(&dataset, split.test, batch_size, InputStream::kBone,
                       /*shuffle=*/false);
  result.fused =
      EvaluateFused(*joint_model, *bone_model, joint_test, bone_test);
  return result;
}

FourStreamEval RunFourStreamExperiment(const ModelFactory& factory,
                                       const SkeletonDataset& dataset,
                                       const DatasetSplit& split,
                                       const TrainOptions& train_options,
                                       int64_t batch_size, uint64_t seed) {
  const InputStream streams[4] = {
      InputStream::kJoint, InputStream::kBone, InputStream::kJointMotion,
      InputStream::kBoneMotion};
  std::vector<LayerPtr> models;
  std::vector<EvalMetrics> per_stream;
  for (int s = 0; s < 4; ++s) {
    models.push_back(factory());
    per_stream.push_back(TrainAndEvaluateStream(
        *models.back(), dataset, split, streams[s], train_options,
        batch_size, seed + static_cast<uint64_t>(s)));
  }
  std::vector<std::unique_ptr<DataLoader>> test_loaders;
  std::vector<DataLoader*> loader_ptrs;
  std::vector<Layer*> model_ptrs;
  for (int s = 0; s < 4; ++s) {
    test_loaders.push_back(std::make_unique<DataLoader>(
        &dataset, split.test, batch_size, streams[s], /*shuffle=*/false));
    loader_ptrs.push_back(test_loaders.back().get());
    model_ptrs.push_back(models[static_cast<size_t>(s)].get());
  }
  FourStreamEval result;
  result.joint = per_stream[0];
  result.bone = per_stream[1];
  result.joint_motion = per_stream[2];
  result.bone_motion = per_stream[3];
  result.fused_two = EvaluateFusedN({model_ptrs[0], model_ptrs[1]},
                                    {loader_ptrs[0], loader_ptrs[1]});
  result.fused_four = EvaluateFusedN(model_ptrs, loader_ptrs);
  return result;
}

BenchScale GetBenchScale() {
  BenchScale scale;
  scale.num_classes = 5;
  scale.samples_per_class = 16;
  scale.num_frames = 16;
  scale.epochs = 14;
  scale.batch_size = 8;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read from the single-threaded
  // experiment driver before training (and its pool workers) starts.
  const char* env = std::getenv("DHGCN_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "smoke") == 0) {
    scale.num_classes = 3;
    scale.samples_per_class = 6;
    scale.num_frames = 12;
    scale.epochs = 2;
    scale.batch_size = 4;
    scale.name = "smoke";
  } else if (env != nullptr && std::strcmp(env, "full") == 0) {
    scale.num_classes = 8;
    scale.samples_per_class = 40;
    scale.num_frames = 16;
    scale.epochs = 28;
    scale.batch_size = 8;
    scale.name = "full";
  }
  return scale;
}

TrainOptions BenchTrainOptions(const BenchScale& scale) {
  TrainOptions options;
  options.epochs = scale.epochs;
  // Paper schedule shape (SGD momentum 0.9, step decay /10); LR 0.05 is
  // the stable setting for the CPU-scale models (the paper's 0.1 assumes
  // batch 16 and the full-depth network).
  options.initial_lr = 0.05f;
  options.lr_milestones = {scale.epochs * 3 / 5, scale.epochs * 4 / 5};
  options.momentum = 0.9f;
  options.weight_decay = 1e-4f;
  return options;
}

}  // namespace dhgcn
