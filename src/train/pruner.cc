#include "train/pruner.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace dhgcn {

Pruner::Pruner(Layer* model, const PruneOptions& options)
    : options_(options) {
  DHGCN_CHECK(model != nullptr);
  DHGCN_CHECK(options_.target_sparsity >= 0.0 &&
              options_.target_sparsity < 1.0);
  DHGCN_CHECK_GE(options_.start_epoch, 0);
  if (options_.end_epoch < 0) options_.end_epoch = options_.start_epoch;
  DHGCN_CHECK_GE(options_.end_epoch, options_.start_epoch);
  int64_t max_numel = 0;
  for (const ParamRef& param : model->Params()) {
    if (!param.trainable || param.value == nullptr) continue;
    if (param.value->ndim() < 2) continue;
    if (param.value->numel() < options_.min_numel) continue;
    Target target;
    target.value = param.value;
    target.mask.assign(static_cast<size_t>(param.value->numel()), 1);
    max_numel = std::max(max_numel, param.value->numel());
    targets_.push_back(std::move(target));
  }
  scratch_.reserve(static_cast<size_t>(max_numel));
}

double Pruner::SparsityForEpoch(int64_t epoch) const {
  if (epoch < options_.start_epoch) return 0.0;
  if (epoch >= options_.end_epoch) return options_.target_sparsity;
  double span = static_cast<double>(options_.end_epoch -
                                    options_.start_epoch + 1);
  double progress =
      static_cast<double>(epoch - options_.start_epoch + 1) / span;
  double keep = 1.0 - progress;
  return options_.target_sparsity * (1.0 - keep * keep * keep);
}

void Pruner::OnEpochBegin(int64_t epoch) {
  double sparsity = SparsityForEpoch(epoch);
  if (sparsity != current_sparsity_) {
    current_sparsity_ = sparsity;
    for (Target& target : targets_) {
      int64_t numel = target.value->numel();
      auto prune_count = static_cast<int64_t>(
          std::floor(sparsity * static_cast<double>(numel)));
      std::fill(target.mask.begin(), target.mask.end(), 1);
      if (prune_count <= 0) continue;
      scratch_.resize(static_cast<size_t>(numel));
      for (int64_t i = 0; i < numel; ++i) {
        scratch_[static_cast<size_t>(i)] = i;
      }
      const float* w = target.value->data();
      // (|w|, index) is a strict total order: the selected set — and
      // with it the mask — is deterministic even among tied magnitudes.
      auto smaller = [w](int64_t a, int64_t b) {
        float fa = std::fabs(w[a]);
        float fb = std::fabs(w[b]);
        if (fa != fb) return fa < fb;
        return a < b;
      };
      std::nth_element(scratch_.begin(),
                       scratch_.begin() + (prune_count - 1),
                       scratch_.end(), smaller);
      for (int64_t i = 0; i < prune_count; ++i) {
        target.mask[static_cast<size_t>(
            scratch_[static_cast<size_t>(i)])] = 0;
      }
    }
  }
  Apply();
}

void Pruner::Apply() {
  for (Target& target : targets_) {
    float* w = target.value->data();
    const uint8_t* mask = target.mask.data();
    int64_t numel = target.value->numel();
    for (int64_t i = 0; i < numel; ++i) {
      if (mask[i] == 0) w[i] = 0.0f;
    }
  }
}

double Pruner::MaskedFraction() const {
  int64_t total = 0;
  int64_t masked = 0;
  for (const Target& target : targets_) {
    total += static_cast<int64_t>(target.mask.size());
    for (uint8_t m : target.mask) masked += (m == 0) ? 1 : 0;
  }
  return total > 0 ? static_cast<double>(masked) /
                         static_cast<double>(total)
                   : 0.0;
}

double Pruner::MeasuredSparsity() const {
  int64_t total = 0;
  int64_t zeros = 0;
  for (const Target& target : targets_) {
    const float* w = target.value->data();
    int64_t numel = target.value->numel();
    total += numel;
    for (int64_t i = 0; i < numel; ++i) {
      if (w[i] == 0.0f) ++zeros;
    }
  }
  return total > 0 ? static_cast<double>(zeros) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace dhgcn
