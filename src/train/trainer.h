#ifndef DHGCN_TRAIN_TRAINER_H_
#define DHGCN_TRAIN_TRAINER_H_

#include <memory>
#include <vector>

#include "data/dataloader.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "train/metrics.h"

namespace dhgcn {

/// Optimizer used by the Trainer. The paper uses SGD with momentum;
/// Adam is provided for convenience.
enum class OptimizerKind {
  kSgd,
  kAdam,
};

/// \brief Training hyper-parameters (paper defaults: SGD momentum 0.9,
/// cross-entropy loss, initial LR 0.1 divided by 10 at the milestones).
struct TrainOptions {
  int64_t epochs = 10;
  float initial_lr = 0.1f;
  std::vector<int64_t> lr_milestones;
  float lr_decay_factor = 10.0f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// Log per-epoch progress at INFO level.
  bool verbose = false;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  /// Label-smoothing epsilon for the cross-entropy loss (0 = off).
  float label_smoothing = 0.0f;
  /// Global gradient-norm clip (0 = off).
  float clip_grad_norm = 0.0f;
};

/// \brief Per-epoch training statistics.
struct EpochStats {
  int64_t epoch = 0;
  double mean_loss = 0.0;
  double train_top1 = 0.0;
  double lr = 0.0;
  double seconds = 0.0;
};

/// \brief Result of TrainWithValidation.
struct ValidatedTraining {
  std::vector<EpochStats> history;
  /// Best validation Top-1 seen, and the epoch it occurred at.
  double best_val_top1 = 0.0;
  int64_t best_epoch = -1;
  /// True when training stopped before the epoch budget.
  bool early_stopped = false;
};

/// \brief Minibatch training loop for any `Layer` classifier.
class Trainer {
 public:
  Trainer(Layer* model, const TrainOptions& options);

  /// Runs one epoch over the loader (reshuffling it).
  EpochStats TrainEpoch(DataLoader& loader, int64_t epoch);

  /// Runs the full schedule.
  std::vector<EpochStats> Train(DataLoader& loader);

  /// Runs the schedule with per-epoch validation; keeps a snapshot of
  /// the best-validation parameters and restores it at the end. Stops
  /// early when validation Top-1 has not improved for `patience`
  /// consecutive epochs (patience <= 0 disables early stopping).
  ValidatedTraining TrainWithValidation(DataLoader& train_loader,
                                        DataLoader& val_loader,
                                        int64_t patience = 0);

  Layer* model() { return model_; }
  const TrainOptions& options() const { return options_; }

 private:
  void ApplyLr(int64_t epoch);
  void OptimizerZeroGrad();
  void OptimizerStep();
  double CurrentLr() const;

  Layer* model_;
  TrainOptions options_;
  SoftmaxCrossEntropy loss_;
  std::unique_ptr<SgdOptimizer> sgd_;
  std::unique_ptr<AdamOptimizer> adam_;
  StepLrSchedule schedule_;
};

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_TRAINER_H_
