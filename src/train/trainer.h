#ifndef DHGCN_TRAIN_TRAINER_H_
#define DHGCN_TRAIN_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "data/dataloader.h"
#include "io/serialization.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/workspace.h"
#include "train/guardrails.h"
#include "train/metrics.h"
#include "train/pruner.h"

namespace dhgcn {

/// Optimizer used by the Trainer. The paper uses SGD with momentum;
/// Adam is provided for convenience.
enum class OptimizerKind {
  kSgd,
  kAdam,
};

/// \brief Training hyper-parameters (paper defaults: SGD momentum 0.9,
/// cross-entropy loss, initial LR 0.1 divided by 10 at the milestones).
struct TrainOptions {
  int64_t epochs = 10;
  float initial_lr = 0.1f;
  std::vector<int64_t> lr_milestones;
  float lr_decay_factor = 10.0f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// Log per-epoch progress at INFO level.
  bool verbose = false;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  /// Label-smoothing epsilon for the cross-entropy loss (0 = off).
  float label_smoothing = 0.0f;
  /// Global gradient-norm clip (0 = off).
  float clip_grad_norm = 0.0f;
  /// Per-step anomaly sentinels and recovery policy (see guardrails.h).
  GuardrailOptions guardrails;
  /// Magnitude pruning schedule with fine-tuning (see pruner.h);
  /// masks are re-applied after every optimizer step.
  PruneOptions prune;
  /// Run training steps through the workspace-planned (arena-backed)
  /// execution path: activations live in a per-trainer arena that is
  /// reset at each step boundary, making steady-state steps
  /// (near-)allocation-free. Outputs are bit-identical to the legacy
  /// allocating path; disable only for debugging.
  bool use_workspace = true;
};

/// \brief Per-epoch training statistics.
struct EpochStats {
  int64_t epoch = 0;
  double mean_loss = 0.0;
  double train_top1 = 0.0;
  double lr = 0.0;
  double seconds = 0.0;
  /// Guardrail activity during this epoch (all zero when disabled).
  GuardrailCounters guardrails;
  /// Owning tensor-buffer allocations (count / bytes) during this epoch,
  /// from Tensor::AllocStats(). Near zero per steady-state step on the
  /// workspace path.
  uint64_t tensor_allocations = 0;
  uint64_t tensor_alloc_bytes = 0;
};

/// \brief Result of TrainWithValidation.
struct ValidatedTraining {
  std::vector<EpochStats> history;
  /// Best validation Top-1 seen, and the epoch it occurred at.
  double best_val_top1 = 0.0;
  int64_t best_epoch = -1;
  /// True when training stopped before the epoch budget.
  bool early_stopped = false;
};

/// \brief Checkpoint/resume configuration for TrainWithResume.
struct ResumeOptions {
  /// Single-file v2 checkpoint path (written atomically).
  std::string checkpoint_path;
  /// Epochs between checkpoint writes; the final epoch always writes.
  int64_t checkpoint_every = 1;
  /// Load checkpoint_path when it exists and continue from it.
  bool resume = true;
  /// Stop this process after running N epochs (0 = run to the schedule's
  /// end). The stop boundary always writes a checkpoint, so a later
  /// TrainWithResume call continues bit-exactly — used to budget wall
  /// time and by the kill/resume tests.
  int64_t stop_after_epochs = 0;
};

/// \brief Result of TrainWithResume.
struct ResumedTraining {
  /// Stats of the epochs executed by *this* call.
  std::vector<EpochStats> history;
  /// Epoch this call started at (> 0 when a checkpoint was loaded).
  int64_t start_epoch = 0;
  /// True when a checkpoint was found and restored.
  bool resumed = false;
  /// Total completed epochs, including ones from previous runs.
  int64_t completed_epochs = 0;
};

/// \brief Minibatch training loop for any `Layer` classifier.
///
/// All entry points return `Result`/`Status`: data corruption (bad
/// labels, poisoned batches) and I/O failures surface as descriptive
/// errors, never crashes. With `TrainOptions::guardrails.enabled`,
/// non-finite losses/logits/gradients and loss spikes are intercepted
/// per step and handled by the configured policy.
class Trainer {
 public:
  Trainer(Layer* model, const TrainOptions& options);

  /// Runs one epoch over the loader (reshuffling it).
  Result<EpochStats> TrainEpoch(DataLoader& loader, int64_t epoch);

  /// Runs the full schedule.
  Result<std::vector<EpochStats>> Train(DataLoader& loader);

  /// Runs the schedule with per-epoch validation; keeps a snapshot of
  /// the best-validation parameters and restores it at the end. Stops
  /// early when validation Top-1 has not improved for `patience`
  /// consecutive epochs (patience <= 0 disables early stopping).
  Result<ValidatedTraining> TrainWithValidation(DataLoader& train_loader,
                                                DataLoader& val_loader,
                                                int64_t patience = 0);

  /// Runs the schedule with periodic atomic checkpoints; when
  /// `resume.checkpoint_path` holds a checkpoint from an earlier
  /// (possibly killed) run, restores parameters, optimizer state
  /// (momentum / Adam moments + step count), and the loader's RNG
  /// stream, then continues — the resumed run's final parameters are
  /// bit-exact with an uninterrupted one.
  Result<ResumedTraining> TrainWithResume(DataLoader& loader,
                                          const ResumeOptions& resume);

  /// Captures the full trainer state for `completed_epochs` finished
  /// epochs (exposed for tools that manage checkpoint files themselves).
  Checkpoint CaptureCheckpoint(int64_t completed_epochs,
                               DataLoader& loader);
  /// Restores optimizer + loader state from a loaded checkpoint (the
  /// parameters themselves are restored by LoadCheckpoint).
  Status RestoreTrainerState(const Checkpoint& checkpoint,
                             DataLoader& loader);

  Layer* model() { return model_; }
  const TrainOptions& options() const { return options_; }
  /// Cumulative guardrail counters across all epochs of this trainer.
  const GuardrailCounters& guardrail_counters() const;
  /// Non-null when TrainOptions::prune.enabled.
  const Pruner* pruner() const { return pruner_.get(); }

 private:
  void ApplyLr(int64_t epoch);
  void OptimizerZeroGrad();
  void OptimizerStep();
  void SetLr(float lr);
  double CurrentLr() const;

  Layer* model_;
  TrainOptions options_;
  SoftmaxCrossEntropy loss_;
  std::unique_ptr<SgdOptimizer> sgd_;
  std::unique_ptr<AdamOptimizer> adam_;
  std::unique_ptr<Guardrails> guardrails_;
  std::unique_ptr<Pruner> pruner_;
  StepLrSchedule schedule_;
  /// Arena for workspace-planned steps; Reset at every step boundary.
  Workspace workspace_;
};

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_TRAINER_H_
