#include "train/table.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace dhgcn {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DHGCN_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  DHGCN_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_line = [&os, &widths] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  auto print_row = [&os, &widths](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << " " << cell << std::string(widths[c] - cell.size(), ' ')
         << " |";
    }
    os << "\n";
  };
  print_line();
  print_row(header_);
  print_line();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_line();
    } else {
      print_row(row);
    }
  }
  print_line();
}

std::string TextTable::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace dhgcn
