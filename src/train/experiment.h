#ifndef DHGCN_TRAIN_EXPERIMENT_H_
#define DHGCN_TRAIN_EXPERIMENT_H_

#include <functional>
#include <string>

#include "base/result.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "nn/layer.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace dhgcn {

/// Benchmark evaluation protocols (Sec. 4.1).
enum class SplitProtocol {
  kCrossSubject,  // NTU X-Sub
  kCrossView,     // NTU X-View
  kCrossSetup,    // NTU-120 X-Set
  kRandom,        // Kinetics-style stratified holdout
};

std::string SplitProtocolName(SplitProtocol protocol);

/// Builds the train/test split for a protocol. `seed` only affects
/// kRandom; the holdout fraction is 25%.
DatasetSplit MakeSplit(const SkeletonDataset& dataset,
                       SplitProtocol protocol, uint64_t seed = 11);

/// Produces a fresh, untrained model; called once per stream so the two
/// streams do not share parameters.
using ModelFactory = std::function<LayerPtr()>;

/// \brief Trains `model` on the split's train half of one input stream
/// and evaluates on the test half.
EvalMetrics TrainAndEvaluateStream(Layer& model,
                                   const SkeletonDataset& dataset,
                                   const DatasetSplit& split,
                                   InputStream stream,
                                   const TrainOptions& train_options,
                                   int64_t batch_size, uint64_t seed);

/// Results of a full two-stream experiment.
struct TwoStreamEval {
  EvalMetrics joint;
  EvalMetrics bone;
  EvalMetrics fused;
};

/// \brief Full two-stream pipeline (Sec. 3.5): trains independent joint
/// and bone models from `factory`, evaluates each stream, and evaluates
/// the score-sum fusion.
TwoStreamEval RunTwoStreamExperiment(const ModelFactory& factory,
                                     const SkeletonDataset& dataset,
                                     const DatasetSplit& split,
                                     const TrainOptions& train_options,
                                     int64_t batch_size, uint64_t seed);

/// Results of the four-stream extension experiment (joint, bone, and
/// their temporal-difference "motion" variants — the multi-stream
/// direction the paper's conclusion points to).
struct FourStreamEval {
  EvalMetrics joint;
  EvalMetrics bone;
  EvalMetrics joint_motion;
  EvalMetrics bone_motion;
  /// Paper's two-stream fusion (joint + bone).
  EvalMetrics fused_two;
  /// All four streams fused.
  EvalMetrics fused_four;
};

/// \brief Trains four independent models (one per stream) and evaluates
/// every stream, the paper's two-stream fusion, and the four-stream
/// fusion.
FourStreamEval RunFourStreamExperiment(const ModelFactory& factory,
                                       const SkeletonDataset& dataset,
                                       const DatasetSplit& split,
                                       const TrainOptions& train_options,
                                       int64_t batch_size, uint64_t seed);

/// \brief Workload scale knobs for the benchmark binaries.
///
/// Controlled by the DHGCN_BENCH_SCALE environment variable:
/// "smoke" (seconds, shape-check only), "default" (a few minutes per
/// table on one core), "full" (longer runs, tighter accuracy numbers).
struct BenchScale {
  int64_t num_classes = 8;
  int64_t samples_per_class = 24;
  int64_t num_frames = 24;
  int64_t epochs = 8;
  int64_t batch_size = 8;
  std::string name = "default";
};

BenchScale GetBenchScale();

/// Standard TrainOptions for a bench at the given scale (paper schedule
/// shape: LR 0.1 stepped down at 60%/80% of the epochs).
TrainOptions BenchTrainOptions(const BenchScale& scale);

}  // namespace dhgcn

#endif  // DHGCN_TRAIN_EXPERIMENT_H_
