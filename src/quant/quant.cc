#include "quant/quant.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm_kernel_int8.h"

namespace dhgcn {

float ActScaleFromAbsMax(float absmax) {
  if (!(absmax > 0.0f) || !std::isfinite(absmax)) return 0.0f;
  return absmax / 127.0f;
}

void QuantizeActivations(const float* x, int64_t n, float scale,
                         uint8_t* q) {
  if (!(scale > 0.0f)) {
    std::fill(q, q + n, static_cast<uint8_t>(kInt8ActZeroPoint));
    return;
  }
  // The rounding loop lives with the int8 GEMM nest: it is the
  // kernel's per-replay operand feeder and carries the same
  // runtime-dispatched AVX2 clone + bit-identical scalar fallback.
  detail::Int8QuantizeRow(x, n, 1.0f / scale, q);
}

void QuantizeWeightsPerChannel(const float* w, int64_t channels,
                               int64_t per_channel, int8_t* q,
                               float* scales) {
  const float qmax = static_cast<float>(detail::kInt8WeightMax);
  for (int64_t c = 0; c < channels; ++c) {
    const float* row = w + c * per_channel;
    int8_t* qrow = q + c * per_channel;
    float absmax = 0.0f;
    for (int64_t i = 0; i < per_channel; ++i) {
      const float a = std::fabs(row[i]);
      if (a > absmax) absmax = a;
    }
    if (!(absmax > 0.0f) || !std::isfinite(absmax)) {
      scales[c] = 0.0f;
      std::fill(qrow, qrow + per_channel, static_cast<int8_t>(0));
      continue;
    }
    const float scale = absmax / qmax;
    scales[c] = scale;
    const float inv = 1.0f / scale;
    for (int64_t i = 0; i < per_channel; ++i) {
      float r = row[i] * inv;
      if (!(r >= -qmax)) r = -qmax;
      if (r > qmax) r = qmax;
      qrow[i] = static_cast<int8_t>(std::lrintf(r));
    }
  }
}

}  // namespace dhgcn
