#include "quant/quantize_pass.h"

#include <cmath>
#include <utility>
#include <vector>

#include "base/check.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "plan/fusion.h"
#include "plan/plan_builder.h"
#include "quant/quant.h"
#include "quant/quant_ops.h"

namespace dhgcn {

namespace {

/// References to `slot` from ops other than `a`/`b` (the pair being
/// rewritten), plus the plan input/output slots — the same legality
/// test the fusion passes use: absorbing the ReLU is only sound when
/// the intermediate value is invisible to everything else.
int64_t CountOtherRefs(const ExecutionPlan& plan, int64_t slot, size_t a,
                       size_t b) {
  int64_t refs = 0;
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    if (i == a || i == b) continue;
    const PlanOp& op = plan.ops[i];
    refs += static_cast<int64_t>(op.in0 == slot) +
            static_cast<int64_t>(op.in1 == slot) +
            static_cast<int64_t>(op.out == slot);
  }
  if (plan.input_slot == slot) ++refs;
  if (plan.output_slot == slot) ++refs;
  return refs;
}

}  // namespace

Status QuantizePlan(ExecutionPlan* plan, const QuantCalibration& calib) {
  DHGCN_CHECK(plan != nullptr);
  DHGCN_CHECK(!plan->resolved);
  std::vector<bool> dead(plan->ops.size(), false);
  int64_t converted = 0;
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    PlanOp& op = plan->ops[i];
    const bool is_linear = op.kind == PlanOpKind::kLinear ||
                           op.kind == PlanOpKind::kLinearFolded;
    const bool is_conv = op.kind == PlanOpKind::kConv2d ||
                         op.kind == PlanOpKind::kConv2dFolded;
    if (!is_linear && !is_conv) continue;

    const auto it = calib.slot_absmax.find(op.in0);
    if (it == calib.slot_absmax.end()) continue;
    const float act_scale = ActScaleFromAbsMax(it->second);
    if (!(act_scale > 0.0f)) continue;  // all-zero or poisoned slot

    const float* weight = nullptr;
    const float* bias = nullptr;
    int64_t n = 0;
    int64_t k = 0;
    std::vector<float> wperm;  // conv taps reordered (ic,ky,kx) -> (ky,kx,ic)
    if (is_linear) {
      DHGCN_CHECK(op.linear != nullptr);
      n = op.linear->out_features();
      k = op.linear->in_features();
      if (op.kind == PlanOpKind::kLinearFolded) {
        weight = op.fold_weight.data();
        bias = op.fold_bias.data();
      } else {
        weight = op.linear->weight().data();
        if (op.linear->has_bias()) bias = op.linear->bias().data();
      }
    } else {
      DHGCN_CHECK(op.conv != nullptr);
      const Conv2dOptions& o = op.conv->options();
      n = op.conv->out_channels();
      k = op.conv->in_channels() * o.kernel_h * o.kernel_w;
      if (op.kind == PlanOpKind::kConv2dFolded) {
        weight = op.fold_weight.data();
        bias = op.fold_bias.data();
      } else {
        weight = op.conv->weight().data();
        if (o.has_bias) bias = op.conv->bias().data();
      }
      // The int8 im2col emits taps channel-innermost (ky, kx, ic) so a
      // width-1 kernel tap is a contiguous transpose strip; reorder the
      // (oc, ic, kh, kw) weight rows to match. Per-channel quantization
      // is permutation-invariant, so scales are unaffected.
      const int64_t kk = o.kernel_h * o.kernel_w;
      if (kk > 1) {
        const int64_t c_in = op.conv->in_channels();
        wperm.resize(static_cast<size_t>(n * k));
        for (int64_t oc = 0; oc < n; ++oc) {
          const float* src = weight + oc * k;
          float* dst = wperm.data() + oc * k;
          for (int64_t ic = 0; ic < c_in; ++ic) {
            for (int64_t t = 0; t < kk; ++t) {
              dst[t * c_in + ic] = src[ic * kk + t];
            }
          }
        }
        weight = wperm.data();
      }
    }

    // Absorb a standalone ReLU reading this op's output, if it is the
    // output's only consumer.
    bool relu = false;
    size_t relu_idx = 0;
    for (size_t j = i + 1; j < plan->ops.size(); ++j) {
      if (dead[j]) continue;
      const PlanOp& cand = plan->ops[j];
      if (cand.kind == PlanOpKind::kRelu && cand.in0 == op.out &&
          CountOtherRefs(*plan, op.out, i, j) == 0) {
        relu = true;
        relu_idx = j;
      }
      break;  // only the textually-next live op can be the sole reader
    }

    Result<std::shared_ptr<const QuantOpData>> quant =
        MakeQuantOpData(weight, bias, n, k, act_scale, relu);
    if (!quant.ok()) continue;  // non-finite parameters: stay fp32

    op.quant = quant.MoveValue();
    if (relu) {
      op.out = plan->ops[relu_idx].out;
      dead[relu_idx] = true;
    }
    op.kind = is_linear ? PlanOpKind::kLinearInt8
                        : PlanOpKind::kConv2dInt8Folded;
    ++converted;
  }
  if (converted == 0) {
    return Status::InvalidArgument(
        "int8: no quantizable ops (empty calibration or unsupported model)");
  }
  std::vector<PlanOp> kept;
  kept.reserve(plan->ops.size());
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(plan->ops[i]));
  }
  plan->ops = std::move(kept);
  return Status::OK();
}

Result<ExecutionPlan> BuildInt8InferencePlan(Layer& model,
                                             const Shape& input_shape,
                                             const QuantCalibration& calib) {
  DHGCN_ASSIGN_OR_RETURN(ExecutionPlan plan,
                         CaptureInferencePlan(model, input_shape));
  FoldBatchNorms(&plan);
  FuseElementwise(&plan);
  DHGCN_RETURN_IF_ERROR(QuantizePlan(&plan, calib));
  ResolveOffsets(&plan);
  return plan;
}

}  // namespace dhgcn
