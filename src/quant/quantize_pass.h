#ifndef DHGCN_QUANT_QUANTIZE_PASS_H_
#define DHGCN_QUANT_QUANTIZE_PASS_H_

#include "base/result.h"
#include "nn/layer.h"
#include "plan/plan.h"
#include "quant/calibration.h"

namespace dhgcn {

/// Freeze-time quantization rewrite over an unresolved (post-fusion)
/// plan. Converts every GEMM-backed op whose input slot has a usable
/// calibrated scale:
///   kLinear / kLinearFolded  -> kLinearInt8
///   kConv2d / kConv2dFolded  -> kConv2dInt8Folded
/// packing the (BN-folded when applicable) weights to int8 panels on
/// the op and absorbing an immediately-consuming standalone kRelu into
/// the dequantize epilogue when the intermediate slot has no other
/// readers. Ops with a missing, zero, or poisoned (non-finite)
/// calibration entry stay fp32, as do all non-GEMM ops (hypergraph
/// mixes, pooling, fused residual tails — see DESIGN.md §15). Fails if
/// nothing was converted. Must run after FoldBatchNorms /
/// FuseElementwise and before ResolveOffsets.
Status QuantizePlan(ExecutionPlan* plan, const QuantCalibration& calib);

/// One-call int8 plan compile: capture, fold BatchNorm, fuse
/// elementwise tails, quantize against `calib`, resolve offsets — the
/// int8 twin of BuildInferencePlan(kFused).
Result<ExecutionPlan> BuildInt8InferencePlan(Layer& model,
                                             const Shape& input_shape,
                                             const QuantCalibration& calib);

}  // namespace dhgcn

#endif  // DHGCN_QUANT_QUANTIZE_PASS_H_
