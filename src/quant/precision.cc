#include "quant/precision.h"

#include <cstdlib>

#include "base/string_util.h"

namespace dhgcn {

Result<Precision> ParsePrecision(const std::string& text) {
  if (text == "fp32") return Precision::kFp32;
  if (text == "int8") return Precision::kInt8;
  return Status::InvalidArgument(
      StrCat("unknown precision '", text, "' (fp32|int8)"));
}

const char* PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
  }
  return "?";
}

Result<Precision> ResolvePrecision(const std::string& flag_text) {
  if (!flag_text.empty()) return ParsePrecision(flag_text);
  // Read once at first use; flag parsing happens on the main thread
  // before any compute, the same contract as DHGCN_SPARSE.
  static const std::string* env_value = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("DHGCN_PRECISION");
    // lint: allow-naked-new — process-lifetime cached env string.
    return new std::string(env != nullptr ? env : "");
  }();
  if (env_value->empty()) return Precision::kFp32;
  return ParsePrecision(*env_value);
}

}  // namespace dhgcn
