#ifndef DHGCN_QUANT_PRECISION_H_
#define DHGCN_QUANT_PRECISION_H_

#include <string>

#include "base/result.h"

namespace dhgcn {

/// Inference numeric precision, selected via `--precision fp32|int8` or
/// the `DHGCN_PRECISION` environment variable:
///  - kFp32: the default float32 kernels.
///  - kInt8: post-training-quantized GEMM ops inside a fused execution
///           plan (per-tensor u8 activations, per-channel s8 weights,
///           dequantize-fused epilogues — see DESIGN.md §15). Training
///           and calibration always run fp32.
enum class Precision { kFp32, kInt8 };

Result<Precision> ParsePrecision(const std::string& text);
const char* PrecisionName(Precision precision);

/// Resolves the effective precision: a non-empty `flag_text` wins,
/// otherwise `DHGCN_PRECISION` (read once at first use, the
/// SparseRouter env convention), otherwise fp32.
Result<Precision> ResolvePrecision(const std::string& flag_text);

}  // namespace dhgcn

#endif  // DHGCN_QUANT_PRECISION_H_
