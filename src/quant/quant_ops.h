#ifndef DHGCN_QUANT_QUANT_OPS_H_
#define DHGCN_QUANT_QUANT_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/result.h"
#include "plan/plan.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// Frozen quantization payload of one int8 plan op, built once by
/// QuantizePlan and shared by every runner replaying the plan. The
/// weight matrix lives only in packed-panel s8 form; everything the
/// dequantize epilogue needs is pre-merged per output channel:
///
///   out[., c] = relu?((acc[., c] - w_comp[c]) * scale[c] + bias[c])
///
/// where acc carries raw u8 x s8 products, w_comp[c] = 128 * sum_k
/// w_q[c, k] undoes the activation zero point, scale[c] = act_scale *
/// w_scale[c], and bias is the fp32 (BN-folded when applicable) bias.
struct QuantOpData {
  int64_t k = 0;      // reduction depth (in_features / C*kh*kw)
  int64_t k_pad = 0;  // k rounded up to kInt8KStep
  int64_t n = 0;      // output channels
  std::vector<int8_t> packed_w;  // Int8PackB panels of W^T (k, n)
  std::vector<int32_t> w_comp;   // 128 * per-column weight sums, size n
  std::vector<float> scale;      // act_scale * w_scale[c], size n
  std::vector<float> bias;       // fp32 epilogue bias, size n
  float act_scale = 0.0f;        // input quantization scale
  bool relu = false;             // clamp the epilogue at zero
};

/// Quantizes fp32 weights (n rows of k values, i.e. W or the BN-folded
/// fold_weight flattened per output channel) + bias into a frozen
/// QuantOpData. `act_scale` must be > 0 (from calibration). Fails if a
/// weight or bias value is non-finite. Conv rows must arrive with taps
/// in (ky, kx, ic) order — the layout RunConv2dInt8's im2col emits —
/// which QuantizePlan produces by permuting the native (ic, kh, kw)
/// flattening; per-channel scales are permutation-invariant.
Result<std::shared_ptr<const QuantOpData>> MakeQuantOpData(
    const float* weight, const float* bias, int64_t n, int64_t k,
    float act_scale, bool relu);

/// Pre-sized scratch for one int8 op replay, owned by the PlanRunner
/// (std::vector storage — invisible to the Tensor AllocStats budget and
/// allocated once at runner construction, never on the replay path).
/// Byte buffers are prefilled with 128 (the quantized 0.0f) so k-pad
/// tails and im2col pad taps are correct without ever being rewritten.
struct Int8Staging {
  std::vector<uint8_t> qa;    // kLinearInt8: quantized input (m, k_pad)
  std::vector<uint8_t> qin;   // kConv2dInt8Folded: quantized NCHW input
  std::vector<uint8_t> colq;  // kConv2dInt8Folded: im2col^T (ohw, k_pad)
  std::vector<int32_t> acc;   // int32 GEMM output (rows, n)
};

/// Sizes (and 128-prefills) the staging buffers for `op` given the
/// shape of its input slot. No-op for non-int8 ops.
void SizeInt8Staging(const PlanOp& op, const Shape& in_shape,
                     Int8Staging* st);

/// Replays a kLinearInt8 op: quantize rows of 2-D `in`, int8 GEMM
/// against the packed panels, dequantize+bias(+relu) into 2-D `out`.
void RunLinearInt8(const PlanOp& op, Int8Staging* st, const Tensor& in,
                   Tensor* out);

/// Replays a kConv2dInt8Folded op: quantize NCHW `in` once, per batch
/// build the transposed u8 im2col (pad taps = 128, the quantized zero),
/// int8 GEMM to (ohw, out_c) int32, then dequantize+bias(+relu) while
/// transposing into NCHW `out`.
void RunConv2dInt8(const PlanOp& op, Int8Staging* st, const Tensor& in,
                   Tensor* out);

}  // namespace dhgcn

#endif  // DHGCN_QUANT_QUANT_OPS_H_
