#include "quant/calibration.h"

#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "base/check.h"
#include "plan/plan_builder.h"
#include "plan/plan_runner.h"

namespace dhgcn {

Result<QuantCalibration> CalibrateOnInputs(
    Layer& model, const std::vector<Tensor>& inputs) {
  DHGCN_CHECK(!model.training());
  if (inputs.empty()) {
    return Status::InvalidArgument("int8 calibration: no usable batches");
  }
  QuantCalibration calib;
  const float inf = std::numeric_limits<float>::infinity();
  // Observe on the *fused* fp32 plan: QuantizePlan rewrites ops after
  // FoldBatchNorms/FuseElementwise, so the slot ids it reads are the
  // fused plan's — calibrating on the same pass pipeline keys the map
  // identically. Fusion only dead-marks slots; it never renumbers them.
  DHGCN_ASSIGN_OR_RETURN(
      ExecutionPlan plan,
      BuildInferencePlan(model, inputs[0].shape(), PlanMode::kFused));
  PlanRunner runner(std::move(plan));
  runner.SetObserver([&calib, inf](int64_t slot, const Tensor& value) {
    float& cur = calib.slot_absmax[slot];  // default-inserts 0
    if (cur == inf) return;
    const float* p = value.data();
    const int64_t n = value.numel();
    float absmax = cur;
    for (int64_t i = 0; i < n; ++i) {
      const float a = std::fabs(p[i]);
      if (!(a <= inf)) {  // NaN or infinity: poison the slot
        cur = inf;
        return;
      }
      if (a > absmax) absmax = a;
    }
    cur = absmax;
  });
  for (const Tensor& x : inputs) {
    DHGCN_CHECK(ShapesEqual(x.shape(), inputs[0].shape()));
    runner.Run(x);
  }
  return calib;
}

Result<QuantCalibration> CalibrateOnBatches(Layer& model,
                                            DataLoader& loader,
                                            int64_t max_batches) {
  DHGCN_CHECK_GT(max_batches, 0);
  // Collect up to max_batches batches of the first-seen shape (a plan
  // has one fixed shape; the ragged tail batch is skipped).
  std::vector<Tensor> inputs;
  const int64_t num_batches = loader.NumBatches();
  for (int64_t b = 0;
       b < num_batches && static_cast<int64_t>(inputs.size()) < max_batches;
       ++b) {
    Batch batch = loader.GetBatch(b);
    if (!inputs.empty() && !ShapesEqual(batch.x.shape(), inputs[0].shape())) {
      continue;
    }
    inputs.push_back(std::move(batch.x));
  }
  return CalibrateOnInputs(model, inputs);
}

}  // namespace dhgcn
