#ifndef DHGCN_QUANT_QUANT_H_
#define DHGCN_QUANT_QUANT_H_

#include <cstdint>

namespace dhgcn {

// ---------------------------------------------------------------------------
// Post-training quantization helpers (DESIGN.md §15).
//
// Activations: per-tensor affine u8 with a fixed zero point of 128 and
// scale s = absmax / 127 from a calibration pass, so q = round(x/s) +
// 128 lands in [1, 255] and 0.0f quantizes exactly to 128 (padding in
// the im2col path reuses that byte).
//
// Weights: per-output-channel symmetric s8 restricted to
// [-kInt8WeightMax, kInt8WeightMax] (= ±32, scale s_c = absmax_c / 32).
// Spending 6 significand bits instead of 7 costs ~0.1% top-1 on the
// synthetic suite but is what lets the AVX2 kernel chain vpmaddubsw →
// vpaddsw → vpmaddwd with provably saturation-free int16 intermediates
// — the source of both the ≥2x speedup and the exact scalar/SIMD
// equivalence (see gemm_kernel_int8.h).
//
// Rounding is round-to-nearest-even everywhere (lrintf under the
// default rounding mode), clamped saturating at the range edges;
// non-finite inputs clamp like infinities of their sign (NaN → -127).
// ---------------------------------------------------------------------------

/// Activation zero point: u8 128 encodes 0.0f.
inline constexpr int32_t kInt8ActZeroPoint = 128;

/// Per-tensor activation scale for a calibrated |x| maximum. Returns
/// 0 for absmax <= 0 (an all-zero tensor; QuantizeActivations then
/// emits all-128, the exact encoding).
float ActScaleFromAbsMax(float absmax);

/// Quantizes `n` floats to u8 with zero point 128:
/// q = clamp(round(x / scale), -127, 127) + 128. NaN clamps low.
/// `scale <= 0` writes all-128 (the encoding of an all-zero tensor).
void QuantizeActivations(const float* x, int64_t n, float scale,
                         uint8_t* q);

/// Per-channel symmetric weight quantization of row-major `w`
/// (`channels` rows of `per_channel` values):
/// scale[c] = absmax_c / kInt8WeightMax, q = clamp(round(w / scale[c]),
/// ±kInt8WeightMax). An all-zero (or non-finite) channel gets scale 0
/// and all-zero codes, which dequantizes exactly to zero.
void QuantizeWeightsPerChannel(const float* w, int64_t channels,
                               int64_t per_channel, int8_t* q,
                               float* scales);

}  // namespace dhgcn

#endif  // DHGCN_QUANT_QUANT_H_
