#include "quant/quant_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/check.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "nn/conv2d.h"
#include "quant/quant.h"
#include "tensor/gemm_kernel.h"
#include "tensor/gemm_kernel_int8.h"

namespace dhgcn {

namespace {

constexpr uint8_t kZeroByte = static_cast<uint8_t>(kInt8ActZeroPoint);

/// Transposed u8 im2col of one quantized NCHW image: row p of `colq`
/// (one output pixel, k_pad bytes wide) holds the C*kh*kw input taps
/// feeding that pixel, out-of-bounds taps as 128 — the quantized 0.0f,
/// NOT byte 0: pad taps multiply real weights, so they must encode the
/// float zero the fp32 im2col uses. The [ckk, k_pad) tail is prefilled
/// 128 at staging setup and never rewritten (its packed weights are
/// zero, so its value is arithmetically irrelevant anyway).
///
/// Taps are ordered (ky, kx, ic) — NOT the weight tensor's native
/// (ic, ky, kx) — and QuantizePlan permutes the weight rows to match.
/// Channel-innermost makes one (ky, oy) pair of a width-1 kernel a
/// plain (C x ow) byte transpose of a contiguous input strip: every
/// conv in this model family is Kx1 temporal or 1x1 pointwise, so the
/// fast path below turns the whole im2col into SIMD transpose tiles
/// (or a C-byte memset of 128 for rows the vertical padding hangs off
/// the input).
void Im2ColU8(const uint8_t* qx, int64_t h, int64_t w,
              const Conv2dOptions& o, int64_t in_channels, int64_t oh,
              int64_t ow, int64_t k_pad, uint8_t* colq) {
  const int64_t plane = h * w;
  if (o.kernel_w == 1 && o.stride_w == 1 && o.pad_w == 0 && ow == w) {
    ThreadPool::Get().ParallelFor(
        0, oh, GrainForFlops(in_channels * o.kernel_h * ow),
        [&](int64_t y0, int64_t y1) {
          for (int64_t oy = y0; oy < y1; ++oy) {
            uint8_t* rows0 = colq + oy * ow * k_pad;
            for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
              const int64_t iy = oy * o.stride_h - o.pad_h + ky * o.dilation_h;
              uint8_t* dst = rows0 + ky * in_channels;
              if (iy < 0 || iy >= h) {
                for (int64_t p = 0; p < ow; ++p) {
                  std::memset(dst + p * k_pad, kZeroByte,
                              static_cast<size_t>(in_channels));
                }
                continue;
              }
              detail::Int8TransposeU8(qx + iy * w, plane, in_channels, ow,
                                      dst, k_pad);
            }
          }
        });
    return;
  }
  ThreadPool::Get().ParallelFor(
      0, oh * ow, GrainForFlops(in_channels * o.kernel_h * o.kernel_w),
      [&](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          const int64_t oy = p / ow;
          const int64_t ox = p % ow;
          uint8_t* row = colq + p * k_pad;
          for (int64_t ky = 0; ky < o.kernel_h; ++ky) {
            const int64_t iy = oy * o.stride_h - o.pad_h + ky * o.dilation_h;
            const bool y_in = iy >= 0 && iy < h;
            for (int64_t kx = 0; kx < o.kernel_w; ++kx) {
              const int64_t ix = ox * o.stride_w - o.pad_w + kx * o.dilation_w;
              uint8_t* tap = row + (ky * o.kernel_w + kx) * in_channels;
              if (y_in && ix >= 0 && ix < w) {
                const uint8_t* src = qx + iy * w + ix;
                for (int64_t ic = 0; ic < in_channels; ++ic) {
                  tap[ic] = src[ic * plane];
                }
              } else {
                std::memset(tap, kZeroByte, static_cast<size_t>(in_channels));
              }
            }
          }
        }
      });
}

/// Int8 GEMM over kInt8MR-aligned row blocks of A — the same
/// flop-targeted chunking as the fp32 conv/linear paths. Exact integer
/// accumulation makes any split bit-identical, but aligning on tile
/// boundaries keeps full register tiles hot.
void Int8GemmRows(const uint8_t* a, int64_t m, int64_t k_pad,
                  const int8_t* bp, int64_t n, int32_t* acc) {
  const int64_t row_blocks = (m + detail::kInt8MR - 1) / detail::kInt8MR;
  ThreadPool::Get().ParallelFor(
      0, row_blocks,
      GrainForFlopsTarget(detail::kInt8MR * k_pad * n,
                          detail::kGemmChunkFlops),
      [&](int64_t t0, int64_t t1) {
        const int64_t r0 = t0 * detail::kInt8MR;
        const int64_t r1 = std::min(m, t1 * detail::kInt8MR);
        detail::Int8GemmPackedB(a + r0 * k_pad, k_pad, bp, acc + r0 * n,
                                r1 - r0, k_pad, n);
      });
}

}  // namespace

Result<std::shared_ptr<const QuantOpData>> MakeQuantOpData(
    const float* weight, const float* bias, int64_t n, int64_t k,
    float act_scale, bool relu) {
  DHGCN_CHECK_GT(n, 0);
  DHGCN_CHECK_GT(k, 0);
  if (!(act_scale > 0.0f) || !std::isfinite(act_scale)) {
    return Status::InvalidArgument(
        StrCat("int8 freeze: invalid activation scale ", act_scale));
  }
  for (int64_t i = 0; i < n * k; ++i) {
    if (!std::isfinite(weight[i])) {
      return Status::InvalidArgument("int8 freeze: non-finite weight");
    }
  }
  auto data = std::make_shared<QuantOpData>();
  data->k = k;
  data->k_pad = detail::Int8KPad(k);
  data->n = n;
  data->act_scale = act_scale;
  data->relu = relu;

  // Per-channel s8 codes of W (n, k), then transpose to (k, n) for the
  // column-panel packer.
  std::vector<int8_t> qw(static_cast<size_t>(n * k));
  std::vector<float> wscale(static_cast<size_t>(n));
  QuantizeWeightsPerChannel(weight, n, k, qw.data(), wscale.data());
  std::vector<int8_t> wt(static_cast<size_t>(k * n));
  for (int64_t c = 0; c < n; ++c) {
    for (int64_t i = 0; i < k; ++i) {
      wt[static_cast<size_t>(i * n + c)] = qw[static_cast<size_t>(c * k + i)];
    }
  }
  data->packed_w.resize(static_cast<size_t>(detail::Int8PackedBCount(k, n)));
  detail::Int8PackB(wt.data(), k, n, data->packed_w.data());

  std::vector<int32_t> sums(static_cast<size_t>(n));
  detail::Int8PackColumnSums(wt.data(), k, n, sums.data());
  data->w_comp.resize(static_cast<size_t>(n));
  data->scale.resize(static_cast<size_t>(n));
  data->bias.resize(static_cast<size_t>(n));
  for (int64_t c = 0; c < n; ++c) {
    data->w_comp[static_cast<size_t>(c)] =
        kInt8ActZeroPoint * sums[static_cast<size_t>(c)];
    data->scale[static_cast<size_t>(c)] =
        act_scale * wscale[static_cast<size_t>(c)];
    const float b = bias != nullptr ? bias[c] : 0.0f;
    if (!std::isfinite(b)) {
      return Status::InvalidArgument("int8 freeze: non-finite bias");
    }
    data->bias[static_cast<size_t>(c)] = b;
  }
  return std::shared_ptr<const QuantOpData>(std::move(data));
}

void SizeInt8Staging(const PlanOp& op, const Shape& in_shape,
                     Int8Staging* st) {
  if (op.quant == nullptr) return;
  const QuantOpData& q = *op.quant;
  if (op.kind == PlanOpKind::kLinearInt8) {
    DHGCN_CHECK_EQ(static_cast<int64_t>(in_shape.size()), 2);
    const int64_t m = in_shape[0];
    st->qa.assign(static_cast<size_t>(m * q.k_pad), kZeroByte);
    st->acc.assign(static_cast<size_t>(m * q.n), 0);
    return;
  }
  if (op.kind == PlanOpKind::kConv2dInt8Folded) {
    DHGCN_CHECK_EQ(static_cast<int64_t>(in_shape.size()), 4);
    DHGCN_CHECK(op.conv != nullptr);
    const Conv2dOptions& o = op.conv->options();
    const int64_t oh = Conv2d::OutputDim(in_shape[2], o.kernel_h, o.stride_h,
                                         o.pad_h, o.dilation_h);
    const int64_t ow = Conv2d::OutputDim(in_shape[3], o.kernel_w, o.stride_w,
                                         o.pad_w, o.dilation_w);
    st->qin.assign(static_cast<size_t>(ShapeNumel(in_shape)), kZeroByte);
    st->colq.assign(static_cast<size_t>(oh * ow * q.k_pad), kZeroByte);
    st->acc.assign(static_cast<size_t>(oh * ow * q.n), 0);
  }
}

void RunLinearInt8(const PlanOp& op, Int8Staging* st, const Tensor& in,
                   Tensor* out) {
  const QuantOpData& q = *op.quant;
  const int64_t m = in.dim(0);
  DHGCN_CHECK_EQ(in.dim(1), q.k);
  DHGCN_CHECK_EQ(out->dim(0), m);
  DHGCN_CHECK_EQ(out->dim(1), q.n);
  const float* px = in.data();
  uint8_t* qa = st->qa.data();
  for (int64_t r = 0; r < m; ++r) {
    QuantizeActivations(px + r * q.k, q.k, q.act_scale, qa + r * q.k_pad);
  }
  int32_t* acc = st->acc.data();
  Int8GemmRows(qa, m, q.k_pad, q.packed_w.data(), q.n, acc);
  float* po = out->data();
  for (int64_t r = 0; r < m; ++r) {
    const int32_t* arow = acc + r * q.n;
    float* orow = po + r * q.n;
    for (int64_t c = 0; c < q.n; ++c) {
      float v = static_cast<float>(arow[c] - q.w_comp[c]) * q.scale[c] +
                q.bias[c];
      if (q.relu && v < 0.0f) v = 0.0f;
      orow[c] = v;
    }
  }
}

void RunConv2dInt8(const PlanOp& op, Int8Staging* st, const Tensor& in,
                   Tensor* out) {
  const QuantOpData& q = *op.quant;
  DHGCN_CHECK(op.conv != nullptr);
  const Conv2dOptions& o = op.conv->options();
  const int64_t batch = in.dim(0);
  const int64_t c_in = in.dim(1);
  const int64_t h = in.dim(2);
  const int64_t w = in.dim(3);
  const int64_t oh = out->dim(2);
  const int64_t ow = out->dim(3);
  const int64_t ohw = oh * ow;
  DHGCN_CHECK_EQ(q.k, c_in * o.kernel_h * o.kernel_w);
  DHGCN_CHECK_EQ(out->dim(1), q.n);

  // One whole-batch quantization pass; every im2col tap then reads
  // bytes instead of re-quantizing floats kh*kw times.
  QuantizeActivations(in.data(), in.numel(), q.act_scale, st->qin.data());

  const int8_t* bp = q.packed_w.data();
  uint8_t* colq = st->colq.data();
  int32_t* acc = st->acc.data();
  float* po = out->data();
  const bool relu = q.relu;
  for (int64_t b = 0; b < batch; ++b) {
    Im2ColU8(st->qin.data() + b * c_in * h * w, h, w, o, c_in, oh, ow,
             q.k_pad, colq);
    Int8GemmRows(colq, ohw, q.k_pad, bp, q.n, acc);
    // Dequantize epilogue, transposing (ohw, n) int32 back to NCHW.
    float* pob = po + b * q.n * ohw;
    ThreadPool::Get().ParallelFor(
        0, q.n, GrainForFlops(ohw), [&](int64_t c0, int64_t c1) {
          for (int64_t oc = c0; oc < c1; ++oc) {
            const float s = q.scale[oc];
            const float fb = q.bias[oc];
            const int32_t comp = q.w_comp[oc];
            float* orow = pob + oc * ohw;
            for (int64_t p = 0; p < ohw; ++p) {
              float v = static_cast<float>(acc[p * q.n + oc] - comp) * s + fb;
              if (relu && v < 0.0f) v = 0.0f;
              orow[p] = v;
            }
          }
        });
  }
}

}  // namespace dhgcn
