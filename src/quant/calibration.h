#ifndef DHGCN_QUANT_CALIBRATION_H_
#define DHGCN_QUANT_CALIBRATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "data/dataloader.h"
#include "nn/layer.h"

namespace dhgcn {

/// Per-tensor activation statistics from a calibration pass: the |x|
/// maximum observed at every plan slot (keyed by slot id). Slot ids are
/// assigned in capture order, which depends only on the model topology
/// — not on the batch size — so a calibration taken at one batch size
/// transfers to plans captured at another. A non-finite observation
/// poisons its slot to +infinity, which makes QuantizePlan leave the
/// consuming op in fp32.
struct QuantCalibration {
  std::unordered_map<int64_t, float> slot_absmax;
};

/// Runs up to `max_batches` batches of `loader` through a fused fp32
/// plan of `model`, recording every slot's |x| maximum. The model must
/// already be in eval mode (this is called from inside Evaluate /
/// FrozenModel::Load, which own the mode toggle — calibration never
/// touches it). Batches whose input shape differs from the first
/// batch's are skipped (a plan has one fixed shape). Fails if the model
/// cannot be captured or no batch was usable.
Result<QuantCalibration> CalibrateOnBatches(Layer& model,
                                            DataLoader& loader,
                                            int64_t max_batches);

/// Calibrates on caller-provided input batches (all the same shape, at
/// least one; same eval-mode requirement). Serving uses this with
/// deterministic synthetic clips when no calibration data accompanies a
/// checkpoint.
Result<QuantCalibration> CalibrateOnInputs(Layer& model,
                                           const std::vector<Tensor>& inputs);

}  // namespace dhgcn

#endif  // DHGCN_QUANT_CALIBRATION_H_
