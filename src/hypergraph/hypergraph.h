#ifndef DHGCN_HYPERGRAPH_HYPERGRAPH_H_
#define DHGCN_HYPERGRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief A hyperedge: the set of vertices it connects.
using Hyperedge = std::vector<int64_t>;

/// \brief Hypergraph G_h = {V_h, E_h, W_h} (Sec. 3.2): hyperedges connect
/// arbitrary vertex subsets; every hyperedge carries a positive weight
/// (initialized to 1 as in the paper).
class Hypergraph {
 public:
  /// Builds with unit edge weights. Vertex indices are CHECKed.
  Hypergraph(int64_t num_vertices, std::vector<Hyperedge> edges);
  Hypergraph(int64_t num_vertices, std::vector<Hyperedge> edges,
             std::vector<float> edge_weights);

  /// Validating factory for externally supplied topology.
  static Result<Hypergraph> Make(int64_t num_vertices,
                                 std::vector<Hyperedge> edges,
                                 std::vector<float> edge_weights = {});

  int64_t num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<Hyperedge>& edges() const { return edges_; }
  const std::vector<float>& edge_weights() const { return edge_weights_; }

  /// Incidence matrix H (V, E) with h(v,e)=1 iff v in e (Eq. 2).
  Tensor IncidenceMatrix() const;

  /// Vertex degrees d(v) = sum_e w(e) h(v,e) (Eq. 3).
  std::vector<float> VertexDegrees() const;

  /// Hyperedge degrees delta(e) = |e| (Eq. 4).
  std::vector<int64_t> EdgeDegrees() const;

  /// True when every vertex belongs to at least one hyperedge.
  bool CoversAllVertices() const;

  /// Union of this topology with another over the same vertex set.
  Hypergraph UnionWith(const Hypergraph& other) const;

  std::string ToString() const;

 private:
  int64_t num_vertices_;
  std::vector<Hyperedge> edges_;
  std::vector<float> edge_weights_;
};

}  // namespace dhgcn

#endif  // DHGCN_HYPERGRAPH_HYPERGRAPH_H_
