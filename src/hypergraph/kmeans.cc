#include "hypergraph/kmeans.h"

#include <algorithm>
#include <limits>

#include "base/check.h"
#include "base/thread_pool.h"
#include "hypergraph/knn.h"
#include "tensor/workspace.h"

namespace dhgcn {

namespace {

// Medoid of a cluster: the member with minimal mean distance to the other
// members (ties -> lowest vertex index). Singleton clusters keep their
// only member.
int64_t ClusterMedoid(const Tensor& dist, const Hyperedge& members) {
  DHGCN_CHECK(!members.empty());
  int64_t v = dist.dim(0);
  int64_t best = members[0];
  double best_mean = std::numeric_limits<double>::infinity();
  for (int64_t candidate : members) {
    double total = 0.0;
    for (int64_t other : members) {
      total += dist.flat(candidate * v + other);
    }
    double mean = total / static_cast<double>(members.size());
    if (mean < best_mean ||
        (mean == best_mean && candidate < best)) {
      best_mean = mean;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

KMeansResult KMeansClusters(const Tensor& features, int64_t k, Rng& rng,
                            int64_t max_iters, Workspace* ws) {
  DHGCN_CHECK_EQ(features.ndim(), 2);
  int64_t v = features.dim(0);
  DHGCN_CHECK(k >= 1 && k <= v);
  DHGCN_CHECK_GT(max_iters, 0);

  Tensor dist = PairwiseDistances(features, ws);
  KMeansResult result;
  result.medoids = rng.SampleWithoutReplacement(v, k);
  std::sort(result.medoids.begin(), result.medoids.end());

  const float* pdist = dist.data();
  std::vector<int64_t> assignment(static_cast<size_t>(v));
  for (int64_t iter = 0; iter < max_iters; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: each vertex joins its nearest medoid
    // (ties -> lowest cluster index). The per-node argmin fills a slot in
    // `assignment` (node-parallel, disjoint writes); the gather into
    // clusters stays serial in ascending node order so member lists are
    // identical for every thread count.
    const int64_t* pmedoids = result.medoids.data();
    int64_t* passign = assignment.data();
    ThreadPool::Get().ParallelFor(
        0, v, GrainForFlops(k), [&](int64_t n0, int64_t n1) {
          for (int64_t node = n0; node < n1; ++node) {
            int64_t best_cluster = 0;
            float best_dist = pdist[node * v + pmedoids[0]];
            for (int64_t c = 1; c < k; ++c) {
              float d = pdist[node * v + pmedoids[c]];
              if (d < best_dist) {
                best_dist = d;
                best_cluster = c;
              }
            }
            passign[node] = best_cluster;
          }
        });
    std::vector<Hyperedge> clusters(static_cast<size_t>(k));
    for (int64_t node = 0; node < v; ++node) {
      clusters[static_cast<size_t>(passign[node])].push_back(node);
    }
    // Reseed empty clusters with the vertex farthest from its own medoid,
    // stolen from a cluster with more than one member.
    for (size_t c = 0; c < clusters.size(); ++c) {
      if (!clusters[c].empty()) continue;
      int64_t steal_cluster = -1;
      int64_t steal_node = -1;
      float steal_dist = -1.0f;
      for (size_t c2 = 0; c2 < clusters.size(); ++c2) {
        if (clusters[c2].size() <= 1) continue;
        for (int64_t node : clusters[c2]) {
          float d = dist.flat(node * v + result.medoids[c2]);
          if (d > steal_dist) {
            steal_dist = d;
            steal_node = node;
            steal_cluster = static_cast<int64_t>(c2);
          }
        }
      }
      DHGCN_CHECK_GE(steal_node, 0);  // k <= v guarantees a donor exists
      auto& donor = clusters[static_cast<size_t>(steal_cluster)];
      donor.erase(std::find(donor.begin(), donor.end(), steal_node));
      clusters[c].push_back(steal_node);
    }
    // Update step: recompute medoids.
    std::vector<int64_t> new_medoids(static_cast<size_t>(k));
    for (size_t c = 0; c < clusters.size(); ++c) {
      new_medoids[c] = ClusterMedoid(dist, clusters[c]);
    }
    result.clusters = std::move(clusters);
    if (new_medoids == result.medoids) {
      result.converged = true;
      break;
    }
    result.medoids = std::move(new_medoids);
  }
  return result;
}

std::vector<Hyperedge> KMeansHyperedges(const Tensor& features, int64_t k,
                                        Rng& rng, int64_t max_iters,
                                        Workspace* ws) {
  return KMeansClusters(features, k, rng, max_iters, ws).clusters;
}

}  // namespace dhgcn
