#include "hypergraph/hypergraph.h"

#include <sstream>

#include "base/check.h"
#include "base/string_util.h"

namespace dhgcn {

Hypergraph::Hypergraph(int64_t num_vertices, std::vector<Hyperedge> edges)
    : Hypergraph(num_vertices, std::move(edges), {}) {}

Hypergraph::Hypergraph(int64_t num_vertices, std::vector<Hyperedge> edges,
                       std::vector<float> edge_weights)
    : num_vertices_(num_vertices),
      edges_(std::move(edges)),
      edge_weights_(std::move(edge_weights)) {
  DHGCN_CHECK_GT(num_vertices_, 0);
  if (edge_weights_.empty()) {
    edge_weights_.assign(edges_.size(), 1.0f);
  }
  DHGCN_CHECK_EQ(edges_.size(), edge_weights_.size());
  for (const Hyperedge& e : edges_) {
    DHGCN_CHECK(!e.empty());
    for (int64_t v : e) {
      DHGCN_CHECK(v >= 0 && v < num_vertices_);
    }
  }
  for (float w : edge_weights_) DHGCN_CHECK_GT(w, 0.0f);
}

Result<Hypergraph> Hypergraph::Make(int64_t num_vertices,
                                    std::vector<Hyperedge> edges,
                                    std::vector<float> edge_weights) {
  if (num_vertices <= 0) {
    return Status::InvalidArgument(
        StrCat("num_vertices must be positive, got ", num_vertices));
  }
  if (!edge_weights.empty() && edge_weights.size() != edges.size()) {
    return Status::InvalidArgument(
        StrCat("edge_weights size ", edge_weights.size(),
               " != number of edges ", edges.size()));
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].empty()) {
      return Status::InvalidArgument(StrCat("hyperedge ", i, " is empty"));
    }
    for (int64_t v : edges[i]) {
      if (v < 0 || v >= num_vertices) {
        return Status::InvalidArgument(
            StrCat("hyperedge ", i, " references vertex ", v,
                   " outside [0, ", num_vertices, ")"));
      }
    }
  }
  for (float w : edge_weights) {
    if (w <= 0.0f) {
      return Status::InvalidArgument("edge weights must be positive");
    }
  }
  return Hypergraph(num_vertices, std::move(edges), std::move(edge_weights));
}

Tensor Hypergraph::IncidenceMatrix() const {
  Tensor h({num_vertices_, num_edges()});
  for (int64_t e = 0; e < num_edges(); ++e) {
    for (int64_t v : edges_[static_cast<size_t>(e)]) {
      h.at(v, e) = 1.0f;
    }
  }
  return h;
}

std::vector<float> Hypergraph::VertexDegrees() const {
  std::vector<float> deg(static_cast<size_t>(num_vertices_), 0.0f);
  for (size_t e = 0; e < edges_.size(); ++e) {
    for (int64_t v : edges_[e]) {
      deg[static_cast<size_t>(v)] += edge_weights_[e];
    }
  }
  return deg;
}

std::vector<int64_t> Hypergraph::EdgeDegrees() const {
  std::vector<int64_t> deg;
  deg.reserve(edges_.size());
  for (const Hyperedge& e : edges_) {
    deg.push_back(static_cast<int64_t>(e.size()));
  }
  return deg;
}

bool Hypergraph::CoversAllVertices() const {
  std::vector<bool> seen(static_cast<size_t>(num_vertices_), false);
  for (const Hyperedge& e : edges_) {
    for (int64_t v : e) seen[static_cast<size_t>(v)] = true;
  }
  for (bool s : seen) {
    if (!s) return false;
  }
  return true;
}

Hypergraph Hypergraph::UnionWith(const Hypergraph& other) const {
  DHGCN_CHECK_EQ(num_vertices_, other.num_vertices_);
  std::vector<Hyperedge> edges = edges_;
  edges.insert(edges.end(), other.edges_.begin(), other.edges_.end());
  std::vector<float> weights = edge_weights_;
  weights.insert(weights.end(), other.edge_weights_.begin(),
                 other.edge_weights_.end());
  return Hypergraph(num_vertices_, std::move(edges), std::move(weights));
}

std::string Hypergraph::ToString() const {
  std::ostringstream oss;
  oss << "Hypergraph(V=" << num_vertices_ << ", E=" << num_edges() << ") {";
  for (size_t e = 0; e < edges_.size(); ++e) {
    oss << "\n  e" << e << " (w=" << edge_weights_[e]
        << "): {" << StrJoin(edges_[e], ", ") << "}";
  }
  oss << "\n}";
  return oss.str();
}

}  // namespace dhgcn
