#include "hypergraph/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.h"
#include "base/thread_pool.h"
#include "tensor/gemm_kernel.h"
#include "tensor/linalg.h"
#include "tensor/workspace.h"

namespace dhgcn {

Tensor PairwiseDistances(const Tensor& features, Workspace* ws) {
  DHGCN_CHECK_EQ(features.ndim(), 2);
  int64_t v = features.dim(0), f = features.dim(1);
  Tensor dist = NewTensor(ws, {v, v});
  const float* px = features.data();
  float* pd = dist.data();
  // GEMM formulation: dist(i, j) = sqrt(G_ii + G_jj - 2 G_ij) for the
  // Gram matrix G = X X^T, so the O(v² f) work rides the blocked matmul
  // kernel instead of a scalar difference loop. X^T is staged in the
  // kernel scratch arena (no owning allocations). G is bitwise symmetric
  // — G_ij and G_ji run the identical ascending-p accumulation with the
  // factors swapped inside a commutative multiply — so the distance
  // matrix stays exactly symmetric, and the diagonal is written as an
  // exact zero rather than computed. max(., 0) guards the tiny negative
  // residuals cancellation can leave for near-duplicate rows.
  Workspace& scratch = detail::KernelOpScratch();
  Tensor xt = scratch.Acquire({f, v});
  detail::GemmPackTransposed(px, v, f, xt.data());
  Tensor gram = scratch.Acquire({v, v});
  MatMulInto(features, xt, &gram);
  const float* pg = gram.data();
  ThreadPool::Get().ParallelFor(
      0, v, GrainForFlops(v), [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const double gii = pg[i * v + i];
          float* drow = pd + i * v;
          const float* grow = pg + i * v;
          for (int64_t j = 0; j < v; ++j) {
            const double g2 =
                gii + pg[j * v + j] - 2.0 * static_cast<double>(grow[j]);
            drow[j] = static_cast<float>(std::sqrt(std::max(g2, 0.0)));
          }
          drow[i] = 0.0f;
        }
      });
  scratch.Reset();
  return dist;
}

std::vector<int64_t> NearestNeighbors(const Tensor& distances, int64_t vertex,
                                      int64_t k) {
  DHGCN_CHECK_EQ(distances.ndim(), 2);
  int64_t v = distances.dim(0);
  DHGCN_CHECK(vertex >= 0 && vertex < v);
  DHGCN_CHECK(k >= 0 && k <= v - 1);
  std::vector<int64_t> order;
  order.reserve(static_cast<size_t>(v - 1));
  for (int64_t j = 0; j < v; ++j) {
    if (j != vertex) order.push_back(j);
  }
  const float* row = distances.data() + vertex * v;
  std::stable_sort(order.begin(), order.end(), [row](int64_t a, int64_t b) {
    if (row[a] != row[b]) return row[a] < row[b];
    return a < b;
  });
  order.resize(static_cast<size_t>(k));
  return order;
}

std::vector<Hyperedge> KnnHyperedges(const Tensor& features, int64_t k,
                                     Workspace* ws) {
  DHGCN_CHECK_EQ(features.ndim(), 2);
  int64_t v = features.dim(0);
  DHGCN_CHECK(k >= 1 && k <= v);
  Tensor dist = PairwiseDistances(features, ws);
  std::vector<Hyperedge> edges;
  edges.reserve(static_cast<size_t>(v));
  for (int64_t i = 0; i < v; ++i) {
    Hyperedge e = {i};
    std::vector<int64_t> nn = NearestNeighbors(dist, i, k - 1);
    e.insert(e.end(), nn.begin(), nn.end());
    edges.push_back(std::move(e));
  }
  return edges;
}

}  // namespace dhgcn
