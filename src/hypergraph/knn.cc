#include "hypergraph/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.h"
#include "base/thread_pool.h"
#include "tensor/workspace.h"

namespace dhgcn {

Tensor PairwiseDistances(const Tensor& features, Workspace* ws) {
  DHGCN_CHECK_EQ(features.ndim(), 2);
  int64_t v = features.dim(0), f = features.dim(1);
  Tensor dist = NewTensor(ws, {v, v});
  const float* px = features.data();
  float* pd = dist.data();
  // Row-parallel over i. Element (i, j) — and its mirror (j, i) — is
  // written exactly once, by the chunk owning row min(i, j), so chunks
  // never race and each element's value comes from one serial double
  // accumulation.
  ThreadPool::Get().ParallelFor(
      0, v, GrainForFlops(v * f), [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float* xi = px + i * f;
          pd[i * v + i] = 0.0f;  // arena buffers are uninitialized
          for (int64_t j = i + 1; j < v; ++j) {
            const float* xj = px + j * f;
            double acc = 0.0;
            for (int64_t d = 0; d < f; ++d) {
              double diff = static_cast<double>(xi[d]) - xj[d];
              acc += diff * diff;
            }
            float dd = static_cast<float>(std::sqrt(acc));
            pd[i * v + j] = dd;
            pd[j * v + i] = dd;
          }
        }
      });
  return dist;
}

std::vector<int64_t> NearestNeighbors(const Tensor& distances, int64_t vertex,
                                      int64_t k) {
  DHGCN_CHECK_EQ(distances.ndim(), 2);
  int64_t v = distances.dim(0);
  DHGCN_CHECK(vertex >= 0 && vertex < v);
  DHGCN_CHECK(k >= 0 && k <= v - 1);
  std::vector<int64_t> order;
  order.reserve(static_cast<size_t>(v - 1));
  for (int64_t j = 0; j < v; ++j) {
    if (j != vertex) order.push_back(j);
  }
  const float* row = distances.data() + vertex * v;
  std::stable_sort(order.begin(), order.end(), [row](int64_t a, int64_t b) {
    if (row[a] != row[b]) return row[a] < row[b];
    return a < b;
  });
  order.resize(static_cast<size_t>(k));
  return order;
}

std::vector<Hyperedge> KnnHyperedges(const Tensor& features, int64_t k,
                                     Workspace* ws) {
  DHGCN_CHECK_EQ(features.ndim(), 2);
  int64_t v = features.dim(0);
  DHGCN_CHECK(k >= 1 && k <= v);
  Tensor dist = PairwiseDistances(features, ws);
  std::vector<Hyperedge> edges;
  edges.reserve(static_cast<size_t>(v));
  for (int64_t i = 0; i < v; ++i) {
    Hyperedge e = {i};
    std::vector<int64_t> nn = NearestNeighbors(dist, i, k - 1);
    e.insert(e.end(), nn.begin(), nn.end());
    edges.push_back(std::move(e));
  }
  return edges;
}

}  // namespace dhgcn
