#ifndef DHGCN_HYPERGRAPH_KMEANS_H_
#define DHGCN_HYPERGRAPH_KMEANS_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "hypergraph/hypergraph.h"
#include "tensor/tensor.h"

namespace dhgcn {

class Workspace;

/// \brief Result of a medoid-based K-means run over vertex features.
struct KMeansResult {
  /// Disjoint clusters covering all vertices; cluster i's vertices.
  std::vector<Hyperedge> clusters;
  /// Medoid vertex of each cluster.
  std::vector<int64_t> medoids;
  /// Iterations executed until convergence (or the cap).
  int64_t iterations = 0;
  /// True when medoids stopped moving before the iteration cap.
  bool converged = false;
};

/// \brief Medoid-style K-means over vertices (Sec. 3.4, "global
/// information" hyperedges).
///
/// Following the paper: k random vertices are chosen as initial centroids;
/// every vertex is assigned to its nearest centroid; each cluster's new
/// centroid is the member vertex with the smallest mean distance to the
/// other members; repeat until the centroids stop moving (the paper's
/// "change of the position of the centroid is 0") or `max_iters` is hit.
/// Clusters that become empty are reseeded with the vertex farthest from
/// its current centroid so exactly k non-empty clusters are returned.
///
/// `features` is (V, F); requires 1 <= k <= V.
KMeansResult KMeansClusters(const Tensor& features, int64_t k, Rng& rng,
                            int64_t max_iters = 20,
                            Workspace* ws = nullptr);

/// Convenience: the clusters of KMeansClusters as hyperedges.
std::vector<Hyperedge> KMeansHyperedges(const Tensor& features, int64_t k,
                                        Rng& rng, int64_t max_iters = 20,
                                        Workspace* ws = nullptr);

}  // namespace dhgcn

#endif  // DHGCN_HYPERGRAPH_KMEANS_H_
