#ifndef DHGCN_HYPERGRAPH_GRAPH_H_
#define DHGCN_HYPERGRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/result.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Undirected plain graph over `num_vertices` nodes, used for the
/// classic skeleton graph of GCN-based baselines (Sec. 3.1).
class Graph {
 public:
  Graph(int64_t num_vertices, std::vector<std::pair<int64_t, int64_t>> edges);

  /// Validates vertex indices; use before trusting external edge lists.
  static Result<Graph> Make(
      int64_t num_vertices,
      std::vector<std::pair<int64_t, int64_t>> edges);

  int64_t num_vertices() const { return num_vertices_; }
  const std::vector<std::pair<int64_t, int64_t>>& edges() const {
    return edges_;
  }

  /// Binary adjacency matrix A (V, V), symmetric, zero diagonal.
  Tensor AdjacencyMatrix() const;

  /// Symmetrically normalized adjacency with self-loops (Eq. 1):
  /// D^{-1/2} (A + I) D^{-1/2}.
  Tensor NormalizedAdjacency() const;

  /// Degree (including self-loop) per vertex.
  std::vector<int64_t> Degrees() const;

 private:
  int64_t num_vertices_;
  std::vector<std::pair<int64_t, int64_t>> edges_;
};

}  // namespace dhgcn

#endif  // DHGCN_HYPERGRAPH_GRAPH_H_
