#ifndef DHGCN_HYPERGRAPH_KNN_H_
#define DHGCN_HYPERGRAPH_KNN_H_

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "tensor/tensor.h"

namespace dhgcn {

class Workspace;

/// \brief Pairwise Euclidean distance matrix (V, V) of row-vector features
/// (V, F) (Eq. 11, generalized from 3-D coordinates to F-dim features).
/// With a workspace, the matrix is arena-backed (valid until Reset).
Tensor PairwiseDistances(const Tensor& features, Workspace* ws = nullptr);

/// \brief K-NN hyperedge construction (Sec. 3.4, "common information"
/// hyperedges).
///
/// For each vertex i, the hyperedge e_i consists of i plus its k-1 nearest
/// other vertices by Euclidean distance in `features` (V, F), so every
/// hyperedge has exactly k vertices — the paper's "set containing N
/// hyperedges with k_n nodes on each hyperedge". Requires 1 <= k <= V.
/// Ties are broken toward lower vertex index for determinism.
std::vector<Hyperedge> KnnHyperedges(const Tensor& features, int64_t k,
                                     Workspace* ws = nullptr);

/// \brief Indices of the `k` nearest other vertices of `vertex` (excluding
/// itself), sorted by ascending distance.
std::vector<int64_t> NearestNeighbors(const Tensor& distances, int64_t vertex,
                                      int64_t k);

}  // namespace dhgcn

#endif  // DHGCN_HYPERGRAPH_KNN_H_
