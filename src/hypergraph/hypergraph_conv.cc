#include "hypergraph/hypergraph_conv.h"

#include <cmath>

#include "base/check.h"
#include "base/logging.h"
#include "base/string_util.h"
#include "base/thread_pool.h"
#include "plan/plan_builder.h"
#include "tensor/linalg.h"
#include "tensor/sparse_router.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {

namespace {

// Process-wide CSR scratch for the free-function incidence operators
// (capacity reused across the per-frame dynamic-topology loop). Built
// and consumed on the compute-driving thread only — the library is
// externally single-threaded (see ThreadPool), and concurrent serve
// workers serialize compute behind the server's compute lease — so the
// Meyers static needs no guard, same as the GEMM packing scratch.
CsrMatrix& IncidenceCsrScratch() {
  static CsrMatrix scratch(1, 1);
  return scratch;
}

// First-decision-only debug log: the dynamic-topology loop would
// otherwise emit thousands of identical lines per step.
void LogRouteOnce(bool* logged, const char* what, double density,
                  bool routed) {
  if (logged == nullptr || *logged) return;
  *logged = true;
  DHGCN_LOG(kDebug) << "sparse-router: " << what << " density=" << density
                    << " threshold="
                    << SparseRouter::Get().density_threshold() << " mode="
                    << SparseModeName(SparseRouter::Get().mode()) << " -> "
                    << (routed ? "csr" : "dense");
}

}  // namespace

Tensor NormalizedHypergraphOperator(const Hypergraph& hypergraph,
                                    Workspace* ws) {
  int64_t nv = hypergraph.num_vertices();
  int64_t ne = hypergraph.num_edges();
  std::vector<float> dv = hypergraph.VertexDegrees();
  std::vector<int64_t> de = hypergraph.EdgeDegrees();
  const std::vector<float>& w = hypergraph.edge_weights();

  // Left factor L = Dv^{-1/2} H W De^{-1}, shape (V, E); then
  // Omega = L * (Dv^{-1/2} H)^T. H is sparse (h(v,e)=1 iff v in e), so
  // the factors are filled straight from the edge lists instead of
  // materializing the incidence matrix.
  Tensor left = NewZeroedTensor(ws, {nv, ne});
  Tensor right = NewZeroedTensor(ws, {nv, ne});
  for (int64_t e = 0; e < ne; ++e) {
    float inv_de = 1.0f / static_cast<float>(de[static_cast<size_t>(e)]);
    for (int64_t v : hypergraph.edges()[static_cast<size_t>(e)]) {
      float inv_sqrt_dv =
          dv[static_cast<size_t>(v)] > 0.0f
              ? 1.0f / std::sqrt(dv[static_cast<size_t>(v)])
              : 0.0f;
      left.at(v, e) = inv_sqrt_dv * w[static_cast<size_t>(e)] * inv_de;
      right.at(v, e) = inv_sqrt_dv;
    }
  }
  Tensor omega = NewTensor(ws, {nv, nv});  // (V, V)
  // Omega[v,u] is an ascending-e double dot of left row v with right
  // row u; compressing `right` and skipping its zeros leaves the dot
  // term-for-term identical (zero products are exact no-ops in the
  // double accumulator), so both branches produce the same bits.
  double density = SparseRouter::MeasureDensity(right);
  bool routed = SparseRouter::Get().ShouldRoute(density);
  static bool logged = false;
  LogRouteOnce(&logged, "NormalizedHypergraphOperator", density, routed);
  if (routed) {
    CsrMatrix& csr = IncidenceCsrScratch();
    csr.AssignFromDense(right);
    SpMMTransposedBInto(left, csr, &omega);
  } else {
    // lint: allow-sparse-route (router dense fallback)
    MatMulTransposedBInto(left, right, &omega);
  }
  return omega;
}

Tensor WeightedIncidenceOperator(const Tensor& imp, Workspace* ws) {
  DHGCN_CHECK_EQ(imp.ndim(), 2);
  Tensor out = NewTensor(ws, {imp.dim(0), imp.dim(0)});
  double density = SparseRouter::MeasureDensity(imp);
  bool routed = SparseRouter::Get().ShouldRoute(density);
  static bool logged = false;
  LogRouteOnce(&logged, "WeightedIncidenceOperator", density, routed);
  if (routed) {
    CsrMatrix& csr = IncidenceCsrScratch();
    csr.AssignFromDense(imp);
    SpMMTransposedBInto(imp, csr, &out);
  } else {
    // lint: allow-sparse-route (router dense fallback)
    MatMulTransposedBInto(imp, imp, &out);
  }
  return out;
}

VertexMix::VertexMix(Tensor op, bool learnable)
    : op_(std::move(op)), learnable_(learnable) {
  DHGCN_CHECK_EQ(op_.ndim(), 2);
  DHGCN_CHECK_EQ(op_.dim(0), op_.dim(1));
  op_grad_ = Tensor(op_.shape());
}

Tensor VertexMix::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(3), op_.dim(0));
  cached_input_ = input;
  Tensor out = NewTensor(ws, input.shape());
  MixPlan(input, &out);
  return out;
}

bool VertexMix::RouteSparse() const {
  const SparseRouter& router = SparseRouter::Get();
  if (router.mode() == SparseMode::kOff) return false;
  if (learnable_ || !csr_valid_) {
    // Learnable operators move every optimizer step (and magnitude
    // pruning is what creates their zeros), so they re-probe and
    // re-compress per call; fixed structural operators probe once.
    op_density_ = SparseRouter::MeasureDensity(op_);
    bool routed = router.ShouldRoute(op_density_);
    LogRouteOnce(&route_logged_, "VertexMix", op_density_, routed);
    if (!routed) return false;
    op_csr_.AssignFromDense(op_);
    csr_valid_ = !learnable_;
    return true;
  }
  bool routed = router.ShouldRoute(op_density_);
  LogRouteOnce(&route_logged_, "VertexMix", op_density_, routed);
  return routed;
}

void VertexMix::MixPlan(const Tensor& input, Tensor* out) const {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(3), op_.dim(0));
  DHGCN_CHECK(ShapesEqual(out->shape(), input.shape()));
  if (RouteSparse()) {
    // Same ascending-u double dots as below, zeros skipped (exact
    // no-ops) — bit-identical, ThreadPool-parallel over leading rows.
    SparseMixInto(op_csr_, input, out);
    return;
  }
  int64_t n = input.dim(0), c = input.dim(1), t = input.dim(2),
          v = input.dim(3);
  const float* px = input.data();
  const float* pm = op_.data();
  float* po = out->data();
  int64_t rows = n * c * t;
  // Y_row[v'] = sum_u M[v',u] X_row[u]  ==  X_row * M^T.
  for (int64_t r = 0; r < rows; ++r) {
    const float* xrow = px + r * v;
    float* orow = po + r * v;
    for (int64_t vi = 0; vi < v; ++vi) {
      const float* mrow = pm + vi * v;
      double acc = 0.0;
      for (int64_t u = 0; u < v; ++u) {
        acc += static_cast<double>(mrow[u]) * xrow[u];
      }
      orow[vi] = static_cast<float>(acc);
    }
  }
}

int64_t VertexMix::Record(PlanBuilder& builder, int64_t in) {
  const Shape& s = builder.slot_shape(in);
  if (s.size() != 4 || s[3] != op_.dim(0)) return -1;
  PlanOp op;
  // Capture-time routing: a fixed operator's density cannot change
  // after recording, so the decision is baked into the op kind and the
  // runner replays the CSR kernel directly (no per-step re-probe).
  // Learnable operators keep kVertexMix, whose MixPlan re-routes per
  // call. The CSR image lives in the layer, which must outlive the
  // plan (same contract as every other layer pointer in PlanOp).
  if (!learnable_ && RouteSparse()) {
    op.kind = PlanOpKind::kSpMM;
    op.csr = &op_csr_;
  } else {
    op.kind = PlanOpKind::kVertexMix;
  }
  op.in0 = in;
  op.out = builder.AddSlot(s);
  op.mix = this;
  int64_t out = op.out;
  builder.AddOp(std::move(op));
  return out;
}

Tensor VertexMix::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  const Tensor& input = cached_input_;
  DHGCN_CHECK(ShapesEqual(grad_output.shape(), input.shape()));
  int64_t v = input.dim(3);
  int64_t rows = input.numel() / v;
  Tensor grad_input = NewZeroedTensor(ws, input.shape());
  if (!learnable_ && RouteSparse()) {
    // Same float scatter order as the dense loop below (vi ascending,
    // zero grads skipped, zero operator entries exact no-op adds) —
    // bit-identical, parallel over leading rows. The learnable case
    // keeps the dense loop: its op-gradient accumulation is shared
    // across leading rows and must stay single-pass serial.
    SparseMixBackwardInto(op_csr_, grad_output, &grad_input);
    return grad_input;
  }
  const float* pg = grad_output.data();
  const float* pm = op_.data();
  const float* px = input.data();
  float* pgi = grad_input.data();
  float* pgm = op_grad_.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* grow = pg + r * v;
    const float* xrow = px + r * v;
    float* girow = pgi + r * v;
    for (int64_t vi = 0; vi < v; ++vi) {
      float g = grow[vi];
      if (g == 0.0f) continue;
      const float* mrow = pm + vi * v;
      float* gmrow = pgm + vi * v;
      for (int64_t u = 0; u < v; ++u) {
        girow[u] += g * mrow[u];
        if (learnable_) gmrow[u] += g * xrow[u];
      }
    }
  }
  return grad_input;
}

Tensor VertexMix::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor VertexMix::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void VertexMix::ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void VertexMix::BackwardInto(const Tensor& grad_output, Workspace& ws,
                             Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> VertexMix::Params() {
  if (!learnable_) return {};
  return {{"op", &op_, &op_grad_}};
}

std::string VertexMix::name() const {
  return StrCat("VertexMix(V=", op_.dim(0),
                learnable_ ? ", learnable)" : ")");
}

void DynamicVertexMix::SetOperators(Tensor ops) {
  DHGCN_CHECK_EQ(ops.ndim(), 4);
  DHGCN_CHECK_EQ(ops.dim(2), ops.dim(3));
  ops_ = std::move(ops);
}

Tensor DynamicVertexMix::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_GT(ops_.numel(), 0);  // SetOperators must precede Forward
  Tensor out = NewTensor(ws, input.shape());
  MixPlan(input, ops_, &out);
  return out;
}

void DynamicVertexMix::MixPlan(const Tensor& input, const Tensor& ops,
                               Tensor* out) const {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  int64_t n = input.dim(0), c = input.dim(1), t = input.dim(2),
          v = input.dim(3);
  DHGCN_CHECK_EQ(ops.dim(0), n);
  DHGCN_CHECK_EQ(ops.dim(1), t);
  DHGCN_CHECK_EQ(ops.dim(2), v);
  DHGCN_CHECK_EQ(ops.dim(3), v);
  DHGCN_CHECK(ShapesEqual(out->shape(), input.shape()));
  const float* px = input.data();
  const float* pops = ops.data();
  float* po = out->data();
  // The operators are data-dependent, so the density probe runs per
  // call — an O(N·T·V²) scan, a factor C cheaper than the mix itself.
  double density = SparseRouter::MeasureDensity(ops);
  bool routed = SparseRouter::Get().ShouldRoute(density);
  LogRouteOnce(&route_logged_, "DynamicVertexMix", density, routed);
  if (routed) {
    // One CSR compression per frame, reused across the C channels;
    // channels write disjoint output rows, so the per-frame channel
    // loop parallelizes without changing any accumulation order.
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t tt = 0; tt < t; ++tt) {
        frame_csr_.AssignFromDense(pops + (b * t + tt) * v * v, v, v);
        const int64_t* row_ptr = frame_csr_.row_ptr().data();
        const int64_t* col_idx = frame_csr_.col_idx().data();
        const float* values = frame_csr_.values().data();
        ThreadPool::Get().ParallelFor(
            0, c, GrainForFlops(frame_csr_.nnz() + 1),
            [&](int64_t ch_begin, int64_t ch_end) {
              for (int64_t ch = ch_begin; ch < ch_end; ++ch) {
                const float* xrow = px + ((b * c + ch) * t + tt) * v;
                float* orow = po + ((b * c + ch) * t + tt) * v;
                for (int64_t vi = 0; vi < v; ++vi) {
                  double acc = 0.0;
                  for (int64_t k = row_ptr[vi]; k < row_ptr[vi + 1]; ++k) {
                    acc += static_cast<double>(values[k]) * xrow[col_idx[k]];
                  }
                  orow[vi] = static_cast<float>(acc);
                }
              }
            });
      }
    }
    return;
  }
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t tt = 0; tt < t; ++tt) {
      const float* m = pops + (b * t + tt) * v * v;
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xrow = px + ((b * c + ch) * t + tt) * v;
        float* orow = po + ((b * c + ch) * t + tt) * v;
        for (int64_t vi = 0; vi < v; ++vi) {
          const float* mrow = m + vi * v;
          double acc = 0.0;
          for (int64_t u = 0; u < v; ++u) {
            acc += static_cast<double>(mrow[u]) * xrow[u];
          }
          orow[vi] = static_cast<float>(acc);
        }
      }
    }
  }
}

Tensor DynamicVertexMix::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  int64_t n = grad_output.dim(0), c = grad_output.dim(1),
          t = grad_output.dim(2), v = grad_output.dim(3);
  Tensor grad_input = NewZeroedTensor(ws, grad_output.shape());
  const float* pg = grad_output.data();
  const float* pops = ops_.data();
  float* pgi = grad_input.data();
  double density = SparseRouter::MeasureDensity(ops_);
  if (SparseRouter::Get().ShouldRoute(density)) {
    // Same float scatter order as the dense loop below; channels own
    // disjoint grad rows, so the channel loop parallelizes.
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t tt = 0; tt < t; ++tt) {
        frame_csr_.AssignFromDense(pops + (b * t + tt) * v * v, v, v);
        const int64_t* row_ptr = frame_csr_.row_ptr().data();
        const int64_t* col_idx = frame_csr_.col_idx().data();
        const float* values = frame_csr_.values().data();
        ThreadPool::Get().ParallelFor(
            0, c, GrainForFlops(frame_csr_.nnz() + 1),
            [&](int64_t ch_begin, int64_t ch_end) {
              for (int64_t ch = ch_begin; ch < ch_end; ++ch) {
                const float* grow = pg + ((b * c + ch) * t + tt) * v;
                float* girow = pgi + ((b * c + ch) * t + tt) * v;
                for (int64_t vi = 0; vi < v; ++vi) {
                  const float g = grow[vi];
                  if (g == 0.0f) continue;
                  for (int64_t k = row_ptr[vi]; k < row_ptr[vi + 1]; ++k) {
                    girow[col_idx[k]] += g * values[k];
                  }
                }
              }
            });
      }
    }
    return grad_input;
  }
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t tt = 0; tt < t; ++tt) {
      const float* m = pops + (b * t + tt) * v * v;
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* grow = pg + ((b * c + ch) * t + tt) * v;
        float* girow = pgi + ((b * c + ch) * t + tt) * v;
        // dX[u] = sum_v M[v,u] dY[v].
        for (int64_t vi = 0; vi < v; ++vi) {
          float g = grow[vi];
          if (g == 0.0f) continue;
          const float* mrow = m + vi * v;
          for (int64_t u = 0; u < v; ++u) girow[u] += g * mrow[u];
        }
      }
    }
  }
  return grad_input;
}

Tensor DynamicVertexMix::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor DynamicVertexMix::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void DynamicVertexMix::ForwardInto(const Tensor& input, Workspace& ws,
                                   Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void DynamicVertexMix::BackwardInto(const Tensor& grad_output, Workspace& ws,
                                    Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

LearnableHyperedgeMix::LearnableHyperedgeMix(const Hypergraph& hypergraph) {
  int64_t nv = hypergraph.num_vertices();
  int64_t ne = hypergraph.num_edges();
  Tensor h = hypergraph.IncidenceMatrix();
  std::vector<float> dv = hypergraph.VertexDegrees();
  std::vector<int64_t> de = hypergraph.EdgeDegrees();
  left_ = Tensor({nv, ne});
  right_ = Tensor({ne, nv});
  for (int64_t v = 0; v < nv; ++v) {
    float inv_sqrt_dv = dv[static_cast<size_t>(v)] > 0.0f
                            ? 1.0f / std::sqrt(dv[static_cast<size_t>(v)])
                            : 0.0f;
    for (int64_t e = 0; e < ne; ++e) {
      float he = h.at(v, e);
      if (he == 0.0f) continue;
      left_.at(v, e) =
          inv_sqrt_dv * he /
          static_cast<float>(de[static_cast<size_t>(e)]);
      right_.at(e, v) = he * inv_sqrt_dv;
    }
  }
  weights_ = Tensor::Ones({ne});
  weights_grad_ = Tensor({ne});
  // The incidence factors never change after construction: compress
  // them once and cache the routing probe.
  left_csr_.AssignFromDense(left_);
  right_csr_.AssignFromDense(right_);
  incidence_density_ = right_csr_.Density();
}

Tensor LearnableHyperedgeMix::ForwardImpl(const Tensor& input,
                                          Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  int64_t v = input.dim(3);
  DHGCN_CHECK_EQ(v, left_.dim(0));
  int64_t ne = left_.dim(1);
  int64_t rows = input.numel() / v;
  cached_input_shape_ = input.shape();

  // Z = R X^T-per-row: edge features per leading row. The routed
  // branch runs the same ascending-column double dots with the
  // incidence zeros skipped (exact no-ops) — bit-identical to the
  // dense transposed-B kernel.
  bool routed = SparseRouter::Get().ShouldRoute(incidence_density_);
  LogRouteOnce(&route_logged_, "LearnableHyperedgeMix", incidence_density_,
               routed);
  Tensor x2d = input.Reshape({rows, v});
  cached_edge_features_ = NewTensor(ws, {rows, ne});  // (rows, E)
  if (routed) {
    SpMMTransposedBInto(x2d, right_csr_, &cached_edge_features_);
  } else {
    // lint: allow-sparse-route (router dense fallback)
    MatMulTransposedBInto(x2d, right_, &cached_edge_features_);
  }
  // Y = (w .* Z) L^T.
  Tensor scaled = NewTensor(ws, {rows, ne});
  scaled.CopyFrom(cached_edge_features_);
  float* ps = scaled.data();
  const float* pw = weights_.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t e = 0; e < ne; ++e) ps[r * ne + e] *= pw[e];
  }
  Tensor y = NewTensor(ws, {rows, v});
  if (routed) {
    SpMMTransposedBInto(scaled, left_csr_, &y);
  } else {
    // lint: allow-sparse-route (router dense fallback)
    MatMulTransposedBInto(scaled, left_, &y);
  }
  return y.Reshape(cached_input_shape_);
}

Tensor LearnableHyperedgeMix::BackwardImpl(const Tensor& grad_output,
                                           Workspace* ws) {
  DHGCN_CHECK(ShapesEqual(grad_output.shape(), cached_input_shape_));
  int64_t v = left_.dim(0);
  int64_t ne = left_.dim(1);
  int64_t rows = grad_output.numel() / v;
  Tensor g2d = grad_output.Reshape({rows, v});
  // dP = dY L, where P = w .* Z. L is the scaled incidence matrix —
  // mostly zeros — so route through true CSR when the density policy
  // says so; the CSR scatter runs the exact operation sequence of the
  // GemmHint::kSparse reference kernel (ascending k, zero rows
  // skipped), so both branches are bit-identical.
  bool routed = SparseRouter::Get().ShouldRoute(incidence_density_);
  Tensor dp = NewTensor(ws, {rows, ne});  // (rows, E)
  if (routed) {
    DenseSpMMInto(g2d, left_csr_, &dp);
  } else {
    // lint: allow-sparse-route (router dense fallback)
    MatMulInto(g2d, left_, &dp, /*accumulate=*/false, GemmHint::kSparse);
  }
  // dw[e] += sum_r dP[r,e] Z[r,e];  dZ = w .* dP.
  const float* pz = cached_edge_features_.data();
  const float* pw = weights_.data();
  float* pgw = weights_grad_.data();
  float* pdp = dp.data();
  for (int64_t e = 0; e < ne; ++e) {
    double acc = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
      acc += static_cast<double>(pdp[r * ne + e]) * pz[r * ne + e];
    }
    pgw[e] += static_cast<float>(acc);
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t e = 0; e < ne; ++e) pdp[r * ne + e] *= pw[e];
  }
  // dX = dZ R, with R the other incidence-sparse operator.
  Tensor dx = NewTensor(ws, {rows, v});  // (rows, V)
  if (routed) {
    DenseSpMMInto(dp, right_csr_, &dx);
  } else {
    // lint: allow-sparse-route (router dense fallback)
    MatMulInto(dp, right_, &dx, /*accumulate=*/false, GemmHint::kSparse);
  }
  return dx.Reshape(cached_input_shape_);
}

Tensor LearnableHyperedgeMix::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor LearnableHyperedgeMix::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void LearnableHyperedgeMix::ForwardInto(const Tensor& input, Workspace& ws,
                                        Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void LearnableHyperedgeMix::BackwardInto(const Tensor& grad_output,
                                         Workspace& ws, Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> LearnableHyperedgeMix::Params() {
  return {{"edge_weights", &weights_, &weights_grad_}};
}

std::string LearnableHyperedgeMix::name() const {
  return StrCat("LearnableHyperedgeMix(V=", left_.dim(0),
                ", E=", left_.dim(1), ")");
}

}  // namespace dhgcn
