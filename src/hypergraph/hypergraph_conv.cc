#include "hypergraph/hypergraph_conv.h"

#include <cmath>

#include "base/check.h"
#include "base/string_util.h"
#include "plan/plan_builder.h"
#include "tensor/linalg.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {

Tensor NormalizedHypergraphOperator(const Hypergraph& hypergraph,
                                    Workspace* ws) {
  int64_t nv = hypergraph.num_vertices();
  int64_t ne = hypergraph.num_edges();
  std::vector<float> dv = hypergraph.VertexDegrees();
  std::vector<int64_t> de = hypergraph.EdgeDegrees();
  const std::vector<float>& w = hypergraph.edge_weights();

  // Left factor L = Dv^{-1/2} H W De^{-1}, shape (V, E); then
  // Omega = L * (Dv^{-1/2} H)^T. H is sparse (h(v,e)=1 iff v in e), so
  // the factors are filled straight from the edge lists instead of
  // materializing the incidence matrix.
  Tensor left = NewZeroedTensor(ws, {nv, ne});
  Tensor right = NewZeroedTensor(ws, {nv, ne});
  for (int64_t e = 0; e < ne; ++e) {
    float inv_de = 1.0f / static_cast<float>(de[static_cast<size_t>(e)]);
    for (int64_t v : hypergraph.edges()[static_cast<size_t>(e)]) {
      float inv_sqrt_dv =
          dv[static_cast<size_t>(v)] > 0.0f
              ? 1.0f / std::sqrt(dv[static_cast<size_t>(v)])
              : 0.0f;
      left.at(v, e) = inv_sqrt_dv * w[static_cast<size_t>(e)] * inv_de;
      right.at(v, e) = inv_sqrt_dv;
    }
  }
  Tensor omega = NewTensor(ws, {nv, nv});  // (V, V)
  MatMulTransposedBInto(left, right, &omega);
  return omega;
}

Tensor WeightedIncidenceOperator(const Tensor& imp, Workspace* ws) {
  DHGCN_CHECK_EQ(imp.ndim(), 2);
  Tensor out = NewTensor(ws, {imp.dim(0), imp.dim(0)});
  MatMulTransposedBInto(imp, imp, &out);
  return out;
}

VertexMix::VertexMix(Tensor op, bool learnable)
    : op_(std::move(op)), learnable_(learnable) {
  DHGCN_CHECK_EQ(op_.ndim(), 2);
  DHGCN_CHECK_EQ(op_.dim(0), op_.dim(1));
  op_grad_ = Tensor(op_.shape());
}

Tensor VertexMix::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(3), op_.dim(0));
  cached_input_ = input;
  Tensor out = NewTensor(ws, input.shape());
  MixPlan(input, &out);
  return out;
}

void VertexMix::MixPlan(const Tensor& input, Tensor* out) const {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(3), op_.dim(0));
  DHGCN_CHECK(ShapesEqual(out->shape(), input.shape()));
  int64_t n = input.dim(0), c = input.dim(1), t = input.dim(2),
          v = input.dim(3);
  const float* px = input.data();
  const float* pm = op_.data();
  float* po = out->data();
  int64_t rows = n * c * t;
  // Y_row[v'] = sum_u M[v',u] X_row[u]  ==  X_row * M^T.
  for (int64_t r = 0; r < rows; ++r) {
    const float* xrow = px + r * v;
    float* orow = po + r * v;
    for (int64_t vi = 0; vi < v; ++vi) {
      const float* mrow = pm + vi * v;
      double acc = 0.0;
      for (int64_t u = 0; u < v; ++u) {
        acc += static_cast<double>(mrow[u]) * xrow[u];
      }
      orow[vi] = static_cast<float>(acc);
    }
  }
}

int64_t VertexMix::Record(PlanBuilder& builder, int64_t in) {
  const Shape& s = builder.slot_shape(in);
  if (s.size() != 4 || s[3] != op_.dim(0)) return -1;
  PlanOp op;
  op.kind = PlanOpKind::kVertexMix;
  op.in0 = in;
  op.out = builder.AddSlot(s);
  op.mix = this;
  int64_t out = op.out;
  builder.AddOp(std::move(op));
  return out;
}

Tensor VertexMix::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  const Tensor& input = cached_input_;
  DHGCN_CHECK(ShapesEqual(grad_output.shape(), input.shape()));
  int64_t v = input.dim(3);
  int64_t rows = input.numel() / v;
  Tensor grad_input = NewZeroedTensor(ws, input.shape());
  const float* pg = grad_output.data();
  const float* pm = op_.data();
  const float* px = input.data();
  float* pgi = grad_input.data();
  float* pgm = op_grad_.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* grow = pg + r * v;
    const float* xrow = px + r * v;
    float* girow = pgi + r * v;
    for (int64_t vi = 0; vi < v; ++vi) {
      float g = grow[vi];
      if (g == 0.0f) continue;
      const float* mrow = pm + vi * v;
      float* gmrow = pgm + vi * v;
      for (int64_t u = 0; u < v; ++u) {
        girow[u] += g * mrow[u];
        if (learnable_) gmrow[u] += g * xrow[u];
      }
    }
  }
  return grad_input;
}

Tensor VertexMix::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor VertexMix::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void VertexMix::ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void VertexMix::BackwardInto(const Tensor& grad_output, Workspace& ws,
                             Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> VertexMix::Params() {
  if (!learnable_) return {};
  return {{"op", &op_, &op_grad_}};
}

std::string VertexMix::name() const {
  return StrCat("VertexMix(V=", op_.dim(0),
                learnable_ ? ", learnable)" : ")");
}

void DynamicVertexMix::SetOperators(Tensor ops) {
  DHGCN_CHECK_EQ(ops.ndim(), 4);
  DHGCN_CHECK_EQ(ops.dim(2), ops.dim(3));
  ops_ = std::move(ops);
}

Tensor DynamicVertexMix::ForwardImpl(const Tensor& input, Workspace* ws) {
  DHGCN_CHECK_GT(ops_.numel(), 0);  // SetOperators must precede Forward
  Tensor out = NewTensor(ws, input.shape());
  MixPlan(input, ops_, &out);
  return out;
}

void DynamicVertexMix::MixPlan(const Tensor& input, const Tensor& ops,
                               Tensor* out) const {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  int64_t n = input.dim(0), c = input.dim(1), t = input.dim(2),
          v = input.dim(3);
  DHGCN_CHECK_EQ(ops.dim(0), n);
  DHGCN_CHECK_EQ(ops.dim(1), t);
  DHGCN_CHECK_EQ(ops.dim(2), v);
  DHGCN_CHECK_EQ(ops.dim(3), v);
  DHGCN_CHECK(ShapesEqual(out->shape(), input.shape()));
  const float* px = input.data();
  const float* pops = ops.data();
  float* po = out->data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t tt = 0; tt < t; ++tt) {
      const float* m = pops + (b * t + tt) * v * v;
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* xrow = px + ((b * c + ch) * t + tt) * v;
        float* orow = po + ((b * c + ch) * t + tt) * v;
        for (int64_t vi = 0; vi < v; ++vi) {
          const float* mrow = m + vi * v;
          double acc = 0.0;
          for (int64_t u = 0; u < v; ++u) {
            acc += static_cast<double>(mrow[u]) * xrow[u];
          }
          orow[vi] = static_cast<float>(acc);
        }
      }
    }
  }
}

Tensor DynamicVertexMix::BackwardImpl(const Tensor& grad_output, Workspace* ws) {
  int64_t n = grad_output.dim(0), c = grad_output.dim(1),
          t = grad_output.dim(2), v = grad_output.dim(3);
  Tensor grad_input = NewZeroedTensor(ws, grad_output.shape());
  const float* pg = grad_output.data();
  const float* pops = ops_.data();
  float* pgi = grad_input.data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t tt = 0; tt < t; ++tt) {
      const float* m = pops + (b * t + tt) * v * v;
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* grow = pg + ((b * c + ch) * t + tt) * v;
        float* girow = pgi + ((b * c + ch) * t + tt) * v;
        // dX[u] = sum_v M[v,u] dY[v].
        for (int64_t vi = 0; vi < v; ++vi) {
          float g = grow[vi];
          if (g == 0.0f) continue;
          const float* mrow = m + vi * v;
          for (int64_t u = 0; u < v; ++u) girow[u] += g * mrow[u];
        }
      }
    }
  }
  return grad_input;
}

Tensor DynamicVertexMix::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor DynamicVertexMix::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void DynamicVertexMix::ForwardInto(const Tensor& input, Workspace& ws,
                                   Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void DynamicVertexMix::BackwardInto(const Tensor& grad_output, Workspace& ws,
                                    Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

LearnableHyperedgeMix::LearnableHyperedgeMix(const Hypergraph& hypergraph) {
  int64_t nv = hypergraph.num_vertices();
  int64_t ne = hypergraph.num_edges();
  Tensor h = hypergraph.IncidenceMatrix();
  std::vector<float> dv = hypergraph.VertexDegrees();
  std::vector<int64_t> de = hypergraph.EdgeDegrees();
  left_ = Tensor({nv, ne});
  right_ = Tensor({ne, nv});
  for (int64_t v = 0; v < nv; ++v) {
    float inv_sqrt_dv = dv[static_cast<size_t>(v)] > 0.0f
                            ? 1.0f / std::sqrt(dv[static_cast<size_t>(v)])
                            : 0.0f;
    for (int64_t e = 0; e < ne; ++e) {
      float he = h.at(v, e);
      if (he == 0.0f) continue;
      left_.at(v, e) =
          inv_sqrt_dv * he /
          static_cast<float>(de[static_cast<size_t>(e)]);
      right_.at(e, v) = he * inv_sqrt_dv;
    }
  }
  weights_ = Tensor::Ones({ne});
  weights_grad_ = Tensor({ne});
}

Tensor LearnableHyperedgeMix::ForwardImpl(const Tensor& input,
                                          Workspace* ws) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  int64_t v = input.dim(3);
  DHGCN_CHECK_EQ(v, left_.dim(0));
  int64_t ne = left_.dim(1);
  int64_t rows = input.numel() / v;
  cached_input_shape_ = input.shape();

  // Z = R X^T-per-row: edge features per leading row.
  Tensor x2d = input.Reshape({rows, v});
  cached_edge_features_ = NewTensor(ws, {rows, ne});  // (rows, E)
  MatMulTransposedBInto(x2d, right_, &cached_edge_features_);
  // Y = (w .* Z) L^T.
  Tensor scaled = NewTensor(ws, {rows, ne});
  scaled.CopyFrom(cached_edge_features_);
  float* ps = scaled.data();
  const float* pw = weights_.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t e = 0; e < ne; ++e) ps[r * ne + e] *= pw[e];
  }
  Tensor y = NewTensor(ws, {rows, v});
  MatMulTransposedBInto(scaled, left_, &y);
  return y.Reshape(cached_input_shape_);
}

Tensor LearnableHyperedgeMix::BackwardImpl(const Tensor& grad_output,
                                           Workspace* ws) {
  DHGCN_CHECK(ShapesEqual(grad_output.shape(), cached_input_shape_));
  int64_t v = left_.dim(0);
  int64_t ne = left_.dim(1);
  int64_t rows = grad_output.numel() / v;
  Tensor g2d = grad_output.Reshape({rows, v});
  // dP = dY L, where P = w .* Z. L is the scaled incidence matrix —
  // mostly zeros — so hint the sparse row kernel instead of the dense
  // blocked path (which would pack the zeros into panels).
  Tensor dp = NewTensor(ws, {rows, ne});  // (rows, E)
  MatMulInto(g2d, left_, &dp, /*accumulate=*/false, GemmHint::kSparse);
  // dw[e] += sum_r dP[r,e] Z[r,e];  dZ = w .* dP.
  const float* pz = cached_edge_features_.data();
  const float* pw = weights_.data();
  float* pgw = weights_grad_.data();
  float* pdp = dp.data();
  for (int64_t e = 0; e < ne; ++e) {
    double acc = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
      acc += static_cast<double>(pdp[r * ne + e]) * pz[r * ne + e];
    }
    pgw[e] += static_cast<float>(acc);
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t e = 0; e < ne; ++e) pdp[r * ne + e] *= pw[e];
  }
  // dX = dZ R, with R the other incidence-sparse operator.
  Tensor dx = NewTensor(ws, {rows, v});  // (rows, V)
  MatMulInto(dp, right_, &dx, /*accumulate=*/false, GemmHint::kSparse);
  return dx.Reshape(cached_input_shape_);
}

Tensor LearnableHyperedgeMix::Forward(const Tensor& input) {
  return ForwardImpl(input, nullptr);
}

Tensor LearnableHyperedgeMix::Backward(const Tensor& grad_output) {
  return BackwardImpl(grad_output, nullptr);
}

void LearnableHyperedgeMix::ForwardInto(const Tensor& input, Workspace& ws,
                                        Tensor* out) {
  DHGCN_CHECK(out != nullptr);
  *out = ForwardImpl(input, &ws);
}

void LearnableHyperedgeMix::BackwardInto(const Tensor& grad_output,
                                         Workspace& ws, Tensor* grad_input) {
  DHGCN_CHECK(grad_input != nullptr);
  *grad_input = BackwardImpl(grad_output, &ws);
}

std::vector<ParamRef> LearnableHyperedgeMix::Params() {
  return {{"edge_weights", &weights_, &weights_grad_}};
}

std::string LearnableHyperedgeMix::name() const {
  return StrCat("LearnableHyperedgeMix(V=", left_.dim(0),
                ", E=", left_.dim(1), ")");
}

}  // namespace dhgcn
