#ifndef DHGCN_HYPERGRAPH_HYPERGRAPH_CONV_H_
#define DHGCN_HYPERGRAPH_HYPERGRAPH_CONV_H_

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "nn/layer.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Normalized hypergraph convolution operator (Eq. 5):
///   Omega = Dv^{-1/2} H W De^{-1} H^T Dv^{-1/2}   (V, V)
///
/// Note: the paper prints Dv^{1/2}; the standard HGNN operator (Feng et
/// al. 2019, the paper's reference [6]) uses Dv^{-1/2}, which is what we
/// implement — the positive exponent would amplify high-degree vertices
/// and is a typo. Isolated vertices (degree 0) map to zero rows/columns.
/// With a workspace, the operator and its factors are arena-backed.
Tensor NormalizedHypergraphOperator(const Hypergraph& hypergraph,
                                    Workspace* ws = nullptr);

/// \brief Operator from a weighted incidence matrix (Eqs. 8–9):
/// given Imp = W_all ⊙ H of shape (V, E), returns Imp Imp^T of shape (V, V).
Tensor WeightedIncidenceOperator(const Tensor& imp,
                                 Workspace* ws = nullptr);

/// \brief Applies a (V, V) vertex-mixing operator to (N, C, T, V) inputs:
///   Y[n,c,t,v] = sum_u M[v,u] X[n,c,t,u].
///
/// This is the aggregation half of both graph and hypergraph convolution;
/// composing it with a 1x1 Conv2d gives the full X^(l+1) = sigma(M X Theta)
/// update. The operator may be a fixed structure matrix or learnable (the
/// B matrix of 2s-AGCN).
class VertexMix : public Layer {
 public:
  /// `learnable` makes the operator a trainable parameter.
  VertexMix(Tensor op, bool learnable = false);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::vector<ParamRef> Params() override;
  std::string name() const override;
  int64_t Record(PlanBuilder& builder, int64_t in) override;

  /// Plan-replay entry: applies the (V, V) operator into the pre-shaped
  /// `out` — the exact loop of the layer forward (bit-identical), minus
  /// the autograd input cache.
  void MixPlan(const Tensor& input, Tensor* out) const;

  const Tensor& op() const { return op_; }
  Tensor& mutable_op() { return op_; }

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);
  /// Density-policy decision for this operator; builds/refreshes the
  /// CSR image when routing sparse. Cached for fixed operators,
  /// re-probed per call for learnable ones (the weights move every
  /// optimizer step — and pruning is what *creates* their sparsity).
  bool RouteSparse() const;

  Tensor op_;       // (V, V)
  Tensor op_grad_;  // (V, V)
  bool learnable_;
  Tensor cached_input_;

  // Routing cache (mutable: MixPlan is const on the plan-replay path).
  mutable CsrMatrix op_csr_{1, 1};
  mutable double op_density_ = 1.0;
  mutable bool csr_valid_ = false;
  mutable bool route_logged_ = false;
};

/// \brief Applies per-sample, per-frame (V, V) operators to (N, C, T, V):
///   Y[n,c,t,v] = sum_u Ops[n,t,v,u] X[n,c,t,u].
///
/// The operators are data-dependent structure (dynamic joint weight /
/// dynamic topology) and are treated as constants in backward, exactly as
/// the non-differentiable K-NN / K-means selection requires.
class DynamicVertexMix : public Layer {
 public:
  DynamicVertexMix() = default;

  /// Must be called before Forward with operators of shape (N, T, V, V)
  /// matching the upcoming input's N, T, V.
  void SetOperators(Tensor ops);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::string name() const override { return "DynamicVertexMix"; }

  /// Plan-replay entry: applies explicit per-frame operators `ops`
  /// (N, T, V, V) to `input` (N, C, T, V) into the pre-shaped `out`.
  /// The layer forward delegates here with its stashed `ops_`, so both
  /// paths share one loop (bit-identical). Plans pass the operator slot
  /// directly instead of going through `SetOperators`.
  void MixPlan(const Tensor& input, const Tensor& ops, Tensor* out) const;

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  Tensor ops_;  // (N, T, V, V)

  /// Per-frame CSR scratch for the routed path; capacity is reused
  /// across frames and steps (mutable: MixPlan is const).
  mutable CsrMatrix frame_csr_{1, 1};
  mutable bool route_logged_ = false;
};

/// \brief Hypergraph aggregation with *learnable hyperedge weights* — the
/// W of Eq. 5 treated as a trainable parameter instead of fixed at 1
/// (the "semi-dynamic hypergraph" idea of the paper's reference [23]).
///
/// The operator is factored as  Y = L diag(w) R X  with
///   L = Dv^{-1/2} H De^{-1}   (V, E)
///   R = H^T Dv^{-1/2}         (E, V)
/// where the degree normalizations are computed from the initial unit
/// weights (the standard approximation that keeps the factorization
/// linear in w). `w` is initialized to 1, so an untrained layer equals
/// the fixed `NormalizedHypergraphOperator` aggregation exactly.
class LearnableHyperedgeMix : public Layer {
 public:
  explicit LearnableHyperedgeMix(const Hypergraph& hypergraph);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  void ForwardInto(const Tensor& input, Workspace& ws, Tensor* out) override;
  void BackwardInto(const Tensor& grad_output, Workspace& ws,
                    Tensor* grad_input) override;
  std::vector<ParamRef> Params() override;
  std::string name() const override;

  const Tensor& edge_weights() const { return weights_; }

 private:
  Tensor ForwardImpl(const Tensor& input, Workspace* ws);
  Tensor BackwardImpl(const Tensor& grad_output, Workspace* ws);

  Tensor left_;      // (V, E)
  Tensor right_;     // (E, V)
  Tensor weights_;   // (E), learnable
  Tensor weights_grad_;
  Tensor cached_edge_features_;  // Z = R X per leading row, (rows, E)
  Shape cached_input_shape_;

  // CSR images of the fixed incidence factors, built once in the
  // constructor; `incidence_density_` is the cached routing probe.
  CsrMatrix left_csr_{1, 1};
  CsrMatrix right_csr_{1, 1};
  double incidence_density_ = 1.0;
  mutable bool route_logged_ = false;
};

}  // namespace dhgcn

#endif  // DHGCN_HYPERGRAPH_HYPERGRAPH_CONV_H_
