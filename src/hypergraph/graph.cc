#include "hypergraph/graph.h"

#include <cmath>

#include "base/check.h"
#include "base/string_util.h"

namespace dhgcn {

Graph::Graph(int64_t num_vertices,
             std::vector<std::pair<int64_t, int64_t>> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  DHGCN_CHECK_GT(num_vertices_, 0);
  for (const auto& [u, v] : edges_) {
    DHGCN_CHECK(u >= 0 && u < num_vertices_);
    DHGCN_CHECK(v >= 0 && v < num_vertices_);
  }
}

Result<Graph> Graph::Make(int64_t num_vertices,
                          std::vector<std::pair<int64_t, int64_t>> edges) {
  if (num_vertices <= 0) {
    return Status::InvalidArgument(
        StrCat("num_vertices must be positive, got ", num_vertices));
  }
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_vertices || v < 0 || v >= num_vertices) {
      return Status::InvalidArgument(
          StrCat("edge (", u, ", ", v, ") out of range for ", num_vertices,
                 " vertices"));
    }
  }
  return Graph(num_vertices, std::move(edges));
}

Tensor Graph::AdjacencyMatrix() const {
  Tensor a({num_vertices_, num_vertices_});
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    a.at(u, v) = 1.0f;
    a.at(v, u) = 1.0f;
  }
  return a;
}

Tensor Graph::NormalizedAdjacency() const {
  Tensor a = AdjacencyMatrix();
  // A + I.
  for (int64_t i = 0; i < num_vertices_; ++i) a.at(i, i) += 1.0f;
  std::vector<float> inv_sqrt_deg(static_cast<size_t>(num_vertices_));
  for (int64_t i = 0; i < num_vertices_; ++i) {
    float deg = 0.0f;
    for (int64_t j = 0; j < num_vertices_; ++j) deg += a.at(i, j);
    DHGCN_CHECK_GT(deg, 0.0f);
    inv_sqrt_deg[static_cast<size_t>(i)] = 1.0f / std::sqrt(deg);
  }
  Tensor out({num_vertices_, num_vertices_});
  for (int64_t i = 0; i < num_vertices_; ++i) {
    for (int64_t j = 0; j < num_vertices_; ++j) {
      out.at(i, j) = inv_sqrt_deg[static_cast<size_t>(i)] * a.at(i, j) *
                     inv_sqrt_deg[static_cast<size_t>(j)];
    }
  }
  return out;
}

std::vector<int64_t> Graph::Degrees() const {
  std::vector<int64_t> deg(static_cast<size_t>(num_vertices_), 1);  // self
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    ++deg[static_cast<size_t>(u)];
    ++deg[static_cast<size_t>(v)];
  }
  return deg;
}

}  // namespace dhgcn
