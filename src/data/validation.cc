#include "data/validation.h"

#include <cmath>

#include "base/string_util.h"

namespace dhgcn {

std::string SampleValidationReport::ToString() const {
  return StrCat("checked ", checked, " samples, quarantined ",
                quarantined(), " (", bad_coordinates,
                " non-finite coordinates, ", bad_labels,
                " out-of-range labels)");
}

bool TensorHasFiniteValues(const Tensor& tensor) {
  const float* p = tensor.data();
  for (int64_t i = 0; i < tensor.numel(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool SampleHasFiniteData(const SkeletonSample& sample) {
  return TensorHasFiniteValues(sample.data);
}

bool SampleIsValid(const SkeletonSample& sample, int64_t num_classes) {
  return sample.label >= 0 && sample.label < num_classes &&
         SampleHasFiniteData(sample);
}

SampleValidationReport QuarantineInvalidSamples(
    std::vector<SkeletonSample>* samples, int64_t num_classes) {
  SampleValidationReport report;
  report.checked = static_cast<int64_t>(samples->size());
  std::vector<SkeletonSample> kept;
  kept.reserve(samples->size());
  for (SkeletonSample& sample : *samples) {
    if (sample.label < 0 || sample.label >= num_classes) {
      ++report.bad_labels;
    } else if (!SampleHasFiniteData(sample)) {
      ++report.bad_coordinates;
    } else {
      kept.push_back(std::move(sample));
    }
  }
  *samples = std::move(kept);
  return report;
}

SampleValidationReport QuarantineInvalidIndices(
    const SkeletonDataset& dataset, std::vector<int64_t>* indices) {
  SampleValidationReport report;
  report.checked = static_cast<int64_t>(indices->size());
  std::vector<int64_t> kept;
  kept.reserve(indices->size());
  for (int64_t index : *indices) {
    const SkeletonSample& sample = dataset.sample(index);
    if (sample.label < 0 || sample.label >= dataset.num_classes()) {
      ++report.bad_labels;
    } else if (!SampleHasFiniteData(sample)) {
      ++report.bad_coordinates;
    } else {
      kept.push_back(index);
    }
  }
  *indices = std::move(kept);
  return report;
}

}  // namespace dhgcn
