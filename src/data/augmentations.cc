#include "data/augmentations.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "data/transforms.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

namespace {

void CheckSample(const Tensor& sample) {
  DHGCN_CHECK_EQ(sample.ndim(), 3);
  DHGCN_CHECK_GE(sample.dim(0), 3);  // x, y, z coordinate channels
}

}  // namespace

Tensor RandomRotationY(const Tensor& sample, float max_angle_rad, Rng& rng) {
  CheckSample(sample);
  float angle = rng.Uniform(-max_angle_rad, max_angle_rad);
  float cos_a = std::cos(angle), sin_a = std::sin(angle);
  Tensor out = sample.Clone();
  int64_t t = sample.dim(1), v = sample.dim(2);
  for (int64_t frame = 0; frame < t; ++frame) {
    for (int64_t j = 0; j < v; ++j) {
      float x = sample.at(0, frame, j);
      float z = sample.at(2, frame, j);
      out.at(0, frame, j) = cos_a * x + sin_a * z;
      out.at(2, frame, j) = -sin_a * x + cos_a * z;
    }
  }
  return out;
}

Tensor RandomScale(const Tensor& sample, float lo, float hi, Rng& rng) {
  CheckSample(sample);
  DHGCN_CHECK_LE(lo, hi);
  float factor = rng.Uniform(lo, hi);
  Tensor out = sample.Clone();
  int64_t plane = sample.dim(1) * sample.dim(2);
  float* data = out.data();
  for (int64_t i = 0; i < 3 * plane; ++i) data[i] *= factor;
  return out;
}

Tensor RandomTemporalCrop(const Tensor& sample, int64_t window, Rng& rng) {
  CheckSample(sample);
  int64_t t = sample.dim(1);
  DHGCN_CHECK(window >= 1 && window <= t);
  if (window == t) return sample;
  int64_t start = rng.UniformInt(0, t - window);
  Tensor cropped = Slice(sample, 1, start, window);
  return ResampleFrames(cropped, t);
}

Tensor JointJitter(const Tensor& sample, float stddev, Rng& rng) {
  CheckSample(sample);
  Tensor out = sample.Clone();
  int64_t plane = sample.dim(1) * sample.dim(2);
  float* data = out.data();
  for (int64_t i = 0; i < 3 * plane; ++i) {
    data[i] += rng.Normal(0.0f, stddev);
  }
  return out;
}

Tensor RandomJointDropout(const Tensor& sample, float p, Rng& rng) {
  CheckSample(sample);
  DHGCN_CHECK(p >= 0.0f && p < 1.0f);
  Tensor out = sample.Clone();
  int64_t c = sample.dim(0), t = sample.dim(1), v = sample.dim(2);
  for (int64_t frame = 0; frame < t; ++frame) {
    for (int64_t j = 0; j < v; ++j) {
      if (!rng.Bernoulli(p)) continue;
      for (int64_t ch = 0; ch < c; ++ch) out.at(ch, frame, j) = 0.0f;
    }
  }
  return out;
}

AugmentationPipeline& AugmentationPipeline::Add(Augmentation augmentation) {
  DHGCN_CHECK(augmentation != nullptr);
  steps_.push_back(std::move(augmentation));
  return *this;
}

Tensor AugmentationPipeline::Apply(const Tensor& sample, Rng& rng) const {
  Tensor out = sample;
  for (const Augmentation& step : steps_) out = step(out, rng);
  return out;
}

AugmentationPipeline AugmentationPipeline::Standard(int64_t num_frames) {
  AugmentationPipeline pipeline;
  pipeline
      .Add([](const Tensor& x, Rng& rng) {
        return RandomRotationY(x, 0.3f, rng);
      })
      .Add([](const Tensor& x, Rng& rng) {
        return RandomScale(x, 0.9f, 1.1f, rng);
      })
      .Add([num_frames](const Tensor& x, Rng& rng) {
        int64_t window = std::max<int64_t>(2, num_frames * 9 / 10);
        return RandomTemporalCrop(x, window, rng);
      })
      .Add([](const Tensor& x, Rng& rng) {
        return JointJitter(x, 0.005f, rng);
      });
  return pipeline;
}

}  // namespace dhgcn
