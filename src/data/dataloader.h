#ifndef DHGCN_DATA_DATALOADER_H_
#define DHGCN_DATA_DATALOADER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "data/augmentations.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// Input streams fed to a model. Joint and bone are the paper's two
/// streams (Sec. 3.5); the motion variants are the standard multi-stream
/// extension (temporal differences of each), provided for the
/// future-work experiments.
enum class InputStream {
  kJoint,
  kBone,
  kJointMotion,
  kBoneMotion,
};

std::string InputStreamName(InputStream stream);

/// \brief One minibatch: stacked sample tensors plus labels.
struct Batch {
  Tensor x;  // (N, C, T, V)
  std::vector<int64_t> labels;
  std::vector<int64_t> sample_indices;
};

/// \brief Assembles minibatches over a subset of a dataset.
///
/// Per sample: (optional) augmentation on the raw coordinates, then the
/// stream transform — root-centering (joint), joint->bone (bone), or the
/// temporal difference of either (motion streams) — then stacking into
/// (N, C, T, V). Shuffling (training) re-permutes the subset each epoch
/// with the provided RNG; the final short batch is kept.
///
/// Invalid samples (non-finite coordinates, labels outside the class
/// range) are quarantined at construction: their indices are dropped and
/// the count is logged, so one corrupt capture cannot poison training.
class DataLoader {
 public:
  DataLoader(const SkeletonDataset* dataset, std::vector<int64_t> indices,
             int64_t batch_size, InputStream stream, bool shuffle,
             Rng rng = Rng(1));

  /// Disables the 3-D view normalization (enabled by default for NTU-like
  /// layouts); exposed for the preprocessing ablation bench.
  void SetViewNormalization(bool enabled) { view_normalize_ = enabled; }

  /// Enables training-time augmentation (applied before the stream
  /// transform, on the raw coordinates). Typically only set on training
  /// loaders.
  void SetAugmentation(AugmentationPipeline pipeline);

  /// Number of batches per epoch.
  int64_t NumBatches() const;
  int64_t NumSamples() const {
    return static_cast<int64_t>(indices_.size());
  }

  /// Starts a new epoch (reshuffles if enabled).
  void StartEpoch();

  /// Batch `b` of the current epoch, b in [0, NumBatches()).
  Batch GetBatch(int64_t b);

  /// Serializes the shuffle + augmentation RNG streams; restoring them
  /// from a checkpoint replays the exact data order of an uninterrupted
  /// run, which is what makes resumed training bit-exact.
  std::string SerializeRngState() const;
  Status DeserializeRngState(const std::string& text);

  /// Samples dropped at construction for failing ingest validation.
  int64_t quarantined_samples() const { return quarantined_samples_; }

  /// Stream transform for raw (C, T, V) sample data, without
  /// augmentation (exposed for tests and single-sample inference).
  Tensor TransformData(const Tensor& data) const;

 private:
  const SkeletonDataset* dataset_;
  std::vector<int64_t> indices_;
  std::vector<int64_t> order_;
  int64_t batch_size_;
  InputStream stream_;
  bool shuffle_;
  Rng rng_;
  std::optional<AugmentationPipeline> augmentation_;
  Rng augmentation_rng_;
  bool view_normalize_ = true;
  int64_t quarantined_samples_ = 0;
};

}  // namespace dhgcn

#endif  // DHGCN_DATA_DATALOADER_H_
