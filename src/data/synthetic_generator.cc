#include "data/synthetic_generator.h"

#include <cmath>

#include "base/check.h"
#include "base/string_util.h"

namespace dhgcn {

namespace {

constexpr float kPi = 3.14159265358979323846f;

// Joints eligible as motion drivers: extremities and head, which is where
// discriminative action motion concentrates in the real datasets.
std::vector<int64_t> DriverCandidates(const SkeletonLayout& layout) {
  if (layout.name == "ntu25") {
    return {3, 6, 7, 10, 11, 14, 15, 18, 19, 21, 23};
  }
  // kinetics18: nose, wrists, elbows, ankles, knees.
  return {0, 3, 4, 6, 7, 9, 10, 12, 13};
}

std::array<float, 3> RandomUnitVector(Rng& rng) {
  // Rejection-free: sample a Gaussian vector and normalize.
  float x = rng.Normal(), y = rng.Normal(), z = rng.Normal();
  float norm = std::sqrt(x * x + y * y + z * z) + 1e-8f;
  return {x / norm, y / norm, z / norm};
}

}  // namespace

SyntheticDataConfig KineticsLikeConfig(int64_t num_classes,
                                       int64_t samples_per_class,
                                       int64_t num_frames, uint64_t seed) {
  SyntheticDataConfig config;
  config.layout = SkeletonLayoutType::kKinetics18;
  config.num_classes = num_classes;
  config.samples_per_class = samples_per_class;
  config.num_frames = num_frames;
  config.num_subjects = 12;
  config.num_cameras = 1;  // YouTube videos: no controlled camera ids
  config.num_setups = 1;
  config.sensor_noise = 0.025f;
  config.joint_dropout_prob = 0.06f;
  config.project_2d = true;
  config.seed = seed;
  return config;
}

SyntheticDataConfig NtuLikeConfig(int64_t num_classes,
                                  int64_t samples_per_class,
                                  int64_t num_frames, uint64_t seed) {
  SyntheticDataConfig config;
  config.layout = SkeletonLayoutType::kNtu25;
  config.num_classes = num_classes;
  config.samples_per_class = samples_per_class;
  config.num_frames = num_frames;
  config.num_subjects = 8;
  config.num_cameras = 3;
  config.num_setups = 4;
  config.sensor_noise = 0.01f;
  config.joint_dropout_prob = 0.0f;
  config.project_2d = false;
  config.seed = seed;
  return config;
}

Result<SyntheticSkeletonGenerator> SyntheticSkeletonGenerator::Make(
    const SyntheticDataConfig& config) {
  if (config.num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (config.samples_per_class <= 0) {
    return Status::InvalidArgument("samples_per_class must be positive");
  }
  if (config.num_frames < 2) {
    return Status::InvalidArgument(
        "num_frames must be >= 2 (moving distance needs adjacent frames)");
  }
  if (config.num_subjects <= 0 || config.num_cameras <= 0 ||
      config.num_setups <= 0) {
    return Status::InvalidArgument(
        "subject/camera/setup counts must be positive");
  }
  if (config.joint_dropout_prob < 0.0f || config.joint_dropout_prob >= 1.0f) {
    return Status::InvalidArgument(
        StrCat("joint_dropout_prob must be in [0, 1), got ",
               config.joint_dropout_prob));
  }
  if (config.propagation_alpha <= 0.0f || config.propagation_alpha >= 1.0f) {
    return Status::InvalidArgument("propagation_alpha must be in (0, 1)");
  }
  return SyntheticSkeletonGenerator(config);
}

SyntheticSkeletonGenerator::SyntheticSkeletonGenerator(
    const SyntheticDataConfig& config)
    : config_(config), layout_(&GetSkeletonLayout(config.layout)) {
  tree_distances_ = TreeDistances(*layout_);

  // Class prototypes, deterministic in the dataset seed.
  std::vector<int64_t> candidates = DriverCandidates(*layout_);
  prototypes_.reserve(static_cast<size_t>(config_.num_classes));
  for (int64_t label = 0; label < config_.num_classes; ++label) {
    Rng rng(config_.seed * 7919ULL + static_cast<uint64_t>(label) + 1ULL);
    MotionPrototype proto;
    int64_t num_drivers = rng.UniformInt(1, 3);
    std::vector<int64_t> picks = rng.SampleWithoutReplacement(
        static_cast<int64_t>(candidates.size()), num_drivers);
    // Frequencies come from a discrete grid so that class identities stay
    // separable under the per-subject speed variation (+-8%); continuous
    // frequencies would alias neighbouring classes.
    static constexpr float kFrequencyGrid[] = {1.0f, 1.75f, 2.5f, 3.25f};
    for (int64_t pick : picks) {
      MotionDriver driver;
      driver.joint = candidates[static_cast<size_t>(pick)];
      driver.frequency =
          kFrequencyGrid[rng.UniformInt(0, 3)];
      driver.amplitude = rng.Uniform(0.15f, 0.35f);
      driver.phase = rng.Uniform(0.0f, 2.0f * kPi);
      driver.direction = RandomUnitVector(rng);
      proto.drivers.push_back(driver);
    }
    // Roughly a third of the classes include whole-body translation
    // (walking/running-like actions).
    if (rng.Bernoulli(0.33f)) {
      std::array<float, 3> dir = RandomUnitVector(rng);
      float speed =
          rng.Uniform(0.15f, 0.5f) / static_cast<float>(config_.num_frames);
      proto.global_velocity = {dir[0] * speed, dir[1] * speed * 0.2f,
                               dir[2] * speed};
    }
    prototypes_.push_back(std::move(proto));
  }

  // Per-subject body parameters.
  Rng subject_rng(config_.seed * 104729ULL + 17ULL);
  for (int64_t s = 0; s < config_.num_subjects; ++s) {
    subject_scale_.push_back(subject_rng.Uniform(0.88f, 1.12f));
    subject_amplitude_.push_back(subject_rng.Uniform(0.8f, 1.2f));
    subject_speed_.push_back(subject_rng.Uniform(0.92f, 1.08f));
  }
}

const MotionPrototype& SyntheticSkeletonGenerator::PrototypeFor(
    int64_t label) const {
  DHGCN_CHECK(label >= 0 && label < config_.num_classes);
  return prototypes_[static_cast<size_t>(label)];
}

SkeletonSample SyntheticSkeletonGenerator::GenerateSample(
    int64_t label, int64_t subject, int64_t camera, int64_t setup,
    uint64_t instance_seed) const {
  DHGCN_CHECK(label >= 0 && label < config_.num_classes);
  DHGCN_CHECK(subject >= 0 && subject < config_.num_subjects);
  DHGCN_CHECK(camera >= 0 && camera < config_.num_cameras);
  DHGCN_CHECK(setup >= 0 && setup < config_.num_setups);

  const MotionPrototype& proto = prototypes_[static_cast<size_t>(label)];
  int64_t v = layout_->num_joints;
  int64_t t_frames = config_.num_frames;
  Rng rng(instance_seed * 2654435761ULL + 99991ULL);

  float scale = subject_scale_[static_cast<size_t>(subject)];
  float amp = subject_amplitude_[static_cast<size_t>(subject)];
  float speed = subject_speed_[static_cast<size_t>(subject)];
  float sample_phase = rng.Uniform(0.0f, 2.0f * kPi);

  // Camera extrinsics: azimuth spread across cameras (the NTU rig uses
  // three cameras at different horizontal angles), small random jitter.
  float azimuth =
      (static_cast<float>(camera) -
       static_cast<float>(config_.num_cameras - 1) / 2.0f) *
          (kPi / 4.0f) +
      rng.Uniform(-0.05f, 0.05f);
  float elevation = rng.Uniform(-0.08f, 0.08f);
  // Setup: subject distance/height offset (NTU-120 varies setups).
  float setup_depth = 2.5f + 0.35f * static_cast<float>(setup);
  float setup_height = 0.05f * static_cast<float>(setup % 3);

  float cos_a = std::cos(azimuth), sin_a = std::sin(azimuth);
  float cos_e = std::cos(elevation), sin_e = std::sin(elevation);

  Tensor data({3, t_frames, v});
  // Per-driver propagation weight for each joint.
  std::vector<std::vector<float>> weights(proto.drivers.size());
  for (size_t d = 0; d < proto.drivers.size(); ++d) {
    weights[d].resize(static_cast<size_t>(v));
    for (int64_t j = 0; j < v; ++j) {
      float dist = tree_distances_.at(proto.drivers[d].joint, j);
      weights[d][static_cast<size_t>(j)] =
          std::pow(config_.propagation_alpha, dist);
    }
  }

  for (int64_t frame = 0; frame < t_frames; ++frame) {
    float time = static_cast<float>(frame) /
                 static_cast<float>(t_frames);
    for (int64_t j = 0; j < v; ++j) {
      float px = layout_->rest_pose.at(j, 0) * scale +
                 proto.global_velocity[0] * static_cast<float>(frame);
      float py = layout_->rest_pose.at(j, 1) * scale +
                 proto.global_velocity[1] * static_cast<float>(frame);
      float pz = layout_->rest_pose.at(j, 2) * scale +
                 proto.global_velocity[2] * static_cast<float>(frame);
      for (size_t d = 0; d < proto.drivers.size(); ++d) {
        const MotionDriver& driver = proto.drivers[d];
        float w = weights[d][static_cast<size_t>(j)];
        float osc = amp * driver.amplitude * w *
                    std::sin(2.0f * kPi * driver.frequency * speed * time +
                             driver.phase + sample_phase);
        px += osc * driver.direction[0];
        py += osc * driver.direction[1];
        pz += osc * driver.direction[2];
      }
      // Sensor noise in world space.
      px += rng.Normal(0.0f, config_.sensor_noise);
      py += rng.Normal(0.0f, config_.sensor_noise);
      pz += rng.Normal(0.0f, config_.sensor_noise);
      // Camera rotation (azimuth about y, then elevation about x) and
      // translation to the setup's viewing distance.
      float rx = cos_a * px + sin_a * pz;
      float rz = -sin_a * px + cos_a * pz;
      float ry = cos_e * py - sin_e * rz;
      rz = sin_e * py + cos_e * rz;
      ry += setup_height;
      rz += setup_depth;

      bool dropped = config_.joint_dropout_prob > 0.0f &&
                     rng.Bernoulli(config_.joint_dropout_prob);
      if (config_.project_2d) {
        // Pinhole projection plus a confidence channel, mimicking the
        // OpenPose output format of Kinetics-Skeleton.
        float inv_depth = 1.0f / std::max(rz, 0.5f);
        float confidence = dropped ? 0.0f : rng.Uniform(0.6f, 1.0f);
        data.at(0, frame, j) = dropped ? 0.0f : rx * inv_depth;
        data.at(1, frame, j) = dropped ? 0.0f : ry * inv_depth;
        data.at(2, frame, j) = confidence;
      } else {
        data.at(0, frame, j) = dropped ? 0.0f : rx;
        data.at(1, frame, j) = dropped ? 0.0f : ry;
        data.at(2, frame, j) = dropped ? 0.0f : rz;
      }
    }
  }

  SkeletonSample sample;
  sample.data = std::move(data);
  sample.label = label;
  sample.subject = subject;
  sample.camera = camera;
  sample.setup = setup;
  return sample;
}

std::vector<SkeletonSample> SyntheticSkeletonGenerator::GenerateAll() const {
  std::vector<SkeletonSample> samples;
  samples.reserve(
      static_cast<size_t>(config_.num_classes * config_.samples_per_class));
  // Subject cycles deterministically (balanced X-Sub splits even for
  // small datasets); camera and setup are drawn per instance so every
  // protocol's test half is populated at any dataset size.
  uint64_t instance = 0;
  for (int64_t label = 0; label < config_.num_classes; ++label) {
    for (int64_t i = 0; i < config_.samples_per_class; ++i, ++instance) {
      Rng meta_rng(config_.seed * 31337ULL + instance * 13ULL + 5ULL);
      int64_t subject = instance % config_.num_subjects;
      int64_t camera = meta_rng.UniformInt(0, config_.num_cameras - 1);
      int64_t setup = meta_rng.UniformInt(0, config_.num_setups - 1);
      samples.push_back(GenerateSample(label, subject, camera, setup,
                                       config_.seed + instance * 31ULL));
    }
  }
  return samples;
}

}  // namespace dhgcn
