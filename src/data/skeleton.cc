#include "data/skeleton.h"

#include <deque>

#include "base/check.h"

namespace dhgcn {

namespace {

// Builds parents/bones/rest pose for the 25-joint NTU RGB+D skeleton.
// Joint indices are 0-based versions of the Kinect v2 order:
//  0 spine-base  1 spine-mid    2 neck        3 head
//  4 l-shoulder  5 l-elbow      6 l-wrist     7 l-hand
//  8 r-shoulder  9 r-elbow     10 r-wrist    11 r-hand
// 12 l-hip      13 l-knee      14 l-ankle    15 l-foot
// 16 r-hip      17 r-knee      18 r-ankle    19 r-foot
// 20 spine-shoulder            21 l-hand-tip 22 l-thumb
// 23 r-hand-tip 24 r-thumb
SkeletonLayout MakeNtu25() {
  SkeletonLayout layout;
  layout.name = "ntu25";
  layout.num_joints = 25;
  layout.root = 20;
  layout.joint_names = {
      "spine_base", "spine_mid",  "neck",       "head",       "l_shoulder",
      "l_elbow",    "l_wrist",    "l_hand",     "r_shoulder", "r_elbow",
      "r_wrist",    "r_hand",     "l_hip",      "l_knee",     "l_ankle",
      "l_foot",     "r_hip",      "r_knee",     "r_ankle",    "r_foot",
      "spine_shoulder", "l_hand_tip", "l_thumb", "r_hand_tip", "r_thumb"};
  layout.parents = {
      /*0*/ 1,   /*1*/ 20, /*2*/ 20, /*3*/ 2,  /*4*/ 20,
      /*5*/ 4,   /*6*/ 5,  /*7*/ 6,  /*8*/ 20, /*9*/ 8,
      /*10*/ 9,  /*11*/ 10, /*12*/ 0, /*13*/ 12, /*14*/ 13,
      /*15*/ 14, /*16*/ 0,  /*17*/ 16, /*18*/ 17, /*19*/ 18,
      /*20*/ 20, /*21*/ 7,  /*22*/ 7,  /*23*/ 11, /*24*/ 11};
  const float pose[25][3] = {
      {0.00f, 0.00f, 0.00f},    // spine_base
      {0.00f, 0.25f, 0.00f},    // spine_mid
      {0.00f, 0.55f, 0.00f},    // neck
      {0.00f, 0.70f, 0.02f},    // head
      {-0.20f, 0.45f, 0.00f},   // l_shoulder
      {-0.25f, 0.18f, 0.00f},   // l_elbow
      {-0.27f, -0.05f, 0.00f},  // l_wrist
      {-0.28f, -0.12f, 0.00f},  // l_hand
      {0.20f, 0.45f, 0.00f},    // r_shoulder
      {0.25f, 0.18f, 0.00f},    // r_elbow
      {0.27f, -0.05f, 0.00f},   // r_wrist
      {0.28f, -0.12f, 0.00f},   // r_hand
      {-0.10f, -0.05f, 0.00f},  // l_hip
      {-0.12f, -0.50f, 0.00f},  // l_knee
      {-0.13f, -0.90f, 0.00f},  // l_ankle
      {-0.13f, -0.95f, 0.10f},  // l_foot
      {0.10f, -0.05f, 0.00f},   // r_hip
      {0.12f, -0.50f, 0.00f},   // r_knee
      {0.13f, -0.90f, 0.00f},   // r_ankle
      {0.13f, -0.95f, 0.10f},   // r_foot
      {0.00f, 0.45f, 0.00f},    // spine_shoulder
      {-0.29f, -0.18f, 0.00f},  // l_hand_tip
      {-0.24f, -0.14f, 0.03f},  // l_thumb
      {0.29f, -0.18f, 0.00f},   // r_hand_tip
      {0.24f, -0.14f, 0.03f},   // r_thumb
  };
  layout.rest_pose = Tensor({25, 3});
  for (int64_t j = 0; j < 25; ++j) {
    for (int64_t d = 0; d < 3; ++d) layout.rest_pose.at(j, d) = pose[j][d];
  }
  for (int64_t j = 0; j < layout.num_joints; ++j) {
    if (j != layout.root) {
      layout.bones.emplace_back(j, layout.parents[static_cast<size_t>(j)]);
    }
  }
  return layout;
}

// 18-joint OpenPose skeleton of Kinetics-Skeleton:
//  0 nose   1 neck   2 r-shoulder  3 r-elbow  4 r-wrist
//  5 l-shoulder 6 l-elbow 7 l-wrist 8 r-hip 9 r-knee 10 r-ankle
// 11 l-hip 12 l-knee 13 l-ankle 14 r-eye 15 l-eye 16 r-ear 17 l-ear
SkeletonLayout MakeKinetics18() {
  SkeletonLayout layout;
  layout.name = "kinetics18";
  layout.num_joints = 18;
  layout.root = 1;
  layout.joint_names = {"nose",    "neck",    "r_shoulder", "r_elbow",
                        "r_wrist", "l_shoulder", "l_elbow", "l_wrist",
                        "r_hip",   "r_knee",  "r_ankle",    "l_hip",
                        "l_knee",  "l_ankle", "r_eye",      "l_eye",
                        "r_ear",   "l_ear"};
  layout.parents = {/*0*/ 1, /*1*/ 1, /*2*/ 1,  /*3*/ 2,  /*4*/ 3,
                    /*5*/ 1, /*6*/ 5, /*7*/ 6,  /*8*/ 2,  /*9*/ 8,
                    /*10*/ 9, /*11*/ 5, /*12*/ 11, /*13*/ 12,
                    /*14*/ 0, /*15*/ 0, /*16*/ 14, /*17*/ 15};
  const float pose[18][3] = {
      {0.00f, 0.65f, 0.05f},   // nose
      {0.00f, 0.50f, 0.00f},   // neck
      {0.18f, 0.50f, 0.00f},   // r_shoulder
      {0.23f, 0.25f, 0.00f},   // r_elbow
      {0.25f, 0.02f, 0.00f},   // r_wrist
      {-0.18f, 0.50f, 0.00f},  // l_shoulder
      {-0.23f, 0.25f, 0.00f},  // l_elbow
      {-0.25f, 0.02f, 0.00f},  // l_wrist
      {0.10f, 0.00f, 0.00f},   // r_hip
      {0.12f, -0.45f, 0.00f},  // r_knee
      {0.13f, -0.90f, 0.00f},  // r_ankle
      {-0.10f, 0.00f, 0.00f},  // l_hip
      {-0.12f, -0.45f, 0.00f}, // l_knee
      {-0.13f, -0.90f, 0.00f}, // l_ankle
      {0.03f, 0.70f, 0.05f},   // r_eye
      {-0.03f, 0.70f, 0.05f},  // l_eye
      {0.07f, 0.67f, 0.00f},   // r_ear
      {-0.07f, 0.67f, 0.00f},  // l_ear
  };
  layout.rest_pose = Tensor({18, 3});
  for (int64_t j = 0; j < 18; ++j) {
    for (int64_t d = 0; d < 3; ++d) layout.rest_pose.at(j, d) = pose[j][d];
  }
  for (int64_t j = 0; j < layout.num_joints; ++j) {
    if (j != layout.root) {
      layout.bones.emplace_back(j, layout.parents[static_cast<size_t>(j)]);
    }
  }
  return layout;
}

}  // namespace

const SkeletonLayout& GetSkeletonLayout(SkeletonLayoutType type) {
  // Function-local static references; never destroyed (per style guide's
  // static-storage rules for non-trivially-destructible objects).
  switch (type) {
    case SkeletonLayoutType::kNtu25: {
      // lint: allow-naked-new — intentionally leaked static storage.
      static const SkeletonLayout& layout = *new SkeletonLayout(MakeNtu25());
      return layout;
    }
    case SkeletonLayoutType::kKinetics18: {
      // lint: allow-naked-new — intentionally leaked static storage.
      static const SkeletonLayout& layout =
          *new SkeletonLayout(MakeKinetics18());
      return layout;
    }
  }
  DHGCN_CHECK(false);
  // lint: allow-naked-new — intentionally leaked static storage.
  static const SkeletonLayout& unreachable = *new SkeletonLayout();
  return unreachable;
}

Graph SkeletonGraph(const SkeletonLayout& layout) {
  return Graph(layout.num_joints, layout.bones);
}

Tensor TreeDistances(const SkeletonLayout& layout) {
  int64_t v = layout.num_joints;
  // BFS from every joint over the bone adjacency.
  std::vector<std::vector<int64_t>> adj(static_cast<size_t>(v));
  for (const auto& [child, parent] : layout.bones) {
    adj[static_cast<size_t>(child)].push_back(parent);
    adj[static_cast<size_t>(parent)].push_back(child);
  }
  Tensor dist = Tensor::Full({v, v}, -1.0f);
  for (int64_t src = 0; src < v; ++src) {
    std::deque<int64_t> queue = {src};
    dist.at(src, src) = 0.0f;
    while (!queue.empty()) {
      int64_t node = queue.front();
      queue.pop_front();
      for (int64_t next : adj[static_cast<size_t>(node)]) {
        if (dist.at(src, next) < 0.0f) {
          dist.at(src, next) = dist.at(src, node) + 1.0f;
          queue.push_back(next);
        }
      }
    }
  }
  // The skeleton tree is connected, so every distance must be set.
  for (int64_t i = 0; i < v * v; ++i) DHGCN_CHECK_GE(dist.flat(i), 0.0f);
  return dist;
}

std::vector<std::vector<int64_t>> PartPartition(const SkeletonLayout& layout,
                                                int64_t num_parts) {
  DHGCN_CHECK(num_parts == 2 || num_parts == 4 || num_parts == 6);
  if (layout.name == "ntu25") {
    const std::vector<int64_t> torso = {0, 1, 2, 3, 20};
    const std::vector<int64_t> left_arm = {20, 4, 5, 6, 7, 21, 22};
    const std::vector<int64_t> right_arm = {20, 8, 9, 10, 11, 23, 24};
    const std::vector<int64_t> left_leg = {0, 12, 13, 14, 15};
    const std::vector<int64_t> right_leg = {0, 16, 17, 18, 19};
    if (num_parts == 2) {
      return {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 20, 21, 22, 23, 24},
              {0, 1, 12, 13, 14, 15, 16, 17, 18, 19}};
    }
    if (num_parts == 4) {
      std::vector<int64_t> legs = {0, 12, 13, 14, 15, 16, 17, 18, 19};
      return {torso, left_arm, right_arm, legs};
    }
    // Six parts: limbs, torso, and the cross-extremity part (hands+feet),
    // the paper's "unnatural connections such as hands and legs".
    return {torso, left_arm, right_arm, left_leg, right_leg,
            {7, 11, 15, 19, 21, 23}};
  }
  DHGCN_CHECK(layout.name == "kinetics18");
  const std::vector<int64_t> head = {0, 1, 14, 15, 16, 17};
  const std::vector<int64_t> left_arm = {1, 5, 6, 7};
  const std::vector<int64_t> right_arm = {1, 2, 3, 4};
  const std::vector<int64_t> left_leg = {1, 11, 12, 13};
  const std::vector<int64_t> right_leg = {1, 8, 9, 10};
  if (num_parts == 2) {
    return {{0, 1, 2, 3, 4, 5, 6, 7, 14, 15, 16, 17},
            {1, 8, 9, 10, 11, 12, 13}};
  }
  if (num_parts == 4) {
    return {head, left_arm, right_arm, {1, 8, 9, 10, 11, 12, 13}};
  }
  return {head, left_arm, right_arm, left_leg, right_leg, {4, 7, 10, 13}};
}

}  // namespace dhgcn
