#ifndef DHGCN_DATA_SYNTHETIC_GENERATOR_H_
#define DHGCN_DATA_SYNTHETIC_GENERATOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "base/result.h"
#include "base/rng.h"
#include "data/skeleton.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief One skeleton sequence with its annotation.
///
/// `data` is (C=3, T, V): x/y/z joint coordinates for NTU-style data, or
/// x/y/confidence for Kinetics-style (OpenPose) data.
struct SkeletonSample {
  Tensor data;
  int64_t label = 0;
  int64_t subject = 0;
  int64_t camera = 0;
  int64_t setup = 0;
};

/// \brief Parameters of the synthetic skeleton-action generator.
///
/// This generator replaces the (non-redistributable) NTU RGB+D and
/// Kinetics-Skeleton recordings. Each action class is a deterministic
/// motion prototype: a set of "driver" joints with class-specific
/// oscillation frequency/amplitude/direction whose displacement propagates
/// along the skeleton tree with decaying strength — so joint correlations
/// follow the body structure, which is exactly the signal that graph- and
/// hypergraph-structured models exploit. Samples vary by subject (body
/// scale, motion amplitude, speed), camera (azimuth/elevation rotation and
/// translation), setup (distance/height), phase, and sensor noise.
struct SyntheticDataConfig {
  SkeletonLayoutType layout = SkeletonLayoutType::kNtu25;
  int64_t num_classes = 10;
  int64_t samples_per_class = 20;
  int64_t num_frames = 32;
  int64_t num_subjects = 8;
  int64_t num_cameras = 3;
  int64_t num_setups = 4;
  /// Std-dev of additive Gaussian coordinate noise (meters).
  float sensor_noise = 0.01f;
  /// Per-(frame, joint) probability of zeroing a joint — models OpenPose
  /// detection failures in Kinetics-Skeleton. 0 for NTU-style data.
  float joint_dropout_prob = 0.0f;
  /// Kinetics-style output: perspective-projected (x, y) plus a
  /// confidence channel instead of (x, y, z).
  bool project_2d = false;
  /// Tree-distance attenuation of driver motion (0, 1).
  float propagation_alpha = 0.55f;
  uint64_t seed = 42;
};

/// Kinetics-Skeleton-like preset: 18-joint layout, 2-D + confidence data,
/// joint dropout and heavier noise (the paper's "defective" skeletons).
SyntheticDataConfig KineticsLikeConfig(int64_t num_classes,
                                       int64_t samples_per_class,
                                       int64_t num_frames, uint64_t seed);

/// NTU-RGB+D-like preset: 25-joint layout, clean 3-D data.
SyntheticDataConfig NtuLikeConfig(int64_t num_classes,
                                  int64_t samples_per_class,
                                  int64_t num_frames, uint64_t seed);

/// \brief One driver joint of a motion prototype.
struct MotionDriver {
  int64_t joint = 0;
  /// Oscillation cycles over the whole sequence.
  float frequency = 1.0f;
  /// Peak displacement in meters.
  float amplitude = 0.1f;
  float phase = 0.0f;
  std::array<float, 3> direction = {0.0f, 0.0f, 0.0f};
};

/// \brief Deterministic per-class motion prototype.
struct MotionPrototype {
  std::vector<MotionDriver> drivers;
  /// Whole-body translation per frame (walking-like classes), meters.
  std::array<float, 3> global_velocity = {0.0f, 0.0f, 0.0f};
};

/// \brief Generates reproducible synthetic skeleton sequences.
class SyntheticSkeletonGenerator {
 public:
  /// Validates the config (class/subject/frame counts, probabilities).
  static Result<SyntheticSkeletonGenerator> Make(
      const SyntheticDataConfig& config);

  explicit SyntheticSkeletonGenerator(const SyntheticDataConfig& config);

  const SyntheticDataConfig& config() const { return config_; }
  const SkeletonLayout& layout() const { return *layout_; }

  /// The motion prototype of a class (deterministic in config().seed).
  const MotionPrototype& PrototypeFor(int64_t label) const;

  /// Generates one sample for (label, subject, camera, setup) using
  /// `instance_seed` for the per-sample variation (phase, noise, dropout).
  SkeletonSample GenerateSample(int64_t label, int64_t subject,
                                int64_t camera, int64_t setup,
                                uint64_t instance_seed) const;

  /// Generates the full dataset: samples_per_class per class, cycling
  /// subjects/cameras/setups uniformly.
  std::vector<SkeletonSample> GenerateAll() const;

 private:
  SyntheticDataConfig config_;
  const SkeletonLayout* layout_;
  Tensor tree_distances_;                     // (V, V)
  std::vector<MotionPrototype> prototypes_;   // per class
  std::vector<float> subject_scale_;          // per subject
  std::vector<float> subject_amplitude_;
  std::vector<float> subject_speed_;
};

}  // namespace dhgcn

#endif  // DHGCN_DATA_SYNTHETIC_GENERATOR_H_
