#ifndef DHGCN_DATA_CSV_IO_H_
#define DHGCN_DATA_CSV_IO_H_

#include <string>

#include "base/result.h"
#include "data/dataset.h"

namespace dhgcn {

/// \brief Text export/import of skeleton datasets.
///
/// Format: a `#`-prefixed header line carrying the metadata, then one
/// CSV row per sample:
///
///   # dhgcn-dataset v1 layout=<ntu25|kinetics18> classes=<K> frames=<T>
///   label,subject,camera,setup,x(0,0,0),...   (3*T*V data columns,
///                                              row-major C,T,V order)
///
/// Intended for interoperability (plotting, loading real exported data);
/// the binary checkpoint format in io/serialization.h is for weights.

Status SaveDatasetCsv(const std::string& path,
                      const SkeletonDataset& dataset);

Result<SkeletonDataset> LoadDatasetCsv(const std::string& path);

}  // namespace dhgcn

#endif  // DHGCN_DATA_CSV_IO_H_
