#ifndef DHGCN_DATA_AUGMENTATIONS_H_
#define DHGCN_DATA_AUGMENTATIONS_H_

#include <functional>
#include <vector>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Training-time skeleton augmentations — the standard tricks of
/// skeleton-action pipelines (random view rotation, scaling, temporal
/// cropping, coordinate jitter, joint dropout). All functions take a
/// (C, T, V) sample with C >= 3 coordinate channels and return a new
/// tensor of the same joint count.

/// Rotates coordinates about the y (vertical) axis by a uniform random
/// angle in [-max_angle_rad, max_angle_rad].
Tensor RandomRotationY(const Tensor& sample, float max_angle_rad, Rng& rng);

/// Scales all coordinates by a uniform factor in [lo, hi].
Tensor RandomScale(const Tensor& sample, float lo, float hi, Rng& rng);

/// Crops a random temporal window of `window` frames and resamples it
/// back to the original length (window <= T required).
Tensor RandomTemporalCrop(const Tensor& sample, int64_t window, Rng& rng);

/// Adds i.i.d. N(0, stddev^2) noise to every coordinate.
Tensor JointJitter(const Tensor& sample, float stddev, Rng& rng);

/// Zeroes each (frame, joint) column independently with probability p —
/// simulates detector dropouts; also a regularizer.
Tensor RandomJointDropout(const Tensor& sample, float p, Rng& rng);

/// One augmentation step: sample -> augmented sample.
using Augmentation = std::function<Tensor(const Tensor&, Rng&)>;

/// \brief Ordered list of augmentations applied to training samples.
class AugmentationPipeline {
 public:
  AugmentationPipeline() = default;

  AugmentationPipeline& Add(Augmentation augmentation);

  /// Applies all steps in order.
  Tensor Apply(const Tensor& sample, Rng& rng) const;

  size_t size() const { return steps_.size(); }

  /// The configuration used by the training harness: small rotation,
  /// +-10% scale, 90% temporal crop, light jitter.
  static AugmentationPipeline Standard(int64_t num_frames);

 private:
  std::vector<Augmentation> steps_;
};

}  // namespace dhgcn

#endif  // DHGCN_DATA_AUGMENTATIONS_H_
