#ifndef DHGCN_DATA_SKELETON_H_
#define DHGCN_DATA_SKELETON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hypergraph/graph.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// Skeleton layouts used by the paper's datasets.
enum class SkeletonLayoutType {
  /// 25-joint Kinect v2 skeleton of NTU RGB+D 60/120.
  kNtu25,
  /// 18-joint OpenPose skeleton of Kinetics-Skeleton 400.
  kKinetics18,
};

/// \brief Static description of a skeleton: joints, bone tree, rest pose.
struct SkeletonLayout {
  std::string name;
  int64_t num_joints = 0;
  /// Bone list as (child, parent) pairs; the root has no entry.
  std::vector<std::pair<int64_t, int64_t>> bones;
  /// parent[j] for every joint; parent[root] == root.
  std::vector<int64_t> parents;
  int64_t root = 0;
  std::vector<std::string> joint_names;
  /// Canonical standing rest pose, shape (V, 3), in meters,
  /// x right / y up / z toward camera.
  Tensor rest_pose;
};

/// Returns the (immutable, lazily constructed) layout singleton.
const SkeletonLayout& GetSkeletonLayout(SkeletonLayoutType type);

/// The natural-connection skeleton graph of a layout (Sec. 3.1).
Graph SkeletonGraph(const SkeletonLayout& layout);

/// Tree distance (number of bones) between every pair of joints,
/// shape (V, V); used by the synthetic generator's motion propagation.
Tensor TreeDistances(const SkeletonLayout& layout);

/// \brief Body-part partition of the joints for PB-GCN / PB-HGCN
/// (Thakkar & Narayanan). Supported part counts: 2, 4, 6. Parts may share
/// boundary joints (shoulders/hips), as in PB-GCN, and always cover all
/// joints.
std::vector<std::vector<int64_t>> PartPartition(const SkeletonLayout& layout,
                                                int64_t num_parts);

}  // namespace dhgcn

#endif  // DHGCN_DATA_SKELETON_H_
