#include "data/csv_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/logging.h"
#include "base/string_util.h"
#include "data/validation.h"

namespace dhgcn {

namespace {

Result<SkeletonLayoutType> ParseLayoutName(const std::string& name) {
  if (name == "ntu25") return SkeletonLayoutType::kNtu25;
  if (name == "kinetics18") return SkeletonLayoutType::kKinetics18;
  return Status::InvalidArgument(StrCat("unknown layout: ", name));
}

std::string LayoutName(SkeletonLayoutType type) {
  return type == SkeletonLayoutType::kNtu25 ? "ntu25" : "kinetics18";
}

}  // namespace

Status SaveDatasetCsv(const std::string& path,
                      const SkeletonDataset& dataset) {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("refusing to save an empty dataset");
  }
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) {
    return Status::IOError(StrCat("cannot open ", path, " for writing"));
  }
  int64_t frames = dataset.sample(0).data.dim(1);
  os << "# dhgcn-dataset v1 layout=" << LayoutName(dataset.layout_type())
     << " classes=" << dataset.num_classes() << " frames=" << frames
     << "\n";
  char buf[32];
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const SkeletonSample& sample = dataset.sample(i);
    if (sample.data.dim(1) != frames) {
      return Status::InvalidArgument(
          "CSV export requires equal frame counts across samples");
    }
    os << sample.label << ',' << sample.subject << ',' << sample.camera
       << ',' << sample.setup;
    const float* data = sample.data.data();
    for (int64_t j = 0; j < sample.data.numel(); ++j) {
      std::snprintf(buf, sizeof(buf), "%.6g", static_cast<double>(data[j]));
      os << ',' << buf;
    }
    os << "\n";
  }
  os.flush();
  if (!os.good()) return Status::IOError(StrCat("write failed for ", path));
  return Status::OK();
}

Result<SkeletonDataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return Status::IOError(StrCat("cannot open ", path));
  }
  std::string header;
  if (!std::getline(is, header) ||
      header.rfind("# dhgcn-dataset v1 ", 0) != 0) {
    return Status::IOError("missing dhgcn-dataset v1 header");
  }
  // Parse "key=value" tokens from the header.
  SkeletonLayoutType layout_type = SkeletonLayoutType::kNtu25;
  int64_t num_classes = -1, frames = -1;
  {
    std::istringstream tokens(header.substr(std::string("# ").size()));
    std::string token;
    while (tokens >> token) {
      size_t eq = token.find('=');
      if (eq == std::string::npos) continue;
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "layout") {
        DHGCN_ASSIGN_OR_RETURN(layout_type, ParseLayoutName(value));
      } else if (key == "classes") {
        num_classes = std::atoll(value.c_str());
      } else if (key == "frames") {
        frames = std::atoll(value.c_str());
      }
    }
  }
  if (num_classes <= 0 || frames <= 0) {
    return Status::IOError("header missing classes= or frames=");
  }
  const SkeletonLayout& layout = GetSkeletonLayout(layout_type);
  int64_t expected_values = 4 + 3 * frames * layout.num_joints;

  std::vector<SkeletonSample> samples;
  std::string line;
  int64_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = StrSplit(line, ',');
    if (static_cast<int64_t>(fields.size()) != expected_values) {
      return Status::IOError(
          StrCat("line ", line_number, ": expected ", expected_values,
                 " fields, got ", fields.size()));
    }
    SkeletonSample sample;
    sample.label = std::atoll(fields[0].c_str());
    sample.subject = std::atoll(fields[1].c_str());
    sample.camera = std::atoll(fields[2].c_str());
    sample.setup = std::atoll(fields[3].c_str());
    sample.data = Tensor({3, frames, layout.num_joints});
    for (int64_t j = 0; j < sample.data.numel(); ++j) {
      sample.data.flat(j) =
          std::strtof(fields[static_cast<size_t>(4 + j)].c_str(), nullptr);
    }
    samples.push_back(std::move(sample));
  }
  // Corrupt rows (out-of-range labels, NaN/Inf coordinates) are
  // quarantined rather than failing the whole load: one bad capture in a
  // million-sample file should cost one sample, not the run. Structural
  // damage (wrong field count) still fails hard above.
  SampleValidationReport report =
      QuarantineInvalidSamples(&samples, num_classes);
  if (report.quarantined() > 0) {
    DHGCN_LOG(kWarning) << path
                        << ": quarantined corrupt samples: "
                        << report.ToString();
  }
  if (samples.empty()) {
    return Status::IOError(
        report.checked > 0
            ? StrCat("no valid samples in ", path, " (",
                     report.quarantined(), " quarantined)")
            : "no samples in file");
  }
  return SkeletonDataset(layout_type, num_classes, std::move(samples));
}

}  // namespace dhgcn
