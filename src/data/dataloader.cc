#include "data/dataloader.h"

#include <limits>
#include <numeric>

#include "base/check.h"
#include "base/fault_injection.h"
#include "base/result.h"
#include "base/logging.h"
#include "data/transforms.h"
#include "data/validation.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

std::string InputStreamName(InputStream stream) {
  switch (stream) {
    case InputStream::kJoint:
      return "joint";
    case InputStream::kBone:
      return "bone";
    case InputStream::kJointMotion:
      return "joint-motion";
    case InputStream::kBoneMotion:
      return "bone-motion";
  }
  return "?";
}

DataLoader::DataLoader(const SkeletonDataset* dataset,
                       std::vector<int64_t> indices, int64_t batch_size,
                       InputStream stream, bool shuffle, Rng rng)
    : dataset_(dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      stream_(stream),
      shuffle_(shuffle),
      rng_(rng),
      augmentation_rng_(rng.Split()) {
  DHGCN_CHECK(dataset != nullptr);
  DHGCN_CHECK_GT(batch_size_, 0);
  DHGCN_CHECK(!indices_.empty());
  for (int64_t i : indices_) {
    DHGCN_CHECK(i >= 0 && i < dataset_->size());
  }
  SampleValidationReport report =
      QuarantineInvalidIndices(*dataset_, &indices_);
  quarantined_samples_ = report.quarantined();
  if (quarantined_samples_ > 0) {
    DHGCN_LOG(kWarning) << "DataLoader quarantined invalid samples: "
                        << report.ToString();
  }
  DHGCN_CHECK(!indices_.empty());  // every sample invalid = unusable input
  order_.resize(indices_.size());
  std::iota(order_.begin(), order_.end(), 0);
}

void DataLoader::SetAugmentation(AugmentationPipeline pipeline) {
  augmentation_ = std::move(pipeline);
}

int64_t DataLoader::NumBatches() const {
  return (static_cast<int64_t>(indices_.size()) + batch_size_ - 1) /
         batch_size_;
}

void DataLoader::StartEpoch() {
  if (!shuffle_) return;
  order_ = rng_.Permutation(static_cast<int64_t>(indices_.size()));
}

Tensor DataLoader::TransformData(const Tensor& data) const {
  const SkeletonLayout& layout = dataset_->layout();
  // 3-D skeletons are view-normalized first (the standard NTU
  // pre-normalization); Kinetics-style data is 2-D + confidence, where
  // a 3-D body-frame rotation is undefined.
  Tensor base = view_normalize_ &&
                        dataset_->layout_type() == SkeletonLayoutType::kNtu25
                    ? ViewNormalize(data, layout)
                    : data;
  switch (stream_) {
    case InputStream::kJoint:
      return CenterOnRoot(base, layout);
    case InputStream::kBone:
      return JointToBone(base, layout);
    case InputStream::kJointMotion:
      return TemporalDifference(CenterOnRoot(base, layout));
    case InputStream::kBoneMotion:
      return TemporalDifference(JointToBone(base, layout));
  }
  DHGCN_CHECK(false);
  return base;
}

Batch DataLoader::GetBatch(int64_t b) {
  DHGCN_CHECK(b >= 0 && b < NumBatches());
  int64_t start = b * batch_size_;
  int64_t end = std::min<int64_t>(start + batch_size_,
                                  static_cast<int64_t>(indices_.size()));
  Batch batch;
  std::vector<Tensor> parts;
  parts.reserve(static_cast<size_t>(end - start));
  for (int64_t i = start; i < end; ++i) {
    int64_t sample_index =
        indices_[static_cast<size_t>(order_[static_cast<size_t>(i)])];
    const SkeletonSample& sample = dataset_->sample(sample_index);
    Tensor data = sample.data;
    if (augmentation_.has_value()) {
      data = augmentation_->Apply(data, augmentation_rng_);
    }
    parts.push_back(TransformData(data));
    batch.labels.push_back(sample.label);
    batch.sample_indices.push_back(sample_index);
  }
  batch.x = Stack(parts);  // (N, C, T, V)
  if (FaultInjection::Get().ShouldFire(FaultSite::kBatchNaN)) {
    batch.x.Fill(std::numeric_limits<float>::quiet_NaN());
  }
  return batch;
}

std::string DataLoader::SerializeRngState() const {
  // mt19937_64's text state is space-separated with no newlines, so a
  // newline cleanly joins the two streams.
  return rng_.SerializeState() + "\n" + augmentation_rng_.SerializeState();
}

Status DataLoader::DeserializeRngState(const std::string& text) {
  size_t split = text.find('\n');
  if (split == std::string::npos) {
    return Status::InvalidArgument(
        "loader RNG state must hold two newline-separated streams");
  }
  DHGCN_RETURN_IF_ERROR(rng_.DeserializeState(text.substr(0, split)));
  return augmentation_rng_.DeserializeState(text.substr(split + 1));
}

}  // namespace dhgcn
