#include "data/transforms.h"

#include <cmath>

#include "base/check.h"

namespace dhgcn {

namespace {

// Uniform handling of (C,T,V) and (N,C,T,V): view as (batch, C, T, V).
struct BatchView {
  int64_t n;
  int64_t c;
  int64_t t;
  int64_t v;
  bool batched;
};

BatchView MakeView(const Tensor& x) {
  DHGCN_CHECK(x.ndim() == 3 || x.ndim() == 4);
  if (x.ndim() == 3) return {1, x.dim(0), x.dim(1), x.dim(2), false};
  return {x.dim(0), x.dim(1), x.dim(2), x.dim(3), true};
}

}  // namespace

Tensor JointToBone(const Tensor& joints, const SkeletonLayout& layout) {
  BatchView view = MakeView(joints);
  DHGCN_CHECK_EQ(view.v, layout.num_joints);
  Tensor bones(joints.shape());
  const float* px = joints.data();
  float* po = bones.data();
  int64_t plane = view.t * view.v;
  for (int64_t b = 0; b < view.n; ++b) {
    for (int64_t c = 0; c < view.c; ++c) {
      const float* xplane = px + (b * view.c + c) * plane;
      float* oplane = po + (b * view.c + c) * plane;
      for (int64_t t = 0; t < view.t; ++t) {
        for (int64_t j = 0; j < view.v; ++j) {
          int64_t parent = layout.parents[static_cast<size_t>(j)];
          oplane[t * view.v + j] =
              xplane[t * view.v + j] - xplane[t * view.v + parent];
        }
      }
    }
  }
  return bones;
}

Tensor CenterOnRoot(const Tensor& joints, const SkeletonLayout& layout) {
  BatchView view = MakeView(joints);
  DHGCN_CHECK_EQ(view.v, layout.num_joints);
  Tensor out(joints.shape());
  const float* px = joints.data();
  float* po = out.data();
  int64_t plane = view.t * view.v;
  for (int64_t b = 0; b < view.n; ++b) {
    for (int64_t c = 0; c < view.c; ++c) {
      const float* xplane = px + (b * view.c + c) * plane;
      float* oplane = po + (b * view.c + c) * plane;
      for (int64_t t = 0; t < view.t; ++t) {
        float center = xplane[t * view.v + layout.root];
        for (int64_t j = 0; j < view.v; ++j) {
          oplane[t * view.v + j] = xplane[t * view.v + j] - center;
        }
      }
    }
  }
  return out;
}

Tensor TemporalDifference(const Tensor& joints) {
  BatchView view = MakeView(joints);
  Tensor out(joints.shape());
  const float* px = joints.data();
  float* po = out.data();
  int64_t plane = view.t * view.v;
  for (int64_t b = 0; b < view.n; ++b) {
    for (int64_t c = 0; c < view.c; ++c) {
      const float* xplane = px + (b * view.c + c) * plane;
      float* oplane = po + (b * view.c + c) * plane;
      for (int64_t t = 0; t + 1 < view.t; ++t) {
        for (int64_t j = 0; j < view.v; ++j) {
          oplane[t * view.v + j] =
              xplane[(t + 1) * view.v + j] - xplane[t * view.v + j];
        }
      }
      // Last frame has no successor: zero motion.
      for (int64_t j = 0; j < view.v; ++j) {
        oplane[(view.t - 1) * view.v + j] = 0.0f;
      }
    }
  }
  return out;
}

Tensor ResampleFrames(const Tensor& joints, int64_t target_frames) {
  DHGCN_CHECK_GT(target_frames, 0);
  BatchView view = MakeView(joints);
  Shape out_shape = joints.shape();
  out_shape[out_shape.size() - 2] = target_frames;
  Tensor out(out_shape);
  const float* px = joints.data();
  float* po = out.data();
  for (int64_t b = 0; b < view.n; ++b) {
    for (int64_t c = 0; c < view.c; ++c) {
      const float* xplane = px + (b * view.c + c) * view.t * view.v;
      float* oplane = po + (b * view.c + c) * target_frames * view.v;
      for (int64_t t = 0; t < target_frames; ++t) {
        int64_t src = t * view.t / target_frames;
        for (int64_t j = 0; j < view.v; ++j) {
          oplane[t * view.v + j] = xplane[src * view.v + j];
        }
      }
    }
  }
  return out;
}

namespace {

struct Vec3 {
  float x = 0, y = 0, z = 0;
};

Vec3 Sub3(const Vec3& a, const Vec3& b) {
  return {a.x - b.x, a.y - b.y, a.z - b.z};
}

Vec3 Cross3(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

float Norm3(const Vec3& a) {
  return std::sqrt(a.x * a.x + a.y * a.y + a.z * a.z);
}

Vec3 Normalize3(const Vec3& a) {
  float n = Norm3(a);
  return {a.x / n, a.y / n, a.z / n};
}

// Reference joints used to define the body frame per layout.
struct BodyFrameJoints {
  int64_t spine_bottom;
  int64_t spine_top;
  int64_t left_hip;
  int64_t right_hip;
};

BodyFrameJoints FrameJointsFor(const SkeletonLayout& layout) {
  if (layout.name == "ntu25") {
    return {/*spine_bottom=*/0, /*spine_top=*/20, /*left_hip=*/12,
            /*right_hip=*/16};
  }
  DHGCN_CHECK(layout.name == "kinetics18");
  return {/*spine_bottom=*/8, /*spine_top=*/1, /*left_hip=*/11,
          /*right_hip=*/8};
}

}  // namespace

Tensor ViewNormalize(const Tensor& joints, const SkeletonLayout& layout) {
  BatchView view = MakeView(joints);
  DHGCN_CHECK_EQ(view.c, 3);
  DHGCN_CHECK_EQ(view.v, layout.num_joints);
  BodyFrameJoints ref = FrameJointsFor(layout);
  Tensor out = joints.Clone();
  float* po = out.data();
  int64_t plane = view.t * view.v;
  for (int64_t b = 0; b < view.n; ++b) {
    float* px = po + b * 3 * plane;
    auto joint_at = [px, &view, plane](int64_t t, int64_t j) {
      return Vec3{px[0 * plane + t * view.v + j],
                  px[1 * plane + t * view.v + j],
                  px[2 * plane + t * view.v + j]};
    };
    // Body frame from the first frame: up = spine direction, right =
    // hip line orthogonalized against up, forward = right x up.
    Vec3 up = Sub3(joint_at(0, ref.spine_top), joint_at(0, ref.spine_bottom));
    Vec3 hips =
        Sub3(joint_at(0, ref.right_hip), joint_at(0, ref.left_hip));
    if (Norm3(up) < 1e-6f || Norm3(hips) < 1e-6f) continue;  // degenerate
    up = Normalize3(up);
    Vec3 forward = Cross3(hips, up);
    if (Norm3(forward) < 1e-6f) continue;  // hips parallel to spine
    forward = Normalize3(forward);
    Vec3 right = Cross3(up, forward);
    // Rotate every frame's coordinates into (right, up, forward) and
    // translate so the first frame's spine bottom is the origin.
    Vec3 origin = joint_at(0, ref.spine_bottom);
    for (int64_t t = 0; t < view.t; ++t) {
      for (int64_t j = 0; j < view.v; ++j) {
        Vec3 p = Sub3(joint_at(t, j), origin);
        px[0 * plane + t * view.v + j] =
            right.x * p.x + right.y * p.y + right.z * p.z;
        px[1 * plane + t * view.v + j] =
            up.x * p.x + up.y * p.y + up.z * p.z;
        px[2 * plane + t * view.v + j] =
            forward.x * p.x + forward.y * p.y + forward.z * p.z;
      }
    }
  }
  return out;
}

}  // namespace dhgcn
