#ifndef DHGCN_DATA_DATASET_H_
#define DHGCN_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "base/result.h"
#include "data/skeleton.h"
#include "data/synthetic_generator.h"

namespace dhgcn {

/// Train/test index split of a dataset.
struct DatasetSplit {
  std::vector<int64_t> train;
  std::vector<int64_t> test;
};

/// \brief In-memory skeleton action dataset with the benchmark protocols
/// of NTU RGB+D 60/120 and Kinetics-Skeleton (Sec. 4.1).
class SkeletonDataset {
 public:
  SkeletonDataset(SkeletonLayoutType layout, int64_t num_classes,
                  std::vector<SkeletonSample> samples);

  /// Generates a dataset from the synthetic generator config.
  static Result<SkeletonDataset> Generate(const SyntheticDataConfig& config);

  int64_t size() const { return static_cast<int64_t>(samples_.size()); }
  int64_t num_classes() const { return num_classes_; }
  SkeletonLayoutType layout_type() const { return layout_type_; }
  const SkeletonLayout& layout() const {
    return GetSkeletonLayout(layout_type_);
  }
  const SkeletonSample& sample(int64_t index) const;
  const std::vector<SkeletonSample>& samples() const { return samples_; }

  /// Cross-subject protocol: samples of `train_subjects` train, the rest
  /// test (NTU X-Sub).
  DatasetSplit CrossSubjectSplit(
      const std::vector<int64_t>& train_subjects) const;
  /// Convenience: the first half of subject ids train.
  DatasetSplit CrossSubjectSplit() const;

  /// Cross-view protocol: samples of camera `test_camera` test, the rest
  /// train (NTU X-View; camera 1 is the paper's test camera).
  DatasetSplit CrossViewSplit(int64_t test_camera = 0) const;

  /// Cross-setup protocol: even setup ids train, odd test (NTU-120 X-Set).
  DatasetSplit CrossSetupSplit() const;

  /// Random holdout (Kinetics-style train/val): `test_fraction` of each
  /// class is held out, deterministically in `seed`.
  DatasetSplit RandomSplit(float test_fraction, uint64_t seed) const;

 private:
  SkeletonLayoutType layout_type_;
  int64_t num_classes_;
  std::vector<SkeletonSample> samples_;
};

}  // namespace dhgcn

#endif  // DHGCN_DATA_DATASET_H_
