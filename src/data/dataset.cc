#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "base/check.h"
#include "base/rng.h"

namespace dhgcn {

SkeletonDataset::SkeletonDataset(SkeletonLayoutType layout,
                                 int64_t num_classes,
                                 std::vector<SkeletonSample> samples)
    : layout_type_(layout),
      num_classes_(num_classes),
      samples_(std::move(samples)) {
  DHGCN_CHECK_GT(num_classes_, 0);
  const SkeletonLayout& l = GetSkeletonLayout(layout_type_);
  for (const SkeletonSample& s : samples_) {
    DHGCN_CHECK(s.label >= 0 && s.label < num_classes_);
    DHGCN_CHECK_EQ(s.data.ndim(), 3);
    DHGCN_CHECK_EQ(s.data.dim(0), 3);
    DHGCN_CHECK_EQ(s.data.dim(2), l.num_joints);
  }
}

Result<SkeletonDataset> SkeletonDataset::Generate(
    const SyntheticDataConfig& config) {
  DHGCN_ASSIGN_OR_RETURN(SyntheticSkeletonGenerator generator,
                         SyntheticSkeletonGenerator::Make(config));
  return SkeletonDataset(config.layout, config.num_classes,
                         generator.GenerateAll());
}

const SkeletonSample& SkeletonDataset::sample(int64_t index) const {
  DHGCN_CHECK(index >= 0 && index < size());
  return samples_[static_cast<size_t>(index)];
}

DatasetSplit SkeletonDataset::CrossSubjectSplit(
    const std::vector<int64_t>& train_subjects) const {
  std::unordered_set<int64_t> train_set(train_subjects.begin(),
                                        train_subjects.end());
  DatasetSplit split;
  for (int64_t i = 0; i < size(); ++i) {
    if (train_set.count(samples_[static_cast<size_t>(i)].subject) > 0) {
      split.train.push_back(i);
    } else {
      split.test.push_back(i);
    }
  }
  return split;
}

DatasetSplit SkeletonDataset::CrossSubjectSplit() const {
  int64_t max_subject = 0;
  for (const SkeletonSample& s : samples_) {
    max_subject = std::max(max_subject, s.subject);
  }
  std::vector<int64_t> train_subjects;
  for (int64_t s = 0; s <= max_subject; s += 2) train_subjects.push_back(s);
  return CrossSubjectSplit(train_subjects);
}

DatasetSplit SkeletonDataset::CrossViewSplit(int64_t test_camera) const {
  DatasetSplit split;
  for (int64_t i = 0; i < size(); ++i) {
    if (samples_[static_cast<size_t>(i)].camera == test_camera) {
      split.test.push_back(i);
    } else {
      split.train.push_back(i);
    }
  }
  return split;
}

DatasetSplit SkeletonDataset::CrossSetupSplit() const {
  DatasetSplit split;
  for (int64_t i = 0; i < size(); ++i) {
    if (samples_[static_cast<size_t>(i)].setup % 2 == 0) {
      split.train.push_back(i);
    } else {
      split.test.push_back(i);
    }
  }
  return split;
}

DatasetSplit SkeletonDataset::RandomSplit(float test_fraction,
                                          uint64_t seed) const {
  DHGCN_CHECK(test_fraction > 0.0f && test_fraction < 1.0f);
  // Per-class stratified holdout so every class appears in both halves.
  std::vector<std::vector<int64_t>> by_class(
      static_cast<size_t>(num_classes_));
  for (int64_t i = 0; i < size(); ++i) {
    by_class[static_cast<size_t>(samples_[static_cast<size_t>(i)].label)]
        .push_back(i);
  }
  Rng rng(seed);
  DatasetSplit split;
  for (auto& members : by_class) {
    std::vector<int64_t> perm =
        rng.Permutation(static_cast<int64_t>(members.size()));
    int64_t num_test = std::max<int64_t>(
        1, static_cast<int64_t>(std::lround(
               static_cast<double>(test_fraction) *
               static_cast<double>(members.size()))));
    num_test = std::min<int64_t>(num_test,
                                 static_cast<int64_t>(members.size()) - 1);
    for (size_t p = 0; p < members.size(); ++p) {
      int64_t idx = members[static_cast<size_t>(perm[p])];
      if (static_cast<int64_t>(p) < num_test) {
        split.test.push_back(idx);
      } else {
        split.train.push_back(idx);
      }
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace dhgcn
