#ifndef DHGCN_DATA_VALIDATION_H_
#define DHGCN_DATA_VALIDATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic_generator.h"

namespace dhgcn {

/// \brief Ingest-time sample validation.
///
/// Corrupt capture files routinely contain NaN/Inf coordinates or labels
/// outside the class range; a single such sample poisons every gradient
/// it touches. These helpers quarantine (drop) invalid samples at load
/// time and surface the counts so silent data loss is visible in logs.

struct SampleValidationReport {
  int64_t checked = 0;
  int64_t bad_coordinates = 0;  ///< samples with NaN/Inf values
  int64_t bad_labels = 0;       ///< labels outside [0, num_classes)
  int64_t quarantined() const { return bad_coordinates + bad_labels; }
  std::string ToString() const;
};

/// True when every element of `tensor` is finite. The shared core of the
/// ingest-quarantine rules, also used by the serving admission path so a
/// NaN-poisoned request fails alone instead of poisoning its micro-batch.
bool TensorHasFiniteValues(const Tensor& tensor);

/// True when every coordinate of `sample.data` is finite.
bool SampleHasFiniteData(const SkeletonSample& sample);

/// True when the sample passes all ingest checks.
bool SampleIsValid(const SkeletonSample& sample, int64_t num_classes);

/// Removes invalid samples from `samples` in place (order preserved).
SampleValidationReport QuarantineInvalidSamples(
    std::vector<SkeletonSample>* samples, int64_t num_classes);

/// Removes indices referring to invalid samples of `dataset` in place.
SampleValidationReport QuarantineInvalidIndices(
    const SkeletonDataset& dataset, std::vector<int64_t>* indices);

}  // namespace dhgcn

#endif  // DHGCN_DATA_VALIDATION_H_
