#ifndef DHGCN_DATA_TRANSFORMS_H_
#define DHGCN_DATA_TRANSFORMS_H_

#include "data/skeleton.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Joint stream -> bone stream (Sec. 3.5 two-stream framework).
///
/// bone[c,t,v] = joint[c,t,v] - joint[c,t,parent(v)]; the root joint's
/// bone is zero. Input (C, T, V) or batched (N, C, T, V).
Tensor JointToBone(const Tensor& joints, const SkeletonLayout& layout);

/// \brief Centers every frame on the root joint: x[c,t,v] -=
/// x[c,t,root]. The standard pre-normalization for skeleton data.
/// Input (C, T, V) or (N, C, T, V).
Tensor CenterOnRoot(const Tensor& joints, const SkeletonLayout& layout);

/// \brief Per-joint motion stream: m[c,t,v] = x[c,t+1,v] - x[c,t,v],
/// zero for the last frame. Input (C, T, V) or (N, C, T, V).
Tensor TemporalDifference(const Tensor& joints);

/// \brief Resamples the time axis to `target_frames` by nearest-frame
/// sampling (crop or stretch). Input (C, T, V) or (N, C, T, V).
Tensor ResampleFrames(const Tensor& joints, int64_t target_frames);

/// \brief View normalization ("pre-normalization" of the 2s-AGCN data
/// pipeline): rotates every 3-D sequence into a body-centric frame so
/// that the spine (root -> spine/neck) is vertical and the hip line is
/// horizontal in the first frame. This removes most of the camera-angle
/// nuisance and is what makes the X-View protocol learnable.
///
/// Uses the layout's root and the hip pair; requires exactly 3 coordinate
/// channels and a 3-D (not projected) skeleton. Degenerate geometry
/// (zero-length spine/hip vectors) leaves the sequence unchanged.
/// Input (C, T, V) or (N, C, T, V).
Tensor ViewNormalize(const Tensor& joints, const SkeletonLayout& layout);

}  // namespace dhgcn

#endif  // DHGCN_DATA_TRANSFORMS_H_
