#include "plan/plan_builder.h"

#include <utility>

#include "base/check.h"
#include "nn/layer.h"
#include "plan/fusion.h"

namespace dhgcn {

int64_t PlanBuilder::AddSlot(Shape shape) {
  DHGCN_CHECK_GT(ShapeNumel(shape), 0);
  plan_.slots.push_back(PlanSlot{std::move(shape), -1});
  return static_cast<int64_t>(plan_.slots.size()) - 1;
}

int64_t PlanBuilder::AddOp(PlanOp op) {
  auto check_slot = [this](int64_t slot) {
    DHGCN_CHECK_GE(slot, 0);
    DHGCN_CHECK_LT(slot, static_cast<int64_t>(plan_.slots.size()));
  };
  check_slot(op.in0);
  check_slot(op.out);
  if (op.in1 >= 0) check_slot(op.in1);
  plan_.ops.push_back(std::move(op));
  return static_cast<int64_t>(plan_.ops.size()) - 1;
}

const Shape& PlanBuilder::slot_shape(int64_t slot) const {
  DHGCN_CHECK_GE(slot, 0);
  DHGCN_CHECK_LT(slot, static_cast<int64_t>(plan_.slots.size()));
  return plan_.slots[static_cast<size_t>(slot)].shape;
}

ExecutionPlan PlanBuilder::Take(int64_t input_slot, int64_t output_slot) {
  DHGCN_CHECK_GE(input_slot, 0);
  DHGCN_CHECK_GE(output_slot, 0);
  plan_.input_slot = input_slot;
  plan_.output_slot = output_slot;
  ExecutionPlan out = std::move(plan_);
  plan_ = ExecutionPlan();
  return out;
}

Result<ExecutionPlan> CaptureInferencePlan(Layer& model,
                                           const Shape& input_shape) {
  if (model.training()) {
    return Status::FailedPrecondition(
        "plan capture requires eval mode; call SetTraining(false) first");
  }
  if (ShapeNumel(input_shape) <= 0) {
    return Status::InvalidArgument("plan capture needs a non-empty shape");
  }
  PlanBuilder builder;
  int64_t in = builder.AddSlot(input_shape);
  int64_t out = model.Record(builder, in);
  if (out < 0) {
    return Status::Unimplemented(
        "model does not support plan capture; falling back to layers");
  }
  if (builder.op_count() == 0) {
    return Status::Unimplemented("model recorded an empty plan");
  }
  return builder.Take(in, out);
}

Result<ExecutionPlan> BuildInferencePlan(Layer& model,
                                         const Shape& input_shape,
                                         PlanMode mode) {
  if (mode == PlanMode::kOff) {
    return Status::InvalidArgument("BuildInferencePlan with plan mode off");
  }
  ExecutionPlan plan;
  DHGCN_ASSIGN_OR_RETURN(plan, CaptureInferencePlan(model, input_shape));
  if (mode == PlanMode::kFused) {
    FoldBatchNorms(&plan);
    FuseElementwise(&plan);
  }
  ResolveOffsets(&plan);
  return plan;
}

}  // namespace dhgcn
