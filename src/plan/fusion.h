#ifndef DHGCN_PLAN_FUSION_H_
#define DHGCN_PLAN_FUSION_H_

#include "plan/plan.h"

namespace dhgcn {

/// Freeze-time Conv→BN folding. Rewrites
///   [kConv2d s→t, kBatchNormEval t→u]  =>  [kConv2dFolded s→u]
/// with W' = scale ⊙ W and b' = scale*(b - mean) + beta, where
/// scale[c] = gamma[c] / sqrt(running_var[c] + eps) — the eval BN is an
/// affine map per out-channel, so it commutes into the conv weights.
/// Also folds [kBatchNormEval s→t, kLinear t→u] => [kLinearFolded s→u]
/// (the BN-before-classifier shape): W'[o,i] = W[o,i]*s[i],
/// b'[o] = b[o] + Σ_i W[o,i]*(beta[i] - mean[i]*s[i]).
///
/// Legality: the intermediate slot must have exactly one producer and
/// one consumer (the pair being fused) and must not be the plan output.
/// Folding is rtol-equivalent, not bit-exact (float re-association).
/// Must run before `ResolveOffsets`.
void FoldBatchNorms(ExecutionPlan* plan);

/// Elementwise-chain fusion. Rewrites adjacent triples/pairs
///   [kBatchNormEval a→s, kAccumulate s+=r, kRelu s→o] => [kBnAddRelu]
///   [kAccumulate t+=r, kRelu t→o]                     => [kAddRelu]
/// into single passes over the tile (one memory sweep instead of three/
/// two). The BN epilogue is precomputed into per-channel scale/shift at
/// freeze time. Same legality rule as folding for the eliminated
/// intermediate slot. Run after `FoldBatchNorms`, before
/// `ResolveOffsets`.
void FuseElementwise(ExecutionPlan* plan);

}  // namespace dhgcn

#endif  // DHGCN_PLAN_FUSION_H_
