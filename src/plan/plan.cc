#include "plan/plan.h"

#include <algorithm>
#include <unordered_map>

#include "base/check.h"
#include "base/string_util.h"
#include "tensor/workspace.h"

namespace dhgcn {

namespace {

size_t AlignedSlotBytes(const Shape& shape) {
  size_t bytes = static_cast<size_t>(ShapeNumel(shape)) * sizeof(float);
  return (bytes + Workspace::kAlignment - 1) &
         ~(Workspace::kAlignment - 1);
}

std::string ShapeString(const Shape& shape) {
  std::string out = "(";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ",";
    out += StrCat(shape[i]);
  }
  out += ")";
  return out;
}

}  // namespace

Result<PlanMode> ParsePlanMode(const std::string& text) {
  if (text == "off") return PlanMode::kOff;
  if (text == "on" || text == "unfused") return PlanMode::kUnfused;
  if (text == "fused") return PlanMode::kFused;
  return Status::InvalidArgument(
      StrCat("unknown plan mode '", text, "' (expected off|on|fused)"));
}

const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kOff: return "off";
    case PlanMode::kUnfused: return "on";
    case PlanMode::kFused: return "fused";
  }
  return "?";
}

const char* PlanOpKindName(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kConv2d: return "Conv2d";
    case PlanOpKind::kConv2dFolded: return "Conv2dFolded";
    case PlanOpKind::kBatchNormEval: return "BatchNormEval";
    case PlanOpKind::kRelu: return "Relu";
    case PlanOpKind::kLinear: return "Linear";
    case PlanOpKind::kLinearFolded: return "LinearFolded";
    case PlanOpKind::kGlobalAvgPool: return "GlobalAvgPool";
    case PlanOpKind::kVertexMix: return "VertexMix";
    case PlanOpKind::kDynamicVertexMix: return "DynamicVertexMix";
    case PlanOpKind::kJointWeightOps: return "JointWeightOps";
    case PlanOpKind::kStrideOps: return "StrideOps";
    case PlanOpKind::kTopologyOps: return "TopologyOps";
    case PlanOpKind::kAccumulate: return "Accumulate";
    case PlanOpKind::kBnAddRelu: return "BnAddRelu";
    case PlanOpKind::kAddRelu: return "AddRelu";
    case PlanOpKind::kSpMM: return "SpMM";
    case PlanOpKind::kLinearInt8: return "LinearInt8";
    case PlanOpKind::kConv2dInt8Folded: return "Conv2dInt8Folded";
  }
  return "?";
}

std::string ExecutionPlan::Summary() const {
  std::string out = StrCat("plan: ", ops.size(), " ops, ", slots.size(),
                           " slots, arena=", arena_bytes, "B\n");
  for (size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    out += StrCat("  [", i, "] ", PlanOpKindName(op.kind), " in0=", op.in0,
                  " in1=", op.in1, " out=", op.out);
    if (op.out >= 0) {
      out += StrCat(" ", ShapeString(slots[static_cast<size_t>(op.out)].shape),
                    " @", slots[static_cast<size_t>(op.out)].offset_bytes);
    }
    out += "\n";
  }
  return out;
}

void ResolveOffsets(ExecutionPlan* plan) {
  DHGCN_CHECK(plan != nullptr);
  DHGCN_CHECK(!plan->resolved);
  const int64_t num_slots = static_cast<int64_t>(plan->slots.size());
  const int64_t num_ops = static_cast<int64_t>(plan->ops.size());
  DHGCN_CHECK_GE(plan->input_slot, 0);
  DHGCN_CHECK_GE(plan->output_slot, 0);

  // Last op that references each slot (-1 = dead, eliminated by fusion).
  std::vector<int64_t> last_use(static_cast<size_t>(num_slots), -1);
  auto touch = [&](int64_t slot, int64_t op) {
    if (slot >= 0) last_use[static_cast<size_t>(slot)] = op;
  };
  for (int64_t i = 0; i < num_ops; ++i) {
    const PlanOp& op = plan->ops[static_cast<size_t>(i)];
    touch(op.in0, i);
    touch(op.in1, i);
    touch(op.out, i);
  }
  // The input slot is rewritten at the start of every replay and the
  // output must stay readable after Run returns, so neither region is
  // ever recycled.
  last_use[static_cast<size_t>(plan->input_slot)] = num_ops;
  last_use[static_cast<size_t>(plan->output_slot)] = num_ops;

  std::vector<std::vector<int64_t>> free_after(
      static_cast<size_t>(num_ops));
  for (int64_t s = 0; s < num_slots; ++s) {
    int64_t last = last_use[static_cast<size_t>(s)];
    if (last >= 0 && last < num_ops) {
      free_after[static_cast<size_t>(last)].push_back(s);
    }
  }

  // Linear scan with exact-size region reuse. A region released at op i
  // is only handed to slots defined at ops > i, so an op's output can
  // never alias its own inputs.
  std::unordered_map<size_t, std::vector<int64_t>> free_by_size;
  size_t bump = 0;
  auto assign = [&](int64_t s) {
    if (s < 0) return;
    PlanSlot& slot = plan->slots[static_cast<size_t>(s)];
    if (slot.offset_bytes >= 0) return;  // already defined (accumulate)
    if (last_use[static_cast<size_t>(s)] < 0) return;  // dead slot
    size_t bytes = AlignedSlotBytes(slot.shape);
    auto it = free_by_size.find(bytes);
    if (it != free_by_size.end() && !it->second.empty()) {
      slot.offset_bytes = it->second.back();
      it->second.pop_back();
    } else {
      slot.offset_bytes = static_cast<int64_t>(bump);
      bump += bytes;
    }
  };
  assign(plan->input_slot);
  for (int64_t i = 0; i < num_ops; ++i) {
    assign(plan->ops[static_cast<size_t>(i)].out);
    for (int64_t s : free_after[static_cast<size_t>(i)]) {
      const PlanSlot& slot = plan->slots[static_cast<size_t>(s)];
      free_by_size[AlignedSlotBytes(slot.shape)].push_back(
          slot.offset_bytes);
    }
  }
  plan->arena_bytes = std::max(bump, size_t{Workspace::kAlignment});
  plan->resolved = true;
}

}  // namespace dhgcn
