#include "plan/fused_kernels.h"

#include <cstddef>

#include "base/check.h"
#include "base/thread_pool.h"

namespace dhgcn {

void BnAddReluKernel(const Tensor& scale, const Tensor& shift,
                     const Tensor& a, const Tensor& r, Tensor* out) {
  const Shape& s = a.shape();
  DHGCN_CHECK_GE(a.ndim(), 2);
  const int64_t n = s[0];
  const int64_t c = s[1];
  int64_t spatial = 1;
  for (size_t i = 2; i < s.size(); ++i) spatial *= s[i];
  DHGCN_CHECK_EQ(scale.numel(), c);
  DHGCN_CHECK_EQ(shift.numel(), c);
  const float* ps = scale.data();
  const float* pt = shift.data();
  const float* pa = a.data();
  const float* pr = r.data();
  float* po = out->data();
  ThreadPool::Get().ParallelFor(
      0, c, GrainForFlops(n * spatial), [&](int64_t c0, int64_t c1) {
        for (int64_t ch = c0; ch < c1; ++ch) {
          const float sc = ps[ch];
          const float sh = pt[ch];
          for (int64_t b = 0; b < n; ++b) {
            const float* abase = pa + (b * c + ch) * spatial;
            const float* rbase = pr + (b * c + ch) * spatial;
            float* obase = po + (b * c + ch) * spatial;
            for (int64_t i = 0; i < spatial; ++i) {
              const float v = sc * abase[i] + sh + rbase[i];
              obase[i] = v > 0.0f ? v : 0.0f;
            }
          }
        }
      });
}

void AddReluKernel(const Tensor& a, const Tensor& r, Tensor* out) {
  const float* pa = a.data();
  const float* pr = r.data();
  float* po = out->data();
  ThreadPool::Get().ParallelFor(0, a.numel(), GrainForFlops(2),
                                [&](int64_t i0, int64_t i1) {
                                  for (int64_t i = i0; i < i1; ++i) {
                                    const float v = pa[i] + pr[i];
                                    po[i] = v > 0.0f ? v : 0.0f;
                                  }
                                });
}

}  // namespace dhgcn
