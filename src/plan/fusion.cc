#include "plan/fusion.h"

#include <cmath>
#include <utility>
#include <vector>

#include "base/check.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace dhgcn {

namespace {

/// Number of references to `slot` across all ops except the indices in
/// `exclude` (a use = appearing as in0/in1, or as the out of an
/// accumulate-style read-modify-write, or being the plan output).
int64_t CountOtherRefs(const ExecutionPlan& plan, int64_t slot,
                       const std::vector<size_t>& exclude) {
  int64_t refs = 0;
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    bool skip = false;
    for (size_t e : exclude) skip = skip || (e == i);
    if (skip) continue;
    const PlanOp& op = plan.ops[i];
    if (op.in0 == slot) ++refs;
    if (op.in1 == slot) ++refs;
    if (op.out == slot) ++refs;
  }
  if (plan.output_slot == slot) ++refs;
  if (plan.input_slot == slot) ++refs;
  return refs;
}

/// Per-channel eval-BN affine coefficients: scale = gamma * inv_std,
/// shift = beta - mean * scale.
void BnCoefficients(BatchNorm2d& bn, Tensor* scale, Tensor* shift) {
  const Tensor& mean = bn.running_mean();
  const Tensor& var = bn.running_var();
  const float* pm = mean.data();
  const float* pv = var.data();
  const float* pg = bn.gamma().data();
  const float* pb = bn.beta().data();
  int64_t c = mean.numel();
  *scale = Tensor({c});
  *shift = Tensor({c});
  float* ps = scale->data();
  float* pt = shift->data();
  for (int64_t i = 0; i < c; ++i) {
    float inv_std = 1.0f / std::sqrt(pv[i] + bn.eps());
    ps[i] = pg[i] * inv_std;
    pt[i] = pb[i] - pm[i] * ps[i];
  }
}

/// Folds `bn` into the conv that produces its input: W' = scale ⊙ W
/// per out-channel, b' = scale*(b - mean) + beta.
void FoldConvBn(const Conv2d& conv, BatchNorm2d& bn, PlanOp* folded) {
  Tensor scale, shift;
  BnCoefficients(bn, &scale, &shift);
  const float* ps = scale.data();
  const float* pt = shift.data();
  const int64_t oc = conv.out_channels();
  DHGCN_CHECK_EQ(scale.numel(), oc);
  folded->fold_weight = conv.weight().Clone();
  folded->fold_bias = Tensor({oc});
  float* pw = folded->fold_weight.data();
  float* pb = folded->fold_bias.data();
  const int64_t per_channel = conv.weight().numel() / oc;
  const float* pbias =
      conv.options().has_bias ? conv.bias().data() : nullptr;
  for (int64_t c = 0; c < oc; ++c) {
    float* wrow = pw + c * per_channel;
    for (int64_t i = 0; i < per_channel; ++i) wrow[i] *= ps[c];
    float b = pbias != nullptr ? pbias[c] : 0.0f;
    pb[c] = b * ps[c] + pt[c];
  }
}

/// Folds `bn` into the linear that consumes its output:
/// y = W(s⊙x + t) + b = (W·diag(s))x + (W t + b).
void FoldBnLinear(BatchNorm2d& bn, const Linear& linear, PlanOp* folded) {
  Tensor scale, shift;
  BnCoefficients(bn, &scale, &shift);
  const float* ps = scale.data();
  const float* pt = shift.data();
  const int64_t out = linear.out_features();
  const int64_t in = linear.in_features();
  DHGCN_CHECK_EQ(scale.numel(), in);
  folded->fold_weight = linear.weight().Clone();
  folded->fold_bias = Tensor({out});
  float* pw = folded->fold_weight.data();
  float* pb = folded->fold_bias.data();
  const float* pbias = linear.has_bias() ? linear.bias().data() : nullptr;
  for (int64_t o = 0; o < out; ++o) {
    float* wrow = pw + o * in;
    double acc = pbias != nullptr ? static_cast<double>(pbias[o]) : 0.0;
    for (int64_t i = 0; i < in; ++i) {
      acc += static_cast<double>(wrow[i]) * pt[i];
      wrow[i] *= ps[i];
    }
    pb[o] = static_cast<float>(acc);
  }
}

}  // namespace

void FoldBatchNorms(ExecutionPlan* plan) {
  DHGCN_CHECK(plan != nullptr);
  DHGCN_CHECK(!plan->resolved);
  std::vector<bool> dead(plan->ops.size(), false);
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    if (dead[i]) continue;
    PlanOp& op = plan->ops[i];
    if (op.kind == PlanOpKind::kConv2d) {
      // Unique consumer must be an eval BN; fold it into the weights.
      for (size_t j = 0; j < plan->ops.size(); ++j) {
        PlanOp& next = plan->ops[j];
        if (dead[j] || next.kind != PlanOpKind::kBatchNormEval ||
            next.in0 != op.out) {
          continue;
        }
        if (CountOtherRefs(*plan, op.out, {i, j}) != 0) continue;
        FoldConvBn(*op.conv, *next.bn, &op);
        op.kind = PlanOpKind::kConv2dFolded;
        op.out = next.out;
        dead[j] = true;
        break;
      }
    } else if (op.kind == PlanOpKind::kBatchNormEval) {
      // BN feeding a single Linear: fold into the classifier weights.
      for (size_t j = 0; j < plan->ops.size(); ++j) {
        PlanOp& next = plan->ops[j];
        if (dead[j] || next.kind != PlanOpKind::kLinear ||
            next.in0 != op.out) {
          continue;
        }
        if (CountOtherRefs(*plan, op.out, {i, j}) != 0) continue;
        FoldBnLinear(*op.bn, *next.linear, &next);
        next.kind = PlanOpKind::kLinearFolded;
        next.in0 = op.in0;
        dead[i] = true;
        break;
      }
    }
  }
  std::vector<PlanOp> kept;
  kept.reserve(plan->ops.size());
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(plan->ops[i]));
  }
  plan->ops = std::move(kept);
}

void FuseElementwise(ExecutionPlan* plan) {
  DHGCN_CHECK(plan != nullptr);
  DHGCN_CHECK(!plan->resolved);
  std::vector<PlanOp> out;
  out.reserve(plan->ops.size());
  size_t i = 0;
  while (i < plan->ops.size()) {
    // [BN a→s, Accumulate s+=r, Relu s→o]  =>  BnAddRelu(a, r)→o.
    if (i + 2 < plan->ops.size()) {
      PlanOp& bn = plan->ops[i];
      const PlanOp& add = plan->ops[i + 1];
      const PlanOp& relu = plan->ops[i + 2];
      if (bn.kind == PlanOpKind::kBatchNormEval &&
          add.kind == PlanOpKind::kAccumulate && add.out == bn.out &&
          relu.kind == PlanOpKind::kRelu && relu.in0 == bn.out &&
          CountOtherRefs(*plan, bn.out, {i, i + 1, i + 2}) == 0) {
        PlanOp fused;
        fused.kind = PlanOpKind::kBnAddRelu;
        fused.in0 = bn.in0;
        fused.in1 = add.in0;
        fused.out = relu.out;
        fused.bn = bn.bn;
        BnCoefficients(*bn.bn, &fused.fold_scale, &fused.fold_shift);
        out.push_back(std::move(fused));
        i += 3;
        continue;
      }
    }
    // [Accumulate t+=r, Relu t→o]  =>  AddRelu(t, r)→o. `t` stays live
    // (its producer still writes it); only the rmw+relu pair collapses.
    if (i + 1 < plan->ops.size()) {
      const PlanOp& add = plan->ops[i];
      const PlanOp& relu = plan->ops[i + 1];
      if (add.kind == PlanOpKind::kAccumulate &&
          relu.kind == PlanOpKind::kRelu && relu.in0 == add.out &&
          CountOtherRefs(*plan, add.out, {i, i + 1}) == 1) {
        // The single remaining ref is the producer's `out` def.
        PlanOp fused;
        fused.kind = PlanOpKind::kAddRelu;
        fused.in0 = add.out;
        fused.in1 = add.in0;
        fused.out = relu.out;
        out.push_back(std::move(fused));
        i += 2;
        continue;
      }
    }
    out.push_back(std::move(plan->ops[i]));
    ++i;
  }
  plan->ops = std::move(out);
}

}  // namespace dhgcn
