#ifndef DHGCN_PLAN_PLAN_BUILDER_H_
#define DHGCN_PLAN_PLAN_BUILDER_H_

#include <cstdint>

#include "base/result.h"
#include "plan/plan.h"

namespace dhgcn {

class Layer;

/// \brief Records a model into an `ExecutionPlan`.
///
/// Layers append ops from their `Record(PlanBuilder&, int64_t)` hooks:
/// allocate output slots with `AddSlot` (shapes propagate at record
/// time — no sample batch runs), read producer shapes back with
/// `slot_shape`, and append ops with `AddOp`. The builder validates
/// slot references; offset packing happens later in `ResolveOffsets`.
class PlanBuilder {
 public:
  PlanBuilder() = default;

  PlanBuilder(const PlanBuilder&) = delete;
  PlanBuilder& operator=(const PlanBuilder&) = delete;

  /// Registers an activation slot of the given shape; returns its id.
  int64_t AddSlot(Shape shape);

  /// Appends an op; all referenced slots must already exist. Returns
  /// the op index.
  int64_t AddOp(PlanOp op);

  const Shape& slot_shape(int64_t slot) const;
  int64_t slot_count() const {
    return static_cast<int64_t>(plan_.slots.size());
  }
  int64_t op_count() const { return static_cast<int64_t>(plan_.ops.size()); }

  /// Finalizes the recording (without resolving offsets — run fusion
  /// passes first, then `ResolveOffsets`). The builder is left empty.
  ExecutionPlan Take(int64_t input_slot, int64_t output_slot);

 private:
  ExecutionPlan plan_;
};

/// Records `model`'s inference computation for a fixed input shape.
/// Requires the model to be in eval mode (`training() == false`) — the
/// plan captures inference semantics (eval BN statistics, identity
/// dropout). Fails if the model (or any layer it delegates to) does not
/// implement `Record`. The returned plan is NOT offset-resolved.
Result<ExecutionPlan> CaptureInferencePlan(Layer& model,
                                           const Shape& input_shape);

/// One-call capture + (optional) fusion + offset resolution:
///  - PlanMode::kUnfused: capture and resolve (bit-identical replay).
///  - PlanMode::kFused:   capture, fold BatchNorm into Conv/Linear,
///    fuse elementwise chains, then resolve (rtol-equivalent replay).
/// PlanMode::kOff is an error — callers gate on it before building.
Result<ExecutionPlan> BuildInferencePlan(Layer& model,
                                         const Shape& input_shape,
                                         PlanMode mode);

}  // namespace dhgcn

#endif  // DHGCN_PLAN_PLAN_BUILDER_H_
