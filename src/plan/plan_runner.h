#ifndef DHGCN_PLAN_PLAN_RUNNER_H_
#define DHGCN_PLAN_PLAN_RUNNER_H_

#include <functional>
#include <vector>

#include "plan/plan.h"
#include "quant/quant_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {

/// \brief Replays a resolved `ExecutionPlan` with zero per-step
/// dispatch, zero per-step offset arithmetic and zero steady-state
/// allocations.
///
/// Construction pins one contiguous arena block (`Workspace::
/// ReservePinned`) and pre-builds every slot's borrowed tensor at its
/// resolved offset; `Run` is then a flat switch over the op list calling
/// non-virtual kernels on the pre-built tensors. The arena is never
/// Reset while the runner lives, so the borrows stay valid for its
/// whole lifetime (an accidental Reset would trip the workspace epoch
/// check, not read recycled memory). Data-dependent operators
/// (joint-weight / dynamic-topology construction) run against a
/// separate scratch arena that is Reset after each such op.
///
/// Not thread-safe: one PlanRunner (like one Workspace) per worker.
class PlanRunner {
 public:
  /// Takes ownership of a resolved plan (see `ResolveOffsets`). The
  /// recorded model must outlive the runner (ops hold layer pointers).
  explicit PlanRunner(ExecutionPlan plan);

  PlanRunner(const PlanRunner&) = delete;
  PlanRunner& operator=(const PlanRunner&) = delete;

  /// Replays the plan: copies `input` into the input slot, executes the
  /// op list, returns the output slot. The returned reference borrows
  /// the runner's arena — it is overwritten by the next Run() and dies
  /// with the runner; copy rows out to keep them. `input` must match
  /// the captured shape exactly (capture one runner per batch size).
  const Tensor& Run(const Tensor& input);

  const ExecutionPlan& plan() const { return plan_; }
  const Shape& input_shape() const;
  /// Bytes of the pinned slot arena (excludes the opaque-op scratch).
  size_t arena_bytes() const { return plan_.arena_bytes; }

  /// Activation observer for calibration: fired once per Run for the
  /// input slot (after the copy-in) and once per op for its output
  /// slot. Slot ids are capture-order-deterministic, so observations
  /// transfer to separately captured plans of the same model. The
  /// observer runs on the replay thread; keep it cheap and do not set
  /// one on a latency-critical runner.
  using SlotObserver = std::function<void(int64_t slot, const Tensor& value)>;
  void SetObserver(SlotObserver observer) { observer_ = std::move(observer); }

 private:
  ExecutionPlan plan_;
  Workspace arena_;    // pinned: holds every slot, never Reset
  Workspace scratch_;  // opaque data-dependent ops only, Reset per op
  std::vector<Tensor> slots_;  // pre-built borrows, ctor only
  /// Per-op int8 staging (empty for fp32 ops): std::vector storage,
  /// sized once at construction — invisible to the Tensor allocation
  /// budget and untouched by allocation on the replay path.
  std::vector<Int8Staging> int8_stage_;
  SlotObserver observer_;
};

}  // namespace dhgcn

#endif  // DHGCN_PLAN_PLAN_RUNNER_H_
