#ifndef DHGCN_PLAN_FUSED_KERNELS_H_
#define DHGCN_PLAN_FUSED_KERNELS_H_

#include "tensor/tensor.h"

namespace dhgcn {

/// Fused elementwise kernels emitted by FuseElementwise(). Each replaces
/// a chain of separate memory sweeps (BN eval, residual add, ReLU) with
/// a single pass, so the intermediate tensors never hit memory. They are
/// free functions (not Layer methods) so the plan runner can call them
/// without virtual dispatch and the benches can price them in isolation.

/// out = relu(scale ⊙ a + shift + r), per-channel coefficients over
/// an (N, C, ...) tensor. Channel-parallel like the eval BN it replaces.
/// `scale` / `shift` are the frozen BN affine: gamma/sqrt(var+eps) and
/// beta - mean*scale.
void BnAddReluKernel(const Tensor& scale, const Tensor& shift,
                     const Tensor& a, const Tensor& r, Tensor* out);

/// out = relu(a + r), flat elementwise over any shape.
void AddReluKernel(const Tensor& a, const Tensor& r, Tensor* out);

}  // namespace dhgcn

#endif  // DHGCN_PLAN_FUSED_KERNELS_H_
