#ifndef DHGCN_PLAN_PLAN_H_
#define DHGCN_PLAN_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "tensor/tensor.h"

namespace dhgcn {

class BatchNorm2d;
class Conv2d;
class CsrMatrix;
class DynamicVertexMix;
class GlobalAvgPool2d;
class Hypergraph;
class Linear;
class VertexMix;
struct DynamicTopologyOptions;

/// Plan execution mode, selected via `--plan off|on|fused`:
///  - kOff:     layer-by-layer dispatch (legacy path).
///  - kUnfused: compiled plan, bit-identical to the layer path.
///  - kFused:   compiled plan with Conv→BN folding and elementwise
///              fusion (rtol-equivalent, not bit-exact).
enum class PlanMode { kOff, kUnfused, kFused };

Result<PlanMode> ParsePlanMode(const std::string& text);
const char* PlanModeName(PlanMode mode);

/// Kinds of execution-plan operations. Each kind dispatches through a
/// flat switch in `PlanRunner::Run` to a non-virtual kernel — the same
/// kernel code the layer-by-layer path runs, which is what makes the
/// unfused replay memcmp-bit-identical.
enum class PlanOpKind : uint8_t {
  kConv2d,          // out = conv(in0), layer parameters
  kConv2dFolded,    // out = conv(in0), BN-folded fold_weight/fold_bias
  kBatchNormEval,   // out = eval-mode BN(in0), running statistics
  kRelu,            // out = max(in0, 0)
  kLinear,          // out = in0 W^T + b, layer parameters
  kLinearFolded,    // out = in0 W'^T + b', BN-folded parameters
  kGlobalAvgPool,   // (N,C,H,W) -> (N,C) spatial mean
  kVertexMix,       // out[.., v] = sum_u Op[v,u] in0[.., u]
  kDynamicVertexMix,// per-frame operators from slot in1
  kJointWeightOps,  // opaque: DynamicJointWeightOperators(in0)
  kStrideOps,       // opaque: StrideOperatorsInTime(in0, stride)
  kTopologyOps,     // opaque: DynamicTopologyOperators(in0, *topology)
  kAccumulate,      // out += in0 (out is an already-defined slot)
  kBnAddRelu,       // fused: out = relu(scale*in0 + shift + in1)
  kAddRelu,         // fused: out = relu(in0 + in1)
  kSpMM,            // sparse VertexMix: out[.., v] = csr row-dot in0[.., :]
  kLinearInt8,      // int8 GEMM + dequant epilogue (quant data on op)
  kConv2dInt8Folded,// int8 im2col GEMM + BN/bias/ReLU dequant epilogue
};

const char* PlanOpKindName(PlanOpKind kind);

/// Frozen quantization payload of a kLinearInt8/kConv2dInt8Folded op
/// (packed int8 weight panels, per-channel dequant scales, zero-point
/// compensation). Defined in quant/quant_ops.h; the plan IR only holds
/// an opaque shared handle so plan.h stays quantization-free.
struct QuantOpData;

/// One recorded operation. Slot indices refer to `ExecutionPlan::slots`;
/// -1 means unused. Layer pointers are non-owning — the recorded model
/// must outlive the plan. Fold tensors are owned freeze-time copies
/// produced by the fusion passes.
struct PlanOp {
  PlanOpKind kind = PlanOpKind::kRelu;
  int64_t in0 = -1;
  int64_t in1 = -1;
  int64_t out = -1;

  const Conv2d* conv = nullptr;
  BatchNorm2d* bn = nullptr;
  const Linear* linear = nullptr;
  GlobalAvgPool2d* pool = nullptr;
  const VertexMix* mix = nullptr;
  const DynamicVertexMix* dyn_mix = nullptr;
  /// kSpMM: CSR image of the routed operator, owned by the recording
  /// layer (captured at record time — a fixed operator's density can't
  /// change after capture, so the routing decision is baked in).
  const CsrMatrix* csr = nullptr;
  const Hypergraph* hypergraph = nullptr;
  const DynamicTopologyOptions* topology = nullptr;
  int64_t stride = 1;

  Tensor fold_weight;  // kConv2dFolded / kLinearFolded
  Tensor fold_bias;    // kConv2dFolded / kLinearFolded
  Tensor fold_scale;   // kBnAddRelu: per-channel gamma/sqrt(var+eps)
  Tensor fold_shift;   // kBnAddRelu: per-channel beta - mean*scale

  /// kLinearInt8 / kConv2dInt8Folded: frozen quantization payload,
  /// produced by QuantizePlan. Shared so plan copies stay cheap.
  std::shared_ptr<const QuantOpData> quant;
};

/// One activation slot: a tensor of fixed shape living at a fixed byte
/// offset in the runner's pinned arena. Offsets are resolved once by
/// `ResolveOffsets` (liveness-packed, so disjoint-lifetime slots alias
/// the same bytes); -1 marks a dead slot (eliminated by fusion) that
/// gets no storage.
struct PlanSlot {
  Shape shape;
  int64_t offset_bytes = -1;
};

/// A recorded inference program: flat op list + slot table. Produced by
/// `CaptureInferencePlan`, optionally rewritten by the fusion passes,
/// then finalized by `ResolveOffsets` before a PlanRunner can replay it.
struct ExecutionPlan {
  std::vector<PlanOp> ops;
  std::vector<PlanSlot> slots;
  int64_t input_slot = -1;
  int64_t output_slot = -1;
  /// Bytes of the pinned arena after offset resolution.
  size_t arena_bytes = 0;
  bool resolved = false;

  /// Debug: one line per op (kind, slots, shapes).
  std::string Summary() const;
};

/// Assigns every live slot a byte offset via linear-scan liveness
/// packing: a slot's storage is recycled for slots defined after its
/// last use (exact-size reuse), so the arena is far smaller than the
/// sum of slot sizes. Input and output slots are never recycled — the
/// input is rewritten at the start of every replay and the output must
/// survive until the caller has consumed it. Idempotent requirement:
/// call once, after any fusion passes.
void ResolveOffsets(ExecutionPlan* plan);

}  // namespace dhgcn

#endif  // DHGCN_PLAN_PLAN_H_
