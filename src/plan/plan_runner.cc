#include "plan/plan_runner.h"

#include <cstddef>
#include <utility>

#include "base/check.h"
#include "core/dynamic_joint_weight.h"
#include "core/dynamic_topology.h"
#include "hypergraph/hypergraph_conv.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/relu.h"
#include "plan/fused_kernels.h"
#include "tensor/sparse.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

PlanRunner::PlanRunner(ExecutionPlan plan) : plan_(std::move(plan)) {
  DHGCN_CHECK(plan_.resolved);
  DHGCN_CHECK_GE(plan_.input_slot, 0);
  DHGCN_CHECK_GE(plan_.output_slot, 0);
  arena_.ReservePinned(plan_.arena_bytes);
  // Int8 staging buffers (std::vector, not Tensor — outside the
  // allocation budget) are sized once here so Run never grows them.
  int8_stage_.resize(plan_.ops.size());  // lint: allow-plan-alloc (ctor setup)
  for (size_t i = 0; i < plan_.ops.size(); ++i) {
    const PlanOp& op = plan_.ops[i];
    if (op.quant != nullptr) {
      SizeInt8Staging(op, plan_.slots[static_cast<size_t>(op.in0)].shape,
                      &int8_stage_[i]);
    }
  }
  // Every slot tensor is built exactly once, here; Run() only reuses
  // them. Dead slots (fused away) get an empty placeholder that is
  // never touched by any surviving op.
  slots_.reserve(plan_.slots.size());  // lint: allow-plan-alloc (ctor setup)
  for (const PlanSlot& slot : plan_.slots) {
    if (slot.offset_bytes < 0) {
      slots_.push_back(Tensor());  // lint: allow-plan-alloc (ctor setup)
    } else {
      // lint: allow-plan-alloc (ctor setup); lint: allow-ws-lifetime —
      // pinned arena (ReservePinned): offsets stay valid across Reset.
      slots_.push_back(arena_.BorrowAt(
          static_cast<size_t>(slot.offset_bytes), slot.shape));
    }
  }
}

const Shape& PlanRunner::input_shape() const {
  return plan_.slots[static_cast<size_t>(plan_.input_slot)].shape;
}

const Tensor& PlanRunner::Run(const Tensor& input) {
  Tensor& in_slot = slots_[static_cast<size_t>(plan_.input_slot)];
  DHGCN_CHECK(ShapesEqual(input.shape(), in_slot.shape()));
  in_slot.CopyFrom(input);
  if (observer_) observer_(plan_.input_slot, in_slot);
  for (size_t idx = 0; idx < plan_.ops.size(); ++idx) {
    const PlanOp& op = plan_.ops[idx];
    const Tensor& in0 = slots_[static_cast<size_t>(op.in0)];
    Tensor& out = slots_[static_cast<size_t>(op.out)];
    switch (op.kind) {
      case PlanOpKind::kConv2d:
        op.conv->ForwardPlan(in0, nullptr, nullptr, &out);
        break;
      case PlanOpKind::kConv2dFolded:
        op.conv->ForwardPlan(in0, &op.fold_weight, &op.fold_bias, &out);
        break;
      case PlanOpKind::kBatchNormEval:
        op.bn->EvalPlan(in0, &out);
        break;
      case PlanOpKind::kRelu:
        ReLU::EvalPlan(in0, &out);
        break;
      case PlanOpKind::kLinear:
        op.linear->ForwardPlan(in0, nullptr, nullptr, &out);
        break;
      case PlanOpKind::kLinearFolded:
        op.linear->ForwardPlan(in0, &op.fold_weight, &op.fold_bias, &out);
        break;
      case PlanOpKind::kGlobalAvgPool:
        op.pool->EvalPlan(in0, &out);
        break;
      case PlanOpKind::kVertexMix:
        op.mix->MixPlan(in0, &out);
        break;
      case PlanOpKind::kSpMM:
        // Routing decided at capture time; the CSR image lives in the
        // recording layer. Allocation-free by construction.
        SparseMixInto(*op.csr, in0, &out);
        break;
      case PlanOpKind::kDynamicVertexMix:
        op.dyn_mix->MixPlan(in0, slots_[static_cast<size_t>(op.in1)], &out);
        break;
      case PlanOpKind::kJointWeightOps: {
        // Data-dependent values, static shape: run the exact layer-path
        // function against the scratch arena, then snapshot the result
        // into the pinned slot. Same function, same input ⇒ same bits.
        const Tensor ops = DynamicJointWeightOperators(
            in0, *op.hypergraph, &scratch_);
        out.CopyFrom(ops);
        scratch_.Reset();
        break;
      }
      case PlanOpKind::kStrideOps: {
        const Tensor ops = StrideOperatorsInTime(in0, op.stride, &scratch_);
        out.CopyFrom(ops);
        scratch_.Reset();
        break;
      }
      case PlanOpKind::kTopologyOps: {
        const Tensor ops =
            DynamicTopologyOperators(in0, *op.topology, &scratch_);
        out.CopyFrom(ops);
        scratch_.Reset();
        break;
      }
      case PlanOpKind::kAccumulate:
        AddInPlace(out, in0);
        break;
      case PlanOpKind::kBnAddRelu:
        BnAddReluKernel(op.fold_scale, op.fold_shift, in0,
                        slots_[static_cast<size_t>(op.in1)], &out);
        break;
      case PlanOpKind::kAddRelu:
        AddReluKernel(in0, slots_[static_cast<size_t>(op.in1)], &out);
        break;
      case PlanOpKind::kLinearInt8:
        RunLinearInt8(op, &int8_stage_[idx], in0, &out);
        break;
      case PlanOpKind::kConv2dInt8Folded:
        RunConv2dInt8(op, &int8_stage_[idx], in0, &out);
        break;
    }
    if (observer_) observer_(op.out, out);
  }
  return slots_[static_cast<size_t>(plan_.output_slot)];
}

}  // namespace dhgcn
