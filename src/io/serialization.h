#ifndef DHGCN_IO_SERIALIZATION_H_
#define DHGCN_IO_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "nn/layer.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Binary tensor / checkpoint (de)serialization.
///
/// Format v2 (little-endian, native float32):
///   file    := magic("DHGW") version(u32=2) flags(u32)
///              entry_count(u64) entry* [trainer_block]
///   entry   := block
///   block   := payload_len(u64) payload crc32(u32)
///   payload := name_len(u64) name(bytes) tensor      (for entries)
///   tensor  := ndim(u64) dims(i64 * ndim) data(f32 * numel)
///
/// Every block carries a CRC-32 of its payload, so truncation, torn
/// writes, and bit flips are detected at load time with a descriptive
/// IOError instead of silently corrupting the model. When
/// `flags & kCheckpointHasTrainerState`, a trainer block follows the
/// entries carrying epoch, best metric, optimizer slots (SGD momentum /
/// Adam moments + step count), and the dataloader RNG state — everything
/// `Trainer::TrainWithResume` needs to continue a killed run bit-exactly.
///
/// All writers are atomic: content is staged to `path + ".tmp"`, fsynced,
/// and renamed over `path`, so a crash mid-save never destroys the
/// previous checkpoint. Version-1 files (no CRCs, sidecar `.meta`) remain
/// readable.
///
/// Parameters are matched **by name**: loading requires every entry to
/// exist in the target layer with the same shape, and every layer
/// parameter to be present in the file, so checkpoints are exchangeable
/// only between identical architectures — mismatches produce a
/// descriptive error instead of silent corruption.

/// Writes one tensor (without the file header).
Status WriteTensor(std::ostream& os, const Tensor& tensor);
/// Reads one tensor (without the file header).
Result<Tensor> ReadTensor(std::istream& is);

/// Writes `bytes` to `path` atomically (tmp file + fsync + rename).
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Saves all parameters of `layer` to `path` (format v2, atomic).
Status SaveParameters(const std::string& path, Layer& layer);

/// Loads parameters saved by SaveParameters into `layer` (strict
/// name/shape matching in both directions; reads v1 and v2 files).
Status LoadParameters(const std::string& path, Layer& layer);

/// Reads a checkpoint into a name->tensor map (for tools/inspection).
Result<std::map<std::string, Tensor>> LoadParameterMap(
    const std::string& path);

/// \brief Optimizer slot tensor stored alongside the parameters, keyed
/// like "sgd_velocity/<param>" or "adam_m/<param>".
struct OptimizerSlot {
  std::string name;
  Tensor value;
};

/// \brief Trainer-internal state captured for bit-exact resume.
struct TrainerState {
  /// "sgd", "adam", or "" when no optimizer state was saved (v1 files).
  std::string optimizer;
  int64_t adam_step_count = 0;
  /// Opaque serialized DataLoader RNG state ("" when not captured).
  std::string loader_rng;
  std::vector<OptimizerSlot> slots;
};

/// \brief Training checkpoint: parameters plus trainer metadata.
struct Checkpoint {
  /// Number of *completed* epochs (training resumes at this epoch).
  int64_t epoch = 0;
  double best_metric = 0.0;
  TrainerState trainer;
};

/// Saves parameters and the full trainer state to a single v2 file
/// (atomic write). Replaces the v1 two-file (`path` + `path + ".meta"`)
/// layout.
Status SaveCheckpoint(const std::string& path, Layer& layer,
                      const Checkpoint& meta);
/// Loads a checkpoint written by SaveCheckpoint. Also reads v1
/// checkpoints (parameters file + sidecar `.meta`), returning an empty
/// TrainerState for them.
Result<Checkpoint> LoadCheckpoint(const std::string& path, Layer& layer);

}  // namespace dhgcn

#endif  // DHGCN_IO_SERIALIZATION_H_
