#ifndef DHGCN_IO_SERIALIZATION_H_
#define DHGCN_IO_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "base/result.h"
#include "nn/layer.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief Binary tensor / checkpoint (de)serialization.
///
/// Format (little-endian, native float32):
///   file      := magic("DHGW") version(u32) entry_count(u64) entry*
///   entry     := name_len(u64) name(bytes) tensor
///   tensor    := ndim(u64) dims(i64 * ndim) data(f32 * numel)
///
/// Parameters are matched **by name**: loading requires every entry to
/// exist in the target layer with the same shape, and every layer
/// parameter to be present in the file, so checkpoints are exchangeable
/// only between identical architectures — mismatches produce a
/// descriptive error instead of silent corruption.

/// Writes one tensor (without the file header).
Status WriteTensor(std::ostream& os, const Tensor& tensor);
/// Reads one tensor (without the file header).
Result<Tensor> ReadTensor(std::istream& is);

/// Saves all parameters of `layer` to `path`.
Status SaveParameters(const std::string& path, Layer& layer);

/// Loads parameters saved by SaveParameters into `layer` (strict
/// name/shape matching in both directions).
Status LoadParameters(const std::string& path, Layer& layer);

/// Reads a checkpoint into a name->tensor map (for tools/inspection).
Result<std::map<std::string, Tensor>> LoadParameterMap(
    const std::string& path);

/// \brief Training checkpoint: parameters plus trainer metadata.
struct Checkpoint {
  int64_t epoch = 0;
  double best_metric = 0.0;
};

/// Saves parameters and metadata side by side (path and path + ".meta").
Status SaveCheckpoint(const std::string& path, Layer& layer,
                      const Checkpoint& meta);
/// Loads a checkpoint saved by SaveCheckpoint.
Result<Checkpoint> LoadCheckpoint(const std::string& path, Layer& layer);

}  // namespace dhgcn

#endif  // DHGCN_IO_SERIALIZATION_H_
