#include "io/serialization.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "base/crc32.h"
#include "base/fault_injection.h"
#include "base/string_util.h"

namespace dhgcn {

namespace {

constexpr char kMagic[4] = {'D', 'H', 'G', 'W'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr uint32_t kFlagTrainerState = 1u;
// Upper bound for one CRC-framed block: the biggest DHGCN checkpoints are
// tens of MB, so 1 GiB catches garbage length fields without refusing any
// legitimate file.
constexpr uint64_t kMaxBlockBytes = 1ULL << 30;

Status WriteRaw(std::ostream& os, const void* data, size_t bytes) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  if (!os.good()) return Status::IOError("write failed");
  return Status::OK();
}

Status ReadRaw(std::istream& is, void* data, size_t bytes) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (is.gcount() != static_cast<std::streamsize>(bytes)) {
    return Status::IOError("unexpected end of file");
  }
  return Status::OK();
}

template <typename T>
Status WriteScalar(std::ostream& os, T value) {
  return WriteRaw(os, &value, sizeof(T));
}

template <typename T>
Result<T> ReadScalar(std::istream& is) {
  T value;
  DHGCN_RETURN_IF_ERROR(ReadRaw(is, &value, sizeof(T)));
  return value;
}

Status WriteString(std::ostream& os, const std::string& text) {
  DHGCN_RETURN_IF_ERROR(WriteScalar<uint64_t>(os, text.size()));
  return WriteRaw(os, text.data(), text.size());
}

Result<std::string> ReadString(std::istream& is) {
  DHGCN_ASSIGN_OR_RETURN(uint64_t length, ReadScalar<uint64_t>(is));
  if (length > (1ULL << 20)) {
    return Status::IOError(StrCat("implausible string length ", length));
  }
  std::string text(length, '\0');
  DHGCN_RETURN_IF_ERROR(ReadRaw(is, text.data(), length));
  return text;
}

struct Header {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t entry_count = 0;
};

Status WriteHeader(std::ostream& os, uint32_t flags, uint64_t entry_count) {
  DHGCN_RETURN_IF_ERROR(WriteRaw(os, kMagic, sizeof(kMagic)));
  DHGCN_RETURN_IF_ERROR(WriteScalar<uint32_t>(os, kVersionV2));
  DHGCN_RETURN_IF_ERROR(WriteScalar<uint32_t>(os, flags));
  return WriteScalar<uint64_t>(os, entry_count);
}

Result<Header> ReadHeader(std::istream& is) {
  char magic[4];
  DHGCN_RETURN_IF_ERROR(ReadRaw(is, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a DHGCN weight file (bad magic)");
  }
  Header header;
  DHGCN_ASSIGN_OR_RETURN(header.version, ReadScalar<uint32_t>(is));
  if (header.version != kVersionV1 && header.version != kVersionV2) {
    return Status::IOError(
        StrCat("unsupported version ", header.version));
  }
  if (header.version >= kVersionV2) {
    DHGCN_ASSIGN_OR_RETURN(header.flags, ReadScalar<uint32_t>(is));
    if ((header.flags & ~kFlagTrainerState) != 0) {
      return Status::IOError(
          StrCat("unknown header flags 0x", header.flags,
                 " (corrupt file or newer format)"));
    }
  }
  DHGCN_ASSIGN_OR_RETURN(header.entry_count, ReadScalar<uint64_t>(is));
  return header;
}

/// Frames `payload` as length + bytes + CRC-32.
Status AppendBlock(std::ostream& os, const std::string& payload) {
  DHGCN_RETURN_IF_ERROR(WriteScalar<uint64_t>(os, payload.size()));
  DHGCN_RETURN_IF_ERROR(WriteRaw(os, payload.data(), payload.size()));
  return WriteScalar<uint32_t>(os, Crc32(payload));
}

/// Reads one CRC-framed block and verifies its checksum.
Result<std::string> ReadBlock(std::istream& is, const char* what) {
  DHGCN_ASSIGN_OR_RETURN(uint64_t length, ReadScalar<uint64_t>(is));
  if (length > kMaxBlockBytes) {
    return Status::IOError(
        StrCat("implausible ", what, " block size ", length));
  }
  std::string payload(length, '\0');
  DHGCN_RETURN_IF_ERROR(ReadRaw(is, payload.data(), length));
  DHGCN_ASSIGN_OR_RETURN(uint32_t stored, ReadScalar<uint32_t>(is));
  uint32_t computed = Crc32(payload);
  if (stored != computed) {
    return Status::IOError(
        StrCat("CRC mismatch in ", what, " block (stored ", stored,
               ", computed ", computed, "): corrupt checkpoint"));
  }
  return payload;
}

Result<std::string> BuildNamedTensorPayload(const std::string& name,
                                            const Tensor& tensor) {
  std::ostringstream payload;
  DHGCN_RETURN_IF_ERROR(WriteString(payload, name));
  DHGCN_RETURN_IF_ERROR(WriteTensor(payload, tensor));
  return payload.str();
}

Status ParseNamedTensorPayload(const std::string& payload,
                               std::string* name, Tensor* tensor) {
  std::istringstream is(payload);
  DHGCN_ASSIGN_OR_RETURN(*name, ReadString(is));
  DHGCN_ASSIGN_OR_RETURN(*tensor, ReadTensor(is));
  return Status::OK();
}

Result<std::map<std::string, Tensor>> ReadEntries(std::istream& is,
                                                  const Header& header) {
  std::map<std::string, Tensor> entries;
  for (uint64_t i = 0; i < header.entry_count; ++i) {
    std::string name;
    Tensor tensor;
    if (header.version >= kVersionV2) {
      DHGCN_ASSIGN_OR_RETURN(std::string payload,
                             ReadBlock(is, "parameter"));
      DHGCN_RETURN_IF_ERROR(
          ParseNamedTensorPayload(payload, &name, &tensor));
    } else {
      DHGCN_ASSIGN_OR_RETURN(name, ReadString(is));
      DHGCN_ASSIGN_OR_RETURN(tensor, ReadTensor(is));
    }
    if (!entries.emplace(name, std::move(tensor)).second) {
      return Status::IOError(StrCat("duplicate entry ", name));
    }
  }
  return entries;
}

/// Validate-then-commit: only mutate the model once everything matched.
Status CommitEntriesToLayer(const std::map<std::string, Tensor>& entries,
                            Layer& layer) {
  std::vector<ParamRef> params = layer.Params();
  if (entries.size() != params.size()) {
    return Status::InvalidArgument(
        StrCat("checkpoint has ", entries.size(), " entries but model has ",
               params.size(), " parameters"));
  }
  for (ParamRef& param : params) {
    auto it = entries.find(param.name);
    if (it == entries.end()) {
      return Status::InvalidArgument(
          StrCat("checkpoint missing parameter ", param.name));
    }
    if (!ShapesEqual(it->second.shape(), param.value->shape())) {
      return Status::InvalidArgument(
          StrCat("shape mismatch for ", param.name, ": checkpoint ",
                 ShapeToString(it->second.shape()), " vs model ",
                 ShapeToString(param.value->shape())));
    }
  }
  for (ParamRef& param : params) {
    param.value->CopyFrom(entries.at(param.name));
  }
  return Status::OK();
}

Status AppendParameterEntries(std::ostream& os, Layer& layer) {
  std::set<std::string> names;
  for (const ParamRef& param : layer.Params()) {
    if (!names.insert(param.name).second) {
      return Status::Internal(
          StrCat("duplicate parameter name: ", param.name));
    }
    DHGCN_ASSIGN_OR_RETURN(
        std::string payload,
        BuildNamedTensorPayload(param.name, *param.value));
    DHGCN_RETURN_IF_ERROR(AppendBlock(os, payload));
  }
  return Status::OK();
}

Result<std::string> BuildTrainerPayload(const Checkpoint& meta) {
  std::ostringstream payload;
  DHGCN_RETURN_IF_ERROR(WriteScalar<int64_t>(payload, meta.epoch));
  DHGCN_RETURN_IF_ERROR(WriteScalar<double>(payload, meta.best_metric));
  DHGCN_RETURN_IF_ERROR(WriteString(payload, meta.trainer.optimizer));
  DHGCN_RETURN_IF_ERROR(
      WriteScalar<int64_t>(payload, meta.trainer.adam_step_count));
  DHGCN_RETURN_IF_ERROR(WriteString(payload, meta.trainer.loader_rng));
  DHGCN_RETURN_IF_ERROR(WriteScalar<uint64_t>(
      payload, meta.trainer.slots.size()));
  for (const OptimizerSlot& slot : meta.trainer.slots) {
    DHGCN_RETURN_IF_ERROR(WriteString(payload, slot.name));
    DHGCN_RETURN_IF_ERROR(WriteTensor(payload, slot.value));
  }
  return payload.str();
}

Status ParseTrainerPayload(const std::string& payload, Checkpoint* meta) {
  std::istringstream is(payload);
  DHGCN_ASSIGN_OR_RETURN(meta->epoch, ReadScalar<int64_t>(is));
  DHGCN_ASSIGN_OR_RETURN(meta->best_metric, ReadScalar<double>(is));
  DHGCN_ASSIGN_OR_RETURN(meta->trainer.optimizer, ReadString(is));
  DHGCN_ASSIGN_OR_RETURN(meta->trainer.adam_step_count,
                         ReadScalar<int64_t>(is));
  DHGCN_ASSIGN_OR_RETURN(meta->trainer.loader_rng, ReadString(is));
  DHGCN_ASSIGN_OR_RETURN(uint64_t slot_count, ReadScalar<uint64_t>(is));
  if (slot_count > (1ULL << 20)) {
    return Status::IOError(
        StrCat("implausible optimizer slot count ", slot_count));
  }
  meta->trainer.slots.clear();
  for (uint64_t i = 0; i < slot_count; ++i) {
    OptimizerSlot slot;
    DHGCN_ASSIGN_OR_RETURN(slot.name, ReadString(is));
    DHGCN_ASSIGN_OR_RETURN(slot.value, ReadTensor(is));
    meta->trainer.slots.push_back(std::move(slot));
  }
  return Status::OK();
}

Status SyncToDisk(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Status::IOError(StrCat("cannot fsync ", path));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError(StrCat("fsync failed for ", path));
#else
  (void)path;  // best effort on non-POSIX platforms
#endif
  return Status::OK();
}

}  // namespace

Status WriteTensor(std::ostream& os, const Tensor& tensor) {
  DHGCN_RETURN_IF_ERROR(
      WriteScalar<uint64_t>(os, static_cast<uint64_t>(tensor.ndim())));
  for (int64_t d = 0; d < tensor.ndim(); ++d) {
    DHGCN_RETURN_IF_ERROR(WriteScalar<int64_t>(os, tensor.dim(d)));
  }
  return WriteRaw(os, tensor.data(),
                  static_cast<size_t>(tensor.numel()) * sizeof(float));
}

Result<Tensor> ReadTensor(std::istream& is) {
  DHGCN_ASSIGN_OR_RETURN(uint64_t ndim, ReadScalar<uint64_t>(is));
  if (ndim > 16) {
    return Status::IOError(StrCat("implausible tensor rank ", ndim));
  }
  Shape shape(ndim);
  // Validate the element count with overflow-checked arithmetic BEFORE
  // constructing the tensor: corrupt dimension fields (bit flips in v1
  // files, or garbage that slips past framing) must produce an error,
  // not a multi-terabyte allocation or a signed-overflow numel.
  constexpr int64_t kMaxElements =
      static_cast<int64_t>(kMaxBlockBytes / sizeof(float));
  int64_t numel = 1;
  for (uint64_t d = 0; d < ndim; ++d) {
    DHGCN_ASSIGN_OR_RETURN(shape[d], ReadScalar<int64_t>(is));
    if (shape[d] < 0 || shape[d] > (1LL << 32)) {
      return Status::IOError(StrCat("implausible dimension ", shape[d]));
    }
    if (shape[d] != 0 && numel > kMaxElements / shape[d]) {
      return Status::IOError(
          StrCat("implausible tensor size ", ShapeToString(shape)));
    }
    numel *= shape[d];
  }
  Tensor tensor(shape);
  DHGCN_RETURN_IF_ERROR(
      ReadRaw(is, tensor.data(),
              static_cast<size_t>(tensor.numel()) * sizeof(float)));
  return tensor;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  FaultInjection& faults = FaultInjection::Get();
  if (faults.ShouldFire(FaultSite::kFileWrite)) {
    return Status::IOError(
        StrCat("fault injection: write failure for ", path));
  }
  std::string content = bytes;
  if (faults.ShouldFire(FaultSite::kCheckpointTruncate)) {
    // Simulates a torn write that still got renamed into place: the
    // reader must detect the damage via CRC / EOF, never crash.
    size_t drop = static_cast<size_t>(
        std::min<int64_t>(faults.payload(FaultSite::kCheckpointTruncate),
                          static_cast<int64_t>(content.size())));
    content.resize(content.size() - drop);
  }
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) {
      return Status::IOError(
          StrCat("cannot open ", tmp_path, " for writing"));
    }
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    os.flush();
    if (!os.good()) {
      std::remove(tmp_path.c_str());
      return Status::IOError(StrCat("write failed for ", tmp_path));
    }
  }
  Status sync = SyncToDisk(tmp_path);
  if (!sync.ok()) {
    std::remove(tmp_path.c_str());
    return sync;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError(
        StrCat("cannot rename ", tmp_path, " to ", path));
  }
  return Status::OK();
}

Status SaveParameters(const std::string& path, Layer& layer) {
  std::ostringstream os;
  DHGCN_RETURN_IF_ERROR(
      WriteHeader(os, /*flags=*/0, layer.Params().size()));
  DHGCN_RETURN_IF_ERROR(AppendParameterEntries(os, layer));
  return WriteFileAtomic(path, os.str());
}

Result<std::map<std::string, Tensor>> LoadParameterMap(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    return Status::IOError(StrCat("cannot open ", path));
  }
  DHGCN_ASSIGN_OR_RETURN(Header header, ReadHeader(is));
  DHGCN_ASSIGN_OR_RETURN(auto entries, ReadEntries(is, header));
  if (header.version >= kVersionV2 &&
      (header.flags & kFlagTrainerState) != 0) {
    // The header promises a trainer-state trailer; verify it exists and
    // CRC-checks even though the caller only wants weights. A flipped
    // flags bit in a weights-only file fails here instead of being
    // silently ignored.
    DHGCN_RETURN_IF_ERROR(ReadBlock(is, "trainer-state").status());
  }
  return entries;
}

Status LoadParameters(const std::string& path, Layer& layer) {
  DHGCN_ASSIGN_OR_RETURN(auto entries, LoadParameterMap(path));
  return CommitEntriesToLayer(entries, layer);
}

Status SaveCheckpoint(const std::string& path, Layer& layer,
                      const Checkpoint& meta) {
  std::ostringstream os;
  DHGCN_RETURN_IF_ERROR(
      WriteHeader(os, kFlagTrainerState, layer.Params().size()));
  DHGCN_RETURN_IF_ERROR(AppendParameterEntries(os, layer));
  DHGCN_ASSIGN_OR_RETURN(std::string trainer_payload,
                         BuildTrainerPayload(meta));
  DHGCN_RETURN_IF_ERROR(AppendBlock(os, trainer_payload));
  return WriteFileAtomic(path, os.str());
}

Result<Checkpoint> LoadCheckpoint(const std::string& path, Layer& layer) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    return Status::IOError(StrCat("cannot open ", path));
  }
  DHGCN_ASSIGN_OR_RETURN(Header header, ReadHeader(is));
  DHGCN_ASSIGN_OR_RETURN(auto entries, ReadEntries(is, header));
  if (header.version < kVersionV2) {
    // v1 layout: parameters file plus sidecar text metadata.
    DHGCN_RETURN_IF_ERROR(CommitEntriesToLayer(entries, layer));
    std::ifstream meta_is(path + ".meta");
    if (!meta_is.is_open()) {
      return Status::IOError(StrCat("cannot open ", path, ".meta"));
    }
    Checkpoint meta;
    meta_is >> meta.epoch >> meta.best_metric;
    if (meta_is.fail()) return Status::IOError("meta parse failed");
    return meta;
  }
  if ((header.flags & kFlagTrainerState) == 0) {
    return Status::IOError(
        StrCat(path, " is a weights-only file, not a training checkpoint"));
  }
  // Read (and CRC-check) the trainer block before mutating the model, so
  // a checkpoint truncated inside the trailer leaves the model untouched.
  DHGCN_ASSIGN_OR_RETURN(std::string trainer_payload,
                         ReadBlock(is, "trainer-state"));
  Checkpoint meta;
  DHGCN_RETURN_IF_ERROR(ParseTrainerPayload(trainer_payload, &meta));
  DHGCN_RETURN_IF_ERROR(CommitEntriesToLayer(entries, layer));
  return meta;
}

}  // namespace dhgcn
