#include "io/serialization.h"

#include <cstring>
#include <fstream>
#include <set>
#include <vector>

#include "base/string_util.h"

namespace dhgcn {

namespace {

constexpr char kMagic[4] = {'D', 'H', 'G', 'W'};
constexpr uint32_t kVersion = 1;

Status WriteRaw(std::ostream& os, const void* data, size_t bytes) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  if (!os.good()) return Status::IOError("write failed");
  return Status::OK();
}

Status ReadRaw(std::istream& is, void* data, size_t bytes) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (is.gcount() != static_cast<std::streamsize>(bytes)) {
    return Status::IOError("unexpected end of file");
  }
  return Status::OK();
}

template <typename T>
Status WriteScalar(std::ostream& os, T value) {
  return WriteRaw(os, &value, sizeof(T));
}

template <typename T>
Result<T> ReadScalar(std::istream& is) {
  T value;
  DHGCN_RETURN_IF_ERROR(ReadRaw(is, &value, sizeof(T)));
  return value;
}

Status WriteString(std::ostream& os, const std::string& text) {
  DHGCN_RETURN_IF_ERROR(WriteScalar<uint64_t>(os, text.size()));
  return WriteRaw(os, text.data(), text.size());
}

Result<std::string> ReadString(std::istream& is) {
  DHGCN_ASSIGN_OR_RETURN(uint64_t length, ReadScalar<uint64_t>(is));
  if (length > (1ULL << 20)) {
    return Status::IOError(StrCat("implausible string length ", length));
  }
  std::string text(length, '\0');
  DHGCN_RETURN_IF_ERROR(ReadRaw(is, text.data(), length));
  return text;
}

Status WriteHeader(std::ostream& os, uint64_t entry_count) {
  DHGCN_RETURN_IF_ERROR(WriteRaw(os, kMagic, sizeof(kMagic)));
  DHGCN_RETURN_IF_ERROR(WriteScalar<uint32_t>(os, kVersion));
  return WriteScalar<uint64_t>(os, entry_count);
}

Result<uint64_t> ReadHeader(std::istream& is) {
  char magic[4];
  DHGCN_RETURN_IF_ERROR(ReadRaw(is, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a DHGCN weight file (bad magic)");
  }
  DHGCN_ASSIGN_OR_RETURN(uint32_t version, ReadScalar<uint32_t>(is));
  if (version != kVersion) {
    return Status::IOError(StrCat("unsupported version ", version));
  }
  return ReadScalar<uint64_t>(is);
}

}  // namespace

Status WriteTensor(std::ostream& os, const Tensor& tensor) {
  DHGCN_RETURN_IF_ERROR(
      WriteScalar<uint64_t>(os, static_cast<uint64_t>(tensor.ndim())));
  for (int64_t d = 0; d < tensor.ndim(); ++d) {
    DHGCN_RETURN_IF_ERROR(WriteScalar<int64_t>(os, tensor.dim(d)));
  }
  return WriteRaw(os, tensor.data(),
                  static_cast<size_t>(tensor.numel()) * sizeof(float));
}

Result<Tensor> ReadTensor(std::istream& is) {
  DHGCN_ASSIGN_OR_RETURN(uint64_t ndim, ReadScalar<uint64_t>(is));
  if (ndim > 16) {
    return Status::IOError(StrCat("implausible tensor rank ", ndim));
  }
  Shape shape(ndim);
  for (uint64_t d = 0; d < ndim; ++d) {
    DHGCN_ASSIGN_OR_RETURN(shape[d], ReadScalar<int64_t>(is));
    if (shape[d] < 0 || shape[d] > (1LL << 32)) {
      return Status::IOError(StrCat("implausible dimension ", shape[d]));
    }
  }
  Tensor tensor(shape);
  DHGCN_RETURN_IF_ERROR(
      ReadRaw(is, tensor.data(),
              static_cast<size_t>(tensor.numel()) * sizeof(float)));
  return tensor;
}

Status SaveParameters(const std::string& path, Layer& layer) {
  std::vector<ParamRef> params = layer.Params();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.is_open()) {
    return Status::IOError(StrCat("cannot open ", path, " for writing"));
  }
  DHGCN_RETURN_IF_ERROR(WriteHeader(os, params.size()));
  std::set<std::string> names;
  for (const ParamRef& param : params) {
    if (!names.insert(param.name).second) {
      return Status::Internal(
          StrCat("duplicate parameter name: ", param.name));
    }
    DHGCN_RETURN_IF_ERROR(WriteString(os, param.name));
    DHGCN_RETURN_IF_ERROR(WriteTensor(os, *param.value));
  }
  os.flush();
  if (!os.good()) return Status::IOError(StrCat("flush failed for ", path));
  return Status::OK();
}

Result<std::map<std::string, Tensor>> LoadParameterMap(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    return Status::IOError(StrCat("cannot open ", path));
  }
  DHGCN_ASSIGN_OR_RETURN(uint64_t count, ReadHeader(is));
  std::map<std::string, Tensor> entries;
  for (uint64_t i = 0; i < count; ++i) {
    DHGCN_ASSIGN_OR_RETURN(std::string name, ReadString(is));
    DHGCN_ASSIGN_OR_RETURN(Tensor tensor, ReadTensor(is));
    if (!entries.emplace(name, std::move(tensor)).second) {
      return Status::IOError(StrCat("duplicate entry ", name));
    }
  }
  return entries;
}

Status LoadParameters(const std::string& path, Layer& layer) {
  DHGCN_ASSIGN_OR_RETURN(auto entries, LoadParameterMap(path));
  std::vector<ParamRef> params = layer.Params();
  if (entries.size() != params.size()) {
    return Status::InvalidArgument(
        StrCat("checkpoint has ", entries.size(), " entries but model has ",
               params.size(), " parameters"));
  }
  for (ParamRef& param : params) {
    auto it = entries.find(param.name);
    if (it == entries.end()) {
      return Status::InvalidArgument(
          StrCat("checkpoint missing parameter ", param.name));
    }
    if (!ShapesEqual(it->second.shape(), param.value->shape())) {
      return Status::InvalidArgument(
          StrCat("shape mismatch for ", param.name, ": checkpoint ",
                 ShapeToString(it->second.shape()), " vs model ",
                 ShapeToString(param.value->shape())));
    }
  }
  // Validate-then-commit: only mutate the model once everything matched.
  for (ParamRef& param : params) {
    param.value->CopyFrom(entries.at(param.name));
  }
  return Status::OK();
}

Status SaveCheckpoint(const std::string& path, Layer& layer,
                      const Checkpoint& meta) {
  DHGCN_RETURN_IF_ERROR(SaveParameters(path, layer));
  std::ofstream os(path + ".meta", std::ios::trunc);
  if (!os.is_open()) {
    return Status::IOError(StrCat("cannot open ", path, ".meta"));
  }
  os << meta.epoch << "\n" << meta.best_metric << "\n";
  if (!os.good()) return Status::IOError("meta write failed");
  return Status::OK();
}

Result<Checkpoint> LoadCheckpoint(const std::string& path, Layer& layer) {
  DHGCN_RETURN_IF_ERROR(LoadParameters(path, layer));
  std::ifstream is(path + ".meta");
  if (!is.is_open()) {
    return Status::IOError(StrCat("cannot open ", path, ".meta"));
  }
  Checkpoint meta;
  is >> meta.epoch >> meta.best_metric;
  if (is.fail()) return Status::IOError("meta parse failed");
  return meta;
}

}  // namespace dhgcn
