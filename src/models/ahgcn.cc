#include "models/ahgcn.h"

#include "core/static_hypergraph.h"
#include "hypergraph/hypergraph_conv.h"
#include "models/agcn.h"

namespace dhgcn {

LayerPtr MakeAhgcnModel(SkeletonLayoutType layout, int64_t num_classes,
                        const BaselineScale& scale, uint64_t seed) {
  const SkeletonLayout& l = GetSkeletonLayout(layout);
  Tensor hypergraph_op =
      NormalizedHypergraphOperator(StaticSkeletonHypergraph(l));
  Rng rng(seed);
  std::vector<LayerPtr> blocks;
  int64_t in_channels = 3;
  for (size_t i = 0; i < scale.channels.size(); ++i) {
    int64_t out_channels = scale.channels[i];
    auto spatial = std::make_unique<AdaptiveSpatial>(
        in_channels, out_channels, hypergraph_op.Clone(), rng);
    blocks.push_back(std::make_unique<StBlock>(
        std::move(spatial), in_channels, out_channels, scale.strides[i],
        rng));
    in_channels = out_channels;
  }
  return std::make_unique<BackboneClassifier>(
      "2s-AHGCN", 3, in_channels, num_classes, std::move(blocks),
      scale.dropout, rng);
}

}  // namespace dhgcn
