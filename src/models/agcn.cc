#include "models/agcn.h"

#include <algorithm>

#include "base/check.h"
#include "base/string_util.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

AdaptiveSpatial::AdaptiveSpatial(int64_t in_channels, int64_t out_channels,
                                 Tensor base_op, Rng& rng,
                                 int64_t embed_channels)
    : base_op_(std::move(base_op)) {
  DHGCN_CHECK_EQ(base_op_.ndim(), 2);
  DHGCN_CHECK_EQ(base_op_.dim(0), base_op_.dim(1));
  embed_channels_ =
      embed_channels > 0 ? embed_channels : std::max<int64_t>(4, out_channels / 4);
  Conv2dOptions one_by_one;
  w_ = std::make_unique<Conv2d>(in_channels, out_channels, one_by_one, rng);
  theta_ = std::make_unique<Conv2d>(in_channels, embed_channels_, one_by_one,
                                    rng);
  phi_ = std::make_unique<Conv2d>(in_channels, embed_channels_, one_by_one,
                                  rng);
  // B starts near zero so early training follows the structural prior A,
  // as in the 2s-AGCN initialization.
  b_ = Tensor::RandomNormal(base_op_.shape(), rng, 0.0f, 1e-3f);
  b_grad_ = Tensor(base_op_.shape());
}

Tensor AdaptiveSpatial::Forward(const Tensor& input) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  int64_t v = input.dim(3);
  DHGCN_CHECK_EQ(v, base_op_.dim(0));
  cached_h_ = w_->Forward(input);
  cached_e1_ = theta_->Forward(input);
  cached_e2_ = phi_->Forward(input);
  int64_t n = input.dim(0), t = input.dim(2);
  int64_t ce = embed_channels_;
  float scale = 1.0f / static_cast<float>(ce * t);

  // Similarity S[n,v,u] = scale * sum_{c,t} e1[n,c,t,v] e2[n,c,t,u].
  Tensor scores({n, v, v});
  const float* p1 = cached_e1_.data();
  const float* p2 = cached_e2_.data();
  float* ps = scores.data();
  int64_t plane = t * v;
  for (int64_t b = 0; b < n; ++b) {
    float* smat = ps + b * v * v;
    for (int64_t c = 0; c < ce; ++c) {
      const float* e1p = p1 + (b * ce + c) * plane;
      const float* e2p = p2 + (b * ce + c) * plane;
      for (int64_t tt = 0; tt < t; ++tt) {
        const float* row1 = e1p + tt * v;
        const float* row2 = e2p + tt * v;
        for (int64_t vi = 0; vi < v; ++vi) {
          float a = row1[vi];
          if (a == 0.0f) continue;
          float* srow = smat + vi * v;
          for (int64_t u = 0; u < v; ++u) srow[u] += a * row2[u];
        }
      }
    }
  }
  MulScalarInPlace(scores, scale);
  cached_attention_ = Softmax(scores, /*axis=*/2);  // rows sum to 1

  // Aggregate: y[n,c,t,v'] = sum_u (A + B + C[n])[v',u] h[n,c,t,u].
  int64_t cout = cached_h_.dim(1);
  Tensor out({n, cout, t, v});
  const float* ph = cached_h_.data();
  const float* pa = base_op_.data();
  const float* pb = b_.data();
  const float* pc = cached_attention_.data();
  float* po = out.data();
  std::vector<float> m(static_cast<size_t>(v * v));
  for (int64_t b = 0; b < n; ++b) {
    const float* cmat = pc + b * v * v;
    for (int64_t i = 0; i < v * v; ++i) m[static_cast<size_t>(i)] =
        pa[i] + pb[i] + cmat[i];
    for (int64_t c = 0; c < cout; ++c) {
      const float* hplane = ph + (b * cout + c) * plane;
      float* oplane = po + (b * cout + c) * plane;
      for (int64_t tt = 0; tt < t; ++tt) {
        const float* hrow = hplane + tt * v;
        float* orow = oplane + tt * v;
        for (int64_t vi = 0; vi < v; ++vi) {
          const float* mrow = m.data() + vi * v;
          double acc = 0.0;
          for (int64_t u = 0; u < v; ++u) {
            acc += static_cast<double>(mrow[u]) * hrow[u];
          }
          orow[vi] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor AdaptiveSpatial::Backward(const Tensor& grad_output) {
  int64_t n = grad_output.dim(0), cout = grad_output.dim(1),
          t = grad_output.dim(2), v = grad_output.dim(3);
  DHGCN_CHECK_EQ(cout, cached_h_.dim(1));
  int64_t plane = t * v;
  int64_t ce = embed_channels_;
  float scale = 1.0f / static_cast<float>(ce * t);

  const float* pg = grad_output.data();
  const float* ph = cached_h_.data();
  const float* pa = base_op_.data();
  const float* pb = b_.data();
  const float* pc = cached_attention_.data();

  Tensor grad_h(cached_h_.shape());
  Tensor grad_m({n, v, v});  // d loss / d M[n]
  float* pgh = grad_h.data();
  float* pgm = grad_m.data();
  std::vector<float> m(static_cast<size_t>(v * v));
  for (int64_t b = 0; b < n; ++b) {
    const float* cmat = pc + b * v * v;
    for (int64_t i = 0; i < v * v; ++i) m[static_cast<size_t>(i)] =
        pa[i] + pb[i] + cmat[i];
    float* gm = pgm + b * v * v;
    for (int64_t c = 0; c < cout; ++c) {
      const float* gplane = pg + (b * cout + c) * plane;
      const float* hplane = ph + (b * cout + c) * plane;
      float* ghplane = pgh + (b * cout + c) * plane;
      for (int64_t tt = 0; tt < t; ++tt) {
        const float* grow = gplane + tt * v;
        const float* hrow = hplane + tt * v;
        float* ghrow = ghplane + tt * v;
        for (int64_t vi = 0; vi < v; ++vi) {
          float g = grow[vi];
          if (g == 0.0f) continue;
          const float* mrow = m.data() + vi * v;
          float* gmrow = gm + vi * v;
          for (int64_t u = 0; u < v; ++u) {
            ghrow[u] += g * mrow[u];  // dh = M^T dy
            gmrow[u] += g * hrow[u];  // dM = dy h^T
          }
        }
      }
    }
  }

  // dB accumulates over samples.
  {
    float* pgb = b_grad_.data();
    for (int64_t b = 0; b < n; ++b) {
      const float* gm = pgm + b * v * v;
      for (int64_t i = 0; i < v * v; ++i) pgb[i] += gm[i];
    }
  }

  // Through the row-softmax: dS = C * (dC - rowsum(dC * C)).
  Tensor grad_scores({n, v, v});
  {
    const float* pgc = grad_m.data();  // dC == dM
    float* pgs = grad_scores.data();
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t vi = 0; vi < v; ++vi) {
        const float* crow = pc + (b * v + vi) * v;
        const float* gcrow = pgc + (b * v + vi) * v;
        float* gsrow = pgs + (b * v + vi) * v;
        double inner = 0.0;
        for (int64_t u = 0; u < v; ++u) {
          inner += static_cast<double>(gcrow[u]) * crow[u];
        }
        for (int64_t u = 0; u < v; ++u) {
          gsrow[u] = crow[u] * (gcrow[u] - static_cast<float>(inner));
        }
      }
    }
  }

  // Through the similarity: dE1[n,c,t,v] = scale * sum_u dS[n,v,u] e2[..u],
  //                          dE2[n,c,t,u] = scale * sum_v dS[n,v,u] e1[..v].
  Tensor grad_e1(cached_e1_.shape());
  Tensor grad_e2(cached_e2_.shape());
  {
    const float* p1 = cached_e1_.data();
    const float* p2 = cached_e2_.data();
    const float* pgs = grad_scores.data();
    float* pg1 = grad_e1.data();
    float* pg2 = grad_e2.data();
    for (int64_t b = 0; b < n; ++b) {
      const float* smat = pgs + b * v * v;
      for (int64_t c = 0; c < ce; ++c) {
        const float* e1p = p1 + (b * ce + c) * plane;
        const float* e2p = p2 + (b * ce + c) * plane;
        float* g1p = pg1 + (b * ce + c) * plane;
        float* g2p = pg2 + (b * ce + c) * plane;
        for (int64_t tt = 0; tt < t; ++tt) {
          const float* row1 = e1p + tt * v;
          const float* row2 = e2p + tt * v;
          float* grow1 = g1p + tt * v;
          float* grow2 = g2p + tt * v;
          for (int64_t vi = 0; vi < v; ++vi) {
            const float* srow = smat + vi * v;
            double acc = 0.0;
            float e1v = row1[vi];
            for (int64_t u = 0; u < v; ++u) {
              acc += static_cast<double>(srow[u]) * row2[u];
              grow2[u] += scale * srow[u] * e1v;
            }
            grow1[vi] += scale * static_cast<float>(acc);
          }
        }
      }
    }
  }

  Tensor grad_input = w_->Backward(grad_h);
  AddInPlace(grad_input, theta_->Backward(grad_e1));
  AddInPlace(grad_input, phi_->Backward(grad_e2));
  return grad_input;
}

std::vector<ParamRef> AdaptiveSpatial::Params() {
  std::vector<ParamRef> params;
  auto append = [&params](const char* prefix, Layer* layer) {
    for (ParamRef p : layer->Params()) {
      p.name = std::string(prefix) + "." + p.name;
      params.push_back(p);
    }
  };
  append("w", w_.get());
  append("theta", theta_.get());
  append("phi", phi_.get());
  params.push_back({"B", &b_, &b_grad_});
  return params;
}

void AdaptiveSpatial::SetTraining(bool training) {
  Layer::SetTraining(training);
  w_->SetTraining(training);
  theta_->SetTraining(training);
  phi_->SetTraining(training);
}

std::string AdaptiveSpatial::name() const {
  return StrCat("AdaptiveSpatial(V=", base_op_.dim(0), ")");
}

LayerPtr MakeAgcnModel(SkeletonLayoutType layout, int64_t num_classes,
                       const BaselineScale& scale, uint64_t seed) {
  const SkeletonLayout& l = GetSkeletonLayout(layout);
  Tensor adjacency = SkeletonGraph(l).NormalizedAdjacency();
  Rng rng(seed);
  std::vector<LayerPtr> blocks;
  int64_t in_channels = 3;
  for (size_t i = 0; i < scale.channels.size(); ++i) {
    int64_t out_channels = scale.channels[i];
    auto spatial = std::make_unique<AdaptiveSpatial>(
        in_channels, out_channels, adjacency.Clone(), rng);
    blocks.push_back(std::make_unique<StBlock>(
        std::move(spatial), in_channels, out_channels, scale.strides[i],
        rng));
    in_channels = out_channels;
  }
  return std::make_unique<BackboneClassifier>(
      "2s-AGCN", 3, in_channels, num_classes, std::move(blocks),
      scale.dropout, rng);
}

}  // namespace dhgcn
