#ifndef DHGCN_MODELS_STGCN_H_
#define DHGCN_MODELS_STGCN_H_

#include "data/skeleton.h"
#include "models/st_common.h"
#include "nn/layer.h"

namespace dhgcn {

/// \brief ST-GCN (Yan et al. 2018) single-stream model: StBlocks whose
/// spatial half is a 1x1 convolution followed by the fixed normalized
/// skeleton adjacency (Eq. 1 update rule).
///
/// Note: the original ST-GCN partitions neighbors into three subsets
/// (spatial-configuration partitioning); we implement its uni-labeling
/// variant — a single normalized adjacency — which the ST-GCN paper
/// itself evaluates. This keeps the baseline capacity-matched to the
/// other small-scale models.
LayerPtr MakeStgcnModel(SkeletonLayoutType layout, int64_t num_classes,
                        const BaselineScale& scale, uint64_t seed);

}  // namespace dhgcn

#endif  // DHGCN_MODELS_STGCN_H_
