#ifndef DHGCN_MODELS_PBGCN_H_
#define DHGCN_MODELS_PBGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "data/skeleton.h"
#include "models/st_common.h"
#include "nn/conv2d.h"
#include "nn/layer.h"

namespace dhgcn {

/// \brief The (V, V) normalized adjacency of the subgraph induced by
/// `part` on the skeleton graph, embedded into the full vertex set
/// (rows/columns outside the part are zero).
Tensor PartSubgraphOperator(const SkeletonLayout& layout,
                            const std::vector<int64_t>& part);

/// \brief Spatial layer of PB-GCN (Thakkar & Narayanan): one convolution
/// per body part applied under that part's subgraph operator, aggregated
/// by summation — the "aggregation function" the paper's PB-HGCN ablation
/// removes.
class PartSumSpatial : public Layer {
 public:
  PartSumSpatial(int64_t in_channels, int64_t out_channels,
                 const SkeletonLayout& layout, int64_t num_parts, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  void SetTraining(bool training) override;
  std::string name() const override;

  int64_t num_parts() const {
    return static_cast<int64_t>(part_convs_.size());
  }

 private:
  std::vector<std::unique_ptr<Conv2d>> part_convs_;
  std::vector<Tensor> part_ops_;  // (V, V) each
};

/// \brief PB-GCN model: per-part subgraph convolutions + sum aggregation.
LayerPtr MakePbGcnModel(SkeletonLayoutType layout, int64_t num_classes,
                        int64_t num_parts, const BaselineScale& scale,
                        uint64_t seed);

/// \brief PB-HGCN model (Tab. 2): the PB-GCN parts become hyperedges of a
/// single hypergraph, convolved with one operator — no per-part branches
/// or aggregation function.
LayerPtr MakePbHgcnModel(SkeletonLayoutType layout, int64_t num_classes,
                         int64_t num_parts, const BaselineScale& scale,
                         uint64_t seed);

}  // namespace dhgcn

#endif  // DHGCN_MODELS_PBGCN_H_
