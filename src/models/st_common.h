#ifndef DHGCN_MODELS_ST_COMMON_H_
#define DHGCN_MODELS_ST_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/layer.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/relu.h"
#include "tensor/tensor.h"

namespace dhgcn {

/// \brief One generic spatial-temporal block shared by the GCN-style
/// baselines (ST-GCN, 2s-AGCN, 2s-AHGCN, PB-GCN, PB-HGCN):
///
///   y = ReLU(BN(TCN(ReLU(BN(spatial(x)) + res1(x)))) + res2(.))
///
/// The spatial sub-layer is injected; it must map (N, C_in, T, V) to
/// (N, C_out, T, V). Residuals are identity when shapes allow, otherwise
/// 1x1 (optionally strided) convolutions.
class StBlock : public Layer {
 public:
  StBlock(LayerPtr spatial, int64_t in_channels, int64_t out_channels,
          int64_t temporal_stride, Rng& rng, int64_t temporal_kernel = 3,
          int64_t temporal_dilation = 1);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  void SetTraining(bool training) override;
  std::string name() const override;

 private:
  LayerPtr spatial_;
  std::unique_ptr<BatchNorm2d> spatial_bn_;
  std::unique_ptr<Conv2d> spatial_residual_;  // null => identity
  ReLU spatial_relu_;
  std::unique_ptr<Conv2d> temporal_conv_;
  std::unique_ptr<BatchNorm2d> temporal_bn_;
  std::unique_ptr<Conv2d> temporal_residual_;  // null => identity
  ReLU temporal_relu_;
};

/// \brief Classifier backbone: input BN -> blocks -> GAP -> dropout -> FC.
/// All baseline models are instances of this with different block stacks.
class BackboneClassifier : public Layer {
 public:
  BackboneClassifier(std::string model_name, int64_t in_channels,
                     int64_t feature_channels, int64_t num_classes,
                     std::vector<LayerPtr> blocks, float dropout, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  void SetTraining(bool training) override;
  std::string name() const override { return model_name_; }

 private:
  std::string model_name_;
  std::unique_ptr<BatchNorm2d> input_bn_;
  std::vector<LayerPtr> blocks_;
  GlobalAvgPool2d pool_;
  std::unique_ptr<Dropout> dropout_;  // null when dropout == 0
  std::unique_ptr<Linear> classifier_;
};

/// Channel/stride plan shared by the small-scale baseline models; mirrors
/// DhgcnConfig::Small so comparisons are capacity-matched.
struct BaselineScale {
  std::vector<int64_t> channels = {16, 32, 32, 64};
  std::vector<int64_t> strides = {1, 2, 1, 2};
  float dropout = 0.1f;
};

/// \brief Spatial layer "1x1 conv then fixed vertex operator" used by
/// ST-GCN (normalized adjacency) and PB-HGCN (part hypergraph operator).
LayerPtr MakeFixedOperatorSpatial(int64_t in_channels, int64_t out_channels,
                                  Tensor op, Rng& rng);

}  // namespace dhgcn

#endif  // DHGCN_MODELS_ST_COMMON_H_
