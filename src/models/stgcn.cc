#include "models/stgcn.h"

#include "hypergraph/graph.h"

namespace dhgcn {

LayerPtr MakeStgcnModel(SkeletonLayoutType layout, int64_t num_classes,
                        const BaselineScale& scale, uint64_t seed) {
  const SkeletonLayout& l = GetSkeletonLayout(layout);
  Tensor adjacency = SkeletonGraph(l).NormalizedAdjacency();
  Rng rng(seed);
  std::vector<LayerPtr> blocks;
  int64_t in_channels = 3;
  for (size_t i = 0; i < scale.channels.size(); ++i) {
    int64_t out_channels = scale.channels[i];
    blocks.push_back(std::make_unique<StBlock>(
        MakeFixedOperatorSpatial(in_channels, out_channels,
                                 adjacency.Clone(), rng),
        in_channels, out_channels, scale.strides[i], rng));
    in_channels = out_channels;
  }
  return std::make_unique<BackboneClassifier>(
      "ST-GCN", 3, in_channels, num_classes, std::move(blocks),
      scale.dropout, rng);
}

}  // namespace dhgcn
