#ifndef DHGCN_MODELS_AHGCN_H_
#define DHGCN_MODELS_AHGCN_H_

#include "data/skeleton.h"
#include "models/st_common.h"
#include "nn/layer.h"

namespace dhgcn {

/// \brief 2s-AHGCN single-stream model (Tab. 1 ablation): identical to
/// 2s-AGCN except that the fixed structural operator A is the normalized
/// *static-hypergraph* operator (Eq. 5) instead of the skeleton-graph
/// adjacency — "replace the graph convolutional networks with the
/// hypergraph convolutional networks".
LayerPtr MakeAhgcnModel(SkeletonLayoutType layout, int64_t num_classes,
                        const BaselineScale& scale, uint64_t seed);

}  // namespace dhgcn

#endif  // DHGCN_MODELS_AHGCN_H_
