#include "models/pbgcn.h"

#include <cmath>
#include <unordered_set>

#include "base/check.h"
#include "base/string_util.h"
#include "core/static_hypergraph.h"
#include "hypergraph/hypergraph_conv.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

Tensor PartSubgraphOperator(const SkeletonLayout& layout,
                            const std::vector<int64_t>& part) {
  int64_t v = layout.num_joints;
  std::unordered_set<int64_t> members(part.begin(), part.end());
  // Induced adjacency with self-loops on part members.
  Tensor a({v, v});
  for (int64_t j : part) a.at(j, j) = 1.0f;
  for (const auto& [child, parent] : layout.bones) {
    if (members.count(child) > 0 && members.count(parent) > 0) {
      a.at(child, parent) = 1.0f;
      a.at(parent, child) = 1.0f;
    }
  }
  // Symmetric normalization restricted to the part.
  std::vector<float> inv_sqrt(static_cast<size_t>(v), 0.0f);
  for (int64_t j : part) {
    float deg = 0.0f;
    for (int64_t u = 0; u < v; ++u) deg += a.at(j, u);
    inv_sqrt[static_cast<size_t>(j)] = 1.0f / std::sqrt(deg);
  }
  Tensor out({v, v});
  for (int64_t i = 0; i < v; ++i) {
    for (int64_t j = 0; j < v; ++j) {
      out.at(i, j) = inv_sqrt[static_cast<size_t>(i)] * a.at(i, j) *
                     inv_sqrt[static_cast<size_t>(j)];
    }
  }
  return out;
}

PartSumSpatial::PartSumSpatial(int64_t in_channels, int64_t out_channels,
                               const SkeletonLayout& layout,
                               int64_t num_parts, Rng& rng) {
  std::vector<std::vector<int64_t>> parts = PartPartition(layout, num_parts);
  Conv2dOptions one_by_one;
  for (const std::vector<int64_t>& part : parts) {
    part_convs_.push_back(std::make_unique<Conv2d>(in_channels, out_channels,
                                                   one_by_one, rng));
    part_ops_.push_back(PartSubgraphOperator(layout, part));
  }
}

Tensor PartSumSpatial::Forward(const Tensor& input) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  Tensor sum;
  for (size_t p = 0; p < part_convs_.size(); ++p) {
    Tensor h = part_convs_[p]->Forward(input);
    // Apply the part operator on the vertex axis.
    int64_t rows = h.numel() / h.dim(3);
    int64_t v = h.dim(3);
    Tensor y(h.shape());
    const float* ph = h.data();
    const float* pm = part_ops_[p].data();
    float* py = y.data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* hrow = ph + r * v;
      float* yrow = py + r * v;
      for (int64_t vi = 0; vi < v; ++vi) {
        const float* mrow = pm + vi * v;
        double acc = 0.0;
        for (int64_t u = 0; u < v; ++u) {
          acc += static_cast<double>(mrow[u]) * hrow[u];
        }
        yrow[vi] = static_cast<float>(acc);
      }
    }
    if (p == 0) {
      sum = std::move(y);
    } else {
      AddInPlace(sum, y);
    }
  }
  return sum;
}

Tensor PartSumSpatial::Backward(const Tensor& grad_output) {
  Tensor grad_input;
  int64_t v = grad_output.dim(3);
  int64_t rows = grad_output.numel() / v;
  for (size_t p = 0; p < part_convs_.size(); ++p) {
    // dh = M^T dy for this part, then through the part conv.
    Tensor grad_h(grad_output.shape());
    const float* pg = grad_output.data();
    const float* pm = part_ops_[p].data();
    float* pgh = grad_h.data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* grow = pg + r * v;
      float* ghrow = pgh + r * v;
      for (int64_t vi = 0; vi < v; ++vi) {
        float g = grow[vi];
        if (g == 0.0f) continue;
        const float* mrow = pm + vi * v;
        for (int64_t u = 0; u < v; ++u) ghrow[u] += g * mrow[u];
      }
    }
    Tensor gx = part_convs_[p]->Backward(grad_h);
    if (p == 0) {
      grad_input = std::move(gx);
    } else {
      AddInPlace(grad_input, gx);
    }
  }
  return grad_input;
}

std::vector<ParamRef> PartSumSpatial::Params() {
  std::vector<ParamRef> params;
  for (size_t p = 0; p < part_convs_.size(); ++p) {
    for (ParamRef ref : part_convs_[p]->Params()) {
      ref.name = StrCat("part", p, ".", ref.name);
      params.push_back(ref);
    }
  }
  return params;
}

void PartSumSpatial::SetTraining(bool training) {
  Layer::SetTraining(training);
  for (auto& conv : part_convs_) conv->SetTraining(training);
}

std::string PartSumSpatial::name() const {
  return StrCat("PartSumSpatial(parts=", part_convs_.size(), ")");
}

LayerPtr MakePbGcnModel(SkeletonLayoutType layout, int64_t num_classes,
                        int64_t num_parts, const BaselineScale& scale,
                        uint64_t seed) {
  const SkeletonLayout& l = GetSkeletonLayout(layout);
  Rng rng(seed);
  std::vector<LayerPtr> blocks;
  int64_t in_channels = 3;
  for (size_t i = 0; i < scale.channels.size(); ++i) {
    int64_t out_channels = scale.channels[i];
    auto spatial = std::make_unique<PartSumSpatial>(
        in_channels, out_channels, l, num_parts, rng);
    blocks.push_back(std::make_unique<StBlock>(
        std::move(spatial), in_channels, out_channels, scale.strides[i],
        rng));
    in_channels = out_channels;
  }
  return std::make_unique<BackboneClassifier>(
      StrCat("PB-GCN(", num_parts, ")"), 3, in_channels, num_classes,
      std::move(blocks), scale.dropout, rng);
}

LayerPtr MakePbHgcnModel(SkeletonLayoutType layout, int64_t num_classes,
                         int64_t num_parts, const BaselineScale& scale,
                         uint64_t seed) {
  const SkeletonLayout& l = GetSkeletonLayout(layout);
  Tensor op = NormalizedHypergraphOperator(PartBasedHypergraph(l, num_parts));
  Rng rng(seed);
  std::vector<LayerPtr> blocks;
  // Capacity matching: PB-GCN spends P 1x1 convolutions per block where
  // PB-HGCN spends one, so at equal widths the hypergraph variant has
  // ~P-fold fewer spatial parameters and the comparison measures
  // capacity, not topology. With a block cost of roughly
  // C^2 (spatial) + 3 C^2 (temporal kernel 3), widening every layer by
  // f = sqrt((P + 3) / 4) equalizes the per-block parameter budget.
  double width_factor =
      std::sqrt((static_cast<double>(num_parts) + 3.0) / 4.0);
  auto widen = [width_factor](int64_t channels) {
    return std::max<int64_t>(
        1, static_cast<int64_t>(std::lround(
               static_cast<double>(channels) * width_factor)));
  };
  int64_t in_channels = 3;
  for (size_t i = 0; i < scale.channels.size(); ++i) {
    int64_t out_channels = widen(scale.channels[i]);
    blocks.push_back(std::make_unique<StBlock>(
        MakeFixedOperatorSpatial(in_channels, out_channels, op.Clone(), rng),
        in_channels, out_channels, scale.strides[i], rng));
    in_channels = out_channels;
  }
  return std::make_unique<BackboneClassifier>(
      StrCat("PB-HGCN(", num_parts, ")"), 3, in_channels, num_classes,
      std::move(blocks), scale.dropout, rng);
}

}  // namespace dhgcn
