#include "models/tcn_model.h"

#include "base/check.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

TcnModel::TcnModel(SkeletonLayoutType layout, int64_t num_classes,
                   const BaselineScale& scale, uint64_t seed)
    : num_joints_(GetSkeletonLayout(layout).num_joints) {
  Rng rng(seed);
  int64_t in_channels = 3 * num_joints_;
  std::vector<LayerPtr> blocks;
  int64_t channels = in_channels;
  for (size_t i = 0; i < scale.channels.size(); ++i) {
    // Match the GCN models' widths per joint so capacity is comparable.
    int64_t out_channels = scale.channels[i] * 4;
    auto block = std::make_unique<Sequential>();
    Conv2dOptions conv_options;
    conv_options.kernel_h = 5;
    conv_options.pad_h = 2;
    conv_options.stride_h = scale.strides[i];
    block->Emplace<Conv2d>(channels, out_channels, conv_options, rng);
    block->Emplace<BatchNorm2d>(out_channels);
    block->Emplace<ReLU>();
    blocks.push_back(std::move(block));
    channels = out_channels;
  }
  backbone_ = std::make_unique<BackboneClassifier>(
      "TCN", in_channels, channels, num_classes, std::move(blocks),
      scale.dropout, rng);
}

Tensor TcnModel::Forward(const Tensor& input) {
  DHGCN_CHECK_EQ(input.ndim(), 4);
  DHGCN_CHECK_EQ(input.dim(3), num_joints_);
  cached_input_shape_ = input.shape();
  // (N, C, T, V) -> (N, C, V, T) -> (N, C*V, T, 1): joints become
  // channels of a 1-D temporal signal.
  Tensor x = Permute(input, {0, 1, 3, 2})
                 .Reshape({input.dim(0), input.dim(1) * num_joints_,
                           input.dim(2), 1});
  return backbone_->Forward(x);
}

Tensor TcnModel::Backward(const Tensor& grad_output) {
  Tensor g = backbone_->Backward(grad_output);
  g = g.Reshape({cached_input_shape_[0], cached_input_shape_[1],
                 num_joints_, cached_input_shape_[2]});
  return Permute(g, {0, 1, 3, 2});
}

std::vector<ParamRef> TcnModel::Params() { return backbone_->Params(); }

void TcnModel::SetTraining(bool training) {
  Layer::SetTraining(training);
  backbone_->SetTraining(training);
}

LayerPtr MakeTcnModel(SkeletonLayoutType layout, int64_t num_classes,
                      const BaselineScale& scale, uint64_t seed) {
  return std::make_unique<TcnModel>(layout, num_classes, scale, seed);
}

}  // namespace dhgcn
