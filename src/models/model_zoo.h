#ifndef DHGCN_MODELS_MODEL_ZOO_H_
#define DHGCN_MODELS_MODEL_ZOO_H_

#include <string>

#include "base/result.h"
#include "data/skeleton.h"
#include "models/st_common.h"
#include "nn/layer.h"

namespace dhgcn {

/// All classifier architectures implemented in this repository.
enum class ModelKind {
  kTcn,
  kStgcn,
  kAgcn,
  kAhgcn,
  kPbgcn2,
  kPbgcn4,
  kPbgcn6,
  kPbhgcn2,
  kPbhgcn4,
  kPbhgcn6,
  kDhgcn,
};

std::string ModelKindName(ModelKind kind);

/// Parses "tcn", "st-gcn", "2s-agcn", "dhgcn", "pb-gcn4", ... (case
/// insensitive; dashes optional).
Result<ModelKind> ParseModelKind(const std::string& text);

/// \brief Options applied to any model built by the zoo.
struct ModelZooOptions {
  BaselineScale scale;
  /// DHGCN dynamic-topology parameters.
  int64_t kn = 3;
  int64_t km = 4;
  uint64_t seed = 7;
};

/// \brief Builds a single-stream classifier of the requested kind, with
/// capacity matched across kinds (same channel/stride plan). DHGCN uses
/// its Small configuration with the zoo's channel plan.
LayerPtr CreateModel(ModelKind kind, SkeletonLayoutType layout,
                     int64_t num_classes, const ModelZooOptions& options);

}  // namespace dhgcn

#endif  // DHGCN_MODELS_MODEL_ZOO_H_
