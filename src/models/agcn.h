#ifndef DHGCN_MODELS_AGCN_H_
#define DHGCN_MODELS_AGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "data/skeleton.h"
#include "models/st_common.h"
#include "nn/conv2d.h"
#include "nn/layer.h"

namespace dhgcn {

/// \brief Adaptive spatial convolution of 2s-AGCN (Shi et al. 2019):
///
///   y = W(x) aggregated with  M[n] = A + B + C[n]
///
/// where A is a fixed structural operator (normalized skeleton adjacency
/// for AGCN, static-hypergraph operator for AHGCN), B is a fully learnable
/// (V, V) matrix initialized near zero, and C[n] is per-sample attention:
/// row-softmax of the embedded feature similarity
/// S[n,v,u] = sum_{c,t} theta(x)[n,c,t,v] phi(x)[n,c,t,u] / (C_e T).
/// Gradients flow through W, B, and the attention embeddings theta/phi.
class AdaptiveSpatial : public Layer {
 public:
  AdaptiveSpatial(int64_t in_channels, int64_t out_channels, Tensor base_op,
                  Rng& rng, int64_t embed_channels = 0);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  void SetTraining(bool training) override;
  std::string name() const override;

  /// Attention matrices C of the most recent Forward, (N, V, V).
  const Tensor& attention() const { return cached_attention_; }

 private:
  std::unique_ptr<Conv2d> w_;      // feature transform (Theta of Eq. 5)
  std::unique_ptr<Conv2d> theta_;  // attention query embedding
  std::unique_ptr<Conv2d> phi_;    // attention key embedding
  Tensor base_op_;                 // A, fixed (V, V)
  Tensor b_;                       // B, learnable (V, V)
  Tensor b_grad_;
  int64_t embed_channels_;

  Tensor cached_h_;          // W(x), (N, Cout, T, V)
  Tensor cached_e1_;         // theta(x)
  Tensor cached_e2_;         // phi(x)
  Tensor cached_attention_;  // C, (N, V, V)
};

/// \brief 2s-AGCN single-stream model: StBlocks with AdaptiveSpatial over
/// the normalized skeleton-graph adjacency.
LayerPtr MakeAgcnModel(SkeletonLayoutType layout, int64_t num_classes,
                       const BaselineScale& scale, uint64_t seed);

}  // namespace dhgcn

#endif  // DHGCN_MODELS_AGCN_H_
