#ifndef DHGCN_MODELS_TCN_MODEL_H_
#define DHGCN_MODELS_TCN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "data/skeleton.h"
#include "models/st_common.h"
#include "nn/layer.h"

namespace dhgcn {

/// \brief The TCN baseline (Kim & Reiter 2017, Tab. 6/7): joints are
/// flattened into channels ((N, C, T, V) -> (N, C*V, T, 1)) and processed
/// by a stack of purely temporal convolutions — no graph structure at
/// all. This is the "pseudo-image" family the paper argues against.
class TcnModel : public Layer {
 public:
  TcnModel(SkeletonLayoutType layout, int64_t num_classes,
           const BaselineScale& scale, uint64_t seed);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<ParamRef> Params() override;
  void SetTraining(bool training) override;
  std::string name() const override { return "TCN"; }

 private:
  int64_t num_joints_;
  std::unique_ptr<BackboneClassifier> backbone_;
  Shape cached_input_shape_;
};

LayerPtr MakeTcnModel(SkeletonLayoutType layout, int64_t num_classes,
                      const BaselineScale& scale, uint64_t seed);

}  // namespace dhgcn

#endif  // DHGCN_MODELS_TCN_MODEL_H_
