#include "models/model_zoo.h"

#include <algorithm>

#include "base/check.h"
#include "base/string_util.h"
#include "core/dhgcn_model.h"
#include "models/agcn.h"
#include "models/ahgcn.h"
#include "models/pbgcn.h"
#include "models/stgcn.h"
#include "models/tcn_model.h"

namespace dhgcn {

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTcn:
      return "TCN";
    case ModelKind::kStgcn:
      return "ST-GCN";
    case ModelKind::kAgcn:
      return "2s-AGCN";
    case ModelKind::kAhgcn:
      return "2s-AHGCN";
    case ModelKind::kPbgcn2:
      return "PB-GCN(two)";
    case ModelKind::kPbgcn4:
      return "PB-GCN(four)";
    case ModelKind::kPbgcn6:
      return "PB-GCN(six)";
    case ModelKind::kPbhgcn2:
      return "PB-HGCN(two)";
    case ModelKind::kPbhgcn4:
      return "PB-HGCN(four)";
    case ModelKind::kPbhgcn6:
      return "PB-HGCN(six)";
    case ModelKind::kDhgcn:
      return "DHGCN";
  }
  return "Unknown";
}

Result<ModelKind> ParseModelKind(const std::string& text) {
  std::string key;
  for (char c : text) {
    if (c == '-' || c == '_' || c == ' ') continue;
    key.push_back(static_cast<char>(std::tolower(c)));
  }
  if (key == "tcn") return ModelKind::kTcn;
  if (key == "stgcn") return ModelKind::kStgcn;
  if (key == "agcn" || key == "2sagcn") return ModelKind::kAgcn;
  if (key == "ahgcn" || key == "2sahgcn") return ModelKind::kAhgcn;
  if (key == "pbgcn2") return ModelKind::kPbgcn2;
  if (key == "pbgcn4") return ModelKind::kPbgcn4;
  if (key == "pbgcn6") return ModelKind::kPbgcn6;
  if (key == "pbhgcn2") return ModelKind::kPbhgcn2;
  if (key == "pbhgcn4") return ModelKind::kPbhgcn4;
  if (key == "pbhgcn6") return ModelKind::kPbhgcn6;
  if (key == "dhgcn") return ModelKind::kDhgcn;
  return Status::InvalidArgument(StrCat("unknown model kind: ", text));
}

LayerPtr CreateModel(ModelKind kind, SkeletonLayoutType layout,
                     int64_t num_classes, const ModelZooOptions& options) {
  switch (kind) {
    case ModelKind::kTcn:
      return MakeTcnModel(layout, num_classes, options.scale, options.seed);
    case ModelKind::kStgcn:
      return MakeStgcnModel(layout, num_classes, options.scale,
                            options.seed);
    case ModelKind::kAgcn:
      return MakeAgcnModel(layout, num_classes, options.scale, options.seed);
    case ModelKind::kAhgcn:
      return MakeAhgcnModel(layout, num_classes, options.scale,
                            options.seed);
    case ModelKind::kPbgcn2:
      return MakePbGcnModel(layout, num_classes, 2, options.scale,
                            options.seed);
    case ModelKind::kPbgcn4:
      return MakePbGcnModel(layout, num_classes, 4, options.scale,
                            options.seed);
    case ModelKind::kPbgcn6:
      return MakePbGcnModel(layout, num_classes, 6, options.scale,
                            options.seed);
    case ModelKind::kPbhgcn2:
      return MakePbHgcnModel(layout, num_classes, 2, options.scale,
                             options.seed);
    case ModelKind::kPbhgcn4:
      return MakePbHgcnModel(layout, num_classes, 4, options.scale,
                             options.seed);
    case ModelKind::kPbhgcn6:
      return MakePbHgcnModel(layout, num_classes, 6, options.scale,
                             options.seed);
    case ModelKind::kDhgcn: {
      DhgcnConfig config = DhgcnConfig::Small(layout, num_classes);
      config.blocks.clear();
      for (size_t i = 0; i < options.scale.channels.size(); ++i) {
        config.blocks.push_back(
            {options.scale.channels[i], options.scale.strides[i], 1});
      }
      config.dropout = options.scale.dropout;
      config.topology.kn = options.kn;
      config.topology.km = options.km;
      config.seed = options.seed;
      return DhgcnModel::Make(config).MoveValue();
    }
  }
  DHGCN_CHECK(false);
  return nullptr;
}

}  // namespace dhgcn
