#include "models/st_common.h"

#include "base/check.h"
#include "base/string_util.h"
#include "hypergraph/hypergraph_conv.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {

StBlock::StBlock(LayerPtr spatial, int64_t in_channels, int64_t out_channels,
                 int64_t temporal_stride, Rng& rng, int64_t temporal_kernel,
                 int64_t temporal_dilation)
    : spatial_(std::move(spatial)) {
  DHGCN_CHECK(spatial_ != nullptr);
  DHGCN_CHECK_EQ(temporal_kernel % 2, 1);
  spatial_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  if (in_channels != out_channels) {
    Conv2dOptions residual_options;
    residual_options.has_bias = false;
    spatial_residual_ = std::make_unique<Conv2d>(in_channels, out_channels,
                                                 residual_options, rng);
  }
  Conv2dOptions temporal_options;
  temporal_options.kernel_h = temporal_kernel;
  temporal_options.stride_h = temporal_stride;
  temporal_options.pad_h = temporal_dilation * (temporal_kernel - 1) / 2;
  temporal_options.dilation_h = temporal_dilation;
  temporal_conv_ = std::make_unique<Conv2d>(out_channels, out_channels,
                                            temporal_options, rng);
  temporal_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  if (temporal_stride != 1) {
    Conv2dOptions residual_options;
    residual_options.stride_h = temporal_stride;
    residual_options.has_bias = false;
    temporal_residual_ = std::make_unique<Conv2d>(out_channels, out_channels,
                                                  residual_options, rng);
  }
}

Tensor StBlock::Forward(const Tensor& input) {
  Tensor s_pre = spatial_bn_->Forward(spatial_->Forward(input));
  if (spatial_residual_ != nullptr) {
    AddInPlace(s_pre, spatial_residual_->Forward(input));
  } else {
    AddInPlace(s_pre, input);
  }
  Tensor s = spatial_relu_.Forward(s_pre);
  Tensor t_pre = temporal_bn_->Forward(temporal_conv_->Forward(s));
  if (temporal_residual_ != nullptr) {
    AddInPlace(t_pre, temporal_residual_->Forward(s));
  } else {
    AddInPlace(t_pre, s);
  }
  return temporal_relu_.Forward(t_pre);
}

Tensor StBlock::Backward(const Tensor& grad_output) {
  Tensor g_tpre = temporal_relu_.Backward(grad_output);
  Tensor g_s = temporal_conv_->Backward(temporal_bn_->Backward(g_tpre));
  if (temporal_residual_ != nullptr) {
    AddInPlace(g_s, temporal_residual_->Backward(g_tpre));
  } else {
    AddInPlace(g_s, g_tpre);
  }
  Tensor g_spre = spatial_relu_.Backward(g_s);
  Tensor g_x = spatial_->Backward(spatial_bn_->Backward(g_spre));
  if (spatial_residual_ != nullptr) {
    AddInPlace(g_x, spatial_residual_->Backward(g_spre));
  } else {
    AddInPlace(g_x, g_spre);
  }
  return g_x;
}

std::vector<ParamRef> StBlock::Params() {
  std::vector<ParamRef> params;
  auto append = [&params](const char* prefix, Layer* layer) {
    if (layer == nullptr) return;
    for (ParamRef p : layer->Params()) {
      p.name = std::string(prefix) + "." + p.name;
      params.push_back(p);
    }
  };
  append("spatial", spatial_.get());
  append("spatial_bn", spatial_bn_.get());
  append("spatial_residual", spatial_residual_.get());
  append("temporal_conv", temporal_conv_.get());
  append("temporal_bn", temporal_bn_.get());
  append("temporal_residual", temporal_residual_.get());
  return params;
}

void StBlock::SetTraining(bool training) {
  Layer::SetTraining(training);
  spatial_->SetTraining(training);
  spatial_bn_->SetTraining(training);
  if (spatial_residual_ != nullptr) spatial_residual_->SetTraining(training);
  spatial_relu_.SetTraining(training);
  temporal_conv_->SetTraining(training);
  temporal_bn_->SetTraining(training);
  if (temporal_residual_ != nullptr) {
    temporal_residual_->SetTraining(training);
  }
  temporal_relu_.SetTraining(training);
}

std::string StBlock::name() const {
  return StrCat("StBlock(", spatial_->name(), ")");
}

BackboneClassifier::BackboneClassifier(std::string model_name,
                                       int64_t in_channels,
                                       int64_t feature_channels,
                                       int64_t num_classes,
                                       std::vector<LayerPtr> blocks,
                                       float dropout, Rng& rng)
    : model_name_(std::move(model_name)), blocks_(std::move(blocks)) {
  DHGCN_CHECK(!blocks_.empty());
  input_bn_ = std::make_unique<BatchNorm2d>(in_channels);
  if (dropout > 0.0f) {
    dropout_ = std::make_unique<Dropout>(dropout, rng);
  }
  classifier_ = std::make_unique<Linear>(feature_channels, num_classes, rng);
}

Tensor BackboneClassifier::Forward(const Tensor& input) {
  Tensor x = input_bn_->Forward(input);
  for (auto& block : blocks_) x = block->Forward(x);
  Tensor pooled = pool_.Forward(x);
  if (dropout_ != nullptr) pooled = dropout_->Forward(pooled);
  return classifier_->Forward(pooled);
}

Tensor BackboneClassifier::Backward(const Tensor& grad_output) {
  Tensor g = classifier_->Backward(grad_output);
  if (dropout_ != nullptr) g = dropout_->Backward(g);
  g = pool_.Backward(g);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return input_bn_->Backward(g);
}

std::vector<ParamRef> BackboneClassifier::Params() {
  std::vector<ParamRef> params;
  auto append = [&params](const std::string& prefix,
                          std::vector<ParamRef> child) {
    for (ParamRef& p : child) {
      p.name = prefix + "." + p.name;
      params.push_back(p);
    }
  };
  append("input_bn", input_bn_->Params());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    append(StrCat("block", i), blocks_[i]->Params());
  }
  append("classifier", classifier_->Params());
  return params;
}

void BackboneClassifier::SetTraining(bool training) {
  Layer::SetTraining(training);
  input_bn_->SetTraining(training);
  for (auto& block : blocks_) block->SetTraining(training);
  pool_.SetTraining(training);
  if (dropout_ != nullptr) dropout_->SetTraining(training);
  classifier_->SetTraining(training);
}

LayerPtr MakeFixedOperatorSpatial(int64_t in_channels, int64_t out_channels,
                                  Tensor op, Rng& rng) {
  auto seq = std::make_unique<Sequential>();
  seq->Emplace<Conv2d>(in_channels, out_channels, Conv2dOptions{}, rng);
  seq->Emplace<VertexMix>(std::move(op), /*learnable=*/false);
  return seq;
}

}  // namespace dhgcn
