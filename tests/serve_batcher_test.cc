// Deterministic policy tests for the micro-batching admission queue:
// every decision takes `now` explicitly, so these replay exact
// schedules with no threads and no sleeps.

#include "serve/micro_batcher.h"

#include <gtest/gtest.h>

#include "base/fault_injection.h"

namespace dhgcn {
namespace {

constexpr int64_t kMs = 1'000'000;

void Discard(void*, const ServeResponse&) {}

PendingRequest MakeRequest(int64_t id, int64_t submit_ns,
                           int64_t deadline_ns) {
  PendingRequest request;
  request.id = id;
  request.submit_ns = submit_ns;
  request.deadline_ns = deadline_ns;
  request.done_fn = &Discard;
  return request;
}

MicroBatcherOptions TestOptions() {
  MicroBatcherOptions options;
  options.queue_capacity = 8;
  options.max_batch_size = 4;
  options.batch_delay_ns = 2 * kMs;
  options.flush_margin_ns = 1 * kMs;
  options.degrade_cooldown_ns = 20 * kMs;
  options.recover_quiet_ns = 100 * kMs;
  return options;
}

class MicroBatcherTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Get().Reset(); }
  void TearDown() override { FaultInjection::Get().Reset(); }
};

TEST_F(MicroBatcherTest, ValidatesOptions) {
  MicroBatcherOptions options = TestOptions();
  EXPECT_TRUE(options.Validate().ok());
  options.max_batch_size = options.queue_capacity + 1;
  EXPECT_FALSE(options.Validate().ok());
  options = TestOptions();
  options.queue_capacity = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = TestOptions();
  options.batch_delay_ns = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST_F(MicroBatcherTest, FlushesWhenFullBatchAccumulates) {
  MicroBatcher batcher(TestOptions());
  int64_t now = 0;
  for (int64_t i = 0; i < 3; ++i) {
    PendingRequest r = MakeRequest(i, now, now + 50 * kMs);
    ASSERT_TRUE(batcher.Admit(&r, now).ok());
    EXPECT_FALSE(batcher.BatchReady(now)) << "i=" << i;
  }
  PendingRequest r = MakeRequest(3, now, now + 50 * kMs);
  ASSERT_TRUE(batcher.Admit(&r, now).ok());
  EXPECT_TRUE(batcher.BatchReady(now));  // count == max_batch_size

  std::vector<PendingRequest> batch;
  batcher.TakeBatch(&batch);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].id, 0);  // FIFO order
  EXPECT_EQ(batch[3].id, 3);
  EXPECT_TRUE(batcher.empty());
}

TEST_F(MicroBatcherTest, FlushesPartialBatchAtCoalescingDeadline) {
  MicroBatcher batcher(TestOptions());
  PendingRequest r = MakeRequest(1, /*submit_ns=*/0, 50 * kMs);
  ASSERT_TRUE(batcher.Admit(&r, 0).ok());
  // Not ready until submit + batch_delay (2 ms).
  EXPECT_FALSE(batcher.BatchReady(2 * kMs - 1));
  EXPECT_TRUE(batcher.BatchReady(2 * kMs));
  std::vector<PendingRequest> batch;
  batcher.TakeBatch(&batch);
  ASSERT_EQ(batch.size(), 1u);
}

TEST_F(MicroBatcherTest, DeadlineFirstFlushBeatsCoalescingDelay) {
  // A request whose deadline is tighter than the coalescing delay must
  // flush at deadline - flush_margin, not at submit + delay.
  MicroBatcher batcher(TestOptions());
  PendingRequest r = MakeRequest(1, /*submit_ns=*/0,
                                 /*deadline_ns=*/2 * kMs);  // margin 1 ms
  ASSERT_TRUE(batcher.Admit(&r, 0).ok());
  EXPECT_FALSE(batcher.BatchReady(1 * kMs - 1));
  EXPECT_TRUE(batcher.BatchReady(1 * kMs));  // deadline - margin
}

TEST_F(MicroBatcherTest, NanosUntilNextEventTracksEarliestFlush) {
  MicroBatcher batcher(TestOptions());
  int64_t horizon = 5 * kMs;
  EXPECT_EQ(batcher.NanosUntilNextEvent(0, horizon), horizon);  // empty
  PendingRequest r = MakeRequest(1, 0, 50 * kMs);
  ASSERT_TRUE(batcher.Admit(&r, 0).ok());
  EXPECT_EQ(batcher.NanosUntilNextEvent(0, horizon), 2 * kMs);
  EXPECT_EQ(batcher.NanosUntilNextEvent(2 * kMs - 1, horizon), 1);
  EXPECT_EQ(batcher.NanosUntilNextEvent(3 * kMs, horizon), 0);  // overdue
}

TEST_F(MicroBatcherTest, RejectsExpiredAtAdmission) {
  MicroBatcher batcher(TestOptions());
  PendingRequest r = MakeRequest(1, 0, /*deadline_ns=*/10);
  Status admitted = batcher.Admit(&r, /*now_ns=*/10);
  EXPECT_TRUE(admitted.IsDeadlineExceeded());
  EXPECT_TRUE(batcher.empty());
}

TEST_F(MicroBatcherTest, TakeExpiredDrainsOnlyDeadRequests) {
  MicroBatcher batcher(TestOptions());
  PendingRequest dead = MakeRequest(1, 0, 5 * kMs);
  PendingRequest alive = MakeRequest(2, 0, 50 * kMs);
  ASSERT_TRUE(batcher.Admit(&dead, 0).ok());
  ASSERT_TRUE(batcher.Admit(&alive, 0).ok());

  std::vector<PendingRequest> expired;
  batcher.TakeExpired(5 * kMs + 1, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 1);
  EXPECT_EQ(batcher.size(), 1);
}

TEST_F(MicroBatcherTest, ShedsWithOverloadedWhenFull) {
  MicroBatcherOptions options = TestOptions();
  options.queue_capacity = 2;
  options.max_batch_size = 2;
  MicroBatcher batcher(options);
  for (int64_t i = 0; i < 2; ++i) {
    PendingRequest r = MakeRequest(i, 0, 50 * kMs);
    ASSERT_TRUE(batcher.Admit(&r, 0).ok());
  }
  PendingRequest r = MakeRequest(9, 0, 50 * kMs);
  Status shed = batcher.Admit(&r, 0);
  EXPECT_TRUE(shed.IsOverloaded()) << shed.ToString();
  EXPECT_EQ(batcher.shed_count(), 1);
  // The shed request is handed back intact: caller still owns it.
  EXPECT_EQ(r.id, 9);
  EXPECT_NE(r.done_fn, nullptr);
}

TEST_F(MicroBatcherTest, ShedTriggersDegradationLadder) {
  MicroBatcherOptions options = TestOptions();
  options.queue_capacity = 2;
  options.max_batch_size = 2;  // one degrade level available
  MicroBatcher batcher(options);
  EXPECT_EQ(batcher.target_batch_size(), 2);

  for (int64_t i = 0; i < 2; ++i) {
    PendingRequest r = MakeRequest(i, 0, 50 * kMs);
    ASSERT_TRUE(batcher.Admit(&r, 0).ok());
  }
  PendingRequest shed = MakeRequest(9, 0, 50 * kMs);
  EXPECT_TRUE(batcher.Admit(&shed, 0).IsOverloaded());

  EXPECT_EQ(batcher.degrade_level(), 1);
  EXPECT_EQ(batcher.target_batch_size(), 1);  // halved
  EXPECT_EQ(batcher.effective_delay_ns(),
            options.batch_delay_ns / 2);  // coalesces for less time
  EXPECT_EQ(batcher.degrade_events(), 1);
  // Smaller target: the queued pair is immediately flushable.
  EXPECT_TRUE(batcher.BatchReady(0));
  std::vector<PendingRequest> batch;
  batcher.TakeBatch(&batch);
  EXPECT_EQ(batch.size(), 1u);  // degraded batches are smaller
}

TEST_F(MicroBatcherTest, DegradationIsRateLimitedByCooldown) {
  MicroBatcherOptions options = TestOptions();
  options.queue_capacity = 4;
  options.max_batch_size = 4;  // two degrade levels available
  MicroBatcher batcher(options);
  for (int64_t i = 0; i < 4; ++i) {
    PendingRequest r = MakeRequest(i, 0, 500 * kMs);
    ASSERT_TRUE(batcher.Admit(&r, 0).ok());
  }
  // A burst of sheds inside the cooldown drops exactly one level.
  for (int64_t i = 0; i < 5; ++i) {
    PendingRequest r = MakeRequest(100 + i, 0, 500 * kMs);
    EXPECT_TRUE(batcher.Admit(&r, i).IsOverloaded());
  }
  EXPECT_EQ(batcher.degrade_level(), 1);
  EXPECT_EQ(batcher.shed_count(), 5);

  // A shed after the cooldown drops the second level.
  PendingRequest r = MakeRequest(200, 0, 500 * kMs);
  EXPECT_TRUE(
      batcher.Admit(&r, options.degrade_cooldown_ns + 1).IsOverloaded());
  EXPECT_EQ(batcher.degrade_level(), 2);
  EXPECT_EQ(batcher.target_batch_size(), 1);
}

TEST_F(MicroBatcherTest, RecoversOneLevelPerQuietPeriod) {
  MicroBatcherOptions options = TestOptions();
  options.queue_capacity = 4;
  options.max_batch_size = 4;
  MicroBatcher batcher(options);
  for (int64_t i = 0; i < 4; ++i) {
    PendingRequest r = MakeRequest(i, 0, 5'000 * kMs);
    ASSERT_TRUE(batcher.Admit(&r, 0).ok());
  }
  PendingRequest r1 = MakeRequest(100, 0, 5'000 * kMs);
  EXPECT_TRUE(batcher.Admit(&r1, 0).IsOverloaded());
  PendingRequest r2 = MakeRequest(101, 0, 5'000 * kMs);
  EXPECT_TRUE(
      batcher.Admit(&r2, options.degrade_cooldown_ns + 1).IsOverloaded());
  ASSERT_EQ(batcher.degrade_level(), 2);

  int64_t last_shed = options.degrade_cooldown_ns + 1;
  // Not yet quiet long enough: no recovery.
  batcher.MaybeRecover(last_shed + options.recover_quiet_ns - 1);
  EXPECT_EQ(batcher.degrade_level(), 2);
  // One quiet period: one level back.
  batcher.MaybeRecover(last_shed + options.recover_quiet_ns);
  EXPECT_EQ(batcher.degrade_level(), 1);
  EXPECT_EQ(batcher.recover_events(), 1);
  // Each further level needs its own quiet period.
  batcher.MaybeRecover(last_shed + options.recover_quiet_ns + 1);
  EXPECT_EQ(batcher.degrade_level(), 1);
  batcher.MaybeRecover(last_shed + 2 * options.recover_quiet_ns);
  EXPECT_EQ(batcher.degrade_level(), 0);
  EXPECT_EQ(batcher.target_batch_size(), 4);  // full batches again
}

TEST_F(MicroBatcherTest, QueueFullFaultForcesShed) {
  MicroBatcher batcher(TestOptions());
  FaultInjection::Get().Arm(FaultSite::kServeQueueFull, /*nth=*/1);
  PendingRequest r = MakeRequest(1, 0, 50 * kMs);
  Status shed = batcher.Admit(&r, 0);  // queue is actually empty
  EXPECT_TRUE(shed.IsOverloaded());
  EXPECT_EQ(FaultInjection::Get().fire_count(FaultSite::kServeQueueFull),
            1);
  // One-shot: the next admission succeeds.
  PendingRequest ok = MakeRequest(2, 0, 50 * kMs);
  EXPECT_TRUE(batcher.Admit(&ok, 0).ok());
}

}  // namespace
}  // namespace dhgcn
