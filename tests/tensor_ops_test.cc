#include "tensor/tensor_ops.h"

#include <cmath>
#include <tuple>

#include "gtest/gtest.h"

#include "base/rng.h"

namespace dhgcn {
namespace {

// --- Broadcasting shape algebra ---------------------------------------------

TEST(BroadcastTest, EqualShapes) {
  EXPECT_TRUE(CanBroadcast({2, 3}, {2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 3}, {2, 3}), (Shape{2, 3}));
}

TEST(BroadcastTest, ScalarAgainstAnything) {
  EXPECT_TRUE(CanBroadcast({}, {4, 5}));
  EXPECT_EQ(BroadcastShapes({}, {4, 5}), (Shape{4, 5}));
}

TEST(BroadcastTest, OnesExpand) {
  EXPECT_EQ(BroadcastShapes({4, 1}, {1, 5}), (Shape{4, 5}));
  EXPECT_EQ(BroadcastShapes({3, 1, 2}, {7, 2}), (Shape{3, 7, 2}));
}

TEST(BroadcastTest, IncompatibleShapes) {
  EXPECT_FALSE(CanBroadcast({2, 3}, {2, 4}));
  EXPECT_FALSE(CanBroadcast({5}, {4}));
}

struct BroadcastCase {
  Shape a;
  Shape b;
  Shape expected;
};

class BroadcastShapesParamTest
    : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastShapesParamTest, ComputesExpected) {
  const BroadcastCase& c = GetParam();
  ASSERT_TRUE(CanBroadcast(c.a, c.b));
  EXPECT_EQ(BroadcastShapes(c.a, c.b), c.expected);
  EXPECT_EQ(BroadcastShapes(c.b, c.a), c.expected);  // symmetry
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastShapesParamTest,
    ::testing::Values(BroadcastCase{{1}, {3}, {3}},
                      BroadcastCase{{2, 1, 4}, {3, 1}, {2, 3, 4}},
                      BroadcastCase{{1, 1}, {6, 6}, {6, 6}},
                      BroadcastCase{{2, 3, 4}, {4}, {2, 3, 4}},
                      BroadcastCase{{5, 1, 1}, {1, 2, 3}, {5, 2, 3}}));

// --- Elementwise ops --------------------------------------------------------

TEST(ElementwiseTest, AddSameShape) {
  Tensor a = Tensor::FromList({1, 2, 3});
  Tensor b = Tensor::FromList({10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.flat(0), 11.0f);
  EXPECT_FLOAT_EQ(c.flat(2), 33.0f);
}

TEST(ElementwiseTest, AddBroadcastRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::FromList({10, 20, 30});
  Tensor c = Add(a, row);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 36.0f);
}

TEST(ElementwiseTest, MulBroadcastColumnVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::FromVector({2, 1}, {2, 3});
  Tensor c = Mul(a, col);
  EXPECT_FLOAT_EQ(c.at(0, 2), 6.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 12.0f);
}

TEST(ElementwiseTest, SubDivMaxMin) {
  Tensor a = Tensor::FromList({4, 9});
  Tensor b = Tensor::FromList({2, 3});
  EXPECT_FLOAT_EQ(Sub(a, b).flat(1), 6.0f);
  EXPECT_FLOAT_EQ(Div(a, b).flat(1), 3.0f);
  EXPECT_FLOAT_EQ(Maximum(a, b).flat(0), 4.0f);
  EXPECT_FLOAT_EQ(Minimum(a, b).flat(0), 2.0f);
}

TEST(ElementwiseTest, ScalarBroadcastBothWays) {
  Tensor a = Tensor::FromList({1, 2});
  Tensor s = Tensor::Scalar(10.0f);
  EXPECT_FLOAT_EQ(Add(a, s).flat(1), 12.0f);
  EXPECT_FLOAT_EQ(Add(s, a).flat(1), 12.0f);
  EXPECT_FLOAT_EQ(Sub(s, a).flat(0), 9.0f);
}

TEST(ElementwiseTest, InPlaceVariants) {
  Tensor a = Tensor::FromList({1, 2, 3});
  Tensor b = Tensor::Ones({3});
  AddInPlace(a, b);
  EXPECT_FLOAT_EQ(a.flat(0), 2.0f);
  SubInPlace(a, b);
  EXPECT_FLOAT_EQ(a.flat(0), 1.0f);
  MulInPlace(a, a);
  EXPECT_FLOAT_EQ(a.flat(2), 9.0f);
  Axpy(0.5f, b, a);
  EXPECT_FLOAT_EQ(a.flat(0), 1.5f);
  MulScalarInPlace(a, 2.0f);
  EXPECT_FLOAT_EQ(a.flat(0), 3.0f);
}

TEST(ElementwiseTest, ScalarHelpers) {
  Tensor a = Tensor::FromList({1, -2});
  EXPECT_FLOAT_EQ(AddScalar(a, 5.0f).flat(1), 3.0f);
  EXPECT_FLOAT_EQ(MulScalar(a, -1.0f).flat(0), -1.0f);
}

TEST(UnaryTest, MathFunctions) {
  Tensor a = Tensor::FromList({1.0f, 4.0f});
  EXPECT_FLOAT_EQ(Sqrt(a).flat(1), 2.0f);
  EXPECT_FLOAT_EQ(Exp(Tensor::Scalar(0.0f)).flat(0), 1.0f);
  EXPECT_NEAR(Log(Tensor::Scalar(std::exp(2.0f))).flat(0), 2.0f, 1e-5f);
  EXPECT_FLOAT_EQ(Neg(a).flat(0), -1.0f);
  EXPECT_FLOAT_EQ(Abs(Tensor::FromList({-3})).flat(0), 3.0f);
  EXPECT_FLOAT_EQ(Square(a).flat(1), 16.0f);
  EXPECT_FLOAT_EQ(Clamp(Tensor::FromList({-5, 0.5f, 5}), -1, 1).flat(0),
                  -1.0f);
}

// --- Reductions ---------------------------------------------------------------

TEST(ReduceTest, SumAllMeanAllMaxMin) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(a), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(a), 2.5f);
  EXPECT_FLOAT_EQ(MaxAll(a), 4.0f);
  EXPECT_FLOAT_EQ(MinAll(a), 1.0f);
}

TEST(ReduceTest, ReduceSumAxis0) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = ReduceSum(a, 0);
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s.flat(0), 5.0f);
  EXPECT_FLOAT_EQ(s.flat(2), 9.0f);
}

TEST(ReduceTest, ReduceSumAxis1KeepDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = ReduceSum(a, 1, /*keepdim=*/true);
  EXPECT_EQ(s.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s.flat(0), 6.0f);
  EXPECT_FLOAT_EQ(s.flat(1), 15.0f);
}

TEST(ReduceTest, ReduceMeanMiddleAxis) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor m = ReduceMean(a, 1);
  EXPECT_EQ(m.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);  // (1+3)/2
  EXPECT_FLOAT_EQ(m.at(1, 1), 7.0f);  // (6+8)/2
}

TEST(ReduceTest, ReduceMaxNegativeAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 9, 3, 4, 5, 6});
  Tensor m = ReduceMax(a, -1);
  EXPECT_FLOAT_EQ(m.flat(0), 9.0f);
  EXPECT_FLOAT_EQ(m.flat(1), 6.0f);
}

TEST(ReduceTest, ArgMaxBreaksTiesLow) {
  Tensor a = Tensor::FromVector({2, 3}, {5, 5, 1, 0, 7, 7});
  Tensor idx = ArgMax(a, 1);
  EXPECT_FLOAT_EQ(idx.flat(0), 0.0f);
  EXPECT_FLOAT_EQ(idx.flat(1), 1.0f);
}

// --- Softmax / LogSoftmax -----------------------------------------------------

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(11);
  Tensor a = Tensor::RandomNormal({4, 7}, rng, 0.0f, 3.0f);
  Tensor p = Softmax(a, 1);
  for (int64_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      float v = p.at(i, j);
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, InvariantToShift) {
  Tensor a = Tensor::FromList({1, 2, 3});
  Tensor b = AddScalar(a, 100.0f);
  EXPECT_TRUE(AllClose(Softmax(a, 0), Softmax(b, 0), 1e-5f, 1e-6f));
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Tensor a = Tensor::FromList({1000.0f, 1001.0f});
  Tensor p = Softmax(a, 0);
  EXPECT_FALSE(HasNonFinite(p));
  EXPECT_NEAR(p.flat(0) + p.flat(1), 1.0f, 1e-5f);
  EXPECT_GT(p.flat(1), p.flat(0));
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(12);
  Tensor a = Tensor::RandomNormal({3, 5}, rng);
  Tensor lp = LogSoftmax(a, 1);
  Tensor p = Softmax(a, 1);
  EXPECT_TRUE(AllClose(Exp(lp), p, 1e-4f, 1e-5f));
}

TEST(SoftmaxTest, AlongMiddleAxis) {
  Rng rng(13);
  Tensor a = Tensor::RandomNormal({2, 4, 3}, rng);
  Tensor p = Softmax(a, 1);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t k = 0; k < 3; ++k) {
      double sum = 0.0;
      for (int64_t j = 0; j < 4; ++j) sum += p.at(i, j, k);
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

// --- Layout ops ---------------------------------------------------------------

TEST(PermuteTest, TwoDTranspose) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3.0f);
}

TEST(PermuteTest, ThreeDPermutation) {
  Tensor a = Tensor::Arange(24).Reshape({2, 3, 4});
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      for (int64_t k = 0; k < 4; ++k) {
        EXPECT_FLOAT_EQ(p.at(k, i, j), a.at(i, j, k));
      }
    }
  }
}

TEST(PermuteTest, IdentityPermutation) {
  Tensor a = Tensor::Arange(6).Reshape({2, 3});
  Tensor p = Permute(a, {0, 1});
  EXPECT_TRUE(AllClose(p, a));
}

TEST(PermuteTest, DoublePermuteIsIdentity) {
  Rng rng(14);
  Tensor a = Tensor::RandomNormal({2, 3, 4, 5}, rng);
  Tensor p = Permute(Permute(a, {3, 1, 0, 2}), {2, 1, 3, 0});
  EXPECT_TRUE(AllClose(p, a));
}

TEST(ConcatTest, AlongAxis0) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(2, 1), 6.0f);
}

TEST(ConcatTest, AlongAxis1) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
}

TEST(SliceTest, MiddleOfAxis) {
  Tensor a = Tensor::Arange(24).Reshape({2, 3, 4});
  Tensor s = Slice(a, 1, 1, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 4}));
  EXPECT_FLOAT_EQ(s.at(0, 0, 0), a.at(0, 1, 0));
  EXPECT_FLOAT_EQ(s.at(1, 1, 3), a.at(1, 2, 3));
}

TEST(SliceTest, SliceThenConcatRestores) {
  Tensor a = Tensor::Arange(12).Reshape({3, 4});
  Tensor left = Slice(a, 1, 0, 2);
  Tensor right = Slice(a, 1, 2, 2);
  EXPECT_TRUE(AllClose(Concat({left, right}, 1), a));
}

TEST(StackTest, AddsLeadingAxis) {
  Tensor a = Tensor::FromList({1, 2});
  Tensor b = Tensor::FromList({3, 4});
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at(1, 0), 3.0f);
}

TEST(BroadcastToTest, ExpandsAndCopies) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor big = BroadcastTo(a, {4, 3});
  EXPECT_EQ(big.shape(), (Shape{4, 3}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(big.at(i, 1), 2.0f);
}

TEST(ReduceToShapeTest, IsAdjointOfBroadcast) {
  // <BroadcastTo(a, S), g> == <a, ReduceToShape(g, shape(a))> for all g.
  Rng rng(15);
  Tensor a = Tensor::RandomNormal({3, 1}, rng);
  Shape target = {2, 3, 4};
  Tensor g = Tensor::RandomNormal(target, rng);
  float lhs = Dot(BroadcastTo(a, target), g);
  float rhs = Dot(a, ReduceToShape(g, a.shape()));
  EXPECT_NEAR(lhs, rhs, 1e-3f);
}

TEST(ReduceToShapeTest, NoOpWhenShapesMatch) {
  Rng rng(16);
  Tensor g = Tensor::RandomNormal({2, 3}, rng);
  EXPECT_TRUE(AllClose(ReduceToShape(g, {2, 3}), g));
}

// --- Scalar queries -------------------------------------------------------------

TEST(QueriesTest, AllCloseToleratesSmallError) {
  Tensor a = Tensor::FromList({1.0f, 2.0f});
  Tensor b = Tensor::FromList({1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(AllClose(a, b));
  Tensor c = Tensor::FromList({1.1f, 2.0f});
  EXPECT_FALSE(AllClose(a, c));
}

TEST(QueriesTest, AllCloseRejectsShapeMismatch) {
  EXPECT_FALSE(AllClose(Tensor::Ones({2}), Tensor::Ones({3})));
}

TEST(QueriesTest, HasNonFinite) {
  Tensor ok = Tensor::Ones({3});
  EXPECT_FALSE(HasNonFinite(ok));
  Tensor bad = Tensor::Ones({3});
  bad.flat(1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(HasNonFinite(bad));
  Tensor inf = Tensor::Ones({3});
  inf.flat(2) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(HasNonFinite(inf));
}

TEST(QueriesTest, NormAndDot) {
  Tensor a = Tensor::FromList({3, 4});
  EXPECT_FLOAT_EQ(Norm2(a), 5.0f);
  Tensor b = Tensor::FromList({1, 2});
  EXPECT_FLOAT_EQ(Dot(a, b), 11.0f);
}

}  // namespace
}  // namespace dhgcn
