// Finite-difference gradient checks for every differentiable layer in the
// library — the backbone property suite validating all hand-written
// Backward implementations.

#include "tests/gradcheck.h"

#include "gtest/gtest.h"

#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/static_hypergraph.h"
#include "data/skeleton.h"
#include "hypergraph/hypergraph_conv.h"
#include "models/agcn.h"
#include "models/pbgcn.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "nn/relu.h"
#include "nn/sequential.h"

namespace dhgcn {
namespace {

using ::dhgcn::testing::ExpectGradientsMatch;
using ::dhgcn::testing::GradCheckOptions;

TEST(GradCheck, Linear) {
  Rng rng(100);
  Linear layer(5, 3, rng);
  Tensor x = Tensor::RandomNormal({4, 5}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, LinearNoBias3d) {
  Rng rng(101);
  Linear layer(4, 6, rng, /*has_bias=*/false);
  Tensor x = Tensor::RandomNormal({2, 3, 4}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, Conv1x1) {
  Rng rng(102);
  Conv2d layer(3, 4, Conv2dOptions{}, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 5}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, ConvTemporalPadded) {
  Rng rng(103);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 1;
  Conv2d layer(2, 3, options, rng);
  Tensor x = Tensor::RandomNormal({2, 2, 6, 4}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, ConvStridedDilated) {
  Rng rng(104);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 2;
  options.stride_h = 2;
  options.dilation_h = 2;
  Conv2d layer(2, 2, options, rng);
  Tensor x = Tensor::RandomNormal({2, 2, 9, 3}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, ConvSpatialKernel) {
  Rng rng(105);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.kernel_w = 3;
  options.pad_h = 1;
  options.pad_w = 1;
  Conv2d layer(2, 2, options, rng);
  Tensor x = Tensor::RandomNormal({1, 2, 5, 5}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, BatchNormTraining) {
  Rng rng(106);
  BatchNorm2d layer(3);
  layer.SetTraining(true);
  // Non-unit gamma/beta so their gradients are exercised non-trivially.
  layer.gamma() = Tensor::RandomUniform({3}, rng, 0.5f, 1.5f);
  layer.beta() = Tensor::RandomNormal({3}, rng);
  Tensor x = Tensor::RandomNormal({4, 3, 3, 2}, rng);
  // BatchNorm gradients involve batch-statistic terms that amplify
  // float32 noise; use slightly looser tolerances.
  GradCheckOptions options;
  options.rtol = 8e-2f;
  options.atol = 1e-3f;
  ExpectGradientsMatch(layer, x, options);
}

TEST(GradCheck, BatchNorm2dInput) {
  Rng rng(107);
  BatchNorm2d layer(4);
  Tensor x = Tensor::RandomNormal({8, 4}, rng);
  GradCheckOptions options;
  options.rtol = 8e-2f;
  options.atol = 1e-3f;
  ExpectGradientsMatch(layer, x, options);
}

TEST(GradCheck, Relu) {
  Rng rng(108);
  ReLU layer;
  // Keep inputs away from the kink at 0 where the derivative jumps.
  Tensor x = Tensor::RandomNormal({3, 4}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x.flat(i)) < 0.1f) x.flat(i) = 0.5f;
  }
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(109);
  GlobalAvgPool2d layer;
  Tensor x = Tensor::RandomNormal({2, 3, 4, 5}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, TemporalAvgPool) {
  Rng rng(110);
  TemporalAvgPool layer(2, 2);
  Tensor x = Tensor::RandomNormal({2, 2, 8, 3}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, VertexMixFixed) {
  Rng rng(111);
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Tensor op = NormalizedHypergraphOperator(StaticSkeletonHypergraph(layout));
  VertexMix layer(op, /*learnable=*/false);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 18}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, VertexMixLearnable) {
  Rng rng(112);
  VertexMix layer(Tensor::RandomNormal({6, 6}, rng, 0.0f, 0.3f),
                  /*learnable=*/true);
  Tensor x = Tensor::RandomNormal({2, 2, 3, 6}, rng);
  ExpectGradientsMatch(layer, x);
}

// DynamicVertexMix needs its operators configured before Forward; wrap it
// so the gradcheck's repeated Forward calls reuse the same operators.
class DynamicVertexMixHarness : public Layer {
 public:
  DynamicVertexMixHarness(Tensor ops) { mix_.SetOperators(std::move(ops)); }
  Tensor Forward(const Tensor& x) override { return mix_.Forward(x); }
  Tensor Backward(const Tensor& g) override { return mix_.Backward(g); }
  std::string name() const override { return "DynamicVertexMixHarness"; }

 private:
  DynamicVertexMix mix_;
};

TEST(GradCheck, DynamicVertexMix) {
  Rng rng(113);
  Tensor ops = Tensor::RandomNormal({2, 4, 5, 5}, rng, 0.0f, 0.4f);
  DynamicVertexMixHarness layer(ops);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 5}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng(114);
  Sequential seq;
  seq.Emplace<Linear>(4, 8, rng);
  seq.Emplace<ReLU>();
  seq.Emplace<Linear>(8, 3, rng);
  Tensor x = Tensor::RandomNormal({3, 4}, rng);
  // Shift away from ReLU kinks.
  ExpectGradientsMatch(seq, x);
}

TEST(GradCheck, AdaptiveSpatialFullAttention) {
  Rng rng(115);
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Tensor adjacency = SkeletonGraph(layout).NormalizedAdjacency();
  AdaptiveSpatial layer(3, 4, adjacency, rng, /*embed_channels=*/3);
  Tensor x = Tensor::RandomNormal({2, 3, 3, 18}, rng);
  GradCheckOptions options;
  options.rtol = 8e-2f;
  options.atol = 1e-3f;
  ExpectGradientsMatch(layer, x, options);
}

TEST(GradCheck, LearnableHyperedgeMix) {
  Rng rng(117);
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  LearnableHyperedgeMix layer(StaticSkeletonHypergraph(layout));
  // Non-unit weights so the weight gradients are exercised non-trivially.
  Tensor& w = *layer.Params()[0].value;
  for (int64_t e = 0; e < w.numel(); ++e) w.flat(e) = rng.Uniform(0.5f, 1.5f);
  Tensor x = Tensor::RandomNormal({2, 3, 3, 18}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheck, PartSumSpatial) {
  Rng rng(116);
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  PartSumSpatial layer(3, 4, layout, /*num_parts=*/4, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 3, 18}, rng);
  ExpectGradientsMatch(layer, x);
}

// ---------------------------------------------------------------------------
// The same analytic-vs-numeric checks under a multi-threaded pool: the
// parallelized Conv2d / BatchNorm2d / loss backward passes must agree
// with finite differences regardless of the worker count.
// ---------------------------------------------------------------------------

// Sets the pool size for one test and restores the previous size on exit.
class ThreadPoolGuard {
 public:
  explicit ThreadPoolGuard(int64_t n)
      : previous_(ThreadPool::Get().thread_count()) {
    ThreadPool::Get().SetThreads(n);
  }
  ~ThreadPoolGuard() { ThreadPool::Get().SetThreads(previous_); }

 private:
  int64_t previous_;
};

TEST(GradCheckThreaded, Conv1x1FourThreads) {
  ThreadPoolGuard pool(4);
  Rng rng(118);
  Conv2d layer(3, 4, Conv2dOptions{}, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 5}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheckThreaded, ConvSpatialKernelFourThreads) {
  ThreadPoolGuard pool(4);
  Rng rng(119);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.kernel_w = 3;
  options.pad_h = 1;
  options.pad_w = 1;
  Conv2d layer(2, 2, options, rng);
  Tensor x = Tensor::RandomNormal({1, 2, 5, 5}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheckThreaded, ConvStridedDilatedFourThreads) {
  ThreadPoolGuard pool(4);
  Rng rng(120);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 2;
  options.stride_h = 2;
  options.dilation_h = 2;
  Conv2d layer(2, 2, options, rng);
  Tensor x = Tensor::RandomNormal({2, 2, 9, 3}, rng);
  ExpectGradientsMatch(layer, x);
}

TEST(GradCheckThreaded, BatchNormTrainingFourThreads) {
  ThreadPoolGuard pool(4);
  Rng rng(121);
  BatchNorm2d layer(3);
  layer.SetTraining(true);
  layer.gamma() = Tensor::RandomUniform({3}, rng, 0.5f, 1.5f);
  layer.beta() = Tensor::RandomNormal({3}, rng);
  Tensor x = Tensor::RandomNormal({4, 3, 3, 2}, rng);
  GradCheckOptions options;
  options.rtol = 8e-2f;
  options.atol = 1e-3f;
  ExpectGradientsMatch(layer, x, options);
}

TEST(GradCheckThreaded, SoftmaxCrossEntropyFourThreads) {
  ThreadPoolGuard pool(4);
  Rng rng(122);
  // Batch larger than the loss reduction grain (8) so the chunked
  // reduction path is exercised, not just the single-chunk fast case.
  const int64_t n = 11, k = 5;
  Tensor logits = Tensor::RandomNormal({n, k}, rng);
  std::vector<int64_t> labels;
  for (int64_t i = 0; i < n; ++i) labels.push_back(i % k);

  SoftmaxCrossEntropy loss(/*label_smoothing=*/0.1f);
  loss.Forward(logits, labels);
  Tensor analytic = loss.Backward();

  const float eps = 1e-2f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    float original = logits.flat(i);
    logits.flat(i) = original + eps;
    double up = loss.Forward(logits, labels);
    logits.flat(i) = original - eps;
    double down = loss.Forward(logits, labels);
    logits.flat(i) = original;
    double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic.flat(i), numeric,
                1e-3 + 6e-2 * std::fabs(numeric))
        << "logit " << i;
  }
}

}  // namespace
}  // namespace dhgcn
