#include <set>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "core/two_stream.h"
#include "models/agcn.h"
#include "models/ahgcn.h"
#include "models/model_zoo.h"
#include "models/pbgcn.h"
#include "models/st_common.h"
#include "models/stgcn.h"
#include "models/tcn_model.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

BaselineScale TinyScale() {
  BaselineScale scale;
  scale.channels = {4, 8};
  scale.strides = {1, 2};
  scale.dropout = 0.0f;
  return scale;
}

ModelZooOptions TinyZoo() {
  ModelZooOptions options;
  options.scale = TinyScale();
  options.kn = 2;
  options.km = 2;
  options.seed = 5;
  return options;
}

// --- Model zoo ------------------------------------------------------------------

TEST(ModelZooTest, ParseModelKind) {
  EXPECT_EQ(ParseModelKind("tcn").ValueOrDie(), ModelKind::kTcn);
  EXPECT_EQ(ParseModelKind("ST-GCN").ValueOrDie(), ModelKind::kStgcn);
  EXPECT_EQ(ParseModelKind("2s-AGCN").ValueOrDie(), ModelKind::kAgcn);
  EXPECT_EQ(ParseModelKind("ahgcn").ValueOrDie(), ModelKind::kAhgcn);
  EXPECT_EQ(ParseModelKind("pb_gcn4").ValueOrDie(), ModelKind::kPbgcn4);
  EXPECT_EQ(ParseModelKind("PBHGCN6").ValueOrDie(), ModelKind::kPbhgcn6);
  EXPECT_EQ(ParseModelKind("DHGCN").ValueOrDie(), ModelKind::kDhgcn);
  EXPECT_FALSE(ParseModelKind("resnet").ok());
}

TEST(ModelZooTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (ModelKind kind :
       {ModelKind::kTcn, ModelKind::kStgcn, ModelKind::kAgcn,
        ModelKind::kAhgcn, ModelKind::kPbgcn2, ModelKind::kPbgcn4,
        ModelKind::kPbgcn6, ModelKind::kPbhgcn2, ModelKind::kPbhgcn4,
        ModelKind::kPbhgcn6, ModelKind::kDhgcn}) {
    EXPECT_TRUE(names.insert(ModelKindName(kind)).second);
  }
}

class AllModelsParamTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(AllModelsParamTest, ForwardBackwardShapes) {
  LayerPtr model = CreateModel(GetParam(), SkeletonLayoutType::kKinetics18,
                               6, TinyZoo());
  ASSERT_NE(model, nullptr);
  Rng rng(6);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng, 0.0f, 0.5f);
  Tensor logits = model->Forward(x);
  EXPECT_EQ(logits.shape(), (Shape{2, 6}));
  EXPECT_FALSE(HasNonFinite(logits));
  Tensor g = model->Backward(Tensor::Ones({2, 6}));
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_FALSE(HasNonFinite(g));
}

TEST_P(AllModelsParamTest, HasTrainableParams) {
  LayerPtr model = CreateModel(GetParam(), SkeletonLayoutType::kNtu25, 4,
                               TinyZoo());
  EXPECT_GT(model->ParameterCount(), 50);
  for (ParamRef& p : model->Params()) {
    if (!p.trainable) {
      EXPECT_EQ(p.grad, nullptr) << p.name;
      continue;
    }
    EXPECT_TRUE(ShapesEqual(p.value->shape(), p.grad->shape())) << p.name;
  }
}

TEST_P(AllModelsParamTest, OneSgdStepReducesLossOnFixedBatch) {
  LayerPtr model = CreateModel(GetParam(), SkeletonLayoutType::kKinetics18,
                               3, TinyZoo());
  Rng rng(7);
  Tensor x = Tensor::RandomNormal({6, 3, 8, 18}, rng, 0.0f, 0.5f);
  std::vector<int64_t> labels = {0, 1, 2, 0, 1, 2};
  SoftmaxCrossEntropy loss;
  SgdOptimizer::Options sgd_options;
  sgd_options.lr = 0.05f;
  sgd_options.momentum = 0.0f;
  SgdOptimizer sgd(model->Params(), sgd_options);

  model->SetTraining(true);
  float initial = 0.0f;
  // A few steps on the same batch must reduce the loss (overfit check).
  float current = 0.0f;
  for (int step = 0; step < 8; ++step) {
    sgd.ZeroGrad();
    Tensor logits = model->Forward(x);
    current = loss.Forward(logits, labels);
    if (step == 0) initial = current;
    model->Backward(loss.Backward());
    sgd.Step();
  }
  EXPECT_LT(current, initial) << ModelKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, AllModelsParamTest,
    ::testing::Values(ModelKind::kTcn, ModelKind::kStgcn, ModelKind::kAgcn,
                      ModelKind::kAhgcn, ModelKind::kPbgcn2,
                      ModelKind::kPbgcn4, ModelKind::kPbhgcn4,
                      ModelKind::kPbhgcn6, ModelKind::kDhgcn),
    [](const ::testing::TestParamInfo<ModelKind>& param_info) {
      std::string name = ModelKindName(param_info.param);
      std::string clean;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) clean.push_back(c);
      }
      return clean;
    });

// --- AdaptiveSpatial specifics -----------------------------------------------------

TEST(AdaptiveSpatialTest, AttentionRowsSumToOne) {
  Rng rng(8);
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  AdaptiveSpatial layer(3, 4, SkeletonGraph(layout).NormalizedAdjacency(),
                        rng);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 18}, rng);
  layer.Forward(x);
  const Tensor& attention = layer.attention();
  EXPECT_EQ(attention.shape(), (Shape{2, 18, 18}));
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t v = 0; v < 18; ++v) {
      double sum = 0.0;
      for (int64_t u = 0; u < 18; ++u) sum += attention.at(n, v, u);
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

TEST(AdaptiveSpatialTest, AttentionIsSampleDependent) {
  Rng rng(9);
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  AdaptiveSpatial layer(3, 4, SkeletonGraph(layout).NormalizedAdjacency(),
                        rng);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 18}, rng);
  layer.Forward(x);
  Tensor a0 = Slice(layer.attention(), 0, 0, 1);
  Tensor a1 = Slice(layer.attention(), 0, 1, 1);
  EXPECT_FALSE(AllClose(a0, a1, 1e-4f, 1e-5f));
}

TEST(AdaptiveSpatialTest, HasLearnableBMatrix) {
  Rng rng(10);
  AdaptiveSpatial layer(2, 3, Tensor::Eye(5), rng);
  bool has_b = false;
  for (ParamRef& p : layer.Params()) {
    if (p.name == "B") {
      has_b = true;
      EXPECT_EQ(p.value->shape(), (Shape{5, 5}));
    }
  }
  EXPECT_TRUE(has_b);
}

// --- PB models -------------------------------------------------------------------------

TEST(PartSubgraphOperatorTest, ZeroOutsidePart) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  std::vector<int64_t> part = {1, 2, 3, 4};  // right arm + neck
  Tensor op = PartSubgraphOperator(layout, part);
  std::set<int64_t> members(part.begin(), part.end());
  for (int64_t i = 0; i < 18; ++i) {
    for (int64_t j = 0; j < 18; ++j) {
      if (members.count(i) == 0 || members.count(j) == 0) {
        EXPECT_FLOAT_EQ(op.at(i, j), 0.0f) << i << "," << j;
      }
    }
  }
  // Connected members interact.
  EXPECT_GT(op.at(2, 3), 0.0f);
}

TEST(PartSubgraphOperatorTest, SymmetricWithinPart) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  std::vector<std::vector<int64_t>> parts = PartPartition(layout, 4);
  for (const auto& part : parts) {
    Tensor op = PartSubgraphOperator(layout, part);
    EXPECT_TRUE(AllClose(op, Transpose2D(op), 1e-5f, 1e-6f));
  }
}

TEST(PbModelsTest, MoreParamsForMoreParts) {
  ModelZooOptions zoo = TinyZoo();
  LayerPtr two = CreateModel(ModelKind::kPbgcn2, SkeletonLayoutType::kNtu25,
                             4, zoo);
  LayerPtr six = CreateModel(ModelKind::kPbgcn6, SkeletonLayoutType::kNtu25,
                             4, zoo);
  EXPECT_GT(six->ParameterCount(), two->ParameterCount());
}

TEST(PbModelsTest, PbHgcnIsCapacityMatchedToPbGcn) {
  // PB-HGCN removes the per-part convolutions ("eliminates the
  // aggregation function"); its layers are widened so the two models
  // compare topology at a comparable parameter budget (within ~40%).
  ModelZooOptions zoo = TinyZoo();
  for (auto [gcn_kind, hgcn_kind] :
       {std::pair{ModelKind::kPbgcn2, ModelKind::kPbhgcn2},
        std::pair{ModelKind::kPbgcn4, ModelKind::kPbhgcn4},
        std::pair{ModelKind::kPbgcn6, ModelKind::kPbhgcn6}}) {
    LayerPtr gcn =
        CreateModel(gcn_kind, SkeletonLayoutType::kNtu25, 4, zoo);
    LayerPtr hgcn =
        CreateModel(hgcn_kind, SkeletonLayoutType::kNtu25, 4, zoo);
    double ratio = static_cast<double>(hgcn->ParameterCount()) /
                   static_cast<double>(gcn->ParameterCount());
    EXPECT_GT(ratio, 0.6) << ModelKindName(hgcn_kind);
    EXPECT_LT(ratio, 1.4) << ModelKindName(hgcn_kind);
  }
}

// --- TwoStream ----------------------------------------------------------------------------

TEST(TwoStreamTest, FusedLogitsAreSums) {
  ModelZooOptions zoo = TinyZoo();
  TwoStream two_stream(
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kKinetics18, 4,
                  zoo),
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kKinetics18, 4,
                  zoo));
  two_stream.SetTraining(false);
  Rng rng(11);
  Tensor joint_x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  Tensor bone_x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  Tensor fused = two_stream.FusedLogits(joint_x, bone_x);
  Tensor expected = Add(two_stream.joint().Forward(joint_x),
                        two_stream.bone().Forward(bone_x));
  EXPECT_TRUE(AllClose(fused, expected, 1e-5f, 1e-6f));
}

TEST(TwoStreamTest, NameMentionsBothStreams) {
  ModelZooOptions zoo = TinyZoo();
  TwoStream two_stream(
      CreateModel(ModelKind::kAgcn, SkeletonLayoutType::kKinetics18, 4, zoo),
      CreateModel(ModelKind::kAgcn, SkeletonLayoutType::kKinetics18, 4,
                  zoo));
  EXPECT_NE(two_stream.name().find("2s-AGCN"), std::string::npos);
}

// --- StBlock / BackboneClassifier ----------------------------------------------------------

TEST(StBlockTest, StridedResidualProjects) {
  Rng rng(12);
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Tensor adjacency = SkeletonGraph(layout).NormalizedAdjacency();
  StBlock block(MakeFixedOperatorSpatial(3, 5, adjacency, rng), 3, 5, 2,
                rng);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  Tensor y = block.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 4, 18}));
  Tensor g = block.Backward(Tensor::Ones(y.shape()));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(BackboneClassifierTest, TrainingFlagReachesChildren) {
  ModelZooOptions zoo = TinyZoo();
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kKinetics18, 4,
                  zoo);
  model->SetTraining(false);
  EXPECT_FALSE(model->training());
  Rng rng(13);
  Tensor x = Tensor::RandomNormal({1, 3, 8, 18}, rng);
  // Eval forward twice must agree (BN running stats, no dropout noise).
  Tensor a = model->Forward(x);
  Tensor b = model->Forward(x);
  EXPECT_TRUE(AllClose(a, b));
}

}  // namespace
}  // namespace dhgcn
