#include <cmath>
#include <set>

#include "gtest/gtest.h"

#include "core/dhgcn_model.h"
#include "core/dhst_block.h"
#include "core/dynamic_joint_weight.h"
#include "core/dynamic_topology.h"
#include "core/static_hypergraph.h"
#include "data/skeleton.h"
#include "hypergraph/hypergraph_conv.h"
#include "tensor/tensor_ops.h"
#include "tests/gradcheck.h"

namespace dhgcn {
namespace {

// --- Static hypergraph -------------------------------------------------------------

class StaticHypergraphParamTest
    : public ::testing::TestWithParam<SkeletonLayoutType> {};

TEST_P(StaticHypergraphParamTest, SixEdgesCoveringAllJoints) {
  const SkeletonLayout& layout = GetSkeletonLayout(GetParam());
  Hypergraph h = StaticSkeletonHypergraph(layout);
  EXPECT_EQ(h.num_vertices(), layout.num_joints);
  EXPECT_EQ(h.num_edges(), 6);  // Fig. 1(c): six hyperedges
  EXPECT_TRUE(h.CoversAllVertices());
}

TEST_P(StaticHypergraphParamTest, OperatorWellFormed) {
  const SkeletonLayout& layout = GetSkeletonLayout(GetParam());
  Tensor op = NormalizedHypergraphOperator(StaticSkeletonHypergraph(layout));
  EXPECT_EQ(op.shape(), (Shape{layout.num_joints, layout.num_joints}));
  EXPECT_FALSE(HasNonFinite(op));
  EXPECT_TRUE(AllClose(op, Transpose2D(op), 1e-5f, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(Layouts, StaticHypergraphParamTest,
                         ::testing::Values(SkeletonLayoutType::kNtu25,
                                           SkeletonLayoutType::kKinetics18));

TEST(PartBasedHypergraphTest, PartsBecomeHyperedges) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  for (int64_t parts : {2, 4, 6}) {
    Hypergraph h = PartBasedHypergraph(layout, parts);
    EXPECT_EQ(h.num_edges(), parts);
    EXPECT_TRUE(h.CoversAllVertices());
  }
}

// --- Dynamic joint weight (Eqs. 6-9) --------------------------------------------------

TEST(MovingDistancesTest, MatchesManualNorm) {
  Tensor coords({1, 3, 3, 2});
  // Joint 0 moves (1,2,2) between frames 0->1 => distance 3.
  coords.at(0, 0, 1, 0) = 1.0f;
  coords.at(0, 1, 1, 0) = 2.0f;
  coords.at(0, 2, 1, 0) = 2.0f;
  // Joint 1 static.
  Tensor dist = MovingDistances(coords);
  EXPECT_EQ(dist.shape(), (Shape{1, 3, 2}));
  EXPECT_FLOAT_EQ(dist.at(0, 1, 0), 3.0f);
  EXPECT_FLOAT_EQ(dist.at(0, 1, 1), 0.0f);
  // Frame 0 copies frame 1.
  EXPECT_FLOAT_EQ(dist.at(0, 0, 0), 3.0f);
  // Frame 2 moves back: distance 3 again.
  EXPECT_FLOAT_EQ(dist.at(0, 2, 0), 3.0f);
}

TEST(MovingDistancesTest, UsesOnlyFirstThreeChannels) {
  Tensor coords({1, 5, 2, 1});
  coords.at(0, 3, 1, 0) = 100.0f;  // channel 3 ignored
  Tensor dist = MovingDistances(coords);
  EXPECT_FLOAT_EQ(dist.at(0, 1, 0), 0.0f);
}

TEST(JointWeightIncidenceTest, SharesSumToOnePerEdge) {
  Hypergraph h(4, {{0, 1, 2}, {2, 3}});
  Tensor distances = Tensor::FromList({1.0f, 2.0f, 3.0f, 1.0f});
  Tensor imp = JointWeightIncidence(distances, h);
  EXPECT_EQ(imp.shape(), (Shape{4, 2}));
  // Edge 0: shares 1/6, 2/6, 3/6.
  EXPECT_NEAR(imp.at(0, 0), 1.0f / 6.0f, 1e-6f);
  EXPECT_NEAR(imp.at(1, 0), 2.0f / 6.0f, 1e-6f);
  EXPECT_NEAR(imp.at(2, 0), 3.0f / 6.0f, 1e-6f);
  EXPECT_FLOAT_EQ(imp.at(3, 0), 0.0f);  // not on edge 0
  // Edge 1: shares 3/4, 1/4.
  EXPECT_NEAR(imp.at(2, 1), 0.75f, 1e-6f);
  EXPECT_NEAR(imp.at(3, 1), 0.25f, 1e-6f);
  // Column sums are 1 (Eq. 7 normalization).
  for (int64_t e = 0; e < 2; ++e) {
    float sum = 0.0f;
    for (int64_t v = 0; v < 4; ++v) sum += imp.at(v, e);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(JointWeightIncidenceTest, ZeroMotionFallsBackToUniform) {
  Hypergraph h(3, {{0, 1, 2}});
  Tensor distances({3});  // all zero
  Tensor imp = JointWeightIncidence(distances, h);
  for (int64_t v = 0; v < 3; ++v) {
    EXPECT_NEAR(imp.at(v, 0), 1.0f / 3.0f, 1e-6f);
  }
}

TEST(DynamicJointWeightOperatorsTest, ShapeAndSymmetry) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(70);
  Tensor coords = Tensor::RandomNormal({2, 3, 4, 18}, rng);
  Tensor ops = DynamicJointWeightOperators(coords, h);
  EXPECT_EQ(ops.shape(), (Shape{2, 4, 18, 18}));
  EXPECT_FALSE(HasNonFinite(ops));
  // Each frame's operator Imp Imp^T is symmetric PSD.
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t i = 0; i < 18; ++i) {
      EXPECT_GE(ops.at(0, t, i, i), 0.0f);
      for (int64_t j = 0; j < 18; ++j) {
        EXPECT_NEAR(ops.at(0, t, i, j), ops.at(0, t, j, i), 1e-5f);
      }
    }
  }
}

TEST(DynamicJointWeightOperatorsTest, FasterJointGetsLargerWeight) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  // Only the right hand (joint 11) moves.
  Tensor coords({1, 3, 4, 25});
  for (int64_t t = 0; t < 4; ++t) {
    coords.at(0, 0, t, 11) = static_cast<float>(t);
  }
  Tensor ops = DynamicJointWeightOperators(coords, h);
  // The moving joint's diagonal entry should dominate a static joint that
  // shares its hyperedges (e.g. joint 9, right elbow).
  EXPECT_GT(ops.at(0, 1, 11, 11), ops.at(0, 1, 9, 9));
}

TEST(StrideOperatorsTest, PicksEveryStrideFrame) {
  Tensor ops({1, 6, 2, 2});
  for (int64_t t = 0; t < 6; ++t) {
    ops.at(0, t, 0, 0) = static_cast<float>(t);
  }
  Tensor strided = StrideOperatorsInTime(ops, 2);
  EXPECT_EQ(strided.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_FLOAT_EQ(strided.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(strided.at(0, 1, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(strided.at(0, 2, 0, 0), 4.0f);
  // Stride 1 is identity.
  EXPECT_TRUE(AllClose(StrideOperatorsInTime(ops, 1), ops));
}

TEST(StrideOperatorsTest, OddLengthMatchesConvOutput) {
  Tensor ops({1, 7, 2, 2});
  Tensor strided = StrideOperatorsInTime(ops, 2);
  EXPECT_EQ(strided.dim(1), 4);  // (7-1)/2+1
}

// --- Dynamic topology (Sec. 3.4) ------------------------------------------------------

TEST(DynamicTopologyTest, UnionHasKnnPlusKmeansEdges) {
  Rng rng(71);
  Tensor features = Tensor::RandomNormal({10, 4}, rng);
  DynamicTopologyOptions options;
  options.kn = 3;
  options.km = 4;
  Hypergraph h = DynamicTopologyHypergraph(features, options);
  EXPECT_EQ(h.num_vertices(), 10);
  EXPECT_EQ(h.num_edges(), 10 + 4);  // V K-NN edges + k_m K-means edges
  EXPECT_TRUE(h.CoversAllVertices());
}

TEST(DynamicTopologyTest, KnnEdgesHaveSizeKn) {
  Rng rng(72);
  Tensor features = Tensor::RandomNormal({8, 3}, rng);
  DynamicTopologyOptions options;
  options.kn = 4;
  options.km = 2;
  Hypergraph h = DynamicTopologyHypergraph(features, options);
  for (int64_t e = 0; e < 8; ++e) {
    EXPECT_EQ(h.edges()[static_cast<size_t>(e)].size(), 4u);
  }
}

TEST(DynamicTopologyTest, KmeansEdgesPartitionVertices) {
  Rng rng(73);
  Tensor features = Tensor::RandomNormal({9, 3}, rng);
  DynamicTopologyOptions options;
  options.kn = 2;
  options.km = 3;
  Hypergraph h = DynamicTopologyHypergraph(features, options);
  std::set<int64_t> covered;
  size_t total = 0;
  for (int64_t e = 9; e < h.num_edges(); ++e) {
    const Hyperedge& edge = h.edges()[static_cast<size_t>(e)];
    total += edge.size();
    covered.insert(edge.begin(), edge.end());
  }
  EXPECT_EQ(total, 9u);
  EXPECT_EQ(covered.size(), 9u);
}

TEST(DynamicTopologyTest, DeterministicForSameInput) {
  Rng rng(74);
  Tensor features = Tensor::RandomNormal({2, 8, 3, 6}, rng);
  DynamicTopologyOptions options;
  options.kn = 2;
  options.km = 2;
  Tensor ops1 = DynamicTopologyOperators(features, options);
  Tensor ops2 = DynamicTopologyOperators(features, options);
  EXPECT_TRUE(AllClose(ops1, ops2));
  EXPECT_EQ(ops1.shape(), (Shape{2, 3, 6, 6}));
}

TEST(DynamicTopologyTest, OperatorsAreSymmetricFinite) {
  Rng rng(75);
  Tensor features = Tensor::RandomNormal({1, 4, 2, 7}, rng);
  DynamicTopologyOptions options;
  options.kn = 3;
  options.km = 2;
  Tensor ops = DynamicTopologyOperators(features, options);
  EXPECT_FALSE(HasNonFinite(ops));
  for (int64_t t = 0; t < 2; ++t) {
    for (int64_t i = 0; i < 7; ++i) {
      for (int64_t j = 0; j < 7; ++j) {
        EXPECT_NEAR(ops.at(0, t, i, j), ops.at(0, t, j, i), 1e-5f);
      }
    }
  }
}

TEST(DynamicTopologyTest, NearbyVerticesShareEdges) {
  // Features with two clear groups: dynamic topology should connect
  // within groups much more strongly than across.
  Tensor features({1, 1, 1, 6});
  for (int64_t v = 0; v < 3; ++v) features.at(0, 0, 0, v) = 0.0f;
  for (int64_t v = 3; v < 6; ++v) features.at(0, 0, 0, v) = 10.0f;
  DynamicTopologyOptions options;
  options.kn = 3;
  options.km = 2;
  Tensor ops = DynamicTopologyOperators(features, options);
  // Within-group connectivity dominates cross-group.
  float within = ops.at(0, 0, 0, 1);
  float across = ops.at(0, 0, 0, 4);
  EXPECT_GT(within, across);
}

// --- DHST block -----------------------------------------------------------------------

DhstBlockOptions SmallBlockOptions(int64_t in, int64_t out,
                                   int64_t stride = 1) {
  DhstBlockOptions options;
  options.in_channels = in;
  options.out_channels = out;
  options.temporal_stride = stride;
  options.topology.kn = 2;
  options.topology.km = 2;
  return options;
}

TEST(DhstBlockTest, ForwardShape) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(76);
  DhstBlock block(SmallBlockOptions(3, 8), h, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 6, 18}, rng);
  Tensor joint_ops = DynamicJointWeightOperators(x, h);
  Tensor y = block.Forward(x, joint_ops);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 6, 18}));
  Tensor g = block.Backward(Tensor::Ones(y.shape()));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(DhstBlockTest, TemporalStrideHalvesFrames) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(77);
  DhstBlock block(SmallBlockOptions(3, 4, /*stride=*/2), h, rng);
  EXPECT_EQ(block.OutputFrames(8), 4);
  EXPECT_EQ(block.OutputFrames(7), 4);
  Tensor x = Tensor::RandomNormal({1, 3, 8, 18}, rng);
  Tensor joint_ops = DynamicJointWeightOperators(x, h);
  Tensor y = block.Forward(x, joint_ops);
  EXPECT_EQ(y.dim(2), 4);
}

TEST(DhstBlockTest, BranchTogglesChangeParamCount) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(78);
  DhstBlockOptions all = SmallBlockOptions(3, 4);
  DhstBlock full(all, h, rng);

  DhstBlockOptions no_topology = all;
  no_topology.enable_topology = false;
  DhstBlock partial(no_topology, h, rng);
  EXPECT_GT(full.ParameterCount(), partial.ParameterCount());
}

TEST(DhstBlockTest, DisabledJointWeightIgnoresOps) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(79);
  DhstBlockOptions options = SmallBlockOptions(3, 4);
  options.enable_joint_weight = false;
  DhstBlock block(options, h, rng);
  Tensor x = Tensor::RandomNormal({1, 3, 4, 18}, rng);
  Tensor y = block.Forward(x, Tensor());  // empty ops accepted
  EXPECT_EQ(y.shape(), (Shape{1, 4, 4, 18}));
}

TEST(DhstBlockDeathTest, AllBranchesDisabledRejected) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(80);
  DhstBlockOptions options = SmallBlockOptions(3, 4);
  options.enable_static = false;
  options.enable_joint_weight = false;
  options.enable_topology = false;
  EXPECT_DEATH(DhstBlock(options, h, rng), "DHGCN_CHECK");
}

// Full-block gradient check through all three branches, batch norms and
// residuals. Wrapped as a Layer with fixed joint-weight operators.
class DhstBlockHarness : public Layer {
 public:
  DhstBlockHarness(const DhstBlockOptions& options, const Hypergraph& h,
                   Rng& rng, Tensor joint_ops)
      : block_(options, h, rng), joint_ops_(std::move(joint_ops)) {}

  Tensor Forward(const Tensor& x) override {
    return block_.Forward(x, joint_ops_);
  }
  Tensor Backward(const Tensor& g) override { return block_.Backward(g); }
  std::vector<ParamRef> Params() override { return block_.Params(); }
  void SetTraining(bool training) override { block_.SetTraining(training); }
  std::string name() const override { return "DhstBlockHarness"; }

 private:
  DhstBlock block_;
  Tensor joint_ops_;
};

TEST(DhstBlockTest, GradCheckStaticAndJointBranches) {
  // The dynamic-topology branch changes topology under input perturbation
  // (non-differentiable selection), so gradient-check the other branches.
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(81);
  DhstBlockOptions options = SmallBlockOptions(2, 3);
  options.enable_topology = false;
  Tensor x = Tensor::RandomNormal({2, 2, 4, 18}, rng);
  Tensor coords = Tensor::RandomNormal({2, 3, 4, 18}, rng);
  Tensor joint_ops = DynamicJointWeightOperators(coords, h);
  DhstBlockHarness harness(options, h, rng, joint_ops);
  testing::GradCheckOptions check;
  // Composite-block check: perturbing a BN scale shifts every unit in a
  // channel, so some pre-activations cross the ReLU kink and the central
  // difference picks up subgradient noise proportional to epsilon. Use a
  // small epsilon and coarse tolerances — per-layer gradients are checked
  // tightly in gradcheck_test; this validates the block's wiring.
  check.epsilon = 5e-4f;
  check.rtol = 1.2e-1f;
  check.atol = 1.2e-1f;
  check.samples_per_tensor = 10;
  testing::ExpectGradientsMatch(harness, x, check);
}

// --- DHGCN model -----------------------------------------------------------------------

TEST(DhgcnConfigTest, PaperConfigHasTenBlocks) {
  DhgcnConfig config = DhgcnConfig::Paper(SkeletonLayoutType::kNtu25, 60);
  EXPECT_EQ(config.blocks.size(), 10u);
  EXPECT_EQ(config.blocks[0].channels, 64);
  EXPECT_EQ(config.blocks[9].channels, 256);
  EXPECT_EQ(config.topology.kn, 3);  // paper's best k_n
  EXPECT_EQ(config.topology.km, 4);  // paper's best k_m
}

TEST(DhgcnModelTest, MakeValidatesConfig) {
  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, 5);
  EXPECT_TRUE(DhgcnModel::Make(config).ok());

  DhgcnConfig bad = config;
  bad.num_classes = 0;
  EXPECT_FALSE(DhgcnModel::Make(bad).ok());
  bad = config;
  bad.blocks.clear();
  EXPECT_FALSE(DhgcnModel::Make(bad).ok());
  bad = config;
  bad.enable_static = bad.enable_joint_weight = bad.enable_topology = false;
  EXPECT_FALSE(DhgcnModel::Make(bad).ok());
  bad = config;
  bad.topology.kn = 100;
  EXPECT_FALSE(DhgcnModel::Make(bad).ok());
  bad = config;
  bad.dropout = 1.0f;
  EXPECT_FALSE(DhgcnModel::Make(bad).ok());
}

TEST(DhgcnModelTest, ForwardBackwardShapes) {
  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, 5);
  config.topology.kn = 2;
  config.topology.km = 2;
  auto model = DhgcnModel::Make(config).MoveValue();
  Rng rng(82);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  Tensor logits = model->Forward(x);
  EXPECT_EQ(logits.shape(), (Shape{2, 5}));
  EXPECT_FALSE(HasNonFinite(logits));
  Tensor g = model->Backward(Tensor::Ones({2, 5}));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(DhgcnModelTest, ParamsAreNamedAndNonEmpty) {
  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, 4);
  auto model = DhgcnModel::Make(config).MoveValue();
  std::vector<ParamRef> params = model->Params();
  EXPECT_GT(params.size(), 10u);
  std::set<std::string> names;
  for (const ParamRef& p : params) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
    EXPECT_NE(p.value, nullptr);
    if (p.trainable) {
      EXPECT_NE(p.grad, nullptr);
    }
  }
  EXPECT_GT(model->ParameterCount(), 100);
}

TEST(DhgcnModelTest, BranchAblationsRun) {
  for (int mask = 0; mask < 3; ++mask) {
    DhgcnConfig config =
        DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, 3);
    config.topology.kn = 2;
    config.topology.km = 2;
    config.enable_static = mask != 0;
    config.enable_joint_weight = mask != 1;
    config.enable_topology = mask != 2;
    auto model = DhgcnModel::Make(config).MoveValue();
    Rng rng(83);
    Tensor x = Tensor::RandomNormal({1, 3, 8, 18}, rng);
    Tensor logits = model->Forward(x);
    EXPECT_EQ(logits.shape(), (Shape{1, 3}));
    model->Backward(Tensor::Ones({1, 3}));
  }
}

TEST(DhgcnModelTest, TemporalStrideKeepsJointOpsAligned) {
  // Two strided blocks: the internal op re-striding must keep shapes
  // consistent for any input length that survives the convs.
  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, 3);
  config.blocks = {{4, 1, 1}, {8, 2, 1}, {8, 2, 1}};
  config.topology.kn = 2;
  config.topology.km = 2;
  auto model = DhgcnModel::Make(config).MoveValue();
  Rng rng(84);
  Tensor x = Tensor::RandomNormal({1, 3, 12, 18}, rng);
  Tensor logits = model->Forward(x);
  EXPECT_EQ(logits.shape(), (Shape{1, 3}));
}

TEST(DhgcnModelTest, EvalModeIsDeterministic) {
  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, 4);
  config.dropout = 0.5f;
  config.topology.kn = 2;
  config.topology.km = 2;
  auto model = DhgcnModel::Make(config).MoveValue();
  model->SetTraining(false);
  Rng rng(85);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  Tensor a = model->Forward(x);
  Tensor b = model->Forward(x);
  EXPECT_TRUE(AllClose(a, b));
}

}  // namespace
}  // namespace dhgcn
