#include <cmath>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "hypergraph/graph.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/hypergraph_conv.h"
#include "tensor/linalg.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

Graph PathGraph(int64_t n) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, std::move(edges));
}

// --- Graph --------------------------------------------------------------------

TEST(GraphTest, AdjacencyIsSymmetricBinary) {
  Graph g = PathGraph(4);
  Tensor a = g.AdjacencyMatrix();
  EXPECT_EQ(a.shape(), (Shape{4, 4}));
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a.at(i, i), 0.0f);
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(a.at(i, j), a.at(j, i));
      EXPECT_TRUE(a.at(i, j) == 0.0f || a.at(i, j) == 1.0f);
    }
  }
  EXPECT_FLOAT_EQ(a.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(a.at(0, 2), 0.0f);
}

TEST(GraphTest, NormalizedAdjacencyKnownValues) {
  // Two nodes, one edge: A+I = all-ones; degrees 2; normalized = 0.5.
  Graph g(2, {{0, 1}});
  Tensor norm = g.NormalizedAdjacency();
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(norm.flat(i), 0.5f, 1e-6f);
}

TEST(GraphTest, NormalizedAdjacencyIsSymmetric) {
  Graph g = PathGraph(6);
  Tensor norm = g.NormalizedAdjacency();
  EXPECT_TRUE(AllClose(norm, Transpose2D(norm), 1e-6f, 1e-7f));
}

TEST(GraphTest, NormalizedAdjacencySpectralRadiusAtMostOne) {
  // D^{-1/2}(A+I)D^{-1/2} has eigenvalues in [-1, 1]; power iteration on a
  // random vector must not blow up.
  Graph g = PathGraph(8);
  Tensor norm = g.NormalizedAdjacency();
  Rng rng(40);
  Tensor x = Tensor::RandomNormal({8, 1}, rng);
  for (int iter = 0; iter < 30; ++iter) {
    x = MatMul(norm, x);
    float n = Norm2(x);
    ASSERT_GT(n, 0.0f);
    MulScalarInPlace(x, 1.0f / n);
  }
  Tensor y = MatMul(norm, x);
  EXPECT_LE(Norm2(y), 1.0f + 1e-4f);
}

TEST(GraphTest, DegreesCountSelfLoop) {
  Graph g = PathGraph(3);
  std::vector<int64_t> deg = g.Degrees();
  EXPECT_EQ(deg[0], 2);  // self + 1 neighbor
  EXPECT_EQ(deg[1], 3);
  EXPECT_EQ(deg[2], 2);
}

TEST(GraphTest, MakeRejectsBadEdges) {
  auto r1 = Graph::Make(3, {{0, 5}});
  EXPECT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsInvalidArgument());
  auto r2 = Graph::Make(0, {});
  EXPECT_FALSE(r2.ok());
  auto r3 = Graph::Make(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(r3.ok());
}

// --- Hypergraph -----------------------------------------------------------------

Hypergraph SmallHypergraph() {
  // 5 vertices, 3 hyperedges.
  return Hypergraph(5, {{0, 1, 2}, {2, 3}, {3, 4, 0}});
}

TEST(HypergraphTest, IncidenceMatrix) {
  Hypergraph h = SmallHypergraph();
  Tensor inc = h.IncidenceMatrix();
  EXPECT_EQ(inc.shape(), (Shape{5, 3}));
  EXPECT_FLOAT_EQ(inc.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(inc.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(inc.at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(inc.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(inc.at(2, 1), 1.0f);
  EXPECT_FLOAT_EQ(inc.at(4, 2), 1.0f);
}

TEST(HypergraphTest, VertexDegreesFollowEq3) {
  Hypergraph h(4, {{0, 1}, {1, 2, 3}}, {2.0f, 3.0f});
  std::vector<float> deg = h.VertexDegrees();
  EXPECT_FLOAT_EQ(deg[0], 2.0f);
  EXPECT_FLOAT_EQ(deg[1], 5.0f);  // in both edges
  EXPECT_FLOAT_EQ(deg[2], 3.0f);
  EXPECT_FLOAT_EQ(deg[3], 3.0f);
}

TEST(HypergraphTest, EdgeDegreesFollowEq4) {
  Hypergraph h = SmallHypergraph();
  std::vector<int64_t> deg = h.EdgeDegrees();
  EXPECT_EQ(deg, (std::vector<int64_t>{3, 2, 3}));
}

TEST(HypergraphTest, CoverageDetection) {
  EXPECT_TRUE(SmallHypergraph().CoversAllVertices());
  Hypergraph partial(5, {{0, 1}});
  EXPECT_FALSE(partial.CoversAllVertices());
}

TEST(HypergraphTest, UnionCombinesEdges) {
  Hypergraph a(4, {{0, 1}});
  Hypergraph b(4, {{2, 3}, {0, 3}});
  Hypergraph u = a.UnionWith(b);
  EXPECT_EQ(u.num_edges(), 3);
  EXPECT_TRUE(u.CoversAllVertices());
}

TEST(HypergraphTest, DefaultWeightsAreOne) {
  Hypergraph h = SmallHypergraph();
  for (float w : h.edge_weights()) EXPECT_FLOAT_EQ(w, 1.0f);
}

TEST(HypergraphTest, MakeValidation) {
  EXPECT_FALSE(Hypergraph::Make(0, {}).ok());
  EXPECT_FALSE(Hypergraph::Make(3, {{}}).ok());          // empty edge
  EXPECT_FALSE(Hypergraph::Make(3, {{0, 7}}).ok());      // out of range
  EXPECT_FALSE(Hypergraph::Make(3, {{0}}, {0.0f}).ok()); // bad weight
  EXPECT_FALSE(Hypergraph::Make(3, {{0}}, {1.0f, 2.0f}).ok());  // size
  EXPECT_TRUE(Hypergraph::Make(3, {{0, 1}, {1, 2}}).ok());
}

TEST(HypergraphDeathTest, ConstructorChecksVertexRange) {
  EXPECT_DEATH(Hypergraph(2, {{0, 5}}), "DHGCN_CHECK");
}

TEST(HypergraphTest, ToStringMentionsStructure) {
  std::string text = SmallHypergraph().ToString();
  EXPECT_NE(text.find("V=5"), std::string::npos);
  EXPECT_NE(text.find("E=3"), std::string::npos);
}

// --- Hypergraph convolution operators ---------------------------------------------

TEST(HypergraphConvTest, OperatorIsSymmetric) {
  Tensor op = NormalizedHypergraphOperator(SmallHypergraph());
  EXPECT_EQ(op.shape(), (Shape{5, 5}));
  EXPECT_TRUE(AllClose(op, Transpose2D(op), 1e-5f, 1e-6f));
}

TEST(HypergraphConvTest, OperatorIsPositiveSemidefinite) {
  // Omega = (Dv^{-1/2} H (W/De)^{1/2}) (...)^T-like product; x^T Omega x
  // must be >= 0 for all x since W, De > 0.
  Tensor op = NormalizedHypergraphOperator(SmallHypergraph());
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor x = Tensor::RandomNormal({5, 1}, rng);
    Tensor quadratic = MatMul(Transpose2D(x), MatMul(op, x));
    EXPECT_GE(quadratic.flat(0), -1e-5f);
  }
}

TEST(HypergraphConvTest, SingleEdgeUniform) {
  // One hyperedge over all 3 vertices, weight 1: every vertex has degree
  // 1, the edge has degree 3; Omega = H (1/3) H^T = 1/3 everywhere.
  Hypergraph h(3, {{0, 1, 2}});
  Tensor op = NormalizedHypergraphOperator(h);
  for (int64_t i = 0; i < 9; ++i) EXPECT_NEAR(op.flat(i), 1.0f / 3.0f, 1e-6f);
}

TEST(HypergraphConvTest, IsolatedVertexGivesZeroRow) {
  Hypergraph h(3, {{0, 1}});
  Tensor op = NormalizedHypergraphOperator(h);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(op.at(2, j), 0.0f);
    EXPECT_FLOAT_EQ(op.at(j, 2), 0.0f);
  }
}

TEST(HypergraphConvTest, EdgeWeightScalesContribution) {
  Hypergraph light(2, {{0, 1}}, {1.0f});
  Hypergraph heavy(2, {{0, 1}}, {4.0f});
  Tensor op_light = NormalizedHypergraphOperator(light);
  Tensor op_heavy = NormalizedHypergraphOperator(heavy);
  // Dv scales with w, so Dv^{-1/2} w De^{-1} Dv^{-1/2} is w-invariant for
  // a single edge: both should equal 1/2.
  EXPECT_NEAR(op_light.at(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(op_heavy.at(0, 1), 0.5f, 1e-6f);
}

TEST(HypergraphConvTest, WeightedIncidenceOperator) {
  Tensor imp = Tensor::FromVector({2, 1}, {0.25f, 0.75f});
  Tensor op = WeightedIncidenceOperator(imp);
  EXPECT_EQ(op.shape(), (Shape{2, 2}));
  EXPECT_NEAR(op.at(0, 0), 0.0625f, 1e-6f);
  EXPECT_NEAR(op.at(0, 1), 0.1875f, 1e-6f);
  EXPECT_NEAR(op.at(1, 1), 0.5625f, 1e-6f);
  EXPECT_TRUE(AllClose(op, Transpose2D(op)));
}

TEST(VertexMixTest, AppliesOperatorOnVertexAxis) {
  // Operator that swaps two vertices.
  Tensor swap = Tensor::FromVector({2, 2}, {0, 1, 1, 0});
  VertexMix mix(swap);
  Tensor x({1, 1, 1, 2});
  x.at(0, 0, 0, 0) = 3.0f;
  x.at(0, 0, 0, 1) = 7.0f;
  Tensor y = mix.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 7.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 3.0f);
}

TEST(VertexMixTest, NonLearnableHasNoParams) {
  VertexMix fixed(Tensor::Eye(3), /*learnable=*/false);
  EXPECT_TRUE(fixed.Params().empty());
  VertexMix learnable(Tensor::Eye(3), /*learnable=*/true);
  EXPECT_EQ(learnable.Params().size(), 1u);
}

TEST(DynamicVertexMixTest, PerFrameOperators) {
  DynamicVertexMix mix;
  // Frame 0: identity; frame 1: swap.
  Tensor ops({1, 2, 2, 2});
  ops.at(0, 0, 0, 0) = 1.0f;
  ops.at(0, 0, 1, 1) = 1.0f;
  ops.at(0, 1, 0, 1) = 1.0f;
  ops.at(0, 1, 1, 0) = 1.0f;
  mix.SetOperators(ops);
  Tensor x({1, 1, 2, 2});
  x.at(0, 0, 0, 0) = 1.0f;
  x.at(0, 0, 0, 1) = 2.0f;
  x.at(0, 0, 1, 0) = 3.0f;
  x.at(0, 0, 1, 1) = 4.0f;
  Tensor y = mix.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);  // identity frame
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 4.0f);  // swapped frame
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 3.0f);
}

TEST(DynamicVertexMixDeathTest, ForwardWithoutOperators) {
  DynamicVertexMix mix;
  Tensor x({1, 1, 2, 2});
  EXPECT_DEATH(mix.Forward(x), "DHGCN_CHECK");
}

// --- LearnableHyperedgeMix (Eq. 5 with trainable W) ----------------------------

TEST(LearnableHyperedgeMixTest, UnitWeightsMatchFixedOperator) {
  Hypergraph h = SmallHypergraph();
  LearnableHyperedgeMix learnable(h);
  VertexMix fixed(NormalizedHypergraphOperator(h));
  Rng rng(42);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 5}, rng);
  EXPECT_TRUE(AllClose(learnable.Forward(x), fixed.Forward(x), 1e-4f,
                       1e-5f));
}

TEST(LearnableHyperedgeMixTest, WeightsScaleEdgeContributions) {
  // One hyperedge over all vertices: doubling its weight doubles the
  // output (the factorization is linear in w).
  Hypergraph h(3, {{0, 1, 2}});
  LearnableHyperedgeMix mix(h);
  Rng rng(43);
  Tensor x = Tensor::RandomNormal({1, 1, 1, 3}, rng);
  Tensor base = mix.Forward(x);
  mix.Params()[0].value->Fill(2.0f);
  Tensor doubled = mix.Forward(x);
  EXPECT_TRUE(AllClose(doubled, MulScalar(base, 2.0f), 1e-5f, 1e-6f));
}

TEST(LearnableHyperedgeMixTest, HasOneWeightPerEdge) {
  Hypergraph h = SmallHypergraph();
  LearnableHyperedgeMix mix(h);
  std::vector<ParamRef> params = mix.Params();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0].value->shape(), (Shape{3}));
  for (int64_t e = 0; e < 3; ++e) {
    EXPECT_FLOAT_EQ(mix.edge_weights().flat(e), 1.0f);
  }
}

}  // namespace
}  // namespace dhgcn
